file(REMOVE_RECURSE
  "CMakeFiles/browser_test.dir/browser_test.cpp.o"
  "CMakeFiles/browser_test.dir/browser_test.cpp.o.d"
  "browser_test"
  "browser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
