# Empty dependencies file for browser_test.
# This may be replaced when dependencies are built.
