file(REMOVE_RECURSE
  "CMakeFiles/ocsp_test.dir/ocsp_test.cpp.o"
  "CMakeFiles/ocsp_test.dir/ocsp_test.cpp.o.d"
  "ocsp_test"
  "ocsp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
