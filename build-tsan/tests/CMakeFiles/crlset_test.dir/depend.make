# Empty dependencies file for crlset_test.
# This may be replaced when dependencies are built.
