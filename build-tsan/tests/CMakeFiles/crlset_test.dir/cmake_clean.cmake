file(REMOVE_RECURSE
  "CMakeFiles/crlset_test.dir/crlset_test.cpp.o"
  "CMakeFiles/crlset_test.dir/crlset_test.cpp.o.d"
  "crlset_test"
  "crlset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crlset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
