file(REMOVE_RECURSE
  "CMakeFiles/tls_test.dir/tls_test.cpp.o"
  "CMakeFiles/tls_test.dir/tls_test.cpp.o.d"
  "tls_test"
  "tls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
