file(REMOVE_RECURSE
  "CMakeFiles/crl_test.dir/crl_test.cpp.o"
  "CMakeFiles/crl_test.dir/crl_test.cpp.o.d"
  "crl_test"
  "crl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
