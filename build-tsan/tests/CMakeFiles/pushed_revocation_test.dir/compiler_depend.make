# Empty compiler generated dependencies file for pushed_revocation_test.
# This may be replaced when dependencies are built.
