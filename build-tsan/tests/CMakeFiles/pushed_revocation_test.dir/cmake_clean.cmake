file(REMOVE_RECURSE
  "CMakeFiles/pushed_revocation_test.dir/pushed_revocation_test.cpp.o"
  "CMakeFiles/pushed_revocation_test.dir/pushed_revocation_test.cpp.o.d"
  "pushed_revocation_test"
  "pushed_revocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushed_revocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
