
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_multistaple.cpp" "bench/CMakeFiles/bench_ablation_multistaple.dir/bench_ablation_multistaple.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_multistaple.dir/bench_ablation_multistaple.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/rev_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/browser/CMakeFiles/rev_browser.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crlset/CMakeFiles/rev_crlset.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/scan/CMakeFiles/rev_scan.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ca/CMakeFiles/rev_ca.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tls/CMakeFiles/rev_tls.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/rev_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ocsp/CMakeFiles/rev_ocsp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crl/CMakeFiles/rev_crl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/x509/CMakeFiles/rev_x509.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/asn1/CMakeFiles/rev_asn1.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/rev_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
