file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multistaple.dir/bench_ablation_multistaple.cpp.o"
  "CMakeFiles/bench_ablation_multistaple.dir/bench_ablation_multistaple.cpp.o.d"
  "bench_ablation_multistaple"
  "bench_ablation_multistaple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multistaple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
