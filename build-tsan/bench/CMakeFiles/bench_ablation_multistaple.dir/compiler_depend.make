# Empty compiler generated dependencies file for bench_ablation_multistaple.
# This may be replaced when dependencies are built.
