file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_sensitivity.dir/bench_scale_sensitivity.cpp.o"
  "CMakeFiles/bench_scale_sensitivity.dir/bench_scale_sensitivity.cpp.o.d"
  "bench_scale_sensitivity"
  "bench_scale_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
