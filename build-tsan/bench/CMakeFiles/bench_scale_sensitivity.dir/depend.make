# Empty dependencies file for bench_scale_sensitivity.
# This may be replaced when dependencies are built.
