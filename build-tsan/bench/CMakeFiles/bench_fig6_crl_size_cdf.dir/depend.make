# Empty dependencies file for bench_fig6_crl_size_cdf.
# This may be replaced when dependencies are built.
