# Empty compiler generated dependencies file for bench_fig2_revoked_fractions.
# This may be replaced when dependencies are built.
