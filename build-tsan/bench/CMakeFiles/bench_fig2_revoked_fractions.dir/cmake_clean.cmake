file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_revoked_fractions.dir/bench_fig2_revoked_fractions.cpp.o"
  "CMakeFiles/bench_fig2_revoked_fractions.dir/bench_fig2_revoked_fractions.cpp.o.d"
  "bench_fig2_revoked_fractions"
  "bench_fig2_revoked_fractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_revoked_fractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
