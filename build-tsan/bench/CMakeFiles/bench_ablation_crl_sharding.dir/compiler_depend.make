# Empty compiler generated dependencies file for bench_ablation_crl_sharding.
# This may be replaced when dependencies are built.
