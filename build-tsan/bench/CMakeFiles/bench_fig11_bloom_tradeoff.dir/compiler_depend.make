# Empty compiler generated dependencies file for bench_fig11_bloom_tradeoff.
# This may be replaced when dependencies are built.
