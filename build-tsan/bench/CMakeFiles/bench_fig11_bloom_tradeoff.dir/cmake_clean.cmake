file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_bloom_tradeoff.dir/bench_fig11_bloom_tradeoff.cpp.o"
  "CMakeFiles/bench_fig11_bloom_tradeoff.dir/bench_fig11_bloom_tradeoff.cpp.o.d"
  "bench_fig11_bloom_tradeoff"
  "bench_fig11_bloom_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_bloom_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
