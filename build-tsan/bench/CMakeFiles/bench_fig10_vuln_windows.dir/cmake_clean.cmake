file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vuln_windows.dir/bench_fig10_vuln_windows.cpp.o"
  "CMakeFiles/bench_fig10_vuln_windows.dir/bench_fig10_vuln_windows.cpp.o.d"
  "bench_fig10_vuln_windows"
  "bench_fig10_vuln_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vuln_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
