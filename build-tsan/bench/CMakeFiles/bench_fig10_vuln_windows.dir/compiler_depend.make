# Empty compiler generated dependencies file for bench_fig10_vuln_windows.
# This may be replaced when dependencies are built.
