# Empty compiler generated dependencies file for bench_ablation_hardfail.
# This may be replaced when dependencies are built.
