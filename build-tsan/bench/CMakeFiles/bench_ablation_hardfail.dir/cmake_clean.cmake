file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hardfail.dir/bench_ablation_hardfail.cpp.o"
  "CMakeFiles/bench_ablation_hardfail.dir/bench_ablation_hardfail.cpp.o.d"
  "bench_ablation_hardfail"
  "bench_ablation_hardfail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hardfail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
