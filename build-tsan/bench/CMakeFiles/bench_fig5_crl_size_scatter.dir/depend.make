# Empty dependencies file for bench_fig5_crl_size_scatter.
# This may be replaced when dependencies are built.
