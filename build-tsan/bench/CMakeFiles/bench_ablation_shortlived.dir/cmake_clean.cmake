file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shortlived.dir/bench_ablation_shortlived.cpp.o"
  "CMakeFiles/bench_ablation_shortlived.dir/bench_ablation_shortlived.cpp.o.d"
  "bench_ablation_shortlived"
  "bench_ablation_shortlived.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shortlived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
