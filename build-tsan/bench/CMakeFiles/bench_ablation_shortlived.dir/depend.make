# Empty dependencies file for bench_ablation_shortlived.
# This may be replaced when dependencies are built.
