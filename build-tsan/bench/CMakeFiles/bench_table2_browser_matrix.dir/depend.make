# Empty dependencies file for bench_table2_browser_matrix.
# This may be replaced when dependencies are built.
