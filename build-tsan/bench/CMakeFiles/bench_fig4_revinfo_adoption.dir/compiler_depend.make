# Empty compiler generated dependencies file for bench_fig4_revinfo_adoption.
# This may be replaced when dependencies are built.
