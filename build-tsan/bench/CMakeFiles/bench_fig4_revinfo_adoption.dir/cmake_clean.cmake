file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_revinfo_adoption.dir/bench_fig4_revinfo_adoption.cpp.o"
  "CMakeFiles/bench_fig4_revinfo_adoption.dir/bench_fig4_revinfo_adoption.cpp.o.d"
  "bench_fig4_revinfo_adoption"
  "bench_fig4_revinfo_adoption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_revinfo_adoption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
