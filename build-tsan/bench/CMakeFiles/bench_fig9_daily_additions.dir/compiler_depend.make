# Empty compiler generated dependencies file for bench_fig9_daily_additions.
# This may be replaced when dependencies are built.
