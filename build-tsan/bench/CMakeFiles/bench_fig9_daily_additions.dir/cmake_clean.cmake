file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_daily_additions.dir/bench_fig9_daily_additions.cpp.o"
  "CMakeFiles/bench_fig9_daily_additions.dir/bench_fig9_daily_additions.cpp.o.d"
  "bench_fig9_daily_additions"
  "bench_fig9_daily_additions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_daily_additions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
