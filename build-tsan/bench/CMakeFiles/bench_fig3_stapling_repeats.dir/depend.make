# Empty dependencies file for bench_fig3_stapling_repeats.
# This may be replaced when dependencies are built.
