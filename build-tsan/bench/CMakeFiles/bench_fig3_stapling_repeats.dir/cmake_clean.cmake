file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_stapling_repeats.dir/bench_fig3_stapling_repeats.cpp.o"
  "CMakeFiles/bench_fig3_stapling_repeats.dir/bench_fig3_stapling_repeats.cpp.o.d"
  "bench_fig3_stapling_repeats"
  "bench_fig3_stapling_repeats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_stapling_repeats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
