# Empty dependencies file for bench_fig7_crlset_coverage.
# This may be replaced when dependencies are built.
