file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pushed.dir/bench_ablation_pushed.cpp.o"
  "CMakeFiles/bench_ablation_pushed.dir/bench_ablation_pushed.cpp.o.d"
  "bench_ablation_pushed"
  "bench_ablation_pushed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pushed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
