# Empty compiler generated dependencies file for bench_ablation_pushed.
# This may be replaced when dependencies are built.
