file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_of_checking.dir/bench_cost_of_checking.cpp.o"
  "CMakeFiles/bench_cost_of_checking.dir/bench_cost_of_checking.cpp.o.d"
  "bench_cost_of_checking"
  "bench_cost_of_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_of_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
