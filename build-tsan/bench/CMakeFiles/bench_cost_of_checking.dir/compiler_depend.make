# Empty compiler generated dependencies file for bench_cost_of_checking.
# This may be replaced when dependencies are built.
