# Empty dependencies file for bench_fig8_crlset_size.
# This may be replaced when dependencies are built.
