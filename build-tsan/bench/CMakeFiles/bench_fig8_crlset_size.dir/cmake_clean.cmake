file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_crlset_size.dir/bench_fig8_crlset_size.cpp.o"
  "CMakeFiles/bench_fig8_crlset_size.dir/bench_fig8_crlset_size.cpp.o.d"
  "bench_fig8_crlset_size"
  "bench_fig8_crlset_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_crlset_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
