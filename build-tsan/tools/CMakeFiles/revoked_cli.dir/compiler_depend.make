# Empty compiler generated dependencies file for revoked_cli.
# This may be replaced when dependencies are built.
