file(REMOVE_RECURSE
  "CMakeFiles/revoked_cli.dir/revoked_cli.cpp.o"
  "CMakeFiles/revoked_cli.dir/revoked_cli.cpp.o.d"
  "revoked_cli"
  "revoked_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revoked_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
