file(REMOVE_RECURSE
  "CMakeFiles/revocation_audit.dir/revocation_audit.cpp.o"
  "CMakeFiles/revocation_audit.dir/revocation_audit.cpp.o.d"
  "revocation_audit"
  "revocation_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revocation_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
