# Empty compiler generated dependencies file for revocation_audit.
# This may be replaced when dependencies are built.
