# Empty compiler generated dependencies file for browser_policy_lab.
# This may be replaced when dependencies are built.
