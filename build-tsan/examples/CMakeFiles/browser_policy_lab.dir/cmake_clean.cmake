file(REMOVE_RECURSE
  "CMakeFiles/browser_policy_lab.dir/browser_policy_lab.cpp.o"
  "CMakeFiles/browser_policy_lab.dir/browser_policy_lab.cpp.o.d"
  "browser_policy_lab"
  "browser_policy_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_policy_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
