file(REMOVE_RECURSE
  "CMakeFiles/crlset_builder.dir/crlset_builder.cpp.o"
  "CMakeFiles/crlset_builder.dir/crlset_builder.cpp.o.d"
  "crlset_builder"
  "crlset_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crlset_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
