# Empty compiler generated dependencies file for crlset_builder.
# This may be replaced when dependencies are built.
