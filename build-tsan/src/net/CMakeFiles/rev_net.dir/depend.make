# Empty dependencies file for rev_net.
# This may be replaced when dependencies are built.
