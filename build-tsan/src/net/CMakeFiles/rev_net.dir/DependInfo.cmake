
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cache.cpp" "src/net/CMakeFiles/rev_net.dir/cache.cpp.o" "gcc" "src/net/CMakeFiles/rev_net.dir/cache.cpp.o.d"
  "/root/repo/src/net/simnet.cpp" "src/net/CMakeFiles/rev_net.dir/simnet.cpp.o" "gcc" "src/net/CMakeFiles/rev_net.dir/simnet.cpp.o.d"
  "/root/repo/src/net/url.cpp" "src/net/CMakeFiles/rev_net.dir/url.cpp.o" "gcc" "src/net/CMakeFiles/rev_net.dir/url.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/rev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
