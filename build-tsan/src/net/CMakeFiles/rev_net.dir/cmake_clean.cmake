file(REMOVE_RECURSE
  "CMakeFiles/rev_net.dir/cache.cpp.o"
  "CMakeFiles/rev_net.dir/cache.cpp.o.d"
  "CMakeFiles/rev_net.dir/simnet.cpp.o"
  "CMakeFiles/rev_net.dir/simnet.cpp.o.d"
  "CMakeFiles/rev_net.dir/url.cpp.o"
  "CMakeFiles/rev_net.dir/url.cpp.o.d"
  "librev_net.a"
  "librev_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
