file(REMOVE_RECURSE
  "librev_net.a"
)
