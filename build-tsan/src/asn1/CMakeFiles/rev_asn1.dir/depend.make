# Empty dependencies file for rev_asn1.
# This may be replaced when dependencies are built.
