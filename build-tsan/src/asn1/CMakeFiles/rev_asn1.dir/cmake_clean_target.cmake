file(REMOVE_RECURSE
  "librev_asn1.a"
)
