file(REMOVE_RECURSE
  "CMakeFiles/rev_asn1.dir/oid.cpp.o"
  "CMakeFiles/rev_asn1.dir/oid.cpp.o.d"
  "CMakeFiles/rev_asn1.dir/reader.cpp.o"
  "CMakeFiles/rev_asn1.dir/reader.cpp.o.d"
  "CMakeFiles/rev_asn1.dir/writer.cpp.o"
  "CMakeFiles/rev_asn1.dir/writer.cpp.o.d"
  "librev_asn1.a"
  "librev_asn1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_asn1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
