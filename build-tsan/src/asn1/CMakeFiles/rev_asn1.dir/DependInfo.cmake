
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asn1/oid.cpp" "src/asn1/CMakeFiles/rev_asn1.dir/oid.cpp.o" "gcc" "src/asn1/CMakeFiles/rev_asn1.dir/oid.cpp.o.d"
  "/root/repo/src/asn1/reader.cpp" "src/asn1/CMakeFiles/rev_asn1.dir/reader.cpp.o" "gcc" "src/asn1/CMakeFiles/rev_asn1.dir/reader.cpp.o.d"
  "/root/repo/src/asn1/writer.cpp" "src/asn1/CMakeFiles/rev_asn1.dir/writer.cpp.o" "gcc" "src/asn1/CMakeFiles/rev_asn1.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/rev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
