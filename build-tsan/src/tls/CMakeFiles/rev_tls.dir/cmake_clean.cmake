file(REMOVE_RECURSE
  "CMakeFiles/rev_tls.dir/handshake.cpp.o"
  "CMakeFiles/rev_tls.dir/handshake.cpp.o.d"
  "librev_tls.a"
  "librev_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
