# Empty dependencies file for rev_tls.
# This may be replaced when dependencies are built.
