file(REMOVE_RECURSE
  "librev_tls.a"
)
