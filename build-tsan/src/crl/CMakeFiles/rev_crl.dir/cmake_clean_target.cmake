file(REMOVE_RECURSE
  "librev_crl.a"
)
