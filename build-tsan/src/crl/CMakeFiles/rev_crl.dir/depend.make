# Empty dependencies file for rev_crl.
# This may be replaced when dependencies are built.
