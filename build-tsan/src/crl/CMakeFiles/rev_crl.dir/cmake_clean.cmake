file(REMOVE_RECURSE
  "CMakeFiles/rev_crl.dir/crl.cpp.o"
  "CMakeFiles/rev_crl.dir/crl.cpp.o.d"
  "librev_crl.a"
  "librev_crl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_crl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
