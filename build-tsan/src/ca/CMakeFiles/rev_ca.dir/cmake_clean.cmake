file(REMOVE_RECURSE
  "CMakeFiles/rev_ca.dir/ca.cpp.o"
  "CMakeFiles/rev_ca.dir/ca.cpp.o.d"
  "librev_ca.a"
  "librev_ca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
