file(REMOVE_RECURSE
  "librev_ca.a"
)
