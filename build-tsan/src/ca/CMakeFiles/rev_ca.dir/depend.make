# Empty dependencies file for rev_ca.
# This may be replaced when dependencies are built.
