file(REMOVE_RECURSE
  "librev_crlset.a"
)
