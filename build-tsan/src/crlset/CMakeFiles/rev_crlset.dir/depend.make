# Empty dependencies file for rev_crlset.
# This may be replaced when dependencies are built.
