file(REMOVE_RECURSE
  "CMakeFiles/rev_crlset.dir/bloom.cpp.o"
  "CMakeFiles/rev_crlset.dir/bloom.cpp.o.d"
  "CMakeFiles/rev_crlset.dir/crlset.cpp.o"
  "CMakeFiles/rev_crlset.dir/crlset.cpp.o.d"
  "CMakeFiles/rev_crlset.dir/gcs.cpp.o"
  "CMakeFiles/rev_crlset.dir/gcs.cpp.o.d"
  "CMakeFiles/rev_crlset.dir/generator.cpp.o"
  "CMakeFiles/rev_crlset.dir/generator.cpp.o.d"
  "CMakeFiles/rev_crlset.dir/onecrl.cpp.o"
  "CMakeFiles/rev_crlset.dir/onecrl.cpp.o.d"
  "librev_crlset.a"
  "librev_crlset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_crlset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
