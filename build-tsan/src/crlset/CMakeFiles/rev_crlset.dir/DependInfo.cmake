
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crlset/bloom.cpp" "src/crlset/CMakeFiles/rev_crlset.dir/bloom.cpp.o" "gcc" "src/crlset/CMakeFiles/rev_crlset.dir/bloom.cpp.o.d"
  "/root/repo/src/crlset/crlset.cpp" "src/crlset/CMakeFiles/rev_crlset.dir/crlset.cpp.o" "gcc" "src/crlset/CMakeFiles/rev_crlset.dir/crlset.cpp.o.d"
  "/root/repo/src/crlset/gcs.cpp" "src/crlset/CMakeFiles/rev_crlset.dir/gcs.cpp.o" "gcc" "src/crlset/CMakeFiles/rev_crlset.dir/gcs.cpp.o.d"
  "/root/repo/src/crlset/generator.cpp" "src/crlset/CMakeFiles/rev_crlset.dir/generator.cpp.o" "gcc" "src/crlset/CMakeFiles/rev_crlset.dir/generator.cpp.o.d"
  "/root/repo/src/crlset/onecrl.cpp" "src/crlset/CMakeFiles/rev_crlset.dir/onecrl.cpp.o" "gcc" "src/crlset/CMakeFiles/rev_crlset.dir/onecrl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/crl/CMakeFiles/rev_crl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/x509/CMakeFiles/rev_x509.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/rev_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/asn1/CMakeFiles/rev_asn1.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
