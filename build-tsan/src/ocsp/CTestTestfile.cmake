# CMake generated Testfile for 
# Source directory: /root/repo/src/ocsp
# Build directory: /root/repo/build-tsan/src/ocsp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
