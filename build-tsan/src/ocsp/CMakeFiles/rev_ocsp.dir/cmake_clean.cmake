file(REMOVE_RECURSE
  "CMakeFiles/rev_ocsp.dir/ocsp.cpp.o"
  "CMakeFiles/rev_ocsp.dir/ocsp.cpp.o.d"
  "CMakeFiles/rev_ocsp.dir/responder.cpp.o"
  "CMakeFiles/rev_ocsp.dir/responder.cpp.o.d"
  "librev_ocsp.a"
  "librev_ocsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_ocsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
