file(REMOVE_RECURSE
  "librev_ocsp.a"
)
