# Empty dependencies file for rev_ocsp.
# This may be replaced when dependencies are built.
