file(REMOVE_RECURSE
  "CMakeFiles/rev_browser.dir/client.cpp.o"
  "CMakeFiles/rev_browser.dir/client.cpp.o.d"
  "CMakeFiles/rev_browser.dir/matrix.cpp.o"
  "CMakeFiles/rev_browser.dir/matrix.cpp.o.d"
  "CMakeFiles/rev_browser.dir/policy.cpp.o"
  "CMakeFiles/rev_browser.dir/policy.cpp.o.d"
  "CMakeFiles/rev_browser.dir/profiles.cpp.o"
  "CMakeFiles/rev_browser.dir/profiles.cpp.o.d"
  "CMakeFiles/rev_browser.dir/testsuite.cpp.o"
  "CMakeFiles/rev_browser.dir/testsuite.cpp.o.d"
  "librev_browser.a"
  "librev_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
