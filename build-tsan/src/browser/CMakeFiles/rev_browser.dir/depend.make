# Empty dependencies file for rev_browser.
# This may be replaced when dependencies are built.
