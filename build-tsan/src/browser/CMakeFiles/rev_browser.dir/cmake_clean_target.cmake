file(REMOVE_RECURSE
  "librev_browser.a"
)
