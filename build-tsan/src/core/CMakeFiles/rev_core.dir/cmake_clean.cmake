file(REMOVE_RECURSE
  "CMakeFiles/rev_core.dir/archive.cpp.o"
  "CMakeFiles/rev_core.dir/archive.cpp.o.d"
  "CMakeFiles/rev_core.dir/ca_audit.cpp.o"
  "CMakeFiles/rev_core.dir/ca_audit.cpp.o.d"
  "CMakeFiles/rev_core.dir/crawler.cpp.o"
  "CMakeFiles/rev_core.dir/crawler.cpp.o.d"
  "CMakeFiles/rev_core.dir/crlset_audit.cpp.o"
  "CMakeFiles/rev_core.dir/crlset_audit.cpp.o.d"
  "CMakeFiles/rev_core.dir/ecosystem.cpp.o"
  "CMakeFiles/rev_core.dir/ecosystem.cpp.o.d"
  "CMakeFiles/rev_core.dir/pipeline.cpp.o"
  "CMakeFiles/rev_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/rev_core.dir/report.cpp.o"
  "CMakeFiles/rev_core.dir/report.cpp.o.d"
  "CMakeFiles/rev_core.dir/stapling_audit.cpp.o"
  "CMakeFiles/rev_core.dir/stapling_audit.cpp.o.d"
  "CMakeFiles/rev_core.dir/timeline.cpp.o"
  "CMakeFiles/rev_core.dir/timeline.cpp.o.d"
  "librev_core.a"
  "librev_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
