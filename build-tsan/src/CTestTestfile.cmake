# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("asn1")
subdirs("x509")
subdirs("crl")
subdirs("ocsp")
subdirs("net")
subdirs("tls")
subdirs("ca")
subdirs("scan")
subdirs("browser")
subdirs("crlset")
subdirs("core")
