file(REMOVE_RECURSE
  "CMakeFiles/rev_crypto.dir/bigint.cpp.o"
  "CMakeFiles/rev_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/rev_crypto.dir/hmac.cpp.o"
  "CMakeFiles/rev_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/rev_crypto.dir/rsa.cpp.o"
  "CMakeFiles/rev_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/rev_crypto.dir/sha256.cpp.o"
  "CMakeFiles/rev_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/rev_crypto.dir/signer.cpp.o"
  "CMakeFiles/rev_crypto.dir/signer.cpp.o.d"
  "librev_crypto.a"
  "librev_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
