file(REMOVE_RECURSE
  "CMakeFiles/rev_scan.dir/internet.cpp.o"
  "CMakeFiles/rev_scan.dir/internet.cpp.o.d"
  "CMakeFiles/rev_scan.dir/scanner.cpp.o"
  "CMakeFiles/rev_scan.dir/scanner.cpp.o.d"
  "librev_scan.a"
  "librev_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
