# Empty dependencies file for rev_scan.
# This may be replaced when dependencies are built.
