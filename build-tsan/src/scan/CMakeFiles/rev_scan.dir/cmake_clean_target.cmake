file(REMOVE_RECURSE
  "librev_scan.a"
)
