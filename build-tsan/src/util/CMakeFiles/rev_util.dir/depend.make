# Empty dependencies file for rev_util.
# This may be replaced when dependencies are built.
