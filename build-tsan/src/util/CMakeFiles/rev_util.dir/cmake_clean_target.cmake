file(REMOVE_RECURSE
  "librev_util.a"
)
