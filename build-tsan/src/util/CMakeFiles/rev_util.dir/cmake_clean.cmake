file(REMOVE_RECURSE
  "CMakeFiles/rev_util.dir/hex.cpp.o"
  "CMakeFiles/rev_util.dir/hex.cpp.o.d"
  "CMakeFiles/rev_util.dir/rng.cpp.o"
  "CMakeFiles/rev_util.dir/rng.cpp.o.d"
  "CMakeFiles/rev_util.dir/stats.cpp.o"
  "CMakeFiles/rev_util.dir/stats.cpp.o.d"
  "CMakeFiles/rev_util.dir/thread_pool.cpp.o"
  "CMakeFiles/rev_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/rev_util.dir/time.cpp.o"
  "CMakeFiles/rev_util.dir/time.cpp.o.d"
  "librev_util.a"
  "librev_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
