# Empty dependencies file for rev_x509.
# This may be replaced when dependencies are built.
