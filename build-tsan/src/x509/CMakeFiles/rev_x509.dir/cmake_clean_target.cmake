file(REMOVE_RECURSE
  "librev_x509.a"
)
