file(REMOVE_RECURSE
  "CMakeFiles/rev_x509.dir/certificate.cpp.o"
  "CMakeFiles/rev_x509.dir/certificate.cpp.o.d"
  "CMakeFiles/rev_x509.dir/describe.cpp.o"
  "CMakeFiles/rev_x509.dir/describe.cpp.o.d"
  "CMakeFiles/rev_x509.dir/extensions.cpp.o"
  "CMakeFiles/rev_x509.dir/extensions.cpp.o.d"
  "CMakeFiles/rev_x509.dir/name.cpp.o"
  "CMakeFiles/rev_x509.dir/name.cpp.o.d"
  "CMakeFiles/rev_x509.dir/spki.cpp.o"
  "CMakeFiles/rev_x509.dir/spki.cpp.o.d"
  "CMakeFiles/rev_x509.dir/verify.cpp.o"
  "CMakeFiles/rev_x509.dir/verify.cpp.o.d"
  "librev_x509.a"
  "librev_x509.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_x509.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
