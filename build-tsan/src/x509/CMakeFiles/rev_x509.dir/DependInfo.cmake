
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x509/certificate.cpp" "src/x509/CMakeFiles/rev_x509.dir/certificate.cpp.o" "gcc" "src/x509/CMakeFiles/rev_x509.dir/certificate.cpp.o.d"
  "/root/repo/src/x509/describe.cpp" "src/x509/CMakeFiles/rev_x509.dir/describe.cpp.o" "gcc" "src/x509/CMakeFiles/rev_x509.dir/describe.cpp.o.d"
  "/root/repo/src/x509/extensions.cpp" "src/x509/CMakeFiles/rev_x509.dir/extensions.cpp.o" "gcc" "src/x509/CMakeFiles/rev_x509.dir/extensions.cpp.o.d"
  "/root/repo/src/x509/name.cpp" "src/x509/CMakeFiles/rev_x509.dir/name.cpp.o" "gcc" "src/x509/CMakeFiles/rev_x509.dir/name.cpp.o.d"
  "/root/repo/src/x509/spki.cpp" "src/x509/CMakeFiles/rev_x509.dir/spki.cpp.o" "gcc" "src/x509/CMakeFiles/rev_x509.dir/spki.cpp.o.d"
  "/root/repo/src/x509/verify.cpp" "src/x509/CMakeFiles/rev_x509.dir/verify.cpp.o" "gcc" "src/x509/CMakeFiles/rev_x509.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/asn1/CMakeFiles/rev_asn1.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/rev_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
