// End-to-end integration tests crossing every module boundary: browsers
// visiting ecosystem servers, the soft-fail attack of §2.3, CRL caching
// economics, CRLSet- and Bloom-filter-backed checking, and the full
// scan -> validate -> crawl -> analyze loop on a miniature world.
#include <gtest/gtest.h>

#include "browser/client.h"
#include "browser/profiles.h"
#include "core/ca_audit.h"
#include "core/crawler.h"
#include "core/crlset_audit.h"
#include "core/ecosystem.h"
#include "core/pipeline.h"
#include "core/timeline.h"
#include "crlset/bloom.h"
#include "crlset/generator.h"
#include "net/cache.h"
#include "scan/scanner.h"

namespace rev {
namespace {

constexpr std::int64_t kDay = util::kSecondsPerDay;
constexpr util::Timestamp kNow = 1'420'000'000;  // Dec 31 2014

using browser::FindProfile;
using browser::Policy;
using browser::VisitOutcome;

// A miniature hand-built world: one root, one intermediate CA, two sites
// (one of which gets revoked), endpoints wired into a SimNet.
class MiniWorld : public ::testing::Test {
 protected:
  MiniWorld() : rng_(1234) {
    ca::CertificateAuthority::Options root_options;
    root_options.name = "MiniRoot";
    root_options.domain = "miniroot.sim";
    root_ = ca::CertificateAuthority::CreateRoot(root_options, rng_,
                                                 kNow - 2000 * kDay);
    ca::CertificateAuthority::Options int_options;
    int_options.name = "MiniCA";
    int_options.domain = "minica.sim";
    intermediate_ = root_->CreateIntermediate(int_options, rng_,
                                              kNow - 1000 * kDay);
    root_->RegisterEndpoints(&net_);
    intermediate_->RegisterEndpoints(&net_);
    roots_.Add(root_->cert());

    good_leaf_ = Issue("good.example.sim");
    bad_leaf_ = Issue("bad.example.sim");
    intermediate_->Revoke(bad_leaf_->tbs.serial, kNow - 5 * kDay,
                          x509::ReasonCode::kKeyCompromise);
  }

  x509::CertPtr Issue(std::string_view cn) {
    ca::CertificateAuthority::IssueOptions issue;
    issue.common_name = std::string(cn);
    issue.not_before = kNow - 100 * kDay;
    issue.lifetime_seconds = 365 * kDay;
    return intermediate_->Issue(issue, rng_);
  }

  tls::TlsServer ServerFor(const x509::CertPtr& leaf, bool staple = false) {
    tls::TlsServer::Config config;
    config.chain_der = {leaf->der, intermediate_->cert()->der};
    if (staple) {
      config.stapling_enabled = true;
      config.staple_requires_cache = false;
      config.staple_any_status = true;
      ca::CertificateAuthority* ca = intermediate_.get();
      const x509::Serial serial = leaf->tbs.serial;
      config.fetch_leaf_staple = [ca, serial](util::Timestamp t) {
        return ca->responder().StatusFor(serial, t).der;
      };
    }
    return tls::TlsServer(config);
  }

  VisitOutcome Visit(const char* browser_name, const char* os,
                     const x509::CertPtr& leaf, bool staple = false) {
    const browser::BrowserProfile* profile = FindProfile(browser_name, os);
    EXPECT_NE(profile, nullptr);
    browser::Client client(profile->policy, &net_, roots_);
    tls::TlsServer server = ServerFor(leaf, staple);
    return client.Visit(server, kNow);
  }

  util::Rng rng_;
  net::SimNet net_;
  x509::CertPool roots_;
  std::unique_ptr<ca::CertificateAuthority> root_;
  std::unique_ptr<ca::CertificateAuthority> intermediate_;
  x509::CertPtr good_leaf_;
  x509::CertPtr bad_leaf_;
};

TEST_F(MiniWorld, CheckingBrowsersCatchRevokedSite) {
  EXPECT_TRUE(Visit("IE 11", "Windows 10", good_leaf_).accepted());
  EXPECT_TRUE(Visit("IE 11", "Windows 10", bad_leaf_).rejected());
  EXPECT_TRUE(Visit("Safari 8", "OS X", bad_leaf_).rejected());
  EXPECT_TRUE(Visit("Firefox 40", "Windows", bad_leaf_).rejected());
  EXPECT_TRUE(Visit("Opera 31.0", "Linux", bad_leaf_).rejected());
}

TEST_F(MiniWorld, NonCheckingBrowsersAreOblivious) {
  // The paper's core risk: revoked but accepted.
  EXPECT_TRUE(Visit("Mobile Safari", "iOS 8", bad_leaf_).accepted());
  EXPECT_TRUE(Visit("Stock Browser", "Android 5.1", bad_leaf_).accepted());
  EXPECT_TRUE(Visit("IE Mobile", "Windows Phone 8.0", bad_leaf_).accepted());
  EXPECT_TRUE(Visit("Chrome 44", "OS X", bad_leaf_).accepted());  // non-EV
}

TEST_F(MiniWorld, SoftFailAttack) {
  // §2.3: an attacker who blocks revocation endpoints turns off revocation
  // checking for soft-fail browsers.
  EXPECT_TRUE(Visit("Firefox 40", "Windows", bad_leaf_).rejected());
  net_.SetUnresponsive(intermediate_->OcspHost(), true);
  net_.SetUnresponsive(intermediate_->CrlHost(), true);
  // Firefox soft-fails: the attack succeeds.
  EXPECT_TRUE(Visit("Firefox 40", "Windows", bad_leaf_).accepted());
  // IE 11 hard-fails at the leaf: the attack is caught.
  EXPECT_TRUE(Visit("IE 11", "Windows 10", bad_leaf_).rejected());
}

TEST_F(MiniWorld, StapledRevocationSurvivesBlockedResponder) {
  // OCSP Stapling defeats the same attacker for staple-respecting clients.
  net_.SetUnresponsive(intermediate_->OcspHost(), true);
  net_.SetUnresponsive(intermediate_->CrlHost(), true);
  const VisitOutcome outcome =
      Visit("Firefox 40", "Windows", bad_leaf_, /*staple=*/true);
  EXPECT_TRUE(outcome.rejected());
  EXPECT_TRUE(outcome.used_staple);
}

TEST_F(MiniWorld, RevocationLatencyCost) {
  // Checking costs network time; a stapled connection is nearly free.
  const VisitOutcome checked = Visit("IE 11", "Windows 10", good_leaf_);
  EXPECT_GT(checked.revocation_seconds, 0.0);
  EXPECT_GT(checked.revocation_bytes, 0u);
  const VisitOutcome stapled =
      Visit("Firefox 40", "Windows", good_leaf_, /*staple=*/true);
  EXPECT_TRUE(stapled.used_staple);
  EXPECT_EQ(stapled.ocsp_fetches, 0);
}

TEST_F(MiniWorld, CrlCachingSavesBandwidth) {
  net::CachingClient client(&net_);
  const std::string url = bad_leaf_->tbs.crl_urls[0];
  auto first = client.Get(url, kNow);
  ASSERT_TRUE(first.fetch.ok());
  auto second = client.Get(url, kNow + 3600);
  EXPECT_TRUE(second.from_cache);
  // §5.2: CRLs expire within ~24h, capping cache utility.
  auto next_day = client.Get(url, kNow + kDay + 1);
  EXPECT_FALSE(next_day.from_cache);
}

TEST_F(MiniWorld, CrlsetStyleCheckIsOffline) {
  // Build a CRLSet from the intermediate's CRL; a Chrome-like client can
  // then detect the revocation with zero network traffic.
  const crl::Crl& crl = intermediate_->GetCrl(
      intermediate_->ShardForSerial(bad_leaf_->tbs.serial), kNow);
  crlset::CrlSource source;
  source.parent_spki_sha256 = intermediate_->cert()->SubjectSpkiSha256();
  source.crl = &crl;
  const crlset::CrlSet set =
      crlset::GenerateCrlSet({source}, crlset::GeneratorConfig{}, 1);

  const Bytes parent = intermediate_->cert()->SubjectSpkiSha256();
  EXPECT_TRUE(set.IsRevoked(parent, bad_leaf_->tbs.serial));
  EXPECT_FALSE(set.IsRevoked(parent, good_leaf_->tbs.serial));
}

TEST_F(MiniWorld, BloomFilterFrontEnd) {
  // The §7.4 proposal: Bloom filter hit => confirm via CRL; miss => done.
  const crl::Crl& crl = intermediate_->GetCrl(
      intermediate_->ShardForSerial(bad_leaf_->tbs.serial), kNow);
  crlset::BloomFilter filter = crlset::BloomFilter::ForCapacity(1000, 0.01);
  const Bytes parent = intermediate_->cert()->SubjectSpkiSha256();
  for (const crl::CrlEntry& entry : crl.tbs.entries)
    filter.Insert(crlset::RevocationKey(parent, entry.serial));

  // No false negative on the revoked cert.
  EXPECT_TRUE(filter.MayContain(
      crlset::RevocationKey(parent, bad_leaf_->tbs.serial)));
  // The good cert is (almost surely) a miss => no CRL fetch needed.
  // If it were a false positive the protocol still works, just costs a fetch.
  if (!filter.MayContain(crlset::RevocationKey(parent, good_leaf_->tbs.serial))) {
    SUCCEED();
  } else {
    const crl::CrlIndex index(crl);
    EXPECT_FALSE(index.IsRevoked(good_leaf_->tbs.serial));
  }
}

// ---------------------------------------------------- full-loop pipeline ----

TEST(FullLoop, ScanValidateCrawlAnalyze) {
  core::EcosystemConfig config;
  config.scale = 0.0008;
  config.seed = 99;
  auto eco = core::Ecosystem::Build(config);
  const core::EcosystemConfig& c = eco->config();

  core::Pipeline pipeline(eco->roots());
  for (util::Timestamp t = c.study_start; t <= c.study_end; t += 14 * kDay)
    pipeline.IngestScan(scan::RunCertScan(eco->internet(), t));
  pipeline.Finalize();
  ASSERT_GT(pipeline.LeafSet().size(), 200u);

  core::RevocationCrawler crawler(&eco->net());
  crawler.CollectUrls(pipeline);
  for (util::Timestamp t = c.crawl_start; t <= c.study_end; t += 14 * kDay)
    crawler.CrawlAll(t);
  ASSERT_GT(crawler.total_revocations(), 20u);

  // Timeline is internally consistent.
  const auto points = core::ComputeRevocationTimeline(
      pipeline, crawler, util::MakeDate(2014, 1, 1), c.study_end, 14 * kDay);
  for (const auto& point : points) {
    EXPECT_LE(point.fresh_revoked, point.fresh);
    EXPECT_LE(point.alive_revoked, point.alive);
    EXPECT_LE(point.fresh_ev, point.fresh);
  }

  // Determinism: rebuilding the same-seed world reproduces the counts.
  auto eco2 = core::Ecosystem::Build(config);
  EXPECT_EQ(eco->total_issued(), eco2->total_issued());
  EXPECT_EQ(eco->total_revoked(), eco2->total_revoked());
  EXPECT_EQ(eco->internet().size(), eco2->internet().size());
}

TEST(FullLoop, CrawlerCachingReducesTraffic) {
  core::EcosystemConfig config;
  config.scale = 0.0008;
  config.seed = 100;
  auto eco = core::Ecosystem::Build(config);
  const core::EcosystemConfig& c = eco->config();

  core::Pipeline pipeline(eco->roots());
  pipeline.IngestScan(scan::RunCertScan(eco->internet(), c.study_end - kDay));
  pipeline.Finalize();

  core::RevocationCrawler crawler(&eco->net());
  crawler.CollectUrls(pipeline);
  crawler.CrawlAll(c.crawl_start);
  const std::uint64_t after_first = crawler.bytes_downloaded();
  // Re-crawling within CRL validity costs nothing (cache hits).
  crawler.CrawlAll(c.crawl_start + 3600);
  EXPECT_EQ(crawler.bytes_downloaded(), after_first);
  // A day later, web CRLs expired: new bytes flow.
  crawler.CrawlAll(c.crawl_start + kDay + 3600);
  EXPECT_GT(crawler.bytes_downloaded(), after_first);
}

}  // namespace
}  // namespace rev
