// Browser policy-engine tests: the 244-case suite structure, per-profile
// behaviors cross-checked against Table 2 of the paper, staple handling,
// and the matrix builder.
#include <gtest/gtest.h>

#include "browser/client.h"
#include "browser/matrix.h"
#include "browser/profiles.h"
#include "browser/testsuite.h"

namespace rev::browser {
namespace {

constexpr util::Timestamp kNow = 1'427'760'000;  // 2015-03-31
constexpr std::uint64_t kSeed = 42;

const Policy& PolicyOf(const char* browser, const char* os) {
  const BrowserProfile* profile = FindProfile(browser, os);
  EXPECT_NE(profile, nullptr) << browser << "/" << os;
  return profile->policy;
}

VisitOutcome RunTest(const TestCase& test, const Policy& policy) {
  return RunCase(test, policy, kSeed, kNow);
}

TestCase Revoked(int ints, int element, RevProtocol protocol, bool ev = false) {
  TestCase test;
  test.num_intermediates = ints;
  test.revoked_element = element;
  test.protocol = protocol;
  test.ev = ev;
  return test;
}

TestCase Unavailable(int ints, int element, RevProtocol protocol,
                     FailureMode mode, bool ev = false) {
  TestCase test;
  test.num_intermediates = ints;
  test.protocol = protocol;
  test.failure = mode;
  test.failure_element = element;
  test.ev = ev;
  return test;
}

// ------------------------------------------------------------ the suite ----

TEST(TestSuite, Has244Cases) {
  const std::vector<TestCase> suite = GenerateTestSuite();
  EXPECT_EQ(suite.size(), 244u);
  // Unique ids.
  std::set<int> ids;
  for (const TestCase& test : suite) ids.insert(test.id);
  EXPECT_EQ(ids.size(), 244u);
}

TEST(TestSuite, CoversAllDimensions) {
  const std::vector<TestCase> suite = GenerateTestSuite();
  std::set<int> chain_lengths;
  std::set<FailureMode> failures;
  bool has_ev = false, has_staple = false, has_multi = false;
  for (const TestCase& test : suite) {
    chain_lengths.insert(test.num_intermediates);
    failures.insert(test.failure);
    has_ev |= test.ev;
    has_staple |= test.stapling;
    has_multi |= test.multi_staple;
  }
  EXPECT_EQ(chain_lengths, (std::set<int>{0, 1, 2, 3}));
  EXPECT_TRUE(failures.contains(FailureMode::kNxdomain));
  EXPECT_TRUE(failures.contains(FailureMode::kHttp404));
  EXPECT_TRUE(failures.contains(FailureMode::kTimeout));
  EXPECT_TRUE(failures.contains(FailureMode::kOcspUnknown));
  EXPECT_TRUE(has_ev);
  EXPECT_TRUE(has_staple);
  EXPECT_TRUE(has_multi);
}

TEST(TestSuite, ValidChainsAcceptedByCheckingBrowser) {
  // A healthy, unrevoked chain is accepted even by the strictest browser.
  const Policy& ie11 = PolicyOf("IE 11", "Windows 8.1");
  for (int ints : {0, 1, 2, 3}) {
    const VisitOutcome outcome =
        RunTest(Revoked(ints, -1, RevProtocol::kBoth), ie11);
    EXPECT_TRUE(outcome.accepted()) << ints << ": " << outcome.reject_reason;
    EXPECT_TRUE(outcome.chain_valid);
  }
}

TEST(TestSuite, FullSuiteRunsForRepresentativeProfiles) {
  // Every one of the 244 cases must execute cleanly for a hard-fail, a
  // soft-fail, and a non-checking profile — and deterministically.
  const std::vector<TestCase> suite = GenerateTestSuite();
  for (const char* name : {"IE 11", "Firefox 40", "Mobile Safari"}) {
    const BrowserProfile* profile = nullptr;
    for (const BrowserProfile& p : AllProfiles())
      if (p.policy.browser == name) {
        profile = &p;
        break;
      }
    ASSERT_NE(profile, nullptr);
    int rejected = 0;
    for (const TestCase& test : suite) {
      const VisitOutcome first = RunTest(test, profile->policy);
      const VisitOutcome second = RunTest(test, profile->policy);
      EXPECT_EQ(first.decision, second.decision) << test.Description();
      EXPECT_TRUE(first.chain_valid) << test.Description();
      if (first.rejected()) ++rejected;
      // Only IE 10 warns; none of these three profiles should.
      EXPECT_FALSE(first.warned()) << name << " " << test.Description();
    }
    if (std::string(name) == "Mobile Safari") {
      EXPECT_EQ(rejected, 0) << "mobile browsers check nothing";
    } else {
      EXPECT_GT(rejected, 0);
    }
  }
}

TEST(Profiles, ThirtyCombinations) {
  EXPECT_EQ(AllProfiles().size(), 30u);
  EXPECT_EQ(Table2Columns().size(), 14u);
}

// ------------------------------------------------- per-profile behaviors ----

TEST(MobileBrowsers, NeverCheckAnything) {
  // §6.4: "not a single mobile browser checks revocation information".
  for (const BrowserProfile& profile : AllProfiles()) {
    if (!profile.mobile) continue;
    // Revoked leaf over both protocols: accepted regardless.
    EXPECT_TRUE(RunTest(Revoked(1, 0, RevProtocol::kBoth), profile.policy).accepted())
        << profile.policy.DisplayName();
    // Even a revoked intermediate.
    EXPECT_TRUE(RunTest(Revoked(2, 1, RevProtocol::kBoth), profile.policy).accepted())
        << profile.policy.DisplayName();
    // Zero revocation fetches.
    const VisitOutcome outcome = RunTest(Revoked(1, 0, RevProtocol::kBoth), profile.policy);
    EXPECT_EQ(outcome.crl_fetches + outcome.ocsp_fetches, 0)
        << profile.policy.DisplayName();
  }
}

TEST(AndroidBrowsers, RequestStapleButIgnoreIt) {
  const Policy& stock = PolicyOf("Stock Browser", "Android 4.4");
  TestCase test;
  test.num_intermediates = 1;
  test.protocol = RevProtocol::kOcspOnly;
  test.stapling = true;
  test.staple_status = ocsp::CertStatus::kRevoked;
  const VisitOutcome outcome = RunTest(test, stock);
  // Served a revoked staple, still validates and connects (§6.4).
  EXPECT_TRUE(outcome.accepted());
  EXPECT_FALSE(outcome.used_staple);
}

TEST(Firefox, ChecksOnlyOcspLeafForNonEv) {
  const Policy& ff = PolicyOf("Firefox 40", "Linux");
  // CRL-only revoked leaf: not checked.
  EXPECT_TRUE(RunTest(Revoked(1, 0, RevProtocol::kCrlOnly), ff).accepted());
  // OCSP revoked leaf: rejected.
  EXPECT_TRUE(RunTest(Revoked(1, 0, RevProtocol::kOcspOnly), ff).rejected());
  // OCSP revoked intermediate, non-EV: not checked.
  EXPECT_TRUE(RunTest(Revoked(2, 1, RevProtocol::kOcspOnly), ff).accepted());
  // ... but checked for EV.
  EXPECT_TRUE(RunTest(Revoked(2, 1, RevProtocol::kOcspOnly, true), ff).rejected());
}

TEST(Firefox, RejectsUnknownAndSoftFails) {
  const Policy& ff = PolicyOf("Firefox 40", "OS X");
  // OCSP unknown: correctly rejected.
  EXPECT_TRUE(
      RunTest(Unavailable(1, 0, RevProtocol::kOcspOnly, FailureMode::kOcspUnknown), ff)
          .rejected());
  // Responder down: soft-fail accept, and no CRL fallback even when present.
  EXPECT_TRUE(
      RunTest(Unavailable(1, 0, RevProtocol::kOcspOnly, FailureMode::kTimeout), ff)
          .accepted());
  TestCase both = Revoked(1, 0, RevProtocol::kBoth);
  both.failure = FailureMode::kOcspTimeout;
  both.failure_element = 0;
  EXPECT_TRUE(RunTest(both, ff).accepted());  // revoked in CRL, FF never looks
}

TEST(Chrome, OsxChecksOnlyEv) {
  const Policy& chrome = PolicyOf("Chrome 44", "OS X");
  EXPECT_TRUE(RunTest(Revoked(1, 0, RevProtocol::kOcspOnly), chrome).accepted());
  EXPECT_TRUE(RunTest(Revoked(1, 0, RevProtocol::kOcspOnly, true), chrome).rejected());
  EXPECT_TRUE(RunTest(Revoked(2, 1, RevProtocol::kCrlOnly), chrome).accepted());
  EXPECT_TRUE(RunTest(Revoked(2, 1, RevProtocol::kCrlOnly, true), chrome).rejected());
}

TEST(Chrome, WindowsChecksNonEvFirstIntermediateCrlOnly) {
  const Policy& chrome = PolicyOf("Chrome 44", "Windows");
  // Non-EV Int.1 via CRL-only chain: checked (Table 2 cell "3").
  EXPECT_TRUE(RunTest(Revoked(2, 1, RevProtocol::kCrlOnly), chrome).rejected());
  // But "only if it only has a CRL listed": with OCSP also present, no.
  EXPECT_TRUE(RunTest(Revoked(2, 1, RevProtocol::kBoth), chrome).accepted());
  // Non-EV leaf: never checked.
  EXPECT_TRUE(RunTest(Revoked(1, 0, RevProtocol::kCrlOnly), chrome).accepted());
  // Unavailable Int.1 CRL: rejected even for non-EV (unlike OS X).
  EXPECT_TRUE(
      RunTest(Unavailable(2, 1, RevProtocol::kCrlOnly, FailureMode::kTimeout), chrome)
          .rejected());
}

TEST(Chrome, OsxTriesCrlOnOcspFailureForEv) {
  const Policy& chrome = PolicyOf("Chrome 44", "OS X");
  TestCase test = Revoked(1, 0, RevProtocol::kBoth, /*ev=*/true);
  test.failure = FailureMode::kOcspTimeout;
  test.failure_element = 0;
  const VisitOutcome outcome = RunTest(test, chrome);
  EXPECT_TRUE(outcome.rejected());
  EXPECT_GT(outcome.crl_fetches, 0);
  // Non-EV: nothing checked at the leaf.
  test.ev = false;
  EXPECT_TRUE(RunTest(test, chrome).accepted());
}

TEST(Chrome, OsxDoesNotRespectRevokedStaple) {
  const Policy& chrome = PolicyOf("Chrome 44", "OS X");
  TestCase test;
  test.num_intermediates = 1;
  test.protocol = RevProtocol::kOcspOnly;
  test.stapling = true;
  test.staple_status = ocsp::CertStatus::kRevoked;
  test.ev = true;  // make Chrome check at all
  // Responder firewalled; Chrome ignores the revoked staple, tries the
  // responder, fails, soft-accepts (leaf position).
  EXPECT_TRUE(RunTest(test, chrome).accepted());
  // Chrome on Windows *does* respect the revoked staple.
  EXPECT_TRUE(RunTest(test, PolicyOf("Chrome 44", "Windows")).rejected());
}

TEST(Opera12, CrlAllPositionsOcspLeafOnly) {
  const Policy& opera = PolicyOf("Opera 12.17", "Windows");
  EXPECT_TRUE(RunTest(Revoked(2, 1, RevProtocol::kCrlOnly), opera).rejected());
  EXPECT_TRUE(RunTest(Revoked(2, 2, RevProtocol::kCrlOnly), opera).rejected());
  EXPECT_TRUE(RunTest(Revoked(1, 0, RevProtocol::kCrlOnly), opera).rejected());
  EXPECT_TRUE(RunTest(Revoked(1, 0, RevProtocol::kOcspOnly), opera).rejected());
  EXPECT_TRUE(RunTest(Revoked(2, 1, RevProtocol::kOcspOnly), opera).accepted());
  // Rejects unknown.
  EXPECT_TRUE(
      RunTest(Unavailable(1, 0, RevProtocol::kOcspOnly, FailureMode::kOcspUnknown), opera)
          .rejected());
  // Soft-fails unavailability everywhere.
  EXPECT_TRUE(
      RunTest(Unavailable(2, 1, RevProtocol::kCrlOnly, FailureMode::kTimeout), opera)
          .accepted());
}

TEST(Opera31, FirstPositionHardFailPlatformSplit) {
  const Policy& osx = PolicyOf("Opera 31.0", "OS X");
  const Policy& lin = PolicyOf("Opera 31.0", "Linux");
  // CRL first-intermediate unavailable: rejected on all platforms.
  EXPECT_TRUE(
      RunTest(Unavailable(2, 1, RevProtocol::kCrlOnly, FailureMode::kTimeout), osx)
          .rejected());
  EXPECT_TRUE(
      RunTest(Unavailable(2, 1, RevProtocol::kCrlOnly, FailureMode::kTimeout), lin)
          .rejected());
  // OCSP first-intermediate unavailable: rejected only on Linux/Windows.
  EXPECT_TRUE(
      RunTest(Unavailable(2, 1, RevProtocol::kOcspOnly, FailureMode::kTimeout), osx)
          .accepted());
  EXPECT_TRUE(
      RunTest(Unavailable(2, 1, RevProtocol::kOcspOnly, FailureMode::kTimeout), lin)
          .rejected());
  // Bare leaf (no intermediates) falls under the first-position rule.
  EXPECT_TRUE(
      RunTest(Unavailable(0, 0, RevProtocol::kCrlOnly, FailureMode::kTimeout), lin)
          .rejected());
  // Leaf below an intermediate: soft-fail.
  EXPECT_TRUE(
      RunTest(Unavailable(1, 0, RevProtocol::kCrlOnly, FailureMode::kTimeout), lin)
          .accepted());
}

TEST(Safari, ChecksEverythingFallsBackRejectsFirstCrl) {
  const Policy& safari = PolicyOf("Safari 8", "OS X");
  EXPECT_TRUE(RunTest(Revoked(2, 1, RevProtocol::kCrlOnly), safari).rejected());
  EXPECT_TRUE(RunTest(Revoked(2, 2, RevProtocol::kOcspOnly), safari).rejected());
  EXPECT_TRUE(RunTest(Revoked(1, 0, RevProtocol::kBoth), safari).rejected());
  // OCSP down, CRL has it: fallback finds the revocation.
  TestCase fallback = Revoked(1, 0, RevProtocol::kBoth);
  fallback.failure = FailureMode::kOcspTimeout;
  fallback.failure_element = 0;
  EXPECT_TRUE(RunTest(fallback, safari).rejected());
  // First-intermediate CRL unavailable: hard-fail.
  EXPECT_TRUE(
      RunTest(Unavailable(2, 1, RevProtocol::kCrlOnly, FailureMode::kNxdomain), safari)
          .rejected());
  // ... but OCSP-only chain unavailable: soft accept ("has a CRL" rule).
  EXPECT_TRUE(
      RunTest(Unavailable(2, 1, RevProtocol::kOcspOnly, FailureMode::kNxdomain), safari)
          .accepted());
  // Unknown treated as trusted (incorrect, per the paper).
  EXPECT_TRUE(
      RunTest(Unavailable(1, 0, RevProtocol::kOcspOnly, FailureMode::kOcspUnknown), safari)
          .accepted());
  // Safari never requests staples.
  EXPECT_FALSE(safari.request_staple);
}

TEST(Safari, KeychainRequireIfCertificateIndicates) {
  // §6.3: OS X's Keychain Access offers "Require if certificate indicates";
  // with it, Safari "does indeed reject all chains where any of the
  // revocation information is unavailable". Modeled as hard-fail at every
  // position.
  Policy strict = PolicyOf("Safari 8", "OS X");
  for (PositionPolicy* rule :
       {&strict.crl.leaf, &strict.crl.first_intermediate,
        &strict.crl.higher_intermediate, &strict.ocsp.leaf,
        &strict.ocsp.first_intermediate, &strict.ocsp.higher_intermediate}) {
    rule->on_unavailable = FailureAction::kReject;
  }

  // Default Safari soft-fails these; the strict setting rejects them all.
  const TestCase cases[] = {
      Unavailable(1, 0, RevProtocol::kOcspOnly, FailureMode::kTimeout),
      Unavailable(2, 2, RevProtocol::kCrlOnly, FailureMode::kNxdomain),
      Unavailable(2, 1, RevProtocol::kOcspOnly, FailureMode::kHttp404),
  };
  for (const TestCase& test : cases) {
    EXPECT_TRUE(RunTest(test, PolicyOf("Safari 8", "OS X")).accepted())
        << test.Description();
    EXPECT_TRUE(RunTest(test, strict).rejected()) << test.Description();
  }
  // Healthy chains still load.
  EXPECT_TRUE(RunTest(Revoked(2, -1, RevProtocol::kBoth), strict).accepted());
}

TEST(InternetExplorer, LeafUnavailableEvolution) {
  const TestCase leaf_down =
      Unavailable(1, 0, RevProtocol::kOcspOnly, FailureMode::kTimeout);
  // IE 7-9 accept; IE 10 warns; IE 11 rejects.
  EXPECT_TRUE(RunTest(leaf_down, PolicyOf("IE 9", "Windows 7")).accepted());
  EXPECT_TRUE(RunTest(leaf_down, PolicyOf("IE 10", "Windows 8")).warned());
  EXPECT_TRUE(RunTest(leaf_down, PolicyOf("IE 11", "Windows 10")).rejected());
}

TEST(InternetExplorer, ChecksEverythingWithCrlFallback) {
  const Policy& ie = PolicyOf("IE 8", "Windows 7");
  EXPECT_TRUE(RunTest(Revoked(3, 3, RevProtocol::kCrlOnly), ie).rejected());
  EXPECT_TRUE(RunTest(Revoked(3, 2, RevProtocol::kOcspOnly), ie).rejected());
  TestCase fallback = Revoked(1, 0, RevProtocol::kBoth);
  fallback.failure = FailureMode::kOcspTimeout;
  fallback.failure_element = 0;
  EXPECT_TRUE(RunTest(fallback, ie).rejected());
  // First-chain-element unavailable: reject; higher intermediate: accept.
  EXPECT_TRUE(
      RunTest(Unavailable(2, 1, RevProtocol::kCrlOnly, FailureMode::kHttp404), ie)
          .rejected());
  EXPECT_TRUE(
      RunTest(Unavailable(2, 2, RevProtocol::kCrlOnly, FailureMode::kHttp404), ie)
          .accepted());
}

TEST(FailureModes, AllFourBehaveEquivalentlyForSoftFail) {
  const Policy& ff = PolicyOf("Firefox 40", "Windows");
  for (FailureMode mode : {FailureMode::kNxdomain, FailureMode::kHttp404,
                           FailureMode::kTimeout}) {
    EXPECT_TRUE(RunTest(Unavailable(1, 0, RevProtocol::kOcspOnly, mode), ff).accepted())
        << FailureModeName(mode);
  }
  // Unknown is different for Firefox: rejected.
  EXPECT_TRUE(
      RunTest(Unavailable(1, 0, RevProtocol::kOcspOnly, FailureMode::kOcspUnknown), ff)
          .rejected());
}

TEST(Stapling, GoodStapleSatisfiesLeafWithoutFetch) {
  const Policy& ff = PolicyOf("Firefox 40", "OS X");
  TestCase test;
  test.num_intermediates = 1;
  test.protocol = RevProtocol::kOcspOnly;
  test.stapling = true;
  test.staple_status = ocsp::CertStatus::kGood;
  const VisitOutcome outcome = RunTest(test, ff);
  EXPECT_TRUE(outcome.accepted());
  EXPECT_TRUE(outcome.used_staple);
  EXPECT_EQ(outcome.ocsp_fetches, 0);
}

TEST(Stapling, NginxDefaultHidesRevokedStaple) {
  // With the unpatched server, the revoked staple is never sent; a
  // staple-respecting browser soft-fails against the firewalled responder.
  const Policy& ff = PolicyOf("Firefox 40", "OS X");
  TestCase test;
  test.num_intermediates = 1;
  test.protocol = RevProtocol::kOcspOnly;
  test.stapling = true;
  test.staple_status = ocsp::CertStatus::kRevoked;
  test.server_refuses_bad_staple = true;
  const VisitOutcome outcome = RunTest(test, ff);
  EXPECT_TRUE(outcome.accepted());
  EXPECT_FALSE(outcome.used_staple);
}

TEST(Stapling, MultiStapleCoversIntermediates) {
  // Extension ablation: RFC 6961 lets a hard-fail client validate the whole
  // chain with zero revocation fetches.
  Policy policy = PolicyOf("IE 11", "Windows 10");
  policy.request_multi_staple = true;
  TestCase test;
  test.num_intermediates = 2;
  test.protocol = RevProtocol::kOcspOnly;
  test.stapling = true;
  test.multi_staple = true;
  test.staple_status = ocsp::CertStatus::kGood;
  const VisitOutcome outcome = RunTest(test, policy);
  EXPECT_TRUE(outcome.accepted());
  EXPECT_TRUE(outcome.used_staple);
  EXPECT_EQ(outcome.ocsp_fetches, 0);

  // Revoked leaf in the multi-staple is caught.
  test.staple_status = ocsp::CertStatus::kRevoked;
  EXPECT_TRUE(RunTest(test, policy).rejected());
}

// --------------------------------------------------------------- matrix ----

class MatrixTest : public ::testing::Test {
 protected:
  static const Table2& GetTable() {
    static const Table2 table = BuildTable2(kSeed, kNow);
    return table;
  }

  static std::string Cell(const std::string& row_label,
                          const std::string& column) {
    const Table2& table = GetTable();
    for (const Table2::Row& row : table.rows) {
      if (row.label != row_label) continue;
      for (std::size_t i = 0; i < table.columns.size(); ++i) {
        if (table.columns[i] == column) return row.cells[i];
      }
    }
    return "<missing>";
  }

  // CRL section rows come first (6), then OCSP rows (6): disambiguate by
  // section when both share a label.
  static std::string CellInSection(const std::string& section,
                                   const std::string& row_label,
                                   const std::string& column) {
    const Table2& table = GetTable();
    for (const Table2::Row& row : table.rows) {
      if (row.section != section || row.label != row_label) continue;
      for (std::size_t i = 0; i < table.columns.size(); ++i) {
        if (table.columns[i] == column) return row.cells[i];
      }
    }
    return "<missing>";
  }
};

TEST_F(MatrixTest, ShapeMatchesPaper) {
  const Table2& table = GetTable();
  EXPECT_EQ(table.columns.size(), 14u);
  EXPECT_EQ(table.rows.size(), 16u);
}

TEST_F(MatrixTest, SpotChecksAgainstPaperTable2) {
  // CRL / Int. 1 Revoked row: "ev 3 ev 7 3 3 3 3 3 3 7 7 7 7".
  EXPECT_EQ(CellInSection("CRL", "Int. 1 Revoked", "Chrome 44 OS X"), "ev");
  EXPECT_EQ(CellInSection("CRL", "Int. 1 Revoked", "Chrome 44 Win."), "3");
  EXPECT_EQ(CellInSection("CRL", "Int. 1 Revoked", "Firefox 40"), "7");
  EXPECT_EQ(CellInSection("CRL", "Int. 1 Revoked", "Opera 12.17"), "3");
  EXPECT_EQ(CellInSection("CRL", "Int. 1 Revoked", "Safari 6-8"), "3");
  EXPECT_EQ(CellInSection("CRL", "Int. 1 Revoked", "IE 11"), "3");
  EXPECT_EQ(CellInSection("CRL", "Int. 1 Revoked", "iOS 6-8"), "7");
  EXPECT_EQ(CellInSection("CRL", "Int. 1 Revoked", "Andr. Stock"), "7");

  // CRL / Leaf Unavailable row: IE 10 = "a", IE 11 = "3", others accept.
  EXPECT_EQ(CellInSection("CRL", "Leaf Unavailable", "IE 10"), "a");
  EXPECT_EQ(CellInSection("CRL", "Leaf Unavailable", "IE 11"), "3");
  EXPECT_EQ(CellInSection("CRL", "Leaf Unavailable", "IE 7-9"), "7");
  EXPECT_EQ(CellInSection("CRL", "Leaf Unavailable", "Safari 6-8"), "7");

  // OCSP / Leaf Revoked: Firefox = "3" (checks leaf OCSP for all certs).
  EXPECT_EQ(CellInSection("OCSP", "Leaf Revoked", "Firefox 40"), "3");
  EXPECT_EQ(CellInSection("OCSP", "Leaf Revoked", "Chrome 44 OS X"), "ev");
  EXPECT_EQ(CellInSection("OCSP", "Leaf Revoked", "Opera 12.17"), "3");

  // OCSP / Int. 1 Revoked: Firefox = "ev", Opera 12.17 = "7".
  EXPECT_EQ(CellInSection("OCSP", "Int. 1 Revoked", "Firefox 40"), "ev");
  EXPECT_EQ(CellInSection("OCSP", "Int. 1 Revoked", "Opera 12.17"), "7");

  // OCSP / Int. 1 Unavailable: Opera 31.0 = "l/w", IE rows = "3".
  EXPECT_EQ(CellInSection("OCSP", "Int. 1 Unavailable", "Opera 31.0"), "l/w");
  EXPECT_EQ(CellInSection("OCSP", "Int. 1 Unavailable", "IE 7-9"), "3");
  EXPECT_EQ(CellInSection("OCSP", "Int. 1 Unavailable", "Chrome 44 OS X"), "7");

  // Int. 2+ Unavailable: universal soft-fail.
  for (const std::string& column : Table2Columns()) {
    const std::string cell = CellInSection("CRL", "Int. 2+ Unavailable", column);
    EXPECT_TRUE(cell == "7" || cell == "-") << column << " = " << cell;
  }

  // Behavior rows.
  EXPECT_EQ(Cell("Reject unknown status", "Firefox 40"), "3");
  EXPECT_EQ(Cell("Reject unknown status", "Opera 12.17"), "3");
  EXPECT_EQ(Cell("Reject unknown status", "Safari 6-8"), "7");
  EXPECT_EQ(Cell("Reject unknown status", "iOS 6-8"), "-");

  EXPECT_EQ(Cell("Try CRL on failure", "Chrome 44 OS X"), "ev");
  EXPECT_EQ(Cell("Try CRL on failure", "Firefox 40"), "7");
  EXPECT_EQ(Cell("Try CRL on failure", "Opera 31.0"), "l/w");
  EXPECT_EQ(Cell("Try CRL on failure", "Safari 6-8"), "3");
  EXPECT_EQ(Cell("Try CRL on failure", "IE 11"), "3");

  EXPECT_EQ(Cell("Request OCSP staple", "Safari 6-8"), "7");
  EXPECT_EQ(Cell("Request OCSP staple", "Andr. Stock"), "i");
  EXPECT_EQ(Cell("Request OCSP staple", "Andr. Chrome"), "i");
  EXPECT_EQ(Cell("Request OCSP staple", "Chrome 44 Lin."), "3");
  EXPECT_EQ(Cell("Request OCSP staple", "IE Mob. 8.0"), "7");

  EXPECT_EQ(Cell("Respect revoked staple", "Chrome 44 OS X"), "7");
  EXPECT_EQ(Cell("Respect revoked staple", "Chrome 44 Win."), "3");
  EXPECT_EQ(Cell("Respect revoked staple", "Firefox 40"), "3");
  EXPECT_EQ(Cell("Respect revoked staple", "Opera 31.0"), "l/w");
  EXPECT_EQ(Cell("Respect revoked staple", "Safari 6-8"), "-");
}

TEST_F(MatrixTest, LinuxChromeUntestableCells) {
  EXPECT_EQ(CellInSection("CRL", "Int. 1 Unavailable", "Chrome 44 Lin."), "-");
  EXPECT_EQ(Cell("Respect revoked staple", "Chrome 44 Lin."), "-");
  // But revoked rows are testable.
  EXPECT_EQ(CellInSection("CRL", "Int. 1 Revoked", "Chrome 44 Lin."), "ev");
}

TEST_F(MatrixTest, RendersWithoutCrashing) {
  const std::string rendered = RenderTable2(GetTable());
  EXPECT_NE(rendered.find("Int. 1 Revoked"), std::string::npos);
  EXPECT_NE(rendered.find("OCSP Stapling"), std::string::npos);
}

}  // namespace
}  // namespace rev::browser
