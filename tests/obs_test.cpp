// Observability tests: counter/gauge/histogram exactness under concurrent
// writers, span nesting and ring-buffer overflow accounting, the DumpJson()
// schema round-trip (parsed with a minimal JSON reader below), the
// `GET /metrics` exposition over SimNet, and the monotonic-counter
// regression for the caches. `ObsStress.*` is the target scripts/ci.sh runs
// under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/cache.h"
#include "net/simnet.h"
#include "obs/distrace.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "ocsp/ocsp.h"
#include "ocsp/responder.h"
#include "serve/frontend.h"
#include "x509/name.h"

namespace rev::obs {
namespace {

// ------------------------------------------------- minimal JSON reader ----
// Just enough JSON to round-trip the DumpJson()/ChromeTraceJson() schemas:
// objects, arrays, strings with escapes, numbers, literals.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    static const JsonValue missing;
    auto it = object.find(key);
    return it == object.end() ? missing : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue& out) {
    return ParseValue(out) && (SkipSpace(), pos_ == text_.size());
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue& out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': out.type = JsonValue::Type::kString;
                return ParseString(out.string);
      case 't': out.type = JsonValue::Type::kBool; out.boolean = true;
                return Literal("true");
      case 'f': out.type = JsonValue::Type::kBool; out.boolean = false;
                return Literal("false");
      case 'n': out.type = JsonValue::Type::kNull; return Literal("null");
      default:  return ParseNumber(out);
    }
  }

  bool Literal(const char* lit) {
    const std::size_t n = std::string_view(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return false;
    out.type = JsonValue::Type::kNumber;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool ParseString(std::string& out) {
    if (!Consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': pos_ += 4; c = '?'; break;  // good enough for our ASCII
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool ParseArray(JsonValue& out) {
    if (!Consume('[')) return false;
    out.type = JsonValue::Type::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      JsonValue element;
      if (!ParseValue(element)) return false;
      out.array.push_back(std::move(element));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseObject(JsonValue& out) {
    if (!Consume('{')) return false;
    out.type = JsonValue::Type::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      std::string key;
      SkipSpace();
      if (!ParseString(key) || !Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// Value of `name value` in a DumpText() exposition; dies if absent.
std::uint64_t ExpositionValue(const std::string& text,
                              const std::string& name) {
  const std::string prefix = name + " ";
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line(text.data() + pos,
                                (eol == std::string::npos ? text.size() : eol) -
                                    pos);
    if (line.substr(0, prefix.size()) == prefix) {
      return std::stoull(std::string(line.substr(prefix.size())));
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  ADD_FAILURE() << "instrument not in exposition: " << name;
  return ~0ull;
}

// ---------------------------------------------------------- instruments ----

TEST(Metrics, CounterExactUnderConcurrentWriters) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("test.counter_exact");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kOps = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kOps; ++i) counter.Increment();
      counter.Add(5);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * (kOps + 5));
}

TEST(Metrics, GaugeMovesBothWays) {
  Gauge& gauge = MetricsRegistry::Global().GetGauge("test.gauge");
  gauge.Add(10);
  gauge.Sub(4);
  EXPECT_EQ(gauge.Value(), 6);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 1000; ++i) {
        gauge.Add(3);
        gauge.Sub(3);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.Value(), 6);  // balanced adds cancel exactly
  gauge.Set(42);
  EXPECT_EQ(gauge.Value(), 42);
}

TEST(Metrics, HistogramBucketsMinMaxQuantiles) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("test.histogram_buckets");
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(7);    // bit_width 3 -> bucket 3 ([4,7])
  histogram.Record(8);    // bit_width 4 -> bucket 4 ([8,15])
  histogram.Record(1000);

  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1016u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.buckets[4], 1u);
  EXPECT_EQ(snap.buckets[10], 1u);  // 1000 in [512,1023]
  EXPECT_DOUBLE_EQ(snap.Mean(), 1016.0 / 5.0);
  // Quantiles are monotone and bounded by the observed range.
  EXPECT_LE(snap.Quantile(0.5), snap.Quantile(0.99));
  EXPECT_LE(snap.Quantile(0.99), 1024.0);
  EXPECT_EQ(HistogramSnapshot::BucketLowerBound(4), 8u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(4), 15u);
}

TEST(Metrics, HistogramExactTotalsUnderConcurrentWriters) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("test.histogram_threads");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kOps = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (std::uint64_t i = 0; i < kOps; ++i)
        histogram.Record(static_cast<std::uint64_t>(t) * kOps + i);
    });
  }
  for (auto& thread : threads) thread.join();

  const HistogramSnapshot snap = histogram.Snapshot();
  constexpr std::uint64_t kTotal = kThreads * kOps;
  EXPECT_EQ(snap.count, kTotal);
  EXPECT_EQ(snap.sum, kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, kTotal - 1);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(Metrics, RegistryReturnsSameInstrumentForSameName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("test.same_name");
  Counter& b = registry.GetCounter("test.same_name");
  EXPECT_EQ(&a, &b);
  // Labelled variants are distinct instruments.
  Counter& labelled = registry.GetCounter("test.same_name{shard=1}");
  EXPECT_NE(&a, &labelled);
  const std::size_t count = registry.InstrumentCount();
  registry.GetCounter("test.same_name");  // re-get: no new instrument
  EXPECT_EQ(registry.InstrumentCount(), count);
}

TEST(Metrics, DumpJsonRoundTrip) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json_counter").Add(12345);
  registry.GetGauge("test.json_gauge").Set(-7);
  Histogram& histogram = registry.GetHistogram("test.json_histogram");
  histogram.Record(100);
  histogram.Record(200);

  JsonValue doc;
  ASSERT_TRUE(JsonParser(registry.DumpJson()).Parse(doc))
      << "DumpJson() is not valid JSON";
  ASSERT_EQ(doc.type, JsonValue::Type::kObject);

  bool found_counter = false;
  for (const JsonValue& counter : doc.at("counters").array) {
    if (counter.at("name").string == "test.json_counter") {
      found_counter = true;
      EXPECT_EQ(counter.at("value").number, 12345);
    }
  }
  EXPECT_TRUE(found_counter);

  bool found_gauge = false;
  for (const JsonValue& gauge : doc.at("gauges").array) {
    if (gauge.at("name").string == "test.json_gauge") {
      found_gauge = true;
      EXPECT_EQ(gauge.at("value").number, -7);
    }
  }
  EXPECT_TRUE(found_gauge);

  bool found_histogram = false;
  for (const JsonValue& hist : doc.at("histograms").array) {
    if (hist.at("name").string != "test.json_histogram") continue;
    found_histogram = true;
    EXPECT_EQ(hist.at("count").number, 2);
    EXPECT_EQ(hist.at("sum").number, 300);
    EXPECT_EQ(hist.at("min").number, 100);
    EXPECT_EQ(hist.at("max").number, 200);
    // The bucket counts must add back up to the total count.
    double bucket_total = 0;
    for (const JsonValue& bucket : hist.at("buckets").array)
      bucket_total += bucket.at("count").number;
    EXPECT_EQ(bucket_total, 2);
  }
  EXPECT_TRUE(found_histogram);
}

// ---------------------------------------------------------------- spans ----

TEST(Trace, SpanNestingRecordsDepths) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Enable(1024);
  collector.Clear();
  {
    Span outer("test.outer");
    {
      Span middle("test.middle");
      Span inner("test.inner");
    }
  }
  collector.Disable();

  const std::vector<TraceEvent> events = collector.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  std::map<std::string, const TraceEvent*> by_name;
  for (const TraceEvent& e : events) by_name[e.name] = &e;
  ASSERT_TRUE(by_name.count("test.outer"));
  ASSERT_TRUE(by_name.count("test.middle"));
  ASSERT_TRUE(by_name.count("test.inner"));
  EXPECT_EQ(by_name["test.outer"]->depth, 0);
  EXPECT_EQ(by_name["test.middle"]->depth, 1);
  EXPECT_EQ(by_name["test.inner"]->depth, 2);
  // Children start no earlier and end no later than the parent.
  const TraceEvent& outer = *by_name["test.outer"];
  for (const char* child : {"test.middle", "test.inner"}) {
    const TraceEvent& e = *by_name[child];
    EXPECT_GE(e.start_ns, outer.start_ns);
    EXPECT_LE(e.start_ns + e.dur_ns, outer.start_ns + outer.dur_ns);
  }
  collector.Clear();
}

TEST(Trace, RingOverflowKeepsNewestAndCountsDropped) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Enable(8);
  collector.Clear();
  for (int i = 0; i < 20; ++i) Span span("test.overflow");
  collector.Disable();

  EXPECT_EQ(collector.Snapshot().size(), 8u);
  EXPECT_EQ(collector.dropped(), 12u);
  collector.Clear();
  collector.Enable(1 << 15);  // restore default capacity for later tests
  collector.Disable();
}

TEST(Trace, ChromeTraceJsonParsesAndProfileAggregates) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Enable(1024);
  collector.Clear();
  { Span span("test.export"); }
  { Span span("test.export"); }
  collector.Disable();

  JsonValue doc;
  ASSERT_TRUE(JsonParser(collector.ChromeTraceJson()).Parse(doc))
      << "ChromeTraceJson() is not valid JSON";
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::kArray);
  ASSERT_EQ(events.array.size(), 2u);
  for (const JsonValue& event : events.array) {
    EXPECT_EQ(event.at("name").string, "test.export");
    EXPECT_EQ(event.at("ph").string, "X");
    EXPECT_GE(event.at("dur").number, 0);
  }
  EXPECT_EQ(doc.at("otherData").at("dropped").number, 0);

  const std::string profile = collector.TextProfile();
  EXPECT_NE(profile.find("test.export"), std::string::npos);
  collector.Clear();
}

TEST(Trace, DisabledSpanRecordsNothing) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Disable();
  collector.Clear();
  { Span span("test.disabled"); }
  EXPECT_TRUE(collector.Snapshot().empty());
}

// ------------------------------------------------------ serve exposition ----

constexpr util::Timestamp kNow = 1'412'208'000;  // 2014-10-02

x509::Certificate MakeIssuerCert() {
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial{0x31};
  tbs.issuer = tbs.subject = x509::Name::Make("Obs Test CA", "Test");
  tbs.not_before = 0;
  tbs.not_after = kNow + 100'000'000;
  tbs.public_key = crypto::SimKeyFromLabel("obs-issuer").Public();
  tbs.basic_constraints = {true, -1};
  return x509::SignCertificate(tbs, crypto::SimKeyFromLabel("obs-issuer"));
}

Bytes EncodeRequestFor(const x509::Certificate& issuer,
                       const x509::Serial& serial) {
  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(issuer, serial)};
  return ocsp::EncodeOcspRequest(request);
}

TEST(ObsServe, MetricsEndpointOverSimNet) {
  const x509::Certificate issuer = MakeIssuerCert();
  ocsp::Responder responder(issuer, crypto::SimKeyFromLabel("obs-issuer"));
  responder.AddCertificate(x509::Serial{0x01});

  serve::Frontend frontend;
  frontend.AttachResponder(&responder);

  net::SimNet net;
  net.AddHost("ocsp.obs.test",
              [&](const net::HttpRequest& request, util::Timestamp now) {
                return frontend.HandleHttp(request, now);
              });

  // A served request, then the exposition must carry it under this
  // frontend's label.
  const net::FetchResult served =
      net.Post("http://ocsp.obs.test/",
               EncodeRequestFor(issuer, x509::Serial{0x01}), kNow);
  ASSERT_TRUE(served.ok());

  const net::FetchResult metrics =
      net.Get("http://ocsp.obs.test/metrics", kNow);
  ASSERT_TRUE(metrics.ok());
  const std::string text(metrics.response.body.begin(),
                         metrics.response.body.end());
  const std::string& label = frontend.metrics_label();
  EXPECT_EQ(ExpositionValue(text, "serve.requests{" + label + "}"), 1u);
  EXPECT_EQ(ExpositionValue(text, "serve.malformed{" + label + "}"), 0u);

  // /metrics is an exact path: any other GET is still an OCSP request (the
  // malformed ones get an OCSP error response, not a 404).
  const net::FetchResult other = net.Get("http://ocsp.obs.test/metricsX", kNow);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other.response.body.empty());
  EXPECT_EQ(frontend.counters().malformed, 1u);
}

TEST(ObsStress, FrontendCountersMatchExpositionUnderLoad) {
  const x509::Certificate issuer = MakeIssuerCert();
  ocsp::Responder responder(issuer, crypto::SimKeyFromLabel("obs-issuer"));
  constexpr std::size_t kCerts = 64;
  for (std::size_t i = 0; i < kCerts; ++i)
    responder.AddCertificate(x509::Serial{0x40, static_cast<std::uint8_t>(i)});

  serve::Frontend frontend;
  frontend.AttachResponder(&responder);
  frontend.RebuildAll(kNow);

  std::vector<Bytes> requests;
  for (std::size_t i = 0; i < kCerts; ++i)
    requests.push_back(EncodeRequestFor(
        issuer, x509::Serial{0x40, static_cast<std::uint8_t>(i)}));

  constexpr int kThreads = 8;
  constexpr std::size_t kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t op = 0; op < kOps; ++op) {
        const auto result =
            frontend.Serve(requests[(t * 31 + op) % kCerts], kNow);
        EXPECT_TRUE(result.body != nullptr);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // The struct accessor and the /metrics exposition read the same sharded
  // atomics; once writers have joined the two must agree exactly.
  const serve::Frontend::Counters counters = frontend.counters();
  EXPECT_EQ(counters.requests, kThreads * kOps);
  const std::string text = MetricsRegistry::Global().DumpText();
  const std::string& label = frontend.metrics_label();
  EXPECT_EQ(ExpositionValue(text, "serve.requests{" + label + "}"),
            counters.requests);
  EXPECT_EQ(ExpositionValue(text, "serve.cache_hits{" + label + "}"),
            counters.cache_hits);
  EXPECT_EQ(ExpositionValue(text, "serve.cache_misses{" + label + "}"),
            counters.cache_misses);
  EXPECT_EQ(ExpositionValue(text, "serve.shed{" + label + "}"), counters.shed);
  EXPECT_EQ(counters.cache_hits + counters.cache_misses +
                counters.cache_expired + counters.shed,
            counters.requests);

  // The latency histogram saw every non-shed request, and the shim exposes
  // the same count with mean within the recorded range.
  const HistogramSnapshot latency = frontend.latency_histogram();
  EXPECT_EQ(latency.count, counters.requests - counters.shed);
  const util::Accumulator shim = frontend.latency();
  EXPECT_EQ(shim.Count(), latency.count);
  EXPECT_GE(shim.Mean() * 1e9, static_cast<double>(latency.min));
  EXPECT_LE(shim.Mean() * 1e9, static_cast<double>(latency.max) + 1);
}

// ------------------------------------------------- monotonic regression ----

TEST(Monotonic, CachingClientCountersNeverDecrease) {
  net::SimNet net;
  net.AddHost("crl.obs.test",
              [](const net::HttpRequest&, util::Timestamp) {
                net::HttpResponse response;
                response.body = Bytes{0x01, 0x02};
                response.max_age = 100;
                return response;
              });
  net::CachingClient client(&net);

  std::uint64_t last_hits = 0, last_misses = 0, last_evictions = 0;
  const auto check_monotonic = [&] {
    EXPECT_GE(client.hits(), last_hits);
    EXPECT_GE(client.misses(), last_misses);
    EXPECT_GE(client.evictions(), last_evictions);
    last_hits = client.hits();
    last_misses = client.misses();
    last_evictions = client.evictions();
  };

  client.Get("http://crl.obs.test/a.crl", 1000);  // miss
  check_monotonic();
  EXPECT_EQ(client.misses(), 1u);
  client.Get("http://crl.obs.test/a.crl", 1050);  // hit
  check_monotonic();
  EXPECT_EQ(client.hits(), 1u);
  client.Get("http://crl.obs.test/a.crl", 2000);  // expired -> evict + miss
  check_monotonic();
  EXPECT_EQ(client.evictions(), 1u);
  EXPECT_EQ(client.misses(), 2u);
  client.PruneExpired(5000);  // sweep adds, never resets
  check_monotonic();
  client.Clear();  // dropping entries must not touch the tallies
  check_monotonic();
  EXPECT_EQ(client.misses(), 2u);
}

TEST(Monotonic, ResponseCacheCountersSurviveRefreshAndEpochSwap) {
  const x509::Certificate issuer = MakeIssuerCert();
  ocsp::Responder responder(issuer, crypto::SimKeyFromLabel("obs-issuer"));
  responder.AddCertificate(x509::Serial{0x05});
  responder.AddCertificate(x509::Serial{0x06});

  serve::Frontend frontend;
  frontend.AttachResponder(&responder);
  frontend.RebuildAll(kNow);

  const serve::ResponseCache& cache = frontend.cache();
  std::uint64_t last_hits = 0, last_misses = 0, last_expired = 0;
  const auto check_monotonic = [&] {
    EXPECT_GE(cache.hits(), last_hits);
    EXPECT_GE(cache.misses(), last_misses);
    EXPECT_GE(cache.expired(), last_expired);
    last_hits = cache.hits();
    last_misses = cache.misses();
    last_expired = cache.expired();
  };

  const Bytes request = EncodeRequestFor(issuer, x509::Serial{0x05});
  frontend.Serve(request, kNow);  // precomputed -> hit
  check_monotonic();
  EXPECT_EQ(cache.hits(), 1u);

  // Maintenance re-sign: tallies keep counting up across the batch swap.
  frontend.RefreshStale(kNow + 1);
  frontend.Serve(request, kNow + 1);
  check_monotonic();
  EXPECT_EQ(cache.hits(), 2u);

  // An epoch swap (revocation applied through the observer) invalidates the
  // entry — the next lookup is a miss, and nothing ever decreases.
  responder.Revoke(x509::Serial{0x05}, kNow + 2,
                   x509::ReasonCode::kKeyCompromise);
  frontend.Serve(request, kNow + 3);
  check_monotonic();
  EXPECT_EQ(cache.misses(), 1u);
}

// ------------------------------------------------- distributed tracing ----

TEST(DistTrace, InternNameStableAcrossThreads) {
  // The regression this pins: TraceEvent::name used to require string
  // literals; dynamic names (e.g. "replica-3.fleet.sim") must intern to
  // one stable pointer, no matter which thread interns first.
  constexpr int kThreads = 8;
  std::vector<const char*> seen(kThreads * 2);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      const std::string dynamic = "obs.intern." + std::string("dynamic");
      seen[t * 2] = InternName(dynamic);
      seen[t * 2 + 1] = InternName("obs.intern.dynamic");
    });
  }
  for (auto& thread : threads) thread.join();
  for (const char* p : seen) {
    EXPECT_EQ(p, seen[0]);
    EXPECT_STREQ(p, "obs.intern.dynamic");
  }
  // Interning again later (different backing string) still dedupes.
  EXPECT_EQ(InternName(std::string("obs.intern.") + "dynamic"), seen[0]);
}

TEST(DistTrace, TraceparentRoundTrip) {
  const TraceId trace = MakeTraceId(0xDEAD, 0xBEEF);
  const SpanContext context{trace, RootSpanId(trace)};
  const std::string header = FormatTraceparent(context);
  EXPECT_EQ(header.size(), 55u);  // "00-" + 32 + "-" + 16 + "-01"
  SpanContext parsed;
  ASSERT_TRUE(ParseTraceparent(header, &parsed));
  EXPECT_EQ(parsed.trace.hi, context.trace.hi);
  EXPECT_EQ(parsed.trace.lo, context.trace.lo);
  EXPECT_EQ(parsed.span, context.span);

  SpanContext reject;
  EXPECT_FALSE(ParseTraceparent("", &reject));
  EXPECT_FALSE(ParseTraceparent("garbage", &reject));
  EXPECT_FALSE(ParseTraceparent(header.substr(0, 54), &reject));
  std::string bad_hex = header;
  bad_hex[5] = 'z';
  EXPECT_FALSE(ParseTraceparent(bad_hex, &reject));
}

TEST(DistTrace, IdDerivationIsPure) {
  const TraceId a = MakeTraceId(1, 2);
  EXPECT_EQ(a.hi, MakeTraceId(1, 2).hi);
  EXPECT_EQ(a.lo, MakeTraceId(1, 2).lo);
  EXPECT_TRUE(a.valid());
  const TraceId b = MakeTraceId(1, 3);
  EXPECT_TRUE(a.hi != b.hi || a.lo != b.lo);

  const SpanContext root{a, RootSpanId(a)};
  EXPECT_EQ(DeriveSpanId(root, 42), DeriveSpanId(root, 42));
  EXPECT_NE(DeriveSpanId(root, 42), DeriveSpanId(root, 43));
  EXPECT_NE(DeriveSpanId(root, 42), root.span);
}

TEST(DistTrace, CriticalPathTilesHedgedTrace) {
  // A hand-built hedged request: the losing leg spans the whole window,
  // the winning hedge overlaps its tail. The extractor must tile the
  // root's window exactly — segments sum to the root duration with no
  // gaps — attributing overlap to the latest-ending deepest span.
  const TraceId trace = MakeTraceId(7, 7);
  std::vector<DistSpan> spans;
  DistSpan root;
  root.trace = trace;
  root.span = 1;
  root.parent = 0;
  root.name = "fleet.query";
  root.node = "client";
  root.start_ns = 1'000;
  root.end_ns = 2'000;
  spans.push_back(root);
  DistSpan losing = root;
  losing.span = 2;
  losing.parent = 1;
  losing.name = "fleet.attempt";
  losing.start_ns = 1'000;
  losing.end_ns = 2'000;
  spans.push_back(losing);
  DistSpan exchange = losing;
  exchange.span = 3;
  exchange.parent = 2;
  exchange.name = "net.exchange";
  exchange.start_ns = 1'100;
  exchange.end_ns = 1'900;
  spans.push_back(exchange);
  DistSpan hedge = root;
  hedge.span = 4;
  hedge.parent = 1;
  hedge.name = "fleet.hedge";
  hedge.start_ns = 1'600;
  hedge.end_ns = 1'950;
  spans.push_back(hedge);

  const std::vector<PathSegment> path = CriticalPath(spans);
  ASSERT_FALSE(path.empty());
  std::uint64_t total = 0;
  std::uint64_t cursor = root.start_ns;
  for (const PathSegment& segment : path) {
    EXPECT_EQ(segment.start_ns, cursor);  // gap-free tiling, in order
    EXPECT_GE(segment.end_ns, segment.start_ns);
    cursor = segment.end_ns;
    total += segment.dur_ns();
  }
  EXPECT_EQ(cursor, root.end_ns);
  EXPECT_EQ(total, root.end_ns - root.start_ns);
}

TEST(DistTrace, CollectorRoundTripsThroughDumpJson) {
  DistTraceCollector& collector = DistTraceCollector::Global();
  collector.Clear();
  collector.Enable();
  const TraceId trace = MakeTraceId(11, 12);
  DistSpan span;
  span.trace = trace;
  span.span = RootSpanId(trace);
  span.parent = 0;
  span.name = InternName("obs.dump.root");
  span.node = InternName("node-a");
  span.kind = SpanKind::kClient;
  span.status = 200;
  span.start_ns = 5'000;
  span.end_ns = 9'000;
  collector.Record(span);
  collector.Disable();

  const std::string json = DistTraceCollector::DumpJson({span});
  JsonValue parsed;
  ASSERT_TRUE(JsonParser(json).Parse(parsed)) << json;
  const auto& spans = parsed.at("spans").array;
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].at("trace").string, trace.Hex());
  EXPECT_EQ(spans[0].at("name").string, "obs.dump.root");
  EXPECT_EQ(spans[0].at("node").string, "node-a");
  EXPECT_EQ(spans[0].at("kind").string, "client");
  EXPECT_EQ(spans[0].at("dur_ns").number, 4'000);

  const auto snap = collector.SnapshotTrace(trace);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].span, span.span);
  collector.Clear();
}

// ------------------------------------------------------------ exemplars ----

TEST(Metrics, HistogramExemplarTagsBucketAndSurvivesJson) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram& histogram =
      registry.GetHistogram("test.exemplar_histogram");
  const Exemplar first{0xAAAA, 0xBBBB};
  const Exemplar second{0xCCCC, 0xDDDD};
  histogram.Record(1);                          // bucket 1, no exemplar
  histogram.RecordWithExemplar(1000, first);    // bucket 10
  histogram.RecordWithExemplar(1001, second);   // same bucket: newest wins

  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_FALSE(snap.exemplars[1].valid());
  ASSERT_TRUE(snap.exemplars[10].valid());
  EXPECT_EQ(snap.exemplars[10].trace_hi, second.trace_hi);
  EXPECT_EQ(snap.exemplars[10].trace_lo, second.trace_lo);
  EXPECT_EQ(snap.exemplars[10].Hex(), "000000000000cccc000000000000dddd");

  // Exemplars survive the JSON exposition round trip...
  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseMetricsJson(registry.DumpJson(), &parsed));
  const HistogramSnapshot* round = nullptr;
  for (const auto& h : parsed.histograms)
    if (h.name == "test.exemplar_histogram") round = &h.snapshot;
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->count, snap.count);
  ASSERT_TRUE(round->exemplars[10].valid());
  EXPECT_EQ(round->exemplars[10].Hex(), snap.exemplars[10].Hex());

  // ...and through a merge: a valid source exemplar replaces the target's.
  MetricsSnapshot merged;
  MergeSnapshot(&merged, parsed);
  const HistogramSnapshot* merged_hist = nullptr;
  for (const auto& h : merged.histograms)
    if (h.name == "test.exemplar_histogram") merged_hist = &h.snapshot;
  ASSERT_NE(merged_hist, nullptr);
  EXPECT_EQ(merged_hist->exemplars[10].Hex(), snap.exemplars[10].Hex());
}

// ------------------------------------------------------------- escaping ----

TEST(Metrics, ExpositionEscapesHostileLabelValues) {
  // Label values carrying the exposition's own delimiters — '"', '{',
  // '}' — must come back intact from DumpJson/ParseMetricsJson, and
  // DumpJson must stay machine-parseable.
  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::string name = "test.escape{path=\"a{b}c\\\"d\"}";
  registry.GetCounter(name).Add(77);

  const std::string json = registry.DumpJson();
  JsonValue parsed_json;
  ASSERT_TRUE(JsonParser(json).Parse(parsed_json));

  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseMetricsJson(json, &parsed));
  bool found = false;
  for (const auto& c : parsed.counters) {
    if (c.name == name) {
      found = true;
      EXPECT_EQ(c.value, 77);
    }
  }
  EXPECT_TRUE(found) << json;

  // The text exposition carries the name verbatim (it is line-, not
  // quote-delimited, so no escaping is needed there).
  EXPECT_EQ(ExpositionValue(registry.DumpText(), name), 77u);
}

// ------------------------------------------------------- SLO burn rates ----

TEST(Slo, BurnRateFiresInStormWindowsOnly) {
  const auto feed = [](SloMonitor& slo) {
    slo.AddObjective({.name = "availability",
                      .objective = 0.999,
                      .window_seconds = 60,
                      .short_windows = 1,
                      .long_windows = 3,
                      .burn_threshold = 4.0});
    // Five clean minutes, three stormy ones, two clean again.
    for (int w = 0; w < 5; ++w) slo.Record("availability", w * 60, 1000, 1000);
    for (int w = 5; w < 8; ++w) slo.Record("availability", w * 60, 900, 1000);
    for (int w = 8; w < 10; ++w)
      slo.Record("availability", w * 60, 1000, 1000);
  };
  SloMonitor slo;
  feed(slo);

  const std::vector<SloMonitor::Alert> alerts = slo.AlertTimeline();
  ASSERT_FALSE(alerts.empty());
  for (const SloMonitor::Alert& alert : alerts) {
    // Storm windows are [300, 480); the long (3-window) confirmation keeps
    // the clean windows on either side silent, and the short window makes
    // recovery immediate at window 8.
    EXPECT_GE(alert.window_start, 5 * 60);
    EXPECT_LT(alert.window_start, 8 * 60);
    EXPECT_GT(alert.short_burn, 4.0);
    EXPECT_GT(alert.long_burn, 4.0);
  }

  // The timeline is a pure function of the tallies: an identically fed
  // monitor serializes byte-identically.
  SloMonitor again;
  feed(again);
  EXPECT_EQ(slo.TimelineJson(), again.TimelineJson());
  EXPECT_NE(slo.TimelineJson().find("\"alert_timeline\""), std::string::npos);
}

TEST(Slo, UnknownObjectiveAndEmptyWindowsAreSilent) {
  SloMonitor slo;
  slo.AddObjective({.name = "latency", .objective = 0.99});
  slo.Record("nonexistent", 0, 0, 1000);  // ignored, not a crash
  EXPECT_TRUE(slo.AlertTimeline().empty());
  // Recording zero traffic never divides by zero or fires.
  slo.Record("latency", 0, 0, 0);
  EXPECT_TRUE(slo.AlertTimeline().empty());
}

// ---------------------------------------- exposition under concurrency ----

TEST(ObsStress, MetricsEndpointsConcurrentWithServeBatch) {
  const x509::Certificate issuer = MakeIssuerCert();
  ocsp::Responder responder(issuer, crypto::SimKeyFromLabel("obs-issuer"));
  constexpr std::size_t kCerts = 32;
  for (std::size_t i = 0; i < kCerts; ++i)
    responder.AddCertificate(x509::Serial{0x60, static_cast<std::uint8_t>(i)});

  serve::Frontend frontend;
  frontend.AttachResponder(&responder);
  frontend.RebuildAll(kNow);

  std::vector<Bytes> bodies;
  for (std::size_t i = 0; i < kCerts; ++i)
    bodies.push_back(EncodeRequestFor(
        issuer, x509::Serial{0x60, static_cast<std::uint8_t>(i)}));

  // Writers hammer the batch path while readers scrape both expositions
  // through the same HandleHttp adapter — the TSan target for the scrape
  // path (ci.sh runs ObsStress.* under -fsanitize=thread).
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr std::size_t kBatches = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kBatches; ++round) {
        std::vector<BytesView> batch;
        for (std::size_t i = 0; i < 8; ++i)
          batch.push_back(bodies[(t * 13 + round + i) % kCerts]);
        const auto results = frontend.ServeBatch(batch, kNow);
        EXPECT_EQ(results.size(), batch.size());
      }
    });
  }
  std::atomic<std::uint64_t> scrapes{0};
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (std::size_t round = 0; round < kBatches; ++round) {
        net::HttpRequest text_request;
        text_request.method = "GET";
        text_request.path = "/metrics";
        const net::HttpResponse text = frontend.HandleHttp(text_request, kNow);
        EXPECT_EQ(text.status, 200);
        EXPECT_FALSE(text.body.empty());
        net::HttpRequest json_request;
        json_request.method = "GET";
        json_request.path = "/metrics.json";
        const net::HttpResponse json = frontend.HandleHttp(json_request, kNow);
        EXPECT_EQ(json.status, 200);
        MetricsSnapshot snapshot;
        EXPECT_TRUE(ParseMetricsJson(
            std::string_view(reinterpret_cast<const char*>(json.body.data()),
                             json.body.size()),
            &snapshot));
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(scrapes.load(), kReaders * kBatches);

  // Settled scrape agrees with the struct counters exactly.
  net::HttpRequest final_request;
  final_request.method = "GET";
  final_request.path = "/metrics.json";
  const net::HttpResponse final_json = frontend.HandleHttp(final_request, kNow);
  MetricsSnapshot snapshot;
  ASSERT_TRUE(ParseMetricsJson(
      std::string_view(reinterpret_cast<const char*>(final_json.body.data()),
                       final_json.body.size()),
      &snapshot));
  const std::string wanted = "serve.requests{" + frontend.metrics_label() + "}";
  bool found = false;
  for (const auto& c : snapshot.counters) {
    if (c.name == wanted) {
      found = true;
      EXPECT_EQ(static_cast<std::uint64_t>(c.value),
                frontend.counters().requests);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rev::obs
