// CRLSet structure/generator tests plus Bloom filter and Golomb Compressed
// Set property tests (no false negatives, FPR within tolerance, size math).
#include <gtest/gtest.h>

#include "crl/crl.h"
#include "crlset/bloom.h"
#include "crlset/crlset.h"
#include "crlset/gcs.h"
#include "crlset/generator.h"
#include "util/rng.h"

namespace rev::crlset {
namespace {

constexpr util::Timestamp kNow = 1'412'208'000;

x509::Serial RandomSerial(util::Rng& rng, int len = 16) {
  x509::Serial s(static_cast<std::size_t>(len));
  rng.Fill(s.data(), s.size());
  if (s[0] == 0) s[0] = 1;
  return s;
}

Bytes RandomParent(util::Rng& rng) {
  Bytes p(32);
  rng.Fill(p.data(), p.size());
  return p;
}

// -------------------------------------------------------------- crlset ----

TEST(CrlSet, AddAndLookup) {
  util::Rng rng(1);
  CrlSet set;
  const Bytes parent = RandomParent(rng);
  const x509::Serial serial = RandomSerial(rng);
  EXPECT_FALSE(set.CoversParent(parent));
  set.AddEntry(parent, serial);
  EXPECT_TRUE(set.CoversParent(parent));
  EXPECT_TRUE(set.IsRevoked(parent, serial));
  EXPECT_FALSE(set.IsRevoked(parent, RandomSerial(rng)));
  EXPECT_FALSE(set.IsRevoked(RandomParent(rng), serial));
  EXPECT_EQ(set.NumParents(), 1u);
  EXPECT_EQ(set.NumEntries(), 1u);
}

TEST(CrlSet, DuplicatesCollapse) {
  util::Rng rng(2);
  CrlSet set;
  const Bytes parent = RandomParent(rng);
  const x509::Serial serial = RandomSerial(rng);
  set.AddEntry(parent, serial);
  set.AddEntry(parent, serial);
  EXPECT_EQ(set.NumEntries(), 1u);
}

TEST(CrlSet, BlockedSpkis) {
  util::Rng rng(3);
  CrlSet set;
  const Bytes spki = RandomParent(rng);
  EXPECT_FALSE(set.IsBlockedSpki(spki));
  set.AddBlockedSpki(spki);
  EXPECT_TRUE(set.IsBlockedSpki(spki));
}

TEST(CrlSet, SerializeRoundTrip) {
  util::Rng rng(4);
  CrlSet set;
  set.sequence = 77;
  for (int p = 0; p < 5; ++p) {
    const Bytes parent = RandomParent(rng);
    for (int s = 0; s < 20; ++s) set.AddEntry(parent, RandomSerial(rng));
  }
  set.AddBlockedSpki(RandomParent(rng));

  const Bytes blob = set.Serialize();
  auto decoded = CrlSet::Deserialize(blob);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->sequence, 77);
  EXPECT_EQ(decoded->NumParents(), 5u);
  EXPECT_EQ(decoded->NumEntries(), 100u);
  EXPECT_EQ(decoded->parents(), set.parents());
  EXPECT_EQ(decoded->blocked_spkis(), set.blocked_spkis());
}

TEST(CrlSet, DeserializeRejectsGarbage) {
  EXPECT_FALSE(CrlSet::Deserialize(Bytes{}));
  EXPECT_FALSE(CrlSet::Deserialize(Bytes{1, 2, 3}));
  util::Rng rng(5);
  CrlSet set;
  set.AddEntry(RandomParent(rng), RandomSerial(rng));
  Bytes blob = set.Serialize();
  blob.pop_back();
  EXPECT_FALSE(CrlSet::Deserialize(blob));
  blob.push_back(0);
  blob.push_back(0);  // trailing junk
  EXPECT_FALSE(CrlSet::Deserialize(blob));
}

TEST(CrlSet, SerializedSizeMatchesSerialize) {
  // SerializedSize() is computed arithmetically (no serialization pass);
  // it must track Serialize().size() exactly through every kind of growth.
  util::Rng rng(40);
  CrlSet set;
  EXPECT_EQ(set.SerializedSize(), set.Serialize().size());  // empty
  set.sequence = 12;
  for (int p = 0; p < 7; ++p) {
    const Bytes parent = RandomParent(rng);
    for (int s = 0; s < p + 1; ++s) {
      // Variable-length serials so the size math can't pass by accident.
      set.AddEntry(parent, RandomSerial(rng, 4 + 3 * s));
      EXPECT_EQ(set.SerializedSize(), set.Serialize().size());
    }
  }
  for (int b = 0; b < 3; ++b) {
    set.AddBlockedSpki(RandomParent(rng));
    EXPECT_EQ(set.SerializedSize(), set.Serialize().size());
  }
}

// ----------------------------------------------------------- generator ----

crl::Crl MakeCrl(util::Rng& rng, std::size_t entries,
                 x509::ReasonCode reason = x509::ReasonCode::kNoReasonCode) {
  crl::TbsCrl tbs;
  tbs.issuer = x509::Name::FromCommonName("GenCA");
  tbs.this_update = kNow;
  tbs.next_update = kNow + util::kSecondsPerDay;
  for (std::size_t i = 0; i < entries; ++i) {
    tbs.entries.push_back(crl::CrlEntry{RandomSerial(rng), kNow - 1000, reason});
  }
  return crl::SignCrl(tbs, crypto::SimKeyFromLabel("genca"));
}

TEST(Generator, ReasonCodeEligibility) {
  EXPECT_TRUE(IsCrlSetReasonCode(x509::ReasonCode::kNoReasonCode));
  EXPECT_TRUE(IsCrlSetReasonCode(x509::ReasonCode::kUnspecified));
  EXPECT_TRUE(IsCrlSetReasonCode(x509::ReasonCode::kKeyCompromise));
  EXPECT_TRUE(IsCrlSetReasonCode(x509::ReasonCode::kCaCompromise));
  EXPECT_TRUE(IsCrlSetReasonCode(x509::ReasonCode::kAaCompromise));
  EXPECT_FALSE(IsCrlSetReasonCode(x509::ReasonCode::kSuperseded));
  EXPECT_FALSE(IsCrlSetReasonCode(x509::ReasonCode::kCessationOfOperation));
  EXPECT_FALSE(IsCrlSetReasonCode(x509::ReasonCode::kCertificateHold));
  EXPECT_FALSE(IsCrlSetReasonCode(x509::ReasonCode::kAffiliationChanged));
}

TEST(Generator, IncludesEligibleEntries) {
  util::Rng rng(6);
  const crl::Crl crl = MakeCrl(rng, 50);
  const Bytes parent = RandomParent(rng);
  GeneratorConfig config;
  const CrlSet set = GenerateCrlSet({{parent, &crl, true}}, config, 1);
  EXPECT_EQ(set.sequence, 1);
  EXPECT_EQ(set.NumEntries(), 50u);
  for (const crl::CrlEntry& entry : crl.tbs.entries)
    EXPECT_TRUE(set.IsRevoked(parent, entry.serial));
}

TEST(Generator, FiltersIneligibleReasons) {
  util::Rng rng(7);
  const crl::Crl good = MakeCrl(rng, 30, x509::ReasonCode::kKeyCompromise);
  const crl::Crl bad = MakeCrl(rng, 30, x509::ReasonCode::kSuperseded);
  const Bytes p1 = RandomParent(rng), p2 = RandomParent(rng);
  GeneratorConfig config;
  const CrlSet set =
      GenerateCrlSet({{p1, &good, true}, {p2, &bad, true}}, config, 1);
  EXPECT_EQ(set.NumEntries(), 30u);
  EXPECT_TRUE(set.CoversParent(p1));
  EXPECT_FALSE(set.CoversParent(p2));
}

TEST(Generator, DropsOversizedCrls) {
  util::Rng rng(8);
  const crl::Crl small = MakeCrl(rng, 10);
  const crl::Crl huge = MakeCrl(rng, 500);
  const Bytes p1 = RandomParent(rng), p2 = RandomParent(rng);
  GeneratorConfig config;
  config.max_entries_per_crl = 100;
  const CrlSet set =
      GenerateCrlSet({{p1, &small, true}, {p2, &huge, true}}, config, 1);
  EXPECT_TRUE(set.CoversParent(p1));
  EXPECT_FALSE(set.CoversParent(p2));  // dropped: too many entries
}

TEST(Generator, SkipsUncrawledSources) {
  util::Rng rng(9);
  const crl::Crl crl = MakeCrl(rng, 10);
  const Bytes parent = RandomParent(rng);
  GeneratorConfig config;
  const CrlSet set = GenerateCrlSet({{parent, &crl, false}}, config, 1);
  EXPECT_EQ(set.NumEntries(), 0u);
}

TEST(Generator, RespectsSizeCap) {
  util::Rng rng(10);
  // Many mid-size CRLs; cap forces some to be dropped whole.
  std::vector<crl::Crl> crls;
  std::vector<CrlSource> sources;
  std::vector<Bytes> parents;
  for (int i = 0; i < 40; ++i) {
    crls.push_back(MakeCrl(rng, 100));
    parents.push_back(RandomParent(rng));
  }
  for (int i = 0; i < 40; ++i)
    sources.push_back({parents[static_cast<std::size_t>(i)],
                       &crls[static_cast<std::size_t>(i)], true});
  GeneratorConfig config;
  config.max_bytes = 20'000;
  const CrlSet set = GenerateCrlSet(sources, config, 1);
  EXPECT_LT(set.SerializedSize(), 2 * config.max_bytes);
  EXPECT_GT(set.NumEntries(), 0u);
  EXPECT_LT(set.NumParents(), 40u);  // some CRLs dropped entirely
  // Whole-CRL granularity: a covered parent covers all its eligible serials.
  for (std::size_t i = 0; i < 40; ++i) {
    if (!set.CoversParent(parents[i])) continue;
    for (const crl::CrlEntry& entry : crls[i].tbs.entries)
      EXPECT_TRUE(set.IsRevoked(parents[i], entry.serial));
  }
}

// --------------------------------------------------------------- bloom ----

TEST(Bloom, NoFalseNegatives) {
  util::Rng rng(11);
  BloomFilter filter = BloomFilter::ForCapacity(5'000, 0.01);
  std::vector<Bytes> keys;
  for (int i = 0; i < 5'000; ++i)
    keys.push_back(RevocationKey(RandomParent(rng), RandomSerial(rng)));
  for (const Bytes& key : keys) filter.Insert(key);
  for (const Bytes& key : keys) EXPECT_TRUE(filter.MayContain(key));
}

TEST(Bloom, FalsePositiveRateNearTarget) {
  util::Rng rng(12);
  for (double target : {0.01, 0.001}) {
    BloomFilter filter = BloomFilter::ForCapacity(10'000, target);
    for (int i = 0; i < 10'000; ++i)
      filter.Insert(RevocationKey(RandomParent(rng), RandomSerial(rng)));
    const double measured = filter.MeasureFpr(50'000, 999);
    EXPECT_LT(measured, target * 3) << target;
    // Not absurdly overbuilt either.
    EXPECT_GT(measured, target / 20) << target;
  }
}

TEST(Bloom, SizeMatchesTheory) {
  // 1% FPR needs ~9.59 bits/element.
  BloomFilter filter = BloomFilter::ForCapacity(100'000, 0.01);
  const double bits_per_key =
      static_cast<double>(filter.SizeBits()) / 100'000.0;
  EXPECT_NEAR(bits_per_key, 9.59, 0.1);
  EXPECT_EQ(filter.hash_count(), 7);
}

TEST(Bloom, ExpectedFprFormula) {
  // With optimal parameters the expected FPR equals the target.
  BloomFilter filter = BloomFilter::ForCapacity(10'000, 0.01);
  EXPECT_NEAR(
      BloomFilter::ExpectedFpr(filter.SizeBits(), filter.hash_count(), 10'000),
      0.01, 0.002);
  // Overfilling degrades it.
  EXPECT_GT(
      BloomFilter::ExpectedFpr(filter.SizeBits(), filter.hash_count(), 40'000),
      0.1);
}

TEST(Bloom, Paper256KbHoldsTenTimesCrlset) {
  // Fig. 11's headline: 256 KB at 1% FPR holds ~10x the CRLSet's ~25k
  // entries. m = 256KB = 2,097,152 bits / 9.59 bits/key ≈ 218k keys.
  const std::size_t m_bits = 256 * 1024 * 8;
  const double fpr = BloomFilter::ExpectedFpr(m_bits, 7, 218'000);
  EXPECT_LT(fpr, 0.012);
  EXPECT_GE(218'000.0 / 25'000.0, 8.5);
}

TEST(Bloom, EmptyFilterContainsNothing) {
  BloomFilter filter(1024, 3);
  util::Rng rng(13);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(filter.MayContain(RandomSerial(rng)));
}

TEST(Bloom, RevocationKeyDistinct) {
  const Bytes p1(32, 1), p2(32, 2);
  const x509::Serial s1{0xAA}, s2{0xBB};
  EXPECT_NE(RevocationKey(p1, s1), RevocationKey(p2, s1));
  EXPECT_NE(RevocationKey(p1, s1), RevocationKey(p1, s2));
  EXPECT_EQ(RevocationKey(p1, s1), RevocationKey(p1, s1));
}

// ----------------------------------------------------------------- gcs ----

TEST(Gcs, NoFalseNegatives) {
  util::Rng rng(14);
  std::vector<Bytes> keys;
  for (int i = 0; i < 2'000; ++i)
    keys.push_back(RevocationKey(RandomParent(rng), RandomSerial(rng)));
  const GolombCompressedSet set = GolombCompressedSet::Build(keys, 10);
  for (const Bytes& key : keys) EXPECT_TRUE(set.MayContain(key));
}

TEST(Gcs, FalsePositivesRare) {
  util::Rng rng(15);
  std::vector<Bytes> keys;
  for (int i = 0; i < 2'000; ++i)
    keys.push_back(RevocationKey(RandomParent(rng), RandomSerial(rng)));
  const GolombCompressedSet set = GolombCompressedSet::Build(keys, 8);  // 1/256
  std::size_t hits = 0;
  for (int i = 0; i < 10'000; ++i)
    if (set.MayContain(RandomSerial(rng, 24))) ++hits;
  // Expect ~39; allow generous slack.
  EXPECT_LT(hits, 120u);
}

TEST(Gcs, SmallerThanBloomAtSameFpr) {
  // Langley's point (§7.4): GCS approaches the information-theoretic bound,
  // beating the Bloom filter's 1.44x overhead.
  util::Rng rng(16);
  std::vector<Bytes> keys;
  for (int i = 0; i < 20'000; ++i)
    keys.push_back(RevocationKey(RandomParent(rng), RandomSerial(rng)));
  const GolombCompressedSet gcs = GolombCompressedSet::Build(keys, 10);
  BloomFilter bloom = BloomFilter::ForCapacity(20'000, 1.0 / 1024);
  for (const Bytes& key : keys) bloom.Insert(key);
  EXPECT_LT(gcs.SizeBytes(), bloom.SizeBytes());
  // And within ~30% of the n*(log2(1/p)+1.6)/8 information bound estimate.
  const double bound_bytes = 20'000 * (10 + 1.6) / 8.0;
  EXPECT_LT(static_cast<double>(gcs.SizeBytes()), bound_bytes * 1.3);
}

TEST(Gcs, EmptySet) {
  const GolombCompressedSet set = GolombCompressedSet::Build({}, 10);
  EXPECT_FALSE(set.MayContain(Bytes{1, 2, 3}));
  EXPECT_EQ(set.NumKeys(), 0u);
}

TEST(Gcs, SingleKey) {
  util::Rng rng(17);
  const Bytes key = RevocationKey(RandomParent(rng), RandomSerial(rng));
  const GolombCompressedSet set = GolombCompressedSet::Build({key}, 10);
  EXPECT_EQ(set.NumKeys(), 1u);
  EXPECT_TRUE(set.MayContain(key));
  std::size_t hits = 0;
  for (int i = 0; i < 1'000; ++i)
    if (set.MayContain(RandomSerial(rng, 24))) ++hits;
  EXPECT_LT(hits, 20u);
}

TEST(Gcs, DuplicateKeysCollapse) {
  // Duplicates at build must not inflate the encoded set or break lookups
  // (delta-0 entries would waste bits and desync the decode count).
  util::Rng rng(18);
  std::vector<Bytes> keys;
  for (int i = 0; i < 500; ++i)
    keys.push_back(RevocationKey(RandomParent(rng), RandomSerial(rng)));
  std::vector<Bytes> duplicated = keys;
  duplicated.insert(duplicated.end(), keys.begin(), keys.end());
  duplicated.insert(duplicated.end(), keys.begin(), keys.end());
  const GolombCompressedSet dedup = GolombCompressedSet::Build(duplicated, 10);
  for (const Bytes& key : keys) EXPECT_TRUE(dedup.MayContain(key));
  // Tripling the input must not triple the encoding.
  const GolombCompressedSet plain = GolombCompressedSet::Build(keys, 10);
  EXPECT_LT(dedup.SizeBytes(), 2 * plain.SizeBytes());
}

TEST(Gcs, ZeroRangeAndDegenerateParams) {
  // range_ == 0 (empty set) must not divide by zero in HashToRange, and
  // out-of-range Rice parameters must not shift by >= 64 bits (UB).
  const GolombCompressedSet empty = GolombCompressedSet::Build({}, 0);
  EXPECT_FALSE(empty.MayContain(Bytes{}));
  EXPECT_FALSE(empty.MayContain(Bytes{0xFF}));

  util::Rng rng(19);
  std::vector<Bytes> keys;
  for (int i = 0; i < 50; ++i)
    keys.push_back(RevocationKey(RandomParent(rng), RandomSerial(rng)));
  for (int p : {0, -5, 64, 1000}) {
    const GolombCompressedSet set = GolombCompressedSet::Build(keys, p);
    for (const Bytes& key : keys) EXPECT_TRUE(set.MayContain(key)) << p;
  }
}

}  // namespace
}  // namespace rev::crlset
