// Unit and property tests for util: civil time, RNG, codecs, statistics,
// and the worker pool behind the parallel pipeline/crawler.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/hex.h"
#include "util/mpsc_queue.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/time.h"

namespace rev::util {
namespace {

// ---------------------------------------------------------------- time ----

TEST(Time, EpochIsZero) {
  EXPECT_EQ(MakeDate(1970, 1, 1), 0);
}

TEST(Time, KnownDates) {
  EXPECT_EQ(MakeDate(1970, 1, 2), kSecondsPerDay);
  EXPECT_EQ(MakeDate(2000, 1, 1), 946684800);
  EXPECT_EQ(MakeDate(2014, 4, 8), 1396915200);   // Heartbleed disclosure
  EXPECT_EQ(MakeDate(2015, 10, 28), 1445990400); // IMC'15
}

TEST(Time, RoundTripCivil) {
  for (int year : {1950, 1970, 1999, 2000, 2013, 2014, 2015, 2049, 2050}) {
    for (int month : {1, 2, 6, 12}) {
      for (int day : {1, 15, 28}) {
        const Timestamp ts = MakeDate(year, month, day) + 3600 * 7 + 125;
        const CivilTime ct = ToCivil(ts);
        EXPECT_EQ(ct.year, year);
        EXPECT_EQ(ct.month, month);
        EXPECT_EQ(ct.day, day);
        EXPECT_EQ(ct.hour, 7);
        EXPECT_EQ(ct.minute, 2);
        EXPECT_EQ(ct.second, 5);
        EXPECT_EQ(ToTimestamp(ct), ts);
      }
    }
  }
}

TEST(Time, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_TRUE(IsLeapYear(2012));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2015));
  EXPECT_EQ(DaysInMonth(2012, 2), 29);
  EXPECT_EQ(DaysInMonth(2013, 2), 28);
  EXPECT_EQ(DaysInMonth(2013, 12), 31);
}

TEST(Time, DayOfWeek) {
  EXPECT_EQ(DayOfWeek(MakeDate(1970, 1, 1)), 4);   // Thursday
  EXPECT_EQ(DayOfWeek(MakeDate(2014, 4, 8)), 2);   // Tuesday
  EXPECT_EQ(DayOfWeek(MakeDate(2015, 3, 31)), 2);  // Tuesday
}

TEST(Time, FormatAndParse) {
  const Timestamp ts = MakeDate(2014, 10, 2);
  EXPECT_EQ(FormatDate(ts), "2014-10-02");
  EXPECT_EQ(FormatDateTime(ts + 3661), "2014-10-02T01:01:01Z");
  Timestamp parsed = 0;
  ASSERT_TRUE(ParseDate("2014-10-02", &parsed));
  EXPECT_EQ(parsed, ts);
}

TEST(Time, ParseRejectsMalformed) {
  Timestamp out;
  EXPECT_FALSE(ParseDate("2014-13-01", &out));
  EXPECT_FALSE(ParseDate("2014-02-30", &out));
  EXPECT_FALSE(ParseDate("20141002", &out));
  EXPECT_FALSE(ParseDate("2014-1-02", &out));
  EXPECT_FALSE(ParseDate("abcd-10-02", &out));
}

TEST(Time, MonthHelpers) {
  const Timestamp ts = MakeDate(2014, 7, 20) + 5000;
  EXPECT_EQ(StartOfMonth(ts), MakeDate(2014, 7, 1));
  EXPECT_EQ(StartOfDay(ts), MakeDate(2014, 7, 20));
  EXPECT_EQ(MonthIndex(ts), 2014 * 12 + 6);
}

TEST(Time, NegativeTimestamps) {
  const Timestamp ts = MakeDate(1969, 12, 31);
  EXPECT_LT(ts, 0);
  const CivilTime ct = ToCivil(ts);
  EXPECT_EQ(ct.year, 1969);
  EXPECT_EQ(ct.month, 12);
  EXPECT_EQ(ct.day, 31);
}

// ----------------------------------------------------------------- rng ----

TEST(Rng, Deterministic) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformDoubleRange) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.Add(rng.Normal(10.0, 3.0));
  EXPECT_NEAR(acc.Mean(), 10.0, 0.15);
  EXPECT_NEAR(acc.StdDev(), 3.0, 0.15);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
  // Large-mean path.
  sum = 0;
  for (int i = 0; i < 2000; ++i) sum += static_cast<double>(rng.Poisson(200.0));
  EXPECT_NEAR(sum / 2000, 200.0, 3.0);
}

TEST(Rng, ZipfRange) {
  Rng rng(14);
  std::vector<std::uint64_t> counts(100, 0);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.Zipf(100, 1.1);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  // Rank 0 dominates every other rank, and the tail is thin.
  for (std::size_t r = 1; r < 100; ++r) EXPECT_GE(counts[0], counts[r]);
  EXPECT_GT(counts[0], 10 * counts[50]);
}

TEST(Rng, WeightedIndex) {
  Rng rng(15);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.WeightedIndex(weights), 1u);
}

TEST(Rng, FillCoversBytes) {
  Rng rng(16);
  std::uint8_t buf[37] = {};
  rng.Fill(buf, sizeof(buf));
  int nonzero = 0;
  for (std::uint8_t b : buf)
    if (b) ++nonzero;
  EXPECT_GT(nonzero, 20);
}

TEST(Rng, ForkIndependence) {
  Rng parent(17);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  EXPECT_NE(a.Next(), b.Next());
}

// ----------------------------------------------------------------- hex ----

TEST(Hex, EncodeDecode) {
  const Bytes data = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(HexEncode(data), "0001abff");
  auto decoded = HexDecode("0001abff");
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, data);
  decoded = HexDecode("0001ABFF");
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, data);
}

TEST(Hex, DecodeRejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc"));    // odd length
  EXPECT_FALSE(HexDecode("zz"));     // bad digit
}

TEST(Hex, EmptyRoundTrip) {
  EXPECT_EQ(HexEncode({}), "");
  auto decoded = HexDecode("");
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->empty());
}

TEST(Base64, KnownVectors) {
  EXPECT_EQ(Base64Encode(ToBytes("")), "");
  EXPECT_EQ(Base64Encode(ToBytes("f")), "Zg==");
  EXPECT_EQ(Base64Encode(ToBytes("fo")), "Zm8=");
  EXPECT_EQ(Base64Encode(ToBytes("foo")), "Zm9v");
  EXPECT_EQ(Base64Encode(ToBytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeKnownVectors) {
  auto decoded = Base64Decode("Zm9vYmFy");
  ASSERT_TRUE(decoded);
  EXPECT_EQ(ToString(*decoded), "foobar");
  decoded = Base64Decode("Zg==");
  ASSERT_TRUE(decoded);
  EXPECT_EQ(ToString(*decoded), "f");
}

TEST(Base64, DecodeRejectsBadInput) {
  EXPECT_FALSE(Base64Decode("Zg="));    // bad length
  EXPECT_FALSE(Base64Decode("Z===") != std::nullopt);
  EXPECT_FALSE(Base64Decode("Zm9$"));   // bad char
  EXPECT_FALSE(Base64Decode("=g=="));   // leading padding
}

class Base64RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Base64RoundTrip, RandomBuffers) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto len = static_cast<std::size_t>(GetParam());
  Bytes data(len);
  rng.Fill(data.data(), data.size());
  auto decoded = Base64Decode(Base64Encode(data));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, data);
  auto hex_decoded = HexDecode(HexEncode(data));
  ASSERT_TRUE(hex_decoded);
  EXPECT_EQ(*hex_decoded, data);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Base64RoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 31, 32, 33, 100,
                                           255, 256, 1000));

// --------------------------------------------------------------- stats ----

TEST(Distribution, QuantilesUnweighted) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.Add(i);
  EXPECT_DOUBLE_EQ(d.Min(), 1);
  EXPECT_DOUBLE_EQ(d.Max(), 100);
  EXPECT_NEAR(d.Median(), 50, 1);
  EXPECT_NEAR(d.Quantile(0.9), 90, 1);
  EXPECT_NEAR(d.Mean(), 50.5, 1e-9);
}

TEST(Distribution, WeightsShiftQuantiles) {
  Distribution d;
  d.Add(1.0, 1.0);
  d.Add(100.0, 99.0);
  // Weighted median is pulled to the heavy value.
  EXPECT_DOUBLE_EQ(d.Median(), 100.0);
  EXPECT_NEAR(d.Mean(), (1.0 + 9900.0) / 100.0, 1e-9);
}

TEST(Distribution, CdfAt) {
  Distribution d;
  for (int i = 1; i <= 10; ++i) d.Add(i);
  EXPECT_DOUBLE_EQ(d.CdfAt(0), 0.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(5), 0.5);
  EXPECT_DOUBLE_EQ(d.CdfAt(10), 1.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(100), 1.0);
}

TEST(Distribution, CdfSeriesMonotone) {
  Distribution d;
  Rng rng(20);
  for (int i = 0; i < 500; ++i) d.Add(rng.LogNormal(3, 2));
  const auto series = d.CdfSeries(20);
  ASSERT_EQ(series.size(), 20u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GT(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Distribution, Empty) {
  Distribution d;
  EXPECT_TRUE(d.Empty());
  EXPECT_DOUBLE_EQ(d.Median(), 0);
  EXPECT_DOUBLE_EQ(d.CdfAt(10), 0);
}

TEST(Distribution, AllZeroWeightsIsEmptyForQuantiles) {
  // Regression: `target == 0` made the first `cum >= target` trivially true,
  // so a distribution holding only zero-weight samples returned its smallest
  // sample instead of behaving like an empty one.
  Distribution d;
  d.Add(42.0, 0.0);
  d.Add(7.0, 0.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 0);
  EXPECT_DOUBLE_EQ(d.Median(), 0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 0);
  // A single positive weight brings the quantiles back.
  d.Add(10.0, 1.0);
  EXPECT_DOUBLE_EQ(d.Median(), 10.0);
}

TEST(Accumulator, Welford) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
  EXPECT_NEAR(acc.Variance(), 4.571428, 1e-5);
  EXPECT_DOUBLE_EQ(acc.Min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 9.0);
}

TEST(FitLine, ExactLinear) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r, 1.0, 1e-9);
}

TEST(FitLine, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(FitLine({}, {}).slope, 0);
  EXPECT_DOUBLE_EQ(FitLine({1.0}, {2.0}).slope, 0);
  // Constant x: no fit possible.
  EXPECT_DOUBLE_EQ(FitLine({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}).slope, 0);
}

TEST(HumanBytes, Formats) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(51.0 * 1024), "51.0 KB");
  EXPECT_EQ(HumanBytes(76.0 * 1024 * 1024), "76.0 MB");
}

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
  EXPECT_GE(ThreadPool(0).threads(), 1u);
  EXPECT_EQ(ThreadPool(3).threads(), 3u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 10'000;
    std::vector<std::atomic<int>> visits(kCount);
    pool.ParallelFor(kCount, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kCount; ++i)
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " threads " << threads;
  }
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  // threads=1 is the exact serial path: no workers, caller's thread,
  // ascending order.
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.ParallelFor(100, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PropagatesExceptions) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(1'000,
                         [&](std::size_t i) {
                           if (i == 137) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives a failed batch and runs the next one normally.
    std::atomic<std::size_t> done{0};
    pool.ParallelFor(64, [&](std::size_t) { ++done; });
    EXPECT_EQ(done.load(), 64u);
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int batch = 0; batch < 50; ++batch)
    pool.ParallelFor(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 50u * (99u * 100u / 2u));
}

// ---------------------------------------------------------- mpsc queue ----

TEST(MpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscQueue<int>(128).capacity(), 128u);
  EXPECT_EQ(MpscQueue<int>(129).capacity(), 256u);
}

TEST(MpscQueue, FifoWithinAndAcrossBatches) {
  MpscQueue<int> queue(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(queue.TryPush(i));

  int out[8];
  ASSERT_EQ(queue.PopBatch(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  ASSERT_EQ(queue.PopBatch(out, 8), 2u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(queue.PopBatch(out, 8), 0u);
}

TEST(MpscQueue, FullRingRejectsWithoutBlocking) {
  MpscQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.TryPush(i));
  EXPECT_FALSE(queue.TryPush(99));
  EXPECT_EQ(queue.SizeApprox(), 4u);

  // Draining frees the cells for the next lap.
  int out[4];
  ASSERT_EQ(queue.PopBatch(out, 2), 2u);
  EXPECT_TRUE(queue.TryPush(100));
  EXPECT_TRUE(queue.TryPush(101));
  EXPECT_FALSE(queue.TryPush(102));
  ASSERT_EQ(queue.PopBatch(out, 4), 4u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(out[2], 100);
  EXPECT_EQ(out[3], 101);
}

TEST(MpscQueue, PopBatchHonorsCap) {
  MpscQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.TryPush(i));
  int out[16];
  EXPECT_EQ(queue.PopBatch(out, 3), 3u);
  EXPECT_EQ(queue.PopBatch(out, 3), 3u);
  EXPECT_EQ(queue.PopBatch(out, 16), 4u);
}

// Many producer threads race pushes while one consumer drains in batches:
// every accepted value must come out exactly once, and each producer's own
// values in its submission order (per-producer FIFO). Run under TSan via
// the ci.sh sanitizer pass.
TEST(MpscQueue, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscQueue<int> queue(64);
  std::atomic<int> accepted{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!queue.TryPush(value)) std::this_thread::yield();
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<int> drained;
  drained.reserve(kProducers * kPerProducer);
  int out[64];
  while (drained.size() <
         static_cast<std::size_t>(kProducers) * kPerProducer) {
    const std::size_t n = queue.PopBatch(out, 64);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    drained.insert(drained.end(), out, out + n);
  }
  for (auto& producer : producers) producer.join();

  ASSERT_EQ(drained.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  EXPECT_EQ(queue.PopBatch(out, 64), 0u);

  // Exactly-once delivery, and order preserved within each producer.
  std::vector<int> last(kProducers, -1);
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (const int value : drained) {
    ASSERT_FALSE(seen[value]) << "duplicate " << value;
    seen[value] = true;
    const int producer = value / kPerProducer;
    EXPECT_GT(value, last[producer]) << "reordered within producer";
    last[producer] = value;
  }
}

}  // namespace
}  // namespace rev::util
