// X.509 tests: names, SPKI, extensions, certificate round-trips, signature
// verification, chain building, and the Intermediate Set construction.
#include <gtest/gtest.h>

#include "asn1/writer.h"
#include "crypto/signer.h"
#include "util/rng.h"
#include "x509/certificate.h"
#include "x509/describe.h"
#include "x509/extensions.h"
#include "x509/name.h"
#include "x509/spki.h"
#include "x509/verify.h"

namespace rev::x509 {
namespace {

constexpr util::Timestamp kNow = 100 * util::kSecondsPerDay;
constexpr std::int64_t kYear = 365 * util::kSecondsPerDay;

crypto::KeyPair TestKey(std::string_view label) {
  return crypto::SimKeyFromLabel(label);
}

TbsCertificate MakeLeafTbs(std::string_view cn, const Name& issuer,
                           const crypto::PublicKey& key) {
  TbsCertificate tbs;
  tbs.serial = Serial{0x01, 0x02, 0x03, 0x04};
  tbs.issuer = issuer;
  tbs.subject = Name::FromCommonName(cn);
  tbs.not_before = kNow - 30 * util::kSecondsPerDay;
  tbs.not_after = kNow + kYear;
  tbs.public_key = key;
  tbs.crl_urls = {"http://crl.test.sim/a.crl"};
  tbs.ocsp_urls = {"http://ocsp.test.sim/"};
  tbs.dns_names = {std::string(cn)};
  tbs.key_usage = kKeyUsageDigitalSignature;
  return tbs;
}

// ---------------------------------------------------------------- name ----

TEST(Name, RoundTrip) {
  const Name name = Name::Make("example.com", "Example Org", "DE");
  const Bytes der = name.Encode();
  asn1::Reader r{BytesView(der)};
  auto decoded = Name::Decode(r);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, name);
  EXPECT_EQ(decoded->CommonName(), "example.com");
  EXPECT_EQ(decoded->Organization(), "Example Org");
}

TEST(Name, ToStringDisplaysCnFirst) {
  const Name name = Name::Make("example.com", "Org");
  EXPECT_EQ(name.ToString(), "CN=example.com, O=Org, C=US");
}

TEST(Name, EmptyAndEquality) {
  Name a, b;
  EXPECT_TRUE(a.Empty());
  EXPECT_EQ(a, b);
  a.Add(asn1::oids::CommonName(), "x");
  EXPECT_NE(a, b);
  EXPECT_NE(a.DerKey(), b.DerKey());
}

// ---------------------------------------------------------------- spki ----

TEST(Spki, SimRoundTrip) {
  const crypto::PublicKey key = TestKey("k1").Public();
  const Bytes der = EncodeSpki(key);
  asn1::Reader r{BytesView(der)};
  auto decoded = DecodeSpki(r);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(*decoded == key);
}

TEST(Spki, RsaRoundTrip) {
  util::Rng rng(1);
  const crypto::PublicKey key =
      crypto::GenerateKeyPair(rng, crypto::KeyType::kRsaSha256, 512).Public();
  const Bytes der = EncodeSpki(key);
  asn1::Reader r{BytesView(der)};
  auto decoded = DecodeSpki(r);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(*decoded == key);
}

TEST(Spki, HashDistinguishesKeys) {
  EXPECT_NE(SpkiSha256(TestKey("a").Public()), SpkiSha256(TestKey("b").Public()));
  EXPECT_EQ(SpkiSha256(TestKey("a").Public()), SpkiSha256(TestKey("a").Public()));
}

// ----------------------------------------------------------- extensions ----

TEST(Extensions, BasicConstraintsRoundTrip) {
  for (const BasicConstraints bc :
       {BasicConstraints{false, -1}, BasicConstraints{true, -1},
        BasicConstraints{true, 0}, BasicConstraints{true, 3}}) {
    const Extension ext = MakeBasicConstraints(bc);
    EXPECT_TRUE(ext.critical);
    auto decoded = ParseBasicConstraints(ext.value);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->is_ca, bc.is_ca);
    EXPECT_EQ(decoded->path_len, bc.path_len);
  }
}

TEST(Extensions, KeyUsageRoundTrip) {
  for (std::uint16_t bits :
       {std::uint16_t{0}, std::uint16_t{kKeyUsageDigitalSignature},
        std::uint16_t{kKeyUsageKeyCertSign | kKeyUsageCrlSign},
        std::uint16_t{kKeyUsageDigitalSignature | kKeyUsageKeyEncipherment}}) {
    const Extension ext = MakeKeyUsage(bits);
    auto decoded = ParseKeyUsage(ext.value);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(*decoded, bits);
  }
}

TEST(Extensions, CrlDistributionPointsRoundTrip) {
  const std::vector<std::string> urls = {"http://crl1.ca.sim/a.crl",
                                         "http://crl2.ca.sim/b.crl"};
  const Extension ext = MakeCrlDistributionPoints(urls);
  auto decoded = ParseCrlDistributionPoints(ext.value);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, urls);
}

TEST(Extensions, AiaRoundTrip) {
  AuthorityInfoAccess aia;
  aia.ocsp_urls = {"http://ocsp.ca.sim/"};
  aia.ca_issuer_urls = {"http://ca.sim/issuer.crt"};
  const Extension ext = MakeAuthorityInfoAccess(aia);
  auto decoded = ParseAuthorityInfoAccess(ext.value);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->ocsp_urls, aia.ocsp_urls);
  EXPECT_EQ(decoded->ca_issuer_urls, aia.ca_issuer_urls);
}

TEST(Extensions, PoliciesRoundTrip) {
  const std::vector<asn1::Oid> policies = {asn1::oids::VerisignEvPolicy()};
  const Extension ext = MakeCertificatePolicies(policies);
  auto decoded = ParseCertificatePolicies(ext.value);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, policies);
}

TEST(Extensions, SanRoundTrip) {
  const std::vector<std::string> dns = {"a.example", "b.example"};
  const Extension ext = MakeSubjectAltName(dns);
  auto decoded = ParseSubjectAltName(ext.value);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, dns);
}

TEST(Extensions, NameConstraintsRoundTrip) {
  NameConstraints nc;
  nc.permitted_dns = {"example.com", "example.org"};
  nc.excluded_dns = {"internal.example.com"};
  const Extension ext = MakeNameConstraints(nc);
  EXPECT_TRUE(ext.critical);
  auto decoded = ParseNameConstraints(ext.value);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->permitted_dns, nc.permitted_dns);
  EXPECT_EQ(decoded->excluded_dns, nc.excluded_dns);

  // One-sided constraints round-trip too.
  NameConstraints only_excluded;
  only_excluded.excluded_dns = {"bad.sim"};
  auto decoded2 = ParseNameConstraints(MakeNameConstraints(only_excluded).value);
  ASSERT_TRUE(decoded2);
  EXPECT_TRUE(decoded2->permitted_dns.empty());
  EXPECT_EQ(decoded2->excluded_dns, only_excluded.excluded_dns);
}

TEST(Extensions, DnsSubtreeMatching) {
  EXPECT_TRUE(DnsNameInSubtree("example.com", "example.com"));
  EXPECT_TRUE(DnsNameInSubtree("www.example.com", "example.com"));
  EXPECT_TRUE(DnsNameInSubtree("a.b.example.com", "example.com"));
  EXPECT_FALSE(DnsNameInSubtree("notexample.com", "example.com"));
  EXPECT_FALSE(DnsNameInSubtree("example.org", "example.com"));
  EXPECT_FALSE(DnsNameInSubtree("com", "example.com"));
}

TEST(Extensions, NameConstraintsSemantics) {
  NameConstraints nc;
  nc.permitted_dns = {"example.com"};
  nc.excluded_dns = {"secret.example.com"};
  EXPECT_TRUE(NameConstraintsAllow(nc, "www.example.com"));
  EXPECT_FALSE(NameConstraintsAllow(nc, "www.other.com"));
  EXPECT_FALSE(NameConstraintsAllow(nc, "x.secret.example.com"));
  // Empty permitted list = allow anything not excluded.
  NameConstraints exclude_only;
  exclude_only.excluded_dns = {"bad.sim"};
  EXPECT_TRUE(NameConstraintsAllow(exclude_only, "good.sim"));
  EXPECT_FALSE(NameConstraintsAllow(exclude_only, "www.bad.sim"));
}

TEST(Verify, NameConstraintsEnforcedWhenAsked) {
  // A constrained intermediate may only issue under example.com.
  const crypto::KeyPair root_key = TestKey("ncroot");
  TbsCertificate root_tbs;
  root_tbs.serial = Serial{1};
  root_tbs.issuer = root_tbs.subject = Name::FromCommonName("NC Root");
  root_tbs.not_before = 0;
  root_tbs.not_after = kNow + 20 * kYear;
  root_tbs.public_key = root_key.Public();
  root_tbs.basic_constraints = {true, -1};
  auto root = std::make_shared<const Certificate>(
      SignCertificate(root_tbs, root_key));

  const crypto::KeyPair int_key = TestKey("ncint");
  TbsCertificate int_tbs = root_tbs;
  int_tbs.serial = Serial{2};
  int_tbs.issuer = root_tbs.subject;
  int_tbs.subject = Name::FromCommonName("NC Intermediate");
  int_tbs.public_key = int_key.Public();
  int_tbs.name_constraints.permitted_dns = {"example.com"};
  auto intermediate = std::make_shared<const Certificate>(
      SignCertificate(int_tbs, root_key));
  // The constraint survives a DER round-trip.
  auto reparsed = ParseCertificate(intermediate->der);
  ASSERT_TRUE(reparsed);
  EXPECT_EQ(reparsed->tbs.name_constraints.permitted_dns,
            int_tbs.name_constraints.permitted_dns);

  auto in_scope = std::make_shared<const Certificate>(SignCertificate(
      MakeLeafTbs("www.example.com", int_tbs.subject, TestKey("l1").Public()),
      int_key));
  auto out_of_scope = std::make_shared<const Certificate>(SignCertificate(
      MakeLeafTbs("www.victim.net", int_tbs.subject, TestKey("l2").Public()),
      int_key));

  CertPool roots, pool;
  roots.Add(root);
  pool.Add(intermediate);
  VerifyOptions options;
  options.at = kNow;
  // Default (like most clients, per the paper): not enforced.
  EXPECT_TRUE(VerifyChain(out_of_scope, pool, roots, options).ok());
  // Enforcing: in-scope passes, out-of-scope fails.
  options.enforce_name_constraints = true;
  EXPECT_TRUE(VerifyChain(in_scope, pool, roots, options).ok());
  EXPECT_EQ(VerifyChain(out_of_scope, pool, roots, options).status,
            VerifyStatus::kNameConstraintViolation);
}

TEST(Extensions, KeyIdentifiersRoundTrip) {
  const Bytes id = {1, 2, 3, 4, 5};
  auto ski = ParseSubjectKeyIdentifier(MakeSubjectKeyIdentifier(id).value);
  ASSERT_TRUE(ski);
  EXPECT_EQ(*ski, id);
  auto aki = ParseAuthorityKeyIdentifier(MakeAuthorityKeyIdentifier(id).value);
  ASSERT_TRUE(aki);
  EXPECT_EQ(*aki, id);
}

TEST(Extensions, CrlReasonRoundTrip) {
  for (ReasonCode rc : {ReasonCode::kUnspecified, ReasonCode::kKeyCompromise,
                        ReasonCode::kCaCompromise, ReasonCode::kSuperseded,
                        ReasonCode::kPrivilegeWithdrawn}) {
    auto decoded = ParseCrlReason(MakeCrlReason(rc).value);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(*decoded, rc);
  }
  // Reason 7 is unassigned in RFC 5280.
  const Extension bad = MakeCrlReason(static_cast<ReasonCode>(7));
  EXPECT_FALSE(ParseCrlReason(bad.value));
}

TEST(Extensions, ListRoundTrip) {
  std::vector<Extension> exts = {MakeBasicConstraints({true, 2}),
                                 MakeKeyUsage(kKeyUsageCrlSign),
                                 MakeSubjectAltName({"x.example"})};
  const Bytes der = EncodeExtensionList(exts);
  asn1::Reader r{BytesView(der)};
  auto decoded = DecodeExtensionList(r);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].oid, asn1::oids::BasicConstraints());
  EXPECT_EQ((*decoded)[1].oid, asn1::oids::KeyUsage());
  EXPECT_EQ((*decoded)[2].oid, asn1::oids::SubjectAltName());
}

// ----------------------------------------------------------- certificate ----

TEST(Certificate, SignParseRoundTrip) {
  const crypto::KeyPair ca_key = TestKey("ca");
  const crypto::KeyPair leaf_key = TestKey("leaf");
  const Name issuer = Name::Make("Test CA", "Test Org");
  TbsCertificate tbs = MakeLeafTbs("www.example.sim", issuer, leaf_key.Public());
  tbs.policies = {asn1::oids::VerisignEvPolicy()};
  const Certificate cert = SignCertificate(tbs, ca_key);

  auto parsed = ParseCertificate(cert.der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tbs.serial, tbs.serial);
  EXPECT_EQ(parsed->tbs.issuer, issuer);
  EXPECT_EQ(parsed->tbs.subject.CommonName(), "www.example.sim");
  EXPECT_EQ(parsed->tbs.not_before, tbs.not_before);
  EXPECT_EQ(parsed->tbs.not_after, tbs.not_after);
  EXPECT_TRUE(parsed->tbs.public_key == leaf_key.Public());
  EXPECT_EQ(parsed->tbs.crl_urls, tbs.crl_urls);
  EXPECT_EQ(parsed->tbs.ocsp_urls, tbs.ocsp_urls);
  EXPECT_EQ(parsed->tbs.dns_names, tbs.dns_names);
  EXPECT_EQ(parsed->tbs.key_usage, tbs.key_usage);
  EXPECT_TRUE(parsed->IsEv());
  EXPECT_FALSE(parsed->IsCa());
  EXPECT_EQ(parsed->der, cert.der);
  EXPECT_EQ(parsed->tbs_der, cert.tbs_der);
  EXPECT_EQ(parsed->Fingerprint(), cert.Fingerprint());
}

TEST(Certificate, SignatureVerifies) {
  const crypto::KeyPair ca_key = TestKey("ca2");
  const Certificate cert = SignCertificate(
      MakeLeafTbs("a.sim", Name::FromCommonName("CA"), TestKey("l").Public()),
      ca_key);
  EXPECT_TRUE(VerifyCertificateSignature(cert, ca_key.Public()));
  EXPECT_FALSE(VerifyCertificateSignature(cert, TestKey("other").Public()));
}

TEST(Certificate, ParsedSignatureVerifiesAgainstRawTbs) {
  const crypto::KeyPair ca_key = TestKey("ca3");
  const Certificate cert = SignCertificate(
      MakeLeafTbs("b.sim", Name::FromCommonName("CA"), TestKey("l2").Public()),
      ca_key);
  auto parsed = ParseCertificate(cert.der);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(VerifyCertificateSignature(*parsed, ca_key.Public()));
}

TEST(Certificate, TamperedDerRejected) {
  const crypto::KeyPair ca_key = TestKey("ca4");
  Certificate cert = SignCertificate(
      MakeLeafTbs("c.sim", Name::FromCommonName("CA"), TestKey("l3").Public()),
      ca_key);
  // Flip a byte inside the TBS region (serial area) and re-parse.
  Bytes tampered = cert.der;
  tampered[12] ^= 0x01;
  auto parsed = ParseCertificate(tampered);
  if (parsed) {
    EXPECT_FALSE(VerifyCertificateSignature(*parsed, ca_key.Public()));
  }
}

TEST(Certificate, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseCertificate(Bytes{}));
  EXPECT_FALSE(ParseCertificate(Bytes{0x30, 0x03, 0x01, 0x01, 0xFF}));
  Bytes truncated = SignCertificate(MakeLeafTbs("d.sim", Name::FromCommonName("CA"),
                                                TestKey("l4").Public()),
                                    TestKey("ca5"))
                        .der;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(ParseCertificate(truncated));
}

TEST(Certificate, ParseRejectsUnknownCriticalExtension) {
  // Hand-assemble a certificate with an unknown critical extension by
  // splicing: easier to construct via a custom TBS then patch. Instead,
  // verify the parser accepts unknown NON-critical extensions by adding one
  // manually at the Extension level.
  Extension unknown;
  unknown.oid = asn1::Oid{1, 2, 3, 4, 5};
  unknown.critical = true;
  unknown.value = asn1::EncodeNull();
  const Bytes list = EncodeExtensionList({unknown});
  asn1::Reader r{BytesView(list)};
  auto decoded = DecodeExtensionList(r);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE((*decoded)[0].critical);
}

TEST(Certificate, FreshnessAndUnrevocable) {
  TbsCertificate tbs = MakeLeafTbs("e.sim", Name::FromCommonName("CA"),
                                   TestKey("l5").Public());
  const Certificate cert = SignCertificate(tbs, TestKey("ca6"));
  EXPECT_TRUE(cert.IsFresh(kNow));
  EXPECT_FALSE(cert.IsFresh(tbs.not_before - 1));
  EXPECT_FALSE(cert.IsFresh(tbs.not_after + 1));
  EXPECT_FALSE(cert.Unrevocable());

  tbs.crl_urls.clear();
  tbs.ocsp_urls.clear();
  const Certificate bare = SignCertificate(tbs, TestKey("ca6"));
  EXPECT_TRUE(bare.Unrevocable());
}

TEST(Certificate, SerialToString) {
  EXPECT_EQ(SerialToString(Serial{0xDE, 0xAD, 0x01}), "dead01");
}

// -------------------------------------------------------------- verify ----

struct ChainFixture {
  crypto::KeyPair root_key = TestKey("root");
  crypto::KeyPair int_key = TestKey("int");
  crypto::KeyPair leaf_key = TestKey("leafk");
  CertPtr root, intermediate, leaf;
  CertPool roots, intermediates;

  ChainFixture() {
    TbsCertificate root_tbs;
    root_tbs.serial = Serial{1};
    root_tbs.issuer = root_tbs.subject = Name::FromCommonName("Root");
    root_tbs.not_before = 0;
    root_tbs.not_after = kNow + 20 * kYear;
    root_tbs.public_key = root_key.Public();
    root_tbs.basic_constraints = {true, -1};
    root = std::make_shared<const Certificate>(
        SignCertificate(root_tbs, root_key));

    TbsCertificate int_tbs;
    int_tbs.serial = Serial{2};
    int_tbs.issuer = Name::FromCommonName("Root");
    int_tbs.subject = Name::FromCommonName("Intermediate");
    int_tbs.not_before = 0;
    int_tbs.not_after = kNow + 10 * kYear;
    int_tbs.public_key = int_key.Public();
    int_tbs.basic_constraints = {true, -1};
    intermediate = std::make_shared<const Certificate>(
        SignCertificate(int_tbs, root_key));

    leaf = std::make_shared<const Certificate>(SignCertificate(
        MakeLeafTbs("www.chain.sim", Name::FromCommonName("Intermediate"),
                    leaf_key.Public()),
        int_key));

    roots.Add(root);
    intermediates.Add(intermediate);
  }
};

TEST(Verify, ValidChain) {
  ChainFixture f;
  VerifyOptions options;
  options.at = kNow;
  const VerifyResult result =
      VerifyChain(f.leaf, f.intermediates, f.roots, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.chain.size(), 3u);
  EXPECT_EQ(result.chain[0]->Fingerprint(), f.leaf->Fingerprint());
  EXPECT_EQ(result.chain[1]->Fingerprint(), f.intermediate->Fingerprint());
  EXPECT_EQ(result.chain[2]->Fingerprint(), f.root->Fingerprint());
}

TEST(Verify, MissingIntermediateFails) {
  ChainFixture f;
  CertPool empty;
  VerifyOptions options;
  options.at = kNow;
  const VerifyResult result = VerifyChain(f.leaf, empty, f.roots, options);
  EXPECT_EQ(result.status, VerifyStatus::kNoPath);
}

TEST(Verify, UntrustedRootFails) {
  ChainFixture f;
  CertPool empty_roots;
  VerifyOptions options;
  options.at = kNow;
  const VerifyResult result =
      VerifyChain(f.leaf, f.intermediates, empty_roots, options);
  EXPECT_FALSE(result.ok());
}

TEST(Verify, ExpiredLeafRespectsDates) {
  ChainFixture f;
  VerifyOptions options;
  options.at = kNow + 5 * kYear;  // leaf expired
  EXPECT_EQ(VerifyChain(f.leaf, f.intermediates, f.roots, options).status,
            VerifyStatus::kExpired);
  options.at = f.leaf->tbs.not_before - util::kSecondsPerDay;
  EXPECT_EQ(VerifyChain(f.leaf, f.intermediates, f.roots, options).status,
            VerifyStatus::kNotYetValid);
  options.ignore_dates = true;
  EXPECT_TRUE(VerifyChain(f.leaf, f.intermediates, f.roots, options).ok());
}

TEST(Verify, BadSignatureFails) {
  ChainFixture f;
  // Leaf claims Intermediate as issuer but is signed by the wrong key.
  auto forged = std::make_shared<const Certificate>(SignCertificate(
      MakeLeafTbs("evil.sim", Name::FromCommonName("Intermediate"),
                  TestKey("evil").Public()),
      TestKey("wrong-key")));
  VerifyOptions options;
  options.at = kNow;
  const VerifyResult result =
      VerifyChain(forged, f.intermediates, f.roots, options);
  EXPECT_EQ(result.status, VerifyStatus::kBadSignature);
}

TEST(Verify, NonCaIssuerRejected) {
  ChainFixture f;
  // A leaf that "issues" another leaf must not form a chain.
  auto sub_leaf = std::make_shared<const Certificate>(SignCertificate(
      MakeLeafTbs("sub.sim", Name::FromCommonName("www.chain.sim"),
                  TestKey("sub").Public()),
      f.leaf_key));
  CertPool pool = f.intermediates;
  pool.Add(f.leaf);
  VerifyOptions options;
  options.at = kNow;
  const VerifyResult result = VerifyChain(sub_leaf, pool, f.roots, options);
  EXPECT_EQ(result.status, VerifyStatus::kIssuerNotCa);
}

TEST(Verify, CrossSignedFindsAlternatePath) {
  ChainFixture f;
  // A second root cross-signs the intermediate; removing the first root
  // still yields a valid chain through the cross-signature.
  const crypto::KeyPair root2_key = TestKey("root2");
  TbsCertificate root2_tbs;
  root2_tbs.serial = Serial{9};
  root2_tbs.issuer = root2_tbs.subject = Name::FromCommonName("Root2");
  root2_tbs.not_before = 0;
  root2_tbs.not_after = kNow + 20 * kYear;
  root2_tbs.public_key = root2_key.Public();
  root2_tbs.basic_constraints = {true, -1};
  auto root2 = std::make_shared<const Certificate>(
      SignCertificate(root2_tbs, root2_key));

  TbsCertificate cross_tbs = f.intermediate->tbs;
  cross_tbs.issuer = Name::FromCommonName("Root2");
  cross_tbs.serial = Serial{10};
  auto cross = std::make_shared<const Certificate>(
      SignCertificate(cross_tbs, root2_key));

  CertPool roots2;
  roots2.Add(root2);
  CertPool pool;
  pool.Add(f.intermediate);  // chains to Root (not trusted here)
  pool.Add(cross);           // chains to Root2

  VerifyOptions options;
  options.at = kNow;
  const VerifyResult result = VerifyChain(f.leaf, pool, roots2, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.chain.size(), 3u);
  EXPECT_EQ(result.chain[1]->Fingerprint(), cross->Fingerprint());
}

TEST(Verify, DepthLimit) {
  ChainFixture f;
  VerifyOptions options;
  options.at = kNow;
  options.max_depth = 1;
  const VerifyResult result =
      VerifyChain(f.leaf, f.intermediates, f.roots, options);
  EXPECT_FALSE(result.ok());
}

TEST(Verify, RootAsLeafTrivially) {
  ChainFixture f;
  VerifyOptions options;
  options.at = kNow;
  const VerifyResult result =
      VerifyChain(f.root, f.intermediates, f.roots, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.chain.size(), 1u);
}

TEST(Verify, IntermediateSetIterativeClosure) {
  ChainFixture f;
  // int2 is signed by f.intermediate: verifiable only after f.intermediate.
  const crypto::KeyPair int2_key = TestKey("int2");
  TbsCertificate int2_tbs;
  int2_tbs.serial = Serial{3};
  int2_tbs.issuer = Name::FromCommonName("Intermediate");
  int2_tbs.subject = Name::FromCommonName("Intermediate2");
  int2_tbs.not_before = 0;
  int2_tbs.not_after = kNow + 8 * kYear;
  int2_tbs.public_key = int2_key.Public();
  int2_tbs.basic_constraints = {true, -1};
  auto int2 = std::make_shared<const Certificate>(
      SignCertificate(int2_tbs, f.int_key));

  // Junk CA: self-signed, not rooted.
  const crypto::KeyPair junk_key = TestKey("junk");
  TbsCertificate junk_tbs = int2_tbs;
  junk_tbs.issuer = junk_tbs.subject = Name::FromCommonName("Junk CA");
  junk_tbs.public_key = junk_key.Public();
  auto junk = std::make_shared<const Certificate>(
      SignCertificate(junk_tbs, junk_key));

  // Present candidates in an order that requires iteration (int2 first).
  const std::vector<CertPtr> candidates = {int2, junk, f.intermediate};
  const std::vector<CertPtr> set = BuildIntermediateSet(candidates, f.roots);
  ASSERT_EQ(set.size(), 2u);
  // Junk CA excluded.
  for (const CertPtr& cert : set)
    EXPECT_NE(cert->tbs.subject.CommonName(), "Junk CA");
}

TEST(Describe, CertificateRendering) {
  TbsCertificate tbs = MakeLeafTbs("www.describe.sim",
                                   Name::FromCommonName("Describer CA"),
                                   TestKey("dk").Public());
  tbs.policies = {asn1::oids::VerisignEvPolicy()};
  tbs.name_constraints.permitted_dns = {"describe.sim"};
  const Certificate cert = SignCertificate(tbs, TestKey("dca"));
  const std::string text = DescribeCertificate(cert);
  EXPECT_NE(text.find("www.describe.sim"), std::string::npos);
  EXPECT_NE(text.find("Describer CA"), std::string::npos);
  EXPECT_NE(text.find("EV policy   : yes"), std::string::npos);
  EXPECT_NE(text.find("permitted   : describe.sim"), std::string::npos);
  EXPECT_NE(text.find("fingerprint"), std::string::npos);

  // Unrevocable certs carry the warning.
  tbs.crl_urls.clear();
  tbs.ocsp_urls.clear();
  const std::string bare = DescribeCertificate(SignCertificate(tbs, TestKey("dca")));
  EXPECT_NE(bare.find("unrevocable"), std::string::npos);
}

TEST(CertPool, DedupAndLookup) {
  ChainFixture f;
  CertPool pool;
  pool.Add(f.leaf);
  pool.Add(f.leaf);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.Contains(*f.leaf));
  EXPECT_FALSE(pool.Contains(*f.root));
  EXPECT_EQ(pool.FindBySubject(f.leaf->tbs.subject).size(), 1u);
  EXPECT_TRUE(pool.FindBySubject(Name::FromCommonName("nope")).empty());
}

}  // namespace
}  // namespace rev::x509
