// Scanner and internet-population tests: lifetimes, cert harvesting, the
// handshake (stapling) scan, and the repeat-connection protocol.
#include <gtest/gtest.h>

#include "ca/ca.h"
#include "scan/internet.h"
#include "scan/scanner.h"
#include "util/rng.h"

namespace rev::scan {
namespace {

constexpr util::Timestamp kNow = 1'400'000'000;
constexpr std::int64_t kDay = util::kSecondsPerDay;

struct Fixture {
  util::Rng rng{1};
  std::unique_ptr<ca::CertificateAuthority> ca;
  Fixture() {
    ca::CertificateAuthority::Options options;
    options.name = "ScanCA";
    options.domain = "scanca.sim";
    ca = ca::CertificateAuthority::CreateRoot(options, rng, kNow - 400 * kDay);
  }

  x509::CertPtr IssueLeaf(std::string_view cn) {
    ca::CertificateAuthority::IssueOptions issue;
    issue.common_name = std::string(cn);
    issue.not_before = kNow - 30 * kDay;
    return ca->Issue(issue, rng);
  }

  Server MakeServer(std::uint32_t ip, x509::CertPtr leaf,
                    util::Timestamp birth, util::Timestamp death,
                    bool staple = false, bool requires_cache = false) {
    Server server{};
    server.ip = ip;
    server.leaf = leaf;
    server.chain = {leaf, ca->cert()};
    server.birth = birth;
    server.death = death;
    tls::TlsServer::Config config;
    if (staple) {
      config.stapling_enabled = true;
      config.staple_requires_cache = requires_cache;
      ca::CertificateAuthority* issuer = ca.get();
      const x509::Serial serial = leaf->tbs.serial;
      config.fetch_leaf_staple = [issuer, serial](util::Timestamp t) {
        return issuer->responder().StatusFor(serial, t).der;
      };
    }
    server.tls = tls::TlsServer(config);
    return server;
  }
};

TEST(Internet, AliveWindows) {
  Fixture f;
  Internet internet;
  const auto idx = internet.AddServer(
      f.MakeServer(1, f.IssueLeaf("a.sim"), kNow, kNow + 10 * kDay));
  EXPECT_TRUE(internet.server(idx).AliveAt(kNow));
  EXPECT_TRUE(internet.server(idx).AliveAt(kNow + 10 * kDay - 1));
  EXPECT_FALSE(internet.server(idx).AliveAt(kNow - 1));
  EXPECT_FALSE(internet.server(idx).AliveAt(kNow + 10 * kDay));

  // death == 0 means alive indefinitely.
  const auto forever = internet.AddServer(
      f.MakeServer(2, f.IssueLeaf("b.sim"), kNow, 0));
  EXPECT_TRUE(internet.server(forever).AliveAt(kNow + 1000 * kDay));

  internet.Kill(forever, kNow + kDay);
  EXPECT_FALSE(internet.server(forever).AliveAt(kNow + 2 * kDay));
}

TEST(Scanner, CertScanSeesOnlyAlive) {
  Fixture f;
  Internet internet;
  const x509::CertPtr early = f.IssueLeaf("early.sim");
  const x509::CertPtr late = f.IssueLeaf("late.sim");
  internet.AddServer(f.MakeServer(1, early, kNow - 10 * kDay, kNow + kDay));
  internet.AddServer(f.MakeServer(2, late, kNow + 5 * kDay, kNow + 50 * kDay));

  const CertScanSnapshot snap = RunCertScan(internet, kNow);
  ASSERT_EQ(snap.observations.size(), 1u);
  EXPECT_EQ(snap.observations[0].ip, 1u);
  ASSERT_EQ(snap.observations[0].chain.size(), 2u);
  EXPECT_EQ(snap.observations[0].chain[0]->Fingerprint(), early->Fingerprint());

  const CertScanSnapshot later = RunCertScan(internet, kNow + 10 * kDay);
  ASSERT_EQ(later.observations.size(), 1u);
  EXPECT_EQ(later.observations[0].ip, 2u);
}

TEST(Scanner, HandshakeScanRecordsStaples) {
  Fixture f;
  Internet internet;
  internet.AddServer(
      f.MakeServer(1, f.IssueLeaf("s.sim"), kNow - kDay, 0, /*staple=*/true));
  internet.AddServer(
      f.MakeServer(2, f.IssueLeaf("n.sim"), kNow - kDay, 0, /*staple=*/false));

  const HandshakeScanSnapshot snap = RunHandshakeScan(internet, kNow);
  ASSERT_EQ(snap.observations.size(), 2u);
  int stapled = 0;
  for (const HandshakeObservation& obs : snap.observations)
    if (obs.sent_staple) ++stapled;
  EXPECT_EQ(stapled, 1);
}

TEST(Scanner, ColdCacheServerMissesFirstScan) {
  // The ~18% single-scan underestimate (§4.3): a cache-requiring server
  // staples nothing on the first connection and staples on the second.
  Fixture f;
  Internet internet;
  const auto idx = internet.AddServer(f.MakeServer(
      1, f.IssueLeaf("c.sim"), kNow - kDay, 0, /*staple=*/true,
      /*requires_cache=*/true));

  const HandshakeScanSnapshot first = RunHandshakeScan(internet, kNow);
  EXPECT_FALSE(first.observations[0].sent_staple);
  const HandshakeScanSnapshot second = RunHandshakeScan(internet, kNow + 10);
  EXPECT_TRUE(second.observations[0].sent_staple);
  (void)idx;
}

TEST(Scanner, AttemptsUntilStaple) {
  Fixture f;
  Internet internet;
  const auto warm = internet.AddServer(
      f.MakeServer(1, f.IssueLeaf("w.sim"), kNow - kDay, 0, true, false));
  const auto cold = internet.AddServer(
      f.MakeServer(2, f.IssueLeaf("k.sim"), kNow - kDay, 0, true, true));
  const auto never = internet.AddServer(
      f.MakeServer(3, f.IssueLeaf("v.sim"), kNow - kDay, 0, false));

  EXPECT_EQ(AttemptsUntilStaple(internet.server(warm), kNow, 10), 1);
  EXPECT_EQ(AttemptsUntilStaple(internet.server(cold), kNow, 10), 2);
  EXPECT_EQ(AttemptsUntilStaple(internet.server(never), kNow, 10), 0);
}

TEST(Scanner, RevokedCertStillAdvertised) {
  // The paper's "alive and revoked" servers: revocation does not stop the
  // scanner from harvesting the cert.
  Fixture f;
  Internet internet;
  const x509::CertPtr leaf = f.IssueLeaf("zombie.sim");
  f.ca->Revoke(leaf->tbs.serial, kNow - kDay, x509::ReasonCode::kKeyCompromise);
  internet.AddServer(f.MakeServer(1, leaf, kNow - 10 * kDay, kNow + 100 * kDay));

  const CertScanSnapshot snap = RunCertScan(internet, kNow);
  ASSERT_EQ(snap.observations.size(), 1u);
  EXPECT_TRUE(f.ca->IsRevoked(snap.observations[0].chain[0]->tbs.serial));
}

}  // namespace
}  // namespace rev::scan
