// Mutation-fuzz tests: random byte-level corruption of valid DER artifacts
// must never crash, hang, or over-read — parsers either reject the input or
// produce a structurally valid object whose signature check then fails.
// (The paper's pipeline parses millions of certificates harvested from the
// open internet; parser robustness is a correctness requirement, not a
// nicety.)
#include <gtest/gtest.h>

#include "cascade/cascade.h"
#include "cascade/delta.h"
#include "core/pipeline.h"
#include "crl/crl.h"
#include "crlset/crlset.h"
#include "ocsp/ocsp.h"
#include "util/rng.h"
#include "x509/certificate.h"

namespace rev {
namespace {

constexpr util::Timestamp kNow = 1'420'000'000;

Bytes ValidCertDer() {
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial{0x01, 0x02, 0x03};
  tbs.issuer = x509::Name::Make("Fuzz CA", "Fuzz");
  tbs.subject = x509::Name::FromCommonName("www.fuzz.sim");
  tbs.not_before = kNow - 1000;
  tbs.not_after = kNow + 1000;
  tbs.public_key = crypto::SimKeyFromLabel("fuzz-leaf").Public();
  tbs.crl_urls = {"http://crl.fuzz.sim/a.crl"};
  tbs.ocsp_urls = {"http://ocsp.fuzz.sim/"};
  tbs.dns_names = {"www.fuzz.sim"};
  tbs.key_usage = x509::kKeyUsageDigitalSignature;
  tbs.policies = {asn1::oids::VerisignEvPolicy()};
  return x509::SignCertificate(tbs, crypto::SimKeyFromLabel("fuzz-ca")).der;
}

Bytes ValidCrlDer() {
  util::Rng rng(4242);
  crl::TbsCrl tbs;
  tbs.issuer = x509::Name::Make("Fuzz CA", "Fuzz");
  tbs.this_update = kNow;
  tbs.next_update = kNow + util::kSecondsPerDay;
  tbs.crl_number = 3;
  for (int i = 0; i < 30; ++i) {
    x509::Serial serial(16);
    rng.Fill(serial.data(), serial.size());
    tbs.entries.push_back(crl::CrlEntry{std::move(serial), kNow - 100,
                                        i % 2 ? x509::ReasonCode::kKeyCompromise
                                              : x509::ReasonCode::kNoReasonCode});
  }
  return crl::SignCrl(tbs, crypto::SimKeyFromLabel("fuzz-ca")).der;
}

Bytes ValidOcspDer() {
  ocsp::SingleResponse single;
  single.cert_id.issuer_name_hash = Bytes(32, 0x11);
  single.cert_id.issuer_key_hash = Bytes(32, 0x22);
  single.cert_id.serial = x509::Serial{0x09};
  single.status = ocsp::CertStatus::kRevoked;
  single.revocation_time = kNow - 100;
  single.reason = x509::ReasonCode::kKeyCompromise;
  single.this_update = kNow;
  single.next_update = kNow + util::kSecondsPerDay;
  return ocsp::SignOcspResponse(single, kNow, crypto::SimKeyFromLabel("fuzz-ca"))
      .der;
}

enum class Mutation { kFlipBit, kSetByte, kTruncate, kExtend, kSwapRange };

Bytes Mutate(const Bytes& input, util::Rng& rng) {
  Bytes out = input;
  const int num_mutations = 1 + static_cast<int>(rng.NextBelow(4));
  for (int m = 0; m < num_mutations && !out.empty(); ++m) {
    switch (static_cast<Mutation>(rng.NextBelow(5))) {
      case Mutation::kFlipBit: {
        const std::size_t pos = rng.NextBelow(out.size());
        out[pos] ^= static_cast<std::uint8_t>(1u << rng.NextBelow(8));
        break;
      }
      case Mutation::kSetByte: {
        const std::size_t pos = rng.NextBelow(out.size());
        out[pos] = static_cast<std::uint8_t>(rng.Next());
        break;
      }
      case Mutation::kTruncate:
        out.resize(rng.NextBelow(out.size()) + 1);
        break;
      case Mutation::kExtend: {
        Bytes extra(1 + rng.NextBelow(16));
        rng.Fill(extra.data(), extra.size());
        Append(out, extra);
        break;
      }
      case Mutation::kSwapRange: {
        const std::size_t a = rng.NextBelow(out.size());
        const std::size_t b = rng.NextBelow(out.size());
        std::swap(out[a], out[b]);
        break;
      }
    }
  }
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeeds, CertificateParserNeverCrashes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const Bytes valid = ValidCertDer();
  const crypto::PublicKey ca_key = crypto::SimKeyFromLabel("fuzz-ca").Public();
  int parsed_ok = 0;
  for (int i = 0; i < 400; ++i) {
    const Bytes mutated = Mutate(valid, rng);
    auto cert = x509::ParseCertificate(mutated);
    if (!cert) continue;
    ++parsed_ok;
    // Anything that still parses must carry the original signed bytes to
    // verify — i.e. the mutation missed the TBS or the signature, not both.
    if (x509::VerifyCertificateSignature(*cert, ca_key)) {
      EXPECT_EQ(cert->tbs_der,
                x509::EncodeTbs(cert->tbs, cert->sig_type));
    }
    // Accessors never crash on parsed-but-mutated objects.
    (void)cert->IsEv();
    (void)cert->IsCa();
    (void)cert->Fingerprint();
    (void)cert->Unrevocable();
  }
  // Some mutations (e.g. in the signature bits) must still parse.
  EXPECT_GT(parsed_ok, 0);
}

TEST_P(FuzzSeeds, CrlParserNeverCrashes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 2);
  const Bytes valid = ValidCrlDer();
  for (int i = 0; i < 400; ++i) {
    const Bytes mutated = Mutate(valid, rng);
    auto crl = crl::ParseCrl(mutated);
    if (!crl) continue;
    const crl::CrlIndex index(*crl);
    (void)index.IsRevoked(x509::Serial{1, 2, 3});
    (void)crl->IsExpired(kNow);
  }
}

TEST_P(FuzzSeeds, OcspParserNeverCrashes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299709 + 3);
  const Bytes valid = ValidOcspDer();
  for (int i = 0; i < 400; ++i) {
    const Bytes mutated = Mutate(valid, rng);
    auto response = ocsp::ParseOcspResponse(mutated);
    if (response && response->status == ocsp::ResponseStatus::kSuccessful) {
      (void)ocsp::CertStatusName(response->single.status);
    }
  }
}

TEST_P(FuzzSeeds, CrlSetDeserializeNeverCrashes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 4);
  crlset::CrlSet set;
  set.sequence = 1;
  for (int i = 0; i < 10; ++i) {
    Bytes parent(32);
    rng.Fill(parent.data(), parent.size());
    x509::Serial serial(16);
    rng.Fill(serial.data(), serial.size());
    set.AddEntry(parent, serial);
  }
  const Bytes valid = set.Serialize();
  for (int i = 0; i < 400; ++i) {
    const Bytes mutated = Mutate(valid, rng);
    auto decoded = crlset::CrlSet::Deserialize(mutated);
    if (decoded) (void)decoded->NumEntries();
  }
}

TEST_P(FuzzSeeds, CascadeDeserializeNeverCrashesOrMisAnswers) {
  // The cascade blob is checksum-sealed: a mutated blob either fails
  // Deserialize or (mutation landed outside the sealed region — impossible
  // here, the whole blob is sealed) decodes to the identical cascade. Either
  // way a client can never be handed a filter that answers "revoked"
  // wrongly because of wire damage.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 49979687 + 6);
  std::vector<Bytes> revoked, not_revoked;
  for (int i = 0; i < 1'000; ++i) {
    Bytes issuer(16), serial(12);
    rng.Fill(issuer.data(), issuer.size());
    rng.Fill(serial.data(), serial.size());
    (i < 40 ? revoked : not_revoked)
        .push_back(cascade::CertKey(issuer, serial));
  }
  cascade::FilterCascade original =
      cascade::FilterCascade::Build(revoked, not_revoked);
  original.sequence = 9;
  const Bytes valid = original.Serialize();
  int accepted = 0;
  for (int i = 0; i < 400; ++i) {
    const Bytes mutated = Mutate(valid, rng);
    auto decoded = cascade::FilterCascade::Deserialize(mutated);
    if (!decoded) continue;
    ++accepted;
    // Accepted implies byte-identical content (the checksum pins it), so
    // every query answer matches the original.
    ASSERT_TRUE(*decoded == original);
    for (const Bytes& key : revoked) ASSERT_TRUE(decoded->IsRevoked(key));
  }
  // Mutations essentially never preserve the checksum; the only accepted
  // blobs are byte-identical ones (Mutate does compose into a no-op now
  // and then — same-position swaps, double bit flips).
  EXPECT_LT(accepted, 40);
}

TEST_P(FuzzSeeds, DeltaDeserializeNeverCrashesOrMisAnswers) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 86028121 + 7);
  cascade::CascadeDelta delta;
  delta.from_sequence = 4;
  delta.to_sequence = 5;
  for (int i = 0; i < 30; ++i) {
    Bytes key(32);
    rng.Fill(key.data(), key.size());
    (i % 3 ? delta.added : delta.removed).push_back(std::move(key));
  }
  const Bytes valid_delta = delta.Serialize();

  cascade::UpdateResponse response;
  response.kind = cascade::UpdateResponse::Kind::kDeltas;
  response.deltas = {delta};
  const Bytes valid_response = response.Serialize();

  for (int i = 0; i < 400; ++i) {
    auto mutated_delta = cascade::CascadeDelta::Deserialize(Mutate(valid_delta, rng));
    if (mutated_delta) ASSERT_EQ(*mutated_delta, delta);

    auto mutated_response =
        cascade::UpdateResponse::Deserialize(Mutate(valid_response, rng));
    if (mutated_response) {
      ASSERT_EQ(mutated_response->kind, cascade::UpdateResponse::Kind::kDeltas);
      ASSERT_EQ(mutated_response->deltas.size(), 1u);
      ASSERT_EQ(mutated_response->deltas[0], delta);
    }
  }
}

TEST_P(FuzzSeeds, PureGarbageRejected) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 32452843 + 5);
  for (int i = 0; i < 200; ++i) {
    Bytes garbage(rng.NextBelow(600));
    rng.Fill(garbage.data(), garbage.size());
    // Random bytes essentially never form a valid signed object.
    auto cert = x509::ParseCertificate(garbage);
    if (cert) {
      EXPECT_FALSE(x509::VerifyCertificateSignature(
          *cert, crypto::SimKeyFromLabel("fuzz-ca").Public()));
    }
    (void)crl::ParseCrl(garbage);
    (void)ocsp::ParseOcspResponse(garbage);
    (void)ocsp::ParseOcspRequest(garbage);
    (void)crlset::CrlSet::Deserialize(garbage);
    EXPECT_FALSE(cascade::FilterCascade::Deserialize(garbage));
    EXPECT_FALSE(cascade::CascadeDelta::Deserialize(garbage));
    EXPECT_FALSE(cascade::UpdateResponse::Deserialize(garbage));
  }
}

// Mutated/truncated DER through the streaming corpus ingest: a rejected
// observation must leave the columnar store bit-identical — no partial
// interning, no arena corruption. CheckInvariants() re-derives every
// fingerprint from the arena and re-probes the index, so it would catch a
// torn row immediately.
TEST_P(FuzzSeeds, StreamingIngestRejectsWithoutCorpusCorruption) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 48611 + 3);
  const Bytes valid = ValidCertDer();

  core::Pipeline pipeline{x509::CertPool{}};
  pipeline.BeginScan(kNow);
  // Seed with one good row so rejection has a store to corrupt.
  const BytesView valid_view(valid);
  ASSERT_TRUE(pipeline.ObserveDer({&valid_view, 1}).has_value());

  const core::CertCorpus& corpus = pipeline.corpus();
  std::size_t accepted = 1;
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = Mutate(valid, rng);
    if (rng.NextBelow(4) == 0)  // also exercise hard truncation
      mutated.resize(rng.NextBelow(mutated.size() + 1));
    const std::size_t size_before = corpus.size();
    const BytesView view(mutated);
    const auto row = pipeline.ObserveDer({&view, 1});
    if (row.has_value()) {
      ++accepted;  // structurally valid mutant (e.g. unsigned-field tweak)
    } else {
      ASSERT_EQ(corpus.size(), size_before);
    }
    ASSERT_TRUE(corpus.CheckInvariants()) << "after mutant " << i;
  }
  EXPECT_GE(corpus.size(), 1u);
  EXPECT_LE(corpus.size(), accepted);

  // Multi-element chains are all-or-nothing: one bad element rejects the
  // whole observation even when the others are pristine.
  Bytes truncated(valid.begin(), valid.begin() + valid.size() / 2);
  const std::size_t size_before = corpus.size();
  const BytesView chain[2] = {BytesView(valid), BytesView(truncated)};
  EXPECT_FALSE(pipeline.ObserveDer(chain).has_value());
  EXPECT_EQ(corpus.size(), size_before);
  EXPECT_TRUE(corpus.CheckInvariants());
  pipeline.EndScan();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(0, 8));

}  // namespace
}  // namespace rev
