// Simulated-network tests: URL parsing, fetch semantics, the latency and
// bandwidth cost model, failure injection, and client-side caching.
#include <gtest/gtest.h>

#include "net/cache.h"
#include "net/simnet.h"
#include "net/url.h"

namespace rev::net {
namespace {

constexpr util::Timestamp kNow = 1'000'000;

// ----------------------------------------------------------------- url ----

TEST(Url, ParseBasics) {
  auto url = ParseUrl("http://crl.godaddy.sim/crl0.crl");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "crl.godaddy.sim");
  EXPECT_EQ(url->path, "/crl0.crl");
  EXPECT_EQ(url->ToString(), "http://crl.godaddy.sim/crl0.crl");
}

TEST(Url, DefaultPathAndCaseFolding) {
  auto url = ParseUrl("HTTPS://Example.sim");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->scheme, "https");
  EXPECT_EQ(url->path, "/");
}

TEST(Url, RejectsNonHttp) {
  // §3.2: ldap:// and file:// distribution points are ignored.
  EXPECT_FALSE(ParseUrl("ldap://dir.ca.sim/cn=crl"));
  EXPECT_FALSE(ParseUrl("file:///etc/crl"));
  EXPECT_FALSE(ParseUrl("not a url"));
  EXPECT_FALSE(ParseUrl("http://"));
  EXPECT_FALSE(ParseUrl("://host/"));
  EXPECT_TRUE(IsFetchable("http://x.sim/a"));
  EXPECT_FALSE(IsFetchable("ldap://x.sim/a"));
}

// -------------------------------------------------------------- simnet ----

HttpHandler Hello(std::int64_t max_age = 0) {
  return [max_age](const HttpRequest& request, util::Timestamp) {
    HttpResponse response;
    response.body = ToBytes("hello:" + request.path);
    response.max_age = max_age;
    return response;
  };
}

TEST(SimNet, BasicFetch) {
  SimNet net;
  net.AddHost("a.sim", Hello());
  const FetchResult result = net.Get("http://a.sim/x", kNow);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToString(result.response.body), "hello:/x");
  EXPECT_GT(result.elapsed_seconds, 0);
  EXPECT_EQ(net.total_requests(), 1u);
}

TEST(SimNet, UnknownHostIsDnsFailure) {
  SimNet net;
  const FetchResult result = net.Get("http://nowhere.sim/", kNow);
  EXPECT_EQ(result.error, FetchError::kDnsFailure);
  EXPECT_FALSE(result.ok());
}

TEST(SimNet, DnsFailureInjection) {
  SimNet net;
  net.AddHost("a.sim", Hello());
  net.SetDnsFailure("a.sim", true);
  EXPECT_EQ(net.Get("http://a.sim/", kNow).error, FetchError::kDnsFailure);
  net.SetDnsFailure("a.sim", false);
  EXPECT_TRUE(net.Get("http://a.sim/", kNow).ok());
}

TEST(SimNet, TimeoutInjection) {
  SimNet net;
  net.AddHost("a.sim", Hello());
  net.SetUnresponsive("a.sim", true);
  const FetchResult result = net.Get("http://a.sim/", kNow, 5.0);
  EXPECT_EQ(result.error, FetchError::kTimeout);
  EXPECT_DOUBLE_EQ(result.elapsed_seconds, 5.0);
}

TEST(SimNet, Http404IsNotOk) {
  SimNet net;
  net.AddHost("a.sim", [](const HttpRequest&, util::Timestamp) {
    return HttpResponse{.status = 404, .body = {}, .max_age = 0};
  });
  const FetchResult result = net.Get("http://a.sim/", kNow);
  EXPECT_EQ(result.error, FetchError::kOk);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.response.status, 404);
}

TEST(SimNet, LatencyModelScalesWithSize) {
  SimNet net;
  HostProfile slow;
  slow.rtt_seconds = 0.1;
  slow.bandwidth_bps = 8000;  // 1 KB/s
  net.AddHost("slow.sim", [](const HttpRequest&, util::Timestamp) {
    return HttpResponse{.status = 200, .body = Bytes(10'000, 'x'), .max_age = 0};
  }, slow);
  const FetchResult result = net.Get("http://slow.sim/", kNow, 60.0);
  ASSERT_TRUE(result.ok());
  // 3 RTTs (0.3s) + 10 KB at 1 KB/s (10s).
  EXPECT_NEAR(result.elapsed_seconds, 10.3, 0.01);
  EXPECT_EQ(result.bytes_transferred, 10'000u);
}

TEST(SimNet, TransferSlowerThanTimeoutFails) {
  SimNet net;
  HostProfile slow;
  slow.bandwidth_bps = 800;  // 100 B/s
  net.AddHost("slow.sim", [](const HttpRequest&, util::Timestamp) {
    return HttpResponse{.status = 200, .body = Bytes(100'000, 'x'), .max_age = 0};
  }, slow);
  const FetchResult result = net.Get("http://slow.sim/", kNow, 10.0);
  EXPECT_EQ(result.error, FetchError::kTimeout);
}

TEST(SimNet, PostDeliversBody) {
  SimNet net;
  net.AddHost("ocsp.sim", [](const HttpRequest& request, util::Timestamp) {
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  const Bytes body = ToBytes("ocsp-request-bytes");
  const FetchResult result = net.Post("http://ocsp.sim/", body, kNow);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response.body, body);
}

TEST(SimNet, HandlerSeesVirtualTime) {
  SimNet net;
  util::Timestamp seen = 0;
  net.AddHost("t.sim", [&seen](const HttpRequest&, util::Timestamp now) {
    seen = now;
    return HttpResponse{};
  });
  net.Get("http://t.sim/", 42'000);
  EXPECT_EQ(seen, 42'000);
}

TEST(SimNet, RemoveHost) {
  SimNet net;
  net.AddHost("a.sim", Hello());
  EXPECT_TRUE(net.HasHost("a.sim"));
  net.RemoveHost("a.sim");
  EXPECT_FALSE(net.HasHost("a.sim"));
  EXPECT_EQ(net.Get("http://a.sim/", kNow).error, FetchError::kDnsFailure);
}

TEST(SimNet, CountersAccumulateAndReset) {
  SimNet net;
  net.AddHost("a.sim", Hello());
  net.Get("http://a.sim/1", kNow);
  net.Get("http://a.sim/22", kNow);
  EXPECT_EQ(net.total_requests(), 2u);
  EXPECT_GT(net.total_bytes(), 0u);
  net.ResetCounters();
  EXPECT_EQ(net.total_requests(), 0u);
  EXPECT_EQ(net.total_bytes(), 0u);
}

TEST(SimNet, BadUrlFails) {
  SimNet net;
  EXPECT_EQ(net.Get("ldap://x/", kNow).error, FetchError::kDnsFailure);
}

// --------------------------------------------------------------- cache ----

TEST(CachingClient, CachesByMaxAge) {
  SimNet net;
  int hits = 0;
  net.AddHost("a.sim", [&hits](const HttpRequest&, util::Timestamp) {
    ++hits;
    HttpResponse response;
    response.body = ToBytes("payload");
    response.max_age = 3600;
    return response;
  });
  CachingClient client(&net);

  auto r1 = client.Get("http://a.sim/x", kNow);
  EXPECT_FALSE(r1.from_cache);
  auto r2 = client.Get("http://a.sim/x", kNow + 100);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_DOUBLE_EQ(r2.fetch.elapsed_seconds, 0);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(client.hits(), 1u);
  EXPECT_EQ(client.misses(), 1u);

  // Expired: re-fetch.
  auto r3 = client.Get("http://a.sim/x", kNow + 3600);
  EXPECT_FALSE(r3.from_cache);
  EXPECT_EQ(hits, 2);
}

TEST(CachingClient, UncacheableNotCached) {
  SimNet net;
  int hits = 0;
  net.AddHost("a.sim", [&hits](const HttpRequest&, util::Timestamp) {
    ++hits;
    return HttpResponse{};  // max_age = 0
  });
  CachingClient client(&net);
  client.Get("http://a.sim/", kNow);
  client.Get("http://a.sim/", kNow);
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(client.EntryCount(), 0u);
}

TEST(CachingClient, FailuresNotCached) {
  SimNet net;
  CachingClient client(&net);
  auto r1 = client.Get("http://missing.sim/", kNow);
  EXPECT_FALSE(r1.fetch.ok());
  EXPECT_EQ(client.EntryCount(), 0u);
}

TEST(CachingClient, EvictsExpiredEntries) {
  // Regression: expired entries were never erased, so a months-long crawl
  // grew the cache without bound.
  SimNet net;
  net.AddHost("a.sim", Hello(3600));
  CachingClient client(&net);
  client.Get("http://a.sim/1", kNow);
  client.Get("http://a.sim/2", kNow);
  EXPECT_EQ(client.EntryCount(), 2u);

  // Re-requesting an expired URL evicts the stale entry before refetching
  // (and then re-caches the fresh response).
  client.Get("http://a.sim/1", kNow + 7200);
  EXPECT_EQ(client.evictions(), 1u);
  EXPECT_EQ(client.EntryCount(), 2u);

  // PruneExpired sweeps entries whose URLs are never requested again.
  EXPECT_EQ(client.PruneExpired(kNow + 2 * 7200), 2u);
  EXPECT_EQ(client.EntryCount(), 0u);
  EXPECT_EQ(client.evictions(), 3u);
}

TEST(CachingClient, DistinctUrlsDistinctEntries) {
  SimNet net;
  net.AddHost("a.sim", Hello(3600));
  CachingClient client(&net);
  client.Get("http://a.sim/1", kNow);
  client.Get("http://a.sim/2", kNow);
  EXPECT_EQ(client.EntryCount(), 2u);
  client.Clear();
  EXPECT_EQ(client.EntryCount(), 0u);
}

}  // namespace
}  // namespace rev::net
