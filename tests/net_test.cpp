// Simulated-network tests: URL parsing, fetch semantics, the latency and
// bandwidth cost model, failure injection, and client-side caching.
#include <gtest/gtest.h>

#include "net/cache.h"
#include "net/fault.h"
#include "net/retry.h"
#include "net/simnet.h"
#include "net/url.h"
#include "obs/distrace.h"
#include "obs/metrics.h"

namespace rev::net {
namespace {

constexpr util::Timestamp kNow = 1'000'000;

// ----------------------------------------------------------------- url ----

TEST(Url, ParseBasics) {
  auto url = ParseUrl("http://crl.godaddy.sim/crl0.crl");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "crl.godaddy.sim");
  EXPECT_EQ(url->path, "/crl0.crl");
  EXPECT_EQ(url->ToString(), "http://crl.godaddy.sim/crl0.crl");
}

TEST(Url, DefaultPathAndCaseFolding) {
  auto url = ParseUrl("HTTPS://Example.sim");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->scheme, "https");
  EXPECT_EQ(url->path, "/");
}

TEST(Url, RejectsNonHttp) {
  // §3.2: ldap:// and file:// distribution points are ignored.
  EXPECT_FALSE(ParseUrl("ldap://dir.ca.sim/cn=crl"));
  EXPECT_FALSE(ParseUrl("file:///etc/crl"));
  EXPECT_FALSE(ParseUrl("not a url"));
  EXPECT_FALSE(ParseUrl("http://"));
  EXPECT_FALSE(ParseUrl("://host/"));
  EXPECT_TRUE(IsFetchable("http://x.sim/a"));
  EXPECT_FALSE(IsFetchable("ldap://x.sim/a"));
}

// -------------------------------------------------------------- simnet ----

HttpHandler Hello(std::int64_t max_age = 0) {
  return [max_age](const HttpRequest& request, util::Timestamp) {
    HttpResponse response;
    response.body = ToBytes("hello:" + request.path);
    response.max_age = max_age;
    return response;
  };
}

TEST(SimNet, BasicFetch) {
  SimNet net;
  net.AddHost("a.sim", Hello());
  const FetchResult result = net.Get("http://a.sim/x", kNow);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToString(result.response.body), "hello:/x");
  EXPECT_GT(result.elapsed_seconds, 0);
  EXPECT_EQ(net.total_requests(), 1u);
}

TEST(SimNet, UnknownHostIsDnsFailure) {
  SimNet net;
  const FetchResult result = net.Get("http://nowhere.sim/", kNow);
  EXPECT_EQ(result.error, FetchError::kDnsFailure);
  EXPECT_FALSE(result.ok());
}

TEST(SimNet, DnsFailureInjection) {
  SimNet net;
  net.AddHost("a.sim", Hello());
  net.SetDnsFailure("a.sim", true);
  EXPECT_EQ(net.Get("http://a.sim/", kNow).error, FetchError::kDnsFailure);
  net.SetDnsFailure("a.sim", false);
  EXPECT_TRUE(net.Get("http://a.sim/", kNow).ok());
}

TEST(SimNet, TimeoutInjection) {
  SimNet net;
  net.AddHost("a.sim", Hello());
  net.SetUnresponsive("a.sim", true);
  const FetchResult result = net.Get("http://a.sim/", kNow, 5.0);
  EXPECT_EQ(result.error, FetchError::kTimeout);
  EXPECT_DOUBLE_EQ(result.elapsed_seconds, 5.0);
}

TEST(SimNet, Http404IsNotOk) {
  SimNet net;
  net.AddHost("a.sim", [](const HttpRequest&, util::Timestamp) {
    return HttpResponse{.status = 404, .body = {}, .max_age = 0};
  });
  const FetchResult result = net.Get("http://a.sim/", kNow);
  EXPECT_EQ(result.error, FetchError::kOk);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.response.status, 404);
}

TEST(SimNet, LatencyModelScalesWithSize) {
  SimNet net;
  HostProfile slow;
  slow.rtt_seconds = 0.1;
  slow.bandwidth_bps = 8000;  // 1 KB/s
  net.AddHost("slow.sim", [](const HttpRequest&, util::Timestamp) {
    return HttpResponse{.status = 200, .body = Bytes(10'000, 'x'), .max_age = 0};
  }, slow);
  const FetchResult result = net.Get("http://slow.sim/", kNow, 60.0);
  ASSERT_TRUE(result.ok());
  // 3 RTTs (0.3s) + 10 KB at 1 KB/s (10s).
  EXPECT_NEAR(result.elapsed_seconds, 10.3, 0.01);
  EXPECT_EQ(result.bytes_transferred, 10'000u);
}

TEST(SimNet, TransferSlowerThanTimeoutFails) {
  SimNet net;
  HostProfile slow;
  slow.bandwidth_bps = 800;  // 100 B/s
  net.AddHost("slow.sim", [](const HttpRequest&, util::Timestamp) {
    return HttpResponse{.status = 200, .body = Bytes(100'000, 'x'), .max_age = 0};
  }, slow);
  const FetchResult result = net.Get("http://slow.sim/", kNow, 10.0);
  EXPECT_EQ(result.error, FetchError::kTimeout);
}

TEST(SimNet, PostDeliversBody) {
  SimNet net;
  net.AddHost("ocsp.sim", [](const HttpRequest& request, util::Timestamp) {
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  const Bytes body = ToBytes("ocsp-request-bytes");
  const FetchResult result = net.Post("http://ocsp.sim/", body, kNow);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response.body, body);
}

TEST(SimNet, HandlerSeesVirtualTime) {
  SimNet net;
  util::Timestamp seen = 0;
  net.AddHost("t.sim", [&seen](const HttpRequest&, util::Timestamp now) {
    seen = now;
    return HttpResponse{};
  });
  net.Get("http://t.sim/", 42'000);
  EXPECT_EQ(seen, 42'000);
}

TEST(SimNet, RemoveHost) {
  SimNet net;
  net.AddHost("a.sim", Hello());
  EXPECT_TRUE(net.HasHost("a.sim"));
  net.RemoveHost("a.sim");
  EXPECT_FALSE(net.HasHost("a.sim"));
  EXPECT_EQ(net.Get("http://a.sim/", kNow).error, FetchError::kDnsFailure);
}

TEST(SimNet, CountersAccumulateAndReset) {
  SimNet net;
  net.AddHost("a.sim", Hello());
  net.Get("http://a.sim/1", kNow);
  net.Get("http://a.sim/22", kNow);
  EXPECT_EQ(net.total_requests(), 2u);
  EXPECT_GT(net.total_bytes(), 0u);
  net.ResetCounters();
  EXPECT_EQ(net.total_requests(), 0u);
  EXPECT_EQ(net.total_bytes(), 0u);
}

TEST(SimNet, BadUrlFails) {
  SimNet net;
  EXPECT_EQ(net.Get("ldap://x/", kNow).error, FetchError::kDnsFailure);
}

// --------------------------------------------------------------- cache ----

TEST(CachingClient, CachesByMaxAge) {
  SimNet net;
  int hits = 0;
  net.AddHost("a.sim", [&hits](const HttpRequest&, util::Timestamp) {
    ++hits;
    HttpResponse response;
    response.body = ToBytes("payload");
    response.max_age = 3600;
    return response;
  });
  CachingClient client(&net);

  auto r1 = client.Get("http://a.sim/x", kNow);
  EXPECT_FALSE(r1.from_cache);
  auto r2 = client.Get("http://a.sim/x", kNow + 100);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_DOUBLE_EQ(r2.fetch.elapsed_seconds, 0);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(client.hits(), 1u);
  EXPECT_EQ(client.misses(), 1u);

  // Expired: re-fetch.
  auto r3 = client.Get("http://a.sim/x", kNow + 3600);
  EXPECT_FALSE(r3.from_cache);
  EXPECT_EQ(hits, 2);
}

TEST(CachingClient, UncacheableNotCached) {
  SimNet net;
  int hits = 0;
  net.AddHost("a.sim", [&hits](const HttpRequest&, util::Timestamp) {
    ++hits;
    return HttpResponse{};  // max_age = 0
  });
  CachingClient client(&net);
  client.Get("http://a.sim/", kNow);
  client.Get("http://a.sim/", kNow);
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(client.EntryCount(), 0u);
}

TEST(CachingClient, FailuresNotCached) {
  SimNet net;
  CachingClient client(&net);
  auto r1 = client.Get("http://missing.sim/", kNow);
  EXPECT_FALSE(r1.fetch.ok());
  EXPECT_EQ(client.EntryCount(), 0u);
}

TEST(CachingClient, EvictsExpiredEntries) {
  // Regression: expired entries were never erased, so a months-long crawl
  // grew the cache without bound.
  SimNet net;
  net.AddHost("a.sim", Hello(3600));
  CachingClient client(&net);
  client.Get("http://a.sim/1", kNow);
  client.Get("http://a.sim/2", kNow);
  EXPECT_EQ(client.EntryCount(), 2u);

  // Re-requesting an expired URL evicts the stale entry before refetching
  // (and then re-caches the fresh response).
  client.Get("http://a.sim/1", kNow + 7200);
  EXPECT_EQ(client.evictions(), 1u);
  EXPECT_EQ(client.EntryCount(), 2u);

  // PruneExpired sweeps entries whose URLs are never requested again.
  EXPECT_EQ(client.PruneExpired(kNow + 2 * 7200), 2u);
  EXPECT_EQ(client.EntryCount(), 0u);
  EXPECT_EQ(client.evictions(), 3u);
}

TEST(CachingClient, DistinctUrlsDistinctEntries) {
  SimNet net;
  net.AddHost("a.sim", Hello(3600));
  CachingClient client(&net);
  client.Get("http://a.sim/1", kNow);
  client.Get("http://a.sim/2", kNow);
  EXPECT_EQ(client.EntryCount(), 2u);
  client.Clear();
  EXPECT_EQ(client.EntryCount(), 0u);
}

// --------------------------------------------------------------- fault ----

TEST(FaultPlan, DecisionsAreDeterministicPerSeed) {
  SimNet net;
  net.AddHost("f.sim", Hello());
  // Two same-seeded plans make identical decisions over the same exchange
  // sequence; a different seed diverges.
  auto run = [&net](std::uint64_t seed) {
    FaultPlan plan(seed);
    FaultRule rule;
    rule.kind = FaultKind::kTimeout;
    rule.probability = 0.5;
    plan.AddRule(rule);
    net.SetFaultPlan(&plan);
    std::string decisions;
    for (int i = 0; i < 64; ++i)
      decisions.push_back(net.Get("http://f.sim/x", kNow + i).ok() ? 'o' : 'T');
    net.SetFaultPlan(nullptr);
    return decisions;
  };
  const std::string a = run(1), b = run(1), c = run(2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-64 false-failure odds
  EXPECT_NE(a.find('T'), std::string::npos);
  EXPECT_NE(a.find('o'), std::string::npos);
}

TEST(FaultPlan, TargetAndWindowScopeTheRule) {
  SimNet net;
  net.AddHost("a.sim", Hello());
  net.AddHost("b.sim", Hello());
  FaultPlan plan(9);
  FaultRule rule;
  rule.kind = FaultKind::kOutage;
  rule.target = "a.sim/crl";  // host + path prefix
  rule.start = kNow;
  rule.end = kNow + 100;
  plan.AddRule(rule);
  net.SetFaultPlan(&plan);

  EXPECT_FALSE(net.Get("http://a.sim/crl0.crl", kNow).ok());   // in scope
  EXPECT_TRUE(net.Get("http://a.sim/ocsp", kNow).ok());        // other path
  EXPECT_TRUE(net.Get("http://b.sim/crl0.crl", kNow).ok());    // other host
  EXPECT_TRUE(net.Get("http://a.sim/crl0.crl", kNow + 100).ok());  // past end
  EXPECT_EQ(plan.injected(FaultKind::kOutage), 1u);
  EXPECT_EQ(plan.total_injected(), 1u);
}

TEST(FaultPlan, FlapFollowsTheSquareWave) {
  SimNet net;
  net.AddHost("f.sim", Hello());
  FaultPlan plan(5);
  FaultRule rule;
  rule.kind = FaultKind::kFlap;
  rule.up_seconds = 100;
  rule.down_seconds = 50;
  plan.AddRule(rule);
  net.SetFaultPlan(&plan);
  // Phase-locked to the epoch: up on [0,100), down on [100,150), repeat.
  EXPECT_TRUE(net.Get("http://f.sim/x", 0).ok());
  EXPECT_TRUE(net.Get("http://f.sim/x", 99).ok());
  EXPECT_FALSE(net.Get("http://f.sim/x", 100).ok());
  EXPECT_FALSE(net.Get("http://f.sim/x", 149).ok());
  EXPECT_TRUE(net.Get("http://f.sim/x", 150).ok());
  EXPECT_FALSE(net.Get("http://f.sim/x", 150 + 120).ok());
}

TEST(FaultPlan, ResponseMutations) {
  SimNet net;
  net.AddHost("f.sim", Hello(3600));
  const std::string clean = "hello:/x";

  {  // 5xx substitution carries the Retry-After hint and drops the body.
    FaultPlan plan(1);
    FaultRule rule;
    rule.kind = FaultKind::kHttpError;
    rule.http_status = 503;
    rule.retry_after = 30;
    plan.AddRule(rule);
    net.SetFaultPlan(&plan);
    const FetchResult result = net.Get("http://f.sim/x", kNow);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.response.status, 503);
    EXPECT_EQ(result.response.retry_after, 30);
    EXPECT_TRUE(result.response.body.empty());
    EXPECT_EQ(result.response.max_age, 0);  // never cacheable
  }
  {  // Truncation keeps a prefix.
    FaultPlan plan(1);
    FaultRule rule;
    rule.kind = FaultKind::kTruncate;
    rule.keep_fraction = 0.5;
    plan.AddRule(rule);
    net.SetFaultPlan(&plan);
    const FetchResult result = net.Get("http://f.sim/x", kNow);
    EXPECT_TRUE(result.ok());  // transport says OK; only a parser can tell
    EXPECT_EQ(ToString(result.response.body), clean.substr(0, clean.size() / 2));
  }
  {  // Corruption flips bytes but preserves the length.
    FaultPlan plan(1);
    FaultRule rule;
    rule.kind = FaultKind::kCorrupt;
    rule.corrupt_bytes = 1;
    plan.AddRule(rule);
    net.SetFaultPlan(&plan);
    const FetchResult result = net.Get("http://f.sim/x", kNow);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.response.body.size(), clean.size());
    EXPECT_NE(ToString(result.response.body), clean);
  }
  {  // Latency inflation can push a slow exchange over the timeout.
    FaultPlan plan(1);
    FaultRule rule;
    rule.kind = FaultKind::kLatency;
    rule.latency_factor = 1000.0;
    plan.AddRule(rule);
    net.SetFaultPlan(&plan);
    const FetchResult result = net.Get("http://f.sim/x", kNow, 10.0);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.error, FetchError::kTimeout);
    EXPECT_EQ(result.elapsed_seconds, 10.0);  // capped at the budget
  }
  net.SetFaultPlan(nullptr);
}

// --------------------------------------------------------------- retry ----

TEST(Retry, TransientErrorRecovers) {
  SimNet net;
  int calls = 0;
  net.AddHost("t.sim", [&](const HttpRequest&, util::Timestamp) {
    HttpResponse response;
    if (calls++ < 2) {
      response.status = 500;
    } else {
      response.body = ToBytes("finally");
    }
    return response;
  });
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 1;
  policy.jitter = 0;
  const RetryResult result = GetWithRetry(net, "http://t.sim/x", kNow, policy);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.gave_up);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(ToString(result.fetch.response.body), "finally");
  EXPECT_DOUBLE_EQ(result.backoff_seconds, 1 + 2);  // 1s then 2s, jitter off
  // Each attempt hit the (virtual) wire.
  EXPECT_EQ(net.total_requests(), 3u);
}

TEST(Retry, ExhaustionGivesUpWithLastResult) {
  SimNet net;
  net.AddHost("down.sim", [](const HttpRequest&, util::Timestamp) {
    HttpResponse response;
    response.status = 503;
    return response;
  });
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 1;
  policy.jitter = 0;
  const RetryResult result =
      GetWithRetry(net, "http://down.sim/x", kNow, policy);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.gave_up);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(result.fetch.response.status, 503);
}

TEST(Retry, DnsFailureIsDefinitiveNotRetried) {
  SimNet net;
  net.AddHost("up.sim", Hello());
  net.SetDnsFailure("up.sim", true);
  RetryPolicy policy;
  policy.max_attempts = 5;
  const RetryResult result = GetWithRetry(net, "http://up.sim/x", kNow, policy);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.gave_up);  // not exhausted — the error is permanent
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.fetch.error, FetchError::kDnsFailure);
}

// Regression: 501 Not Implemented and 505 HTTP Version Not Supported are
// 5xx codes that condemn the request *shape*, not the moment — retrying
// the identical request can never help. They must be terminal like 4xx,
// while their neighbors (500, 503) stay retryable.
TEST(Retry, NotImplementedAndVersionNotSupportedAreTerminal) {
  for (const int status : {501, 505}) {
    SimNet net;
    net.AddHost("shape.sim", [status](const HttpRequest&, util::Timestamp) {
      HttpResponse response;
      response.status = status;
      return response;
    });
    RetryPolicy policy;
    policy.max_attempts = 5;
    const RetryResult result =
        GetWithRetry(net, "http://shape.sim/x", kNow, policy);
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.gave_up) << status;  // definitive, not exhausted
    EXPECT_EQ(result.attempts, 1) << status;
    EXPECT_EQ(result.fetch.response.status, status);
    EXPECT_EQ(net.total_requests(), 1u) << status;
  }
  // The neighboring 5xx codes keep retrying as before.
  for (const int status : {500, 502, 503, 504}) {
    SimNet net;
    net.AddHost("busy.sim", [status](const HttpRequest&, util::Timestamp) {
      HttpResponse response;
      response.status = status;
      return response;
    });
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.initial_backoff_seconds = 1;
    policy.jitter = 0;
    const RetryResult result =
        GetWithRetry(net, "http://busy.sim/x", kNow, policy);
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(result.gave_up) << status;
    EXPECT_EQ(result.attempts, 3) << status;
  }
}

TEST(Retry, NonePolicyMakesExactlyOneAttempt) {
  SimNet net;
  net.AddHost("t.sim", [](const HttpRequest&, util::Timestamp) {
    HttpResponse response;
    response.status = 503;
    return response;
  });
  const RetryResult result =
      GetWithRetry(net, "http://t.sim/x", kNow, RetryPolicy::None());
  EXPECT_EQ(result.attempts, 1);
  EXPECT_TRUE(result.gave_up);
  EXPECT_EQ(net.total_requests(), 1u);
}

// Regression (docs/fault-injection.md): a retried fetch is ONE logical
// cache transaction — one miss, however many attempts the policy burns,
// and no hit/miss inflation on top.
TEST(CachingClient, RetriedFetchCountsExactlyOneMiss) {
  SimNet net;
  int calls = 0;
  net.AddHost("r.sim", [&](const HttpRequest&, util::Timestamp) {
    HttpResponse response;
    if (calls++ < 2) {
      response.status = 503;
    } else {
      response.body = ToBytes("fresh");
      response.max_age = 3600;
    }
    return response;
  });
  CachingClient client(&net);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 1;
  policy.jitter = 0;

  const CachingClient::Result result =
      client.Get("http://r.sim/x", kNow, policy);
  EXPECT_TRUE(result.fetch.ok());
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(client.misses(), 1u) << "retries must not inflate misses";
  EXPECT_EQ(client.hits(), 0u);
  // The retried result was cached normally; attempts==0 flags a cache hit.
  const CachingClient::Result cached =
      client.Get("http://r.sim/x", kNow + 10, policy);
  EXPECT_TRUE(cached.from_cache);
  EXPECT_EQ(cached.attempts, 0);
  EXPECT_EQ(client.hits(), 1u);
  EXPECT_EQ(client.misses(), 1u);
  // The cumulative cost of all three attempts is reported on the result.
  EXPECT_GT(result.fetch.elapsed_seconds, 3.0);  // two 1s+2s waits + wire
}

// -------------------------------------------- fetch observability ----------

TEST(SimNet, FetchStatusClassCountersTallyExactly) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& c2xx = registry.GetCounter("net.fetch{class=2xx}");
  obs::Counter& c4xx = registry.GetCounter("net.fetch{class=4xx}");
  obs::Counter& c5xx = registry.GetCounter("net.fetch{class=5xx}");
  obs::Counter& cerr = registry.GetCounter("net.fetch{class=err}");
  obs::Counter& cbytes = registry.GetCounter("net.fetch.bytes");
  const std::uint64_t base_2xx = c2xx.Value();
  const std::uint64_t base_4xx = c4xx.Value();
  const std::uint64_t base_5xx = c5xx.Value();
  const std::uint64_t base_err = cerr.Value();
  const std::uint64_t base_bytes = cbytes.Value();

  SimNet net;
  net.AddHost("classes.sim", [](const HttpRequest& request, util::Timestamp) {
    HttpResponse response;
    if (request.path == "/ok") {
      response.body = {'h', 'i'};
    } else if (request.path == "/missing") {
      response.status = 404;
    } else {
      response.status = 503;
    }
    return response;
  });

  std::uint64_t transferred = 0;
  const FetchResult ok = net.Get("http://classes.sim/ok", 1000);
  transferred += ok.bytes_transferred;
  const FetchResult ok2 = net.Get("http://classes.sim/ok", 1001);
  transferred += ok2.bytes_transferred;
  const FetchResult missing = net.Get("http://classes.sim/missing", 1002);
  transferred += missing.bytes_transferred;
  const FetchResult shed = net.Get("http://classes.sim/shed", 1003);
  transferred += shed.bytes_transferred;
  const FetchResult dns = net.Get("http://no-such-host.sim/", 1004);
  transferred += dns.bytes_transferred;
  ASSERT_EQ(dns.error, FetchError::kDnsFailure);

  EXPECT_EQ(c2xx.Value() - base_2xx, 2u);
  EXPECT_EQ(c4xx.Value() - base_4xx, 1u);
  EXPECT_EQ(c5xx.Value() - base_5xx, 1u);
  EXPECT_EQ(cerr.Value() - base_err, 1u);
  EXPECT_EQ(cbytes.Value() - base_bytes, transferred);
  EXPECT_GT(transferred, 0u);
}

TEST(SimNet, TraceparentRewritesPerExchangeAndRecordsSpan) {
  obs::DistTraceCollector& collector = obs::DistTraceCollector::Global();
  collector.Clear();
  collector.Enable();

  std::string seen_header;
  SimNet net;
  net.AddHost("traced.sim",
              [&](const HttpRequest& request, util::Timestamp) {
                const auto it = request.headers.find(obs::kTraceparentHeader);
                if (it != request.headers.end()) seen_header = it->second;
                return HttpResponse{};
              });

  const obs::TraceId trace = obs::MakeTraceId(0x7E57, 1);
  const obs::SpanContext root{trace, obs::RootSpanId(trace)};
  HttpRequest request;
  request.host = "traced.sim";
  request.path = "/";
  request.headers[obs::kTraceparentHeader] = obs::FormatTraceparent(root);
  const FetchResult result = net.Fetch(request, 2000);
  collector.Disable();
  ASSERT_TRUE(result.ok());

  // The wire header is rewritten per exchange: same trace, new span id, so
  // server-side spans parent under the hop that carried them.
  ASSERT_FALSE(seen_header.empty());
  EXPECT_NE(seen_header, request.headers[obs::kTraceparentHeader]);
  obs::SpanContext on_wire;
  ASSERT_TRUE(obs::ParseTraceparent(seen_header, &on_wire));
  EXPECT_EQ(on_wire.trace.hi, trace.hi);
  EXPECT_EQ(on_wire.trace.lo, trace.lo);
  EXPECT_NE(on_wire.span, root.span);

  const auto spans = collector.SnapshotTrace(trace);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "net.exchange");
  EXPECT_STREQ(spans[0].node, "traced.sim");
  EXPECT_EQ(spans[0].span, on_wire.span);
  EXPECT_EQ(spans[0].parent, root.span);
  EXPECT_EQ(spans[0].kind, obs::SpanKind::kClient);
  EXPECT_EQ(spans[0].status, 200);
  EXPECT_EQ(spans[0].start_ns, obs::VirtualNs(2000, 0));
  EXPECT_EQ(spans[0].end_ns, obs::VirtualNs(2000, result.elapsed_seconds));
  collector.Clear();
}

TEST(Retry, AttemptAndBackoffSpansCoverTheLadder) {
  obs::DistTraceCollector& collector = obs::DistTraceCollector::Global();
  collector.Clear();
  collector.Enable();

  int calls = 0;
  SimNet net;
  net.AddHost("flaky.sim", [&](const HttpRequest&, util::Timestamp) {
    HttpResponse response;
    if (++calls < 3) response.status = 503;
    return response;
  });

  const obs::TraceId trace = obs::MakeTraceId(0x7E57, 2);
  const obs::SpanContext root{trace, obs::RootSpanId(trace)};
  HttpRequest request;
  request.host = "flaky.sim";
  request.path = "/";
  request.headers[obs::kTraceparentHeader] = obs::FormatTraceparent(root);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0;
  const RetryResult result = net::FetchWithRetry(net, request, 3000, policy);
  collector.Disable();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.attempts, 3);

  std::size_t attempts = 0, backoffs = 0, exchanges = 0;
  const auto spans = collector.SnapshotTrace(trace);
  // Exchanges are recorded before their enclosing attempt span closes, so
  // collect the attempt ids up front.
  std::vector<std::uint64_t> attempt_ids;
  for (const auto& span : spans)
    if (std::string_view(span.name) == "net.attempt")
      attempt_ids.push_back(span.span);
  for (const auto& span : spans) {
    if (std::string_view(span.name) == "net.attempt") {
      ++attempts;
      EXPECT_EQ(span.parent, root.span);
    } else if (std::string_view(span.name) == "net.backoff") {
      ++backoffs;
      EXPECT_EQ(span.parent, root.span);
      EXPECT_GT(span.end_ns, span.start_ns);  // the wait has real width
    } else if (std::string_view(span.name) == "net.exchange") {
      ++exchanges;
      // Every exchange hangs off one of the attempt spans.
      bool under_attempt = false;
      for (const std::uint64_t id : attempt_ids)
        if (span.parent == id) under_attempt = true;
      EXPECT_TRUE(under_attempt);
    }
  }
  EXPECT_EQ(attempts, 3u);   // one per wire attempt
  EXPECT_EQ(backoffs, 2u);   // one per wait between attempts
  EXPECT_EQ(exchanges, 3u);  // each attempt carried one exchange
  collector.Clear();
}

}  // namespace
}  // namespace rev::net
