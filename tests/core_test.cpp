// Core-module tests: the scan pipeline, the revocation crawler, timeline
// analytics, audits, and the ecosystem generator's calibration — all over a
// small but fully wired synthetic PKI.
#include <gtest/gtest.h>

#include "core/ca_audit.h"
#include "core/crawler.h"
#include "crypto/signer.h"
#include "core/crlset_audit.h"
#include "core/ecosystem.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "core/stapling_audit.h"
#include "core/timeline.h"

namespace rev::core {
namespace {

constexpr std::int64_t kDay = util::kSecondsPerDay;

// One shared small ecosystem + pipeline + crawl for the whole suite (it is
// deterministic, and rebuilding per test would dominate runtime).
class World {
 public:
  static World& Get() {
    static World world;
    return world;
  }

  std::unique_ptr<Ecosystem> eco;
  std::unique_ptr<Pipeline> pipeline;
  std::unique_ptr<RevocationCrawler> crawler;
  std::vector<util::Timestamp> scan_times;

 private:
  World() {
    EcosystemConfig config;
    config.scale = 0.002;
    config.seed = 7;
    eco = Ecosystem::Build(config);

    pipeline = std::make_unique<Pipeline>(eco->roots());
    const EcosystemConfig& c = eco->config();
    for (util::Timestamp t = c.study_start; t <= c.study_end; t += 7 * kDay) {
      scan_times.push_back(t);
      pipeline->IngestScan(scan::RunCertScan(eco->internet(), t));
    }
    pipeline->Finalize();

    crawler = std::make_unique<RevocationCrawler>(&eco->net());
    crawler->CollectUrls(*pipeline);
    // Weekly crawl instead of daily to keep the test quick; CRLs are
    // revisited well within entry lifetimes either way.
    for (util::Timestamp t = c.crawl_start; t <= c.study_end; t += 7 * kDay)
      crawler->CrawlAll(t);
  }
};

// ------------------------------------------------------------- pipeline ----

// Minimal synthetic scans for the ingest-ordering tests: one self-contained
// leaf per name, observed as a chain of just itself.
x509::CertPtr MakeTestLeaf(const std::string& cn) {
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial(8, 0x21);
  tbs.issuer = x509::Name::Make("Ingest Test CA", "Ingest");
  tbs.subject = x509::Name::FromCommonName(cn);
  tbs.not_before = util::MakeDate(2013, 1, 1);
  tbs.not_after = util::MakeDate(2016, 1, 1);
  tbs.public_key = crypto::SimKeyFromLabel("ingest-" + cn).Public();
  tbs.dns_names = {cn};
  return std::make_shared<const x509::Certificate>(
      x509::SignCertificate(tbs, crypto::SimKeyFromLabel("ingest-ca")));
}

scan::CertScanSnapshot MakeSnapshot(util::Timestamp t,
                                    const std::vector<x509::CertPtr>& leaves) {
  scan::CertScanSnapshot snapshot;
  snapshot.time = t;
  for (const x509::CertPtr& leaf : leaves) {
    scan::CertObservation obs;
    obs.chain = {leaf};
    snapshot.observations.push_back(obs);
  }
  return snapshot;
}

CertCorpus::Row RowOf(const Pipeline& pipeline, const x509::CertPtr& cert) {
  const CertCorpus::Row row = pipeline.corpus().Find(cert->Fingerprint());
  EXPECT_NE(row, CertCorpus::kNoRow);
  return row;
}

bool InLatestScan(const Pipeline& pipeline, const x509::CertPtr& cert) {
  return pipeline.corpus().in_latest_scan(RowOf(pipeline, cert));
}

TEST(Pipeline, SameTimestampSnapshotsMergeIntoLatestView) {
  // Regression: `time >= latest` used to clear every in_latest_scan flag on
  // a second snapshot with the *same* timestamp, silently dropping the first
  // snapshot's leaves from the latest-scan view.
  const util::Timestamp t = util::MakeDate(2014, 6, 1);
  const x509::CertPtr a = MakeTestLeaf("a.ingest.sim");
  const x509::CertPtr b = MakeTestLeaf("b.ingest.sim");

  Pipeline pipeline{x509::CertPool{}};
  pipeline.IngestScan(MakeSnapshot(t, {a}));
  pipeline.IngestScan(MakeSnapshot(t, {b}));

  EXPECT_EQ(pipeline.latest_scan_time(), t);
  EXPECT_TRUE(InLatestScan(pipeline, a));
  EXPECT_TRUE(InLatestScan(pipeline, b));
  EXPECT_EQ(pipeline.out_of_order_scans(), 0u);

  // A strictly newer snapshot still starts a fresh view.
  pipeline.IngestScan(MakeSnapshot(t + kDay, {b}));
  EXPECT_FALSE(InLatestScan(pipeline, a));
  EXPECT_TRUE(InLatestScan(pipeline, b));
}

TEST(Pipeline, OutOfOrderSnapshotIsFlaggedAndDoesNotTouchLatestView) {
  const util::Timestamp t1 = util::MakeDate(2014, 6, 1);
  const util::Timestamp t2 = util::MakeDate(2014, 6, 8);
  const x509::CertPtr a = MakeTestLeaf("a.ooo.sim");
  const x509::CertPtr b = MakeTestLeaf("b.ooo.sim");

  Pipeline pipeline{x509::CertPool{}};
  pipeline.IngestScan(MakeSnapshot(t2, {a}));
  // Late-arriving older scan: lifetimes/observations fold in, but the
  // latest-scan view must not change, and the regression is counted.
  pipeline.IngestScan(MakeSnapshot(t1, {a, b}));

  EXPECT_EQ(pipeline.out_of_order_scans(), 1u);
  EXPECT_EQ(pipeline.latest_scan_time(), t2);
  EXPECT_TRUE(InLatestScan(pipeline, a));
  EXPECT_FALSE(InLatestScan(pipeline, b));

  const CertCorpus& corpus = pipeline.corpus();
  const CertCorpus::Row ra = RowOf(pipeline, a);
  EXPECT_EQ(corpus.first_seen(ra), t1);  // the older scan still widens the lifetime
  EXPECT_EQ(corpus.last_seen(ra), t2);
  EXPECT_EQ(corpus.observations(ra), 2u);
  const CertCorpus::Row rb = RowOf(pipeline, b);
  EXPECT_EQ(corpus.first_seen(rb), t1);
  EXPECT_EQ(corpus.last_seen(rb), t1);
}

TEST(Pipeline, BuildsLeafAndIntermediateSets) {
  World& w = World::Get();
  EXPECT_GT(w.pipeline->LeafSet().size(), 1'000u);
  // One intermediate CA entry per issuing CA (big 9 + offweb + tail).
  EXPECT_GE(w.pipeline->IntermediateSet().size(), 40u);
  // Every leaf validated against the roots.
  const CertCorpus& corpus = w.pipeline->corpus();
  for (const CertCorpus::Row row : w.pipeline->LeafSet()) {
    EXPECT_TRUE(corpus.valid(row));
    EXPECT_FALSE(corpus.is_ca(row));
  }
}

TEST(Pipeline, LifetimesWithinStudy) {
  World& w = World::Get();
  const EcosystemConfig& c = w.eco->config();
  const CertCorpus& corpus = w.pipeline->corpus();
  for (const CertCorpus::Row row : w.pipeline->LeafSet()) {
    EXPECT_GE(corpus.first_seen(row), c.study_start);
    EXPECT_LE(corpus.last_seen(row), c.study_end);
    EXPECT_LE(corpus.first_seen(row), corpus.last_seen(row));
    EXPECT_GT(corpus.observations(row), 0u);
  }
}

TEST(Pipeline, SomeCertsStillAdvertisedSomeGone) {
  World& w = World::Get();
  std::size_t advertised = 0;
  const CertCorpus& corpus = w.pipeline->corpus();
  for (const CertCorpus::Row row : w.pipeline->LeafSet())
    if (corpus.in_latest_scan(row)) ++advertised;
  const double fraction =
      static_cast<double>(advertised) /
      static_cast<double>(w.pipeline->LeafSet().size());
  // Paper: 45.2% of the Leaf Set still advertised in the last scan.
  EXPECT_GT(fraction, 0.15);
  EXPECT_LT(fraction, 0.85);
}

TEST(DatasetStats, MatchesPaperShape) {
  World& w = World::Get();
  const DatasetStats stats = ComputeDatasetStats(*w.pipeline);
  EXPECT_EQ(stats.leaf_set, w.pipeline->LeafSet().size());
  // §3.2: ~99.9% of leaves carry a CRL pointer, ~95% an OCSP pointer, and
  // ~0.09% are unrevocable.
  const double crl_frac = static_cast<double>(stats.leaf_with_crl) /
                          static_cast<double>(stats.leaf_set);
  const double ocsp_frac = static_cast<double>(stats.leaf_with_ocsp) /
                           static_cast<double>(stats.leaf_set);
  const double unrevocable_frac = static_cast<double>(stats.leaf_unrevocable) /
                                  static_cast<double>(stats.leaf_set);
  EXPECT_GT(crl_frac, 0.99);
  EXPECT_GT(ocsp_frac, 0.85);
  EXPECT_LT(ocsp_frac, crl_frac);
  EXPECT_LT(unrevocable_frac, 0.01);
}

// -------------------------------------------------------------- crawler ----

TEST(Crawler, DiscoversRevocations) {
  World& w = World::Get();
  EXPECT_GT(w.crawler->total_revocations(), 100u);
  EXPECT_GT(w.crawler->crawled().size(), 100u);  // CRL URLs fetched
  EXPECT_GT(w.crawler->bytes_downloaded(), 10'000u);
  EXPECT_GT(w.crawler->seconds_spent(), 0.0);
}

TEST(Crawler, LookupAgreesWithCaGroundTruth) {
  World& w = World::Get();
  const EcosystemConfig& c = w.eco->config();
  constexpr std::int64_t kStep = 7 * kDay;  // the World crawls weekly
  std::size_t checked = 0;
  for (const Ecosystem::CaEntry& entry : w.eco->cas()) {
    if (entry.spec.paper_offweb_revocations > 0) continue;
    for (const auto& rev : entry.ca->CurrentRevocations(c.study_end)) {
      // A revocation is visible only if some crawl fell inside
      // [revoked_at, cert_expiry]: compute the first crawl at or after the
      // revocation and check it happened before expiry and study end.
      util::Timestamp first_crawl = c.crawl_start;
      if (rev.revoked_at > first_crawl) {
        const std::int64_t periods =
            (rev.revoked_at - c.crawl_start + kStep - 1) / kStep;
        first_crawl = c.crawl_start + periods * kStep;
      }
      if (first_crawl > c.study_end || first_crawl > rev.cert_expiry) continue;
      // The crawler only learns CRL URLs from scanned certificates; shards
      // no certificate references are invisible (as in the paper).
      const std::string url =
          entry.ca->CrlUrl(entry.ca->ShardForSerial(rev.serial));
      if (!w.crawler->crawled().contains(url)) continue;
      const RevocationInfo* info =
          w.crawler->Lookup(entry.ca->cert()->tbs.subject, rev.serial);
      ASSERT_NE(info, nullptr);
      EXPECT_EQ(info->revoked_at, rev.revoked_at);
      if (++checked > 500) return;
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST(Crawler, OcspQueryPath) {
  World& w = World::Get();
  // Find a leaf with an OCSP URL and query it end to end.
  const CertCorpus& corpus = w.pipeline->corpus();
  for (const CertCorpus::Row row : w.pipeline->LeafSet()) {
    if (corpus.ocsp_url_ids(row).empty()) continue;
    const x509::CertPtr cert = corpus.cert(row);
    // Issuer CA cert: find by name among ecosystem CAs.
    for (const Ecosystem::CaEntry& entry : w.eco->cas()) {
      if (!(entry.ca->cert()->tbs.subject == cert->tbs.issuer)) continue;
      auto status = w.crawler->QueryOcsp(*cert, *entry.ca->cert(),
                                         w.eco->config().study_end);
      ASSERT_TRUE(status.has_value());
      EXPECT_NE(*status, ocsp::CertStatus::kUnknown);
      return;
    }
  }
  FAIL() << "no OCSP-capable leaf found";
}

// ---------------------------------------------------------- parallelism ----

// The tentpole guarantee (docs/parallelism.md): Finalize() and CrawlAll()
// produce byte-identical records, revocation DB, and cost counters at any
// thread count. Two fully independent (but identically seeded) worlds are
// built so CA-side lazy CRL state cannot leak between the runs.
TEST(Parallelism, FinalizeAndCrawlDeterministicAcrossThreadCounts) {
  struct Run {
    std::unique_ptr<Ecosystem> eco;
    std::unique_ptr<Pipeline> pipeline;
    std::unique_ptr<RevocationCrawler> crawler;
  };
  auto build = [](unsigned threads) {
    Run run;
    EcosystemConfig config;
    config.scale = 0.001;
    config.seed = 11;
    run.eco = Ecosystem::Build(config);
    const EcosystemConfig& c = run.eco->config();
    run.pipeline = std::make_unique<Pipeline>(run.eco->roots(), threads);
    for (util::Timestamp t = c.study_start; t <= c.study_end; t += 14 * kDay)
      run.pipeline->IngestScan(scan::RunCertScan(run.eco->internet(), t));
    run.pipeline->Finalize();
    run.crawler =
        std::make_unique<RevocationCrawler>(&run.eco->net(), threads);
    run.crawler->CollectUrls(*run.pipeline);
    for (util::Timestamp t = c.crawl_start; t <= c.study_end; t += 7 * kDay)
      run.crawler->CrawlAll(t);
    return run;
  };

  const Run serial = build(1);
  const Run parallel = build(8);
  EXPECT_EQ(serial.pipeline->threads(), 1u);
  EXPECT_EQ(parallel.pipeline->threads(), 8u);

  // Corpus rows: identical fingerprints, verdicts, and lifetimes in
  // fingerprint order (the old map's iteration order).
  const CertCorpus& corpus1 = serial.pipeline->corpus();
  const CertCorpus& corpus8 = parallel.pipeline->corpus();
  ASSERT_EQ(corpus1.size(), corpus8.size());
  const std::vector<CertCorpus::Row> rows1 = corpus1.RowsByFingerprint();
  const std::vector<CertCorpus::Row> rows8 = corpus8.RowsByFingerprint();
  for (std::size_t i = 0; i < rows1.size(); ++i) {
    const CertCorpus::Row r1 = rows1[i], r8 = rows8[i];
    ASSERT_EQ(Bytes(corpus1.fingerprint(r1).begin(),
                    corpus1.fingerprint(r1).end()),
              Bytes(corpus8.fingerprint(r8).begin(),
                    corpus8.fingerprint(r8).end()));
    EXPECT_EQ(corpus1.valid(r1), corpus8.valid(r8));
    EXPECT_EQ(corpus1.first_seen(r1), corpus8.first_seen(r8));
    EXPECT_EQ(corpus1.last_seen(r1), corpus8.last_seen(r8));
    EXPECT_EQ(corpus1.observations(r1), corpus8.observations(r8));
    EXPECT_EQ(corpus1.in_latest_scan(r1), corpus8.in_latest_scan(r8));
  }
  ASSERT_EQ(serial.pipeline->IntermediateSet().size(),
            parallel.pipeline->IntermediateSet().size());
  for (std::size_t i = 0; i < serial.pipeline->IntermediateSet().size(); ++i)
    EXPECT_EQ(serial.pipeline->IntermediateSet()[i]->Fingerprint(),
              parallel.pipeline->IntermediateSet()[i]->Fingerprint());
  EXPECT_EQ(serial.pipeline->LeafSet().size(),
            parallel.pipeline->LeafSet().size());

  // Crawler: identical CRL snapshots, revocation DB, and counters — the
  // doubles must match exactly (the merge order is fixed), hence EXPECT_EQ
  // rather than a tolerance.
  EXPECT_GT(serial.crawler->total_revocations(), 0u);
  EXPECT_EQ(serial.crawler->total_revocations(),
            parallel.crawler->total_revocations());
  EXPECT_EQ(serial.crawler->bytes_downloaded(),
            parallel.crawler->bytes_downloaded());
  EXPECT_EQ(serial.crawler->seconds_spent(), parallel.crawler->seconds_spent());
  EXPECT_EQ(serial.crawler->fetch_failures(),
            parallel.crawler->fetch_failures());
  ASSERT_EQ(serial.crawler->crawled().size(),
            parallel.crawler->crawled().size());
  auto c1 = serial.crawler->crawled().begin();
  auto c8 = parallel.crawler->crawled().begin();
  for (; c1 != serial.crawler->crawled().end(); ++c1, ++c8) {
    ASSERT_EQ(c1->first, c8->first);
    EXPECT_EQ(c1->second.issuer_name_der, c8->second.issuer_name_der);
    EXPECT_EQ(c1->second.size_bytes, c8->second.size_bytes);
    EXPECT_EQ(c1->second.num_entries, c8->second.num_entries);
    EXPECT_EQ(c1->second.this_update, c8->second.this_update);
    EXPECT_EQ(c1->second.next_update, c8->second.next_update);
    EXPECT_EQ(c1->second.crl.der, c8->second.crl.der);
  }
  EXPECT_EQ(serial.crawler->ReasonCodeHistogram(),
            parallel.crawler->ReasonCodeHistogram());
}

// ------------------------------------------------------------- timeline ----

TEST(Timeline, Fig2ShapeHolds) {
  World& w = World::Get();
  const EcosystemConfig& c = w.eco->config();
  const auto points = ComputeRevocationTimeline(
      *w.pipeline, *w.crawler, util::MakeDate(2014, 1, 1), c.study_end,
      7 * kDay);
  ASSERT_GT(points.size(), 50u);

  // Pre-Heartbleed steady state: small but non-zero fresh-revoked fraction.
  const RevocationTimelinePoint& before = points[10];  // mid-March 2014
  EXPECT_LT(before.time, c.heartbleed);
  EXPECT_GT(before.FreshRevokedFraction(), 0.001);
  EXPECT_LT(before.FreshRevokedFraction(), 0.06);

  // Post-Heartbleed: the spike pushes fresh-revoked way up (paper: >8%).
  const RevocationTimelinePoint& last = points.back();
  EXPECT_GT(last.FreshRevokedFraction(), 0.05);
  EXPECT_GT(last.FreshRevokedFraction(), 2.5 * before.FreshRevokedFraction());

  // Alive-revoked is much smaller but non-zero (paper: ~0.6–1%).
  EXPECT_GT(last.AliveRevokedFraction(), 0.0005);
  EXPECT_LT(last.AliveRevokedFraction(), 0.35 * last.FreshRevokedFraction());

  // EV series exists and is the same order of magnitude.
  EXPECT_GT(last.FreshEvRevokedFraction(), 0.01);
}

TEST(Timeline, RevinfoAdoptionRisesAndJumps) {
  World& w = World::Get();
  const auto points = ComputeRevinfoAdoption(*w.pipeline);
  ASSERT_GT(points.size(), 12u);

  // CRL inclusion is uniformly near-total (Fig. 4 upper line). Small months
  // are noisy at test scale; require a reasonable sample.
  for (const AdoptionPoint& point : points) {
    if (point.issued < 60) continue;
    EXPECT_GT(point.CrlFraction(), 0.96) << util::FormatDate(point.month_start);
  }

  // OCSP inclusion: lower before RapidSSL's July 2012 adoption, near-total
  // after (Fig. 4 lower line's spike).
  double before = 0, after = 0;
  std::size_t before_n = 0, after_n = 0;
  for (const AdoptionPoint& point : points) {
    if (point.issued < 20) continue;
    if (point.month_start < util::MakeDate(2012, 7, 1)) {
      before += point.OcspFraction();
      ++before_n;
    } else if (point.month_start >= util::MakeDate(2013, 1, 1)) {
      after += point.OcspFraction();
      ++after_n;
    }
  }
  ASSERT_GT(before_n, 0u);
  ASSERT_GT(after_n, 0u);
  EXPECT_LT(before / static_cast<double>(before_n),
            after / static_cast<double>(after_n) - 0.05);
  EXPECT_GT(after / static_cast<double>(after_n), 0.95);
}

// --------------------------------------------------------------- audits ----

TEST(StaplingAudit, LowAdoptionAndAnyVsAll) {
  World& w = World::Get();
  const EcosystemConfig& c = w.eco->config();
  const scan::HandshakeScanSnapshot snap =
      scan::RunHandshakeScan(w.eco->internet(), c.study_end - kDay);
  const StaplingStats stats = ComputeStaplingStats(snap);

  ASSERT_GT(stats.servers_total, 100u);
  // §4.3 shape: low single-digit percent of servers staple.
  EXPECT_GT(stats.ServerFraction(), 0.002);
  EXPECT_LT(stats.ServerFraction(), 0.12);
  // any-server-staples >= all-servers-staple.
  EXPECT_GE(stats.certs_any_staple, stats.certs_all_staple);
  EXPECT_GT(stats.certs_any_staple, 0u);
}

TEST(StaplingAudit, RepeatCurveRises) {
  World& w = World::Get();
  const EcosystemConfig& c = w.eco->config();
  const std::vector<double> curve = StaplingRepeatCurve(
      w.eco->internet(), c.study_end - kDay, 10, 20'000, 99);
  ASSERT_EQ(curve.size(), 10u);
  // Monotone non-decreasing, ends at 1, starts noticeably below 1
  // (the Fig. 3 single-connection underestimate).
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i], curve[i - 1]);
  EXPECT_DOUBLE_EQ(curve.back(), 1.0);
  EXPECT_LT(curve.front(), 0.98);
  EXPECT_GT(curve.front(), 0.4);
}

TEST(CaAudit, CrlSizesAndTable1) {
  World& w = World::Get();
  const auto samples = CollectCrlSizes(*w.crawler, *w.pipeline, *w.eco);
  ASSERT_GT(samples.size(), 100u);

  // Fig. 5: strong size/entries linearity.
  std::vector<double> xs, ys;
  for (const CrlSizeSample& sample : samples) {
    if (sample.entries == 0) continue;
    xs.push_back(static_cast<double>(sample.entries));
    ys.push_back(static_cast<double>(sample.bytes));
  }
  const util::LinearFit fit = util::FitLine(xs, ys);
  EXPECT_GT(fit.r, 0.98);
  EXPECT_GT(fit.slope, 20);
  EXPECT_LT(fit.slope, 80);

  // Fig. 6: weighted median well above raw median.
  const CrlSizeDistributions dist = BuildCrlSizeDistributions(samples);
  EXPECT_GT(dist.weighted.Median(), dist.raw.Median());

  // Table 1: the big CAs appear with shard counts matching their specs.
  const auto rows = ComputeTable1(samples, *w.pipeline, *w.crawler, *w.eco);
  ASSERT_GE(rows.size(), 9u);
  bool found_godaddy = false;
  for (const CaStatsRow& row : rows) {
    if (row.name != "GoDaddy") continue;
    found_godaddy = true;
    // Like the paper's crawler, CRL URLs are learned from certificates, and
    // shard counts scale with the population; GoDaddy still runs by far the
    // most CRLs.
    EXPECT_GT(row.num_crls, 10u);
    EXPECT_LE(row.num_crls, 322u);
    EXPECT_GT(row.total_certs, 500u);
    EXPECT_GT(row.revoked_certs, 50u);
    EXPECT_GT(row.avg_crl_size_kb, 0.5);
  }
  EXPECT_TRUE(found_godaddy);
  // Sorted by cert count: GoDaddy first among named CAs.
  EXPECT_EQ(rows[0].name, "GoDaddy");
}

TEST(CrlsetAudit, CoverageIsTiny) {
  World& w = World::Get();
  const EcosystemConfig& c = w.eco->config();
  CrlsetAuditor auditor(w.eco.get(), crlset::GeneratorConfig{
                                         .max_bytes = 250 * 1024,
                                         .max_entries_per_crl = 60,
                                         .filter_reason_codes = true});
  // A short window is enough to reach steady state.
  auditor.RunDaily(c.crawl_start, c.crawl_start + 20 * kDay);
  ASSERT_EQ(auditor.days().size(), 21u);
  EXPECT_GT(auditor.latest().NumEntries(), 0u);

  const auto stats =
      auditor.ComputeCoverage(c.crawl_start + 20 * kDay, *w.pipeline, *w.crawler);
  EXPECT_GT(stats.total_revocations, 1'000u);
  // §7.2 shape: a tiny fraction of revocations is covered.
  const double coverage = static_cast<double>(stats.crlset_entries) /
                          static_cast<double>(stats.total_revocations);
  EXPECT_LT(coverage, 0.05);
  EXPECT_GT(coverage, 0.0);
  EXPECT_LT(stats.covered_parents, stats.total_parents / 2);
  EXPECT_LT(stats.covered_crls, stats.total_crls);
}

TEST(CrlsetAudit, DynamicsAndWindows) {
  World& w = World::Get();
  const EcosystemConfig& c = w.eco->config();
  CrlsetAuditor auditor(w.eco.get(), crlset::GeneratorConfig{
                                         .max_bytes = 250 * 1024,
                                         .max_entries_per_crl = 60,
                                         .filter_reason_codes = true});
  CrlsetAuditor::Options options;
  options.outage_start = c.crawl_start + 30 * kDay;
  options.outage_end = c.crawl_start + 44 * kDay;
  auditor.RunDaily(c.crawl_start, c.crawl_start + 60 * kDay, options);

  // During the outage no CRLSet additions happen (Fig. 9's gap).
  for (const CrlsetAuditor::DayRecord& day : auditor.days()) {
    if (day.day >= *options.outage_start && day.day < *options.outage_end) {
      EXPECT_EQ(day.crlset_new_entries, 0u) << util::FormatDate(day.day);
    }
  }

  // Days-to-appear: revocations appear in the CRLSet within ~a day of the
  // CRL (Fig. 10), except those backed up behind the outage.
  const util::Distribution appear = auditor.DaysToAppear();
  ASSERT_GT(appear.Count(), 10u);
  EXPECT_LE(appear.Median(), 2.0);
}

TEST(CrlsetAudit, ParentRemovalCreatesVulnerabilityWindows) {
  World& w = World::Get();
  const EcosystemConfig& c = w.eco->config();
  CrlsetAuditor auditor(w.eco.get(), crlset::GeneratorConfig{
                                         .max_bytes = 250 * 1024,
                                         .max_entries_per_crl = 60,
                                         .filter_reason_codes = true});
  CrlsetAuditor::Options options;
  options.parent_removal_date = c.crawl_start + 10 * kDay;
  options.parent_removal_ca = "RapidSSL";
  auditor.RunDaily(c.crawl_start, c.crawl_start + 20 * kDay, options);

  // Entries removed long before their certificates expire (Fig. 10's
  // second curve).
  const util::Distribution windows = auditor.RemovalToExpiryDays();
  EXPECT_GT(windows.Count(), 0u);
  EXPECT_GT(windows.Median(), 30.0);

  // Restore for other tests sharing the World.
  w.eco->SetGoogleCrawled("RapidSSL", true);
}

// --------------------------------------------------------------- report ----

TEST(Report, TextTableAligns) {
  TextTable table({"CA", "CRLs", "Certs"});
  table.AddRow({"GoDaddy", "322", "1050014"});
  table.AddRow({"RapidSSL", "5", "626774"});
  const std::string rendered = table.Render();
  EXPECT_NE(rendered.find("GoDaddy"), std::string::npos);
  EXPECT_NE(rendered.find("---"), std::string::npos);
}

TEST(Report, SeriesRendering) {
  Series s1{"all", {{1, 0.01}, {2, 0.02}}};
  Series s2{"ev", {{1, 0.005}, {2, 0.015}}};
  const std::string rendered = RenderSeries("week", {s1, s2});
  EXPECT_NE(rendered.find("all"), std::string::npos);
  EXPECT_NE(rendered.find("0.020000"), std::string::npos);
}

TEST(Report, SeriesDownsampling) {
  Series s{"x", {}};
  for (int i = 0; i < 1000; ++i) s.points.emplace_back(i, i);
  const std::string rendered = RenderSeries("t", {s}, 10);
  // Roughly 10 data rows plus header/divider.
  EXPECT_LT(std::count(rendered.begin(), rendered.end(), '\n'), 16);
}

}  // namespace
}  // namespace rev::core
