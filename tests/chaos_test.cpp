// Chaos suite: deterministic fault-injection storms over the fetch stack
// (docs/fault-injection.md).
//
// The contract under test: a seeded net::FaultPlan makes the simulated
// network misbehave — intermittent timeouts, 5xx bursts, flapping hosts,
// truncated and bit-corrupted bodies, latency inflation, hard outages —
// while the retry/degradation layer (net::FetchWithRetry, the crawler's
// stale-snapshot fallback) rides the storm out, and the whole run stays
// bit-reproducible: same seed ⇒ identical revocation database, staleness
// series, and counters at every thread count. scripts/ci.sh runs this
// suite under ThreadSanitizer (storms exercise the thread pool and the
// shared caches concurrently); scripts/tier1.sh runs the fixed-seed storm
// as a smoke with REV_CHAOS_SEED.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "ca/ca.h"
#include "core/crawler.h"
#include "core/ecosystem.h"
#include "core/pipeline.h"
#include "net/cache.h"
#include "net/fault.h"
#include "net/retry.h"
#include "ocsp/ocsp.h"
#include "ocsp/responder.h"
#include "scan/scanner.h"
#include "serve/frontend.h"
#include "util/rng.h"

namespace rev {
namespace {

constexpr std::int64_t kDay = util::kSecondsPerDay;
constexpr util::Timestamp kNow = 1'420'000'000;

// Storm seed, overridable so scripts/tier1.sh can pin a known seed for its
// smoke run (and anyone can replay a failing storm by exporting it).
std::uint64_t StormSeed() {
  if (const char* env = std::getenv("REV_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 0);
  return 0xC0FFEE;
}

// The mixed storm used by the determinism and soak tests: every §3.2/§5
// unavailability flavor at once, plus a one-day hard outage pinned to the
// fourth crawl so the stale-serve path is guaranteed to fire.
void AddStormRules(net::FaultPlan& plan, util::Timestamp crawl_start) {
  net::FaultRule timeouts;
  timeouts.kind = net::FaultKind::kTimeout;
  timeouts.probability = 0.12;
  plan.AddRule(timeouts);

  net::FaultRule burst;
  burst.kind = net::FaultKind::kHttpError;
  burst.http_status = 503;
  burst.retry_after = 45;
  burst.probability = 0.10;
  plan.AddRule(burst);

  net::FaultRule corrupt;
  corrupt.kind = net::FaultKind::kCorrupt;
  corrupt.probability = 0.06;
  corrupt.corrupt_bytes = 3;
  plan.AddRule(corrupt);

  net::FaultRule truncate;
  truncate.kind = net::FaultKind::kTruncate;
  truncate.probability = 0.05;
  truncate.keep_fraction = 0.4;
  plan.AddRule(truncate);

  net::FaultRule latency;
  latency.kind = net::FaultKind::kLatency;
  latency.probability = 0.10;
  latency.latency_factor = 4.0;
  plan.AddRule(latency);

  // Period deliberately co-prime with the 7-day crawl cadence so the wave
  // phase differs crawl to crawl.
  net::FaultRule flap;
  flap.kind = net::FaultKind::kFlap;
  flap.up_seconds = static_cast<std::int64_t>(2.6 * kDay);
  flap.down_seconds = static_cast<std::int64_t>(1.7 * kDay);
  flap.probability = 0.8;
  plan.AddRule(flap);

  net::FaultRule outage;
  outage.kind = net::FaultKind::kOutage;
  outage.start = crawl_start + 3 * 7 * kDay - kDay / 2;
  outage.end = outage.start + kDay;
  plan.AddRule(outage);
}

// ------------------------------------------------- storm determinism ----

// The acceptance bar: a fixed-seed chaos storm over the full crawler is
// bit-reproducible — two runs, and threads=1 vs threads=8, produce
// identical revocation databases, stale-serve series, retry counters, and
// per-kind fault tallies.
TEST(ChaosStorm, DeterministicAcrossThreadCountsAndRuns) {
  struct Run {
    std::unique_ptr<core::Ecosystem> eco;
    std::unique_ptr<core::Pipeline> pipeline;
    std::unique_ptr<core::RevocationCrawler> crawler;
    std::unique_ptr<net::FaultPlan> plan;
  };
  auto build = [](unsigned threads) {
    Run run;
    core::EcosystemConfig config;
    config.scale = 0.001;
    config.seed = 11;
    run.eco = core::Ecosystem::Build(config);
    const core::EcosystemConfig& c = run.eco->config();
    run.pipeline = std::make_unique<core::Pipeline>(run.eco->roots(), threads);
    for (util::Timestamp t = c.study_start; t <= c.study_end; t += 14 * kDay)
      run.pipeline->IngestScan(scan::RunCertScan(run.eco->internet(), t));
    run.pipeline->Finalize();

    run.plan = std::make_unique<net::FaultPlan>(StormSeed());
    AddStormRules(*run.plan, c.crawl_start);
    run.eco->net().SetFaultPlan(run.plan.get());

    run.crawler =
        std::make_unique<core::RevocationCrawler>(&run.eco->net(), threads);
    run.crawler->CollectUrls(*run.pipeline);
    for (util::Timestamp t = c.crawl_start; t <= c.study_end; t += 7 * kDay)
      run.crawler->CrawlAll(t);
    run.eco->net().SetFaultPlan(nullptr);
    return run;
  };

  const Run serial = build(1);
  const Run parallel = build(8);
  const Run replay = build(8);

  // The storm actually stormed, and the resilience layer actually worked.
  EXPECT_GT(serial.plan->total_injected(), 0u);
  EXPECT_GT(serial.crawler->retries(), 0u);
  EXPECT_GT(serial.crawler->stale_served(), 0u);
  EXPECT_GT(serial.crawler->fetch_failures(), 0u);
  EXPECT_GT(serial.crawler->total_revocations(), 0u);

  auto expect_identical = [](const Run& a, const Run& b) {
    // Fault tallies, per kind.
    for (std::size_t k = 0; k < net::kNumFaultKinds; ++k)
      EXPECT_EQ(a.plan->injected(static_cast<net::FaultKind>(k)),
                b.plan->injected(static_cast<net::FaultKind>(k)))
          << net::FaultKindName(static_cast<net::FaultKind>(k));

    // Cost, failure, retry, and staleness counters — exact, doubles
    // included (the merge order is fixed).
    EXPECT_EQ(a.crawler->bytes_downloaded(), b.crawler->bytes_downloaded());
    EXPECT_EQ(a.crawler->seconds_spent(), b.crawler->seconds_spent());
    EXPECT_EQ(a.crawler->fetch_failures(), b.crawler->fetch_failures());
    EXPECT_EQ(a.crawler->retries(), b.crawler->retries());
    EXPECT_EQ(a.crawler->stale_served(), b.crawler->stale_served());
    EXPECT_EQ(a.crawler->url_failures(), b.crawler->url_failures());

    // The crawled-CRL snapshots, staleness series included.
    ASSERT_EQ(a.crawler->crawled().size(), b.crawler->crawled().size());
    auto ia = a.crawler->crawled().begin();
    auto ib = b.crawler->crawled().begin();
    for (; ia != a.crawler->crawled().end(); ++ia, ++ib) {
      ASSERT_EQ(ia->first, ib->first);
      EXPECT_EQ(ia->second.crl.der, ib->second.crl.der);
      EXPECT_EQ(ia->second.num_entries, ib->second.num_entries);
      EXPECT_EQ(ia->second.stale, ib->second.stale);
      EXPECT_EQ(ia->second.stale_crawls, ib->second.stale_crawls);
      EXPECT_EQ(ia->second.last_good_fetch, ib->second.last_good_fetch);
      EXPECT_EQ(ia->second.stale_age_seconds, ib->second.stale_age_seconds);
    }

    // The revocation database, byte for byte.
    ASSERT_EQ(a.crawler->revocations().size(), b.crawler->revocations().size());
    auto ra = a.crawler->revocations().begin();
    auto rb = b.crawler->revocations().begin();
    for (; ra != a.crawler->revocations().end(); ++ra, ++rb) {
      ASSERT_EQ(ra->first, rb->first);
      EXPECT_EQ(ra->second.revoked_at, rb->second.revoked_at);
      EXPECT_EQ(ra->second.reason, rb->second.reason);
      EXPECT_EQ(ra->second.first_seen_in_crl, rb->second.first_seen_in_crl);
    }
  };

  expect_identical(serial, parallel);  // threads=1 vs threads=8
  expect_identical(parallel, replay);  // same seed, run twice
}

// ---------------------------------------------------- flapping recovery ----

TEST(ChaosRetry, FlappingHostRecoversThroughBackoff) {
  net::SimNet net;
  net.AddHost("flap.sim", [](const net::HttpRequest&, util::Timestamp) {
    net::HttpResponse response;
    response.body = ToBytes("alive");
    return response;
  });
  net::FaultPlan plan(7);
  net::FaultRule flap;
  flap.kind = net::FaultKind::kFlap;
  flap.up_seconds = 60;
  flap.down_seconds = 60;
  plan.AddRule(flap);
  net.SetFaultPlan(&plan);

  // t=90 sits in the down half-wave [60, 120).
  EXPECT_FALSE(net.Get("http://flap.sim/x", 90).ok());

  net::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_seconds = 20;
  policy.backoff_multiplier = 2;
  policy.jitter = 0;  // exact schedule: attempts at t=90, 110, 150
  const net::RetryResult result =
      net::GetWithRetry(net, "http://flap.sim/x", 90, policy);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.attempts, 3);
  EXPECT_FALSE(result.gave_up);
  ASSERT_EQ(result.schedule.size(), 3u);
  EXPECT_EQ(result.schedule[0].error, net::FetchError::kConnectionRefused);
  EXPECT_EQ(result.schedule[1].error, net::FetchError::kConnectionRefused);
  EXPECT_EQ(result.schedule[2].error, net::FetchError::kOk);
  // Recovery happened after the wave came back up at t=120.
  EXPECT_GE(result.schedule[2].at, 120);
  EXPECT_EQ(ToString(result.fetch.response.body), "alive");
}

// ------------------------------------------- corrupt body -> retry -> ok ----

TEST(ChaosRetry, CorruptedBodyRejectedRetriedAndNeverCached) {
  net::SimNet net;
  net.AddHost("c.sim", [](const net::HttpRequest&, util::Timestamp) {
    net::HttpResponse response;
    response.body = ToBytes("GOODBODY");
    response.max_age = 3600;
    return response;
  });
  net::FaultPlan plan(StormSeed());
  net::FaultRule corrupt;
  corrupt.kind = net::FaultKind::kCorrupt;
  corrupt.corrupt_bytes = 1;
  corrupt.start = 1000;  // only the first attempt falls in the window
  corrupt.end = 1001;
  plan.AddRule(corrupt);
  net.SetFaultPlan(&plan);

  net::CachingClient client(&net);
  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 5;
  policy.jitter = 0;
  const auto validate = [](const net::HttpResponse& response) {
    return ToString(response.body) == "GOODBODY";
  };

  const auto result = client.Get("http://c.sim/x", 1000, policy, validate);
  EXPECT_TRUE(result.fetch.ok());
  EXPECT_EQ(result.attempts, 2);  // corrupt at t=1000, clean at t=1005
  EXPECT_EQ(ToString(result.fetch.response.body), "GOODBODY");
  EXPECT_EQ(client.misses(), 1u);  // one logical fetch = one miss
  EXPECT_EQ(client.hits(), 0u);
  EXPECT_EQ(plan.injected(net::FaultKind::kCorrupt), 1u);

  // Only the clean body made it into the cache.
  const auto again = client.Get("http://c.sim/x", 1010, policy, validate);
  EXPECT_TRUE(again.from_cache);
  EXPECT_EQ(ToString(again.fetch.response.body), "GOODBODY");
  EXPECT_EQ(client.hits(), 1u);
  EXPECT_EQ(client.misses(), 1u);
}

// ---------------------------------------------- crawler stale fallback ----

TEST(ChaosCrawler, StaleSnapshotServesThroughOutage) {
  util::Rng rng(42);
  ca::CertificateAuthority::Options options;
  options.name = "Stale";
  options.domain = "stale.sim";
  auto root = ca::CertificateAuthority::CreateRoot(options, rng, kNow - 400 * kDay);
  net::SimNet net;
  root->RegisterEndpoints(&net);

  ca::CertificateAuthority::IssueOptions issue;
  issue.common_name = "victim.sim";
  issue.not_before = kNow - 30 * kDay;
  const x509::CertPtr leaf = root->Issue(issue, rng);
  ASSERT_TRUE(root->Revoke(leaf->tbs.serial, kNow - 5 * kDay,
                           x509::ReasonCode::kKeyCompromise));

  core::RevocationCrawler crawler(&net, 1);
  const std::string url = root->CrlUrl(root->ShardForSerial(leaf->tbs.serial));
  crawler.AddUrl(url);

  // Day 0: a clean crawl captures the revocation.
  EXPECT_GE(crawler.CrawlAll(kNow), 1u);
  ASSERT_TRUE(crawler.crawled().contains(url));
  EXPECT_FALSE(crawler.crawled().at(url).stale);
  EXPECT_EQ(crawler.crawled().at(url).last_good_fetch, kNow);
  ASSERT_NE(crawler.Lookup(root->cert()->tbs.subject, leaf->tbs.serial),
            nullptr);

  // Day 1: hard outage. Retries exhaust, but the day-0 snapshot keeps
  // serving — marked stale, with honest age accounting — and the
  // revocation does not vanish.
  net::FaultPlan plan(3);
  net::FaultRule outage;
  outage.kind = net::FaultKind::kOutage;
  outage.start = kNow + kDay - 3600;
  outage.end = kNow + kDay + 3600;
  plan.AddRule(outage);
  net.SetFaultPlan(&plan);

  EXPECT_EQ(crawler.CrawlAll(kNow + kDay), 0u);
  const core::CrawledCrl& crawled = crawler.crawled().at(url);
  EXPECT_TRUE(crawled.stale);
  EXPECT_EQ(crawled.stale_crawls, 1u);
  EXPECT_EQ(crawled.stale_age_seconds, kDay);
  EXPECT_EQ(crawled.last_good_fetch, kNow);
  EXPECT_EQ(crawler.stale_served(), 1u);
  EXPECT_EQ(crawler.fetch_failures(), 1u);
  EXPECT_EQ(crawler.url_failures().at(url), 1u);
  EXPECT_GT(crawler.retries(), 0u);  // it did try before degrading
  const core::RevocationInfo* info =
      crawler.Lookup(root->cert()->tbs.subject, leaf->tbs.serial);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->revoked_at, kNow - 5 * kDay);

  // Day 2: the endpoint recovers; staleness clears.
  net.SetFaultPlan(nullptr);
  crawler.CrawlAll(kNow + 2 * kDay);
  EXPECT_FALSE(crawler.crawled().at(url).stale);
  EXPECT_EQ(crawler.crawled().at(url).stale_age_seconds, 0);
  EXPECT_EQ(crawler.crawled().at(url).last_good_fetch, kNow + 2 * kDay);
  EXPECT_EQ(crawler.crawled().at(url).stale_crawls, 1u);  // lifetime tally
}

// ----------------------------------------------------------- soak loop ----

// Bounded soak: a month of simulated daily crawls under the mixed storm,
// with one fresh revocation per day. The invariant mirrors serve_test's
// shed-never-wrong-status: no matter what the storm does, the crawler's
// database never reports a status that disagrees with CA ground truth,
// and never loses an entry it once learned.
TEST(ChaosSoak, StatusNeverFlipsToAWrongValueUnderStorm) {
  constexpr int kDays = 30;
  util::Rng rng(1234);
  ca::CertificateAuthority::Options options;
  options.name = "Soak";
  options.domain = "soak.sim";
  auto root = ca::CertificateAuthority::CreateRoot(options, rng, kNow - 400 * kDay);
  net::SimNet net;
  root->RegisterEndpoints(&net);

  std::vector<x509::CertPtr> leaves;
  for (int i = 0; i < kDays; ++i) {
    ca::CertificateAuthority::IssueOptions issue;
    issue.common_name = "soak" + std::to_string(i) + ".sim";
    issue.not_before = kNow - 30 * kDay;
    leaves.push_back(root->Issue(issue, rng));
  }

  net::FaultPlan plan(StormSeed() ^ 0x50AB);
  AddStormRules(plan, kNow);
  net.SetFaultPlan(&plan);

  core::RevocationCrawler crawler(&net, 1);
  for (int shard = 0; shard < 1; ++shard) crawler.AddUrl(root->CrlUrl(shard));

  std::map<x509::Serial, util::Timestamp> truth;       // our Revoke() calls
  std::map<x509::Serial, util::Timestamp> ever_seen;   // crawler's reports
  for (int day = 0; day < kDays; ++day) {
    const util::Timestamp today = kNow + day * kDay;
    const x509::Serial& serial = leaves[static_cast<std::size_t>(day)]->tbs.serial;
    ASSERT_TRUE(root->Revoke(serial, today, x509::ReasonCode::kSuperseded));
    truth[serial] = today;

    crawler.CrawlAll(today + 3600);

    // Every database entry agrees with ground truth...
    for (const auto& [key, info] : crawler.revocations()) {
      const auto it = truth.find(key.second);
      ASSERT_NE(it, truth.end()) << "crawler invented a revocation";
      EXPECT_EQ(info.revoked_at, it->second) << "revocation time flipped";
    }
    // ...and nothing once learned is ever lost or changed.
    for (const auto& [serial_seen, when] : ever_seen) {
      const core::RevocationInfo* info =
          crawler.Lookup(root->cert()->tbs.subject, serial_seen);
      ASSERT_NE(info, nullptr) << "entry vanished mid-storm";
      EXPECT_EQ(info->revoked_at, when);
    }
    for (const auto& [key, info] : crawler.revocations())
      ever_seen.emplace(key.second, info.revoked_at);
  }

  // Calm after the storm: one clean crawl catches the database up to the
  // full ground truth and clears every stale flag.
  net.SetFaultPlan(nullptr);
  crawler.CrawlAll(kNow + kDays * kDay);
  EXPECT_EQ(crawler.total_revocations(), truth.size());
  for (const auto& [url, crawled] : crawler.crawled())
    EXPECT_FALSE(crawled.stale) << url;
}

// ------------------------------------------ serve shedding, client side ----

// The client side of the serve frontend's load shedding: a 503 with
// Retry-After must push the next attempt past the hint, and the retry then
// succeeds once capacity frees up — the stack rides out overload without
// the caller doing anything.
TEST(ChaosServe, RetryAfterRidesOutShedding) {
  const x509::Certificate issuer = [] {
    x509::TbsCertificate tbs;
    tbs.serial = x509::Serial{0x21};
    tbs.issuer = tbs.subject = x509::Name::Make("Chaos Serve CA", "Test");
    tbs.not_before = 0;
    tbs.not_after = kNow + 100 * kDay;
    tbs.public_key = crypto::SimKeyFromLabel("chaos-serve").Public();
    tbs.basic_constraints = {true, -1};
    return x509::SignCertificate(tbs, crypto::SimKeyFromLabel("chaos-serve"));
  }();
  ocsp::Responder responder(issuer, crypto::SimKeyFromLabel("chaos-serve"));
  responder.AddCertificate(x509::Serial{0x01});

  serve::FrontendOptions options;
  options.num_shards = 1;
  options.per_shard_queue = 1;
  options.retry_after_seconds = 7;
  serve::Frontend frontend(options);
  frontend.AttachResponder(&responder);

  net::SimNet net;
  int calls = 0;
  net.AddHost("shed.sim", [&](const net::HttpRequest& request,
                              util::Timestamp now) {
    const net::HttpResponse response = frontend.HandleHttp(request, now);
    // Capacity frees up after the first (shed) exchange.
    if (++calls == 1) frontend.ExitShard(0);
    return response;
  });
  ASSERT_TRUE(frontend.TryEnterShard(0));  // saturate the only slot

  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(issuer, x509::Serial{0x01})};
  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 1;  // Retry-After (7s) must win
  policy.jitter = 0;
  const net::RetryResult result = net::PostWithRetry(
      net, "http://shed.sim/", ocsp::EncodeOcspRequest(request), kNow, policy);

  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.attempts, 2);
  ASSERT_EQ(result.schedule.size(), 2u);
  EXPECT_EQ(result.schedule[0].http_status, 503);
  EXPECT_EQ(result.schedule[0].retry_after, 7);
  // Retry-After is a lower bound on the wait, not a suggestion.
  EXPECT_GE(result.schedule[1].wait_before, 7.0);
  EXPECT_GE(result.schedule[1].at - result.schedule[0].at, 7);
  auto parsed = ocsp::ParseOcspResponse(*&result.fetch.response.body);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, ocsp::ResponseStatus::kSuccessful);
  EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kGood);
  EXPECT_EQ(frontend.counters().shed, 1u);
}

// --------------------------------------------- rule interaction order ----

// Three rules on the SAME url in the SAME window: outage + corruption +
// latency. The precedence contract (docs/fault-injection.md):
//   1. Pre-exchange kinds (timeout/outage/flap) are checked first, in
//      registration order; the FIRST one that fires consumes the exchange
//      — the handler never runs and no post-exchange rule applies.
//   2. If no pre-exchange rule fires, EVERY firing post-exchange rule
//      (http-error/truncate/corrupt/latency) applies, in registration
//      order.
// Registration order is deliberately corrupt -> latency -> outage here:
// precedence comes from the kind, not from AddRule order.
TEST(ChaosPrecedence, OutageCorruptLatencySameUrlSameWindow) {
  const auto make_plan = [](net::FaultPlan& plan) {
    net::FaultRule corrupt;
    corrupt.target = "triple.sim";
    corrupt.kind = net::FaultKind::kCorrupt;
    corrupt.corrupt_bytes = 4;
    corrupt.start = kNow;
    corrupt.end = kNow + 300;
    plan.AddRule(corrupt);
    net::FaultRule slow;
    slow.target = "triple.sim";
    slow.kind = net::FaultKind::kLatency;
    slow.latency_factor = 20.0;
    slow.start = kNow;
    slow.end = kNow + 300;
    plan.AddRule(slow);
    net::FaultRule outage;
    outage.target = "triple.sim";
    outage.kind = net::FaultKind::kOutage;
    outage.start = kNow;
    outage.end = kNow + 100;  // lifts before the other two
    plan.AddRule(outage);
  };
  const auto make_net = [](net::SimNet& net) {
    net.AddHost("triple.sim", [](const net::HttpRequest&, util::Timestamp) {
      net::HttpResponse response;
      response.body.assign(64, 0xAB);
      return response;
    });
  };

  // Clean baseline for body and elapsed.
  net::SimNet clean;
  make_net(clean);
  const auto baseline = clean.Get("http://triple.sim/x", kNow);
  ASSERT_TRUE(baseline.ok());

  net::SimNet net;
  make_net(net);
  net::FaultPlan plan(StormSeed());
  make_plan(plan);
  net.SetFaultPlan(&plan);

  // Inside the overlap, the outage wins although it was registered LAST:
  // connection refused, fast, and neither corruption nor latency is even
  // tallied — the exchange they would act on never happened.
  const auto refused = net.Get("http://triple.sim/x", kNow + 50);
  EXPECT_EQ(refused.error, net::FetchError::kConnectionRefused);
  EXPECT_LT(refused.elapsed_seconds, baseline.elapsed_seconds);
  EXPECT_EQ(plan.injected(net::FaultKind::kOutage), 1u);
  EXPECT_EQ(plan.injected(net::FaultKind::kCorrupt), 0u);
  EXPECT_EQ(plan.injected(net::FaultKind::kLatency), 0u);

  // After the outage lifts, BOTH survivors apply to the one exchange:
  // the body is corrupted and the elapsed time is inflated 20x.
  const auto mangled = net.Get("http://triple.sim/x", kNow + 150);
  ASSERT_EQ(mangled.error, net::FetchError::kOk);
  EXPECT_NE(mangled.response.body, baseline.response.body);
  EXPECT_EQ(mangled.response.body.size(), baseline.response.body.size());
  EXPECT_DOUBLE_EQ(mangled.elapsed_seconds,
                   baseline.elapsed_seconds * 20.0);
  EXPECT_EQ(plan.injected(net::FaultKind::kCorrupt), 1u);
  EXPECT_EQ(plan.injected(net::FaultKind::kLatency), 1u);

  // Bit-identity of the interaction: the same (url, timestamp) grid of
  // exchanges produces identical outcomes and tallies at 1 and 8 threads.
  const auto sweep = [&](unsigned threads) {
    net::SimNet storm_net;
    make_net(storm_net);
    auto storm = std::make_unique<net::FaultPlan>(StormSeed());
    make_plan(*storm);
    storm_net.SetFaultPlan(storm.get());
    constexpr int kProbes = 64;
    std::vector<std::uint8_t> outcomes(kProbes);
    std::vector<double> elapsed(kProbes);
    auto probe = [&](int p) {
      const auto result =
          storm_net.Get("http://triple.sim/x", kNow + 5 * p);
      outcomes[static_cast<std::size_t>(p)] =
          result.error == net::FetchError::kConnectionRefused
              ? 0xEE
              : result.response.body[0];
      elapsed[static_cast<std::size_t>(p)] = result.elapsed_seconds;
    };
    if (threads <= 1) {
      for (int p = 0; p < kProbes; ++p) probe(p);
    } else {
      std::vector<std::thread> workers;
      for (unsigned t = 0; t < threads; ++t)
        workers.emplace_back([&, t] {
          for (int p = static_cast<int>(t); p < kProbes;
               p += static_cast<int>(threads))
            probe(p);
        });
      for (auto& worker : workers) worker.join();
    }
    struct Tally {
      std::vector<std::uint8_t> outcomes;
      std::vector<double> elapsed;
      std::uint64_t outages, corrupts, latencies;
    };
    return Tally{outcomes, elapsed,
                 storm->injected(net::FaultKind::kOutage),
                 storm->injected(net::FaultKind::kCorrupt),
                 storm->injected(net::FaultKind::kLatency)};
  };
  const auto serial_sweep = sweep(1);
  const auto threaded_sweep = sweep(8);
  EXPECT_EQ(serial_sweep.outcomes, threaded_sweep.outcomes);
  EXPECT_EQ(serial_sweep.elapsed, threaded_sweep.elapsed);
  EXPECT_EQ(serial_sweep.outages, threaded_sweep.outages);
  EXPECT_EQ(serial_sweep.corrupts, threaded_sweep.corrupts);
  EXPECT_EQ(serial_sweep.latencies, threaded_sweep.latencies);
}

}  // namespace
}  // namespace rev
