// DER encode/decode tests: known encodings, round-trip properties, and
// strictness (rejection of non-minimal/truncated forms).
#include <gtest/gtest.h>

#include "asn1/oid.h"
#include "asn1/reader.h"
#include "asn1/writer.h"
#include "util/hex.h"
#include "util/rng.h"

namespace rev::asn1 {
namespace {

using util::HexEncode;

// ------------------------------------------------------------- writer ----

TEST(Writer, KnownIntegerEncodings) {
  EXPECT_EQ(HexEncode(EncodeInteger(0)), "020100");
  EXPECT_EQ(HexEncode(EncodeInteger(1)), "020101");
  EXPECT_EQ(HexEncode(EncodeInteger(127)), "02017f");
  EXPECT_EQ(HexEncode(EncodeInteger(128)), "02020080");
  EXPECT_EQ(HexEncode(EncodeInteger(256)), "02020100");
  EXPECT_EQ(HexEncode(EncodeInteger(-1)), "0201ff");
  EXPECT_EQ(HexEncode(EncodeInteger(-128)), "020180");
  EXPECT_EQ(HexEncode(EncodeInteger(-129)), "0202ff7f");
}

TEST(Writer, KnownBoolean) {
  EXPECT_EQ(HexEncode(EncodeBoolean(true)), "0101ff");
  EXPECT_EQ(HexEncode(EncodeBoolean(false)), "010100");
}

TEST(Writer, KnownNull) { EXPECT_EQ(HexEncode(EncodeNull()), "0500"); }

TEST(Writer, KnownOid) {
  // sha256WithRSAEncryption = 1.2.840.113549.1.1.11
  EXPECT_EQ(HexEncode(EncodeOid(oids::Sha256WithRsa())),
            "06092a864886f70d01010b");
}

TEST(Writer, LongFormLength) {
  const Bytes content(200, 0xAB);
  const Bytes tlv = EncodeOctetString(content);
  EXPECT_EQ(tlv[0], 0x04);
  EXPECT_EQ(tlv[1], 0x81);  // long form, 1 length byte
  EXPECT_EQ(tlv[2], 200);
  EXPECT_EQ(tlv.size(), 203u);

  const Bytes big(70000, 0x00);
  const Bytes big_tlv = EncodeOctetString(big);
  EXPECT_EQ(big_tlv[1], 0x83);  // 3 length bytes
  EXPECT_EQ(HeaderSize(70000), 5u);
}

TEST(Writer, IntegerUnsignedPadding) {
  // High bit set => 0x00 prepended.
  EXPECT_EQ(HexEncode(EncodeIntegerUnsigned(Bytes{0x80})), "02020080");
  EXPECT_EQ(HexEncode(EncodeIntegerUnsigned(Bytes{0x7F})), "02017f");
  // Leading zeros stripped.
  EXPECT_EQ(HexEncode(EncodeIntegerUnsigned(Bytes{0x00, 0x00, 0x12})),
            "020112");
  // Zero encodes as one byte.
  EXPECT_EQ(HexEncode(EncodeIntegerUnsigned(Bytes{})), "020100");
  EXPECT_EQ(HexEncode(EncodeIntegerUnsigned(Bytes{0x00})), "020100");
}

TEST(Writer, TimeChoosesUtcVsGeneralized) {
  // 2014 => UTCTime (tag 0x17); 2050 => GeneralizedTime (tag 0x18).
  EXPECT_EQ(EncodeTime(util::MakeDate(2014, 4, 8))[0], 0x17);
  EXPECT_EQ(EncodeTime(util::MakeDate(2050, 1, 1))[0], 0x18);
  EXPECT_EQ(EncodeTime(util::MakeDate(1949, 12, 31))[0], 0x18);
}

TEST(Writer, ContextTags) {
  EXPECT_EQ(ContextTag(0, false), 0x80);
  EXPECT_EQ(ContextTag(0, true), 0xA0);
  EXPECT_EQ(ContextTag(3, true), 0xA3);
  EXPECT_EQ(ContextTag(6, false), 0x86);
}

// ---------------------------------------------------------------- oid ----

TEST(Oid, ParseAndToString) {
  auto oid = Oid::Parse("1.2.840.113549.1.1.11");
  ASSERT_TRUE(oid);
  EXPECT_EQ(*oid, oids::Sha256WithRsa());
  EXPECT_EQ(oid->ToString(), "1.2.840.113549.1.1.11");
}

TEST(Oid, ParseRejectsMalformed) {
  EXPECT_FALSE(Oid::Parse(""));
  EXPECT_FALSE(Oid::Parse("1"));
  EXPECT_FALSE(Oid::Parse("1..2"));
  EXPECT_FALSE(Oid::Parse("1.2."));
  EXPECT_FALSE(Oid::Parse(".1.2"));
  EXPECT_FALSE(Oid::Parse("3.1"));    // first component > 2
  EXPECT_FALSE(Oid::Parse("1.40"));   // second >= 40 under arc 1
  EXPECT_FALSE(Oid::Parse("1.2.x"));
}

TEST(Oid, ContentRoundTrip) {
  for (const char* s : {"1.2.840.113549.1.1.11", "2.5.29.31", "0.9.2342",
                        "2.16.840.1.113733.1.7.23.6", "1.3.6.1.4.1.55555.1.1",
                        "2.999.1"}) {
    auto oid = Oid::Parse(s);
    ASSERT_TRUE(oid) << s;
    auto decoded = Oid::DecodeContent(oid->EncodeContent());
    ASSERT_TRUE(decoded) << s;
    EXPECT_EQ(*decoded, *oid) << s;
  }
}

TEST(Oid, DecodeRejectsNonMinimal) {
  // 0x80 leading continuation octet is forbidden.
  EXPECT_FALSE(Oid::DecodeContent(Bytes{0x2A, 0x80, 0x01}));
  // Truncated multi-byte component.
  EXPECT_FALSE(Oid::DecodeContent(Bytes{0x2A, 0x86}));
  // Empty.
  EXPECT_FALSE(Oid::DecodeContent(Bytes{}));
}

// ------------------------------------------------------------- reader ----

TEST(Reader, ReadTaggedSequence) {
  const Bytes der = EncodeSequence({EncodeInteger(42), EncodeBoolean(true)});
  Reader r{BytesView(der)};
  Reader seq;
  ASSERT_TRUE(r.ReadSequence(&seq));
  EXPECT_TRUE(r.Empty());
  std::int64_t v;
  bool b;
  ASSERT_TRUE(seq.ReadInteger(&v));
  ASSERT_TRUE(seq.ReadBoolean(&b));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(b);
  EXPECT_TRUE(seq.Empty());
}

TEST(Reader, IntegerRoundTripProperty) {
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = static_cast<std::int64_t>(rng.Next()) >>
                           rng.NextBelow(64);
    const Bytes der = EncodeInteger(v);
    Reader r{BytesView(der)};
    std::int64_t decoded;
    ASSERT_TRUE(r.ReadInteger(&decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(Reader, IntegerUnsignedRoundTrip) {
  util::Rng rng(2);
  for (int len : {1, 2, 8, 20, 49}) {
    Bytes magnitude(static_cast<std::size_t>(len));
    rng.Fill(magnitude.data(), magnitude.size());
    if (magnitude[0] == 0) magnitude[0] = 0x7F;
    const Bytes der = EncodeIntegerUnsigned(magnitude);
    Reader r{BytesView(der)};
    Bytes decoded;
    ASSERT_TRUE(r.ReadIntegerUnsigned(&decoded));
    EXPECT_EQ(decoded, magnitude);
  }
}

TEST(Reader, RejectsNegativeForUnsigned) {
  const Bytes der = EncodeInteger(-5);
  Reader r{BytesView(der)};
  Bytes decoded;
  EXPECT_FALSE(r.ReadIntegerUnsigned(&decoded));
}

TEST(Reader, RejectsNonMinimalInteger) {
  // 0x00 0x01 is a non-minimal encoding of 1.
  const Bytes bad = {0x02, 0x02, 0x00, 0x01};
  Reader r{BytesView(bad)};
  std::int64_t v;
  EXPECT_FALSE(r.ReadInteger(&v));
  // 0xFF 0xFF is a non-minimal encoding of -1.
  const Bytes bad2 = {0x02, 0x02, 0xFF, 0xFF};
  Reader r2{BytesView(bad2)};
  EXPECT_FALSE(r2.ReadInteger(&v));
}

TEST(Reader, RejectsNonMinimalLength) {
  // Long-form length for a value that fits short form.
  const Bytes bad = {0x04, 0x81, 0x03, 0x01, 0x02, 0x03};
  Reader r{BytesView(bad)};
  BytesView content;
  EXPECT_FALSE(r.ReadOctetString(&content));
}

TEST(Reader, RejectsTruncated) {
  const Bytes der = EncodeOctetString(Bytes(100, 0x42));
  for (std::size_t cut : {1u, 2u, 50u, 101u}) {
    Reader r{BytesView(der.data(), der.size() - cut)};
    BytesView content;
    EXPECT_FALSE(r.ReadOctetString(&content)) << "cut " << cut;
  }
}

TEST(Reader, RejectsBadBooleanContent) {
  const Bytes bad = {0x01, 0x01, 0x42};  // DER requires 0x00 or 0xFF
  Reader r{BytesView(bad)};
  bool b;
  EXPECT_FALSE(r.ReadBoolean(&b));
}

TEST(Reader, BitStringUnusedBits) {
  const Bytes content = {0xAB, 0xCD};
  const Bytes der = EncodeBitString(content, 4);
  Reader r{BytesView(der)};
  BytesView decoded;
  unsigned unused = 0;
  ASSERT_TRUE(r.ReadBitString(&decoded, &unused));
  EXPECT_EQ(unused, 4u);
  EXPECT_EQ(Bytes(decoded.begin(), decoded.end()), content);
  // Unused bits > 7 rejected.
  const Bytes bad = {0x03, 0x02, 0x08, 0xFF};
  Reader r2{BytesView(bad)};
  EXPECT_FALSE(r2.ReadBitString(&decoded, &unused));
}

TEST(Reader, TimeRoundTrip) {
  for (util::Timestamp ts :
       {util::MakeDate(1970, 1, 1), util::MakeDate(2014, 4, 8) + 8000,
        util::MakeDate(2049, 12, 31), util::MakeDate(2050, 1, 1),
        util::MakeDate(2099, 6, 15) + 12345}) {
    const Bytes der = EncodeTime(ts);
    Reader r{BytesView(der)};
    util::Timestamp decoded;
    ASSERT_TRUE(r.ReadTime(&decoded)) << ts;
    EXPECT_EQ(decoded, ts);
  }
}

TEST(Reader, UtcTimeSlidingWindow) {
  // 490101000000Z -> 2049; 500101000000Z -> 1950.
  const Bytes y49 = Tlv(kTagUtcTime, ToBytes("490101000000Z"));
  const Bytes y50 = Tlv(kTagUtcTime, ToBytes("500101000000Z"));
  Reader r1{BytesView(y49)}, r2{BytesView(y50)};
  util::Timestamp t1, t2;
  ASSERT_TRUE(r1.ReadTime(&t1));
  ASSERT_TRUE(r2.ReadTime(&t2));
  EXPECT_EQ(util::ToCivil(t1).year, 2049);
  EXPECT_EQ(util::ToCivil(t2).year, 1950);
}

TEST(Reader, RejectsBadTime) {
  for (const char* bad : {"990231000000Z",  // Feb 31
                          "991301000000Z",  // month 13
                          "990101250000Z",  // hour 25
                          "990101000000",   // missing Z
                          "9901010000Z"}) { // too short
    const Bytes der = Tlv(kTagUtcTime, ToBytes(bad));
    Reader r{BytesView(der)};
    util::Timestamp ts;
    EXPECT_FALSE(r.ReadTime(&ts)) << bad;
  }
}

TEST(Reader, ContextTags) {
  const Bytes inner = EncodeInteger(7);
  const Bytes explicit_tag = EncodeContextExplicit(3, inner);
  Reader r{BytesView(explicit_tag)};
  EXPECT_TRUE(r.NextIsContext(3));
  EXPECT_FALSE(r.NextIsContext(2));
  Reader content;
  ASSERT_TRUE(r.ReadContextExplicit(3, &content));
  std::int64_t v;
  ASSERT_TRUE(content.ReadInteger(&v));
  EXPECT_EQ(v, 7);

  const Bytes primitive = EncodeContextPrimitive(6, ToBytes("http://x/"));
  Reader r2{BytesView(primitive)};
  BytesView uri;
  ASSERT_TRUE(r2.ReadContextPrimitive(6, &uri));
  EXPECT_EQ(ToString(uri), "http://x/");
}

TEST(Reader, ReadRawTlvPreservesBytes) {
  const Bytes seq = EncodeSequence({EncodeInteger(1), EncodeNull()});
  const Bytes wrapper = EncodeSequence({seq, EncodeBoolean(false)});
  Reader r{BytesView(wrapper)};
  Reader outer;
  ASSERT_TRUE(r.ReadSequence(&outer));
  BytesView raw;
  ASSERT_TRUE(outer.ReadRawTlv(&raw));
  EXPECT_EQ(Bytes(raw.begin(), raw.end()), seq);
  bool b;
  ASSERT_TRUE(outer.ReadBoolean(&b));
}

TEST(Reader, StringTypes) {
  const Bytes utf8 = EncodeUtf8String("héllo");
  const Bytes printable = EncodePrintableString("hello");
  const Bytes ia5 = EncodeIa5String("http://example.com");
  std::string s;
  Reader r1{BytesView(utf8)};
  ASSERT_TRUE(r1.ReadAnyString(&s));
  EXPECT_EQ(s, "héllo");
  Reader r2{BytesView(printable)};
  ASSERT_TRUE(r2.ReadAnyString(&s));
  EXPECT_EQ(s, "hello");
  Reader r3{BytesView(ia5)};
  ASSERT_TRUE(r3.ReadAnyString(&s));
  EXPECT_EQ(s, "http://example.com");
  // Wrong type rejected by tagged read.
  Reader r4{BytesView(utf8)};
  EXPECT_FALSE(r4.ReadStringTagged(kTagPrintableString, &s));
}

TEST(Reader, EnumeratedRoundTrip) {
  const Bytes der = EncodeEnumerated(4);  // superseded reason code
  Reader r{BytesView(der)};
  std::int64_t v;
  ASSERT_TRUE(r.ReadEnumerated(&v));
  EXPECT_EQ(v, 4);
}

// Nested structure round-trip property: build random trees and re-read.
class NestedRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(NestedRoundTrip, RandomTrees) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  // Build a random SEQUENCE of primitives, possibly nested one level.
  std::vector<Bytes> children;
  const int n = 1 + static_cast<int>(rng.NextBelow(6));
  std::vector<int> kinds;
  for (int i = 0; i < n; ++i) {
    const int kind = static_cast<int>(rng.NextBelow(4));
    kinds.push_back(kind);
    switch (kind) {
      case 0:
        children.push_back(EncodeInteger(static_cast<std::int64_t>(rng.Next())));
        break;
      case 1:
        children.push_back(EncodeBoolean(rng.Chance(0.5)));
        break;
      case 2: {
        Bytes blob(rng.NextBelow(300));
        rng.Fill(blob.data(), blob.size());
        children.push_back(EncodeOctetString(blob));
        break;
      }
      case 3:
        children.push_back(
            EncodeSequence({EncodeNull(), EncodeInteger(7)}));
        break;
    }
  }
  const Bytes der = EncodeSequence(children);
  Reader top{BytesView(der)};
  Reader seq;
  ASSERT_TRUE(top.ReadSequence(&seq));
  for (int i = 0; i < n; ++i) {
    switch (kinds[static_cast<std::size_t>(i)]) {
      case 0: {
        std::int64_t v;
        ASSERT_TRUE(seq.ReadInteger(&v));
        break;
      }
      case 1: {
        bool b;
        ASSERT_TRUE(seq.ReadBoolean(&b));
        break;
      }
      case 2: {
        BytesView blob;
        ASSERT_TRUE(seq.ReadOctetString(&blob));
        break;
      }
      case 3: {
        Reader inner;
        ASSERT_TRUE(seq.ReadSequence(&inner));
        ASSERT_TRUE(inner.ReadNull());
        std::int64_t v;
        ASSERT_TRUE(inner.ReadInteger(&v));
        EXPECT_EQ(v, 7);
        break;
      }
    }
  }
  EXPECT_TRUE(seq.Empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestedRoundTrip, ::testing::Range(0, 20));

}  // namespace
}  // namespace rev::asn1
