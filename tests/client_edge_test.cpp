// Edge-case tests: malformed server behavior at the browser client,
// multi-staple corner cases, ecosystem structure (sub-CA chains, tiers,
// CRLSet sources), and latency accounting.
#include <gtest/gtest.h>

#include "browser/client.h"
#include "browser/profiles.h"
#include "browser/testsuite.h"
#include "core/ecosystem.h"
#include "scan/scanner.h"

namespace rev {
namespace {

using namespace rev::browser;

constexpr util::Timestamp kNow = 1'420'000'000;
constexpr std::int64_t kDay = util::kSecondsPerDay;

class EdgeWorld : public ::testing::Test {
 protected:
  EdgeWorld() : rng_(31337) {
    ca::CertificateAuthority::Options root_options;
    root_options.name = "EdgeRoot";
    root_options.domain = "edgeroot.sim";
    root_ = ca::CertificateAuthority::CreateRoot(root_options, rng_,
                                                 kNow - 2000 * kDay);
    root_->RegisterEndpoints(&net_);
    roots_.Add(root_->cert());
    ca::CertificateAuthority::IssueOptions issue;
    issue.common_name = "edge.sim";
    issue.not_before = kNow - 30 * kDay;
    leaf_ = root_->Issue(issue, rng_);
  }

  VisitOutcome VisitChain(std::vector<Bytes> chain_der,
                          const char* browser = "IE 11",
                          const char* os = "Windows 10") {
    tls::TlsServer::Config config;
    config.chain_der = std::move(chain_der);
    tls::TlsServer server(config);
    Client client(FindProfile(browser, os)->policy, &net_, roots_);
    return client.Visit(server, kNow);
  }

  util::Rng rng_;
  net::SimNet net_;
  x509::CertPool roots_;
  std::unique_ptr<ca::CertificateAuthority> root_;
  x509::CertPtr leaf_;
};

TEST_F(EdgeWorld, EmptyChainRejected) {
  const VisitOutcome outcome = VisitChain({});
  EXPECT_TRUE(outcome.rejected());
  EXPECT_EQ(outcome.reject_reason, "no certificate");
}

TEST_F(EdgeWorld, GarbageCertificateRejected) {
  const VisitOutcome outcome = VisitChain({ToBytes("not a certificate")});
  EXPECT_TRUE(outcome.rejected());
  EXPECT_EQ(outcome.reject_reason, "unparseable certificate");
}

TEST_F(EdgeWorld, GarbageIntermediateRejected) {
  const VisitOutcome outcome = VisitChain({leaf_->der, ToBytes("junk")});
  EXPECT_TRUE(outcome.rejected());
}

TEST_F(EdgeWorld, UntrustedChainRejected) {
  // A self-signed cert the client has never heard of.
  const crypto::KeyPair key = crypto::SimKeyFromLabel("stranger");
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial{1};
  tbs.issuer = tbs.subject = x509::Name::FromCommonName("Stranger");
  tbs.not_before = kNow - kDay;
  tbs.not_after = kNow + kDay;
  tbs.public_key = key.Public();
  const x509::Certificate stranger = x509::SignCertificate(tbs, key);
  const VisitOutcome outcome = VisitChain({stranger.der});
  EXPECT_TRUE(outcome.rejected());
  EXPECT_NE(outcome.reject_reason.find("chain"), std::string::npos);
}

TEST_F(EdgeWorld, ValidDirectChainAccepted) {
  const VisitOutcome outcome = VisitChain({leaf_->der});
  EXPECT_TRUE(outcome.accepted()) << outcome.reject_reason;
  EXPECT_TRUE(outcome.chain_valid);
}

TEST_F(EdgeWorld, LatencyAccountedForChecks) {
  const VisitOutcome outcome = VisitChain({leaf_->der});
  // IE checks the leaf's CRL/OCSP: network time and bytes accrue.
  EXPECT_GT(outcome.revocation_seconds, 0.0);
  EXPECT_GT(outcome.revocation_bytes, 0u);
  // A mobile browser spends nothing.
  const VisitOutcome mobile = VisitChain({leaf_->der}, "Mobile Safari", "iOS 8");
  EXPECT_DOUBLE_EQ(mobile.revocation_seconds, 0.0);
  EXPECT_EQ(mobile.revocation_bytes, 0u);
}

TEST(MultiStaple, RevokedIntermediateCaughtViaStaple) {
  // The revoked element is an intermediate; only the multi-staple carries
  // its status when responders are firewalled.
  TestCase test;
  test.id = 950;
  test.num_intermediates = 2;
  test.protocol = RevProtocol::kOcspOnly;
  test.stapling = true;
  test.multi_staple = true;
  test.revoked_element = 1;

  Policy policy = FindProfile("IE 11", "Windows 10")->policy;
  policy.request_multi_staple = true;
  const VisitOutcome outcome = RunCase(test, policy, 12, kNow);
  EXPECT_TRUE(outcome.rejected());
  EXPECT_NE(outcome.reject_reason.find("staple"), std::string::npos);
}

TEST(MultiStaple, WithoutV2RequestIntermediatesUnchecked) {
  // Same scenario but the client only speaks RFC 6066: the revoked
  // intermediate's status never arrives and soft-fail accepts.
  TestCase test;
  test.id = 951;
  test.num_intermediates = 2;
  test.protocol = RevProtocol::kOcspOnly;
  test.stapling = true;
  test.multi_staple = true;
  test.revoked_element = 1;

  Policy policy = FindProfile("IE 9", "Windows 7")->policy;  // soft-ish
  ASSERT_FALSE(policy.request_multi_staple);
  // Int.1 unavailable -> IE rejects; use Firefox (accepts) to isolate.
  Policy ff = FindProfile("Firefox 40", "Windows")->policy;
  const VisitOutcome outcome = RunCase(test, ff, 12, kNow);
  EXPECT_TRUE(outcome.accepted());
}

// ------------------------------------------------------------- ecosystem ----

class EcosystemStructure : public ::testing::Test {
 protected:
  static core::Ecosystem& Eco() {
    static std::unique_ptr<core::Ecosystem> eco = [] {
      core::EcosystemConfig config;
      config.scale = 0.001;
      config.seed = 3;
      return core::Ecosystem::Build(config);
    }();
    return *eco;
  }
};

TEST_F(EcosystemStructure, SubCaChainsAppearInScans) {
  const scan::CertScanSnapshot snap = scan::RunCertScan(
      Eco().internet(), Eco().config().study_end - 30 * kDay);
  std::size_t depth2 = 0, depth3 = 0;
  for (const scan::CertObservation& obs : snap.observations) {
    if (obs.chain.size() == 2) ++depth2;
    if (obs.chain.size() == 3) ++depth3;
  }
  EXPECT_GT(depth2, 0u);
  EXPECT_GT(depth3, 0u);  // sub-CA chains: leaf + sub + parent
  EXPECT_GT(depth2, depth3);
}

TEST_F(EcosystemStructure, SubCaChainsVerify) {
  const scan::CertScanSnapshot snap = scan::RunCertScan(
      Eco().internet(), Eco().config().study_end - 30 * kDay);
  x509::CertPool intermediates;
  for (const scan::CertObservation& obs : snap.observations)
    for (std::size_t i = 1; i < obs.chain.size(); ++i)
      intermediates.Add(obs.chain[i]);
  x509::VerifyOptions options;
  options.ignore_dates = true;
  std::size_t checked = 0;
  for (const scan::CertObservation& obs : snap.observations) {
    if (obs.chain.size() != 3) continue;
    EXPECT_TRUE(
        x509::VerifyChain(obs.chain[0], intermediates, Eco().roots(), options).ok());
    if (++checked > 20) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(EcosystemStructure, CaEntriesIncludeSubCas) {
  bool found_subca = false;
  for (const core::Ecosystem::CaEntry& entry : Eco().cas()) {
    if (entry.spec.name.find("SubCA") != std::string::npos) {
      found_subca = true;
      EXPECT_NE(entry.parent_ca, nullptr);
      EXPECT_GT(entry.ca->issued_count(), 0u);
    }
  }
  EXPECT_TRUE(found_subca);
}

TEST_F(EcosystemStructure, CrlSetSourcesCoverCrawledCasOnly) {
  std::size_t total_entries = 0;
  const auto sources = Eco().CrlSetSources(Eco().config().study_end, &total_entries);
  EXPECT_GT(total_entries, 0u);
  std::size_t crawled_crls = 0;
  for (const core::Ecosystem::CaEntry& entry : Eco().cas())
    if (entry.spec.google_crawled)
      crawled_crls += static_cast<std::size_t>(entry.spec.num_crls);
  EXPECT_EQ(sources.size(), crawled_crls);
}

TEST_F(EcosystemStructure, TierLookups) {
  EXPECT_EQ(Eco().TierOf(Bytes{1, 2, 3}), core::PopularityTier::kOther);
  EXPECT_FALSE(Eco().SetGoogleCrawled("NoSuchCA", true));
  EXPECT_TRUE(Eco().SetGoogleCrawled("RapidSSL", true));
}

TEST_F(EcosystemStructure, CrossSignedVariantAdvertisedAndVerifiable) {
  // GeoTrust is cross-signed by a second root: both variants appear in
  // scans, and leaves under either variant chain to a trusted root.
  const core::Ecosystem::CaEntry* geotrust = nullptr;
  for (const core::Ecosystem::CaEntry& entry : Eco().cas())
    if (entry.spec.name == "GeoTrust") geotrust = &entry;
  ASSERT_NE(geotrust, nullptr);
  ASSERT_NE(geotrust->cross_cert, nullptr);
  // Same subject and key, different issuer and fingerprint.
  EXPECT_EQ(geotrust->cross_cert->tbs.subject,
            geotrust->ca->cert()->tbs.subject);
  EXPECT_TRUE(geotrust->cross_cert->tbs.public_key ==
              geotrust->ca->cert()->tbs.public_key);
  EXPECT_NE(geotrust->cross_cert->tbs.issuer, geotrust->ca->cert()->tbs.issuer);
  EXPECT_NE(geotrust->cross_cert->Fingerprint(),
            geotrust->ca->cert()->Fingerprint());

  const scan::CertScanSnapshot snap = scan::RunCertScan(
      Eco().internet(), Eco().config().study_end - 30 * kDay);
  std::size_t primary = 0, cross = 0;
  x509::CertPtr cross_leaf;
  for (const scan::CertObservation& obs : snap.observations) {
    if (obs.chain.size() < 2) continue;
    if (obs.chain[1]->Fingerprint() == geotrust->ca->cert()->Fingerprint())
      ++primary;
    if (obs.chain[1]->Fingerprint() == geotrust->cross_cert->Fingerprint()) {
      ++cross;
      cross_leaf = obs.chain[0];
    }
  }
  EXPECT_GT(primary, 0u);
  ASSERT_GT(cross, 0u);

  // A leaf advertised under the cross-signed variant verifies.
  x509::CertPool pool;
  pool.Add(geotrust->cross_cert);
  x509::VerifyOptions options;
  options.ignore_dates = true;
  EXPECT_TRUE(x509::VerifyChain(cross_leaf, pool, Eco().roots(), options).ok());
}

TEST_F(EcosystemStructure, CaNameLookups) {
  EXPECT_EQ(Eco().CaNameForUrl("http://crl.godaddy.sim/crl0.crl"), "GoDaddy");
  EXPECT_EQ(Eco().CaNameForUrl("http://crl.sub.verisign.sim/crl0.crl"),
            "Verisign SubCA");
  EXPECT_EQ(Eco().CaNameForUrl("http://unknown.sim/x"), "");
  EXPECT_EQ(Eco().CaNameForUrl("not a url"), "");
}

}  // namespace
}  // namespace rev
