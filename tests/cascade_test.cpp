// Filter-cascade subsystem tests: exactness over the build universe,
// bit-identical parallel builds, wire-format integrity, the delta channel's
// snapshot-equivalence property, the publisher's HTTP policy, and a
// fleet-under-storm smoke with ground-truth verification.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cascade/cascade.h"
#include "cascade/delta.h"
#include "cascade/fleet.h"
#include "cascade/publisher.h"
#include "net/fault.h"
#include "net/simnet.h"
#include "serve/frontend.h"
#include "util/rng.h"

namespace rev::cascade {
namespace {

std::vector<Bytes> MakeKeys(util::Rng& rng, std::size_t n) {
  std::vector<Bytes> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Bytes issuer(24), serial(16);
    rng.Fill(issuer.data(), issuer.size());
    rng.Fill(serial.data(), serial.size());
    keys.push_back(CertKey(issuer, serial));
  }
  return keys;
}

// Splits `universe` into (revoked, not_revoked) with the first `r` keys
// revoked.
void Split(const std::vector<Bytes>& universe, std::size_t r,
           std::vector<Bytes>* revoked, std::vector<Bytes>* not_revoked) {
  revoked->assign(universe.begin(),
                  universe.begin() + static_cast<std::ptrdiff_t>(r));
  not_revoked->assign(universe.begin() + static_cast<std::ptrdiff_t>(r),
                      universe.end());
}

// ------------------------------------------------------------- cascade ----

TEST(CertKey, BoundaryUnambiguous) {
  // (issuer="AB", serial="C") must differ from (issuer="A", serial="BC"):
  // the length prefix prevents concatenation ambiguity.
  EXPECT_NE(CertKey(Bytes{'A', 'B'}, Bytes{'C'}),
            CertKey(Bytes{'A'}, Bytes{'B', 'C'}));
  EXPECT_EQ(CertKey(Bytes{'A'}, Bytes{'B'}), CertKey(Bytes{'A'}, Bytes{'B'}));
  EXPECT_EQ(CertKey(Bytes{'A'}, Bytes{'B'}).size(), 32u);
}

TEST(Cascade, ExactOverUniverse) {
  util::Rng rng(1);
  const std::vector<Bytes> universe = MakeKeys(rng, 20'000);
  std::vector<Bytes> revoked, not_revoked;
  Split(universe, 200, &revoked, &not_revoked);

  const FilterCascade cascade = FilterCascade::Build(revoked, not_revoked);
  EXPECT_EQ(cascade.NumRevoked(), 200u);
  EXPECT_GE(cascade.NumLevels(), 1u);
  // Zero false negatives on the revoked side, zero false positives across
  // the entire rest of the universe — per key, not sampled.
  for (const Bytes& key : revoked) EXPECT_TRUE(cascade.IsRevoked(key));
  for (const Bytes& key : not_revoked) EXPECT_FALSE(cascade.IsRevoked(key));
  // Far below the trivial 32-bytes-per-revocation explicit list.
  EXPECT_LT(cascade.FilterBytes(), 32u * 200u);
}

TEST(Cascade, DegenerateShapes) {
  util::Rng rng(2);
  const std::vector<Bytes> keys = MakeKeys(rng, 500);

  // Nothing revoked: everything answers false.
  const FilterCascade none = FilterCascade::Build({}, keys);
  for (const Bytes& key : keys) EXPECT_FALSE(none.IsRevoked(key));

  // Everything revoked: everything answers true.
  const FilterCascade all = FilterCascade::Build(keys, {});
  for (const Bytes& key : keys) EXPECT_TRUE(all.IsRevoked(key));

  // Both sides empty.
  const FilterCascade empty = FilterCascade::Build({}, {});
  EXPECT_FALSE(empty.IsRevoked(keys[0]));

  // Single revoked key among many.
  std::vector<Bytes> revoked, not_revoked;
  Split(keys, 1, &revoked, &not_revoked);
  const FilterCascade one = FilterCascade::Build(revoked, not_revoked);
  EXPECT_TRUE(one.IsRevoked(revoked[0]));
  for (const Bytes& key : not_revoked) EXPECT_FALSE(one.IsRevoked(key));
}

TEST(Cascade, DuplicateKeysHarmless) {
  util::Rng rng(3);
  const std::vector<Bytes> universe = MakeKeys(rng, 2'000);
  std::vector<Bytes> revoked, not_revoked;
  Split(universe, 50, &revoked, &not_revoked);
  std::vector<Bytes> doubled = revoked;
  doubled.insert(doubled.end(), revoked.begin(), revoked.end());

  const FilterCascade cascade = FilterCascade::Build(doubled, not_revoked);
  for (const Bytes& key : revoked) EXPECT_TRUE(cascade.IsRevoked(key));
  for (const Bytes& key : not_revoked) EXPECT_FALSE(cascade.IsRevoked(key));
}

TEST(Cascade, BitIdenticalAcrossThreadCounts) {
  util::Rng rng(4);
  const std::vector<Bytes> universe = MakeKeys(rng, 30'000);
  std::vector<Bytes> revoked, not_revoked;
  Split(universe, 300, &revoked, &not_revoked);

  CascadeOptions serial_opts;
  serial_opts.threads = 1;
  CascadeOptions parallel_opts;
  parallel_opts.threads = 8;
  const FilterCascade a = FilterCascade::Build(revoked, not_revoked, serial_opts);
  const FilterCascade b =
      FilterCascade::Build(revoked, not_revoked, parallel_opts);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(Cascade, SerializeRoundTrip) {
  util::Rng rng(5);
  const std::vector<Bytes> universe = MakeKeys(rng, 5'000);
  std::vector<Bytes> revoked, not_revoked;
  Split(universe, 100, &revoked, &not_revoked);
  FilterCascade cascade = FilterCascade::Build(revoked, not_revoked);
  cascade.sequence = 42;

  const Bytes blob = cascade.Serialize();
  auto decoded = FilterCascade::Deserialize(blob);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(*decoded == cascade);
  EXPECT_EQ(decoded->sequence, 42u);
  EXPECT_EQ(decoded->Serialize(), blob);
  for (const Bytes& key : revoked) EXPECT_TRUE(decoded->IsRevoked(key));
  for (const Bytes& key : not_revoked) EXPECT_FALSE(decoded->IsRevoked(key));
}

TEST(Cascade, DeserializeRejectsDamage) {
  util::Rng rng(6);
  const std::vector<Bytes> universe = MakeKeys(rng, 1'000);
  std::vector<Bytes> revoked, not_revoked;
  Split(universe, 30, &revoked, &not_revoked);
  const Bytes blob = FilterCascade::Build(revoked, not_revoked).Serialize();

  EXPECT_FALSE(FilterCascade::Deserialize(Bytes{}));
  EXPECT_FALSE(FilterCascade::Deserialize(Bytes{1, 2, 3}));
  // Every truncation fails closed (checksum trailer).
  for (std::size_t cut : {1ul, 7ul, 8ul, blob.size() / 2, blob.size() - 1}) {
    Bytes t(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(FilterCascade::Deserialize(t)) << cut;
  }
  // Any single bit flip fails closed.
  for (std::size_t i = 0; i < blob.size(); i += 13) {
    Bytes flipped = blob;
    flipped[i] ^= 0x40;
    EXPECT_FALSE(FilterCascade::Deserialize(flipped)) << i;
  }
  // Trailing junk fails closed.
  Bytes extended = blob;
  extended.push_back(0);
  EXPECT_FALSE(FilterCascade::Deserialize(extended));
}

// --------------------------------------------------------------- delta ----

TEST(Delta, SerializeRoundTrip) {
  CascadeDelta delta;
  delta.from_sequence = 3;
  delta.to_sequence = 4;
  delta.added = {Bytes{1, 2}, Bytes{3}};
  delta.removed = {Bytes{9, 9, 9}};
  const Bytes blob = delta.Serialize();
  auto decoded = CascadeDelta::Deserialize(blob);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, delta);

  Bytes damaged = blob;
  damaged[damaged.size() / 2] ^= 1;
  EXPECT_FALSE(CascadeDelta::Deserialize(damaged));
  damaged = blob;
  damaged.pop_back();
  EXPECT_FALSE(CascadeDelta::Deserialize(damaged));
}

TEST(Delta, ResponseRejectsNonContiguousChain) {
  CascadeDelta a, b;
  a.from_sequence = 1;
  a.to_sequence = 2;
  b.from_sequence = 3;  // gap: 2 -> 3 missing
  b.to_sequence = 4;
  UpdateResponse response;
  response.kind = UpdateResponse::Kind::kDeltas;
  response.deltas = {a, b};
  EXPECT_FALSE(UpdateResponse::Deserialize(response.Serialize()));
  // Contiguous chain round-trips.
  b.from_sequence = 2;
  b.to_sequence = 3;
  response.deltas = {a, b};
  auto decoded = UpdateResponse::Deserialize(response.Serialize());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->deltas.size(), 2u);
}

TEST(Delta, ClientEquivalentToFreshSnapshot) {
  // The tentpole property: a client that applies deltas N→M answers every
  // universe key identically to a client that downloaded the snapshot at M.
  util::Rng rng(7);
  const auto universe =
      std::make_shared<const std::vector<Bytes>>(MakeKeys(rng, 4'000));
  // At toy scale the cascade snapshot is tiny relative to explicit-key
  // deltas, so loosen the fallback bound to actually exercise the delta
  // path (at paper scale — millions of certs — deltas win under the
  // default fraction).
  PublisherOptions publisher_options;
  publisher_options.snapshot_fallback_fraction = 1e6;
  Publisher publisher(publisher_options);

  std::set<std::size_t> revoked_indices;
  std::vector<std::vector<Bytes>> revoked_by_seq;
  for (int day = 0; day < 6; ++day) {
    // Churn: add some, drop some.
    for (int i = 0; i < 40; ++i)
      revoked_indices.insert(rng.NextBelow(universe->size()));
    for (int i = 0; i < 10 && !revoked_indices.empty(); ++i)
      revoked_indices.erase(revoked_indices.begin());
    std::vector<Bytes> revoked;
    for (std::size_t index : revoked_indices)
      revoked.push_back((*universe)[index]);
    revoked_by_seq.push_back(revoked);
    publisher.Publish(universe, revoked,
                      1'000 + day * util::kSecondsPerDay);
  }

  // Client synced at sequence 2, then deltas 2→6.
  auto old_blob = Bytes();
  {
    // Rebuild the sequence-2 snapshot from retained ground truth.
    std::vector<Bytes> not_revoked;
    std::set<Bytes> revoked_set(revoked_by_seq[1].begin(),
                                revoked_by_seq[1].end());
    for (const Bytes& key : *universe)
      if (!revoked_set.contains(key)) not_revoked.push_back(key);
    FilterCascade at2 = FilterCascade::Build(revoked_by_seq[1], not_revoked);
    at2.sequence = 2;
    old_blob = at2.Serialize();
  }
  ClientCascade via_deltas;
  via_deltas.ResetTo(std::make_shared<const FilterCascade>(
      *FilterCascade::Deserialize(old_blob)));
  ASSERT_EQ(via_deltas.sequence(), 2u);

  net::HttpRequest request;
  request.host = "pub";
  request.path = std::string(Publisher::kDeltaPathPrefix) + "2";
  const net::HttpResponse http = publisher.HandleHttp(request, 0);
  ASSERT_EQ(http.status, 200);
  auto update = UpdateResponse::Deserialize(http.body);
  ASSERT_TRUE(update);
  ASSERT_EQ(update->kind, UpdateResponse::Kind::kDeltas);
  ASSERT_EQ(update->deltas.size(), 4u);
  for (const CascadeDelta& delta : update->deltas)
    ASSERT_TRUE(via_deltas.ApplyDelta(delta));
  EXPECT_EQ(via_deltas.sequence(), 6u);

  ClientCascade via_snapshot;
  via_snapshot.ResetTo(publisher.Current());
  ASSERT_EQ(via_snapshot.sequence(), 6u);

  for (const Bytes& key : *universe)
    ASSERT_EQ(via_deltas.IsRevoked(key), via_snapshot.IsRevoked(key));
}

TEST(Delta, ClientRejectsMismatchedDelta) {
  ClientCascade client;
  CascadeDelta delta;
  delta.from_sequence = 0;
  delta.to_sequence = 1;
  EXPECT_FALSE(client.ApplyDelta(delta));  // never synced
  EXPECT_FALSE(client.IsRevoked(Bytes{1}));

  FilterCascade snapshot = FilterCascade::Build({}, {});
  snapshot.sequence = 5;
  client.ResetTo(std::make_shared<const FilterCascade>(std::move(snapshot)));
  EXPECT_FALSE(client.ApplyDelta(delta));  // from 0, client at 5
  delta.from_sequence = 5;
  delta.to_sequence = 6;
  EXPECT_TRUE(client.ApplyDelta(delta));
  EXPECT_EQ(client.sequence(), 6u);
}

// ----------------------------------------------------------- publisher ----

TEST(Publisher, HttpPolicy) {
  util::Rng rng(8);
  const auto universe =
      std::make_shared<const std::vector<Bytes>>(MakeKeys(rng, 2'000));
  PublisherOptions options;
  options.max_delta_history = 3;
  options.snapshot_fallback_fraction = 1e6;  // see ClientEquivalent note
  Publisher publisher(options);

  net::HttpRequest request;
  request.host = "pub";
  request.path = std::string(Publisher::kDeltaPathPrefix) + "0";
  EXPECT_EQ(publisher.HandleHttp(request, 0).status, 503);  // nothing yet

  for (int day = 0; day < 6; ++day) {
    std::vector<Bytes> revoked(universe->begin(),
                               universe->begin() + 10 * (day + 1));
    publisher.Publish(universe, revoked, day * util::kSecondsPerDay);
  }

  // Up to date.
  request.path = std::string(Publisher::kDeltaPathPrefix) + "6";
  auto update = UpdateResponse::Deserialize(publisher.HandleHttp(request, 0).body);
  ASSERT_TRUE(update);
  EXPECT_EQ(update->kind, UpdateResponse::Kind::kUpToDate);

  // Recent client: deltas.
  request.path = std::string(Publisher::kDeltaPathPrefix) + "4";
  update = UpdateResponse::Deserialize(publisher.HandleHttp(request, 0).body);
  ASSERT_TRUE(update);
  EXPECT_EQ(update->kind, UpdateResponse::Kind::kDeltas);
  EXPECT_EQ(update->deltas.size(), 2u);

  // Too stale (history holds 3: sequences 4..6; a from=2 client needs the
  // evicted delta 2→3): snapshot fallback.
  request.path = std::string(Publisher::kDeltaPathPrefix) + "2";
  update = UpdateResponse::Deserialize(publisher.HandleHttp(request, 0).body);
  ASSERT_TRUE(update);
  EXPECT_EQ(update->kind, UpdateResponse::Kind::kSnapshot);
  auto cascade = FilterCascade::Deserialize(update->snapshot);
  ASSERT_TRUE(cascade);
  EXPECT_EQ(cascade->sequence, 6u);

  // Unparseable `from`: snapshot (the channel always converges).
  request.path = std::string(Publisher::kDeltaPathPrefix) + "bogus";
  update = UpdateResponse::Deserialize(publisher.HandleHttp(request, 0).body);
  ASSERT_TRUE(update);
  EXPECT_EQ(update->kind, UpdateResponse::Kind::kSnapshot);

  // Explicit snapshot path.
  request.path = Publisher::kSnapshotPath;
  update = UpdateResponse::Deserialize(publisher.HandleHttp(request, 0).body);
  ASSERT_TRUE(update);
  EXPECT_EQ(update->kind, UpdateResponse::Kind::kSnapshot);

  // Unknown path.
  request.path = "/cascade/unknown";
  EXPECT_EQ(publisher.HandleHttp(request, 0).status, 404);
}

TEST(Publisher, SnapshotFallbackWhenDeltasTooBig) {
  util::Rng rng(9);
  const auto universe =
      std::make_shared<const std::vector<Bytes>>(MakeKeys(rng, 300));
  PublisherOptions options;
  options.snapshot_fallback_fraction = 0.0;  // deltas never pay
  Publisher publisher(options);
  publisher.Publish(universe, {(*universe)[0]}, 100);
  publisher.Publish(universe, {(*universe)[0], (*universe)[1]}, 200);

  net::HttpRequest request;
  request.host = "pub";
  request.path = std::string(Publisher::kDeltaPathPrefix) + "1";
  auto update = UpdateResponse::Deserialize(publisher.HandleHttp(request, 0).body);
  ASSERT_TRUE(update);
  EXPECT_EQ(update->kind, UpdateResponse::Kind::kSnapshot);
}

// ------------------------------------------------- frontend route table ----

TEST(FrontendRoutes, PrefixDispatchAndLateAddThrows) {
  serve::Frontend frontend;
  bool handled = false;
  frontend.AddRoute("/cascade/",
                    [&handled](const net::HttpRequest&, util::Timestamp) {
                      handled = true;
                      net::HttpResponse response;
                      response.status = 200;
                      response.body = Bytes{'o', 'k'};
                      return response;
                    });

  net::HttpRequest request;
  request.method = "GET";
  request.host = "frontend";
  request.path = "/cascade/delta?from=3";
  const net::HttpResponse response = frontend.HandleHttp(request, 0);
  EXPECT_TRUE(handled);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, (Bytes{'o', 'k'}));

  // /metrics still wins over routes; non-matching paths fall to OCSP.
  request.path = "/metrics";
  EXPECT_EQ(frontend.HandleHttp(request, 0).status, 200);

  // Serving has started: late registration must throw, not race readers.
  EXPECT_THROW(frontend.AddRoute("/late/", [](const net::HttpRequest&,
                                              util::Timestamp) {
    return net::HttpResponse{};
  }),
               std::logic_error);
}

// ---------------------------------------------------------------- fleet ----

struct FleetOutcome {
  Fleet::Totals totals;
  std::size_t staleness_count = 0;
  double staleness_mean = 0;
  bool staleness_empty = true;
  bool windows_empty = true;
};

TEST(Fleet, StormSmokeExactAndDeterministic) {
  auto run = [](std::uint64_t seed) {
    util::Rng rng(100);
    const auto universe =
        std::make_shared<const std::vector<Bytes>>(MakeKeys(rng, 3'000));

    net::SimNet net;
    net::FaultPlan storm(seed);
    net::FaultRule rule;
    rule.target = "cascade.dist.sim";
    rule.kind = net::FaultKind::kCorrupt;
    rule.probability = 0.2;
    storm.AddRule(rule);
    rule.kind = net::FaultKind::kTimeout;
    rule.probability = 0.1;
    storm.AddRule(rule);
    rule.kind = net::FaultKind::kHttpError;
    rule.http_status = 503;
    rule.retry_after = 30;
    rule.probability = 0.1;
    storm.AddRule(rule);
    net.SetFaultPlan(&storm);

    PublisherOptions publisher_options;
    publisher_options.max_delta_history = 10;
    publisher_options.snapshot_fallback_fraction = 1e6;  // toy scale
    Publisher publisher(publisher_options);
    net.AddHost("cascade.dist.sim",
                [&publisher](const net::HttpRequest& request,
                             util::Timestamp now) {
                  return publisher.HandleHttp(request, now);
                });

    FleetOptions fleet_options;
    fleet_options.num_clients = 400;
    fleet_options.seed = 7;
    Fleet fleet(&net, &publisher, fleet_options);

    std::set<std::size_t> revoked_indices;
    const util::Timestamp t0 = 1'000'000;
    fleet.StepTo(t0);  // primes poll phases
    for (int day = 0; day < 8; ++day) {
      const util::Timestamp at = t0 + day * util::kSecondsPerDay;
      for (int i = 0; i < 25; ++i)
        revoked_indices.insert(rng.NextBelow(universe->size()));
      std::vector<Bytes> revoked;
      for (std::size_t index : revoked_indices)
        revoked.push_back((*universe)[index]);
      publisher.Publish(universe, revoked, at);
      fleet.StepTo(at + util::kSecondsPerDay);
    }
    FleetOutcome outcome;
    outcome.totals = fleet.totals();
    outcome.staleness_count = fleet.staleness().Count();
    outcome.staleness_mean = fleet.staleness().Mean();
    outcome.staleness_empty = fleet.staleness().Empty();
    outcome.windows_empty = fleet.vulnerability_windows().Empty();
    return outcome;
  };

  const FleetOutcome a = run(55);
  EXPECT_GT(a.totals.polls, 1'000u);
  EXPECT_GT(a.totals.retries, 0u);          // the storm bit
  EXPECT_GT(a.totals.delta_updates, 0u);
  EXPECT_GT(a.totals.snapshot_updates, 0u); // first syncs
  EXPECT_GT(a.totals.verified_lookups, 0u);
  EXPECT_EQ(a.totals.wrong_answers, 0u);    // exactness through the storm
  EXPECT_FALSE(a.staleness_empty);
  EXPECT_FALSE(a.windows_empty);

  // Same seeds → bit-identical aggregate behaviour.
  const FleetOutcome b = run(55);
  EXPECT_EQ(a.totals.polls, b.totals.polls);
  EXPECT_EQ(a.totals.failed_polls, b.totals.failed_polls);
  EXPECT_EQ(a.totals.retries, b.totals.retries);
  EXPECT_EQ(a.totals.bytes_downloaded, b.totals.bytes_downloaded);
  EXPECT_EQ(a.totals.delta_updates, b.totals.delta_updates);
  EXPECT_EQ(a.staleness_count, b.staleness_count);
  EXPECT_EQ(a.staleness_mean, b.staleness_mean);

  // A different storm seed changes the trajectory (the plan is live).
  const FleetOutcome c = run(56);
  EXPECT_NE(a.totals.bytes_downloaded, c.totals.bytes_downloaded);
}

}  // namespace
}  // namespace rev::cascade
