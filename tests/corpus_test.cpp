// Serial-reference equivalence suite for the columnar CertCorpus pipeline
// (ROADMAP item 2): an embedded copy of the pre-columnar map-based pipeline
// runs side by side with core::Pipeline on the same seeded ecosystems, and
// every analysis-visible output — Leaf Set, Intermediate Set, per-record
// lifetime/verdict fields — must match byte for byte, at 1 thread and at 8.
// Also locks down the PR 1 ingest-ordering regressions, corpus view/row-id
// stability, and the Observe/ObserveDer round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/ecosystem.h"
#include "core/pipeline.h"
#include "crypto/signer.h"
#include "scan/scanner.h"
#include "x509/verify.h"

namespace rev::core {
namespace {

constexpr std::int64_t kDay = util::kSecondsPerDay;

// ---------------------------------------------------------------------------
// The reference: a verbatim copy of the pipeline as it was before the
// columnar store, down to the map iteration order and the full
// x509::VerifyChain DFS per leaf. Kept deliberately naive — it is the
// oracle, not the implementation.
struct ReferenceRecord {
  x509::CertPtr cert;
  util::Timestamp first_seen = 0;
  util::Timestamp last_seen = 0;
  std::uint64_t observations = 0;
  bool valid = false;
  bool in_latest_scan = false;
};

class ReferencePipeline {
 public:
  explicit ReferencePipeline(x509::CertPool roots)
      : roots_(std::move(roots)) {}

  void IngestScan(const scan::CertScanSnapshot& snapshot) {
    const bool strictly_newer = snapshot.time > latest_scan_time_;
    const bool in_latest = snapshot.time >= latest_scan_time_;
    if (strictly_newer) {
      latest_scan_time_ = snapshot.time;
      for (auto& [fp, record] : records_) record.in_latest_scan = false;
    } else if (!in_latest) {
      ++out_of_order_scans_;
    }
    for (const scan::CertObservation& obs : snapshot.observations) {
      for (std::size_t i = 0; i < obs.chain.size(); ++i) {
        const x509::CertPtr& cert = obs.chain[i];
        if (!cert) continue;
        auto [it, inserted] = records_.try_emplace(cert->Fingerprint());
        ReferenceRecord& record = it->second;
        if (inserted) {
          record.cert = cert;
          record.first_seen = snapshot.time;
          record.last_seen = snapshot.time;
        } else {
          record.first_seen = std::min(record.first_seen, snapshot.time);
          record.last_seen = std::max(record.last_seen, snapshot.time);
        }
        if (i == 0) {
          ++record.observations;
          if (in_latest) record.in_latest_scan = true;
        }
      }
    }
  }

  void Finalize() {
    x509::CertPool intermediates;
    std::set<Bytes> intermediate_fps;
    std::vector<x509::CertPtr> candidates;
    for (const auto& [fp, record] : records_) {
      if (record.cert->IsCa()) candidates.push_back(record.cert);
    }
    intermediate_set_ = x509::BuildIntermediateSet(candidates, roots_);
    for (const x509::CertPtr& cert : intermediate_set_) {
      intermediates.Add(cert);
      intermediate_fps.insert(cert->Fingerprint());
    }

    x509::VerifyOptions options;
    options.ignore_dates = true;
    for (auto& [fp, record] : records_) {
      if (record.cert->IsCa()) {
        record.valid = roots_.Contains(*record.cert) ||
                       intermediate_fps.contains(record.cert->Fingerprint());
      } else {
        record.valid =
            x509::VerifyChain(record.cert, intermediates, roots_, options)
                .ok();
      }
    }
  }

  std::vector<const ReferenceRecord*> LeafSet() const {
    std::vector<const ReferenceRecord*> out;
    for (const auto& [fp, record] : records_) {
      if (record.valid && !record.cert->IsCa()) out.push_back(&record);
    }
    return out;
  }

  const std::map<Bytes, ReferenceRecord>& records() const { return records_; }
  const std::vector<x509::CertPtr>& IntermediateSet() const {
    return intermediate_set_;
  }
  util::Timestamp latest_scan_time() const { return latest_scan_time_; }
  std::uint64_t out_of_order_scans() const { return out_of_order_scans_; }

 private:
  x509::CertPool roots_;
  std::map<Bytes, ReferenceRecord> records_;
  std::vector<x509::CertPtr> intermediate_set_;
  util::Timestamp latest_scan_time_ = 0;
  std::uint64_t out_of_order_scans_ = 0;
};

// Asserts that every analysis-visible output of `pipeline` is byte-identical
// to the reference run on the same scans.
void ExpectEquivalent(const ReferencePipeline& reference,
                      const Pipeline& pipeline) {
  const CertCorpus& corpus = pipeline.corpus();
  ASSERT_EQ(reference.records().size(), corpus.size());
  EXPECT_EQ(reference.latest_scan_time(), pipeline.latest_scan_time());
  EXPECT_EQ(reference.out_of_order_scans(), pipeline.out_of_order_scans());

  // Record fields, walked in the map's fingerprint order vs
  // RowsByFingerprint — the orders must coincide exactly.
  const std::vector<CertCorpus::Row> rows = corpus.RowsByFingerprint();
  std::size_t i = 0;
  for (const auto& [fp, record] : reference.records()) {
    const CertCorpus::Row row = rows[i++];
    const BytesView row_fp = corpus.fingerprint(row);
    ASSERT_EQ(fp, Bytes(row_fp.begin(), row_fp.end()));
    EXPECT_EQ(record.valid, corpus.valid(row)) << i;
    EXPECT_EQ(record.first_seen, corpus.first_seen(row));
    EXPECT_EQ(record.last_seen, corpus.last_seen(row));
    EXPECT_EQ(record.observations, corpus.observations(row));
    EXPECT_EQ(record.in_latest_scan, corpus.in_latest_scan(row));
    EXPECT_EQ(record.cert->IsCa(), corpus.is_ca(row));
    EXPECT_EQ(record.cert->IsEv(), corpus.is_ev(row));
    // Byte columns vs the certificate object they encode.
    const BytesView der = corpus.der(row);
    EXPECT_EQ(record.cert->der, Bytes(der.begin(), der.end()));
    const BytesView tbs = corpus.tbs_der(row);
    EXPECT_EQ(record.cert->tbs_der, Bytes(tbs.begin(), tbs.end()));
    const BytesView sig = corpus.signature(row);
    EXPECT_EQ(record.cert->signature, Bytes(sig.begin(), sig.end()));
    const BytesView issuer = corpus.name_der(corpus.issuer_id(row));
    EXPECT_EQ(record.cert->tbs.issuer.Encode(),
              Bytes(issuer.begin(), issuer.end()));
    const BytesView subject = corpus.name_der(corpus.subject_id(row));
    EXPECT_EQ(record.cert->tbs.subject.Encode(),
              Bytes(subject.begin(), subject.end()));
    EXPECT_EQ(record.cert->tbs.not_before, corpus.not_before(row));
    EXPECT_EQ(record.cert->tbs.not_after, corpus.not_after(row));
    // Interned URL lists, in declaration order.
    const auto crl_ids = corpus.crl_url_ids(row);
    ASSERT_EQ(record.cert->tbs.crl_urls.size(), crl_ids.size());
    for (std::size_t u = 0; u < crl_ids.size(); ++u)
      EXPECT_EQ(record.cert->tbs.crl_urls[u], corpus.url(crl_ids[u]));
    const auto ocsp_ids = corpus.ocsp_url_ids(row);
    ASSERT_EQ(record.cert->tbs.ocsp_urls.size(), ocsp_ids.size());
    for (std::size_t u = 0; u < ocsp_ids.size(); ++u)
      EXPECT_EQ(record.cert->tbs.ocsp_urls[u], corpus.url(ocsp_ids[u]));
  }

  // Leaf Set: same size, same fingerprints, same order.
  const auto ref_leaves = reference.LeafSet();
  const auto leaves = pipeline.LeafSet();
  ASSERT_EQ(ref_leaves.size(), leaves.size());
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    const BytesView fp = corpus.fingerprint(leaves[l]);
    EXPECT_EQ(ref_leaves[l]->cert->Fingerprint(), Bytes(fp.begin(), fp.end()));
  }

  // Intermediate Set: same certificates in the same order.
  ASSERT_EQ(reference.IntermediateSet().size(),
            pipeline.IntermediateSet().size());
  for (std::size_t s = 0; s < pipeline.IntermediateSet().size(); ++s)
    EXPECT_EQ(reference.IntermediateSet()[s]->Fingerprint(),
              pipeline.IntermediateSet()[s]->Fingerprint());
}

// Runs a seeded ecosystem through both pipelines and asserts equivalence.
void RunEcosystemEquivalence(std::uint64_t seed, unsigned threads) {
  EcosystemConfig config;
  config.scale = 0.001;
  config.seed = seed;
  std::unique_ptr<Ecosystem> eco = Ecosystem::Build(config);
  const EcosystemConfig& c = eco->config();

  ReferencePipeline reference(eco->roots());
  Pipeline pipeline(eco->roots(), threads);
  for (util::Timestamp t = c.study_start; t <= c.study_end; t += 14 * kDay) {
    const scan::CertScanSnapshot snapshot =
        scan::RunCertScan(eco->internet(), t);
    reference.IngestScan(snapshot);
    pipeline.IngestScan(snapshot);
  }
  reference.Finalize();
  pipeline.Finalize();
  ExpectEquivalent(reference, pipeline);
  EXPECT_TRUE(pipeline.corpus().CheckInvariants());
}

TEST(CorpusEquivalence, SeededEcosystemSerial) {
  RunEcosystemEquivalence(/*seed=*/11, /*threads=*/1);
}

TEST(CorpusEquivalence, SeededEcosystemEightThreads) {
  RunEcosystemEquivalence(/*seed=*/11, /*threads=*/8);
}

TEST(CorpusEquivalence, SecondSeed) {
  RunEcosystemEquivalence(/*seed=*/29, /*threads=*/8);
}

// ------------------------------------------------------- ingest ordering ----

x509::CertPtr MakeTestLeaf(const std::string& cn) {
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial(8, 0x21);
  tbs.issuer = x509::Name::Make("Ingest Test CA", "Ingest");
  tbs.subject = x509::Name::FromCommonName(cn);
  tbs.not_before = util::MakeDate(2013, 1, 1);
  tbs.not_after = util::MakeDate(2016, 1, 1);
  tbs.public_key = crypto::SimKeyFromLabel("ingest-" + cn).Public();
  tbs.dns_names = {cn};
  return std::make_shared<const x509::Certificate>(
      x509::SignCertificate(tbs, crypto::SimKeyFromLabel("ingest-ca")));
}

scan::CertScanSnapshot MakeSnapshot(util::Timestamp t,
                                    const std::vector<x509::CertPtr>& leaves) {
  scan::CertScanSnapshot snapshot;
  snapshot.time = t;
  for (const x509::CertPtr& leaf : leaves) {
    scan::CertObservation obs;
    obs.chain = {leaf};
    snapshot.observations.push_back(obs);
  }
  return snapshot;
}

// PR 1 regressions, replayed against the reference: same-timestamp
// snapshots merge, out-of-order snapshots fold lifetimes without touching
// the latest-scan view — in both pipelines, identically.
TEST(CorpusEquivalence, OutOfOrderAndSameTimestampIngest) {
  const util::Timestamp t1 = util::MakeDate(2014, 6, 1);
  const util::Timestamp t2 = util::MakeDate(2014, 6, 8);
  const x509::CertPtr a = MakeTestLeaf("a.eq.sim");
  const x509::CertPtr b = MakeTestLeaf("b.eq.sim");
  const x509::CertPtr c = MakeTestLeaf("c.eq.sim");

  const std::vector<scan::CertScanSnapshot> scans = {
      MakeSnapshot(t2, {a, b}),
      MakeSnapshot(t2, {c}),       // same timestamp: merges into the view
      MakeSnapshot(t1, {a, c}),    // older: folds lifetimes only
      MakeSnapshot(t2 + kDay, {b}),
  };

  ReferencePipeline reference{x509::CertPool{}};
  Pipeline pipeline{x509::CertPool{}};
  for (const scan::CertScanSnapshot& snapshot : scans) {
    reference.IngestScan(snapshot);
    pipeline.IngestScan(snapshot);
  }
  reference.Finalize();
  pipeline.Finalize();
  ExpectEquivalent(reference, pipeline);
  EXPECT_EQ(pipeline.out_of_order_scans(), 1u);
  EXPECT_TRUE(pipeline.corpus().CheckInvariants());
}

// --------------------------------------------------------- row stability ----

// Row ids and borrowed views must survive arbitrary further ingest — the
// replacement for the old LeafSet()'s record pointers, which dangled if the
// map rehashed its nodes away (and invited iterator-invalidation bugs).
TEST(Corpus, RowIdsAndViewsStableAcrossIngest) {
  Pipeline pipeline{x509::CertPool{}};
  const util::Timestamp t = util::MakeDate(2014, 1, 1);
  const x509::CertPtr first = MakeTestLeaf("stable.sim");
  pipeline.BeginScan(t);
  const CertCorpus::Row row = pipeline.Observe({&first, 1});
  pipeline.EndScan();
  ASSERT_NE(row, CertCorpus::kNoRow);

  const CertCorpus& corpus = pipeline.corpus();
  const BytesView der_before = corpus.der(row);
  const std::uint8_t* data_before = der_before.data();
  const Bytes fp_before(corpus.fingerprint(row).begin(),
                        corpus.fingerprint(row).end());

  // Intern enough certificates to force arena chunk growth and several
  // index rehashes.
  for (int i = 0; i < 3000; ++i) {
    const x509::CertPtr leaf = MakeTestLeaf("churn-" + std::to_string(i));
    pipeline.BeginScan(t + i);
    pipeline.Observe({&leaf, 1});
    pipeline.EndScan();
  }

  // Same row id, same bytes, same arena address (views never move).
  EXPECT_EQ(corpus.der(row).data(), data_before);
  EXPECT_EQ(fp_before, Bytes(corpus.fingerprint(row).begin(),
                             corpus.fingerprint(row).end()));
  EXPECT_EQ(corpus.Find(fp_before), row);
  EXPECT_EQ(first->der, Bytes(corpus.der(row).begin(), corpus.der(row).end()));
  EXPECT_TRUE(corpus.CheckInvariants());
}

// ------------------------------------------------- DER/parsed round trip ----

// ObserveDer (the streaming raw-DER path) must produce exactly the columns
// Observe produces from the parsed certificate.
TEST(Corpus, ObserveDerMatchesObserve) {
  const util::Timestamp t = util::MakeDate(2014, 3, 1);
  std::vector<x509::CertPtr> leaves;
  for (int i = 0; i < 50; ++i)
    leaves.push_back(MakeTestLeaf("roundtrip-" + std::to_string(i)));

  Pipeline from_certs{x509::CertPool{}};
  Pipeline from_der{x509::CertPool{}};
  from_certs.BeginScan(t);
  from_der.BeginScan(t);
  for (const x509::CertPtr& leaf : leaves) {
    const CertCorpus::Row row = from_certs.Observe({&leaf, 1});
    const BytesView der(leaf->der);
    const auto der_row = from_der.ObserveDer({&der, 1});
    ASSERT_TRUE(der_row.has_value());
    ASSERT_EQ(row, *der_row);
  }
  from_certs.EndScan();
  from_der.EndScan();
  from_certs.Finalize();
  from_der.Finalize();

  const CertCorpus& a = from_certs.corpus();
  const CertCorpus& b = from_der.corpus();
  ASSERT_EQ(a.size(), b.size());
  for (CertCorpus::Row r = 0; r < a.size(); ++r) {
    EXPECT_EQ(Bytes(a.fingerprint(r).begin(), a.fingerprint(r).end()),
              Bytes(b.fingerprint(r).begin(), b.fingerprint(r).end()));
    EXPECT_EQ(Bytes(a.der(r).begin(), a.der(r).end()),
              Bytes(b.der(r).begin(), b.der(r).end()));
    EXPECT_EQ(Bytes(a.tbs_der(r).begin(), a.tbs_der(r).end()),
              Bytes(b.tbs_der(r).begin(), b.tbs_der(r).end()));
    EXPECT_EQ(Bytes(a.signature(r).begin(), a.signature(r).end()),
              Bytes(b.signature(r).begin(), b.signature(r).end()));
    EXPECT_EQ(Bytes(a.serial(r).begin(), a.serial(r).end()),
              Bytes(b.serial(r).begin(), b.serial(r).end()));
    EXPECT_EQ(a.sig_type(r), b.sig_type(r));
    EXPECT_EQ(a.is_ca(r), b.is_ca(r));
    EXPECT_EQ(a.is_ev(r), b.is_ev(r));
    EXPECT_EQ(a.not_before(r), b.not_before(r));
    EXPECT_EQ(a.not_after(r), b.not_after(r));
    EXPECT_EQ(a.valid(r), b.valid(r));
    EXPECT_EQ(Bytes(a.name_der(a.issuer_id(r)).begin(),
                    a.name_der(a.issuer_id(r)).end()),
              Bytes(b.name_der(b.issuer_id(r)).begin(),
                    b.name_der(b.issuer_id(r)).end()));
    ASSERT_EQ(a.crl_url_ids(r).size(), b.crl_url_ids(r).size());
    for (std::size_t u = 0; u < a.crl_url_ids(r).size(); ++u)
      EXPECT_EQ(a.url(a.crl_url_ids(r)[u]), b.url(b.crl_url_ids(r)[u]));
    ASSERT_EQ(a.ocsp_url_ids(r).size(), b.ocsp_url_ids(r).size());
    for (std::size_t u = 0; u < a.ocsp_url_ids(r).size(); ++u)
      EXPECT_EQ(a.url(a.ocsp_url_ids(r)[u]), b.url(b.ocsp_url_ids(r)[u]));
  }
  EXPECT_TRUE(b.CheckInvariants());
}

// Lazy materialization re-parses the arena DER into the same certificate.
TEST(Corpus, LazyCertMatchesSource) {
  Pipeline pipeline{x509::CertPool{}};
  const x509::CertPtr leaf = MakeTestLeaf("lazy.sim");
  pipeline.BeginScan(util::MakeDate(2014, 1, 1));
  const CertCorpus::Row row = pipeline.Observe({&leaf, 1});
  pipeline.EndScan();

  const x509::CertPtr parsed = pipeline.corpus().cert(row);
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->der, leaf->der);
  EXPECT_EQ(parsed->tbs_der, leaf->tbs_der);
  EXPECT_EQ(parsed->Fingerprint(), leaf->Fingerprint());
  EXPECT_TRUE(parsed->tbs.subject == leaf->tbs.subject);
  // Cached: the same shared object comes back.
  EXPECT_EQ(parsed.get(), pipeline.corpus().cert(row).get());
}

}  // namespace
}  // namespace rev::core
