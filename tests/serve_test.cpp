// Serving-frontend tests: epoch-swap index semantics, precomputed-response
// cache expiry, GET/POST handling, admission control (503, never a wrong
// status), determinism across thread counts, and a TSan stress loop
// (`ServeStress.*` is the target scripts/ci.sh runs under ThreadSanitizer).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/simnet.h"
#include "ocsp/ocsp.h"
#include "ocsp/responder.h"
#include "serve/frontend.h"
#include "serve/response_cache.h"
#include "serve/status_index.h"
#include "x509/name.h"

namespace rev::serve {
namespace {

constexpr util::Timestamp kNow = 1'412'208'000;  // 2014-10-02

crypto::KeyPair TestKey(std::string_view label) {
  return crypto::SimKeyFromLabel(label);
}

x509::Certificate MakeIssuerCert(std::string_view key_label = "serve-issuer") {
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial{0x21};
  tbs.issuer = tbs.subject = x509::Name::Make("Serve Test CA", "Test");
  tbs.not_before = 0;
  tbs.not_after = kNow + 100'000'000;
  tbs.public_key = TestKey(key_label).Public();
  tbs.basic_constraints = {true, -1};
  return x509::SignCertificate(tbs, TestKey(key_label));
}

// ---------------------------------------------------------- StatusIndex ----

TEST(StatusIndex, ApplyLookupEraseBumpEpoch) {
  StatusIndex index(4);
  const Bytes hash(32, 0xAB);
  const StatusKey a = MakeStatusKey(hash, x509::Serial{0x01});
  const StatusKey b = MakeStatusKey(hash, x509::Serial{0x02});
  EXPECT_EQ(index.epoch(), 0u);

  index.Apply({{a, StatusIndex::Record{ocsp::CertStatus::kGood, 0,
                                       x509::ReasonCode::kNoReasonCode}},
               {b, StatusIndex::Record{ocsp::CertStatus::kRevoked, kNow - 5,
                                       x509::ReasonCode::kKeyCompromise}}});
  EXPECT_EQ(index.epoch(), 1u);  // one batch = one epoch, not one per record
  EXPECT_EQ(index.size(), 2u);
  const auto got = index.Lookup(b);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->status, ocsp::CertStatus::kRevoked);
  EXPECT_EQ(got->revocation_time, kNow - 5);

  index.Apply({{a, std::nullopt}});  // erase -> serve `unknown`
  EXPECT_EQ(index.epoch(), 2u);
  EXPECT_FALSE(index.Lookup(a));
  EXPECT_EQ(index.size(), 1u);

  const auto keys = index.SortedKeys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], b);
  EXPECT_EQ(SerialOfKey(b), (x509::Serial{0x02}));
  EXPECT_EQ(Bytes(IssuerHashOfKey(b).begin(), IssuerHashOfKey(b).end()), hash);
}

// -------------------------------------------------------- ResponseCache ----

TEST(ResponseCache, ServeUntilIsExclusive) {
  ResponseCache cache(2);
  const Bytes hash(32, 0x01);
  const StatusKey key = MakeStatusKey(hash, x509::Serial{0x09});
  ResponseCache::Entry entry;
  entry.der = std::make_shared<const Bytes>(Bytes{1, 2, 3});
  entry.signed_at = kNow;
  entry.serve_until = kNow + 100;
  cache.Put(key, entry);

  EXPECT_EQ(cache.Get(key, kNow).outcome, ResponseCache::Outcome::kHit);
  EXPECT_EQ(cache.Get(key, kNow + 99).outcome, ResponseCache::Outcome::kHit);
  EXPECT_EQ(cache.Get(key, kNow + 100).outcome,
            ResponseCache::Outcome::kExpired);

  EXPECT_TRUE(cache.KeysStaleBy(kNow + 99).empty());
  EXPECT_EQ(cache.KeysStaleBy(kNow + 100).size(), 1u);

  cache.Invalidate(key);
  EXPECT_EQ(cache.Get(key, kNow).outcome, ResponseCache::Outcome::kMiss);
  EXPECT_EQ(cache.size(), 0u);
}

// ------------------------------------------------------------- Frontend ----

class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest()
      : issuer_(MakeIssuerCert()),
        responder_(issuer_, TestKey("serve-issuer"), 4 * util::kSecondsPerDay) {
    frontend_.AttachResponder(&responder_);
  }

  ocsp::OcspRequest RequestFor(const x509::Serial& serial) {
    ocsp::OcspRequest request;
    request.cert_ids = {ocsp::MakeCertId(issuer_, serial)};
    return request;
  }

  Frontend::ServeResult Post(const x509::Serial& serial,
                             util::Timestamp now = kNow) {
    return frontend_.Serve(ocsp::EncodeOcspRequest(RequestFor(serial)), now);
  }

  ocsp::CertStatus StatusOf(const Frontend::ServeResult& result) {
    EXPECT_TRUE(result.body);
    auto parsed = ocsp::ParseOcspResponse(*result.body);
    EXPECT_TRUE(parsed);
    return parsed ? parsed->single.status : ocsp::CertStatus::kUnknown;
  }

  x509::Certificate issuer_;
  ocsp::Responder responder_;
  // Declared after responder_ so the frontend detaches its observer first.
  Frontend frontend_;
};

TEST_F(FrontendTest, MissThenHitServesIdenticalBytes) {
  responder_.AddCertificate(x509::Serial{0x42});
  const auto first = Post(x509::Serial{0x42});
  EXPECT_EQ(first.http_status, 200);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(StatusOf(first), ocsp::CertStatus::kGood);

  const auto second = Post(x509::Serial{0x42});
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(*first.body, *second.body);

  const Frontend::Counters counters = frontend_.counters();
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.cache_misses, 1u);
  EXPECT_EQ(counters.cache_hits, 1u);
  EXPECT_EQ(counters.signed_on_demand, 1u);
}

TEST_F(FrontendTest, RemoveYieldsUnknownAndIsNeverCached) {
  responder_.AddCertificate(x509::Serial{0x50});
  EXPECT_EQ(StatusOf(Post(x509::Serial{0x50})), ocsp::CertStatus::kGood);

  responder_.Remove(x509::Serial{0x50});
  const auto after = Post(x509::Serial{0x50});
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(StatusOf(after), ocsp::CertStatus::kUnknown);

  // Unknowns never enter the cache (unbounded-growth guard): a repeat query
  // is still a miss, not a hit.
  const auto repeat = Post(x509::Serial{0x50});
  EXPECT_FALSE(repeat.cache_hit);
  EXPECT_EQ(StatusOf(repeat), ocsp::CertStatus::kUnknown);
  EXPECT_EQ(frontend_.cache().size(), 0u);
}

TEST_F(FrontendTest, RevokedWithReasonCode) {
  responder_.AddCertificate(x509::Serial{0x51});
  responder_.Revoke(x509::Serial{0x51}, kNow - 3600,
                    x509::ReasonCode::kAffiliationChanged);
  const auto result = Post(x509::Serial{0x51});
  auto parsed = ocsp::ParseOcspResponse(*result.body);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kRevoked);
  EXPECT_EQ(parsed->single.revocation_time, kNow - 3600);
  EXPECT_EQ(parsed->single.reason, x509::ReasonCode::kAffiliationChanged);
  EXPECT_TRUE(
      ocsp::VerifyOcspSignature(*parsed, TestKey("serve-issuer").Public()));
}

TEST_F(FrontendTest, GetFormRoundTripThroughHttp) {
  // RFC 6960 Appendix A: base64(request DER) in the GET path — the form
  // browsers favor (§6.2).
  responder_.AddCertificate(x509::Serial{0x52});
  net::HttpRequest http;
  http.method = "GET";
  http.host = "ocsp.serve.test";
  http.path = ocsp::OcspGetPath(RequestFor(x509::Serial{0x52}));
  const net::HttpResponse response = frontend_.HandleHttp(http, kNow);
  EXPECT_EQ(response.status, 200);
  auto parsed = ocsp::ParseOcspResponse(response.body);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kGood);

  // A garbage path is malformed, still HTTP 200 per OCSP-over-HTTP.
  http.path = "/not-base64!!";
  const net::HttpResponse bad = frontend_.HandleHttp(http, kNow);
  EXPECT_EQ(bad.status, 200);
  auto bad_parsed = ocsp::ParseOcspResponse(bad.body);
  ASSERT_TRUE(bad_parsed);
  EXPECT_EQ(bad_parsed->status, ocsp::ResponseStatus::kMalformedRequest);
}

TEST_F(FrontendTest, NoncedRequestBypassesCacheAndEchoesNonce) {
  responder_.AddCertificate(x509::Serial{0x53});
  ocsp::OcspRequest request = RequestFor(x509::Serial{0x53});
  request.nonce = Bytes{0xDE, 0xAD, 0xBE, 0xEF};
  const Bytes der = ocsp::EncodeOcspRequest(request);

  for (int i = 0; i < 2; ++i) {
    const auto result = frontend_.Serve(der, kNow);
    EXPECT_FALSE(result.cache_hit);  // a nonce makes the response unique
    auto parsed = ocsp::ParseOcspResponse(*result.body);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->nonce, request.nonce);
    EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kGood);
  }
  EXPECT_EQ(frontend_.counters().cache_hits, 0u);
}

TEST_F(FrontendTest, MultiCertRequestAnswersAllInOrder) {
  responder_.AddCertificate(x509::Serial{0x54});
  responder_.Revoke(x509::Serial{0x54}, kNow - 10,
                    x509::ReasonCode::kKeyCompromise);
  responder_.AddCertificate(x509::Serial{0x55});
  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(issuer_, x509::Serial{0x54}),
                      ocsp::MakeCertId(issuer_, x509::Serial{0x55})};
  const auto result = frontend_.Serve(ocsp::EncodeOcspRequest(request), kNow);
  auto parsed = ocsp::ParseOcspResponse(*result.body);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->singles.size(), 2u);
  EXPECT_EQ(parsed->singles[0].status, ocsp::CertStatus::kRevoked);
  EXPECT_EQ(parsed->singles[1].status, ocsp::CertStatus::kGood);
}

TEST_F(FrontendTest, ForeignIssuerIsUnauthorized) {
  const x509::Certificate other = MakeIssuerCert("other-issuer");
  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(other, x509::Serial{0x01})};
  const auto result = frontend_.Serve(ocsp::EncodeOcspRequest(request), kNow);
  EXPECT_EQ(result.http_status, 200);
  auto parsed = ocsp::ParseOcspResponse(*result.body);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, ocsp::ResponseStatus::kUnauthorized);
  EXPECT_EQ(frontend_.counters().unauthorized, 1u);
}

TEST_F(FrontendTest, CachedGoodNeverOutlivesScheduledRevocation) {
  // A revocation scheduled for the future must cap the serving window of
  // the pre-signed "good" response (the SignEntry serve_until clamp).
  responder_.AddCertificate(x509::Serial{0x56});
  EXPECT_EQ(StatusOf(Post(x509::Serial{0x56})), ocsp::CertStatus::kGood);

  const util::Timestamp effect = kNow + 500;
  responder_.Revoke(x509::Serial{0x56}, effect, x509::ReasonCode::kSuperseded);

  // Before the revocation takes effect the status still reads good...
  EXPECT_EQ(StatusOf(Post(x509::Serial{0x56}, kNow + 1)),
            ocsp::CertStatus::kGood);
  const auto still_good = Post(x509::Serial{0x56}, effect - 1);
  EXPECT_TRUE(still_good.cache_hit);
  EXPECT_EQ(StatusOf(still_good), ocsp::CertStatus::kGood);

  // ...and at the effect instant the cached entry has expired: the serve
  // path re-signs and answers revoked. Never a stale good.
  const auto revoked = Post(x509::Serial{0x56}, effect);
  EXPECT_FALSE(revoked.cache_hit);
  EXPECT_EQ(StatusOf(revoked), ocsp::CertStatus::kRevoked);
}

TEST_F(FrontendTest, StapleServesFromCacheAndRejectsForeignIssuer) {
  responder_.AddCertificate(x509::Serial{0x57});
  frontend_.RebuildAll(kNow);
  const auto der =
      frontend_.Staple(responder_.issuer_key_hash(), x509::Serial{0x57}, kNow);
  ASSERT_TRUE(der);
  auto parsed = ocsp::ParseOcspResponse(*der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kGood);
  EXPECT_GE(frontend_.counters().cache_hits, 1u);

  const Bytes foreign(32, 0x77);
  EXPECT_EQ(frontend_.Staple(foreign, x509::Serial{0x57}, kNow), nullptr);
}

TEST_F(FrontendTest, RefreshStaleResignsAndDropsRemoved) {
  responder_.AddCertificate(x509::Serial{0x58});
  responder_.AddCertificate(x509::Serial{0x59});
  Post(x509::Serial{0x58});
  Post(x509::Serial{0x59});
  // Fresh entries (4-day validity) are outside the 1-day refresh headroom.
  EXPECT_EQ(frontend_.RefreshStale(kNow), 0u);

  responder_.Remove(x509::Serial{0x59});
  const util::Timestamp later = kNow + 3 * util::kSecondsPerDay + 1;
  // 0x58 is re-signed; 0x59 left the index and must not be refreshed.
  EXPECT_EQ(frontend_.RefreshStale(later), 1u);
  EXPECT_EQ(frontend_.counters().refreshed, 1u);

  const auto hit = Post(x509::Serial{0x58}, later);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(StatusOf(hit), ocsp::CertStatus::kGood);
  const auto unknown = Post(x509::Serial{0x59}, later);
  EXPECT_FALSE(unknown.cache_hit);
  EXPECT_EQ(StatusOf(unknown), ocsp::CertStatus::kUnknown);
}

// ------------------------------------------------- admission / shedding ----

TEST(FrontendAdmission, ShedsWith503AndNeverAWrongStatus) {
  x509::Certificate issuer = MakeIssuerCert("shed-issuer");
  ocsp::Responder responder(issuer, TestKey("shed-issuer"));
  FrontendOptions options;
  options.num_shards = 1;
  options.per_shard_queue = 1;
  options.retry_after_seconds = 7;
  Frontend frontend(options);
  frontend.AttachResponder(&responder);
  responder.AddCertificate(x509::Serial{0x01});

  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(issuer, x509::Serial{0x01})};
  const Bytes der = ocsp::EncodeOcspRequest(request);

  ASSERT_TRUE(frontend.TryEnterShard(0));   // saturate the only slot
  EXPECT_FALSE(frontend.TryEnterShard(0));  // budget of 1 is exhausted

  const auto shed = frontend.Serve(der, kNow);
  EXPECT_EQ(shed.http_status, 503);
  EXPECT_EQ(shed.retry_after, 7);
  auto parsed = ocsp::ParseOcspResponse(*shed.body);
  ASSERT_TRUE(parsed);
  // Overload answers tryLater — never a definitive (possibly wrong) status.
  EXPECT_EQ(parsed->status, ocsp::ResponseStatus::kTryLater);
  EXPECT_EQ(frontend.counters().shed, 1u);

  // The 503 carries Retry-After through the HTTP adapter too.
  net::HttpRequest http;
  http.method = "POST";
  http.body = der;
  const net::HttpResponse http_response = frontend.HandleHttp(http, kNow);
  EXPECT_EQ(http_response.status, 503);
  EXPECT_EQ(http_response.retry_after, 7);

  frontend.ExitShard(0);
  const auto ok = frontend.Serve(der, kNow);
  EXPECT_EQ(ok.http_status, 200);
  auto ok_parsed = ocsp::ParseOcspResponse(*ok.body);
  ASSERT_TRUE(ok_parsed);
  EXPECT_EQ(ok_parsed->single.status, ocsp::CertStatus::kGood);
}

// ---------------------------------------------------------- determinism ----

TEST(FrontendDeterminism, RebuildByteIdenticalAcrossThreadCounts) {
  const x509::Certificate issuer = MakeIssuerCert("det-issuer");
  ocsp::Responder r_serial(issuer, TestKey("det-issuer"));
  ocsp::Responder r_parallel(issuer, TestKey("det-issuer"));
  const auto seed = [&](ocsp::Responder& r) {
    for (int i = 1; i <= 64; ++i) {
      const x509::Serial serial{static_cast<std::uint8_t>(i), 0x5A};
      r.AddCertificate(serial);
      if (i % 3 == 0)
        r.Revoke(serial, kNow - i, x509::ReasonCode::kSuperseded);
      if (i % 7 == 0) r.Remove(serial);
    }
  };
  seed(r_serial);
  seed(r_parallel);

  FrontendOptions serial_options;
  serial_options.threads = 1;
  FrontendOptions parallel_options;
  parallel_options.threads = 4;
  Frontend f_serial(serial_options);
  Frontend f_parallel(parallel_options);
  f_serial.AttachResponder(&r_serial);
  f_parallel.AttachResponder(&r_parallel);

  const std::size_t n_serial = f_serial.RebuildAll(kNow);
  const std::size_t n_parallel = f_parallel.RebuildAll(kNow);
  EXPECT_EQ(n_serial, n_parallel);
  EXPECT_GT(n_serial, 0u);

  for (int i = 1; i <= 64; ++i) {
    const x509::Serial serial{static_cast<std::uint8_t>(i), 0x5A};
    const auto a = f_serial.Staple(r_serial.issuer_key_hash(), serial, kNow);
    const auto b =
        f_parallel.Staple(r_parallel.issuer_key_hash(), serial, kNow);
    ASSERT_TRUE(a);
    ASSERT_TRUE(b);
    EXPECT_EQ(*a, *b) << "divergent response for serial " << i;
  }
}

// --------------------------------------------------------------- stress ----

TEST(ServeStress, ConcurrentServeMutateRefresh) {
  const x509::Certificate issuer = MakeIssuerCert("stress-issuer");
  ocsp::Responder responder(issuer, TestKey("stress-issuer"));
  FrontendOptions options;
  options.num_shards = 4;
  Frontend frontend(options);
  frontend.AttachResponder(&responder);

  constexpr int kSerials = 32;
  for (int i = 1; i <= kSerials; ++i)
    responder.AddCertificate(x509::Serial{static_cast<std::uint8_t>(i)});
  frontend.RebuildAll(kNow);

  // Fixed per-reader iteration counts keep the test deterministic on a
  // single core, where a stop-flag loop can end before readers ever run.
  constexpr int kIterations = 200;
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int i = t; i < t + kIterations; ++i) {
        ocsp::OcspRequest request;
        request.cert_ids = {ocsp::MakeCertId(
            issuer, x509::Serial{static_cast<std::uint8_t>(i % kSerials + 1)})};
        const auto result =
            frontend.Serve(ocsp::EncodeOcspRequest(request), kNow + i % 100);
        EXPECT_TRUE(result.http_status == 200 || result.http_status == 503);
        if (result.http_status == 200) EXPECT_TRUE(result.body);
      }
    });
  }

  // Mutate and refresh while the readers hammer the serve path.
  for (int i = 1; i <= kSerials; ++i) {
    responder.Revoke(x509::Serial{static_cast<std::uint8_t>(i)}, kNow + i,
                     x509::ReasonCode::kCessationOfOperation);
    if (i % 8 == 0) frontend.RefreshStale(kNow + i);
  }
  frontend.RebuildAll(kNow + kSerials);

  for (auto& reader : readers) reader.join();

  const Frontend::Counters counters = frontend.counters();
  EXPECT_EQ(counters.requests, 4u * kIterations);
  EXPECT_EQ(counters.malformed, 0u);
  EXPECT_EQ(counters.unauthorized, 0u);
}

// ------------------------------------------------------ attach latching ----

TEST(FrontendAttach, LateAttachThrowsAfterServingStarts) {
  x509::Certificate first = MakeIssuerCert("latch-issuer-a");
  x509::Certificate second = MakeIssuerCert("latch-issuer-b");
  ocsp::Responder responder_a(first, TestKey("latch-issuer-a"));
  ocsp::Responder responder_b(second, TestKey("latch-issuer-b"));
  Frontend frontend;
  frontend.AttachResponder(&responder_a);
  responder_a.AddCertificate(x509::Serial{0x01});

  // The first request latches the routing table read-only...
  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(first, x509::Serial{0x01})};
  const auto result = frontend.Serve(ocsp::EncodeOcspRequest(request), kNow);
  EXPECT_EQ(result.http_status, 200);

  // ...so a late attach fails loudly instead of racing the lock-free
  // readers.
  EXPECT_THROW(frontend.AttachResponder(&responder_b), std::logic_error);
}

TEST(FrontendAttach, StapleAndMaintenanceAlsoLatch) {
  x509::Certificate issuer = MakeIssuerCert("latch-issuer-c");
  x509::Certificate other = MakeIssuerCert("latch-issuer-d");
  ocsp::Responder responder(issuer, TestKey("latch-issuer-c"));
  ocsp::Responder late(other, TestKey("latch-issuer-d"));

  {
    Frontend frontend;
    frontend.AttachResponder(&responder);
    frontend.Staple(responder.issuer_key_hash(), x509::Serial{0x01}, kNow);
    EXPECT_THROW(frontend.AttachResponder(&late), std::logic_error);
  }
  {
    Frontend frontend;
    frontend.AttachResponder(&responder);
    frontend.RebuildAll(kNow);
    EXPECT_THROW(frontend.AttachResponder(&late), std::logic_error);
  }
}

// Regression: a route registered after the first ServeBatch must fail
// loudly, and the error must NAME the offending path — with several
// subsystems registering routes (cascade distribution, fleet replication)
// an anonymous "serving already started" left the caller unidentifiable.
TEST(FrontendAttach, LateAddRouteAfterServeBatchNamesThePath) {
  x509::Certificate issuer = MakeIssuerCert("latch-issuer-g");
  ocsp::Responder responder(issuer, TestKey("latch-issuer-g"));
  Frontend frontend;
  frontend.AttachResponder(&responder);
  responder.AddCertificate(x509::Serial{0x31});

  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(issuer, x509::Serial{0x31})};
  const Bytes der = ocsp::EncodeOcspRequest(request);
  const std::vector<BytesView> batch{BytesView(der)};
  ASSERT_EQ(frontend.ServeBatch(batch, kNow).size(), 1u);

  try {
    frontend.AddRoute("/fleet/snapshot",
                      [](const net::HttpRequest&, util::Timestamp) {
                        return net::HttpResponse{};
                      });
    FAIL() << "late AddRoute must throw";
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string(error.what()).find("/fleet/snapshot"),
              std::string::npos)
        << "error must name the offending route: " << error.what();
  }
}

// TSan regression for the original bug: AttachResponder used to mutate the
// routing table with no synchronization, so an attach racing the serve
// path was a data race. Now the latch forces the late attach onto the
// throwing path while readers keep serving lock-free — this test runs
// under ThreadSanitizer in scripts/ci.sh.
TEST(FrontendAttach, ConcurrentLateAttachIsRejectedRaceFree) {
  x509::Certificate issuer = MakeIssuerCert("latch-issuer-e");
  x509::Certificate other = MakeIssuerCert("latch-issuer-f");
  ocsp::Responder responder(issuer, TestKey("latch-issuer-e"));
  ocsp::Responder late(other, TestKey("latch-issuer-f"));
  Frontend frontend;
  frontend.AttachResponder(&responder);
  responder.AddCertificate(x509::Serial{0x02});

  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(issuer, x509::Serial{0x02})};
  const Bytes der = ocsp::EncodeOcspRequest(request);
  ASSERT_EQ(frontend.Serve(der, kNow).http_status, 200);  // latch is set

  constexpr int kServesPerThread = 200;
  std::vector<std::thread> servers;
  for (int t = 0; t < 3; ++t) {
    servers.emplace_back([&] {
      for (int i = 0; i < kServesPerThread; ++i)
        EXPECT_EQ(frontend.Serve(der, kNow + i).http_status, 200);
    });
  }
  std::atomic<int> rejected{0};
  std::thread attacher([&] {
    for (int i = 0; i < 50; ++i) {
      try {
        frontend.AttachResponder(&late);
      } catch (const std::logic_error&) {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (auto& server : servers) server.join();
  attacher.join();
  EXPECT_EQ(rejected.load(), 50);  // every late attach was rejected
}

// ------------------------------------------------------ expiry boundary ----

TEST_F(FrontendTest, ExactBoundaryRevocationScheduledAtTQueriedAtT) {
  // Cache a "good" whose serving window is clamped to a revocation
  // scheduled exactly at t; a query at exactly t must re-sign and answer
  // revoked — serve_until is exclusive, with no off-by-one at the boundary.
  responder_.AddCertificate(x509::Serial{0x60});
  const util::Timestamp t = kNow + 250;
  responder_.Revoke(x509::Serial{0x60}, t, x509::ReasonCode::kSuperseded);

  const auto before = Post(x509::Serial{0x60}, kNow);
  EXPECT_EQ(StatusOf(before), ocsp::CertStatus::kGood);
  EXPECT_TRUE(Post(x509::Serial{0x60}, t - 1).cache_hit);

  const auto at_boundary = Post(x509::Serial{0x60}, t);
  EXPECT_FALSE(at_boundary.cache_hit);
  EXPECT_EQ(StatusOf(at_boundary), ocsp::CertStatus::kRevoked);
  EXPECT_GE(frontend_.counters().cache_expired, 1u);
}

TEST_F(FrontendTest, ExactBoundaryNextUpdateIsNeverServed) {
  // The other edge of the window: a response must not be served at or past
  // its own nextUpdate (validity is 4 days in this fixture).
  responder_.AddCertificate(x509::Serial{0x61});
  const auto first = Post(x509::Serial{0x61}, kNow);
  EXPECT_EQ(StatusOf(first), ocsp::CertStatus::kGood);
  const util::Timestamp next_update = kNow + 4 * util::kSecondsPerDay;

  EXPECT_TRUE(Post(x509::Serial{0x61}, next_update - 1).cache_hit);
  const auto at_boundary = Post(x509::Serial{0x61}, next_update);
  EXPECT_FALSE(at_boundary.cache_hit);
  EXPECT_EQ(StatusOf(at_boundary), ocsp::CertStatus::kGood);  // re-signed
}

TEST(FrontendBatchBoundary, BatchPathRespectsScheduledRevocationInstant) {
  x509::Certificate issuer = MakeIssuerCert("boundary-issuer");
  ocsp::Responder responder(issuer, TestKey("boundary-issuer"));
  Frontend frontend;
  frontend.AttachResponder(&responder);
  responder.AddCertificate(x509::Serial{0x62});
  const util::Timestamp t = kNow + 777;
  responder.Revoke(x509::Serial{0x62}, t, x509::ReasonCode::kKeyCompromise);

  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(issuer, x509::Serial{0x62})};
  const Bytes der = ocsp::EncodeOcspRequest(request);
  const std::vector<BytesView> batch{BytesView(der), BytesView(der)};

  const auto before = frontend.ServeBatch(batch, kNow);
  ASSERT_EQ(before.size(), 2u);
  for (const auto& result : before) {
    ASSERT_TRUE(result.body);
    auto parsed = ocsp::ParseOcspResponse(*result.body);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kGood);
  }
  // First is the signing miss, second coalesces into a hit.
  EXPECT_FALSE(before[0].cache_hit);
  EXPECT_TRUE(before[1].cache_hit);

  const auto at_boundary = frontend.ServeBatch(batch, t);
  ASSERT_EQ(at_boundary.size(), 2u);
  EXPECT_FALSE(at_boundary[0].cache_hit);  // expired at exactly t
  for (const auto& result : at_boundary) {
    auto parsed = ocsp::ParseOcspResponse(*result.body);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kRevoked);
  }
}

// ------------------------------------------------------- batch admission ----

TEST(FrontendBatchAdmission, WatermarkShedsExcessOpsWithRetryAfter) {
  x509::Certificate issuer = MakeIssuerCert("batch-shed-issuer");
  ocsp::Responder responder(issuer, TestKey("batch-shed-issuer"));
  FrontendOptions options;
  options.num_shards = 1;
  options.per_shard_queue = 1;
  options.retry_after_seconds = 9;
  Frontend frontend(options);
  frontend.AttachResponder(&responder);
  responder.AddCertificate(x509::Serial{0x03});

  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(issuer, x509::Serial{0x03})};
  const Bytes der = ocsp::EncodeOcspRequest(request);

  // A batch wider than the shard watermark: one op is admitted, the rest
  // shed with the same 503 + Retry-After contract as the serial path.
  const std::vector<BytesView> batch{BytesView(der), BytesView(der),
                                     BytesView(der)};
  const auto results = frontend.ServeBatch(batch, kNow);
  ASSERT_EQ(results.size(), 3u);
  int served = 0, shed = 0;
  for (const auto& result : results) {
    if (result.http_status == 200) {
      ++served;
      auto parsed = ocsp::ParseOcspResponse(*result.body);
      ASSERT_TRUE(parsed);
      EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kGood);
    } else {
      ++shed;
      EXPECT_EQ(result.http_status, 503);
      EXPECT_EQ(result.retry_after, 9);
      auto parsed = ocsp::ParseOcspResponse(*result.body);
      ASSERT_TRUE(parsed);
      EXPECT_EQ(parsed->status, ocsp::ResponseStatus::kTryLater);
    }
  }
  EXPECT_EQ(served, 1);
  EXPECT_EQ(shed, 2);
  EXPECT_EQ(frontend.counters().shed, 2u);

  // With externally saturated admission the whole batch sheds.
  ASSERT_TRUE(frontend.TryEnterShard(0));
  const auto all_shed = frontend.ServeBatch(batch, kNow);
  for (const auto& result : all_shed) EXPECT_EQ(result.http_status, 503);
  frontend.ExitShard(0);
}

// -------------------------------------------- batch/serial equivalence ----

// The equivalence fixture drives the SAME deterministic request mix —
// duplicates, revoked, unknown, nonced, multi-cert, malformed, foreign
// issuer — through per-request Serve on one frontend and ServeBatch on an
// identically seeded second one, then insists on byte-identical bodies and
// identical counter totals. Runs at 1 and at 8 client threads (the
// threaded variant is a ci.sh TSan target).
class BatchEquivalence : public ::testing::Test {
 protected:
  static constexpr int kSerials = 20;

  void SeedResponder(ocsp::Responder& responder) {
    for (int i = 1; i <= kSerials; ++i) {
      const x509::Serial serial{static_cast<std::uint8_t>(i)};
      responder.AddCertificate(serial);
      if (i % 6 == 3)
        responder.Revoke(serial, kNow - i, x509::ReasonCode::kKeyCompromise);
      if (i % 7 == 0) responder.Remove(serial);  // served as `unknown`
    }
  }

  std::vector<Bytes> BuildMix(const x509::Certificate& issuer,
                              const x509::Certificate& foreign) {
    std::vector<Bytes> mix;
    for (int i = 0; i < 60; ++i) {
      ocsp::OcspRequest request;
      request.cert_ids = {ocsp::MakeCertId(
          issuer,
          x509::Serial{static_cast<std::uint8_t>((i * 7) % kSerials + 1)})};
      if (i % 17 == 5) request.nonce = Bytes{0xAA, static_cast<std::uint8_t>(i)};
      if (i % 13 == 4)
        request.cert_ids.push_back(
            ocsp::MakeCertId(issuer, x509::Serial{0x02}));
      mix.push_back(ocsp::EncodeOcspRequest(request));
    }
    mix.push_back(Bytes{0xFF, 0x00, 0x13});  // malformed
    ocsp::OcspRequest alien;
    alien.cert_ids = {ocsp::MakeCertId(foreign, x509::Serial{0x01})};
    mix.push_back(ocsp::EncodeOcspRequest(alien));  // unauthorized
    return mix;
  }

  static FrontendOptions Options() {
    FrontendOptions options;
    options.num_shards = 4;
    options.per_shard_queue = 1024;  // wide enough that nothing sheds
    return options;
  }

  static void ExpectSameCounters(const Frontend::Counters& serial,
                                 const Frontend::Counters& batch) {
    EXPECT_EQ(serial.requests, batch.requests);
    EXPECT_EQ(serial.cache_hits, batch.cache_hits);
    EXPECT_EQ(serial.cache_misses, batch.cache_misses);
    EXPECT_EQ(serial.cache_expired, batch.cache_expired);
    EXPECT_EQ(serial.signed_on_demand, batch.signed_on_demand);
    EXPECT_EQ(serial.shed, batch.shed);
    EXPECT_EQ(serial.malformed, batch.malformed);
    EXPECT_EQ(serial.unauthorized, batch.unauthorized);
    EXPECT_EQ(serial.status_updates, batch.status_updates);
  }

  void RunAtThreadCount(int threads) {
    const x509::Certificate issuer = MakeIssuerCert("equiv-issuer");
    const x509::Certificate foreign = MakeIssuerCert("equiv-foreign");
    ocsp::Responder r_serial(issuer, TestKey("equiv-issuer"),
                             4 * util::kSecondsPerDay);
    ocsp::Responder r_batch(issuer, TestKey("equiv-issuer"),
                            4 * util::kSecondsPerDay);
    SeedResponder(r_serial);
    SeedResponder(r_batch);

    Frontend f_serial(Options());
    Frontend f_batch(Options());
    f_serial.AttachResponder(&r_serial);
    f_batch.AttachResponder(&r_batch);
    // Apply the bulk load up front so the index epoch is quiescent during
    // the run — hit/miss totals are then a pure function of the mix.
    f_serial.Flush();
    f_batch.Flush();

    const std::vector<Bytes> mix = BuildMix(issuer, foreign);
    const std::size_t n = mix.size();
    std::vector<std::shared_ptr<const Bytes>> serial_bodies(n);
    std::vector<std::shared_ptr<const Bytes>> batch_bodies(n);

    // Contiguous slice per thread; thread t serves [t*stride, ...).
    const std::size_t stride = (n + threads - 1) / threads;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t begin = t * stride;
        const std::size_t end = std::min(n, begin + stride);
        for (std::size_t i = begin; i < end; ++i)
          serial_bodies[i] = f_serial.Serve(mix[i], kNow).body;
      });
    }
    for (auto& worker : workers) worker.join();
    workers.clear();

    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t begin = t * stride;
        const std::size_t end = std::min(n, begin + stride);
        if (begin >= end) return;
        std::vector<BytesView> slice(mix.begin() + begin, mix.begin() + end);
        const auto results = f_batch.ServeBatch(slice, kNow);
        for (std::size_t i = 0; i < results.size(); ++i)
          batch_bodies[begin + i] = results[i].body;
      });
    }
    for (auto& worker : workers) worker.join();

    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(serial_bodies[i]) << "serial index " << i;
      ASSERT_TRUE(batch_bodies[i]) << "batch index " << i;
      EXPECT_EQ(*serial_bodies[i], *batch_bodies[i])
          << "divergent body at index " << i;
    }
    ExpectSameCounters(f_serial.counters(), f_batch.counters());
  }
};

TEST_F(BatchEquivalence, SingleThreadByteIdenticalAndSameCounters) {
  RunAtThreadCount(1);
}

TEST_F(BatchEquivalence, EightThreadsByteIdenticalAndSameCounters) {
  RunAtThreadCount(8);
}

}  // namespace
}  // namespace rev::serve
