// Serving-frontend tests: epoch-swap index semantics, precomputed-response
// cache expiry, GET/POST handling, admission control (503, never a wrong
// status), determinism across thread counts, and a TSan stress loop
// (`ServeStress.*` is the target scripts/ci.sh runs under ThreadSanitizer).
#include <gtest/gtest.h>

#include <thread>

#include "net/simnet.h"
#include "ocsp/ocsp.h"
#include "ocsp/responder.h"
#include "serve/frontend.h"
#include "serve/response_cache.h"
#include "serve/status_index.h"
#include "x509/name.h"

namespace rev::serve {
namespace {

constexpr util::Timestamp kNow = 1'412'208'000;  // 2014-10-02

crypto::KeyPair TestKey(std::string_view label) {
  return crypto::SimKeyFromLabel(label);
}

x509::Certificate MakeIssuerCert(std::string_view key_label = "serve-issuer") {
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial{0x21};
  tbs.issuer = tbs.subject = x509::Name::Make("Serve Test CA", "Test");
  tbs.not_before = 0;
  tbs.not_after = kNow + 100'000'000;
  tbs.public_key = TestKey(key_label).Public();
  tbs.basic_constraints = {true, -1};
  return x509::SignCertificate(tbs, TestKey(key_label));
}

// ---------------------------------------------------------- StatusIndex ----

TEST(StatusIndex, ApplyLookupEraseBumpEpoch) {
  StatusIndex index(4);
  const Bytes hash(32, 0xAB);
  const StatusKey a = MakeStatusKey(hash, x509::Serial{0x01});
  const StatusKey b = MakeStatusKey(hash, x509::Serial{0x02});
  EXPECT_EQ(index.epoch(), 0u);

  index.Apply({{a, StatusIndex::Record{ocsp::CertStatus::kGood, 0,
                                       x509::ReasonCode::kNoReasonCode}},
               {b, StatusIndex::Record{ocsp::CertStatus::kRevoked, kNow - 5,
                                       x509::ReasonCode::kKeyCompromise}}});
  EXPECT_EQ(index.epoch(), 1u);  // one batch = one epoch, not one per record
  EXPECT_EQ(index.size(), 2u);
  const auto got = index.Lookup(b);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->status, ocsp::CertStatus::kRevoked);
  EXPECT_EQ(got->revocation_time, kNow - 5);

  index.Apply({{a, std::nullopt}});  // erase -> serve `unknown`
  EXPECT_EQ(index.epoch(), 2u);
  EXPECT_FALSE(index.Lookup(a));
  EXPECT_EQ(index.size(), 1u);

  const auto keys = index.SortedKeys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], b);
  EXPECT_EQ(SerialOfKey(b), (x509::Serial{0x02}));
  EXPECT_EQ(Bytes(IssuerHashOfKey(b).begin(), IssuerHashOfKey(b).end()), hash);
}

// -------------------------------------------------------- ResponseCache ----

TEST(ResponseCache, ServeUntilIsExclusive) {
  ResponseCache cache(2);
  const Bytes hash(32, 0x01);
  const StatusKey key = MakeStatusKey(hash, x509::Serial{0x09});
  ResponseCache::Entry entry;
  entry.der = std::make_shared<const Bytes>(Bytes{1, 2, 3});
  entry.signed_at = kNow;
  entry.serve_until = kNow + 100;
  cache.Put(key, entry);

  EXPECT_EQ(cache.Get(key, kNow).outcome, ResponseCache::Outcome::kHit);
  EXPECT_EQ(cache.Get(key, kNow + 99).outcome, ResponseCache::Outcome::kHit);
  EXPECT_EQ(cache.Get(key, kNow + 100).outcome,
            ResponseCache::Outcome::kExpired);

  EXPECT_TRUE(cache.KeysStaleBy(kNow + 99).empty());
  EXPECT_EQ(cache.KeysStaleBy(kNow + 100).size(), 1u);

  cache.Invalidate(key);
  EXPECT_EQ(cache.Get(key, kNow).outcome, ResponseCache::Outcome::kMiss);
  EXPECT_EQ(cache.size(), 0u);
}

// ------------------------------------------------------------- Frontend ----

class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest()
      : issuer_(MakeIssuerCert()),
        responder_(issuer_, TestKey("serve-issuer"), 4 * util::kSecondsPerDay) {
    frontend_.AttachResponder(&responder_);
  }

  ocsp::OcspRequest RequestFor(const x509::Serial& serial) {
    ocsp::OcspRequest request;
    request.cert_ids = {ocsp::MakeCertId(issuer_, serial)};
    return request;
  }

  Frontend::ServeResult Post(const x509::Serial& serial,
                             util::Timestamp now = kNow) {
    return frontend_.Serve(ocsp::EncodeOcspRequest(RequestFor(serial)), now);
  }

  ocsp::CertStatus StatusOf(const Frontend::ServeResult& result) {
    EXPECT_TRUE(result.body);
    auto parsed = ocsp::ParseOcspResponse(*result.body);
    EXPECT_TRUE(parsed);
    return parsed ? parsed->single.status : ocsp::CertStatus::kUnknown;
  }

  x509::Certificate issuer_;
  ocsp::Responder responder_;
  // Declared after responder_ so the frontend detaches its observer first.
  Frontend frontend_;
};

TEST_F(FrontendTest, MissThenHitServesIdenticalBytes) {
  responder_.AddCertificate(x509::Serial{0x42});
  const auto first = Post(x509::Serial{0x42});
  EXPECT_EQ(first.http_status, 200);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(StatusOf(first), ocsp::CertStatus::kGood);

  const auto second = Post(x509::Serial{0x42});
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(*first.body, *second.body);

  const Frontend::Counters counters = frontend_.counters();
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.cache_misses, 1u);
  EXPECT_EQ(counters.cache_hits, 1u);
  EXPECT_EQ(counters.signed_on_demand, 1u);
}

TEST_F(FrontendTest, RemoveYieldsUnknownAndIsNeverCached) {
  responder_.AddCertificate(x509::Serial{0x50});
  EXPECT_EQ(StatusOf(Post(x509::Serial{0x50})), ocsp::CertStatus::kGood);

  responder_.Remove(x509::Serial{0x50});
  const auto after = Post(x509::Serial{0x50});
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(StatusOf(after), ocsp::CertStatus::kUnknown);

  // Unknowns never enter the cache (unbounded-growth guard): a repeat query
  // is still a miss, not a hit.
  const auto repeat = Post(x509::Serial{0x50});
  EXPECT_FALSE(repeat.cache_hit);
  EXPECT_EQ(StatusOf(repeat), ocsp::CertStatus::kUnknown);
  EXPECT_EQ(frontend_.cache().size(), 0u);
}

TEST_F(FrontendTest, RevokedWithReasonCode) {
  responder_.AddCertificate(x509::Serial{0x51});
  responder_.Revoke(x509::Serial{0x51}, kNow - 3600,
                    x509::ReasonCode::kAffiliationChanged);
  const auto result = Post(x509::Serial{0x51});
  auto parsed = ocsp::ParseOcspResponse(*result.body);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kRevoked);
  EXPECT_EQ(parsed->single.revocation_time, kNow - 3600);
  EXPECT_EQ(parsed->single.reason, x509::ReasonCode::kAffiliationChanged);
  EXPECT_TRUE(
      ocsp::VerifyOcspSignature(*parsed, TestKey("serve-issuer").Public()));
}

TEST_F(FrontendTest, GetFormRoundTripThroughHttp) {
  // RFC 6960 Appendix A: base64(request DER) in the GET path — the form
  // browsers favor (§6.2).
  responder_.AddCertificate(x509::Serial{0x52});
  net::HttpRequest http;
  http.method = "GET";
  http.host = "ocsp.serve.test";
  http.path = ocsp::OcspGetPath(RequestFor(x509::Serial{0x52}));
  const net::HttpResponse response = frontend_.HandleHttp(http, kNow);
  EXPECT_EQ(response.status, 200);
  auto parsed = ocsp::ParseOcspResponse(response.body);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kGood);

  // A garbage path is malformed, still HTTP 200 per OCSP-over-HTTP.
  http.path = "/not-base64!!";
  const net::HttpResponse bad = frontend_.HandleHttp(http, kNow);
  EXPECT_EQ(bad.status, 200);
  auto bad_parsed = ocsp::ParseOcspResponse(bad.body);
  ASSERT_TRUE(bad_parsed);
  EXPECT_EQ(bad_parsed->status, ocsp::ResponseStatus::kMalformedRequest);
}

TEST_F(FrontendTest, NoncedRequestBypassesCacheAndEchoesNonce) {
  responder_.AddCertificate(x509::Serial{0x53});
  ocsp::OcspRequest request = RequestFor(x509::Serial{0x53});
  request.nonce = Bytes{0xDE, 0xAD, 0xBE, 0xEF};
  const Bytes der = ocsp::EncodeOcspRequest(request);

  for (int i = 0; i < 2; ++i) {
    const auto result = frontend_.Serve(der, kNow);
    EXPECT_FALSE(result.cache_hit);  // a nonce makes the response unique
    auto parsed = ocsp::ParseOcspResponse(*result.body);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->nonce, request.nonce);
    EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kGood);
  }
  EXPECT_EQ(frontend_.counters().cache_hits, 0u);
}

TEST_F(FrontendTest, MultiCertRequestAnswersAllInOrder) {
  responder_.AddCertificate(x509::Serial{0x54});
  responder_.Revoke(x509::Serial{0x54}, kNow - 10,
                    x509::ReasonCode::kKeyCompromise);
  responder_.AddCertificate(x509::Serial{0x55});
  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(issuer_, x509::Serial{0x54}),
                      ocsp::MakeCertId(issuer_, x509::Serial{0x55})};
  const auto result = frontend_.Serve(ocsp::EncodeOcspRequest(request), kNow);
  auto parsed = ocsp::ParseOcspResponse(*result.body);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->singles.size(), 2u);
  EXPECT_EQ(parsed->singles[0].status, ocsp::CertStatus::kRevoked);
  EXPECT_EQ(parsed->singles[1].status, ocsp::CertStatus::kGood);
}

TEST_F(FrontendTest, ForeignIssuerIsUnauthorized) {
  const x509::Certificate other = MakeIssuerCert("other-issuer");
  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(other, x509::Serial{0x01})};
  const auto result = frontend_.Serve(ocsp::EncodeOcspRequest(request), kNow);
  EXPECT_EQ(result.http_status, 200);
  auto parsed = ocsp::ParseOcspResponse(*result.body);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, ocsp::ResponseStatus::kUnauthorized);
  EXPECT_EQ(frontend_.counters().unauthorized, 1u);
}

TEST_F(FrontendTest, CachedGoodNeverOutlivesScheduledRevocation) {
  // A revocation scheduled for the future must cap the serving window of
  // the pre-signed "good" response (the SignEntry serve_until clamp).
  responder_.AddCertificate(x509::Serial{0x56});
  EXPECT_EQ(StatusOf(Post(x509::Serial{0x56})), ocsp::CertStatus::kGood);

  const util::Timestamp effect = kNow + 500;
  responder_.Revoke(x509::Serial{0x56}, effect, x509::ReasonCode::kSuperseded);

  // Before the revocation takes effect the status still reads good...
  EXPECT_EQ(StatusOf(Post(x509::Serial{0x56}, kNow + 1)),
            ocsp::CertStatus::kGood);
  const auto still_good = Post(x509::Serial{0x56}, effect - 1);
  EXPECT_TRUE(still_good.cache_hit);
  EXPECT_EQ(StatusOf(still_good), ocsp::CertStatus::kGood);

  // ...and at the effect instant the cached entry has expired: the serve
  // path re-signs and answers revoked. Never a stale good.
  const auto revoked = Post(x509::Serial{0x56}, effect);
  EXPECT_FALSE(revoked.cache_hit);
  EXPECT_EQ(StatusOf(revoked), ocsp::CertStatus::kRevoked);
}

TEST_F(FrontendTest, StapleServesFromCacheAndRejectsForeignIssuer) {
  responder_.AddCertificate(x509::Serial{0x57});
  frontend_.RebuildAll(kNow);
  const auto der =
      frontend_.Staple(responder_.issuer_key_hash(), x509::Serial{0x57}, kNow);
  ASSERT_TRUE(der);
  auto parsed = ocsp::ParseOcspResponse(*der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kGood);
  EXPECT_GE(frontend_.counters().cache_hits, 1u);

  const Bytes foreign(32, 0x77);
  EXPECT_EQ(frontend_.Staple(foreign, x509::Serial{0x57}, kNow), nullptr);
}

TEST_F(FrontendTest, RefreshStaleResignsAndDropsRemoved) {
  responder_.AddCertificate(x509::Serial{0x58});
  responder_.AddCertificate(x509::Serial{0x59});
  Post(x509::Serial{0x58});
  Post(x509::Serial{0x59});
  // Fresh entries (4-day validity) are outside the 1-day refresh headroom.
  EXPECT_EQ(frontend_.RefreshStale(kNow), 0u);

  responder_.Remove(x509::Serial{0x59});
  const util::Timestamp later = kNow + 3 * util::kSecondsPerDay + 1;
  // 0x58 is re-signed; 0x59 left the index and must not be refreshed.
  EXPECT_EQ(frontend_.RefreshStale(later), 1u);
  EXPECT_EQ(frontend_.counters().refreshed, 1u);

  const auto hit = Post(x509::Serial{0x58}, later);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(StatusOf(hit), ocsp::CertStatus::kGood);
  const auto unknown = Post(x509::Serial{0x59}, later);
  EXPECT_FALSE(unknown.cache_hit);
  EXPECT_EQ(StatusOf(unknown), ocsp::CertStatus::kUnknown);
}

// ------------------------------------------------- admission / shedding ----

TEST(FrontendAdmission, ShedsWith503AndNeverAWrongStatus) {
  x509::Certificate issuer = MakeIssuerCert("shed-issuer");
  ocsp::Responder responder(issuer, TestKey("shed-issuer"));
  FrontendOptions options;
  options.num_shards = 1;
  options.per_shard_queue = 1;
  options.retry_after_seconds = 7;
  Frontend frontend(options);
  frontend.AttachResponder(&responder);
  responder.AddCertificate(x509::Serial{0x01});

  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(issuer, x509::Serial{0x01})};
  const Bytes der = ocsp::EncodeOcspRequest(request);

  ASSERT_TRUE(frontend.TryEnterShard(0));   // saturate the only slot
  EXPECT_FALSE(frontend.TryEnterShard(0));  // budget of 1 is exhausted

  const auto shed = frontend.Serve(der, kNow);
  EXPECT_EQ(shed.http_status, 503);
  EXPECT_EQ(shed.retry_after, 7);
  auto parsed = ocsp::ParseOcspResponse(*shed.body);
  ASSERT_TRUE(parsed);
  // Overload answers tryLater — never a definitive (possibly wrong) status.
  EXPECT_EQ(parsed->status, ocsp::ResponseStatus::kTryLater);
  EXPECT_EQ(frontend.counters().shed, 1u);

  // The 503 carries Retry-After through the HTTP adapter too.
  net::HttpRequest http;
  http.method = "POST";
  http.body = der;
  const net::HttpResponse http_response = frontend.HandleHttp(http, kNow);
  EXPECT_EQ(http_response.status, 503);
  EXPECT_EQ(http_response.retry_after, 7);

  frontend.ExitShard(0);
  const auto ok = frontend.Serve(der, kNow);
  EXPECT_EQ(ok.http_status, 200);
  auto ok_parsed = ocsp::ParseOcspResponse(*ok.body);
  ASSERT_TRUE(ok_parsed);
  EXPECT_EQ(ok_parsed->single.status, ocsp::CertStatus::kGood);
}

// ---------------------------------------------------------- determinism ----

TEST(FrontendDeterminism, RebuildByteIdenticalAcrossThreadCounts) {
  const x509::Certificate issuer = MakeIssuerCert("det-issuer");
  ocsp::Responder r_serial(issuer, TestKey("det-issuer"));
  ocsp::Responder r_parallel(issuer, TestKey("det-issuer"));
  const auto seed = [&](ocsp::Responder& r) {
    for (int i = 1; i <= 64; ++i) {
      const x509::Serial serial{static_cast<std::uint8_t>(i), 0x5A};
      r.AddCertificate(serial);
      if (i % 3 == 0)
        r.Revoke(serial, kNow - i, x509::ReasonCode::kSuperseded);
      if (i % 7 == 0) r.Remove(serial);
    }
  };
  seed(r_serial);
  seed(r_parallel);

  FrontendOptions serial_options;
  serial_options.threads = 1;
  FrontendOptions parallel_options;
  parallel_options.threads = 4;
  Frontend f_serial(serial_options);
  Frontend f_parallel(parallel_options);
  f_serial.AttachResponder(&r_serial);
  f_parallel.AttachResponder(&r_parallel);

  const std::size_t n_serial = f_serial.RebuildAll(kNow);
  const std::size_t n_parallel = f_parallel.RebuildAll(kNow);
  EXPECT_EQ(n_serial, n_parallel);
  EXPECT_GT(n_serial, 0u);

  for (int i = 1; i <= 64; ++i) {
    const x509::Serial serial{static_cast<std::uint8_t>(i), 0x5A};
    const auto a = f_serial.Staple(r_serial.issuer_key_hash(), serial, kNow);
    const auto b =
        f_parallel.Staple(r_parallel.issuer_key_hash(), serial, kNow);
    ASSERT_TRUE(a);
    ASSERT_TRUE(b);
    EXPECT_EQ(*a, *b) << "divergent response for serial " << i;
  }
}

// --------------------------------------------------------------- stress ----

TEST(ServeStress, ConcurrentServeMutateRefresh) {
  const x509::Certificate issuer = MakeIssuerCert("stress-issuer");
  ocsp::Responder responder(issuer, TestKey("stress-issuer"));
  FrontendOptions options;
  options.num_shards = 4;
  Frontend frontend(options);
  frontend.AttachResponder(&responder);

  constexpr int kSerials = 32;
  for (int i = 1; i <= kSerials; ++i)
    responder.AddCertificate(x509::Serial{static_cast<std::uint8_t>(i)});
  frontend.RebuildAll(kNow);

  // Fixed per-reader iteration counts keep the test deterministic on a
  // single core, where a stop-flag loop can end before readers ever run.
  constexpr int kIterations = 200;
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int i = t; i < t + kIterations; ++i) {
        ocsp::OcspRequest request;
        request.cert_ids = {ocsp::MakeCertId(
            issuer, x509::Serial{static_cast<std::uint8_t>(i % kSerials + 1)})};
        const auto result =
            frontend.Serve(ocsp::EncodeOcspRequest(request), kNow + i % 100);
        EXPECT_TRUE(result.http_status == 200 || result.http_status == 503);
        if (result.http_status == 200) EXPECT_TRUE(result.body);
      }
    });
  }

  // Mutate and refresh while the readers hammer the serve path.
  for (int i = 1; i <= kSerials; ++i) {
    responder.Revoke(x509::Serial{static_cast<std::uint8_t>(i)}, kNow + i,
                     x509::ReasonCode::kCessationOfOperation);
    if (i % 8 == 0) frontend.RefreshStale(kNow + i);
  }
  frontend.RebuildAll(kNow + kSerials);

  for (auto& reader : readers) reader.join();

  const Frontend::Counters counters = frontend.counters();
  EXPECT_EQ(counters.requests, 4u * kIterations);
  EXPECT_EQ(counters.malformed, 0u);
  EXPECT_EQ(counters.unauthorized, 0u);
}

}  // namespace
}  // namespace rev::serve
