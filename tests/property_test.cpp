// Randomized property tests (parameterized over seeds): DER round-trips for
// randomly shaped certificates / CRLs / OCSP messages, chain verification
// invariants at random depths, filter guarantees across random workloads,
// and end-to-end CA/browser consistency under random revocation schedules.
#include <gtest/gtest.h>

#include <algorithm>

#include "browser/client.h"
#include "core/fingerprint_index.h"
#include "net/retry.h"
#include "browser/profiles.h"
#include "ca/ca.h"
#include "util/interner.h"
#include "crl/crl.h"
#include "crlset/bloom.h"
#include "crlset/gcs.h"
#include "crypto/signer.h"
#include "ocsp/ocsp.h"
#include "util/rng.h"
#include "x509/certificate.h"
#include "x509/verify.h"

namespace rev {
namespace {

constexpr util::Timestamp kNow = 1'420'000'000;
constexpr std::int64_t kDay = util::kSecondsPerDay;

std::string RandomLabel(util::Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789-.";
  const std::size_t len = 1 + rng.NextBelow(max_len);
  std::string out;
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)]);
  return out;
}

x509::Serial RandomSerial(util::Rng& rng) {
  x509::Serial serial(1 + rng.NextBelow(49));
  rng.Fill(serial.data(), serial.size());
  if (serial[0] == 0) serial[0] = 1;
  return serial;
}

class Seeded : public ::testing::TestWithParam<int> {
 protected:
  util::Rng rng_{static_cast<std::uint64_t>(GetParam()) * 0x9E3779B9u + 7};
};

// ------------------------------------------------- certificate round-trip ----

class CertRoundTrip : public Seeded {};

TEST_P(CertRoundTrip, RandomFields) {
  x509::TbsCertificate tbs;
  tbs.serial = RandomSerial(rng_);
  tbs.issuer = x509::Name::Make(RandomLabel(rng_, 30), RandomLabel(rng_, 20));
  tbs.subject = x509::Name::FromCommonName(RandomLabel(rng_, 40));
  tbs.not_before = kNow - static_cast<util::Timestamp>(rng_.NextBelow(3000) * kDay);
  tbs.not_after =
      tbs.not_before + static_cast<util::Timestamp>((1 + rng_.NextBelow(3000)) * kDay);
  tbs.public_key = crypto::SimKeyFromLabel(RandomLabel(rng_, 10)).Public();
  tbs.basic_constraints.is_ca = rng_.Chance(0.3);
  if (tbs.basic_constraints.is_ca && rng_.Chance(0.5))
    tbs.basic_constraints.path_len = static_cast<int>(rng_.NextBelow(5));
  if (rng_.Chance(0.8))
    tbs.key_usage = static_cast<std::uint16_t>(1 + rng_.NextBelow(0x1FF));
  const std::size_t num_crls = rng_.NextBelow(4);
  for (std::size_t i = 0; i < num_crls; ++i)
    tbs.crl_urls.push_back("http://" + RandomLabel(rng_, 20) + ".sim/c" +
                           std::to_string(i) + ".crl");
  const std::size_t num_ocsp = rng_.NextBelow(3);
  for (std::size_t i = 0; i < num_ocsp; ++i)
    tbs.ocsp_urls.push_back("http://" + RandomLabel(rng_, 20) + ".sim/");
  if (rng_.Chance(0.3)) tbs.policies = {asn1::oids::VerisignEvPolicy()};
  const std::size_t num_san = rng_.NextBelow(5);
  for (std::size_t i = 0; i < num_san; ++i)
    tbs.dns_names.push_back(RandomLabel(rng_, 30));
  if (rng_.Chance(0.5)) {
    tbs.subject_key_id.resize(20);
    rng_.Fill(tbs.subject_key_id.data(), 20);
  }
  if (rng_.Chance(0.5)) {
    tbs.authority_key_id.resize(20);
    rng_.Fill(tbs.authority_key_id.data(), 20);
  }

  const crypto::KeyPair issuer_key =
      crypto::SimKeyFromLabel(RandomLabel(rng_, 8));
  const x509::Certificate cert = x509::SignCertificate(tbs, issuer_key);
  auto parsed = x509::ParseCertificate(cert.der);
  ASSERT_TRUE(parsed);

  EXPECT_EQ(parsed->tbs.serial, tbs.serial);
  EXPECT_EQ(parsed->tbs.issuer, tbs.issuer);
  EXPECT_EQ(parsed->tbs.subject, tbs.subject);
  EXPECT_EQ(parsed->tbs.not_before, tbs.not_before);
  EXPECT_EQ(parsed->tbs.not_after, tbs.not_after);
  EXPECT_TRUE(parsed->tbs.public_key == tbs.public_key);
  EXPECT_EQ(parsed->tbs.basic_constraints.is_ca, tbs.basic_constraints.is_ca);
  EXPECT_EQ(parsed->tbs.basic_constraints.path_len,
            tbs.basic_constraints.path_len);
  EXPECT_EQ(parsed->tbs.key_usage, tbs.key_usage);
  EXPECT_EQ(parsed->tbs.crl_urls, tbs.crl_urls);
  EXPECT_EQ(parsed->tbs.ocsp_urls, tbs.ocsp_urls);
  EXPECT_EQ(parsed->tbs.policies, tbs.policies);
  EXPECT_EQ(parsed->tbs.dns_names, tbs.dns_names);
  EXPECT_EQ(parsed->tbs.subject_key_id, tbs.subject_key_id);
  EXPECT_EQ(parsed->tbs.authority_key_id, tbs.authority_key_id);
  EXPECT_TRUE(x509::VerifyCertificateSignature(*parsed, issuer_key.Public()));

  // Re-encoding the parsed TBS is byte-identical (canonical DER).
  EXPECT_EQ(x509::EncodeTbs(parsed->tbs, parsed->sig_type), cert.tbs_der);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertRoundTrip, ::testing::Range(0, 25));

// --------------------------------------------------------- CRL round-trip ----

class CrlRoundTrip : public Seeded {};

TEST_P(CrlRoundTrip, RandomCrls) {
  crl::TbsCrl tbs;
  tbs.issuer = x509::Name::Make(RandomLabel(rng_, 20), RandomLabel(rng_, 10));
  tbs.this_update = kNow - static_cast<util::Timestamp>(rng_.NextBelow(100'000));
  if (rng_.Chance(0.9))
    tbs.next_update = tbs.this_update + static_cast<util::Timestamp>(
                                            1 + rng_.NextBelow(7 * kDay));
  if (rng_.Chance(0.8)) tbs.crl_number = static_cast<std::int64_t>(rng_.NextBelow(1'000'000));
  const std::size_t entries = rng_.NextBelow(200);
  for (std::size_t i = 0; i < entries; ++i) {
    crl::CrlEntry entry;
    entry.serial = RandomSerial(rng_);
    entry.revocation_date =
        tbs.this_update - static_cast<util::Timestamp>(rng_.NextBelow(10'000'000));
    const std::uint64_t reason_pick = rng_.NextBelow(5);
    entry.reason = reason_pick == 0 ? x509::ReasonCode::kKeyCompromise
                   : reason_pick == 1 ? x509::ReasonCode::kSuperseded
                                      : x509::ReasonCode::kNoReasonCode;
    tbs.entries.push_back(std::move(entry));
  }

  const crypto::KeyPair key = crypto::SimKeyFromLabel(RandomLabel(rng_, 8));
  const crl::Crl crl = crl::SignCrl(tbs, key);
  auto parsed = crl::ParseCrl(crl.der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tbs.issuer, tbs.issuer);
  EXPECT_EQ(parsed->tbs.this_update, tbs.this_update);
  EXPECT_EQ(parsed->tbs.next_update, tbs.next_update);
  EXPECT_EQ(parsed->tbs.crl_number, tbs.crl_number);
  ASSERT_EQ(parsed->tbs.entries.size(), tbs.entries.size());
  for (std::size_t i = 0; i < entries; ++i) {
    EXPECT_EQ(parsed->tbs.entries[i].serial, tbs.entries[i].serial);
    EXPECT_EQ(parsed->tbs.entries[i].revocation_date,
              tbs.entries[i].revocation_date);
    EXPECT_EQ(parsed->tbs.entries[i].reason, tbs.entries[i].reason);
  }
  EXPECT_TRUE(crl::VerifyCrlSignature(*parsed, key.Public()));

  // The index agrees with a linear scan for every entry and for misses.
  const crl::CrlIndex index(*parsed);
  for (const crl::CrlEntry& entry : tbs.entries)
    EXPECT_TRUE(index.IsRevoked(entry.serial));
  for (int i = 0; i < 20; ++i) {
    const x509::Serial probe = RandomSerial(rng_);
    const bool linear = std::any_of(
        tbs.entries.begin(), tbs.entries.end(),
        [&](const crl::CrlEntry& e) { return e.serial == probe; });
    EXPECT_EQ(index.IsRevoked(probe), linear);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrlRoundTrip, ::testing::Range(0, 15));

// -------------------------------------------------------- OCSP round-trip ----

class OcspRoundTrip : public Seeded {};

TEST_P(OcspRoundTrip, RandomResponses) {
  ocsp::SingleResponse single;
  single.cert_id.issuer_name_hash.resize(32);
  single.cert_id.issuer_key_hash.resize(32);
  rng_.Fill(single.cert_id.issuer_name_hash.data(), 32);
  rng_.Fill(single.cert_id.issuer_key_hash.data(), 32);
  single.cert_id.serial = RandomSerial(rng_);
  const std::uint64_t status_pick = rng_.NextBelow(3);
  single.status = static_cast<ocsp::CertStatus>(status_pick);
  single.this_update = kNow - static_cast<util::Timestamp>(rng_.NextBelow(100'000));
  if (rng_.Chance(0.7))
    single.next_update = single.this_update + 4 * kDay;
  if (single.status == ocsp::CertStatus::kRevoked) {
    single.revocation_time =
        single.this_update - static_cast<util::Timestamp>(rng_.NextBelow(1'000'000));
    if (rng_.Chance(0.4)) single.reason = x509::ReasonCode::kKeyCompromise;
  }

  const crypto::KeyPair key = crypto::SimKeyFromLabel(RandomLabel(rng_, 8));
  const ocsp::OcspResponse response =
      ocsp::SignOcspResponse(single, kNow, key);
  auto parsed = ocsp::ParseOcspResponse(response.der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.cert_id, single.cert_id);
  EXPECT_EQ(parsed->single.status, single.status);
  EXPECT_EQ(parsed->single.this_update, single.this_update);
  EXPECT_EQ(parsed->single.next_update, single.next_update);
  EXPECT_EQ(parsed->single.revocation_time, single.revocation_time);
  EXPECT_EQ(parsed->single.reason, single.reason);
  EXPECT_TRUE(ocsp::VerifyOcspSignature(*parsed, key.Public()));

  // Requests round-trip too.
  ocsp::OcspRequest request;
  request.cert_ids = {single.cert_id};
  if (rng_.Chance(0.5)) {
    request.nonce.resize(16);
    rng_.Fill(request.nonce.data(), 16);
  }
  auto parsed_request = ocsp::ParseOcspRequest(ocsp::EncodeOcspRequest(request));
  ASSERT_TRUE(parsed_request);
  EXPECT_EQ(parsed_request->cert_ids, request.cert_ids);
  EXPECT_EQ(parsed_request->nonce, request.nonce);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OcspRoundTrip, ::testing::Range(0, 15));

// ----------------------------------------------------- chain verification ----

class ChainProperty : public Seeded {};

TEST_P(ChainProperty, RandomDepthChains) {
  const int depth = 1 + static_cast<int>(rng_.NextBelow(5));  // intermediates

  // Root.
  const crypto::KeyPair root_key = crypto::SimKeyFromLabel(
      "root" + std::to_string(GetParam()));
  x509::TbsCertificate root_tbs;
  root_tbs.serial = RandomSerial(rng_);
  root_tbs.issuer = root_tbs.subject = x509::Name::FromCommonName("Root");
  root_tbs.not_before = 0;
  root_tbs.not_after = kNow + 5000 * kDay;
  root_tbs.public_key = root_key.Public();
  root_tbs.basic_constraints = {true, -1};
  auto root = std::make_shared<const x509::Certificate>(
      x509::SignCertificate(root_tbs, root_key));

  x509::CertPool roots, pool;
  roots.Add(root);

  crypto::KeyPair prev_key = root_key;
  x509::Name prev_name = root_tbs.subject;
  for (int i = 0; i < depth; ++i) {
    const crypto::KeyPair key = crypto::SimKeyFromLabel(
        "int" + std::to_string(GetParam()) + "." + std::to_string(i));
    x509::TbsCertificate tbs;
    tbs.serial = RandomSerial(rng_);
    tbs.issuer = prev_name;
    tbs.subject = x509::Name::FromCommonName("Int" + std::to_string(i));
    tbs.not_before = 0;
    tbs.not_after = kNow + 4000 * kDay;
    tbs.public_key = key.Public();
    tbs.basic_constraints = {true, -1};
    pool.Add(std::make_shared<const x509::Certificate>(
        x509::SignCertificate(tbs, prev_key)));
    prev_key = key;
    prev_name = tbs.subject;
  }

  x509::TbsCertificate leaf_tbs;
  leaf_tbs.serial = RandomSerial(rng_);
  leaf_tbs.issuer = prev_name;
  leaf_tbs.subject = x509::Name::FromCommonName("leaf.sim");
  leaf_tbs.not_before = kNow - kDay;
  leaf_tbs.not_after = kNow + kDay;
  leaf_tbs.public_key = crypto::SimKeyFromLabel("leafkey").Public();
  auto leaf = std::make_shared<const x509::Certificate>(
      x509::SignCertificate(leaf_tbs, prev_key));

  x509::VerifyOptions options;
  options.at = kNow;
  const x509::VerifyResult result =
      x509::VerifyChain(leaf, pool, roots, options);
  ASSERT_TRUE(result.ok()) << "depth " << depth << ": "
                           << x509::VerifyStatusName(result.status);
  EXPECT_EQ(result.chain.size(), static_cast<std::size_t>(depth) + 2);

  // Invariant: every adjacent pair in the returned chain is issuer-signed.
  for (std::size_t i = 0; i + 1 < result.chain.size(); ++i) {
    EXPECT_TRUE(x509::VerifyCertificateSignature(
        *result.chain[i], result.chain[i + 1]->tbs.public_key));
    EXPECT_EQ(result.chain[i]->tbs.issuer, result.chain[i + 1]->tbs.subject);
  }

  // Removing any single intermediate breaks the (only) path.
  for (const x509::CertPtr& removed : pool.all()) {
    x509::CertPool without;
    for (const x509::CertPtr& cert : pool.all())
      if (cert != removed) without.Add(cert);
    EXPECT_FALSE(x509::VerifyChain(leaf, without, roots, options).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainProperty, ::testing::Range(0, 10));

// ----------------------------------------------------------- filter sweeps ----

class FilterProperty : public Seeded {};

TEST_P(FilterProperty, BloomNeverFalseNegative) {
  const std::size_t n = 100 + rng_.NextBelow(3000);
  const double fpr = 0.001 + rng_.UniformDouble() * 0.05;
  crlset::BloomFilter filter = crlset::BloomFilter::ForCapacity(n, fpr);
  std::vector<Bytes> keys;
  for (std::size_t i = 0; i < n; ++i) {
    Bytes key(8 + rng_.NextBelow(40));
    rng_.Fill(key.data(), key.size());
    keys.push_back(std::move(key));
    filter.Insert(keys.back());
  }
  for (const Bytes& key : keys) EXPECT_TRUE(filter.MayContain(key));
}

TEST_P(FilterProperty, GcsNeverFalseNegative) {
  const std::size_t n = 50 + rng_.NextBelow(1000);
  const int p = 4 + static_cast<int>(rng_.NextBelow(10));
  std::vector<Bytes> keys;
  for (std::size_t i = 0; i < n; ++i) {
    Bytes key(8 + rng_.NextBelow(40));
    rng_.Fill(key.data(), key.size());
    keys.push_back(std::move(key));
  }
  const crlset::GolombCompressedSet set = crlset::GolombCompressedSet::Build(keys, p);
  for (const Bytes& key : keys) EXPECT_TRUE(set.MayContain(key));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterProperty, ::testing::Range(0, 10));

// ------------------------------------------ CA + browser consistency sweep ----

class EndToEndProperty : public Seeded {};

TEST_P(EndToEndProperty, RevokedIsCaughtExactlyWhenCheckingApplies) {
  // Random CA with random revocation schedule; a checking browser (IE 11)
  // must reject exactly the revoked-and-effective certificates.
  util::Rng rng = rng_;
  ca::CertificateAuthority::Options options;
  options.name = "Prop" + std::to_string(GetParam());
  options.domain = "prop" + std::to_string(GetParam()) + ".sim";
  options.num_crl_shards = 1 + static_cast<int>(rng.NextBelow(4));
  auto root = ca::CertificateAuthority::CreateRoot(options, rng,
                                                   kNow - 2000 * kDay);
  net::SimNet net;
  root->RegisterEndpoints(&net);
  x509::CertPool roots;
  roots.Add(root->cert());

  const browser::Policy& policy =
      browser::FindProfile("IE 11", "Windows 10")->policy;

  for (int i = 0; i < 12; ++i) {
    ca::CertificateAuthority::IssueOptions issue;
    issue.common_name = "site" + std::to_string(i) + ".sim";
    issue.not_before = kNow - 50 * kDay;
    const x509::CertPtr leaf = root->Issue(issue, rng);
    const bool revoked = rng.Chance(0.5);
    if (revoked) {
      root->Revoke(leaf->tbs.serial,
                   kNow - static_cast<util::Timestamp>(1 + rng.NextBelow(30)) * kDay,
                   x509::ReasonCode::kKeyCompromise);
    }
    tls::TlsServer::Config config;
    config.chain_der = {leaf->der};
    tls::TlsServer server(config);
    browser::Client client(policy, &net, roots);
    const browser::VisitOutcome outcome = client.Visit(server, kNow);
    EXPECT_EQ(outcome.rejected(), revoked)
        << "cert " << i << " revoked=" << revoked << ": "
        << outcome.reject_reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndProperty, ::testing::Range(0, 8));

// ----------------------------------------------- retry-policy invariants ----

class RetryProperty : public Seeded {};

// The deterministic-jitter schedule is non-decreasing up to the cap for any
// seed/key, provided multiplier >= 1/(1 - jitter) (the documented bound:
// the worst jittered step must still outgrow the best previous one), and
// once the un-jittered base crosses the cap the delay equals the cap
// exactly.
TEST_P(RetryProperty, BackoffDelaysNonDecreasingUpToCap) {
  for (int trial = 0; trial < 20; ++trial) {
    net::RetryPolicy policy;
    policy.jitter = rng_.Uniform(0.0, 0.6);
    policy.backoff_multiplier =
        std::max(1.5, 1.0 / (1.0 - policy.jitter)) + rng_.Uniform(0.0, 2.0);
    policy.initial_backoff_seconds = rng_.Uniform(0.1, 10.0);
    policy.max_backoff_seconds =
        policy.initial_backoff_seconds + rng_.Uniform(0.0, 1000.0);
    policy.seed = rng_.Next();
    const std::string key = "http://" + RandomLabel(rng_, 24) + "/crl";

    double prev = 0;
    for (int attempt = 1; attempt <= 40; ++attempt) {
      const double delay = net::BackoffDelay(policy, key, attempt);
      EXPECT_GE(delay, prev) << "attempt " << attempt;
      EXPECT_LE(delay, policy.max_backoff_seconds);
      EXPECT_GT(delay, 0.0);
      prev = delay;
    }
    // Far past the cap crossover the delay is pinned to the cap exactly.
    EXPECT_EQ(net::BackoffDelay(policy, key, 80), policy.max_backoff_seconds);
  }
}

// The bad-config region: multiplier below 1/(1 - jitter) (including
// multipliers under 1, and jitter past the 0.9 effective ceiling) used to
// silently produce *decreasing* backoff — the next window's floor undercut
// the previous window's ceiling. BackoffDelay clamps such configs up to
// the smallest compliant multiplier, so every invariant of the good region
// must now hold over the whole config space.
TEST_P(RetryProperty, BadConfigsAreClampedToNonDecreasing) {
  for (int trial = 0; trial < 20; ++trial) {
    net::RetryPolicy policy;
    // Jitter from well inside the valid range to past the 0.9 effective
    // ceiling; kept off zero so the clamped multiplier (>= 1/(1 - jitter)
    // > 1.33) still grows past the cap for the pin check below.
    policy.jitter = rng_.Uniform(0.25, 1.2);
    // Deliberately below the documented bound for any jitter.
    policy.backoff_multiplier = rng_.Uniform(0.0, 1.0);
    policy.initial_backoff_seconds = rng_.Uniform(0.1, 10.0);
    policy.max_backoff_seconds =
        policy.initial_backoff_seconds + rng_.Uniform(0.0, 1000.0);
    policy.seed = rng_.Next();
    const std::string key = "http://" + RandomLabel(rng_, 24) + "/crl";

    double prev = 0;
    for (int attempt = 1; attempt <= 40; ++attempt) {
      const double delay = net::BackoffDelay(policy, key, attempt);
      EXPECT_GE(delay, prev) << "attempt " << attempt << " jitter "
                             << policy.jitter << " multiplier "
                             << policy.backoff_multiplier;
      EXPECT_LE(delay, policy.max_backoff_seconds);
      EXPECT_GT(delay, 0.0);
      prev = delay;
    }
    // The clamped multiplier still outgrows the cap eventually (it is at
    // least 1/(1 - 0.9) > 1), so the cap-pin property holds too.
    EXPECT_EQ(net::BackoffDelay(policy, key, 500),
              policy.max_backoff_seconds);
  }
}

// Pinned worst case of the old bug: multiplier 1 with 50% jitter produced
// a schedule that oscillated with the jitter draw instead of growing.
TEST_P(RetryProperty, UnityMultiplierIsLiftedToJitterBound) {
  net::RetryPolicy policy;
  policy.jitter = 0.5;
  policy.backoff_multiplier = 1.0;  // bound requires >= 2
  policy.initial_backoff_seconds = 1.0;
  policy.max_backoff_seconds = 1e9;
  policy.seed = rng_.Next();

  double prev = 0;
  for (int attempt = 1; attempt <= 20; ++attempt) {
    const double delay = net::BackoffDelay(policy, "http://clamp.sim/", attempt);
    EXPECT_GE(delay, prev);
    prev = delay;
  }
  // Growth is real, not merely non-decreasing: with the clamped multiplier
  // of 2, attempt 20's floor (2^19 / 2) dwarfs attempt 1's ceiling (1).
  EXPECT_GT(prev, 1000.0);
}

// Simulated-clock accounting: the total elapsed time of a retried fetch is
// exactly the sum of its per-attempt costs (waits + exchange times), the
// backoff total is exactly the sum of the waits, and finished_at lands at
// start + elapsed on the virtual clock.
TEST_P(RetryProperty, TotalElapsedIsSumOfPerAttemptCosts) {
  for (int trial = 0; trial < 10; ++trial) {
    net::SimNet net;
    const int failures = static_cast<int>(rng_.NextBelow(4));
    int calls = 0;
    net.AddHost("prop.sim",
                [&](const net::HttpRequest&, util::Timestamp) {
                  net::HttpResponse response;
                  if (calls++ < failures) {
                    response.status = 503;
                  } else {
                    response.body = ToBytes("payload-of-some-size");
                  }
                  return response;
                });
    net::RetryPolicy policy;
    policy.max_attempts = 6;
    policy.initial_backoff_seconds = rng_.Uniform(0.5, 3.0);
    policy.backoff_multiplier = 2;
    policy.jitter = rng_.Uniform(0.0, 0.5);
    policy.seed = rng_.Next();

    const net::RetryResult result =
        net::GetWithRetry(net, "http://prop.sim/x", kNow, policy);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.attempts, failures + 1);
    ASSERT_EQ(result.schedule.size(), static_cast<std::size_t>(failures + 1));

    double total = 0, waits = 0;
    for (const net::RetryResult::Attempt& attempt : result.schedule) {
      total += attempt.wait_before + attempt.elapsed_seconds;
      waits += attempt.wait_before;
    }
    EXPECT_DOUBLE_EQ(result.total_elapsed_seconds, total);
    EXPECT_DOUBLE_EQ(result.backoff_seconds, waits);
    EXPECT_EQ(result.finished_at,
              kNow + static_cast<util::Timestamp>(result.total_elapsed_seconds));
    EXPECT_EQ(result.schedule.front().at, kNow);
  }
}

// A 503's Retry-After hint is always a *lower bound* on the wait before the
// next attempt, whatever the backoff schedule says.
TEST_P(RetryProperty, RetryAfterIsLowerBoundOnNextAttempt) {
  net::SimNet net;
  util::Rng& rng = rng_;
  net.AddHost("hint.sim", [&](const net::HttpRequest&, util::Timestamp) {
    net::HttpResponse response;
    response.status = 503;  // always shedding
    response.retry_after = rng.UniformInt(0, 40);
    return response;
  });
  net::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_seconds = 0.01;  // hints, when present, must win
  policy.backoff_multiplier = 2;
  policy.jitter = rng_.Uniform(0.0, 0.5);
  policy.seed = rng_.Next();

  const net::RetryResult result =
      net::GetWithRetry(net, "http://hint.sim/x", kNow, policy);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.gave_up);
  ASSERT_EQ(result.schedule.size(), 6u);
  for (std::size_t i = 1; i < result.schedule.size(); ++i) {
    const net::RetryResult::Attempt& before = result.schedule[i - 1];
    EXPECT_EQ(before.http_status, 503);
    EXPECT_GE(result.schedule[i].wait_before,
              static_cast<double>(before.retry_after))
        << "attempt " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryProperty, ::testing::Range(0, 10));

// --------------------------------------------- corpus building blocks ----

// String interner: intern -> resolve round-trips, dedup returns the same
// id, and ids handed out early stay valid as the table grows through many
// rehashes.
class InternerProperty : public Seeded {};

TEST_P(InternerProperty, RoundTripAndIdStabilityUnderGrowth) {
  util::StringInterner interner;
  std::vector<std::string> strings;
  std::vector<std::uint32_t> ids;
  // Mixed lengths, including duplicates and the empty string.
  for (int i = 0; i < 4000; ++i) {
    std::string s;
    if (rng_.NextBelow(10) == 0 && !strings.empty()) {
      s = strings[rng_.NextBelow(strings.size())];  // duplicate
    } else if (rng_.NextBelow(50) == 0) {
      s = "";  // empty must intern like anything else
    } else {
      s = RandomLabel(rng_, 1 + rng_.NextBelow(80));
    }
    const std::uint32_t id = interner.Intern(s);
    ASSERT_NE(id, util::StringInterner::kInvalidId);
    // Resolve immediately...
    ASSERT_EQ(interner.Get(id), s);
    strings.push_back(std::move(s));
    ids.push_back(id);
  }
  // ...and again after all growth: every id must still resolve to the
  // string it was handed out for, and re-interning must return it.
  for (std::size_t i = 0; i < strings.size(); ++i) {
    EXPECT_EQ(interner.Get(ids[i]), strings[i]);
    EXPECT_EQ(interner.Intern(strings[i]), ids[i]);
    EXPECT_EQ(interner.Find(strings[i]), ids[i]);
  }
  // Ids are dense: one per distinct string.
  std::set<std::string> distinct(strings.begin(), strings.end());
  EXPECT_EQ(interner.size(), distinct.size());
  // Find misses cleanly for strings never interned.
  EXPECT_EQ(interner.Find("never-interned-\x01\x02"),
            util::StringInterner::kInvalidId);
}

// Fingerprint index vs a std::map oracle: random insert/lookup workloads
// agree exactly, including lookups of absent fingerprints after rehashes
// (no false hits from stale tags).
class FingerprintIndexProperty : public Seeded {};

TEST_P(FingerprintIndexProperty, MatchesMapOracleAcrossRehashes) {
  core::FingerprintIndex index;
  std::vector<Bytes> stored;  // fingerprint per row, row id == vector index
  std::map<Bytes, std::uint32_t> oracle;

  auto find = [&](const Bytes& fp) {
    return index.Find(core::FingerprintIndex::HashOf(fp),
                      [&](std::uint32_t row) {
                        return stored[row].size() == fp.size() &&
                               std::equal(fp.begin(), fp.end(),
                                          stored[row].begin());
                      });
  };
  auto random_fp = [&] {
    Bytes fp(32);
    rng_.Fill(fp.data(), fp.size());
    return fp;
  };

  for (int i = 0; i < 5000; ++i) {
    Bytes fp = random_fp();
    // Sometimes re-query an existing fingerprint instead of a fresh one.
    if (!stored.empty() && rng_.NextBelow(4) == 0)
      fp = stored[rng_.NextBelow(stored.size())];

    const std::uint32_t got = find(fp);
    const auto it = oracle.find(fp);
    if (it == oracle.end()) {
      ASSERT_EQ(got, core::FingerprintIndex::kNoRow) << "false hit at " << i;
      const auto row = static_cast<std::uint32_t>(stored.size());
      index.Insert(core::FingerprintIndex::HashOf(fp), row);
      stored.push_back(fp);
      oracle.emplace(std::move(fp), row);
    } else {
      ASSERT_EQ(got, it->second) << "miss/mismatch at " << i;
    }
  }
  // Post-growth sweep: every stored fingerprint resolves to its row, and
  // fresh fingerprints still miss (the table has rehashed many times by
  // now — 5k inserts from a 64-slot start).
  for (const auto& [fp, row] : oracle) EXPECT_EQ(find(fp), row);
  for (int i = 0; i < 500; ++i) {
    const Bytes fp = random_fp();
    if (!oracle.contains(fp)) EXPECT_EQ(find(fp), core::FingerprintIndex::kNoRow);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternerProperty, ::testing::Range(0, 6));
INSTANTIATE_TEST_SUITE_P(Seeds, FingerprintIndexProperty,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace rev
