// Certificate Authority model tests: issuance, revocation, CRL maintenance
// (sharding, re-issue, expiry-based entry dropping), OCSP wiring, and the
// simulated-network endpoints.
#include <gtest/gtest.h>

#include "ca/ca.h"
#include "crl/crl.h"
#include "net/simnet.h"
#include "ocsp/ocsp.h"
#include "util/rng.h"

namespace rev::ca {
namespace {

constexpr util::Timestamp kNow = 1'400'000'000;
constexpr std::int64_t kDay = util::kSecondsPerDay;
constexpr std::int64_t kYear = 365 * kDay;

std::unique_ptr<CertificateAuthority> MakeRoot(util::Rng& rng,
                                               int shards = 1) {
  CertificateAuthority::Options options;
  options.name = "TestRoot";
  options.domain = "testroot.sim";
  options.num_crl_shards = shards;
  return CertificateAuthority::CreateRoot(options, rng, kNow - 5 * kYear);
}

TEST(Ca, RootSelfSigned) {
  util::Rng rng(1);
  auto root = MakeRoot(rng);
  const x509::CertPtr& cert = root->cert();
  EXPECT_TRUE(cert->IsCa());
  EXPECT_TRUE(cert->IsSelfIssued());
  EXPECT_TRUE(x509::VerifyCertificateSignature(*cert, root->key().Public()));
  // Roots carry no revocation pointers (§3.2 note 9).
  EXPECT_TRUE(cert->Unrevocable());
}

TEST(Ca, IntermediateSignedByParent) {
  util::Rng rng(2);
  auto root = MakeRoot(rng);
  CertificateAuthority::Options options;
  options.name = "TestInt";
  options.domain = "testint.sim";
  auto intermediate = root->CreateIntermediate(options, rng, kNow - kYear);
  const x509::CertPtr& cert = intermediate->cert();
  EXPECT_TRUE(cert->IsCa());
  EXPECT_EQ(cert->tbs.issuer, root->cert()->tbs.subject);
  EXPECT_TRUE(x509::VerifyCertificateSignature(*cert, root->key().Public()));
  EXPECT_FALSE(cert->tbs.crl_urls.empty());
  EXPECT_FALSE(cert->tbs.ocsp_urls.empty());
  // The parent can revoke it.
  EXPECT_TRUE(root->Revoke(cert->tbs.serial, kNow, x509::ReasonCode::kCaCompromise));
}

TEST(Ca, IssueLeafFields) {
  util::Rng rng(3);
  auto root = MakeRoot(rng);
  CertificateAuthority::IssueOptions issue;
  issue.common_name = "www.example.sim";
  issue.ev = true;
  issue.not_before = kNow - 10 * kDay;
  issue.lifetime_seconds = kYear;
  const x509::CertPtr leaf = root->Issue(issue, rng);
  EXPECT_EQ(leaf->tbs.subject.CommonName(), "www.example.sim");
  EXPECT_TRUE(leaf->IsEv());
  EXPECT_FALSE(leaf->IsCa());
  EXPECT_EQ(leaf->tbs.not_after, issue.not_before + kYear);
  EXPECT_TRUE(x509::VerifyCertificateSignature(*leaf, root->key().Public()));
  EXPECT_EQ(leaf->tbs.crl_urls.size(), 1u);
  EXPECT_EQ(leaf->tbs.ocsp_urls.size(), 1u);
  EXPECT_EQ(root->issued_count(), 1u);
  // Parseable end to end.
  EXPECT_TRUE(x509::ParseCertificate(leaf->der));
}

TEST(Ca, IssueWithoutRevocationInfo) {
  util::Rng rng(4);
  auto root = MakeRoot(rng);
  CertificateAuthority::IssueOptions issue;
  issue.common_name = "bare.sim";
  issue.include_crl_url = false;
  issue.include_ocsp_url = false;
  issue.not_before = kNow;
  const x509::CertPtr leaf = root->Issue(issue, rng);
  EXPECT_TRUE(leaf->Unrevocable());
}

TEST(Ca, SerialsUniqueAndSized) {
  util::Rng rng(5);
  auto root = MakeRoot(rng);
  std::set<x509::Serial> serials;
  CertificateAuthority::IssueOptions issue;
  issue.common_name = "x.sim";
  issue.not_before = kNow;
  for (int i = 0; i < 200; ++i) {
    const x509::CertPtr leaf = root->Issue(issue, rng);
    EXPECT_EQ(leaf->tbs.serial.size(), 16u);  // default serial_bytes
    EXPECT_TRUE(serials.insert(leaf->tbs.serial).second);
  }
}

TEST(Ca, RevocationFlow) {
  util::Rng rng(6);
  auto root = MakeRoot(rng);
  CertificateAuthority::IssueOptions issue;
  issue.common_name = "r.sim";
  issue.not_before = kNow - kDay;
  const x509::CertPtr leaf = root->Issue(issue, rng);

  EXPECT_FALSE(root->IsRevoked(leaf->tbs.serial));
  EXPECT_TRUE(root->Revoke(leaf->tbs.serial, kNow,
                           x509::ReasonCode::kKeyCompromise));
  EXPECT_TRUE(root->IsRevoked(leaf->tbs.serial));
  EXPECT_EQ(root->revoked_count(), 1u);
  // Idempotent.
  EXPECT_TRUE(root->Revoke(leaf->tbs.serial, kNow + 1,
                           x509::ReasonCode::kSuperseded));
  EXPECT_EQ(root->revoked_count(), 1u);
  // Unknown serial refused.
  EXPECT_FALSE(root->Revoke(x509::Serial{1, 2, 3}, kNow,
                            x509::ReasonCode::kUnspecified));

  // The CRL now carries it.
  const crl::Crl& crl = root->GetCrl(0, kNow + 1);
  const crl::CrlIndex index(crl);
  EXPECT_TRUE(index.IsRevoked(leaf->tbs.serial));
  EXPECT_TRUE(crl::VerifyCrlSignature(crl, root->key().Public()));

  // And the OCSP responder agrees.
  const ocsp::OcspResponse status =
      root->responder().StatusFor(leaf->tbs.serial, kNow + 1);
  EXPECT_EQ(status.single.status, ocsp::CertStatus::kRevoked);
}

TEST(Ca, CrlReissuedAfterExpiry) {
  util::Rng rng(7);
  auto root = MakeRoot(rng);
  const crl::Crl& first = root->GetCrl(0, kNow);
  const util::Timestamp first_update = first.tbs.this_update;
  const std::int64_t first_number = first.tbs.crl_number;
  // Within validity: same CRL.
  EXPECT_EQ(root->GetCrl(0, kNow + 3600).tbs.this_update, first_update);
  // Past nextUpdate: re-issued with a higher CRL number.
  const crl::Crl& second = root->GetCrl(0, kNow + 2 * kDay);
  EXPECT_GT(second.tbs.this_update, first_update);
  EXPECT_GT(second.tbs.crl_number, first_number);
}

TEST(Ca, CrlDropsExpiredCertEntries) {
  util::Rng rng(8);
  auto root = MakeRoot(rng);
  CertificateAuthority::IssueOptions issue;
  issue.common_name = "short.sim";
  issue.not_before = kNow - 30 * kDay;
  issue.lifetime_seconds = 60 * kDay;  // expires kNow + 30d
  const x509::CertPtr leaf = root->Issue(issue, rng);
  root->Revoke(leaf->tbs.serial, kNow, x509::ReasonCode::kKeyCompromise);

  EXPECT_TRUE(crl::CrlIndex(root->GetCrl(0, kNow + kDay)).IsRevoked(leaf->tbs.serial));
  // After the certificate expires, the entry is dropped (Fig. 8 driver).
  EXPECT_FALSE(
      crl::CrlIndex(root->GetCrl(0, kNow + 40 * kDay)).IsRevoked(leaf->tbs.serial));
}

TEST(Ca, ShardingPartitionsSerials) {
  util::Rng rng(9);
  auto root = MakeRoot(rng, /*shards=*/8);
  CertificateAuthority::IssueOptions issue;
  issue.common_name = "s.sim";
  issue.not_before = kNow;
  std::map<int, int> shard_counts;
  for (int i = 0; i < 400; ++i) {
    const x509::CertPtr leaf = root->Issue(issue, rng);
    const int shard = root->ShardForSerial(leaf->tbs.serial);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 8);
    ++shard_counts[shard];
    // The cert's CRL URL names its shard.
    EXPECT_EQ(leaf->tbs.crl_urls[0], root->CrlUrl(shard));
    root->Revoke(leaf->tbs.serial, kNow, x509::ReasonCode::kUnspecified);
  }
  // Uniform hashing: every shard used.
  EXPECT_EQ(shard_counts.size(), 8u);

  // Each revocation appears in exactly its shard's CRL.
  std::size_t total = 0;
  for (int shard = 0; shard < 8; ++shard)
    total += root->GetCrl(shard, kNow + 1).tbs.entries.size();
  EXPECT_EQ(total, 400u);
}

TEST(Ca, SkewedShardWeights) {
  util::Rng rng(10);
  auto root = MakeRoot(rng, /*shards=*/4);
  root->SetShardWeights({0.97, 0.01, 0.01, 0.01});
  CertificateAuthority::IssueOptions issue;
  issue.common_name = "w.sim";
  issue.not_before = kNow;
  int shard0 = 0;
  for (int i = 0; i < 300; ++i) {
    const x509::CertPtr leaf = root->Issue(issue, rng);
    if (root->ShardForSerial(leaf->tbs.serial) == 0) ++shard0;
  }
  EXPECT_GT(shard0, 250);
}

TEST(Ca, SyntheticRevocationsPopulateCrl) {
  util::Rng rng(11);
  auto root = MakeRoot(rng);
  root->AddSyntheticRevocations(500, rng, kNow - 100 * kDay, kNow,
                                kNow + kYear, kNow + 2 * kYear,
                                x509::ReasonCode::kNoReasonCode);
  EXPECT_EQ(root->revoked_count(), 500u);
  EXPECT_EQ(root->GetCrl(0, kNow).tbs.entries.size(), 500u);
  EXPECT_EQ(root->CurrentRevocations(kNow).size(), 500u);
  // All expire after study end, so none drop yet.
  EXPECT_EQ(root->GetCrl(0, kNow + 300 * kDay).tbs.entries.size(), 500u);
}

TEST(Ca, HttpEndpoints) {
  util::Rng rng(12);
  auto root = MakeRoot(rng, /*shards=*/2);
  net::SimNet net;
  root->RegisterEndpoints(&net);

  CertificateAuthority::IssueOptions issue;
  issue.common_name = "net.sim";
  issue.not_before = kNow - kDay;
  const x509::CertPtr leaf = root->Issue(issue, rng);
  root->Revoke(leaf->tbs.serial, kNow, x509::ReasonCode::kKeyCompromise);

  // CRL over "HTTP".
  const int shard = root->ShardForSerial(leaf->tbs.serial);
  const net::FetchResult crl_fetch = net.Get(root->CrlUrl(shard), kNow + 1);
  ASSERT_TRUE(crl_fetch.ok());
  auto crl = crl::ParseCrl(crl_fetch.response.body);
  ASSERT_TRUE(crl);
  EXPECT_TRUE(crl::CrlIndex(*crl).IsRevoked(leaf->tbs.serial));
  EXPECT_GT(crl_fetch.response.max_age, 0);

  // Unknown path 404s.
  EXPECT_EQ(net.Get("http://" + root->CrlHost() + "/nope.crl", kNow).response.status,
            404);

  // OCSP over "HTTP".
  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(*root->cert(), leaf->tbs.serial)};
  const net::FetchResult ocsp_fetch =
      net.Post(root->OcspUrl(), ocsp::EncodeOcspRequest(request), kNow + 1);
  ASSERT_TRUE(ocsp_fetch.ok());
  auto response = ocsp::ParseOcspResponse(ocsp_fetch.response.body);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->single.status, ocsp::CertStatus::kRevoked);
}

TEST(Ca, OcspGetEndpoint) {
  util::Rng rng(14);
  auto root = MakeRoot(rng);
  net::SimNet net;
  root->RegisterEndpoints(&net);
  CertificateAuthority::IssueOptions issue;
  issue.common_name = "get.sim";
  issue.not_before = kNow - kDay;
  const x509::CertPtr leaf = root->Issue(issue, rng);

  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(*root->cert(), leaf->tbs.serial)};
  std::string url = root->OcspUrl();
  url.pop_back();  // drop trailing '/'
  const net::FetchResult fetch =
      net.Get(url + ocsp::OcspGetPath(request), kNow);
  ASSERT_TRUE(fetch.ok());
  auto response = ocsp::ParseOcspResponse(fetch.response.body);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->single.status, ocsp::CertStatus::kGood);

  // Malformed GET paths get a malformed-request error.
  const net::FetchResult bad = net.Get(root->OcspUrl() + "zzz!!", kNow);
  ASSERT_TRUE(bad.ok());
  auto bad_response = ocsp::ParseOcspResponse(bad.response.body);
  ASSERT_TRUE(bad_response);
  EXPECT_EQ(bad_response->status, ocsp::ResponseStatus::kMalformedRequest);
}

TEST(Ca, ExpiryLookup) {
  util::Rng rng(13);
  auto root = MakeRoot(rng);
  CertificateAuthority::IssueOptions issue;
  issue.common_name = "e.sim";
  issue.not_before = kNow;
  issue.lifetime_seconds = kYear;
  const x509::CertPtr leaf = root->Issue(issue, rng);
  EXPECT_EQ(root->ExpiryOf(leaf->tbs.serial), kNow + kYear);
  EXPECT_EQ(root->ExpiryOf(x509::Serial{9, 9}), 0);
}

}  // namespace
}  // namespace rev::ca
