// Tests for the pushed-revocation channels wired into the browser client:
// Chrome's CRLSet (including the BlockedSPKI render-anyway bug, §7.1 note
// 26) and Mozilla's OneCRL intermediate blocklist (§7 footnote 24).
#include <gtest/gtest.h>

#include "browser/client.h"
#include "browser/profiles.h"
#include "ca/ca.h"
#include "crlset/crlset.h"
#include "crlset/onecrl.h"
#include "util/rng.h"

namespace rev::browser {
namespace {

constexpr util::Timestamp kNow = 1'420'000'000;
constexpr std::int64_t kDay = util::kSecondsPerDay;

class PushedRevocation : public ::testing::Test {
 protected:
  PushedRevocation() : rng_(77) {
    ca::CertificateAuthority::Options root_options;
    root_options.name = "PushRoot";
    root_options.domain = "pushroot.sim";
    root_ = ca::CertificateAuthority::CreateRoot(root_options, rng_,
                                                 kNow - 2000 * kDay);
    ca::CertificateAuthority::Options int_options;
    int_options.name = "PushCA";
    int_options.domain = "pushca.sim";
    intermediate_ =
        root_->CreateIntermediate(int_options, rng_, kNow - 1000 * kDay);
    // Deliberately do NOT register endpoints: pushed channels must work
    // with zero network availability.
    roots_.Add(root_->cert());

    ca::CertificateAuthority::IssueOptions issue;
    issue.common_name = "pushed.example.sim";
    issue.not_before = kNow - 100 * kDay;
    leaf_ = intermediate_->Issue(issue, rng_);
  }

  VisitOutcome Visit(const Policy& policy, const crlset::CrlSet* crlset,
                     const crlset::OneCrl* onecrl = nullptr) {
    tls::TlsServer::Config config;
    config.chain_der = {leaf_->der, intermediate_->cert()->der};
    tls::TlsServer server(config);
    Client client(policy, &net_, roots_);
    client.SetCrlSet(crlset);
    client.SetOneCrl(onecrl);
    return client.Visit(server, kNow);
  }

  util::Rng rng_;
  net::SimNet net_;
  x509::CertPool roots_;
  std::unique_ptr<ca::CertificateAuthority> root_;
  std::unique_ptr<ca::CertificateAuthority> intermediate_;
  x509::CertPtr leaf_;
};

TEST_F(PushedRevocation, CrlsetRejectsRevokedLeafOffline) {
  crlset::CrlSet set;
  set.AddEntry(intermediate_->cert()->SubjectSpkiSha256(), leaf_->tbs.serial);

  const Policy& chrome = FindProfile("Chrome 44", "OS X")->policy;
  ASSERT_TRUE(chrome.use_crlset);
  const VisitOutcome outcome = Visit(chrome, &set);
  EXPECT_TRUE(outcome.rejected());
  EXPECT_TRUE(outcome.crlset_hit);
  // Zero network cost — the whole point of CRLSets.
  EXPECT_EQ(outcome.crl_fetches + outcome.ocsp_fetches, 0);
  EXPECT_EQ(net_.total_requests(), 0u);
}

TEST_F(PushedRevocation, CrlsetMissAccepts) {
  crlset::CrlSet set;
  set.AddEntry(intermediate_->cert()->SubjectSpkiSha256(),
               x509::Serial{0xDE, 0xAD});
  const Policy& chrome = FindProfile("Chrome 44", "Windows")->policy;
  const VisitOutcome outcome = Visit(chrome, &set);
  EXPECT_TRUE(outcome.accepted());
  EXPECT_FALSE(outcome.crlset_hit);
}

TEST_F(PushedRevocation, CrlsetCoversIntermediates) {
  crlset::CrlSet set;
  set.AddEntry(root_->cert()->SubjectSpkiSha256(),
               intermediate_->cert()->tbs.serial);
  const Policy& chrome = FindProfile("Chrome 44", "Linux")->policy;
  EXPECT_TRUE(Visit(chrome, &set).rejected());
}

TEST_F(PushedRevocation, BlockedSpkiBugRendersAnyway) {
  crlset::CrlSet set;
  set.AddBlockedSpki(leaf_->SubjectSpkiSha256());

  Policy chrome = FindProfile("Chrome 44", "OS X")->policy;
  ASSERT_TRUE(chrome.blocked_spki_bug);
  const VisitOutcome buggy = Visit(chrome, &set);
  // The §7.1 note-26 bug: flagged revoked, connection completes.
  EXPECT_TRUE(buggy.accepted());
  EXPECT_TRUE(buggy.crlset_hit);

  chrome.blocked_spki_bug = false;
  const VisitOutcome fixed = Visit(chrome, &set);
  EXPECT_TRUE(fixed.rejected());
}

TEST_F(PushedRevocation, NonChromeIgnoresCrlset) {
  crlset::CrlSet set;
  set.AddEntry(intermediate_->cert()->SubjectSpkiSha256(), leaf_->tbs.serial);
  // Firefox has no CRLSet; with its OCSP responder unreachable (endpoints
  // never registered) it soft-fails to accept.
  const Policy& ff = FindProfile("Firefox 40", "Windows")->policy;
  EXPECT_FALSE(ff.use_crlset);
  EXPECT_TRUE(Visit(ff, &set).accepted());
}

TEST_F(PushedRevocation, NullCrlsetIsNoop) {
  const Policy& chrome = FindProfile("Chrome 44", "OS X")->policy;
  EXPECT_TRUE(Visit(chrome, nullptr).accepted());
}

TEST_F(PushedRevocation, OneCrlBlocksIntermediateOnly) {
  crlset::OneCrl onecrl;
  onecrl.AddEntry(intermediate_->cert()->tbs.issuer,
                  intermediate_->cert()->tbs.serial);
  EXPECT_EQ(onecrl.size(), 1u);
  EXPECT_TRUE(onecrl.Blocks(*intermediate_->cert()));
  EXPECT_FALSE(onecrl.Blocks(*leaf_));  // not a CA

  const Policy& ff = FindProfile("Firefox 40", "OS X")->policy;
  ASSERT_TRUE(ff.use_onecrl);
  const VisitOutcome outcome = Visit(ff, nullptr, &onecrl);
  EXPECT_TRUE(outcome.rejected());
  EXPECT_NE(outcome.reject_reason.find("OneCRL"), std::string::npos);
}

TEST_F(PushedRevocation, OneCrlDoesNotCoverLeaves) {
  // A leaf entry in OneCRL has no effect — it is an intermediate blocklist.
  crlset::OneCrl onecrl;
  onecrl.AddEntry(leaf_->tbs.issuer, leaf_->tbs.serial);
  const Policy& ff = FindProfile("Firefox 40", "Linux")->policy;
  EXPECT_TRUE(Visit(ff, nullptr, &onecrl).accepted());
}

TEST_F(PushedRevocation, CrlsetBeatsSoftFailAttack) {
  // The scenario motivating pushed revocations: network channels blocked,
  // CRLSet still catches the revocation where OCSP/CRL soft-fail cannot.
  crlset::CrlSet set;
  set.AddEntry(intermediate_->cert()->SubjectSpkiSha256(), leaf_->tbs.serial);

  Policy soft = FindProfile("Firefox 40", "Windows")->policy;  // soft-fail
  EXPECT_TRUE(Visit(soft, nullptr).accepted());  // attack wins
  soft.use_crlset = true;
  EXPECT_TRUE(Visit(soft, &set).rejected());  // pushed list survives
}

}  // namespace
}  // namespace rev::browser
