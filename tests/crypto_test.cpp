// Tests for the crypto substrate: SHA-256 against FIPS vectors, HMAC against
// RFC 4231 vectors, bignum algebraic properties, RSA sign/verify, and the
// Signer abstraction.
#include <gtest/gtest.h>

#include "crypto/bigint.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "util/hex.h"
#include "util/rng.h"

namespace rev::crypto {
namespace {

using util::HexDecode;
using util::HexEncode;

std::string HashHex(std::string_view message) {
  return HexEncode(Sha256Bytes(ToBytes(message)));
}

// -------------------------------------------------------------- sha256 ----

TEST(Sha256, FipsVectors) {
  EXPECT_EQ(HashHex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(HashHex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(chunk);
  const Sha256Digest digest = ctx.Finish();
  EXPECT_EQ(HexEncode(Bytes(digest.begin(), digest.end())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  util::Rng rng(1);
  for (std::size_t total : {1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
    Bytes data(total);
    rng.Fill(data.data(), data.size());
    const Sha256Digest oneshot = Sha256::Hash(data);
    // Feed in irregular chunks.
    Sha256 ctx;
    std::size_t pos = 0;
    std::size_t step = 1;
    while (pos < total) {
      const std::size_t n = std::min(step, total - pos);
      ctx.Update(BytesView(data.data() + pos, n));
      pos += n;
      step = step * 2 + 1;
    }
    EXPECT_EQ(ctx.Finish(), oneshot) << "length " << total;
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths straddling the 55/56-byte padding boundary all hash distinctly.
  std::set<std::string> digests;
  for (std::size_t n = 50; n <= 70; ++n) {
    digests.insert(HexEncode(Sha256Bytes(Bytes(n, 0x5A))));
  }
  EXPECT_EQ(digests.size(), 21u);
}

// ---------------------------------------------------------------- hmac ----

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Sha256Digest mac = HmacSha256(key, ToBytes("Hi There"));
  EXPECT_EQ(HexEncode(Bytes(mac.begin(), mac.end())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Sha256Digest mac = HmacSha256(
      ToBytes("Jefe"), ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(HexEncode(Bytes(mac.begin(), mac.end())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231LongKey) {
  const Bytes key(131, 0xaa);
  const Sha256Digest mac = HmacSha256(
      key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(HexEncode(Bytes(mac.begin(), mac.end())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const Bytes key1(16, 0x01), key2(16, 0x02);
  EXPECT_NE(HmacSha256(key1, ToBytes("msg")), HmacSha256(key2, ToBytes("msg")));
}

TEST(DeriveKey, LengthAndDeterminism) {
  const Bytes key(16, 0x42);
  const Bytes a = DeriveKey(key, "label", 100);
  const Bytes b = DeriveKey(key, "label", 100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
  EXPECT_NE(DeriveKey(key, "other", 100), a);
  // Prefix property.
  const Bytes shorter = DeriveKey(key, "label", 32);
  EXPECT_TRUE(std::equal(shorter.begin(), shorter.end(), a.begin()));
}

// -------------------------------------------------------------- bigint ----

TEST(BigInt, DecimalRoundTrip) {
  for (const char* s :
       {"0", "1", "42", "4294967295", "4294967296",
        "340282366920938463463374607431768211456",
        "123456789012345678901234567890123456789012345678"}) {
    EXPECT_EQ(BigInt::FromDecimal(s).ToDecimal(), s);
  }
}

TEST(BigInt, BytesRoundTrip) {
  util::Rng rng(2);
  for (int len : {0, 1, 2, 7, 8, 20, 49, 128}) {
    Bytes data(static_cast<std::size_t>(len));
    rng.Fill(data.data(), data.size());
    if (!data.empty() && data[0] == 0) data[0] = 1;
    const BigInt v = BigInt::FromBytes(data);
    EXPECT_EQ(v.ToBytes(), data);
  }
}

TEST(BigInt, LeadingZerosStripped) {
  const Bytes with_zeros = {0x00, 0x00, 0x12, 0x34};
  const BigInt v = BigInt::FromBytes(with_zeros);
  EXPECT_EQ(v.ToBytes(), (Bytes{0x12, 0x34}));
  EXPECT_EQ(v.Low64(), 0x1234u);
}

TEST(BigInt, Comparisons) {
  const BigInt a(100), b(200);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, BigInt(100));
  EXPECT_GT(BigInt::FromDecimal("18446744073709551616"), BigInt(~0ull));
}

TEST(BigInt, AddSubInverse) {
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::RandomBits(rng, 200);
    const BigInt b = BigInt::RandomBits(rng, 150);
    EXPECT_EQ(BigInt::Sub(BigInt::Add(a, b), b), a);
    EXPECT_EQ(BigInt::Sub(BigInt::Add(a, b), a), b);
  }
}

TEST(BigInt, MulDivInverse) {
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::RandomBits(rng, 300);
    const BigInt b = BigInt::RandomBits(rng, 100 + i);
    BigInt q, r;
    BigInt::DivMod(BigInt::Mul(a, b), b, &q, &r);
    EXPECT_EQ(q, a);
    EXPECT_TRUE(r.IsZero());
  }
}

TEST(BigInt, DivModIdentity) {
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::RandomBits(rng, 256);
    const BigInt m = BigInt::RandomBits(rng, 2 + static_cast<int>(rng.NextBelow(200)));
    BigInt q, r;
    BigInt::DivMod(a, m, &q, &r);
    EXPECT_LT(BigInt::Compare(r, m), 0);
    EXPECT_EQ(BigInt::Add(BigInt::Mul(q, m), r), a);
  }
}

TEST(BigInt, KnuthDAddBackCase) {
  // A case engineered to exercise the rare D6 add-back path: divisor with
  // high limb pattern and dividend just below a multiple.
  const BigInt a = BigInt::FromDecimal("340282366920938463426481119284349108225");
  const BigInt b = BigInt::FromDecimal("18446744073709551615");
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), r), a);
  EXPECT_LT(BigInt::Compare(r, b), 0);
}

TEST(BigInt, Shifts) {
  const BigInt one(1);
  EXPECT_EQ(one.ShiftLeft(100).BitLength(), 101);
  EXPECT_EQ(one.ShiftLeft(100).ShiftRight(100), one);
  const BigInt v = BigInt::FromDecimal("123456789123456789");
  EXPECT_EQ(v.ShiftLeft(37).ShiftRight(37), v);
  EXPECT_TRUE(v.ShiftRight(100).IsZero());
}

TEST(BigInt, BitAccess) {
  const BigInt v(0b101101);
  EXPECT_TRUE(v.Bit(0));
  EXPECT_FALSE(v.Bit(1));
  EXPECT_TRUE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(4));
  EXPECT_TRUE(v.Bit(5));
  EXPECT_FALSE(v.Bit(63));
  EXPECT_EQ(v.BitLength(), 6);
}

TEST(BigInt, ModExpSmall) {
  // 3^7 mod 10 = 2187 mod 10 = 7
  EXPECT_EQ(BigInt::ModExp(BigInt(3), BigInt(7), BigInt(10)).Low64(), 7u);
  // Fermat: 2^(p-1) = 1 mod p for prime p.
  const BigInt p(1000003);
  EXPECT_EQ(BigInt::ModExp(BigInt(2), BigInt(1000002), p).Low64(), 1u);
}

TEST(BigInt, ModExpProperties) {
  util::Rng rng(6);
  const BigInt m = BigInt::RandomPrime(rng, 96);
  for (int i = 0; i < 10; ++i) {
    const BigInt a = BigInt::RandomBits(rng, 80);
    const BigInt x = BigInt::RandomBits(rng, 40);
    const BigInt y = BigInt::RandomBits(rng, 40);
    // a^x * a^y = a^(x+y) (mod m)
    const BigInt lhs = BigInt::Mod(
        BigInt::Mul(BigInt::ModExp(a, x, m), BigInt::ModExp(a, y, m)), m);
    const BigInt rhs = BigInt::ModExp(a, BigInt::Add(x, y), m);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(BigInt, ModInverse) {
  util::Rng rng(7);
  const BigInt m = BigInt::RandomPrime(rng, 128);
  for (int i = 0; i < 20; ++i) {
    const BigInt a = BigInt::RandomBits(rng, 100);
    BigInt inv;
    ASSERT_TRUE(BigInt::ModInverse(a, m, &inv));
    EXPECT_EQ(BigInt::Mod(BigInt::Mul(a, inv), m), BigInt(1));
  }
}

TEST(BigInt, ModInverseFailsOnCommonFactor) {
  BigInt inv;
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9), &inv));
  EXPECT_FALSE(BigInt::ModInverse(BigInt(0), BigInt(9), &inv));
  EXPECT_TRUE(BigInt::ModInverse(BigInt(2), BigInt(9), &inv));
  EXPECT_EQ(BigInt::Mod(BigInt::Mul(BigInt(2), inv), BigInt(9)), BigInt(1));
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).Low64(), 6u);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).Low64(), 1u);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).Low64(), 5u);
}

TEST(BigInt, PrimalityKnownValues) {
  util::Rng rng(8);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 97ull, 65537ull,
                          4294967291ull, 1000000007ull}) {
    EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(p), rng)) << p;
  }
  for (std::uint64_t c : {1ull, 4ull, 100ull, 65535ull, 4294967295ull,
                          1000000007ull * 3}) {
    EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(c), rng)) << c;
  }
}

TEST(BigInt, CarmichaelNumbersRejected) {
  util::Rng rng(9);
  // Carmichael numbers fool Fermat but not Miller–Rabin.
  for (std::uint64_t c : {561ull, 1105ull, 1729ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(c), rng)) << c;
  }
}

TEST(BigInt, RandomPrimeHasExactBits) {
  util::Rng rng(10);
  for (int bits : {32, 48, 64}) {
    const BigInt p = BigInt::RandomPrime(rng, bits);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(BigInt::IsProbablePrime(p, rng));
  }
}

TEST(BigInt, RandomBelowIsBelow) {
  util::Rng rng(11);
  const BigInt bound = BigInt::FromDecimal("987654321987654321987");
  for (int i = 0; i < 100; ++i)
    EXPECT_LT(BigInt::Compare(BigInt::RandomBelow(rng, bound), bound), 0);
}

// ----------------------------------------------------------------- rsa ----

class RsaTest : public ::testing::Test {
 protected:
  static const RsaPrivateKey& Key() {
    static const RsaPrivateKey key = [] {
      util::Rng rng(12);
      return RsaGenerateKey(rng, 512);
    }();
    return key;
  }
};

TEST_F(RsaTest, SignVerify) {
  const Bytes message = ToBytes("hello, revocation");
  const Bytes signature = RsaSign(Key(), message);
  EXPECT_EQ(signature.size(), static_cast<std::size_t>(Key().pub.ModulusBytes()));
  EXPECT_TRUE(RsaVerify(Key().pub, message, signature));
}

TEST_F(RsaTest, TamperedMessageRejected) {
  const Bytes message = ToBytes("hello, revocation");
  Bytes signature = RsaSign(Key(), message);
  EXPECT_FALSE(RsaVerify(Key().pub, ToBytes("hello, revocatioN"), signature));
}

TEST_F(RsaTest, TamperedSignatureRejected) {
  const Bytes message = ToBytes("msg");
  Bytes signature = RsaSign(Key(), message);
  signature[5] ^= 0x01;
  EXPECT_FALSE(RsaVerify(Key().pub, message, signature));
}

TEST_F(RsaTest, WrongLengthSignatureRejected) {
  const Bytes message = ToBytes("msg");
  Bytes signature = RsaSign(Key(), message);
  signature.pop_back();
  EXPECT_FALSE(RsaVerify(Key().pub, message, signature));
  signature.push_back(0);
  signature.push_back(0);
  EXPECT_FALSE(RsaVerify(Key().pub, message, signature));
}

TEST_F(RsaTest, WrongKeyRejected) {
  util::Rng rng(13);
  const RsaPrivateKey other = RsaGenerateKey(rng, 512);
  const Bytes message = ToBytes("msg");
  const Bytes signature = RsaSign(Key(), message);
  EXPECT_FALSE(RsaVerify(other.pub, message, signature));
}

TEST_F(RsaTest, DeterministicSignature) {
  // PKCS#1 v1.5 is deterministic: same key + message => same signature.
  const Bytes message = ToBytes("determinism");
  EXPECT_EQ(RsaSign(Key(), message), RsaSign(Key(), message));
}

TEST(Rsa, KeyGeneration768) {
  util::Rng rng(14);
  const RsaPrivateKey key = RsaGenerateKey(rng, 768);
  EXPECT_EQ(key.pub.n.BitLength(), 768);
  EXPECT_EQ(key.pub.e.Low64(), 65537u);
  const Bytes msg = ToBytes("768-bit key test");
  EXPECT_TRUE(RsaVerify(key.pub, msg, RsaSign(key, msg)));
}

// -------------------------------------------------------------- signer ----

TEST(Signer, SimSignVerify) {
  util::Rng rng(15);
  const KeyPair key = GenerateKeyPair(rng, KeyType::kSimSha256);
  const Bytes message = ToBytes("tbs bytes");
  const Bytes signature = Sign(key, message);
  EXPECT_EQ(signature.size(), kSha256DigestSize);
  EXPECT_TRUE(Verify(key.Public(), message, signature));
}

TEST(Signer, SimTamperRejected) {
  util::Rng rng(16);
  const KeyPair key = GenerateKeyPair(rng, KeyType::kSimSha256);
  const Bytes message = ToBytes("tbs bytes");
  Bytes signature = Sign(key, message);
  signature[0] ^= 1;
  EXPECT_FALSE(Verify(key.Public(), message, signature));
  EXPECT_FALSE(Verify(key.Public(), ToBytes("tbs bytez"), Sign(key, message)));
}

TEST(Signer, SimWrongKeyRejected) {
  util::Rng rng(17);
  const KeyPair a = GenerateKeyPair(rng, KeyType::kSimSha256);
  const KeyPair b = GenerateKeyPair(rng, KeyType::kSimSha256);
  const Bytes message = ToBytes("m");
  EXPECT_FALSE(Verify(b.Public(), message, Sign(a, message)));
}

TEST(Signer, RsaThroughInterface) {
  util::Rng rng(18);
  const KeyPair key = GenerateKeyPair(rng, KeyType::kRsaSha256, 512);
  const Bytes message = ToBytes("interface test");
  const Bytes signature = Sign(key, message);
  EXPECT_TRUE(Verify(key.Public(), message, signature));
  // Cross-scheme verification fails.
  KeyPair sim = GenerateKeyPair(rng, KeyType::kSimSha256);
  EXPECT_FALSE(Verify(sim.Public(), message, signature));
}

TEST(Signer, SimKeyFromLabelDeterministic) {
  const KeyPair a = SimKeyFromLabel("leaf:abc");
  const KeyPair b = SimKeyFromLabel("leaf:abc");
  const KeyPair c = SimKeyFromLabel("leaf:abd");
  EXPECT_EQ(a.sim_id, b.sim_id);
  EXPECT_NE(a.sim_id, c.sim_id);
}

TEST(Signer, PublicKeyEquality) {
  util::Rng rng(19);
  const KeyPair a = GenerateKeyPair(rng, KeyType::kSimSha256);
  EXPECT_TRUE(a.Public() == a.Public());
  const KeyPair b = GenerateKeyPair(rng, KeyType::kSimSha256);
  EXPECT_FALSE(a.Public() == b.Public());
}

}  // namespace
}  // namespace rev::crypto
