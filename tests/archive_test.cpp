// ScanArchive tests: round-trips, deduplication, file I/O, replay
// equivalence against live ingestion, and corruption rejection.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/archive.h"
#include "core/ecosystem.h"
#include "core/pipeline.h"
#include "scan/scanner.h"

namespace rev::core {
namespace {

constexpr std::int64_t kDay = util::kSecondsPerDay;

class ArchiveWorld : public ::testing::Test {
 protected:
  static Ecosystem& Eco() {
    static std::unique_ptr<Ecosystem> eco = [] {
      EcosystemConfig config;
      config.scale = 0.0006;
      config.seed = 21;
      return Ecosystem::Build(config);
    }();
    return *eco;
  }

  static ScanArchive BuildArchive(int scans) {
    ScanArchive archive;
    const EcosystemConfig& c = Eco().config();
    for (int i = 0; i < scans; ++i) {
      archive.AddSnapshot(scan::RunCertScan(
          Eco().internet(), c.study_start + i * 30 * kDay));
    }
    return archive;
  }
};

TEST_F(ArchiveWorld, DeduplicatesCertificates) {
  const ScanArchive archive = BuildArchive(5);
  ASSERT_EQ(archive.snapshot_count(), 5u);
  // Many observations, far fewer unique certificates.
  std::size_t observations = 0;
  for (const auto& snapshot : archive.Snapshots())
    observations += snapshot.observations.size();
  EXPECT_GT(observations, archive.cert_count());
  EXPECT_GT(archive.cert_count(), 100u);
}

TEST_F(ArchiveWorld, SerializeRoundTrip) {
  const ScanArchive archive = BuildArchive(3);
  const Bytes blob = archive.Serialize();
  auto restored = ScanArchive::Deserialize(blob);
  ASSERT_TRUE(restored);
  EXPECT_EQ(restored->snapshot_count(), archive.snapshot_count());
  EXPECT_EQ(restored->cert_count(), archive.cert_count());

  const auto original = archive.Snapshots();
  const auto loaded = restored->Snapshots();
  ASSERT_EQ(original.size(), loaded.size());
  for (std::size_t s = 0; s < original.size(); ++s) {
    EXPECT_EQ(loaded[s].time, original[s].time);
    ASSERT_EQ(loaded[s].observations.size(), original[s].observations.size());
    for (std::size_t i = 0; i < original[s].observations.size(); ++i) {
      EXPECT_EQ(loaded[s].observations[i].ip, original[s].observations[i].ip);
      ASSERT_EQ(loaded[s].observations[i].chain.size(),
                original[s].observations[i].chain.size());
      for (std::size_t c = 0; c < original[s].observations[i].chain.size(); ++c) {
        EXPECT_EQ(loaded[s].observations[i].chain[c]->Fingerprint(),
                  original[s].observations[i].chain[c]->Fingerprint());
      }
    }
  }
}

TEST_F(ArchiveWorld, ReplayMatchesLiveIngestion) {
  // A pipeline fed from the archive produces the same Leaf Set as one fed
  // from live scans.
  const EcosystemConfig& c = Eco().config();
  Pipeline live(Eco().roots());
  ScanArchive archive;
  for (int i = 0; i < 6; ++i) {
    const scan::CertScanSnapshot snapshot = scan::RunCertScan(
        Eco().internet(), c.study_start + i * 60 * kDay);
    live.IngestScan(snapshot);
    archive.AddSnapshot(snapshot);
  }
  live.Finalize();

  auto restored = ScanArchive::Deserialize(archive.Serialize());
  ASSERT_TRUE(restored);
  Pipeline replayed(Eco().roots());
  for (const scan::CertScanSnapshot& snapshot : restored->Snapshots())
    replayed.IngestScan(snapshot);
  replayed.Finalize();

  EXPECT_EQ(replayed.LeafSet().size(), live.LeafSet().size());
  EXPECT_EQ(replayed.IntermediateSet().size(), live.IntermediateSet().size());
  EXPECT_EQ(replayed.latest_scan_time(), live.latest_scan_time());
}

TEST_F(ArchiveWorld, FileRoundTrip) {
  const ScanArchive archive = BuildArchive(2);
  const std::string path = "/tmp/rev_archive_test.rvka";
  ASSERT_TRUE(archive.SaveToFile(path));
  auto loaded = ScanArchive::LoadFromFile(path);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->snapshot_count(), archive.snapshot_count());
  EXPECT_EQ(loaded->cert_count(), archive.cert_count());
  std::remove(path.c_str());
}

TEST_F(ArchiveWorld, LoadMissingFileFails) {
  EXPECT_FALSE(ScanArchive::LoadFromFile("/tmp/does-not-exist.rvka"));
}

TEST_F(ArchiveWorld, CorruptionRejected) {
  const ScanArchive archive = BuildArchive(1);
  Bytes blob = archive.Serialize();
  // Bad magic.
  Bytes bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ScanArchive::Deserialize(bad_magic));
  // Truncation.
  Bytes truncated(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(blob.size() / 2));
  EXPECT_FALSE(ScanArchive::Deserialize(truncated));
  // Trailing junk.
  Bytes extended = blob;
  extended.push_back(0x00);
  EXPECT_FALSE(ScanArchive::Deserialize(extended));
  // Out-of-range certificate index: flip a late index byte to 0xFF. The
  // deserializer must reject rather than read out of bounds.
  Bytes tampered = blob;
  tampered[tampered.size() - 1] = 0xFF;
  tampered[tampered.size() - 2] = 0xFF;
  EXPECT_FALSE(ScanArchive::Deserialize(tampered));
}

TEST(ScanArchiveEmpty, RoundTrips) {
  ScanArchive archive;
  auto restored = ScanArchive::Deserialize(archive.Serialize());
  ASSERT_TRUE(restored);
  EXPECT_EQ(restored->snapshot_count(), 0u);
  EXPECT_EQ(restored->cert_count(), 0u);
}

}  // namespace
}  // namespace rev::core
