// OCSP tests: request/response round-trips, status semantics, responder
// engine behavior, and error responses.
#include <gtest/gtest.h>

#include "ocsp/ocsp.h"
#include "ocsp/responder.h"
#include "util/rng.h"
#include "x509/name.h"

namespace rev::ocsp {
namespace {

constexpr util::Timestamp kNow = 1'412'208'000;  // 2014-10-02

crypto::KeyPair TestKey(std::string_view label) {
  return crypto::SimKeyFromLabel(label);
}

x509::Certificate MakeIssuerCert() {
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial{0x11};
  tbs.issuer = tbs.subject = x509::Name::Make("OCSP Test CA", "Test");
  tbs.not_before = 0;
  tbs.not_after = kNow + 10'000'000;
  tbs.public_key = TestKey("issuer").Public();
  tbs.basic_constraints = {true, -1};
  return x509::SignCertificate(tbs, TestKey("issuer"));
}

TEST(Ocsp, RequestRoundTrip) {
  const x509::Certificate issuer = MakeIssuerCert();
  OcspRequest request;
  request.cert_ids = {MakeCertId(issuer, x509::Serial{0xAA, 0xBB})};
  request.nonce = Bytes{1, 2, 3, 4};
  const Bytes der = EncodeOcspRequest(request);
  auto parsed = ParseOcspRequest(der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->cert_ids, request.cert_ids);
  EXPECT_EQ(parsed->nonce, request.nonce);
}

TEST(Ocsp, RequestWithoutNonce) {
  const x509::Certificate issuer = MakeIssuerCert();
  OcspRequest request;
  request.cert_ids = {MakeCertId(issuer, x509::Serial{0x01})};
  auto parsed = ParseOcspRequest(EncodeOcspRequest(request));
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->nonce.empty());
}

TEST(Ocsp, GetFormRoundTrip) {
  const x509::Certificate issuer = MakeIssuerCert();
  OcspRequest request;
  request.cert_ids = {MakeCertId(issuer, x509::Serial{0xAA, 0xBB, 0xCC})};
  const std::string path = OcspGetPath(request);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), '/');
  auto parsed = ParseOcspGetPath(path);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->cert_ids, request.cert_ids);
}

TEST(Ocsp, GetFormRejectsGarbage) {
  EXPECT_FALSE(ParseOcspGetPath(""));
  EXPECT_FALSE(ParseOcspGetPath("no-leading-slash"));
  EXPECT_FALSE(ParseOcspGetPath("/not-base64!!"));
  EXPECT_FALSE(ParseOcspGetPath("/QUJD"));  // valid base64, not an OCSP request
}

TEST(Ocsp, RequestRejectsGarbage) {
  EXPECT_FALSE(ParseOcspRequest(Bytes{}));
  EXPECT_FALSE(ParseOcspRequest(Bytes{0x30, 0x00}));
}

TEST(Ocsp, CertIdHashesIssuer) {
  const x509::Certificate issuer = MakeIssuerCert();
  const CertId id = MakeCertId(issuer, x509::Serial{0x01});
  EXPECT_EQ(id.issuer_name_hash.size(), 32u);
  EXPECT_EQ(id.issuer_key_hash.size(), 32u);
  EXPECT_EQ(id.issuer_key_hash, issuer.SubjectSpkiSha256());
}

class OcspResponseTest : public ::testing::Test {
 protected:
  x509::Certificate issuer_ = MakeIssuerCert();
  crypto::KeyPair key_ = TestKey("issuer");
};

TEST_F(OcspResponseTest, GoodRoundTrip) {
  SingleResponse single;
  single.cert_id = MakeCertId(issuer_, x509::Serial{0x42});
  single.status = CertStatus::kGood;
  single.this_update = kNow;
  single.next_update = kNow + 4 * util::kSecondsPerDay;
  const OcspResponse response = SignOcspResponse(single, kNow, key_);

  auto parsed = ParseOcspResponse(response.der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, ResponseStatus::kSuccessful);
  EXPECT_EQ(parsed->single.status, CertStatus::kGood);
  EXPECT_EQ(parsed->single.cert_id, single.cert_id);
  EXPECT_EQ(parsed->single.this_update, kNow);
  EXPECT_EQ(parsed->single.next_update, single.next_update);
  EXPECT_EQ(parsed->produced_at, kNow);
  EXPECT_TRUE(VerifyOcspSignature(*parsed, key_.Public()));
}

TEST_F(OcspResponseTest, RevokedRoundTrip) {
  SingleResponse single;
  single.cert_id = MakeCertId(issuer_, x509::Serial{0x43});
  single.status = CertStatus::kRevoked;
  single.revocation_time = kNow - 100'000;
  single.reason = x509::ReasonCode::kKeyCompromise;
  single.this_update = kNow;
  const OcspResponse response = SignOcspResponse(single, kNow, key_);

  auto parsed = ParseOcspResponse(response.der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, CertStatus::kRevoked);
  EXPECT_EQ(parsed->single.revocation_time, single.revocation_time);
  EXPECT_EQ(parsed->single.reason, x509::ReasonCode::kKeyCompromise);
  EXPECT_EQ(parsed->single.next_update, 0);
}

TEST_F(OcspResponseTest, UnknownRoundTrip) {
  SingleResponse single;
  single.cert_id = MakeCertId(issuer_, x509::Serial{0x44});
  single.status = CertStatus::kUnknown;
  single.this_update = kNow;
  auto parsed = ParseOcspResponse(SignOcspResponse(single, kNow, key_).der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, CertStatus::kUnknown);
}

TEST_F(OcspResponseTest, SignatureTamperRejected) {
  SingleResponse single;
  single.cert_id = MakeCertId(issuer_, x509::Serial{0x45});
  single.status = CertStatus::kGood;
  single.this_update = kNow;
  OcspResponse response = SignOcspResponse(single, kNow, key_);
  response.signature[3] ^= 1;
  EXPECT_FALSE(VerifyOcspSignature(response, key_.Public()));
  EXPECT_FALSE(VerifyOcspSignature(response, TestKey("wrong").Public()));
}

TEST_F(OcspResponseTest, ErrorResponses) {
  for (ResponseStatus status :
       {ResponseStatus::kMalformedRequest, ResponseStatus::kInternalError,
        ResponseStatus::kTryLater, ResponseStatus::kUnauthorized}) {
    const OcspResponse error = MakeErrorResponse(status);
    auto parsed = ParseOcspResponse(error.der);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->status, status);
    EXPECT_FALSE(VerifyOcspSignature(*parsed, key_.Public()));
  }
}

TEST_F(OcspResponseTest, SmallWireSize) {
  // §5.2: an OCSP exchange is typically under 1 KB — a core advantage
  // over CRLs.
  SingleResponse single;
  single.cert_id = MakeCertId(issuer_, x509::Serial{0x46});
  single.status = CertStatus::kGood;
  single.this_update = kNow;
  single.next_update = kNow + 4 * util::kSecondsPerDay;
  const OcspResponse response = SignOcspResponse(single, kNow, key_);
  EXPECT_LT(response.der.size(), 1024u);
  OcspRequest request;
  request.cert_ids = {single.cert_id};
  EXPECT_LT(EncodeOcspRequest(request).size(), 1024u);
}

TEST_F(OcspResponseTest, DescribeRendering) {
  SingleResponse single;
  single.cert_id = MakeCertId(issuer_, x509::Serial{0x77});
  single.status = CertStatus::kRevoked;
  single.revocation_time = kNow - 3600;
  single.reason = x509::ReasonCode::kCaCompromise;
  single.this_update = kNow;
  const std::string text =
      DescribeOcspResponse(SignOcspResponse(single, kNow, key_));
  EXPECT_NE(text.find("cert status : revoked"), std::string::npos);
  EXPECT_NE(text.find("cACompromise"), std::string::npos);
  EXPECT_NE(DescribeOcspResponse(MakeErrorResponse(ResponseStatus::kTryLater))
                .find("error"),
            std::string::npos);
}

// ----------------------------------------------------------- responder ----

class ResponderTest : public ::testing::Test {
 protected:
  ResponderTest()
      : issuer_(MakeIssuerCert()),
        responder_(issuer_, TestKey("issuer"), 4 * util::kSecondsPerDay) {}

  Bytes Query(const x509::Serial& serial) {
    OcspRequest request;
    request.cert_ids = {MakeCertId(issuer_, serial)};
    return responder_.Handle(EncodeOcspRequest(request), kNow);
  }

  x509::Certificate issuer_;
  Responder responder_;
};

TEST_F(ResponderTest, GoodForRegistered) {
  responder_.AddCertificate(x509::Serial{0x01});
  auto parsed = ParseOcspResponse(Query(x509::Serial{0x01}));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, CertStatus::kGood);
  EXPECT_EQ(parsed->single.next_update, kNow + 4 * util::kSecondsPerDay);
  EXPECT_TRUE(VerifyOcspSignature(*parsed, TestKey("issuer").Public()));
}

TEST_F(ResponderTest, UnknownForUnregistered) {
  auto parsed = ParseOcspResponse(Query(x509::Serial{0x99}));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, CertStatus::kUnknown);
}

TEST_F(ResponderTest, RevokedAfterRevoke) {
  responder_.AddCertificate(x509::Serial{0x02});
  responder_.Revoke(x509::Serial{0x02}, kNow - 500,
                    x509::ReasonCode::kCaCompromise);
  auto parsed = ParseOcspResponse(Query(x509::Serial{0x02}));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, CertStatus::kRevoked);
  EXPECT_EQ(parsed->single.revocation_time, kNow - 500);
  EXPECT_EQ(parsed->single.reason, x509::ReasonCode::kCaCompromise);
}

TEST_F(ResponderTest, RemoveYieldsUnknown) {
  responder_.AddCertificate(x509::Serial{0x03});
  responder_.Remove(x509::Serial{0x03});
  auto parsed = ParseOcspResponse(Query(x509::Serial{0x03}));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, CertStatus::kUnknown);
}

TEST_F(ResponderTest, MalformedRequestRejected) {
  auto parsed = ParseOcspResponse(responder_.Handle(Bytes{0x00, 0x01}, kNow));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, ResponseStatus::kMalformedRequest);
}

TEST_F(ResponderTest, WrongIssuerUnauthorized) {
  // A request keyed to a different issuer is not ours to answer.
  x509::TbsCertificate other_tbs;
  other_tbs.serial = x509::Serial{0x22};
  other_tbs.issuer = other_tbs.subject = x509::Name::FromCommonName("Other CA");
  other_tbs.not_before = 0;
  other_tbs.not_after = kNow + 1'000'000;
  other_tbs.public_key = TestKey("other").Public();
  other_tbs.basic_constraints = {true, -1};
  const x509::Certificate other =
      x509::SignCertificate(other_tbs, TestKey("other"));

  OcspRequest request;
  request.cert_ids = {MakeCertId(other, x509::Serial{0x01})};
  auto parsed = ParseOcspResponse(
      responder_.Handle(EncodeOcspRequest(request), kNow));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, ResponseStatus::kUnauthorized);
}

TEST_F(ResponderTest, StatusForStapling) {
  responder_.AddCertificate(x509::Serial{0x05});
  const OcspResponse staple = responder_.StatusFor(x509::Serial{0x05}, kNow);
  EXPECT_EQ(staple.status, ResponseStatus::kSuccessful);
  EXPECT_EQ(staple.single.status, CertStatus::kGood);
  auto parsed = ParseOcspResponse(staple.der);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(VerifyOcspSignature(*parsed, TestKey("issuer").Public()));
}

TEST_F(ResponderTest, MultiCertRequestOrderPreserved) {
  // RFC 6960: a request listing N certificates yields N SingleResponses in
  // request order. Regression: Handle() used to answer only the first.
  responder_.AddCertificate(x509::Serial{0x0A});
  responder_.AddCertificate(x509::Serial{0x0B});
  responder_.Revoke(x509::Serial{0x0B}, kNow - 200,
                    x509::ReasonCode::kSuperseded);
  // 0x0C was never registered -> unknown.
  OcspRequest request;
  request.cert_ids = {MakeCertId(issuer_, x509::Serial{0x0B}),
                      MakeCertId(issuer_, x509::Serial{0x0C}),
                      MakeCertId(issuer_, x509::Serial{0x0A})};
  auto parsed =
      ParseOcspResponse(responder_.Handle(EncodeOcspRequest(request), kNow));
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->singles.size(), 3u);
  EXPECT_EQ(parsed->singles[0].cert_id, request.cert_ids[0]);
  EXPECT_EQ(parsed->singles[0].status, CertStatus::kRevoked);
  EXPECT_EQ(parsed->singles[0].reason, x509::ReasonCode::kSuperseded);
  EXPECT_EQ(parsed->singles[1].cert_id, request.cert_ids[1]);
  EXPECT_EQ(parsed->singles[1].status, CertStatus::kUnknown);
  EXPECT_EQ(parsed->singles[2].cert_id, request.cert_ids[2]);
  EXPECT_EQ(parsed->singles[2].status, CertStatus::kGood);
  EXPECT_EQ(parsed->single.cert_id, request.cert_ids[0]);  // front alias
  EXPECT_TRUE(VerifyOcspSignature(*parsed, TestKey("issuer").Public()));
}

TEST_F(ResponderTest, NonceEchoedInResponse) {
  responder_.AddCertificate(x509::Serial{0x0D});
  OcspRequest request;
  request.cert_ids = {MakeCertId(issuer_, x509::Serial{0x0D})};
  request.nonce = Bytes{9, 8, 7, 6, 5};
  auto parsed =
      ParseOcspResponse(responder_.Handle(EncodeOcspRequest(request), kNow));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->nonce, request.nonce);
  EXPECT_EQ(parsed->single.status, CertStatus::kGood);
  EXPECT_TRUE(VerifyOcspSignature(*parsed, TestKey("issuer").Public()));
}

TEST_F(ResponderTest, RevokeIsIdempotentInResponder) {
  responder_.AddCertificate(x509::Serial{0x06});
  responder_.Revoke(x509::Serial{0x06}, kNow - 100, x509::ReasonCode::kUnspecified);
  responder_.Revoke(x509::Serial{0x06}, kNow - 50, x509::ReasonCode::kSuperseded);
  auto parsed = ParseOcspResponse(Query(x509::Serial{0x06}));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, CertStatus::kRevoked);
}

}  // namespace
}  // namespace rev::ocsp
