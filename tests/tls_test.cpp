// TLS handshake / OCSP stapling behavior tests, including the nginx-style
// cache dynamics behind Fig. 3 and the staple-status refusal rules.
#include <gtest/gtest.h>

#include "ocsp/ocsp.h"
#include "tls/handshake.h"
#include "x509/certificate.h"
#include "x509/name.h"

namespace rev::tls {
namespace {

constexpr util::Timestamp kNow = 1'412'208'000;

crypto::KeyPair TestKey(std::string_view label) {
  return crypto::SimKeyFromLabel(label);
}

// Builds a signed staple with the given status.
Bytes MakeStaple(ocsp::CertStatus status, util::Timestamp now,
                 util::Timestamp next_update = 0) {
  ocsp::SingleResponse single;
  single.cert_id.issuer_name_hash = Bytes(32, 0x11);
  single.cert_id.issuer_key_hash = Bytes(32, 0x22);
  single.cert_id.serial = x509::Serial{0x01};
  single.status = status;
  single.this_update = now;
  single.next_update = next_update ? next_update : now + 4 * util::kSecondsPerDay;
  if (status == ocsp::CertStatus::kRevoked) single.revocation_time = now - 1000;
  return ocsp::SignOcspResponse(single, now, TestKey("resp")).der;
}

TEST(TlsServer, NoStaplingMeansNoStaple) {
  TlsServer::Config config;
  config.chain_der = {ToBytes("leaf-der")};
  TlsServer server(config);
  ClientHello hello;
  hello.status_request = true;
  const ServerHello response = server.Handshake(hello, kNow);
  EXPECT_EQ(response.chain_der.size(), 1u);
  EXPECT_TRUE(response.stapled_ocsp.empty());
}

TEST(TlsServer, StapleNotSentWhenNotRequested) {
  TlsServer::Config config;
  config.stapling_enabled = true;
  config.staple_requires_cache = false;
  config.fetch_leaf_staple = [](util::Timestamp t) {
    return MakeStaple(ocsp::CertStatus::kGood, t);
  };
  TlsServer server(config);
  ClientHello hello;  // no status_request
  EXPECT_TRUE(server.Handshake(hello, kNow).stapled_ocsp.empty());
}

TEST(TlsServer, ImmediateStapleWhenCacheNotRequired) {
  TlsServer::Config config;
  config.stapling_enabled = true;
  config.staple_requires_cache = false;
  config.fetch_leaf_staple = [](util::Timestamp t) {
    return MakeStaple(ocsp::CertStatus::kGood, t);
  };
  TlsServer server(config);
  ClientHello hello;
  hello.status_request = true;
  const ServerHello response = server.Handshake(hello, kNow);
  EXPECT_FALSE(response.stapled_ocsp.empty());
}

TEST(TlsServer, NginxColdCacheWarmsAfterFirstHandshake) {
  // The §4.3/Fig. 3 behavior: first connection gets no staple, the fetch
  // completes afterwards, the second connection is served from cache.
  int fetches = 0;
  TlsServer::Config config;
  config.stapling_enabled = true;
  config.staple_requires_cache = true;
  config.fetch_leaf_staple = [&fetches](util::Timestamp t) {
    ++fetches;
    return MakeStaple(ocsp::CertStatus::kGood, t);
  };
  TlsServer server(config);
  ClientHello hello;
  hello.status_request = true;

  EXPECT_TRUE(server.Handshake(hello, kNow).stapled_ocsp.empty());
  EXPECT_EQ(fetches, 1);
  EXPECT_FALSE(server.Handshake(hello, kNow + 3).stapled_ocsp.empty());
  EXPECT_EQ(fetches, 1);  // served from cache
}

TEST(TlsServer, CachedStapleExpiresAtNextUpdate) {
  TlsServer::Config config;
  config.stapling_enabled = true;
  config.staple_requires_cache = true;
  config.fetch_leaf_staple = [](util::Timestamp t) {
    return MakeStaple(ocsp::CertStatus::kGood, t,
                      t + util::kSecondsPerDay);
  };
  TlsServer server(config);
  ClientHello hello;
  hello.status_request = true;

  server.Handshake(hello, kNow);  // warms cache
  EXPECT_FALSE(server.Handshake(hello, kNow + 10).stapled_ocsp.empty());
  // After expiry the cache misses again (no staple, then re-warmed).
  const util::Timestamp later = kNow + 2 * util::kSecondsPerDay;
  EXPECT_TRUE(server.Handshake(hello, later).stapled_ocsp.empty());
  EXPECT_FALSE(server.Handshake(hello, later + 3).stapled_ocsp.empty());
}

TEST(TlsServer, RefusesRevokedStapleByDefault) {
  // Default nginx refuses to staple revoked/unknown responses (§6.1); the
  // paper patched that out, modeled by staple_any_status.
  TlsServer::Config config;
  config.stapling_enabled = true;
  config.staple_requires_cache = false;
  config.staple_any_status = false;
  config.fetch_leaf_staple = [](util::Timestamp t) {
    return MakeStaple(ocsp::CertStatus::kRevoked, t);
  };
  TlsServer server(config);
  ClientHello hello;
  hello.status_request = true;
  EXPECT_TRUE(server.Handshake(hello, kNow).stapled_ocsp.empty());

  config.staple_any_status = true;
  TlsServer patched(config);
  EXPECT_FALSE(patched.Handshake(hello, kNow).stapled_ocsp.empty());
}

TEST(TlsServer, RefusesUnknownStapleByDefault) {
  TlsServer::Config config;
  config.stapling_enabled = true;
  config.staple_requires_cache = false;
  config.staple_any_status = false;
  config.fetch_leaf_staple = [](util::Timestamp t) {
    return MakeStaple(ocsp::CertStatus::kUnknown, t);
  };
  TlsServer server(config);
  ClientHello hello;
  hello.status_request = true;
  EXPECT_TRUE(server.Handshake(hello, kNow).stapled_ocsp.empty());
}

TEST(TlsServer, EmptyFetchMeansNoStaple) {
  TlsServer::Config config;
  config.stapling_enabled = true;
  config.staple_requires_cache = false;
  config.fetch_leaf_staple = [](util::Timestamp) { return Bytes{}; };
  TlsServer server(config);
  ClientHello hello;
  hello.status_request = true;
  EXPECT_TRUE(server.Handshake(hello, kNow).stapled_ocsp.empty());
}

TEST(TlsServer, MultiStapleCoversChain) {
  TlsServer::Config config;
  config.chain_der = {ToBytes("leaf"), ToBytes("int1")};
  config.stapling_enabled = true;
  config.multi_staple_enabled = true;
  config.staple_any_status = true;
  config.fetch_chain_staples = {
      [](util::Timestamp t) { return MakeStaple(ocsp::CertStatus::kGood, t); },
      [](util::Timestamp t) { return MakeStaple(ocsp::CertStatus::kGood, t); },
  };
  TlsServer server(config);
  ClientHello hello;
  hello.status_request = true;
  hello.status_request_v2 = true;
  const ServerHello response = server.Handshake(hello, kNow);
  ASSERT_EQ(response.stapled_ocsp_multi.size(), 2u);
  EXPECT_FALSE(response.stapled_ocsp_multi[0].empty());
  EXPECT_FALSE(response.stapled_ocsp_multi[1].empty());
  // Leaf staple mirrors the first multi-staple.
  EXPECT_EQ(response.stapled_ocsp, response.stapled_ocsp_multi[0]);
}

TEST(TlsServer, MultiStapleRequiresV2Request) {
  TlsServer::Config config;
  config.stapling_enabled = true;
  config.multi_staple_enabled = true;
  config.staple_requires_cache = false;
  config.fetch_leaf_staple = [](util::Timestamp t) {
    return MakeStaple(ocsp::CertStatus::kGood, t);
  };
  config.fetch_chain_staples = {
      [](util::Timestamp t) { return MakeStaple(ocsp::CertStatus::kGood, t); }};
  TlsServer server(config);
  ClientHello hello;
  hello.status_request = true;  // v1 only
  const ServerHello response = server.Handshake(hello, kNow);
  EXPECT_TRUE(response.stapled_ocsp_multi.empty());
  EXPECT_FALSE(response.stapled_ocsp.empty());
}

}  // namespace
}  // namespace rev::tls
