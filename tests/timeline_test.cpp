// Exact-semantics tests for the timeline analytics (Fig. 1's fresh/alive
// definitions and Fig. 2's revoked fractions) on a hand-built world where
// every date is controlled.
#include <gtest/gtest.h>

#include "ca/ca.h"
#include "core/crawler.h"
#include "core/pipeline.h"
#include "core/timeline.h"
#include "scan/internet.h"
#include "scan/scanner.h"
#include "util/rng.h"

namespace rev::core {
namespace {

constexpr std::int64_t kDay = util::kSecondsPerDay;
const util::Timestamp kT0 = util::MakeDate(2014, 1, 1);

class TimelineWorld : public ::testing::Test {
 protected:
  TimelineWorld() : rng_(5) {
    ca::CertificateAuthority::Options options;
    options.name = "TLCA";
    options.domain = "tlca.sim";
    ca_ = ca::CertificateAuthority::CreateRoot(options, rng_, kT0 - 1000 * kDay);
    ca_->RegisterEndpoints(&net_);
    roots_.Add(ca_->cert());
  }

  // Issues a cert fresh over [nb, na] and advertises it over [birth, death).
  x509::CertPtr AddSite(const std::string& cn, util::Timestamp nb,
                        util::Timestamp na, util::Timestamp birth,
                        util::Timestamp death, bool ev = false) {
    ca::CertificateAuthority::IssueOptions issue;
    issue.common_name = cn;
    issue.ev = ev;
    issue.not_before = nb;
    issue.lifetime_seconds = na - nb;
    const x509::CertPtr leaf = ca_->Issue(issue, rng_);
    scan::Server server{};
    server.ip = next_ip_++;
    server.leaf = leaf;
    server.chain = {leaf};
    server.birth = birth;
    server.death = death;
    internet_.AddServer(std::move(server));
    return leaf;
  }

  // Scans weekly over [from, to], crawls once at `crawl_at`, and returns the
  // timeline sampled daily over [sample_from, sample_to].
  std::vector<RevocationTimelinePoint> Run(util::Timestamp scan_from,
                                           util::Timestamp scan_to,
                                           util::Timestamp crawl_at,
                                           util::Timestamp sample_from,
                                           util::Timestamp sample_to) {
    pipeline_ = std::make_unique<Pipeline>(roots_);
    for (util::Timestamp t = scan_from; t <= scan_to; t += 7 * kDay)
      pipeline_->IngestScan(scan::RunCertScan(internet_, t));
    pipeline_->Finalize();
    crawler_ = std::make_unique<RevocationCrawler>(&net_);
    crawler_->CollectUrls(*pipeline_);
    crawler_->CrawlAll(crawl_at);
    return ComputeRevocationTimeline(*pipeline_, *crawler_, sample_from,
                                     sample_to, kDay);
  }

  util::Rng rng_;
  net::SimNet net_;
  x509::CertPool roots_;
  std::unique_ptr<ca::CertificateAuthority> ca_;
  scan::Internet internet_;
  std::unique_ptr<Pipeline> pipeline_;
  std::unique_ptr<RevocationCrawler> crawler_;
  std::uint32_t next_ip_ = 1;
};

TEST_F(TimelineWorld, FreshWindowFollowsValidityNotAdvertisement) {
  // Fresh over days 0..100, advertised only days 10..40.
  AddSite("a.sim", kT0, kT0 + 100 * kDay, kT0 + 10 * kDay, kT0 + 40 * kDay);
  const auto points =
      Run(kT0 + 10 * kDay, kT0 + 40 * kDay, kT0 + 50 * kDay, kT0 - 5 * kDay,
          kT0 + 105 * kDay);

  auto at = [&](util::Timestamp t) -> const RevocationTimelinePoint& {
    return points[static_cast<std::size_t>((t - (kT0 - 5 * kDay)) / kDay)];
  };
  EXPECT_EQ(at(kT0 - kDay).fresh, 0u);       // before notBefore
  EXPECT_EQ(at(kT0 + 50 * kDay).fresh, 1u);  // within validity
  EXPECT_EQ(at(kT0 + 101 * kDay).fresh, 0u); // past notAfter

  // Alive follows the scan observations (first_seen..last_seen).
  EXPECT_EQ(at(kT0 + 5 * kDay).alive, 0u);
  EXPECT_EQ(at(kT0 + 20 * kDay).alive, 1u);
  EXPECT_EQ(at(kT0 + 60 * kDay).alive, 0u);
}

TEST_F(TimelineWorld, RevocationBackdatedByCrlTimestamp) {
  // Revoked on day 20; the crawler only looks on day 60 — yet the timeline
  // must show the certificate revoked from day 20 on (§3: revocation
  // timestamps in CRLs allow backdating).
  const x509::CertPtr leaf =
      AddSite("b.sim", kT0, kT0 + 200 * kDay, kT0, kT0 + 200 * kDay);
  ca_->Revoke(leaf->tbs.serial, kT0 + 20 * kDay,
              x509::ReasonCode::kKeyCompromise);

  const auto points = Run(kT0, kT0 + 80 * kDay, kT0 + 60 * kDay, kT0,
                          kT0 + 80 * kDay);
  auto at = [&](int day) -> const RevocationTimelinePoint& {
    return points[static_cast<std::size_t>(day)];
  };
  EXPECT_EQ(at(10).fresh_revoked, 0u);
  EXPECT_EQ(at(19).fresh_revoked, 0u);
  EXPECT_EQ(at(20).fresh_revoked, 1u);
  EXPECT_EQ(at(70).fresh_revoked, 1u);
  EXPECT_EQ(at(70).alive_revoked, 1u);  // still advertised
}

TEST_F(TimelineWorld, EvCountedSeparately) {
  AddSite("plain.sim", kT0, kT0 + 100 * kDay, kT0, kT0 + 100 * kDay, false);
  const x509::CertPtr ev =
      AddSite("ev.sim", kT0, kT0 + 100 * kDay, kT0, kT0 + 100 * kDay, true);
  ca_->Revoke(ev->tbs.serial, kT0 + 5 * kDay, x509::ReasonCode::kUnspecified);

  const auto points =
      Run(kT0, kT0 + 50 * kDay, kT0 + 30 * kDay, kT0 + 10 * kDay, kT0 + 10 * kDay);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].fresh, 2u);
  EXPECT_EQ(points[0].fresh_ev, 1u);
  EXPECT_EQ(points[0].fresh_revoked, 1u);
  EXPECT_EQ(points[0].fresh_ev_revoked, 1u);
  EXPECT_DOUBLE_EQ(points[0].FreshRevokedFraction(), 0.5);
  EXPECT_DOUBLE_EQ(points[0].FreshEvRevokedFraction(), 1.0);
}

TEST_F(TimelineWorld, ExpiredRevokedCertInvisibleToLateCrawl) {
  // Revoked day 10, cert expires day 30, crawl happens day 60: the CRL has
  // already dropped the entry, so the revocation is never discovered — the
  // same blind spot the paper's October-2014 crawl start has for
  // already-expired certificates.
  const x509::CertPtr leaf =
      AddSite("gone.sim", kT0, kT0 + 30 * kDay, kT0, kT0 + 30 * kDay);
  ca_->Revoke(leaf->tbs.serial, kT0 + 10 * kDay,
              x509::ReasonCode::kKeyCompromise);

  const auto points =
      Run(kT0, kT0 + 28 * kDay, kT0 + 60 * kDay, kT0 + 15 * kDay, kT0 + 15 * kDay);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].fresh, 1u);
  EXPECT_EQ(points[0].fresh_revoked, 0u);  // invisible
}

TEST_F(TimelineWorld, AdoptionBucketsByIssuanceMonth) {
  AddSite("jan1.sim", util::MakeDate(2014, 1, 5), kT0 + 400 * kDay, kT0,
          kT0 + 100 * kDay);
  AddSite("jan2.sim", util::MakeDate(2014, 1, 20), kT0 + 400 * kDay, kT0,
          kT0 + 100 * kDay);
  AddSite("mar.sim", util::MakeDate(2014, 3, 10), kT0 + 400 * kDay,
          kT0 + 70 * kDay, kT0 + 100 * kDay);
  Run(kT0, kT0 + 90 * kDay, kT0 + 50 * kDay, kT0, kT0);

  const auto adoption = ComputeRevinfoAdoption(*pipeline_);
  ASSERT_EQ(adoption.size(), 2u);
  EXPECT_EQ(adoption[0].month_start, util::MakeDate(2014, 1, 1));
  EXPECT_EQ(adoption[0].issued, 2u);
  EXPECT_EQ(adoption[1].month_start, util::MakeDate(2014, 3, 1));
  EXPECT_EQ(adoption[1].issued, 1u);
  EXPECT_DOUBLE_EQ(adoption[0].CrlFraction(), 1.0);
  EXPECT_DOUBLE_EQ(adoption[0].OcspFraction(), 1.0);
}

}  // namespace
}  // namespace rev::core
