// Fleet tests: replication wire format (round-trip + fail-closed on
// corruption), consistent-hash ring (determinism, balance, minimal
// disruption), snapshot push/import over SimNet, health hysteresis and
// warm-up gating, client failover/hedging/Retry-After, and a fixed-seed
// mini-soak whose per-client results are bit-identical at 1 and 8 threads
// with zero wrong revocation answers. See docs/fleet.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fleet/client.h"
#include "fleet/health.h"
#include "fleet/metricsview.h"
#include "fleet/publisher.h"
#include "fleet/replica.h"
#include "fleet/ring.h"
#include "fleet/snapshot.h"
#include "net/fault.h"
#include "net/simnet.h"
#include "obs/distrace.h"
#include "obs/metrics.h"
#include "ocsp/ocsp.h"
#include "ocsp/responder.h"
#include "serve/frontend.h"
#include "util/rng.h"
#include "x509/name.h"

namespace rev::fleet {
namespace {

constexpr util::Timestamp kNow = 1'420'000'000;  // 2014-12-31
constexpr util::Timestamp kDay = util::kSecondsPerDay;
constexpr std::string_view kKeyLabel = "fleet-issuer";

crypto::KeyPair TestKey() { return crypto::SimKeyFromLabel(kKeyLabel); }

x509::Certificate MakeIssuerCert() {
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial{0x42};
  tbs.issuer = tbs.subject = x509::Name::Make("Fleet Test CA", "Test");
  tbs.not_before = 0;
  tbs.not_after = kNow + 1000 * kDay;
  tbs.public_key = TestKey().Public();
  tbs.basic_constraints = {true, -1};
  return x509::SignCertificate(tbs, TestKey());
}

x509::Serial SerialOf(std::uint64_t n) {
  // Fixed nonzero leading byte < 0x80 so the serial survives DER INTEGER
  // round-trips unchanged (same trick as bench_serve).
  x509::Serial serial(8);
  serial[0] = 0x4D;
  for (int b = 1; b < 8; ++b)
    serial[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(n >> (8 * (7 - b)));
  return serial;
}

serve::StatusKey KeyFor(BytesView issuer_key_hash, std::uint64_t n) {
  return serve::MakeStatusKey(issuer_key_hash, SerialOf(n));
}

StatusSnapshot SampleSnapshot(std::size_t count) {
  StatusSnapshot snapshot;
  snapshot.epoch = 7;
  snapshot.published_at = kNow;
  const Bytes hash(32, 0xAB);
  for (std::size_t i = 0; i < count; ++i) {
    serve::StatusIndex::Record record;
    if (i % 3 == 0) {
      record.status = ocsp::CertStatus::kRevoked;
      record.revocation_time = kNow - static_cast<util::Timestamp>(i);
      record.reason = x509::ReasonCode::kKeyCompromise;
    } else {
      record.status = ocsp::CertStatus::kGood;
    }
    snapshot.records.emplace_back(KeyFor(hash, i + 1), record);
  }
  std::sort(snapshot.records.begin(), snapshot.records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snapshot;
}

// ------------------------------------------------------------ wire blobs ---

TEST(FleetWire, StatusSnapshotRoundTrip) {
  const StatusSnapshot snapshot = SampleSnapshot(20);
  const Bytes blob = snapshot.Serialize();
  const auto parsed = StatusSnapshot::Deserialize(blob);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->epoch, 7u);
  EXPECT_EQ(parsed->published_at, kNow);
  ASSERT_EQ(parsed->records.size(), snapshot.records.size());
  for (std::size_t i = 0; i < snapshot.records.size(); ++i) {
    EXPECT_EQ(parsed->records[i].first, snapshot.records[i].first);
    EXPECT_TRUE(parsed->records[i].second == snapshot.records[i].second);
  }
  // Serialization is deterministic: same state, same bytes.
  EXPECT_EQ(parsed->Serialize(), blob);
}

TEST(FleetWire, ResponseBatchRoundTrip) {
  ResponseBatch batch;
  batch.epoch = 3;
  batch.published_at = kNow;
  const Bytes hash(32, 0xCD);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    serve::ResponseCache::Entry entry;
    entry.der = std::make_shared<const Bytes>(Bytes(i, static_cast<std::uint8_t>(i)));
    entry.signed_at = kNow;
    entry.serve_until = kNow + static_cast<util::Timestamp>(i) * 100;
    batch.entries.emplace_back(KeyFor(hash, i), entry);
  }
  std::sort(batch.entries.begin(), batch.entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const Bytes blob = batch.Serialize();
  const auto parsed = ResponseBatch::Deserialize(blob);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->epoch, 3u);
  ASSERT_EQ(parsed->entries.size(), batch.entries.size());
  for (std::size_t i = 0; i < batch.entries.size(); ++i) {
    EXPECT_EQ(parsed->entries[i].first, batch.entries[i].first);
    EXPECT_EQ(*parsed->entries[i].second.der, *batch.entries[i].second.der);
    EXPECT_EQ(parsed->entries[i].second.serve_until,
              batch.entries[i].second.serve_until);
  }
}

TEST(FleetWire, EveryTruncationFailsClosed) {
  const Bytes blob = SampleSnapshot(8).Serialize();
  for (std::size_t len = 0; len < blob.size(); ++len)
    EXPECT_FALSE(StatusSnapshot::Deserialize(BytesView(blob.data(), len)))
        << "truncation at " << len << " parsed";
}

TEST(FleetWire, EveryBitFlipFailsClosed) {
  const Bytes blob = SampleSnapshot(4).Serialize();
  for (std::size_t i = 0; i < blob.size(); ++i) {
    Bytes corrupt = blob;
    corrupt[i] ^= 0x01;
    EXPECT_FALSE(StatusSnapshot::Deserialize(corrupt))
        << "bit flip at byte " << i << " parsed";
  }
  const Bytes batch_blob = [] {
    ResponseBatch batch;
    batch.epoch = 1;
    serve::ResponseCache::Entry entry;
    entry.der = std::make_shared<const Bytes>(Bytes{1, 2, 3});
    entry.serve_until = kNow + 100;
    batch.entries.emplace_back(KeyFor(Bytes(32, 1), 5), entry);
    return batch.Serialize();
  }();
  for (std::size_t i = 0; i < batch_blob.size(); ++i) {
    Bytes corrupt = batch_blob;
    corrupt[i] ^= 0x80;
    EXPECT_FALSE(ResponseBatch::Deserialize(corrupt));
  }
}

TEST(FleetWire, RejectsWrongKindUnsortedAndTrailingGarbage) {
  // A response batch posted where a snapshot is expected (and vice versa)
  // is rejected by the format tag even though its checksum is valid.
  const Bytes snapshot_blob = SampleSnapshot(2).Serialize();
  EXPECT_FALSE(ResponseBatch::Deserialize(snapshot_blob));

  StatusSnapshot unsorted = SampleSnapshot(3);
  std::swap(unsorted.records[0], unsorted.records[2]);
  EXPECT_FALSE(StatusSnapshot::Deserialize(unsorted.Serialize()));

  StatusSnapshot dup = SampleSnapshot(2);
  dup.records[1] = dup.records[0];
  EXPECT_FALSE(StatusSnapshot::Deserialize(dup.Serialize()));
}

// ------------------------------------------------------------------ ring ---

TEST(FleetRing, DeterministicAcrossInstancesAndInsertionOrder) {
  HashRing a, b;
  a.AddNode("r1");
  a.AddNode("r2");
  a.AddNode("r3");
  b.AddNode("r3");
  b.AddNode("r1");
  b.AddNode("r2");
  const Bytes hash(32, 0x11);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const serve::StatusKey key = KeyFor(hash, i);
    ASSERT_EQ(*a.PrimaryFor(key), *b.PrimaryFor(key)) << i;
    const auto pa = a.PreferenceList(key, 3);
    const auto pb = b.PreferenceList(key, 3);
    ASSERT_EQ(pa.size(), 3u);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(*pa[j], *pb[j]);
    // Preference list holds distinct replicas.
    EXPECT_NE(*pa[0], *pa[1]);
    EXPECT_NE(*pa[1], *pa[2]);
    EXPECT_NE(*pa[0], *pa[2]);
  }
}

TEST(FleetRing, BalanceWithinThreefold) {
  HashRing ring;
  const std::vector<std::string> nodes = {"r1", "r2", "r3", "r4", "r5"};
  for (const auto& node : nodes) ring.AddNode(node);
  std::map<std::string, std::size_t> owned;
  const Bytes hash(32, 0x22);
  for (std::uint64_t i = 0; i < 10'000; ++i)
    ++owned[*ring.PrimaryFor(KeyFor(hash, i))];
  std::size_t lo = 10'000, hi = 0;
  for (const auto& node : nodes) {
    lo = std::min(lo, owned[node]);
    hi = std::max(hi, owned[node]);
  }
  EXPECT_GT(lo, 0u);
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 3.0)
      << "vnode balance degenerated: " << lo << " .. " << hi;
}

TEST(FleetRing, DisableMovesOnlyTheDisabledNodesKeys) {
  HashRing ring;
  ring.AddNode("r1");
  ring.AddNode("r2");
  ring.AddNode("r3");
  const Bytes hash(32, 0x33);
  std::map<std::uint64_t, std::string> before;
  for (std::uint64_t i = 0; i < 2'000; ++i)
    before[i] = *ring.PrimaryFor(KeyFor(hash, i));
  ring.SetEnabled("r2", false);
  std::size_t moved = 0;
  for (std::uint64_t i = 0; i < 2'000; ++i) {
    const std::string now_owner = *ring.PrimaryFor(KeyFor(hash, i));
    EXPECT_NE(now_owner, "r2");
    if (before[i] == "r2") {
      ++moved;
    } else {
      // Minimal disruption: keys not owned by r2 keep their primary.
      EXPECT_EQ(now_owner, before[i]) << i;
    }
  }
  EXPECT_GT(moved, 0u);
  // Re-admission restores the exact original assignment.
  ring.SetEnabled("r2", true);
  for (std::uint64_t i = 0; i < 2'000; ++i)
    EXPECT_EQ(*ring.PrimaryFor(KeyFor(hash, i)), before[i]);
}

TEST(FleetRing, DisabledNodesDoNotConsumePreferenceSlots) {
  HashRing ring;
  ring.AddNode("r1");
  ring.AddNode("r2");
  ring.AddNode("r3");
  ring.SetEnabled("r1", false);
  const serve::StatusKey key = KeyFor(Bytes(32, 0x44), 9);
  const auto prefs = ring.PreferenceList(key, 2);
  ASSERT_EQ(prefs.size(), 2u);  // still two candidates from {r2, r3}
  EXPECT_NE(*prefs[0], "r1");
  EXPECT_NE(*prefs[1], "r1");
  ring.SetEnabled("r2", false);
  ring.SetEnabled("r3", false);
  EXPECT_TRUE(ring.PreferenceList(key, 2).empty());
  EXPECT_EQ(ring.PrimaryFor(key), nullptr);
}

// ------------------------------------------------------------ test fleet ---

// A small authority + N replicas wired onto one SimNet.
struct TestFleet {
  explicit TestFleet(std::size_t n, bool ring_enabled = true)
      : issuer(MakeIssuerCert()),
        authority(issuer, TestKey(), 4 * kDay) {
    authority_frontend.AttachResponder(&authority);
    for (std::size_t i = 0; i < n; ++i) {
      auto replica = std::make_unique<Replica>(
          "replica-" + std::to_string(i) + ".fleet.sim", issuer, TestKey());
      replica->Install(net);
      ring.AddNode(replica->name(), ring_enabled);
      publisher.AddReplica(replica->name());
      replicas.push_back(std::move(replica));
    }
  }

  void AddGood(std::uint64_t first, std::uint64_t last) {
    for (std::uint64_t s = first; s <= last; ++s)
      authority.AddCertificate(SerialOf(s));
  }

  void Revoke(std::uint64_t serial, util::Timestamp when) {
    authority.Revoke(SerialOf(serial), when,
                     x509::ReasonCode::kKeyCompromise);
    truth[serial] = when;
  }

  serve::StatusKey Key(std::uint64_t serial) const {
    return serve::MakeStatusKey(authority.issuer_key_hash(), SerialOf(serial));
  }

  Bytes Request(std::uint64_t serial) const {
    ocsp::OcspRequest request;
    request.cert_ids = {ocsp::MakeCertId(issuer, SerialOf(serial))};
    return ocsp::EncodeOcspRequest(request);
  }

  FleetClientOptions ClientOptions() const {
    FleetClientOptions options;
    options.responder_key = TestKey().Public();
    return options;
  }

  x509::Certificate issuer;
  ocsp::Responder authority;
  serve::Frontend authority_frontend;
  net::SimNet net;
  HashRing ring;
  Publisher publisher{&authority_frontend};
  std::vector<std::unique_ptr<Replica>> replicas;
  std::map<std::uint64_t, util::Timestamp> truth;  // serial -> revoked_at
};

// ----------------------------------------------------------- replication ---

TEST(FleetReplication, PushWarmsReplicasAndAnswersMatchAuthority) {
  TestFleet fleet(3);
  fleet.AddGood(1, 50);
  fleet.Revoke(7, kNow - kDay);
  fleet.Revoke(23, kNow - 2 * kDay);
  fleet.authority_frontend.RebuildAll(kNow);

  for (const auto& replica : fleet.replicas) {
    EXPECT_FALSE(replica->warmed());
    EXPECT_EQ(replica->applied_epoch(), 0u);
  }

  const Publisher::PushStats stats = fleet.publisher.Publish(fleet.net, kNow);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.replicas_ok, 3u);
  EXPECT_EQ(stats.replicas_failed, 0u);
  EXPECT_GT(stats.snapshot_bytes, 0u);
  EXPECT_GT(stats.response_bytes, 0u);
  EXPECT_EQ(fleet.publisher.MaxLagEpochs(), 0u);
  EXPECT_EQ(fleet.publisher.PublishTimeOf(1), kNow);

  for (const auto& replica : fleet.replicas) {
    EXPECT_TRUE(replica->warmed());
    EXPECT_EQ(replica->applied_epoch(), 1u);
    EXPECT_EQ(replica->applied_published_at(), kNow);
    EXPECT_EQ(replica->frontend().index().size(), 50u);
    EXPECT_EQ(replica->counters().snapshots_applied, 1u);
    EXPECT_EQ(replica->counters().batches_applied, 1u);

    // The replica answers byte-identically to the authority, served from
    // the pushed (pre-signed) cache — no local signing needed.
    const auto direct =
        fleet.authority_frontend.Serve(fleet.Request(7), kNow + 10);
    const auto replicated =
        replica->frontend().Serve(fleet.Request(7), kNow + 10);
    EXPECT_TRUE(replicated.cache_hit);
    ASSERT_TRUE(direct.body && replicated.body);
    EXPECT_EQ(*direct.body, *replicated.body);
  }
}

TEST(FleetReplication, CorruptPushFailsClosedAndStaleReplayAcks) {
  TestFleet fleet(1);
  fleet.AddGood(1, 10);
  fleet.Revoke(3, kNow - kDay);
  fleet.authority_frontend.RebuildAll(kNow);
  ASSERT_EQ(fleet.publisher.Publish(fleet.net, kNow).replicas_ok, 1u);
  Replica& replica = *fleet.replicas[0];
  const std::size_t size_before = replica.frontend().index().size();

  // Corrupt blob: rejected with 400, state untouched.
  StatusSnapshot evil;
  evil.epoch = 99;
  evil.published_at = kNow;
  Bytes blob = evil.Serialize();
  blob[blob.size() / 2] ^= 0x40;
  auto result = fleet.net.Post("http://" + replica.name() +
                                   Replica::kSnapshotPath,
                               blob, kNow + 60);
  EXPECT_EQ(result.response.status, 400);
  EXPECT_EQ(replica.applied_epoch(), 1u);
  EXPECT_EQ(replica.frontend().index().size(), size_before);
  EXPECT_EQ(replica.counters().snapshots_rejected, 1u);

  // Replay of an applied epoch: idempotent 200 ack, no re-import.
  StatusSnapshot replay;
  replay.epoch = 1;
  replay.published_at = kNow;
  result = fleet.net.Post("http://" + replica.name() + Replica::kSnapshotPath,
                          replay.Serialize(), kNow + 61);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(replica.frontend().index().size(), size_before);
  EXPECT_EQ(replica.counters().snapshots_stale, 1u);

  // Response batch for a different epoch: refused with 409.
  ResponseBatch wrong_epoch;
  wrong_epoch.epoch = 5;
  serve::ResponseCache::Entry entry;
  entry.der = std::make_shared<const Bytes>(Bytes{1});
  entry.serve_until = kNow + kDay;
  wrong_epoch.entries.emplace_back(fleet.Key(3), entry);
  result = fleet.net.Post("http://" + replica.name() +
                              Replica::kResponsesPath,
                          wrong_epoch.Serialize(), kNow + 62);
  EXPECT_EQ(result.response.status, 409);
  EXPECT_EQ(replica.counters().batches_rejected, 1u);
}

TEST(FleetReplication, ImportDiffAppliesUpsertsAndErases) {
  TestFleet fleet(1);
  fleet.AddGood(1, 5);
  fleet.authority_frontend.RebuildAll(kNow);
  fleet.publisher.Publish(fleet.net, kNow);
  Replica& replica = *fleet.replicas[0];
  EXPECT_EQ(replica.frontend().index().size(), 5u);

  // Epoch 2: serial 2 revoked, serial 5 dropped, serial 6 added.
  fleet.Revoke(2, kNow + 100);
  fleet.authority.Remove(SerialOf(5));
  fleet.authority.AddCertificate(SerialOf(6));
  fleet.authority_frontend.RebuildAll(kNow + 200);
  fleet.publisher.Publish(fleet.net, kNow + 200);

  EXPECT_EQ(replica.applied_epoch(), 2u);
  EXPECT_EQ(replica.frontend().index().size(), 5u);  // -5, +6
  const auto revoked = replica.frontend().index().Lookup(fleet.Key(2));
  ASSERT_TRUE(revoked);
  EXPECT_EQ(revoked->status, ocsp::CertStatus::kRevoked);
  EXPECT_FALSE(replica.frontend().index().Lookup(fleet.Key(5)));
  EXPECT_TRUE(replica.frontend().index().Lookup(fleet.Key(6)));

  // A replica that missed the epoch lags — visible in the acked table.
  EXPECT_EQ(fleet.publisher.AckedEpoch(replica.name()), 2u);
  EXPECT_EQ(fleet.publisher.MaxLagEpochs(), 0u);
}

TEST(FleetReplication, OutageLeavesReplicaLaggingThenCatchesUp) {
  TestFleet fleet(2);
  fleet.AddGood(1, 10);
  fleet.authority_frontend.RebuildAll(kNow);
  ASSERT_EQ(fleet.publisher.Publish(fleet.net, kNow).replicas_ok, 2u);

  // Replica 1 goes dark for epoch 2.
  net::FaultPlan plan(0xDEAD);
  net::FaultRule outage;
  outage.target = fleet.replicas[1]->name();
  outage.kind = net::FaultKind::kOutage;
  outage.start = kNow + 50;
  outage.end = kNow + 1000;
  plan.AddRule(outage);
  fleet.net.SetFaultPlan(&plan);

  fleet.Revoke(4, kNow + 60);
  fleet.authority_frontend.RebuildAll(kNow + 100);
  const auto stats = fleet.publisher.Publish(fleet.net, kNow + 100);
  EXPECT_EQ(stats.replicas_ok, 1u);
  EXPECT_EQ(stats.replicas_failed, 1u);
  EXPECT_EQ(fleet.publisher.AckedEpoch(fleet.replicas[0]->name()), 2u);
  EXPECT_EQ(fleet.publisher.AckedEpoch(fleet.replicas[1]->name()), 1u);
  EXPECT_EQ(fleet.publisher.MaxLagEpochs(), 1u);
  EXPECT_EQ(fleet.replicas[1]->applied_epoch(), 1u);

  // Lagging replica still serves its old epoch: "good" for serial 4 is
  // STALENESS (its applied epoch predates the revocation's publish epoch),
  // not a wrong answer.
  const auto stale = fleet.replicas[1]->frontend().Serve(fleet.Request(4),
                                                         kNow + 200);
  const auto parsed = ocsp::ParseOcspResponse(*stale.body);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->single.status, ocsp::CertStatus::kGood);
  EXPECT_LT(fleet.replicas[1]->applied_epoch(), 2u);

  // Storm over: the next push catches it up.
  fleet.net.SetFaultPlan(nullptr);
  fleet.publisher.Publish(fleet.net, kNow + 2000);
  EXPECT_EQ(fleet.publisher.MaxLagEpochs(), 0u);
  EXPECT_EQ(fleet.replicas[1]->applied_epoch(), 3u);
  const auto fresh = fleet.replicas[1]->frontend().Serve(fleet.Request(4),
                                                         kNow + 2100);
  const auto reparsed = ocsp::ParseOcspResponse(*fresh.body);
  ASSERT_TRUE(reparsed);
  EXPECT_EQ(reparsed->single.status, ocsp::CertStatus::kRevoked);
}

// ---------------------------------------------------------------- health ---

TEST(FleetHealth, WarmupGatesAdmissionAndHysteresisDamps) {
  TestFleet fleet(2, /*ring_enabled=*/false);
  fleet.AddGood(1, 5);
  fleet.authority_frontend.RebuildAll(kNow);

  HealthOptions options;
  options.down_after = 2;
  options.up_after = 2;
  HealthMonitor monitor(&fleet.ring, options);
  for (const auto& replica : fleet.replicas) monitor.AddTarget(replica->name());

  // Not warmed yet: probes succeed at the HTTP level but report warmed=0,
  // so nothing is admitted no matter how many rounds pass.
  monitor.ProbeAll(fleet.net, kNow);
  monitor.ProbeAll(fleet.net, kNow + 10);
  EXPECT_EQ(fleet.ring.enabled_count(), 0u);

  // Warm them; admission still needs up_after consecutive good probes.
  fleet.publisher.Publish(fleet.net, kNow + 20);
  EXPECT_EQ(monitor.ProbeAll(fleet.net, kNow + 30), 0u);
  EXPECT_EQ(fleet.ring.enabled_count(), 0u);  // 1 good probe < up_after
  EXPECT_EQ(monitor.ProbeAll(fleet.net, kNow + 40), 2u);
  EXPECT_EQ(fleet.ring.enabled_count(), 2u);
  EXPECT_TRUE(monitor.IsUp(fleet.replicas[0]->name()));

  // One bad probe does NOT evict (hysteresis)...
  fleet.net.SetUnresponsive(fleet.replicas[0]->name(), true);
  EXPECT_EQ(monitor.ProbeAll(fleet.net, kNow + 50), 0u);
  EXPECT_EQ(fleet.ring.enabled_count(), 2u);
  // ...two consecutive do.
  EXPECT_EQ(monitor.ProbeAll(fleet.net, kNow + 60), 1u);
  EXPECT_EQ(fleet.ring.enabled_count(), 1u);
  EXPECT_FALSE(monitor.IsUp(fleet.replicas[0]->name()));
  EXPECT_FALSE(fleet.ring.IsEnabled(fleet.replicas[0]->name()));

  // Recovery: one good probe is not enough to readmit either.
  fleet.net.SetUnresponsive(fleet.replicas[0]->name(), false);
  EXPECT_EQ(monitor.ProbeAll(fleet.net, kNow + 70), 0u);
  EXPECT_EQ(fleet.ring.enabled_count(), 1u);
  EXPECT_EQ(monitor.ProbeAll(fleet.net, kNow + 80), 1u);
  EXPECT_EQ(fleet.ring.enabled_count(), 2u);

  const auto counters = monitor.counters();
  EXPECT_EQ(counters.marked_down, 1u);
  EXPECT_EQ(counters.marked_up, 3u);  // two initial admissions + readmission
  EXPECT_GT(counters.probe_failures, 0u);
}

// ---------------------------------------------------------------- client ---

TEST(FleetClient, FailsOverAcrossRegionalOutage) {
  TestFleet fleet(3);
  fleet.AddGood(1, 30);
  fleet.Revoke(11, kNow - kDay);
  fleet.authority_frontend.RebuildAll(kNow);
  fleet.publisher.Publish(fleet.net, kNow);

  // Find a serial whose primary is replica 0, then kill replica 0.
  std::uint64_t victim_serial = 0;
  for (std::uint64_t s = 1; s <= 30; ++s) {
    if (*fleet.ring.PrimaryFor(fleet.Key(s)) == fleet.replicas[0]->name()) {
      victim_serial = s;
      break;
    }
  }
  ASSERT_NE(victim_serial, 0u);

  net::FaultPlan plan(0xBEEF);
  net::FaultRule outage;
  outage.target = fleet.replicas[0]->name();
  outage.kind = net::FaultKind::kOutage;
  plan.AddRule(outage);
  fleet.net.SetFaultPlan(&plan);

  FleetClient client(&fleet.net, &fleet.ring, fleet.ClientOptions());
  const auto result =
      client.Query(fleet.Request(victim_serial), fleet.Key(victim_serial),
                   kNow + 100);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.failed_over);
  EXPECT_NE(result.served_by, fleet.replicas[0]->name());
  EXPECT_EQ(result.replicas_tried, 2);
  EXPECT_EQ(client.counters().failovers, 1u);
  const ocsp::CertStatus expected = fleet.truth.count(victim_serial)
                                        ? ocsp::CertStatus::kRevoked
                                        : ocsp::CertStatus::kGood;
  EXPECT_EQ(result.status, expected);
}

TEST(FleetClient, CorruptBodyRejectedAndFailedOver) {
  TestFleet fleet(2);
  fleet.AddGood(1, 20);
  fleet.Revoke(5, kNow - kDay);
  fleet.authority_frontend.RebuildAll(kNow);
  fleet.publisher.Publish(fleet.net, kNow);

  // Every response from the primary-for-serial-5 replica is bit-flipped.
  const std::string primary = *fleet.ring.PrimaryFor(fleet.Key(5));
  net::FaultPlan plan(0x5EED);
  net::FaultRule corrupt;
  corrupt.target = primary;
  corrupt.kind = net::FaultKind::kCorrupt;
  corrupt.corrupt_bytes = 6;
  plan.AddRule(corrupt);
  fleet.net.SetFaultPlan(&plan);

  FleetClient client(&fleet.net, &fleet.ring, fleet.ClientOptions());
  const auto result = client.Query(fleet.Request(5), fleet.Key(5), kNow + 10);
  // The corrupted answer must never be believed: either rejected by parse
  // or by signature check, then the other replica answers correctly.
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.served_by, primary);
  EXPECT_EQ(result.status, ocsp::CertStatus::kRevoked);
  EXPECT_GE(client.counters().invalid_bodies, 1u);
}

TEST(FleetClient, Honors503RetryAfterWithClientSideMarkdown) {
  TestFleet fleet(2);
  fleet.AddGood(1, 20);
  fleet.authority_frontend.RebuildAll(kNow);
  fleet.publisher.Publish(fleet.net, kNow);

  const std::string primary = *fleet.ring.PrimaryFor(fleet.Key(1));
  net::FaultPlan plan(0x503);
  net::FaultRule shed;
  shed.target = primary;
  shed.kind = net::FaultKind::kHttpError;
  shed.http_status = 503;
  shed.retry_after = 30;
  plan.AddRule(shed);
  fleet.net.SetFaultPlan(&plan);

  FleetClient client(&fleet.net, &fleet.ring, fleet.ClientOptions());
  const auto first = client.Query(fleet.Request(1), fleet.Key(1), kNow);
  ASSERT_TRUE(first.ok);
  EXPECT_TRUE(first.failed_over);
  EXPECT_EQ(client.counters().shed_503, 1u);

  // Within the Retry-After window the shedding replica is skipped without
  // even trying it; after the window it is probed again.
  const auto second = client.Query(fleet.Request(1), fleet.Key(1), kNow + 10);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.replicas_tried, 1);
  EXPECT_EQ(client.counters().markdown_skips, 1u);
  EXPECT_EQ(client.counters().shed_503, 1u);  // primary never contacted

  fleet.net.SetFaultPlan(nullptr);
  const auto third = client.Query(fleet.Request(1), fleet.Key(1), kNow + 31);
  ASSERT_TRUE(third.ok);
  EXPECT_FALSE(third.failed_over);
  EXPECT_EQ(third.served_by, primary);
}

TEST(FleetClient, HedgesSlowPrimaryWithinLatencyBudget) {
  TestFleet fleet(2);
  fleet.AddGood(1, 20);
  fleet.authority_frontend.RebuildAll(kNow);
  fleet.publisher.Publish(fleet.net, kNow);

  // Latency storm on the primary: 100x elapsed pushes it past both the
  // hedge budget and the attempt timeout.
  const std::string primary = *fleet.ring.PrimaryFor(fleet.Key(2));
  net::FaultPlan plan(0x1A7);
  net::FaultRule slow;
  slow.target = primary;
  slow.kind = net::FaultKind::kLatency;
  slow.latency_factor = 100.0;
  plan.AddRule(slow);
  fleet.net.SetFaultPlan(&plan);

  FleetClientOptions options = fleet.ClientOptions();
  options.hedge_budget_seconds = 0.25;
  options.timeout_seconds = 2.0;
  FleetClient client(&fleet.net, &fleet.ring, options);
  const auto result = client.Query(fleet.Request(2), fleet.Key(2), kNow);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.hedged);
  EXPECT_NE(result.served_by, primary);
  EXPECT_EQ(client.counters().hedges, 1u);
  EXPECT_EQ(client.counters().hedge_wins, 1u);
  // Client-observed latency is budget + healthy-replica latency — nowhere
  // near the slow primary's inflated elapsed (let alone the 2s timeout).
  EXPECT_LT(result.elapsed_seconds, 1.0);
  EXPECT_GE(result.elapsed_seconds, options.hedge_budget_seconds);
}

TEST(FleetClient, SingleReplicaFleetStillAnswersWithoutHedging) {
  TestFleet fleet(1);
  fleet.AddGood(1, 5);
  fleet.authority_frontend.RebuildAll(kNow);
  fleet.publisher.Publish(fleet.net, kNow);

  FleetClient client(&fleet.net, &fleet.ring, fleet.ClientOptions());
  const auto result = client.Query(fleet.Request(3), fleet.Key(3), kNow);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.hedged);
  EXPECT_FALSE(result.failed_over);
  EXPECT_EQ(result.replicas_tried, 1);
}

TEST(FleetClient, LastResortServesFromHealthEvictedReplica) {
  TestFleet fleet(2);
  fleet.AddGood(1, 20);
  fleet.Revoke(9, kNow - kDay);
  fleet.authority_frontend.RebuildAll(kNow);
  fleet.publisher.Publish(fleet.net, kNow);

  // The worst minute of a storm: the health monitor evicted replica 1
  // (hysteresis lagging a latency burst, say) just as a regional outage
  // kills replica 0 — the "healthy" ring view is exactly the dead node.
  fleet.ring.SetEnabled(fleet.replicas[1]->name(), false);
  net::FaultPlan plan(0xDEAD);
  net::FaultRule outage;
  outage.target = fleet.replicas[0]->name();
  outage.kind = net::FaultKind::kOutage;
  plan.AddRule(outage);
  fleet.net.SetFaultPlan(&plan);

  FleetClient client(&fleet.net, &fleet.ring, fleet.ClientOptions());
  const auto result = client.Query(fleet.Request(9), fleet.Key(9), kNow + 5);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.served_by, fleet.replicas[1]->name());
  EXPECT_EQ(result.status, ocsp::CertStatus::kRevoked);
  EXPECT_GE(client.counters().last_resort, 1u);
  EXPECT_EQ(client.counters().exhausted, 0u);

  // Even with the whole ring marked down the panic walk starts from an
  // empty preference list and still finds the live replica.
  fleet.ring.SetEnabled(fleet.replicas[0]->name(), false);
  const auto desperate =
      client.Query(fleet.Request(9), fleet.Key(9), kNow + 6);
  ASSERT_TRUE(desperate.ok);
  EXPECT_EQ(desperate.served_by, fleet.replicas[1]->name());
  EXPECT_EQ(desperate.status, ocsp::CertStatus::kRevoked);
}

// ------------------------------------------------------------- mini soak ---

struct SoakOutcome {
  std::vector<std::uint8_t> statuses;  // per query: 0 good 1 revoked 2 unknown 3 fail
  FleetClient::Counters counters;
  std::uint64_t wrong_answers = 0;
  std::uint64_t stale_answers = 0;
};

// Runs `clients` clients x `queries_per_tick` over `ticks`, partitioned
// across `threads`. Per-client outcomes depend only on (seed, client id,
// tick), so the merged result must be bit-identical for any thread count.
std::vector<SoakOutcome> RunSoak(TestFleet& fleet, std::uint64_t seed,
                                 unsigned threads, std::size_t clients,
                                 std::size_t ticks,
                                 std::size_t queries_per_tick,
                                 std::uint64_t num_serials,
                                 const std::map<std::uint64_t,
                                                std::uint64_t>& publish_epoch) {
  std::vector<SoakOutcome> outcomes(clients);
  std::vector<std::unique_ptr<FleetClient>> fleet_clients;
  for (std::size_t c = 0; c < clients; ++c)
    fleet_clients.push_back(std::make_unique<FleetClient>(
        &fleet.net, &fleet.ring, fleet.ClientOptions()));

  std::map<std::string, const Replica*> by_name;
  for (const auto& replica : fleet.replicas)
    by_name[replica->name()] = replica.get();

  for (std::size_t tick = 0; tick < ticks; ++tick) {
    const util::Timestamp now = kNow + static_cast<util::Timestamp>(tick) * 60;
    auto run_client = [&](std::size_t c) {
      util::Rng rng(seed ^ (0x9E37 * (c + 1)) ^ (tick * 0x79B9));
      for (std::size_t q = 0; q < queries_per_tick; ++q) {
        const std::uint64_t serial = 1 + rng.NextBelow(num_serials);
        const auto result = fleet_clients[c]->Query(
            fleet.Request(serial), fleet.Key(serial), now);
        SoakOutcome& outcome = outcomes[c];
        if (!result.ok) {
          outcome.statuses.push_back(3);
          continue;
        }
        outcome.statuses.push_back(
            static_cast<std::uint8_t>(result.status));
        // Wrong-answer accounting (the chaos invariant): "revoked" must
        // match truth; "good" for a revoked serial is wrong only if the
        // serving replica had already applied the revocation's epoch —
        // otherwise it is staleness, measured separately.
        const bool truly_revoked = fleet.truth.count(serial) != 0;
        if (result.status == ocsp::CertStatus::kRevoked) {
          if (!truly_revoked) ++outcome.wrong_answers;
        } else if (truly_revoked) {
          const auto it = publish_epoch.find(serial);
          const std::uint64_t needed =
              it == publish_epoch.end() ? 1 : it->second;
          if (by_name[result.served_by]->applied_epoch() >= needed)
            ++outcome.wrong_answers;
          else
            ++outcome.stale_answers;
        }
      }
    };
    if (threads <= 1) {
      for (std::size_t c = 0; c < clients; ++c) run_client(c);
    } else {
      std::vector<std::thread> workers;
      for (unsigned t = 0; t < threads; ++t)
        workers.emplace_back([&, t] {
          for (std::size_t c = t; c < clients; c += threads) run_client(c);
        });
      for (auto& worker : workers) worker.join();
    }
  }
  for (std::size_t c = 0; c < clients; ++c)
    outcomes[c].counters = fleet_clients[c]->counters();
  return outcomes;
}

// Storm layout (tick = 60 virtual seconds): the fault windows are arranged
// so that, for ANY seed, at least one replica is deterministically clean at
// every tick — replica 2 while replica 0's region is out, replica 0 while
// replica 2's responses are corrupted. Everything the probabilistic rules
// hit has a clean failover target, so availability is an invariant, not a
// die roll.
net::FaultPlan* MakeStorm(std::uint64_t seed, const TestFleet& fleet,
                          std::vector<std::unique_ptr<net::FaultPlan>>& hold) {
  auto plan = std::make_unique<net::FaultPlan>(seed);
  // Regional outage: replica 0 hard down for ticks 2-5.
  net::FaultRule outage;
  outage.target = fleet.replicas[0]->name();
  outage.kind = net::FaultKind::kOutage;
  outage.start = kNow + 2 * 60;
  outage.end = kNow + 6 * 60;
  plan->AddRule(outage);
  // Latency storm on replica 1 for ticks 0-1: slow, not dead — exercises
  // hedging, not failover.
  net::FaultRule slow;
  slow.target = fleet.replicas[1]->name();
  slow.kind = net::FaultKind::kLatency;
  slow.latency_factor = 20.0;
  slow.start = kNow;
  slow.end = kNow + 2 * 60;
  plan->AddRule(slow);
  // Flapping on replica 1 throughout (phase-locked square wave).
  net::FaultRule flap;
  flap.target = fleet.replicas[1]->name();
  flap.kind = net::FaultKind::kFlap;
  flap.up_seconds = 300;
  flap.down_seconds = 60;
  plan->AddRule(flap);
  // 503 shedding bursts on replica 1, with Retry-After (client mark-down).
  net::FaultRule shed;
  shed.target = fleet.replicas[1]->name();
  shed.kind = net::FaultKind::kHttpError;
  shed.http_status = 503;
  shed.retry_after = 45;
  shed.probability = 0.2;
  plan->AddRule(shed);
  // Corruption storm on replica 2's responses for ticks 6-9 (replica 0 is
  // back up by then).
  net::FaultRule corrupt;
  corrupt.target = fleet.replicas[2]->name();
  corrupt.kind = net::FaultKind::kCorrupt;
  corrupt.corrupt_bytes = 4;
  corrupt.start = kNow + 6 * 60;
  corrupt.end = kNow + 10 * 60;
  plan->AddRule(corrupt);
  hold.push_back(std::move(plan));
  return hold.back().get();
}

TEST(FleetSoak, ZeroWrongAnswersAndBitIdenticalAcrossThreadCounts) {
  const char* env_seed = std::getenv("REV_CHAOS_SEED");
  const std::uint64_t seed =
      env_seed ? std::strtoull(env_seed, nullptr, 0) : 0xC0FFEE;
  constexpr std::uint64_t kSerials = 200;
  constexpr std::size_t kClients = 8, kTicks = 10, kPerTick = 12;

  std::map<std::uint64_t, std::uint64_t> publish_epoch;  // serial -> epoch
  auto build = [&](unsigned threads) {
    auto fleet = std::make_unique<TestFleet>(3);
    fleet->AddGood(1, kSerials);
    for (std::uint64_t s = 10; s <= kSerials; s += 10) {
      fleet->Revoke(s, kNow - kDay);
      publish_epoch[s] = 1;
    }
    fleet->authority_frontend.RebuildAll(kNow);
    fleet->publisher.Publish(fleet->net, kNow - 60);  // all replicas warm

    std::vector<std::unique_ptr<net::FaultPlan>> hold;
    fleet->net.SetFaultPlan(MakeStorm(seed, *fleet, hold));
    auto outcomes =
        RunSoak(*fleet, seed, threads, kClients, kTicks, kPerTick, kSerials,
                publish_epoch);
    fleet->net.SetFaultPlan(nullptr);
    hold.clear();
    return outcomes;
  };

  const auto serial_run = build(1);
  const auto threaded_run = build(8);

  std::uint64_t wrong = 0, answered = 0, failovers = 0, hedges = 0;
  for (std::size_t c = 0; c < serial_run.size(); ++c) {
    // Bit-identity: every client's per-query status sequence and counter
    // block match between the 1-thread and 8-thread runs.
    EXPECT_EQ(serial_run[c].statuses, threaded_run[c].statuses) << c;
    EXPECT_EQ(serial_run[c].counters.queries,
              threaded_run[c].counters.queries);
    EXPECT_EQ(serial_run[c].counters.failovers,
              threaded_run[c].counters.failovers);
    EXPECT_EQ(serial_run[c].counters.hedges, threaded_run[c].counters.hedges);
    EXPECT_EQ(serial_run[c].counters.shed_503,
              threaded_run[c].counters.shed_503);
    EXPECT_EQ(serial_run[c].counters.last_resort,
              threaded_run[c].counters.last_resort);
    EXPECT_EQ(serial_run[c].wrong_answers, threaded_run[c].wrong_answers);
    wrong += serial_run[c].wrong_answers;
    answered += serial_run[c].counters.answered;
    failovers += serial_run[c].counters.failovers;
    hedges += serial_run[c].counters.hedges;
  }
  // The chaos invariant, extended to the fleet: NO wrong revocation answer,
  // ever, and the storm actually exercised the failover machinery.
  EXPECT_EQ(wrong, 0u);
  EXPECT_GT(answered, 0u);
  EXPECT_GT(failovers, 0u);
  EXPECT_GT(hedges, 0u);
  // With replication factor 3 and one replica hard down, availability
  // stays near-perfect.
  const std::uint64_t total =
      static_cast<std::uint64_t>(kClients) * kTicks * kPerTick;
  EXPECT_GE(static_cast<double>(answered) / static_cast<double>(total), 0.999);
}

// ----------------------------------------------------- distributed traces --

TEST(FleetTrace, FailoverQueryStitchesOneCausalTree) {
  auto& collector = obs::DistTraceCollector::Global();
  collector.Clear();
  collector.Enable();

  TestFleet fleet(3);
  fleet.AddGood(1, 30);
  fleet.authority_frontend.RebuildAll(kNow);
  fleet.publisher.Publish(fleet.net, kNow);

  std::uint64_t victim_serial = 0;
  for (std::uint64_t s = 1; s <= 30; ++s) {
    if (*fleet.ring.PrimaryFor(fleet.Key(s)) == fleet.replicas[0]->name()) {
      victim_serial = s;
      break;
    }
  }
  ASSERT_NE(victim_serial, 0u);
  net::FaultPlan plan(0xBEEF);
  net::FaultRule outage;
  outage.target = fleet.replicas[0]->name();
  outage.kind = net::FaultKind::kOutage;
  plan.AddRule(outage);
  fleet.net.SetFaultPlan(&plan);

  auto options = fleet.ClientOptions();
  options.trace_seed = 0x7A11;
  FleetClient client(&fleet.net, &fleet.ring, options);
  collector.Clear();  // drop the publish-path spans; keep just the query
  const auto result =
      client.Query(fleet.Request(victim_serial), fleet.Key(victim_serial),
                   kNow + 100);
  collector.Disable();
  ASSERT_TRUE(result.ok);
  ASSERT_TRUE(result.failed_over);
  ASSERT_TRUE(result.trace_id.valid());

  // One trace holds the whole query: the root, one leg per replica tried,
  // an exchange under each leg, and the surviving replica's server marker.
  const auto spans = collector.SnapshotTrace(result.trace_id);
  std::size_t roots = 0, legs = 0, exchanges = 0;
  std::set<std::string> nodes;
  std::uint64_t root_span = 0, root_dur = 0;
  for (const auto& span : spans) {
    nodes.insert(span.node);
    const std::string_view name(span.name);
    if (name == "fleet.query") {
      ++roots;
      root_span = span.span;
      root_dur = span.dur_ns();
    } else if (name == "fleet.attempt" || name == "fleet.hedge") {
      ++legs;
    } else if (name == "net.exchange") {
      ++exchanges;
    }
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(legs, static_cast<std::size_t>(result.replicas_tried));
  EXPECT_GE(legs, 2u);  // the outage forced a second leg
  EXPECT_EQ(exchanges, legs);
  EXPECT_GE(nodes.size(), 3u);  // client + dead replica + surviving replica
  for (const auto& span : spans)
    if (std::string_view(span.name) != "fleet.query")
      EXPECT_EQ(span.trace.lo, result.trace_id.lo);

  // The critical path tiles the root span exactly, and the root's width is
  // the client-observed latency (same 1% gate the fleet bench enforces).
  const auto path = obs::CriticalPath(spans);
  ASSERT_FALSE(path.empty());
  std::uint64_t path_ns = 0;
  for (const auto& segment : path) path_ns += segment.dur_ns();
  EXPECT_EQ(path_ns, root_dur);
  const double measured_ns = result.elapsed_seconds * 1e9;
  EXPECT_NEAR(static_cast<double>(path_ns), measured_ns,
              0.01 * measured_ns + 1.0);
  EXPECT_NE(root_span, 0u);
  collector.Clear();
}

TEST(FleetMetrics, ScrapeMergesPerFrontendExpositions) {
  TestFleet fleet(3);
  fleet.AddGood(1, 20);
  fleet.authority_frontend.RebuildAll(kNow);
  fleet.publisher.Publish(fleet.net, kNow);

  FleetClient client(&fleet.net, &fleet.ring, fleet.ClientOptions());
  constexpr std::uint64_t kQueries = 10;
  for (std::uint64_t s = 1; s <= kQueries; ++s)
    ASSERT_TRUE(client.Query(fleet.Request(s), fleet.Key(s), kNow + 10).ok);

  std::vector<std::string> hosts;
  for (const auto& replica : fleet.replicas) hosts.push_back(replica->name());
  hosts.push_back("no-such-replica.fleet.sim");  // scrape failures are counted
  const FleetMetricsView view =
      ScrapeFleetMetrics(fleet.net, hosts, kNow + 20);
  EXPECT_EQ(view.hosts_ok, fleet.replicas.size());
  EXPECT_EQ(view.hosts_failed, 1u);
  EXPECT_GT(view.scrape_bytes, 0u);

  // Per-instance labels were stripped and merged: the fleet-wide request
  // count is the sum over replicas, which answered every query exactly
  // once each (no failovers in a healthy fleet).
  std::uint64_t fleet_requests = 0;
  bool found = false;
  for (const auto& counter : view.merged.counters) {
    if (counter.name == "serve.requests") {
      found = true;
      fleet_requests = counter.value;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_GE(fleet_requests, kQueries);
  std::uint64_t per_replica_sum = 0;
  for (const auto& replica : fleet.replicas)
    per_replica_sum += replica->frontend().counters().requests;
  EXPECT_EQ(fleet_requests, per_replica_sum);
}

}  // namespace
}  // namespace rev::fleet
