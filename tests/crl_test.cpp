// CRL tests: round-trips, signatures, entry semantics, index lookups, and
// size behavior (the ~38 bytes/entry linearity of Fig. 5).
#include <gtest/gtest.h>

#include "crl/crl.h"
#include "util/rng.h"
#include "util/stats.h"

namespace rev::crl {
namespace {

constexpr util::Timestamp kNow = 1'400'000'000;

crypto::KeyPair TestKey(std::string_view label) {
  return crypto::SimKeyFromLabel(label);
}

x509::Serial RandomSerial(util::Rng& rng, int len) {
  x509::Serial s(static_cast<std::size_t>(len));
  rng.Fill(s.data(), s.size());
  if (s[0] == 0) s[0] = 1;
  return s;
}

TbsCrl MakeTbs(std::size_t entries, util::Rng& rng, int serial_len = 16) {
  TbsCrl tbs;
  tbs.issuer = x509::Name::Make("CRL Test CA", "Test");
  tbs.this_update = kNow;
  tbs.next_update = kNow + util::kSecondsPerDay;
  tbs.crl_number = 7;
  for (std::size_t i = 0; i < entries; ++i) {
    CrlEntry entry;
    entry.serial = RandomSerial(rng, serial_len);
    entry.revocation_date = kNow - static_cast<util::Timestamp>(rng.NextBelow(10'000'000));
    entry.reason = (i % 3 == 0) ? x509::ReasonCode::kKeyCompromise
                                : x509::ReasonCode::kNoReasonCode;
    tbs.entries.push_back(std::move(entry));
  }
  return tbs;
}

TEST(Crl, SignParseRoundTrip) {
  util::Rng rng(1);
  const crypto::KeyPair key = TestKey("crlca");
  const Crl crl = SignCrl(MakeTbs(10, rng), key);

  auto parsed = ParseCrl(crl.der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tbs.issuer, crl.tbs.issuer);
  EXPECT_EQ(parsed->tbs.this_update, crl.tbs.this_update);
  EXPECT_EQ(parsed->tbs.next_update, crl.tbs.next_update);
  EXPECT_EQ(parsed->tbs.crl_number, 7);
  ASSERT_EQ(parsed->tbs.entries.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(parsed->tbs.entries[i].serial, crl.tbs.entries[i].serial);
    EXPECT_EQ(parsed->tbs.entries[i].revocation_date,
              crl.tbs.entries[i].revocation_date);
    EXPECT_EQ(parsed->tbs.entries[i].reason, crl.tbs.entries[i].reason);
  }
}

TEST(Crl, EmptyCrl) {
  util::Rng rng(2);
  const Crl crl = SignCrl(MakeTbs(0, rng), TestKey("k"));
  auto parsed = ParseCrl(crl.der);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->tbs.entries.empty());
  // Tiny CRLs are well under 900 bytes (the raw-median observation, §5.2).
  EXPECT_LT(crl.SizeBytes(), 900u);
}

TEST(Crl, OptionalFieldsOmitted) {
  util::Rng rng(3);
  TbsCrl tbs = MakeTbs(1, rng);
  tbs.next_update = 0;
  tbs.crl_number = -1;
  const Crl crl = SignCrl(tbs, TestKey("k"));
  auto parsed = ParseCrl(crl.der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tbs.next_update, 0);
  EXPECT_EQ(parsed->tbs.crl_number, -1);
}

TEST(Crl, SignatureVerification) {
  util::Rng rng(4);
  const crypto::KeyPair key = TestKey("signer");
  const Crl crl = SignCrl(MakeTbs(5, rng), key);
  EXPECT_TRUE(VerifyCrlSignature(crl, key.Public()));
  EXPECT_FALSE(VerifyCrlSignature(crl, TestKey("other").Public()));

  auto parsed = ParseCrl(crl.der);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(VerifyCrlSignature(*parsed, key.Public()));
}

TEST(Crl, TamperedEntryFailsSignature) {
  util::Rng rng(5);
  const crypto::KeyPair key = TestKey("signer2");
  Crl crl = SignCrl(MakeTbs(5, rng), key);
  Bytes tampered = crl.der;
  tampered[40] ^= 0xFF;
  auto parsed = ParseCrl(tampered);
  if (parsed) {
    EXPECT_FALSE(VerifyCrlSignature(*parsed, key.Public()));
  }
}

TEST(Crl, Expiry) {
  util::Rng rng(6);
  const Crl crl = SignCrl(MakeTbs(1, rng), TestKey("k"));
  EXPECT_FALSE(crl.IsExpired(kNow));
  EXPECT_FALSE(crl.IsExpired(kNow + util::kSecondsPerDay));
  EXPECT_TRUE(crl.IsExpired(kNow + util::kSecondsPerDay + 1));
}

TEST(Crl, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseCrl(Bytes{}));
  EXPECT_FALSE(ParseCrl(Bytes{0x30, 0x01, 0x00}));
  util::Rng rng(7);
  Bytes der = SignCrl(MakeTbs(3, rng), TestKey("k")).der;
  der.resize(der.size() - 10);
  EXPECT_FALSE(ParseCrl(der));
}

TEST(Crl, DescribeRendering) {
  util::Rng rng(12);
  const Crl crl = SignCrl(MakeTbs(25, rng), TestKey("k"));
  const std::string text = DescribeCrl(crl, 5);
  EXPECT_NE(text.find("CRL Test CA"), std::string::npos);
  EXPECT_NE(text.find("entries     : 25"), std::string::npos);
  EXPECT_NE(text.find("... 20 more"), std::string::npos);
}

TEST(CrlIndex, LookupSemantics) {
  util::Rng rng(8);
  const Crl crl = SignCrl(MakeTbs(100, rng), TestKey("k"));
  const CrlIndex index(crl);
  EXPECT_EQ(index.size(), 100u);
  for (const CrlEntry& entry : crl.tbs.entries) {
    const CrlEntry* found = index.Lookup(entry.serial);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->revocation_date, entry.revocation_date);
    EXPECT_TRUE(index.IsRevoked(entry.serial));
  }
  EXPECT_FALSE(index.IsRevoked(RandomSerial(rng, 16)));
  EXPECT_EQ(index.Lookup(x509::Serial{}), nullptr);
}

TEST(CrlIndex, EmptyIndex) {
  CrlIndex index;
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.IsRevoked(x509::Serial{1, 2, 3}));
}

// Fig. 5 property: size grows linearly with entries, ~tens of bytes each.
TEST(Crl, SizeLinearInEntries) {
  util::Rng rng(9);
  std::vector<double> xs, ys;
  for (std::size_t n : {10u, 100u, 500u, 1000u, 5000u}) {
    const Crl crl = SignCrl(MakeTbs(n, rng), TestKey("k"));
    xs.push_back(static_cast<double>(n));
    ys.push_back(static_cast<double>(crl.SizeBytes()));
  }
  const util::LinearFit fit = util::FitLine(xs, ys);
  EXPECT_GT(fit.r, 0.999);
  // Our 16-byte serials + times + occasional reason put each entry in the
  // same ballpark as the paper's 38-byte average.
  EXPECT_GT(fit.slope, 25.0);
  EXPECT_LT(fit.slope, 60.0);
}

// Serial-length policy shifts per-entry size (the Fig. 5 variance).
TEST(Crl, SerialLengthAffectsSize) {
  util::Rng rng(10);
  const Crl small = SignCrl(MakeTbs(1000, rng, 8), TestKey("k"));
  const Crl large = SignCrl(MakeTbs(1000, rng, 21), TestKey("k"));
  EXPECT_GT(large.SizeBytes(), small.SizeBytes() + 10'000u);
}

TEST(Crl, LargeCrlRoundTrip) {
  util::Rng rng(11);
  const Crl crl = SignCrl(MakeTbs(20'000, rng), TestKey("k"));
  auto parsed = ParseCrl(crl.der);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tbs.entries.size(), 20'000u);
  EXPECT_GT(crl.SizeBytes(), 500'000u);
}

}  // namespace
}  // namespace rev::crl
