// browser_policy_lab: experiment with revocation-checking policies.
//
// Runs the paper's 244-case browser test suite against (a) a few shipped
// browser profiles, and (b) two hypothetical policies — a fully hard-fail
// "paranoid" browser and a staple-only browser — and scores each one:
// how many revoked chains it catches, how often it (wrongly) accepts when
// revocation information is unavailable, and what its checking costs.
//
//   $ ./browser_policy_lab
#include <cstdio>
#include <vector>

#include "browser/profiles.h"
#include "browser/testsuite.h"
#include "core/report.h"

using namespace rev;
using namespace rev::browser;

namespace {

struct Score {
  int revoked_caught = 0;
  int revoked_total = 0;
  int unavailable_rejected = 0;
  int unavailable_warned = 0;
  int unavailable_total = 0;
  int staple_used = 0;
  double network_seconds = 0;
  std::uint64_t network_bytes = 0;
};

Score Evaluate(const Policy& policy) {
  constexpr util::Timestamp kNow = 1'427'760'000;  // 2015-03-31
  Score score;
  for (const TestCase& test : GenerateTestSuite()) {
    const VisitOutcome outcome = RunCase(test, policy, /*seed=*/7, kNow);
    score.network_seconds += outcome.revocation_seconds;
    score.network_bytes += outcome.revocation_bytes;
    if (outcome.used_staple) ++score.staple_used;
    const bool staple_revoked =
        test.stapling && test.staple_status == ocsp::CertStatus::kRevoked &&
        !test.server_refuses_bad_staple;
    if (test.revoked_element >= 0 || staple_revoked) {
      ++score.revoked_total;
      if (outcome.rejected()) ++score.revoked_caught;
    } else if (test.failure != FailureMode::kNone) {
      ++score.unavailable_total;
      if (outcome.rejected()) ++score.unavailable_rejected;
      if (outcome.warned()) ++score.unavailable_warned;
    }
  }
  return score;
}

Policy Paranoid() {
  Policy p;
  p.browser = "Paranoid";
  p.os = "any";
  const PositionPolicy strict{CheckLevel::kAlways, FailureAction::kReject, false};
  p.crl.leaf = p.crl.first_intermediate = p.crl.higher_intermediate = strict;
  p.ocsp.leaf = p.ocsp.first_intermediate = p.ocsp.higher_intermediate = strict;
  p.first_position_rule_covers_bare_leaf = true;
  p.reject_unknown_ocsp = true;
  p.try_crl_on_ocsp_failure = CheckLevel::kAlways;
  p.request_staple = true;
  p.request_multi_staple = true;
  p.respect_revoked_staple = true;
  return p;
}

Policy StapleOnly() {
  // Checks nothing over the network; trusts (and respects) staples.
  Policy p;
  p.browser = "StapleOnly";
  p.os = "any";
  p.request_staple = true;
  p.request_multi_staple = true;
  p.respect_revoked_staple = true;
  p.reject_unknown_ocsp = true;
  return p;
}

}  // namespace

int main() {
  std::vector<Policy> policies;
  for (const char* name : {"IE 11", "Firefox 40", "Chrome 44"}) {
    for (const BrowserProfile& profile : AllProfiles()) {
      if (profile.policy.browser == name) {
        policies.push_back(profile.policy);
        break;  // one OS variant each
      }
    }
  }
  policies.push_back(*&FindProfile("Mobile Safari", "iOS 8")->policy);
  policies.push_back(Paranoid());
  policies.push_back(StapleOnly());

  core::TextTable table({"policy", "revoked caught", "unavail rejected",
                         "warned", "staples used", "net seconds", "net KB"});
  for (const Policy& policy : policies) {
    const Score score = Evaluate(policy);
    table.AddRow({policy.DisplayName(),
                  std::to_string(score.revoked_caught) + "/" +
                      std::to_string(score.revoked_total),
                  std::to_string(score.unavailable_rejected) + "/" +
                      std::to_string(score.unavailable_total),
                  std::to_string(score.unavailable_warned),
                  std::to_string(score.staple_used),
                  core::FormatDouble(score.network_seconds, 1),
                  std::to_string(score.network_bytes / 1024)});
  }
  std::printf("Scores over the 244-case test suite (§6.1):\n\n%s\n",
              table.Render().c_str());
  std::printf(
      "Reading: shipped browsers miss most revoked chains (mobile misses\n"
      "all); the Paranoid policy catches everything but hard-fails on every\n"
      "unavailability case; StapleOnly is free of network cost yet catches\n"
      "staple-delivered revocations only.\n");
  return 0;
}
