// Quickstart: the library's basic objects end to end.
//
// Builds a tiny PKI with *real RSA* signatures — a root CA, an intermediate,
// and a site certificate — revokes the certificate, and checks its status
// through both dissemination protocols (CRL download and OCSP query) over
// the simulated network, exactly the way the measurement pipeline does.
//
//   $ ./quickstart
#include <cstdio>

#include "ca/ca.h"
#include "crl/crl.h"
#include "net/simnet.h"
#include "ocsp/ocsp.h"
#include "util/rng.h"
#include "util/stats.h"
#include "x509/verify.h"

using namespace rev;

int main() {
  util::Rng rng(2015);
  const util::Timestamp now = util::MakeDate(2015, 3, 31);

  // 1. A root CA and an intermediate, using real RSA-1024 keys.
  ca::CertificateAuthority::Options root_options;
  root_options.name = "Example Root";
  root_options.domain = "exampleroot.sim";
  root_options.key_type = crypto::KeyType::kRsaSha256;
  root_options.rsa_bits = 1024;
  auto root = ca::CertificateAuthority::CreateRoot(
      root_options, rng, util::MakeDate(2010, 1, 1));

  ca::CertificateAuthority::Options int_options;
  int_options.name = "Example CA";
  int_options.domain = "exampleca.sim";
  int_options.key_type = crypto::KeyType::kRsaSha256;
  int_options.rsa_bits = 1024;
  auto intermediate =
      root->CreateIntermediate(int_options, rng, util::MakeDate(2012, 1, 1));

  std::printf("root:         %s\n", root->cert()->tbs.subject.ToString().c_str());
  std::printf("intermediate: %s\n\n",
              intermediate->cert()->tbs.subject.ToString().c_str());

  // 2. Issue a site certificate.
  ca::CertificateAuthority::IssueOptions issue;
  issue.common_name = "www.example.sim";
  issue.not_before = util::MakeDate(2014, 6, 1);
  issue.lifetime_seconds = 365 * util::kSecondsPerDay;
  const x509::CertPtr leaf = intermediate->Issue(issue, rng);
  std::printf("issued %s\n  serial  %s\n  DER     %zu bytes\n  CRL     %s\n  OCSP    %s\n\n",
              leaf->tbs.subject.CommonName().c_str(),
              x509::SerialToString(leaf->tbs.serial).c_str(), leaf->der.size(),
              leaf->tbs.crl_urls[0].c_str(), leaf->tbs.ocsp_urls[0].c_str());

  // 3. Chain verification against the root store.
  x509::CertPool roots, intermediates;
  roots.Add(root->cert());
  intermediates.Add(intermediate->cert());
  x509::VerifyOptions verify_options;
  verify_options.at = now;
  const x509::VerifyResult path =
      x509::VerifyChain(leaf, intermediates, roots, verify_options);
  std::printf("chain verification: %s (length %zu)\n\n",
              x509::VerifyStatusName(path.status), path.chain.size());

  // 4. Publish revocation services on the simulated network and revoke.
  net::SimNet net;
  root->RegisterEndpoints(&net);
  intermediate->RegisterEndpoints(&net);
  intermediate->Revoke(leaf->tbs.serial, now - 10 * util::kSecondsPerDay,
                       x509::ReasonCode::kKeyCompromise);
  std::printf("revoked %s (keyCompromise)\n\n", issue.common_name.c_str());

  // 5a. Check via CRL: download, verify the CA's signature, look up.
  const net::FetchResult crl_fetch = net.Get(leaf->tbs.crl_urls[0], now);
  auto crl = crl::ParseCrl(crl_fetch.response.body);
  const bool crl_sig_ok =
      crl && crl::VerifyCrlSignature(*crl, intermediate->key().Public());
  const crl::CrlIndex index(*crl);
  const crl::CrlEntry* entry = index.Lookup(leaf->tbs.serial);
  std::printf("CRL check:  %s  (%zu entries, %s, signature %s, %.0f ms)\n",
              entry ? "REVOKED" : "good", crl->tbs.entries.size(),
              util::HumanBytes(static_cast<double>(crl->der.size())).c_str(),
              crl_sig_ok ? "ok" : "BAD", crl_fetch.elapsed_seconds * 1000);
  if (entry)
    std::printf("            revoked %s, reason %s\n",
                util::FormatDate(entry->revocation_date).c_str(),
                x509::ReasonCodeName(entry->reason));

  // 5b. Check via OCSP: one small signed answer instead of the whole list.
  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(*intermediate->cert(), leaf->tbs.serial)};
  const net::FetchResult ocsp_fetch =
      net.Post(leaf->tbs.ocsp_urls[0], ocsp::EncodeOcspRequest(request), now);
  auto response = ocsp::ParseOcspResponse(ocsp_fetch.response.body);
  const bool ocsp_sig_ok =
      response && ocsp::VerifyOcspSignature(*response, intermediate->key().Public());
  std::printf("OCSP check: %s  (%zu-byte response, signature %s, %.0f ms)\n",
              ocsp::CertStatusName(response->single.status),
              ocsp_fetch.response.body.size(), ocsp_sig_ok ? "ok" : "BAD",
              ocsp_fetch.elapsed_seconds * 1000);

  std::printf("\nbandwidth: CRL cost %zu bytes vs OCSP cost %zu bytes\n",
              crl_fetch.response.body.size(), ocsp_fetch.response.body.size());
  return 0;
}
