// revocation_audit: the paper's end-to-end measurement, miniaturized.
//
// Builds a synthetic PKI ecosystem, runs weekly certificate scans over it,
// constructs the Intermediate and Leaf Sets, crawls CRLs daily, and prints
// an audit report: dataset statistics (§3), revoked fresh/alive fractions
// (Fig. 2 endpoints), and crawl costs (§5).
//
//   $ ./revocation_audit [scale]     (default scale 0.002)
#include <cstdio>
#include <cstdlib>

#include "core/archive.h"
#include "core/ca_audit.h"
#include "core/crawler.h"
#include "core/ecosystem.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "core/timeline.h"
#include "scan/scanner.h"

using namespace rev;

int main(int argc, char** argv) {
  constexpr std::int64_t kDay = util::kSecondsPerDay;
  core::EcosystemConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.002;
  std::printf("building ecosystem at scale %.4f ...\n", config.scale);
  auto eco = core::Ecosystem::Build(config);
  const core::EcosystemConfig& c = eco->config();
  std::printf("  issued %zu certificates across %zu CAs, %zu servers\n\n",
              eco->total_issued(), eco->cas().size(), eco->internet().size());

  // Weekly scans, Oct 2013 – Mar 2015 (74 in the paper), archived in the
  // scans.io-style format as we go.
  core::Pipeline pipeline(eco->roots());
  core::ScanArchive archive;
  int scans = 0;
  for (util::Timestamp t = c.study_start; t <= c.study_end; t += 7 * kDay) {
    const scan::CertScanSnapshot snapshot = scan::RunCertScan(eco->internet(), t);
    archive.AddSnapshot(snapshot);
    pipeline.IngestScan(snapshot);
    ++scans;
  }
  pipeline.Finalize();
  std::printf("ran %d weekly scans (archive: %zu unique certs, %s serialized)\n",
              scans, archive.cert_count(),
              util::HumanBytes(static_cast<double>(archive.Serialize().size())).c_str());

  const core::DatasetStats stats = core::ComputeDatasetStats(pipeline);
  std::printf("dataset (cf. paper §3):\n");
  std::printf("  unique certificates observed : %zu\n", stats.unique_certs);
  std::printf("  Leaf Set (validated)         : %zu\n", stats.leaf_set);
  std::printf("  Intermediate Set             : %zu\n", stats.intermediate_set);
  std::printf("  still advertised, last scan  : %.1f%%\n",
              100.0 * static_cast<double>(stats.leaf_still_advertised) /
                  static_cast<double>(stats.leaf_set));
  std::printf("  leaves with CRL / OCSP       : %.2f%% / %.2f%%\n",
              100.0 * static_cast<double>(stats.leaf_with_crl) / static_cast<double>(stats.leaf_set),
              100.0 * static_cast<double>(stats.leaf_with_ocsp) / static_cast<double>(stats.leaf_set));
  std::printf("  unrevocable leaves           : %zu (%.3f%%)\n\n",
              stats.leaf_unrevocable,
              100.0 * static_cast<double>(stats.leaf_unrevocable) / static_cast<double>(stats.leaf_set));

  // Daily CRL crawl, Oct 2014 – Mar 2015.
  core::RevocationCrawler crawler(&eco->net());
  crawler.CollectUrls(pipeline);
  int crawl_days = 0;
  for (util::Timestamp t = c.crawl_start; t <= c.study_end; t += kDay) {
    crawler.CrawlAll(t);
    ++crawl_days;
  }
  std::printf("crawled %zu CRLs daily for %d days:\n", crawler.crawled().size(),
              crawl_days);
  std::printf("  revocations discovered : %zu\n", crawler.total_revocations());
  std::printf("  bytes downloaded       : %s (cache-aware)\n",
              util::HumanBytes(static_cast<double>(crawler.bytes_downloaded())).c_str());
  std::printf("  crawl time simulated   : %.1f s, %llu fetch failures\n\n",
              crawler.seconds_spent(),
              static_cast<unsigned long long>(crawler.fetch_failures()));

  // Fig. 2 endpoints.
  const auto timeline = core::ComputeRevocationTimeline(
      pipeline, crawler, util::MakeDate(2014, 1, 1), c.study_end, 7 * kDay);
  const auto& pre = timeline[12];   // late March 2014 (pre-Heartbleed)
  const auto& end = timeline.back();
  std::printf("revocation timeline (cf. Fig. 2):\n");
  std::printf("  %s  fresh revoked %.2f%%  (EV %.2f%%)  alive revoked %.2f%%\n",
              util::FormatDate(pre.time).c_str(),
              100 * pre.FreshRevokedFraction(), 100 * pre.FreshEvRevokedFraction(),
              100 * pre.AliveRevokedFraction());
  std::printf("  %s  fresh revoked %.2f%%  (EV %.2f%%)  alive revoked %.2f%%\n",
              util::FormatDate(end.time).c_str(),
              100 * end.FreshRevokedFraction(), 100 * end.FreshEvRevokedFraction(),
              100 * end.AliveRevokedFraction());
  std::printf("  (the jump is the Heartbleed mass revocation of April 2014)\n\n");

  // CRL size summary (Fig. 6 endpoints).
  const auto samples = core::CollectCrlSizes(crawler, pipeline, *eco);
  const core::CrlSizeDistributions dist = core::BuildCrlSizeDistributions(samples);
  std::printf("CRL sizes across %zu crawled CRLs (cf. Fig. 6):\n", samples.size());
  std::printf("  raw median      : %s\n", util::HumanBytes(dist.raw.Median()).c_str());
  std::printf("  weighted median : %s (per certificate)\n",
              util::HumanBytes(dist.weighted.Median()).c_str());
  std::printf("  maximum         : %s\n", util::HumanBytes(dist.raw.Max()).c_str());
  return 0;
}
