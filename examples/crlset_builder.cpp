// crlset_builder: build a Chrome-style CRLSet from an ecosystem's CRLs and
// compare it against the paper's §7.4 alternatives — a Bloom filter and a
// Golomb Compressed Set — at the same byte budget.
//
//   $ ./crlset_builder [scale]     (default scale 0.002)
#include <cstdio>
#include <cstdlib>

#include "core/ecosystem.h"
#include "core/report.h"
#include "crlset/bloom.h"
#include "crlset/gcs.h"
#include "crlset/generator.h"
#include "util/stats.h"

using namespace rev;

int main(int argc, char** argv) {
  core::EcosystemConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.002;
  std::printf("building ecosystem at scale %.4f ...\n\n", config.scale);
  auto eco = core::Ecosystem::Build(config);
  const util::Timestamp now = eco->config().study_end;

  // Gather the full revocation universe and the Google-crawled subset.
  std::size_t total_revocations = 0;
  const auto sources = eco->CrlSetSources(now, &total_revocations);

  crlset::GeneratorConfig gen;
  gen.max_entries_per_crl = static_cast<std::size_t>(10'000 * config.scale * 6);
  const crlset::CrlSet set = crlset::GenerateCrlSet(sources, gen, 1);
  std::printf("CRLSet built from %zu crawled CRLs:\n", sources.size());
  std::printf("  entries   : %zu of %zu revocations (%.2f%%)\n",
              set.NumEntries(), total_revocations,
              100.0 * static_cast<double>(set.NumEntries()) /
                  static_cast<double>(total_revocations));
  std::printf("  parents   : %zu\n", set.NumParents());
  std::printf("  size      : %s (cap %s)\n\n",
              util::HumanBytes(static_cast<double>(set.SerializedSize())).c_str(),
              util::HumanBytes(static_cast<double>(gen.max_bytes)).c_str());

  // The same universe of revocations as filter keys.
  std::vector<Bytes> keys;
  for (const core::Ecosystem::CaEntry& entry : eco->cas()) {
    const Bytes parent = entry.ca->cert()->SubjectSpkiSha256();
    for (const auto& rev : entry.ca->CurrentRevocations(now))
      keys.push_back(crlset::RevocationKey(parent, rev.serial));
  }
  std::printf("full revocation universe: %zu entries\n\n", keys.size());

  // Bloom filter sized to the same 250 KB budget at 1% FPR.
  crlset::BloomFilter bloom(gen.max_bytes * 8, 7);
  std::size_t inserted = 0;
  const std::size_t capacity_1pct = static_cast<std::size_t>(
      static_cast<double>(gen.max_bytes) * 8 / 9.59);
  for (const Bytes& key : keys) {
    if (inserted >= capacity_1pct) break;
    bloom.Insert(key);
    ++inserted;
  }
  std::printf("Bloom filter at the same %s budget (1%% FPR):\n",
              util::HumanBytes(static_cast<double>(gen.max_bytes)).c_str());
  std::printf("  capacity  : %zu revocations (%.0fx the CRLSet)\n",
              capacity_1pct,
              static_cast<double>(capacity_1pct) /
                  static_cast<double>(std::max<std::size_t>(set.NumEntries(), 1)));
  std::printf("  held      : %zu of %zu (%.1f%% of universe)\n",
              inserted, keys.size(),
              100.0 * static_cast<double>(inserted) / static_cast<double>(keys.size()));
  std::printf("  measured FPR: %.3f%%\n\n", 100 * bloom.MeasureFpr(100'000, 1));

  // Golomb Compressed Set over as many keys as fit in the budget.
  const crlset::GolombCompressedSet gcs =
      crlset::GolombCompressedSet::Build(keys, /*log2_inverse_fpr=*/7);
  std::printf("Golomb Compressed Set over the whole universe (FPR 2^-7):\n");
  std::printf("  size      : %s (%.2f bytes/entry; Bloom needs %.2f)\n",
              util::HumanBytes(static_cast<double>(gcs.SizeBytes())).c_str(),
              static_cast<double>(gcs.SizeBytes()) /
                  static_cast<double>(std::max<std::size_t>(keys.size(), 1)),
              9.59 / 8.0 * 7.0 / 6.64);
  // Spot-check: no false negatives on a sample.
  std::size_t checked = 0, present = 0;
  for (const Bytes& key : keys) {
    if (++checked > 2'000) break;
    if (gcs.MayContain(key)) ++present;
  }
  std::printf("  membership spot-check: %zu/%zu present\n", present,
              checked - 1 < 2000 ? checked : 2'000);
  return 0;
}
