#!/usr/bin/env bash
# CI entry point: Release-mode tier-1 (full build + every ctest suite),
# then a ThreadSanitizer pass over the concurrency-sensitive targets —
# the thread pool, the parallel pipeline/crawler, and the serving
# frontend (tests + a small bench_serve load). Fails on any ctest
# regression or TSan report.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: Release build + full test suite =="
cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== TSan: thread pool, parallel pipeline, serving frontend =="
cmake -B build-tsan -S . -DREV_SANITIZE_THREAD=ON
cmake --build build-tsan -j"$(nproc)" --target util_test core_test serve_test bench_serve
./build-tsan/tests/util_test --gtest_filter='ThreadPool.*'
./build-tsan/tests/core_test --gtest_filter='Parallelism.*'
./build-tsan/tests/serve_test
# Small closed-loop load under TSan: races between concurrent Serve(),
# observer-driven invalidation, and batch refresh surface here.
REV_SERVE_CERTS=2000 REV_SERVE_OPS=2000 REV_SERVE_THREADS=4 \
  REV_SERVE_FLOOR=0 ./build-tsan/bench/bench_serve > /dev/null || {
    echo "bench_serve under TSan failed" >&2; exit 1; }

echo "ci OK (tier-1 + TSan: unit suites, serve stress, bench_serve load)"
