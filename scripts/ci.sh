#!/usr/bin/env bash
# CI entry point: Release-mode tier-1 (full build + every ctest suite),
# then a ThreadSanitizer pass over the concurrency-sensitive targets —
# the thread pool, the parallel pipeline/crawler, the serving frontend,
# and the metrics/trace instruments (tests + a small bench_serve load) —
# then an observability smoke: bench_serve must answer GET /metrics and
# land the registry snapshot in BENCH_serve.json, plus a QPS-regression
# smoke against the baseline committed in BENCH_serve.json. Fails on any
# ctest regression, TSan report, or QPS collapse.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: Release build + full test suite =="
cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== TSan: thread pool, parallel pipeline, serving frontend, obs, chaos =="
cmake -B build-tsan -S . -DREV_SANITIZE_THREAD=ON
cmake --build build-tsan -j"$(nproc)" --target util_test core_test corpus_test serve_test obs_test chaos_test cascade_test fleet_test bench_serve bench_fleet
./build-tsan/tests/util_test --gtest_filter='ThreadPool.*:MpscQueue.*'
./build-tsan/tests/core_test --gtest_filter='Parallelism.*'
# The corpus equivalence suite under TSan: the columnar store must match
# the serial map-based reference byte for byte at 1 and 8 threads, with no
# races in the batched Finalize() verification (docs/corpus.md).
./build-tsan/tests/corpus_test
# Full serve suite under TSan: includes the batch-vs-serial equivalence
# tests (1 and 8 threads) and the attach-latch regression test, the two
# raciest additions of the event-driven core.
./build-tsan/tests/serve_test
# The whole obs suite runs under TSan: sharded counters, the lock-free
# histogram, trace ring buffers, and the 8-thread exposition stress.
./build-tsan/tests/obs_test
# The chaos suite under TSan: fault injection + retries drive the 8-thread
# crawler through the shared FaultPlan tallies, the caching client, and the
# stale-serve merge — the raciest paths in the fetch stack.
./build-tsan/tests/chaos_test
# The cascade suite under TSan: the ThreadPool-parallel cascade build
# (bit-identical at 1 vs 8 threads) plus the publisher/fleet storm, whose
# polls cross the SimNet mutex and the shared FaultPlan tallies.
./build-tsan/tests/cascade_test
# The fleet suite under TSan: replication pushes, health probes, and the
# soak's threaded clients all cross the SimNet mutex, the ring's enable
# atomics, and the replicas' import locks concurrently.
./build-tsan/tests/fleet_test
# Small fleet soak under TSan: 4 threads of clients against 3 replicas
# through the full storm (outage + latency + shed + corruption), gates on
# (strict mode: zero wrong answers, availability, p99, determinism).
fleet_tsan_dir=$(mktemp -d)
( cd "$fleet_tsan_dir" &&
  REV_FLEET_CERTS=500 REV_FLEET_CLIENTS=4 REV_FLEET_TICKS=12 \
    REV_FLEET_QPT=6 REV_FLEET_FACTORS=2,3 REV_THREADS=4 \
    "$OLDPWD"/build-tsan/bench/bench_fleet > /dev/null ) || {
      echo "bench_fleet soak under TSan failed" >&2; exit 1; }
rm -rf "$fleet_tsan_dir"
# Small closed-loop load under TSan: races between concurrent Serve(),
# observer-driven invalidation, batch refresh, and the lock-free latency
# histogram surface here.
REV_SERVE_CERTS=2000 REV_SERVE_OPS=2000 REV_SERVE_THREADS=4 \
  REV_SERVE_FLOOR=0 ./build-tsan/bench/bench_serve > /dev/null || {
    echo "bench_serve under TSan failed" >&2; exit 1; }

echo "== observability smoke: /metrics endpoint + BENCH json metrics block =="
smoke_dir=$(mktemp -d)
( cd "$smoke_dir" &&
  REV_SERVE_CERTS=2000 REV_SERVE_OPS=2000 REV_SERVE_THREADS=2 \
    REV_SERVE_FLOOR=0 "$OLDPWD"/build/bench/bench_serve > bench_serve.out )
grep -q "metrics endpoint: ok" "$smoke_dir"/bench_serve.out || {
  echo "bench_serve did not serve GET /metrics" >&2; exit 1; }
grep -q '"metrics": {"counters":' "$smoke_dir"/BENCH_serve.json || {
  echo "BENCH_serve.json is missing the metrics block" >&2; exit 1; }
grep -q '"serve.latency_ns{frontend=' "$smoke_dir"/BENCH_serve.json || {
  echo "BENCH_serve.json is missing the latency histogram" >&2; exit 1; }

echo "== QPS regression smoke: batch peak vs committed baseline =="
# The smoke run above is deliberately small (2k certs, 2k ops), so compare
# its batch peak against the PR 2 instrumented baseline recorded in the
# committed BENCH_serve.json — a catastrophic regression (accidental
# serialization, a lock back on the hot path) lands well below it even at
# smoke scale, while run-to-run noise never does.
python3 - "$smoke_dir"/BENCH_serve.json BENCH_serve.json <<'PY'
import json, sys
smoke = json.load(open(sys.argv[1]))["results"]
committed = json.load(open(sys.argv[2]))["results"]
baseline = committed["baseline_instrumented_pr2"]["qps"]
peak = smoke["batch_peak"]["qps"]
if peak < baseline:
    sys.exit(f"batch peak {peak:.0f} QPS regressed below the pre-refactor "
             f"instrumented baseline {baseline:.0f} QPS")
print(f"batch peak {peak:.0f} QPS >= baseline {baseline:.0f} QPS: ok")
PY
rm -rf "$smoke_dir"

echo "== fleet smoke: BENCH_fleet.json baseline + zero wrong answers =="
# The committed baseline must exist and must record a clean sweep, and a
# fresh small strict run must reproduce it: zero wrong revocation answers
# under the storm is part of the CI bar, like the cascade channel's
# exactness gate.
test -f BENCH_fleet.json || {
  echo "BENCH_fleet.json baseline is missing" >&2; exit 1; }
grep -q '"total_wrong_answers": 0' BENCH_fleet.json || {
  echo "committed BENCH_fleet.json records wrong answers" >&2; exit 1; }
fleet_dir=$(mktemp -d)
( cd "$fleet_dir" &&
  REV_FLEET_CERTS=500 REV_FLEET_CLIENTS=4 REV_FLEET_TICKS=12 \
    REV_FLEET_QPT=6 REV_FLEET_FACTORS=2,3 \
    "$OLDPWD"/build/bench/bench_fleet > bench_fleet.out )
grep -q "OK bench_fleet overall" "$fleet_dir"/bench_fleet.out || {
  echo "bench_fleet smoke failed its gates" >&2; exit 1; }
grep -q '"total_wrong_answers": 0' "$fleet_dir"/BENCH_fleet.json || {
  echo "fleet smoke produced wrong revocation answers" >&2; exit 1; }
# The SLO burn-rate engine is part of the CI bar: the smoke's BENCH json
# must carry a non-empty alert timeline whose alerts all land in the storm
# phase — a clean-phase alert is a false page and fails CI outright.
grep -q '"slo": {' "$fleet_dir"/BENCH_fleet.json || {
  echo "BENCH_fleet.json is missing the slo block" >&2; exit 1; }
grep -q '"clean_phase_alerts": 0' "$fleet_dir"/BENCH_fleet.json || {
  echo "fleet smoke paged during the clean phase (false positive)" >&2
  exit 1; }
python3 - "$fleet_dir"/BENCH_fleet.json <<'PY'
import json, sys
slo = json.load(open(sys.argv[1]))["results"]["slo"]
if slo["alerts"] <= 0:
    sys.exit("fleet smoke fired no SLO alerts under the storm")
print(f"slo: {slo['alerts']} alerts, all in the storm phase: ok")
PY
rm -rf "$fleet_dir"

echo "ci OK (tier-1 + TSan: unit suites, obs suite, serve stress, fleet suite + soak, bench_serve load + /metrics smoke + QPS regression + fleet zero-wrong-answers + slo burn-rate gates)"
