#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the ThreadPool and
# parallel-determinism tests again under ThreadSanitizer (a clean TSan run
# is part of the parallel pipeline/crawler's acceptance bar — see
# docs/parallelism.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

# TSan pass in a separate build tree: races in util::ThreadPool, the
# parallel Pipeline::Finalize(), and the parallel RevocationCrawler::CrawlAll
# (including the CachingClient / SimNet synchronization) surface here.
cmake -B build-tsan -S . -DREV_SANITIZE_THREAD=ON
cmake --build build-tsan -j"$(nproc)" --target util_test core_test
./build-tsan/tests/util_test --gtest_filter='ThreadPool.*'
./build-tsan/tests/core_test --gtest_filter='Parallelism.*'

# Fixed-seed chaos smoke: the seeded fault storm must stay bit-reproducible
# across thread counts (docs/fault-injection.md). The seed is pinned so a
# failure here is replayable verbatim.
REV_CHAOS_SEED=0xC0FFEE ./build/tests/chaos_test \
  --gtest_filter='ChaosStorm.*:ChaosSoak.*'

# Cascade distribution smoke: a scaled-down publisher + fleet run under a
# FaultPlan storm (docs/distribution.md). Exits non-zero if any client
# ever gets a wrong revocation answer, so exactness-under-storm is part of
# the tier-1 bar; the small knobs keep it a smoke, not a bench.
smoke_dir=$(mktemp -d)
( cd "$smoke_dir" &&
  REV_SCALE=0.001 REV_CASCADE_CLIENTS=1500 REV_CASCADE_DAYS=6 \
    "$OLDPWD"/build/bench/bench_cascade > bench_cascade.out )
grep -q "exactness under storm: OK" "$smoke_dir"/bench_cascade.out || {
  echo "bench_cascade smoke failed exactness-under-storm" >&2; exit 1; }
grep -q '"wrong_answers": 0' "$smoke_dir"/BENCH_cascade.json || {
  echo "BENCH_cascade.json records wrong answers" >&2; exit 1; }
rm -rf "$smoke_dir"

# Paper-scale corpus smoke: bench_paper_scale at a reduced certificate
# count, with the throughput floor and peak-RSS ceiling gates armed
# (docs/corpus.md). The floor catches an accidental return to node-per-cert
# storage or per-cert re-parsing on the ingest path; the ceiling catches a
# memory regression in the arena/column layout. The bench exits non-zero on
# a gate violation.
paper_dir=$(mktemp -d)
( cd "$paper_dir" &&
  REV_PAPER_CERTS=200000 REV_PAPER_SCANS=4 REV_PAPER_FLOOR=15000 \
    REV_PAPER_RSS_MB=600 "$OLDPWD"/build/bench/bench_paper_scale \
    > bench_paper_scale.out ) || {
  echo "bench_paper_scale smoke failed its certs/sec or RSS gates" >&2
  exit 1; }
grep -q "gates OK" "$paper_dir"/bench_paper_scale.out || {
  echo "bench_paper_scale did not report its gates" >&2; exit 1; }
grep -q '"ingest_certs_per_sec"' "$paper_dir"/BENCH_paper_scale.json || {
  echo "BENCH_paper_scale.json is missing the throughput field" >&2; exit 1; }
grep -q '"peak_rss_mb"' "$paper_dir"/BENCH_paper_scale.json || {
  echo "BENCH_paper_scale.json is missing the peak-RSS field" >&2; exit 1; }
grep -q '"slo": {' "$paper_dir"/BENCH_paper_scale.json || {
  echo "BENCH_paper_scale.json is missing the slo block" >&2; exit 1; }
rm -rf "$paper_dir"

# Fixed-seed fleet-failover smoke: the replicated serving layer's client
# failover, hedging, and storm soak at the pinned chaos seed — zero wrong
# answers and bit-identity across thread counts (docs/fleet.md).
REV_CHAOS_SEED=0xC0FFEE ./build/tests/fleet_test \
  --gtest_filter='FleetClient.*:FleetSoak.*'

# Fixed-seed stitched-trace smoke: a small fleet soak exports its
# distributed spans (REV_DIST_TRACE), and trace2txt must stitch them into
# cross-node causal trees with a critical-path column
# (docs/observability.md). The seed is pinned, so the trace ids — and the
# trees — are replayable verbatim.
trace_dir=$(mktemp -d)
( cd "$trace_dir" &&
  REV_FLEET_CERTS=400 REV_FLEET_CLIENTS=2 REV_FLEET_TICKS=8 \
    REV_FLEET_QPT=4 REV_FLEET_FACTORS=3 REV_CHAOS_SEED=0xCAFEBABE \
    REV_DIST_TRACE="$trace_dir"/dist_trace.json \
    "$OLDPWD"/build/bench/bench_fleet > bench_fleet.out )
test -s "$trace_dir"/dist_trace.json || {
  echo "bench_fleet did not export REV_DIST_TRACE spans" >&2; exit 1; }
./build/tools/trace2txt "$trace_dir"/dist_trace.json > "$trace_dir"/trees.txt
grep -q "critical path" "$trace_dir"/trees.txt || {
  echo "trace2txt did not render a critical path" >&2; exit 1; }
grep -q "fleet.query" "$trace_dir"/trees.txt || {
  echo "stitched trees are missing the client root span" >&2; exit 1; }
grep -q "serve.request" "$trace_dir"/trees.txt || {
  echo "stitched trees never crossed onto a replica node" >&2; exit 1; }
rm -rf "$trace_dir"

echo "tier-1 OK (unit suites + TSan determinism + chaos smoke + cascade smoke + paper-scale corpus smoke + fleet failover smoke + stitched-trace smoke)"
