#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the ThreadPool and
# parallel-determinism tests again under ThreadSanitizer (a clean TSan run
# is part of the parallel pipeline/crawler's acceptance bar — see
# docs/parallelism.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

# TSan pass in a separate build tree: races in util::ThreadPool, the
# parallel Pipeline::Finalize(), and the parallel RevocationCrawler::CrawlAll
# (including the CachingClient / SimNet synchronization) surface here.
cmake -B build-tsan -S . -DREV_SANITIZE_THREAD=ON
cmake --build build-tsan -j"$(nproc)" --target util_test core_test
./build-tsan/tests/util_test --gtest_filter='ThreadPool.*'
./build-tsan/tests/core_test --gtest_filter='Parallelism.*'

# Fixed-seed chaos smoke: the seeded fault storm must stay bit-reproducible
# across thread counts (docs/fault-injection.md). The seed is pinned so a
# failure here is replayable verbatim.
REV_CHAOS_SEED=0xC0FFEE ./build/tests/chaos_test \
  --gtest_filter='ChaosStorm.*:ChaosSoak.*'
echo "tier-1 OK (unit suites + TSan determinism + chaos smoke)"
