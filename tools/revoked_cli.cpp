// revoked-cli — command-line front end to the library.
//
//   revoked-cli inspect-cert <file.der>       pretty-print a certificate
//   revoked-cli inspect-crl <file.der>        pretty-print a CRL
//   revoked-cli make-demo <dir>               write demo cert/CRL DER files
//   revoked-cli audit [scale]                 run the measurement pipeline
//   revoked-cli browser-suite <browser> <os>  run the 244-case suite
//   revoked-cli table2                        print the Table 2 matrix
//   revoked-cli profiles                      list browser/OS profiles
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "browser/matrix.h"
#include "browser/profiles.h"
#include "browser/testsuite.h"
#include "ca/ca.h"
#include "core/archive.h"
#include "core/crawler.h"
#include "core/ecosystem.h"
#include "core/pipeline.h"
#include "core/timeline.h"
#include "crl/crl.h"
#include "scan/scanner.h"
#include "x509/describe.h"

using namespace rev;

namespace {

std::optional<Bytes> ReadFile(const char* path) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr) return std::nullopt;
  Bytes data;
  std::uint8_t buffer[65536];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
    data.insert(data.end(), buffer, buffer + n);
  std::fclose(file);
  return data;
}

bool WriteFile(const std::string& path, BytesView data) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(data.data(), 1, data.size(), file) == data.size();
  std::fclose(file);
  return ok;
}

int InspectCert(const char* path) {
  auto data = ReadFile(path);
  if (!data) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  auto cert = x509::ParseCertificate(*data);
  if (!cert) {
    std::fprintf(stderr, "%s: not a valid DER certificate\n", path);
    return 1;
  }
  std::fputs(x509::DescribeCertificate(*cert).c_str(), stdout);
  return 0;
}

int InspectCrl(const char* path) {
  auto data = ReadFile(path);
  if (!data) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  auto crl = crl::ParseCrl(*data);
  if (!crl) {
    std::fprintf(stderr, "%s: not a valid DER CRL\n", path);
    return 1;
  }
  std::fputs(crl::DescribeCrl(*crl, 20).c_str(), stdout);
  return 0;
}

int MakeDemo(const char* dir) {
  util::Rng rng(1);
  const util::Timestamp now = util::MakeDate(2015, 3, 31);
  ca::CertificateAuthority::Options options;
  options.name = "Demo CA";
  options.domain = "democa.sim";
  auto ca = ca::CertificateAuthority::CreateRoot(options, rng,
                                                 now - 365 * util::kSecondsPerDay);
  ca::CertificateAuthority::IssueOptions issue;
  issue.common_name = "www.demo.sim";
  issue.ev = true;
  issue.not_before = now - 30 * util::kSecondsPerDay;
  const x509::CertPtr leaf = ca->Issue(issue, rng);
  ca->Revoke(leaf->tbs.serial, now - 7 * util::kSecondsPerDay,
             x509::ReasonCode::kKeyCompromise);

  const std::string base(dir);
  if (!WriteFile(base + "/ca.der", ca->cert()->der) ||
      !WriteFile(base + "/leaf.der", leaf->der) ||
      !WriteFile(base + "/list.crl", ca->GetCrl(0, now).der)) {
    std::fprintf(stderr, "cannot write into %s\n", dir);
    return 1;
  }
  std::printf("wrote %s/ca.der, leaf.der, list.crl — try inspect-cert/-crl\n",
              dir);
  return 0;
}

int Audit(double scale) {
  constexpr std::int64_t kDay = util::kSecondsPerDay;
  std::printf("building ecosystem (scale %.4f)...\n", scale);
  core::EcosystemConfig config;
  config.scale = scale;
  auto eco = core::Ecosystem::Build(config);
  const core::EcosystemConfig& c = eco->config();

  core::Pipeline pipeline(eco->roots());
  for (util::Timestamp t = c.study_start; t <= c.study_end; t += 7 * kDay)
    pipeline.IngestScan(scan::RunCertScan(eco->internet(), t));
  pipeline.Finalize();

  core::RevocationCrawler crawler(&eco->net());
  crawler.CollectUrls(pipeline);
  for (util::Timestamp t = c.crawl_start; t <= c.study_end; t += kDay)
    crawler.CrawlAll(t);

  const auto timeline = core::ComputeRevocationTimeline(
      pipeline, crawler, util::MakeDate(2014, 1, 1), c.study_end, 7 * kDay);
  std::printf("Leaf Set %zu; revocations %zu; final fresh revoked %.2f%%, "
              "alive revoked %.2f%%\n",
              pipeline.LeafSet().size(), crawler.total_revocations(),
              100 * timeline.back().FreshRevokedFraction(),
              100 * timeline.back().AliveRevokedFraction());
  return 0;
}

int BrowserSuite(const char* browser, const char* os) {
  const browser::BrowserProfile* profile = browser::FindProfile(browser, os);
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown profile %s/%s (see `profiles`)\n", browser, os);
    return 1;
  }
  const util::Timestamp now = util::MakeDate(2015, 3, 31);
  int rejected = 0, warned = 0, accepted = 0;
  for (const browser::TestCase& test : browser::GenerateTestSuite()) {
    const browser::VisitOutcome outcome =
        browser::RunCase(test, profile->policy, 2015, now);
    if (outcome.rejected()) {
      ++rejected;
    } else if (outcome.warned()) {
      ++warned;
    } else {
      ++accepted;
    }
  }
  std::printf("%s: accepted %d, warned %d, rejected %d of 244\n",
              profile->policy.DisplayName().c_str(), accepted, warned, rejected);
  return 0;
}

int Profiles() {
  for (const browser::BrowserProfile& profile : browser::AllProfiles())
    std::printf("%-16s %-18s column: %s\n", profile.policy.browser.c_str(),
                profile.policy.os.c_str(), profile.column.c_str());
  return 0;
}

int Table2() {
  const browser::Table2 table =
      browser::BuildTable2(2015, util::MakeDate(2015, 3, 31));
  std::fputs(browser::RenderTable2(table).c_str(), stdout);
  return 0;
}

void Usage() {
  std::fputs(
      "usage: revoked-cli <command> [args]\n"
      "  inspect-cert <file.der>\n"
      "  inspect-crl <file.der>\n"
      "  make-demo <dir>\n"
      "  audit [scale]\n"
      "  browser-suite <browser> <os>   e.g. \"IE 11\" \"Windows 10\"\n"
      "  table2\n"
      "  profiles\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "inspect-cert" && argc == 3) return InspectCert(argv[2]);
  if (command == "inspect-crl" && argc == 3) return InspectCrl(argv[2]);
  if (command == "make-demo" && argc == 3) return MakeDemo(argv[2]);
  if (command == "audit") return Audit(argc >= 3 ? std::atof(argv[2]) : 0.001);
  if (command == "browser-suite" && argc == 4)
    return BrowserSuite(argv[2], argv[3]);
  if (command == "table2") return Table2();
  if (command == "profiles") return Profiles();
  Usage();
  return 2;
}
