// trace2txt: render trace JSON written by the obs collectors as a
// terminal-friendly report.
//
// Two input shapes, auto-detected:
//  - Chrome trace-event JSON (REV_TRACE=<file>, TraceCollector): a flat
//    profile aggregated by span name and, with -t, a per-thread timeline
//    of the slowest spans.
//  - Distributed-span JSON (REV_DIST_TRACE=<file>, DistTraceCollector):
//    each trace rendered as its cross-node causal tree with a per-hop
//    critical-path column — the share of the root's latency attributed to
//    each span by obs::CriticalPath, '*' marking the spans on the path.
//
//   trace2txt trace.json            # flat profile (or dist trees)
//   trace2txt -t trace.json        # + timeline of the 40 longest spans
//
// The parser targets the collectors' own output: one complete event/span
// object per line. It is not a general JSON parser; feeding it traces
// from other producers may miss events.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/distrace.h"

namespace {

struct Event {
  std::string name;
  double ts_us = 0;
  double dur_us = 0;
  unsigned tid = 0;
  unsigned depth = 0;
};

// Extracts `"key":<value>` from one event line. Returns false if absent.
bool FindRaw(const std::string& line, const char* key, std::string& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
    if (end == std::string::npos) return false;
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  out = line.substr(begin, end - begin);
  return true;
}

bool ParseEventLine(const std::string& line, Event& event) {
  std::string value;
  if (!FindRaw(line, "ph", value) || value != "X") return false;
  if (!FindRaw(line, "name", event.name)) return false;
  if (FindRaw(line, "ts", value)) event.ts_us = std::atof(value.c_str());
  if (FindRaw(line, "dur", value)) event.dur_us = std::atof(value.c_str());
  if (FindRaw(line, "tid", value))
    event.tid = static_cast<unsigned>(std::atoi(value.c_str()));
  if (FindRaw(line, "depth", value))
    event.depth = static_cast<unsigned>(std::atoi(value.c_str()));
  return true;
}

void PrintProfile(const std::vector<Event>& events) {
  struct Agg {
    std::uint64_t count = 0;
    double total_us = 0;
    double max_us = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const Event& e : events) {
    Agg& agg = by_name[e.name];
    ++agg.count;
    agg.total_us += e.dur_us;
    agg.max_us = std::max(agg.max_us, e.dur_us);
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });

  std::printf("%-36s %10s %12s %12s %12s\n", "span", "count", "total(ms)",
              "mean(us)", "max(us)");
  for (const auto& [name, agg] : rows) {
    std::printf("%-36s %10" PRIu64 " %12.3f %12.2f %12.2f\n", name.c_str(),
                agg.count, agg.total_us / 1e3,
                agg.count == 0 ? 0.0
                               : agg.total_us / static_cast<double>(agg.count),
                agg.max_us);
  }
}

void PrintTimeline(std::vector<Event> events, std::size_t limit) {
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.dur_us > b.dur_us;
  });
  if (events.size() > limit) events.resize(limit);
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.ts_us < b.ts_us;
  });

  std::printf("\n%-12s %-6s %-36s %12s %12s\n", "start(ms)", "tid", "span",
              "dur(us)", "depth");
  for (const Event& e : events) {
    std::printf("%-12.3f %-6u %*s%-*s %12.2f %12u\n", e.ts_us / 1e3, e.tid,
                static_cast<int>(e.depth * 2), "",
                static_cast<int>(36 - e.depth * 2), e.name.c_str(), e.dur_us,
                e.depth);
  }
}

// ------------------------------------------------- distributed traces ----

bool ParseHex64(const std::string& hex, std::uint64_t* out) {
  if (hex.empty() || hex.size() > 16) return false;
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return false;
  }
  *out = value;
  return true;
}

// One span object per line, the DistTraceCollector::DumpJson shape.
bool ParseDistSpanLine(const std::string& line, rev::obs::DistSpan& span) {
  std::string value;
  if (!FindRaw(line, "trace", value) || value.size() != 32) return false;
  if (!ParseHex64(value.substr(0, 16), &span.trace.hi)) return false;
  if (!ParseHex64(value.substr(16), &span.trace.lo)) return false;
  if (!FindRaw(line, "span", value) || !ParseHex64(value, &span.span))
    return false;
  if (!FindRaw(line, "parent", value) || !ParseHex64(value, &span.parent))
    return false;
  if (!FindRaw(line, "name", value)) return false;
  span.name = rev::obs::InternName(value);
  if (!FindRaw(line, "node", value)) return false;
  span.node = rev::obs::InternName(value);
  if (FindRaw(line, "kind", value)) {
    span.kind = value == "client" ? rev::obs::SpanKind::kClient
                : value == "server" ? rev::obs::SpanKind::kServer
                                    : rev::obs::SpanKind::kInternal;
  }
  if (FindRaw(line, "status", value))
    span.status = static_cast<std::int32_t>(std::atol(value.c_str()));
  if (FindRaw(line, "start_ns", value))
    span.start_ns = std::strtoull(value.c_str(), nullptr, 10);
  if (FindRaw(line, "dur_ns", value))
    span.end_ns = span.start_ns + std::strtoull(value.c_str(), nullptr, 10);
  return true;
}

void PrintDistTree(const std::vector<rev::obs::DistSpan>& spans,
                   const rev::obs::DistSpan& span,
                   const std::map<std::uint64_t, std::uint64_t>& crit_ns,
                   std::uint64_t trace_start_ns, unsigned depth) {
  const auto crit = crit_ns.find(span.span);
  const double crit_ms =
      crit == crit_ns.end() ? 0.0 : static_cast<double>(crit->second) / 1e6;
  std::printf("  %*s%-*s %-22s %-8s %6" PRId32 " %11.3f %11.3f %11.3f%s\n",
              static_cast<int>(depth * 2), "",
              static_cast<int>(depth * 2 >= 28 ? 1 : 28 - depth * 2),
              span.name, span.node, rev::obs::SpanKindName(span.kind),
              span.status,
              static_cast<double>(span.start_ns - trace_start_ns) / 1e6,
              static_cast<double>(span.dur_ns()) / 1e6, crit_ms,
              crit == crit_ns.end() ? "" : " *");
  // Children in start order (ties by span id): the collector's snapshot
  // order, so the tree is stable across runs.
  for (const auto& child : spans) {
    if (child.parent == span.span) {
      PrintDistTree(spans, child, crit_ns, trace_start_ns, depth + 1);
    }
  }
}

void PrintDistTraces(const std::vector<rev::obs::DistSpan>& all,
                     std::size_t limit) {
  // Group by trace id; input order already clusters one trace together
  // (DumpJson sorts by trace first).
  std::vector<std::pair<std::size_t, std::size_t>> traces;  // [begin, end)
  for (std::size_t i = 0; i < all.size();) {
    std::size_t j = i;
    while (j < all.size() && all[j].trace == all[i].trace) ++j;
    traces.emplace_back(i, j);
    i = j;
  }
  std::printf("%zu trace%s\n", traces.size(), traces.size() == 1 ? "" : "s");
  if (traces.size() > limit)
    std::printf("(rendering the first %zu — pipe through a pager or filter "
                "the json for more)\n",
                limit);

  for (std::size_t t = 0; t < std::min(limit, traces.size()); ++t) {
    const std::vector<rev::obs::DistSpan> spans(
        all.begin() + static_cast<std::ptrdiff_t>(traces[t].first),
        all.begin() + static_cast<std::ptrdiff_t>(traces[t].second));
    const auto path = rev::obs::CriticalPath(spans);
    // Per-span critical-path share: segments attributed to the same span
    // sum into its column.
    std::map<std::uint64_t, std::uint64_t> crit_ns;
    std::uint64_t path_total = 0;
    for (const auto& segment : path) {
      crit_ns[segment.span] += segment.dur_ns();
      path_total += segment.dur_ns();
    }
    // Roots: spans whose parent is absent from this trace.
    std::map<std::uint64_t, bool> present;
    for (const auto& span : spans) present[span.span] = true;
    std::uint64_t trace_start = spans.empty() ? 0 : spans.front().start_ns;
    for (const auto& span : spans)
      trace_start = std::min(trace_start, span.start_ns);

    std::printf("\ntrace %s: %zu spans, critical path %zu hop%s / %.3fms\n",
                spans.front().trace.Hex().c_str(), spans.size(), path.size(),
                path.size() == 1 ? "" : "s",
                static_cast<double>(path_total) / 1e6);
    std::printf("  %-28s %-22s %-8s %6s %11s %11s %11s\n", "span", "node",
                "kind", "status", "start(ms)", "dur(ms)", "crit(ms)");
    for (const auto& span : spans) {
      if (span.parent == 0 || !present[span.parent])
        PrintDistTree(spans, span, crit_ns, trace_start, 0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool timeline = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-t") == 0) {
      timeline = true;
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: trace2txt [-t] <trace.json>\n");
    return 2;
  }

  FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "trace2txt: cannot open %s\n", path);
    return 1;
  }

  std::vector<Event> events;
  std::vector<rev::obs::DistSpan> dist_spans;
  std::uint64_t dropped = 0;
  char buffer[4096];
  while (std::fgets(buffer, sizeof buffer, f) != nullptr) {
    const std::string line = buffer;
    Event event;
    rev::obs::DistSpan span;
    if (ParseEventLine(line, event)) {
      events.push_back(std::move(event));
    } else if (ParseDistSpanLine(line, span)) {
      dist_spans.push_back(span);
    } else {
      std::string value;
      if (FindRaw(line, "dropped", value))
        dropped = std::strtoull(value.c_str(), nullptr, 10);
    }
  }
  std::fclose(f);

  if (!dist_spans.empty()) {
    std::printf("%s: %zu distributed spans, ", path, dist_spans.size());
    PrintDistTraces(dist_spans, 20);
    return 0;
  }
  if (events.empty()) {
    std::fprintf(stderr, "trace2txt: no trace events in %s\n", path);
    return 1;
  }
  std::printf("%s: %zu events", path, events.size());
  if (dropped > 0)
    std::printf(" (%" PRIu64 " dropped — oldest were overwritten)", dropped);
  std::printf("\n\n");
  PrintProfile(events);
  if (timeline) PrintTimeline(events, 40);
  return 0;
}
