// trace2txt: render a Chrome trace-event JSON file written by the obs
// trace collector (REV_TRACE=<file>, or TraceCollector::WriteChromeTrace)
// as a terminal-friendly report — a flat profile aggregated by span name
// and, with -t, a per-thread timeline of the slowest spans.
//
//   trace2txt trace.json            # flat profile
//   trace2txt -t trace.json        # + timeline of the 40 longest spans
//
// The parser targets the collector's own output: one complete ("ph":"X")
// event object per line inside "traceEvents". It is not a general JSON
// parser; feeding it traces from other producers may miss events.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

struct Event {
  std::string name;
  double ts_us = 0;
  double dur_us = 0;
  unsigned tid = 0;
  unsigned depth = 0;
};

// Extracts `"key":<value>` from one event line. Returns false if absent.
bool FindRaw(const std::string& line, const char* key, std::string& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
    if (end == std::string::npos) return false;
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  out = line.substr(begin, end - begin);
  return true;
}

bool ParseEventLine(const std::string& line, Event& event) {
  std::string value;
  if (!FindRaw(line, "ph", value) || value != "X") return false;
  if (!FindRaw(line, "name", event.name)) return false;
  if (FindRaw(line, "ts", value)) event.ts_us = std::atof(value.c_str());
  if (FindRaw(line, "dur", value)) event.dur_us = std::atof(value.c_str());
  if (FindRaw(line, "tid", value))
    event.tid = static_cast<unsigned>(std::atoi(value.c_str()));
  if (FindRaw(line, "depth", value))
    event.depth = static_cast<unsigned>(std::atoi(value.c_str()));
  return true;
}

void PrintProfile(const std::vector<Event>& events) {
  struct Agg {
    std::uint64_t count = 0;
    double total_us = 0;
    double max_us = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const Event& e : events) {
    Agg& agg = by_name[e.name];
    ++agg.count;
    agg.total_us += e.dur_us;
    agg.max_us = std::max(agg.max_us, e.dur_us);
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });

  std::printf("%-36s %10s %12s %12s %12s\n", "span", "count", "total(ms)",
              "mean(us)", "max(us)");
  for (const auto& [name, agg] : rows) {
    std::printf("%-36s %10" PRIu64 " %12.3f %12.2f %12.2f\n", name.c_str(),
                agg.count, agg.total_us / 1e3,
                agg.count == 0 ? 0.0
                               : agg.total_us / static_cast<double>(agg.count),
                agg.max_us);
  }
}

void PrintTimeline(std::vector<Event> events, std::size_t limit) {
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.dur_us > b.dur_us;
  });
  if (events.size() > limit) events.resize(limit);
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.ts_us < b.ts_us;
  });

  std::printf("\n%-12s %-6s %-36s %12s %12s\n", "start(ms)", "tid", "span",
              "dur(us)", "depth");
  for (const Event& e : events) {
    std::printf("%-12.3f %-6u %*s%-*s %12.2f %12u\n", e.ts_us / 1e3, e.tid,
                static_cast<int>(e.depth * 2), "",
                static_cast<int>(36 - e.depth * 2), e.name.c_str(), e.dur_us,
                e.depth);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool timeline = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-t") == 0) {
      timeline = true;
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: trace2txt [-t] <trace.json>\n");
    return 2;
  }

  FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "trace2txt: cannot open %s\n", path);
    return 1;
  }

  std::vector<Event> events;
  std::uint64_t dropped = 0;
  char buffer[4096];
  while (std::fgets(buffer, sizeof buffer, f) != nullptr) {
    const std::string line = buffer;
    Event event;
    if (ParseEventLine(line, event)) {
      events.push_back(std::move(event));
    } else {
      std::string value;
      if (FindRaw(line, "dropped", value))
        dropped = std::strtoull(value.c_str(), nullptr, 10);
    }
  }
  std::fclose(f);

  if (events.empty()) {
    std::fprintf(stderr, "trace2txt: no trace events in %s\n", path);
    return 1;
  }
  std::printf("%s: %zu events", path, events.size());
  if (dropped > 0)
    std::printf(" (%" PRIu64 " dropped — oldest were overwritten)", dropped);
  std::printf("\n\n");
  PrintProfile(events);
  if (timeline) PrintTimeline(events, 40);
  return 0;
}
