// Fig. 2: fraction of fresh (top) and alive (bottom) certificates that are
// revoked, over time, for all certificates and EV-only.
#include "bench_common.h"

using namespace rev;

int main() {
  bench::BenchRun run("fig2_revoked_fractions");
  bench::PrintHeader(
      "Fig. 2 — fraction of fresh/alive certificates that are revoked",
      ">8% of fresh and ~0.6-1% of alive certs revoked by Mar 2015; spike "
      "from Heartbleed (Apr 2014); >1% fresh revoked even pre-Heartbleed");

  bench::World world = bench::World::Build(bench::ScaleFromEnv());
  bench::BenchRun::Phase analysis_phase("analysis");
  const core::EcosystemConfig& c = world.eco->config();

  const auto points = core::ComputeRevocationTimeline(
      *world.pipeline, *world.crawler, util::MakeDate(2014, 1, 1), c.study_end,
      7 * util::kSecondsPerDay);

  core::TextTable table({"date", "fresh revoked", "fresh EV revoked",
                         "alive revoked", "alive EV revoked"});
  for (std::size_t i = 0; i < points.size(); i += 2) {
    const auto& p = points[i];
    table.AddRow({util::FormatDate(p.time),
                  core::FormatDouble(p.FreshRevokedFraction(), 4),
                  core::FormatDouble(p.FreshEvRevokedFraction(), 4),
                  core::FormatDouble(p.AliveRevokedFraction(), 4),
                  core::FormatDouble(p.AliveEvRevokedFraction(), 4)});
  }
  std::printf("%s\n", table.Render().c_str());

  const auto& pre = points[12];
  const auto& end = points.back();
  std::printf("shape check:\n");
  std::printf("  pre-Heartbleed fresh revoked : %.2f%%  (paper: >1%%)\n",
              100 * pre.FreshRevokedFraction());
  std::printf("  final fresh revoked          : %.2f%%  (paper: >8%%)\n",
              100 * end.FreshRevokedFraction());
  std::printf("  final alive revoked          : %.2f%%  (paper: ~0.6-1%%)\n",
              100 * end.AliveRevokedFraction());
  std::printf("  final fresh EV revoked       : %.2f%%  (paper: >6%%)\n",
              100 * end.FreshEvRevokedFraction());
  std::printf("  spike visible at             : %s (Heartbleed %s)\n",
              util::FormatDate(c.heartbleed).c_str(),
              util::FormatDate(c.heartbleed).c_str());

  // §4.2: reasons for revocation.
  std::printf("\nreason codes across %zu crawled revocations (§4.2 — the "
              "paper finds the vast\nmajority carry no reason code):\n",
              world.crawler->total_revocations());
  core::TextTable reasons({"reason code", "count", "fraction"});
  const auto histogram = world.crawler->ReasonCodeHistogram();
  for (const auto& [reason, count] : histogram) {
    reasons.AddRow({x509::ReasonCodeName(reason), std::to_string(count),
                    core::FormatDouble(
                        static_cast<double>(count) /
                            static_cast<double>(world.crawler->total_revocations()),
                        3)});
  }
  std::printf("%s", reasons.Render().c_str());
  return 0;
}
