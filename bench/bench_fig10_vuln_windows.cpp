// Fig. 10: windows of vulnerability — days for a CRL revocation to appear
// in the CRLSet, and days between CRLSet removal and certificate expiry.
#include "bench_common.h"

using namespace rev;

int main() {
  bench::BenchRun run("fig10_vuln_windows");
  bench::PrintHeader(
      "Fig. 10 — CRLSet windows of vulnerability",
      "60% of revocations appear in the CRLSet within 1 day, >90% within 2; "
      "but revocations are removed a median of 187 days before the "
      "certificate expires (e.g. the VeriSign parent removal)");

  bench::World world = bench::World::Build(bench::ScaleFromEnv(),
                                           /*run_scans=*/false,
                                           /*run_crawl=*/false);
  bench::BenchRun::Phase analysis_phase("analysis");
  const core::EcosystemConfig& c = world.eco->config();

  core::CrlsetAuditor auditor(world.eco.get(),
                              bench::ScaledCrlsetConfig(world.config.scale));
  core::CrlsetAuditor::Options options;
  options.parent_removal_date = util::MakeDate(2014, 12, 15);
  options.parent_removal_ca = "Verisign";
  auditor.RunDaily(c.crawl_start, c.study_end, options);

  const util::Distribution appear = auditor.DaysToAppear();
  const util::Distribution removal = auditor.RemovalToExpiryDays();

  core::TextTable table({"days", "CDF: days to appear",
                         "CDF: removal -> expiry"});
  for (double d : {1.0, 2.0, 3.0, 7.0, 30.0, 90.0, 187.0, 365.0, 1000.0}) {
    table.AddRow({core::FormatDouble(d, 0),
                  core::FormatDouble(appear.CdfAt(d), 3),
                  core::FormatDouble(removal.CdfAt(d), 3)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("days-to-appear:  %zu entries, %.0f%% within 1 day, %.0f%% "
              "within 2 (paper: 60%% / >90%%)\n",
              appear.Count(), 100 * appear.CdfAt(1.0), 100 * appear.CdfAt(2.0));
  std::printf("removal windows: %zu entries, median %.0f days before expiry "
              "(paper: 187 days)\n",
              removal.Count(), removal.Median());
  return 0;
}
