// §5.2/§6 cost analysis: what revocation checking actually costs a browser
// at page load, across the live server population — CRL downloads vs OCSP
// queries vs stapling vs nothing. (NetCraft's figure the paper cites: an
// OCSP exchange typically costs <1 KB and <250 ms; CRLs cost whatever the
// CA's list weighs.)
#include "bench_common.h"
#include "browser/client.h"
#include "browser/profiles.h"

using namespace rev;
using namespace rev::browser;

int main() {
  bench::PrintHeader(
      "Cost of checking — per-visit revocation latency and bytes",
      "median certificate's CRL is 51 KB (up to 76 MB); an OCSP exchange is "
      "<1 KB with a latency penalty under 250 ms; stapling is nearly free");

  bench::World world = bench::World::Build(bench::ScaleFromEnv(),
                                           /*run_scans=*/false,
                                           /*run_crawl=*/false);
  const core::EcosystemConfig& c = world.eco->config();
  const util::Timestamp now = c.study_end - 30 * util::kSecondsPerDay;

  // Sample alive servers.
  std::vector<std::size_t> alive;
  for (std::size_t i = 0; i < world.eco->internet().size(); ++i)
    if (world.eco->internet().server(i).AliveAt(now)) alive.push_back(i);
  util::Rng rng(1001);
  const std::size_t sample = std::min<std::size_t>(800, alive.size());
  for (std::size_t i = 0; i < sample; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.NextBelow(alive.size() - i));
    std::swap(alive[i], alive[j]);
  }

  const struct {
    const char* label;
    const char* browser;
    const char* os;
  } kProfiles[] = {
      {"IE 11 (CRL+OCSP, hard-fail leaf)", "IE 11", "Windows 10"},
      {"Firefox 40 (OCSP leaf only)", "Firefox 40", "Windows"},
      {"Opera 12.17 (CRLs everywhere)", "Opera 12.17", "Windows"},
      {"Chrome 44 non-EV (no checks)", "Chrome 44", "Windows"},
      {"Mobile Safari (no checks)", "Mobile Safari", "iOS 8"},
  };

  core::TextTable table({"client", "median ms", "p95 ms", "median KB",
                         "max KB", "accepted"});
  for (const auto& p : kProfiles) {
    const Policy& policy = FindProfile(p.browser, p.os)->policy;
    util::Distribution latency, bytes;
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < sample; ++i) {
      scan::Server& server = world.eco->internet().server(alive[i]);
      // Build a handshake-capable server from the advertised chain.
      tls::TlsServer::Config config = server.tls.config();
      config.chain_der.clear();
      for (const x509::CertPtr& cert : server.chain)
        config.chain_der.push_back(cert->der);
      tls::TlsServer tls_server(config);
      Client client(policy, &world.eco->net(), world.eco->roots());
      const VisitOutcome outcome = client.Visit(tls_server, now);
      latency.Add(outcome.revocation_seconds * 1000);
      bytes.Add(static_cast<double>(outcome.revocation_bytes) / 1024.0);
      if (outcome.accepted()) ++accepted;
    }
    table.AddRow({p.label, core::FormatDouble(latency.Median(), 1),
                  core::FormatDouble(latency.Quantile(0.95), 1),
                  core::FormatDouble(bytes.Median(), 1),
                  core::FormatDouble(bytes.Max(), 1),
                  std::to_string(accepted) + "/" + std::to_string(sample)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "shape check (§5.2): OCSP-only checking sits in the ~100-300 ms band;\n"
      "CRL-based checking pays for whole lists (KB-MB, scale-dependent);\n"
      "non-checking browsers pay nothing — which is precisely why they\n"
      "don't check. Rejections here are revoked/unreachable sites.\n");
  return 0;
}
