// Fig. 7 + §7.2: CRLSet coverage — the CDF of per-CRL coverage fractions
// and the headline coverage statistics.
#include "bench_common.h"

using namespace rev;

int main() {
  bench::BenchRun run("fig7_crlset_coverage");
  bench::PrintHeader(
      "Fig. 7 / §7.2 — CRLSet coverage of CRL entries",
      "CRLSets cover 0.35% of all revocations; 62 parents = 3.9% of CA "
      "certs; 295/2,800 CRLs (10.5%) ever covered; for 75.6% of covered "
      "CRLs all CRLSet-reason-coded entries appear; Alexa-1M revoked certs "
      "3.9% covered, top-1k 10.4%");

  bench::World world = bench::World::Build(bench::ScaleFromEnv());
  bench::BenchRun::Phase analysis_phase("analysis");
  const core::EcosystemConfig& c = world.eco->config();

  core::CrlsetAuditor auditor(world.eco.get(),
                              bench::ScaledCrlsetConfig(world.config.scale));
  auditor.RunDaily(c.crawl_start, c.crawl_start + 30 * util::kSecondsPerDay);
  const util::Timestamp now = c.crawl_start + 30 * util::kSecondsPerDay;

  const auto cdf = auditor.ComputeCoverageCdf(now);
  core::TextTable fig({"coverage fraction", "CDF (all entries)",
                       "CDF (CRLSet reason codes)"});
  for (double x : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    fig.AddRow({core::FormatDouble(x, 2),
                core::FormatDouble(cdf.all_entries.CdfAt(x), 3),
                core::FormatDouble(cdf.reason_coded.CdfAt(x), 3)});
  }
  std::printf("%s\n", fig.Render().c_str());
  std::printf("fully covered (reason-coded entries): %.1f%% of covered CRLs "
              "(paper: 75.6%%)\n\n",
              100 * (1.0 - cdf.reason_coded.CdfAt(0.999)));

  const auto stats = auditor.ComputeCoverage(now, *world.pipeline, *world.crawler);
  auto pct = [](std::size_t num, std::size_t den) {
    return den == 0 ? 0.0 : 100.0 * static_cast<double>(num) / static_cast<double>(den);
  };
  core::TextTable table({"metric", "measured", "paper"});
  table.AddRow({"revocations in all CRLs", std::to_string(stats.total_revocations),
                "11,461,935"});
  table.AddRow({"revocations in CRLSet",
                std::to_string(stats.crlset_entries) + " (" +
                    core::FormatDouble(pct(stats.crlset_entries, stats.total_revocations), 2) + "%)",
                "41,105 (0.35%)"});
  table.AddRow({"parents covered",
                std::to_string(stats.covered_parents) + "/" +
                    std::to_string(stats.total_parents) + " (" +
                    core::FormatDouble(pct(stats.covered_parents, stats.total_parents), 1) + "%)",
                "62/1,584 keys (3.9% of CA certs)"});
  table.AddRow({"CRLs ever covered",
                std::to_string(stats.covered_crls) + "/" +
                    std::to_string(stats.total_crls) + " (" +
                    core::FormatDouble(pct(stats.covered_crls, stats.total_crls), 1) + "%)",
                "295/2,800 (10.5%)"});
  table.AddRow({"top-1k revoked certs covered",
                std::to_string(stats.top1k_in_crlset) + "/" +
                    std::to_string(stats.top1k_revoked),
                "41/392 (10.4%)"});
  table.AddRow({"top-1M revoked certs covered",
                std::to_string(stats.top1m_in_crlset) + "/" +
                    std::to_string(stats.top1m_revoked),
                "1,644/42,225 (3.9%)"});
  std::printf("%s\n", table.Render().c_str());
  std::printf("shape check: coverage of all revocations is well under 5%%,\n"
              "most CRLs are never covered, and covered CRLs are mostly\n"
              "fully covered — matching the paper's structure.\n");
  return 0;
}
