// Fleet soak bench: replicated serving under a chaos storm, swept over
// replication factor N in {1,2,3,5}.
//
// Each run builds an authority + N replicas on one SimNet, warms the fleet
// through the replication channel, then drives simulated clients through a
// clean phase and a storm phase (regional outage killing one replica, a
// latency burst, 503 shedding with Retry-After, and a response-corruption
// storm). Replication keeps publishing mid-run, so the freshness-vs-lag
// trade is measurable: a replica that misses a push serves stale answers
// (never wrong ones) until it catches up.
//
// Reported per N (BENCH_fleet.json, committed baseline at the repo root):
//   wrong answers (MUST be 0), availability, shed rate, failover/hedge
//   counts, max snapshot lag (epochs and seconds), staleness CDF
//   (p50/p90/p99 over stale answers), latency p50/p99 clean vs storm.
//
// Observability artifacts (docs/observability.md), all gated:
//   - An SLO burn-rate timeline (availability / latency_fast / freshness
//     objectives over 60s virtual windows) that must fire during the storm
//     and stay silent through the clean phase — zero clean-phase alerts.
//   - A showcase phase re-runs a small soak with the distributed-trace
//     collector enabled, stitches the first hedged + failed-over query's
//     cross-node trace, and requires its critical path to sum to the
//     measured end-to-end latency within 1% — plus a trace-id exemplar on
//     the fleet-merged serve.latency_ns p99 bucket (scraped per replica
//     over GET /metrics.json and label-strip merged).
// A determinism phase re-runs N=3 at 1 thread and at the sweep maximum and
// compares per-client outcome checksums AND the serialized SLO timeline
// byte-for-byte — results are bit-identical at a fixed REV_CHAOS_SEED, or
// the bench exits nonzero.
//
// Environment knobs:
//   REV_FLEET_CERTS     population size            (default 4000)
//   REV_FLEET_CLIENTS   simulated clients          (default 8)
//   REV_FLEET_TICKS     60s virtual ticks per run  (default 24)
//   REV_FLEET_QPT       queries per client-tick    (default 25)
//   REV_FLEET_FACTORS   replication sweep          (default "1,2,3,5")
//   REV_FLEET_STRICT    0 disables the exit-code gates (sanitizer runs)
//   REV_THREADS         client fan-out threads     (default hardware)
//   REV_CHAOS_SEED      storm seed                 (default 0xC0FFEE)
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fleet/client.h"
#include "fleet/health.h"
#include "fleet/metricsview.h"
#include "fleet/publisher.h"
#include "fleet/replica.h"
#include "fleet/ring.h"
#include "net/fault.h"
#include "net/simnet.h"
#include "obs/distrace.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "ocsp/ocsp.h"
#include "ocsp/responder.h"
#include "serve/frontend.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/wire.h"
#include "x509/name.h"

using namespace rev;

namespace {

constexpr util::Timestamp kNow = 1'427'760'000;  // 2015-03-31
constexpr util::Timestamp kTick = 60;            // virtual seconds per tick

std::size_t SizeFromEnv(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

std::uint64_t SeedFromEnv() {
  const char* env = std::getenv("REV_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 0) : 0xC0FFEE;
}

std::vector<std::size_t> FactorsFromEnv() {
  const char* env = std::getenv("REV_FLEET_FACTORS");
  const std::string spec = env != nullptr ? env : "1,2,3,5";
  std::vector<std::size_t> factors;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const int v = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (v > 0) factors.push_back(static_cast<std::size_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (factors.empty()) factors = {1, 2, 3, 5};
  return factors;
}

unsigned ClientThreads() {
  const unsigned configured = bench::ThreadsFromEnv();
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 4;
}

x509::Certificate MakeIssuerCert() {
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial{0x88};
  tbs.issuer = tbs.subject = x509::Name::Make("Fleet Bench CA", "Bench");
  tbs.not_before = 0;
  tbs.not_after = kNow + 400 * util::kSecondsPerDay;
  tbs.public_key = crypto::SimKeyFromLabel("fleet-bench").Public();
  tbs.basic_constraints = {true, -1};
  return x509::SignCertificate(tbs, crypto::SimKeyFromLabel("fleet-bench"));
}

x509::Serial SerialOf(std::uint64_t n) {
  x509::Serial serial(8);
  serial[0] = 0x4D;  // survives DER INTEGER round-trips unchanged
  for (int b = 1; b < 8; ++b)
    serial[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(n >> (8 * (7 - b)));
  return serial;
}

// ------------------------------------------------------------ fleet rig ----

struct Fleet {
  Fleet(std::size_t n, std::size_t certs)
      : issuer(MakeIssuerCert()),
        authority(issuer, crypto::SimKeyFromLabel("fleet-bench"),
                  4 * util::kSecondsPerDay) {
    authority_frontend.AttachResponder(&authority);
    for (std::uint64_t s = 1; s <= certs; ++s)
      authority.AddCertificate(SerialOf(s));
    for (std::size_t i = 0; i < n; ++i) {
      auto replica = std::make_unique<fleet::Replica>(
          "replica-" + std::to_string(i) + ".fleet.sim", issuer,
          crypto::SimKeyFromLabel("fleet-bench"));
      replica->Install(net);
      ring.AddNode(replica->name(), /*enabled=*/false);  // monitor admits
      publisher.AddReplica(replica->name());
      replicas.push_back(std::move(replica));
    }
  }

  serve::StatusKey Key(std::uint64_t serial) const {
    return serve::MakeStatusKey(authority.issuer_key_hash(), SerialOf(serial));
  }

  Bytes Request(std::uint64_t serial) const {
    ocsp::OcspRequest request;
    request.cert_ids = {ocsp::MakeCertId(issuer, SerialOf(serial))};
    return ocsp::EncodeOcspRequest(request);
  }

  x509::Certificate issuer;
  ocsp::Responder authority;
  serve::Frontend authority_frontend;
  net::SimNet net;
  fleet::HashRing ring;
  fleet::Publisher publisher{&authority_frontend};
  std::vector<std::unique_ptr<fleet::Replica>> replicas;
  std::map<std::uint64_t, std::uint64_t> revoked_epoch;  // serial -> epoch
};

// Storm schedule, in tick indexes (see file header). The windows are laid
// out so that for N >= 2 at least one replica is deterministically clean
// at every tick: availability under the storm is an invariant of the
// design, not a seed-dependent roll.
struct StormSchedule {
  std::size_t clean_ticks;   // [0, clean) — no faults
  std::size_t latency_from, latency_to;
  std::size_t outage_from, outage_to;
  std::size_t shed_from, shed_to;
  std::size_t corrupt_from, corrupt_to;

  explicit StormSchedule(std::size_t ticks) {
    clean_ticks = std::max<std::size_t>(2, ticks / 3);
    latency_from = clean_ticks;
    latency_to = latency_from + 2;
    outage_from = latency_to;
    outage_to = outage_from + std::max<std::size_t>(4, ticks / 4) + 1;
    shed_from = std::min(ticks, outage_to + 2);
    shed_to = std::min(ticks, shed_from + 4);
    corrupt_from = shed_from;
    corrupt_to = shed_to;
  }
};

void AddStormRules(net::FaultPlan& plan, const Fleet& fleet,
                   const StormSchedule& schedule) {
  const auto at = [](std::size_t tick) {
    return kNow + static_cast<util::Timestamp>(tick) * kTick;
  };
  // Regional outage: replica 0's region hard down.
  net::FaultRule outage;
  outage.target = fleet.replicas[0]->name();
  outage.kind = net::FaultKind::kOutage;
  outage.start = at(schedule.outage_from);
  outage.end = at(schedule.outage_to);
  plan.AddRule(outage);
  if (fleet.replicas.size() > 1) {
    // Latency burst on replica 1: slow, not dead — exercises hedging.
    net::FaultRule slow;
    slow.target = fleet.replicas[1]->name();
    slow.kind = net::FaultKind::kLatency;
    slow.latency_factor = 20.0;
    slow.start = at(schedule.latency_from);
    slow.end = at(schedule.latency_to);
    plan.AddRule(slow);
    // 503 shedding bursts with Retry-After (client-side mark-down).
    net::FaultRule shed;
    shed.target = fleet.replicas[1]->name();
    shed.kind = net::FaultKind::kHttpError;
    shed.http_status = 503;
    shed.retry_after = 45;
    shed.probability = 0.3;
    shed.start = at(schedule.shed_from);
    shed.end = at(schedule.shed_to);
    plan.AddRule(shed);
  }
  if (fleet.replicas.size() > 2) {
    // Response corruption storm on replica 2 (replica 0 is back by then).
    net::FaultRule corrupt;
    corrupt.target = fleet.replicas[2]->name();
    corrupt.kind = net::FaultKind::kCorrupt;
    corrupt.corrupt_bytes = 4;
    corrupt.start = at(schedule.corrupt_from);
    corrupt.end = at(schedule.corrupt_to);
    plan.AddRule(corrupt);
  }
}

// ------------------------------------------------------------- soak run ----

// Latency SLI threshold: an answered query slower than this (virtual
// seconds) spends error budget. Matches the client hedge budget, so any
// query that needed a hedge or failover is "slow" by construction.
constexpr double kFastSeconds = 0.25;

// The declared objectives. One window = one tick (kTick seconds), so the
// per-tick tallies the merge step records land in exactly one window each.
obs::SloMonitor MakeSloMonitor() {
  obs::SloMonitor slo;
  // 99.9% of queries produce a validated answer.
  slo.AddObjective({.name = "availability",
                    .objective = 0.999,
                    .window_seconds = kTick,
                    .short_windows = 1,
                    .long_windows = 3,
                    .burn_threshold = 4.0});
  // 99% of queries finish within the hedge budget (failures count as
  // slow — an unanswered query is the slowest possible outcome).
  slo.AddObjective({.name = "latency_fast",
                    .objective = 0.99,
                    .window_seconds = kTick,
                    .short_windows = 1,
                    .long_windows = 3,
                    .burn_threshold = 4.0});
  // 99.5% of *answers* reflect every published revocation (not stale).
  slo.AddObjective({.name = "freshness",
                    .objective = 0.995,
                    .window_seconds = kTick,
                    .short_windows = 1,
                    .long_windows = 3,
                    .burn_threshold = 4.0});
  return slo;
}

struct RunResult {
  std::uint64_t queries = 0;
  std::uint64_t answered = 0;
  std::uint64_t wrong = 0;
  std::uint64_t stale = 0;
  std::uint64_t failovers = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t shed_503 = 0;
  std::uint64_t exhausted = 0;
  std::uint64_t max_lag_epochs = 0;
  double max_lag_seconds = 0;
  util::Distribution clean_latency;
  util::Distribution storm_latency;
  util::Distribution staleness_seconds;
  std::uint64_t outcome_checksum = 0;  // FNV over per-client outcome bytes
  // SLO burn-rate timeline over the run's virtual windows (slo.h).
  std::string slo_json;
  std::uint64_t slo_alerts = 0;
  std::uint64_t clean_phase_alerts = 0;  // MUST stay 0 (false positives)
  // Showcase candidate: the first answered query (client order, then query
  // order) that both hedged and failed over — the trace worth stitching.
  bool has_showcase = false;
  obs::TraceId showcase_trace;
  double showcase_elapsed_seconds = 0;
  // Fleet-wide metrics view: every replica's GET /metrics.json scraped
  // over SimNet at run end, label-stripped and merged.
  obs::MetricsSnapshot fleet_metrics;
  std::size_t scrape_hosts_ok = 0;
  std::uint64_t scrape_bytes = 0;
};

struct RunConfig {
  std::size_t replicas = 3;
  std::size_t certs = 4000;
  std::size_t clients = 8;
  std::size_t ticks = 24;
  std::size_t queries_per_tick = 25;
  unsigned threads = 1;
  std::uint64_t seed = 0xC0FFEE;
};

RunResult RunSoak(const RunConfig& config) {
  Fleet fleet(config.replicas, config.certs);
  const StormSchedule schedule(config.ticks);

  // Seed revocations (2% of the population), then warm every replica.
  util::Rng seeder(config.seed ^ 0x5EED);
  util::Timestamp now = kNow - 2 * kTick;
  for (std::size_t i = 0; i < config.certs / 50; ++i) {
    const std::uint64_t serial = 1 + seeder.NextBelow(config.certs);
    if (fleet.revoked_epoch.count(serial)) continue;
    fleet.authority.Revoke(SerialOf(serial), now,
                           x509::ReasonCode::kKeyCompromise);
    fleet.revoked_epoch[serial] = 1;  // included in the first publish
  }
  fleet.authority_frontend.RebuildAll(now);
  fleet.publisher.Publish(fleet.net, now);

  fleet::HealthOptions health_options;
  health_options.down_after = 2;
  health_options.up_after = 2;
  health_options.seed = config.seed;
  fleet::HealthMonitor monitor(&fleet.ring, health_options);
  for (const auto& replica : fleet.replicas) monitor.AddTarget(replica->name());
  monitor.ProbeAll(fleet.net, now);
  monitor.ProbeAll(fleet.net, now + kTick);  // up_after=2 -> all admitted

  net::FaultPlan plan(config.seed);
  AddStormRules(plan, fleet, schedule);
  fleet.net.SetFaultPlan(&plan);

  std::vector<std::unique_ptr<fleet::FleetClient>> clients;
  for (std::size_t c = 0; c < config.clients; ++c) {
    fleet::FleetClientOptions options;
    options.responder_key = crypto::SimKeyFromLabel("fleet-bench").Public();
    // Trace ids derive from (run seed, client index), never from global
    // instance counters, so the trace tree is bit-identical at any thread
    // count and across the phases of one bench invocation.
    options.trace_seed = config.seed ^ (0x51D5EEDull * (c + 1));
    clients.push_back(std::make_unique<fleet::FleetClient>(
        &fleet.net, &fleet.ring, options));
  }

  std::map<std::string, const fleet::Replica*> by_name;
  for (const auto& replica : fleet.replicas)
    by_name[replica->name()] = replica.get();

  RunResult result;
  obs::SloMonitor slo = MakeSloMonitor();
  // Per-client accumulators, merged in client order after every tick so
  // totals are bit-identical at any thread count.
  struct ClientLocal {
    std::vector<double> latencies;
    std::vector<std::uint8_t> outcomes;
    std::vector<double> staleness;
    std::uint64_t wrong = 0, stale = 0;
    // Per-tick SLI tallies (one tick = one SLO window).
    std::uint64_t n = 0, ok = 0, fast = 0, fresh = 0;
    bool has_showcase = false;
    obs::TraceId showcase_trace;
    double showcase_elapsed = 0;
  };

  for (std::size_t tick = 0; tick < config.ticks; ++tick) {
    now = kNow + static_cast<util::Timestamp>(tick) * kTick;
    const bool storm = tick >= schedule.clean_ticks;

    // Replication keeps running through the storm: a few fresh
    // revocations land right before every fourth tick's publish.
    if (tick % 4 == 0 && tick != 0) {
      const std::uint64_t next_epoch = fleet.publisher.epoch() + 1;
      for (int i = 0; i < 4; ++i) {
        const std::uint64_t serial = 1 + seeder.NextBelow(config.certs);
        if (fleet.revoked_epoch.count(serial)) continue;
        fleet.authority.Revoke(SerialOf(serial), now,
                               x509::ReasonCode::kKeyCompromise);
        fleet.revoked_epoch[serial] = next_epoch;
      }
      fleet.authority_frontend.RefreshStale(now);
      fleet.authority_frontend.RebuildAll(now);
      fleet.publisher.Publish(fleet.net, now);
    }
    monitor.ProbeAll(fleet.net, now);

    // Lag observed AFTER the publish/probe step: the widest gap any
    // admitted replica would serve from this tick.
    result.max_lag_epochs =
        std::max(result.max_lag_epochs, fleet.publisher.MaxLagEpochs());
    for (const auto& replica : fleet.replicas) {
      if (!fleet.ring.IsEnabled(replica->name())) continue;
      const double lag_seconds = static_cast<double>(
          now - replica->applied_published_at());
      result.max_lag_seconds = std::max(result.max_lag_seconds, lag_seconds);
    }

    std::vector<ClientLocal> locals(config.clients);
    auto run_client = [&](std::size_t c) {
      ClientLocal& local = locals[c];
      util::Rng rng(config.seed ^ (0x9E3779B9ull * (c + 1)) ^
                    (tick * 0x85EBCA6Bull));
      for (std::size_t q = 0; q < config.queries_per_tick; ++q) {
        const std::uint64_t serial =
            1 + rng.NextBelow(static_cast<std::uint64_t>(config.certs));
        const auto answer = clients[c]->Query(fleet.Request(serial),
                                              fleet.Key(serial), now);
        ++local.n;
        if (!answer.ok) {
          local.outcomes.push_back(0xFF);
          continue;
        }
        ++local.ok;
        if (answer.elapsed_seconds <= kFastSeconds) ++local.fast;
        if (!local.has_showcase && answer.hedged && answer.failed_over &&
            answer.trace_id.valid()) {
          local.has_showcase = true;
          local.showcase_trace = answer.trace_id;
          local.showcase_elapsed = answer.elapsed_seconds;
        }
        local.outcomes.push_back(static_cast<std::uint8_t>(answer.status));
        local.latencies.push_back(answer.elapsed_seconds);
        const auto it = fleet.revoked_epoch.find(serial);
        const bool truly_revoked = it != fleet.revoked_epoch.end();
        bool stale_answer = false;
        if (answer.status == ocsp::CertStatus::kRevoked) {
          if (!truly_revoked) ++local.wrong;
        } else if (truly_revoked) {
          // "good" for a revoked cert: wrong if the serving replica had
          // already applied the revocation's publish epoch, stale lag
          // otherwise.
          if (by_name[answer.served_by]->applied_epoch() >= it->second) {
            ++local.wrong;
          } else {
            ++local.stale;
            stale_answer = true;
            local.staleness.push_back(static_cast<double>(
                now - fleet.publisher.PublishTimeOf(it->second)));
          }
        }
        if (!stale_answer) ++local.fresh;
      }
    };
    if (config.threads <= 1) {
      for (std::size_t c = 0; c < config.clients; ++c) run_client(c);
    } else {
      std::vector<std::thread> workers;
      for (unsigned t = 0; t < config.threads; ++t)
        workers.emplace_back([&, t] {
          for (std::size_t c = t; c < config.clients; c += config.threads)
            run_client(c);
        });
      for (auto& worker : workers) worker.join();
    }

    if (std::getenv("REV_FLEET_DEBUG") != nullptr) {
      std::uint64_t tick_failed = 0;
      for (const auto& local : locals)
        for (const std::uint8_t outcome : local.outcomes)
          if (outcome == 0xFF) ++tick_failed;
      if (tick_failed > 0) {
        std::printf("  [debug] tick=%zu failed=%llu ring:", tick,
                    static_cast<unsigned long long>(tick_failed));
        for (const auto& replica : fleet.replicas)
          std::printf(" %s=%d", replica->name().c_str(),
                      fleet.ring.IsEnabled(replica->name()) ? 1 : 0);
        std::printf("\n");
      }
    }

    // Deterministic merge, client order.
    std::uint64_t tick_n = 0, tick_ok = 0, tick_fast = 0, tick_fresh = 0;
    for (std::size_t c = 0; c < config.clients; ++c) {
      const ClientLocal& local = locals[c];
      result.wrong += local.wrong;
      result.stale += local.stale;
      tick_n += local.n;
      tick_ok += local.ok;
      tick_fast += local.fast;
      tick_fresh += local.fresh;
      if (!result.has_showcase && local.has_showcase) {
        result.has_showcase = true;
        result.showcase_trace = local.showcase_trace;
        result.showcase_elapsed_seconds = local.showcase_elapsed;
      }
      for (const double latency : local.latencies)
        (storm ? result.storm_latency : result.clean_latency).Add(latency);
      for (const double seconds : local.staleness)
        result.staleness_seconds.Add(seconds);
      result.outcome_checksum ^= util::wire::Fnv1a(BytesView(
                                     local.outcomes.data(),
                                     local.outcomes.size())) +
                                 0x9E3779B97F4A7C15ull * (c + 1);
    }
    // SLI tallies recorded once per tick from the merged totals — pure
    // integers off the virtual clock, so the timeline below is a function
    // of outcomes only, not of thread interleaving.
    slo.Record("availability", now, tick_ok, tick_n);
    slo.Record("latency_fast", now, tick_fast, tick_n);
    slo.Record("freshness", now, tick_fresh, tick_ok);
  }

  result.slo_json = slo.TimelineJson();
  const util::Timestamp storm_start =
      kNow + static_cast<util::Timestamp>(schedule.clean_ticks) * kTick;
  for (const auto& alert : slo.AlertTimeline()) {
    ++result.slo_alerts;
    if (alert.window_start < storm_start) ++result.clean_phase_alerts;
  }

  // Fleet-wide metrics view: scrape every replica's /metrics.json after
  // the last tick, with the fault plan detached so the scrape itself can't
  // be storm-damaged (the instruments already recorded the storm).
  fleet.net.SetFaultPlan(nullptr);
  std::vector<std::string> hosts;
  hosts.reserve(fleet.replicas.size());
  for (const auto& replica : fleet.replicas) hosts.push_back(replica->name());
  fleet::FleetMetricsView view =
      fleet::ScrapeFleetMetrics(fleet.net, hosts, now + kTick);
  result.fleet_metrics = std::move(view.merged);
  result.scrape_hosts_ok = view.hosts_ok;
  result.scrape_bytes = view.scrape_bytes;

  for (const auto& client : clients) {
    const auto& counters = client->counters();
    result.queries += counters.queries;
    result.answered += counters.answered;
    result.failovers += counters.failovers;
    result.hedges += counters.hedges;
    result.hedge_wins += counters.hedge_wins;
    result.shed_503 += counters.shed_503;
    result.exhausted += counters.exhausted;
  }
  return result;
}

double Ratio(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
}

}  // namespace

int main() {
  bench::BenchRun run("fleet");
  bench::PrintHeader(
      "Replicated serving fleet: availability and freshness under storms",
      "an unavailable revocation endpoint forces soft-fail (S5.2/S6.1); "
      "replication keeps status answers available AND never wrong");

  const std::uint64_t seed = SeedFromEnv();
  const std::size_t certs = SizeFromEnv("REV_FLEET_CERTS", 4000);
  const std::size_t num_clients = SizeFromEnv("REV_FLEET_CLIENTS", 8);
  const std::size_t ticks = SizeFromEnv("REV_FLEET_TICKS", 24);
  const std::size_t qpt = SizeFromEnv("REV_FLEET_QPT", 25);
  const bool strict = SizeFromEnv("REV_FLEET_STRICT", 1) != 0;
  const unsigned threads = ClientThreads();
  const std::vector<std::size_t> factors = FactorsFromEnv();

  std::printf("seed=0x%llX certs=%zu clients=%zu ticks=%zu qpt=%zu "
              "threads=%u\n\n",
              static_cast<unsigned long long>(seed), certs, num_clients,
              ticks, qpt, threads);

  bool all_gates_passed = true;
  std::string results_json = "{\n    \"sweep\": [";
  double clean_p99_baseline = 0;
  // SLO block for the BENCH json: taken from the largest swept N (the
  // configuration the fleet docs describe), captured as the sweep runs.
  std::string slo_block_json;
  std::uint64_t slo_block_alerts = 0, slo_block_clean = 0;
  std::size_t slo_block_n = 0;

  for (std::size_t i = 0; i < factors.size(); ++i) {
    const std::size_t n = factors[i];
    RunConfig config;
    config.replicas = n;
    config.certs = certs;
    config.clients = num_clients;
    config.ticks = ticks;
    config.queries_per_tick = qpt;
    config.threads = threads;
    config.seed = seed;

    RunResult result;
    {
      bench::BenchRun::Phase phase("fleet.soak");
      result = RunSoak(config);
    }

    const double availability = Ratio(result.answered, result.queries);
    const double shed_rate = Ratio(result.shed_503, result.queries);
    const double clean_p99 = result.clean_latency.Quantile(0.99);
    const double storm_p99 = result.storm_latency.Quantile(0.99);
    if (n == 1 || clean_p99_baseline == 0) clean_p99_baseline = clean_p99;
    const double p99_ratio = clean_p99 > 0 ? storm_p99 / clean_p99 : 0;

    std::printf(
        "N=%zu  queries=%llu answered=%llu (availability %.4f)\n"
        "      wrong=%llu stale=%llu failovers=%llu hedges=%llu (wins %llu)\n"
        "      shed rate %.4f  exhausted=%llu  max lag %llu epochs / %.0fs\n"
        "      latency p50/p99 clean %.3fs/%.3fs storm %.3fs/%.3fs (x%.1f)\n"
        "      staleness p50/p90/p99 %.0fs/%.0fs/%.0fs over %llu stale\n",
        n, static_cast<unsigned long long>(result.queries),
        static_cast<unsigned long long>(result.answered), availability,
        static_cast<unsigned long long>(result.wrong),
        static_cast<unsigned long long>(result.stale),
        static_cast<unsigned long long>(result.failovers),
        static_cast<unsigned long long>(result.hedges),
        static_cast<unsigned long long>(result.hedge_wins), shed_rate,
        static_cast<unsigned long long>(result.exhausted),
        static_cast<unsigned long long>(result.max_lag_epochs),
        result.max_lag_seconds, result.clean_latency.Quantile(0.50), clean_p99,
        result.storm_latency.Quantile(0.50), storm_p99, p99_ratio,
        result.staleness_seconds.Quantile(0.50),
        result.staleness_seconds.Quantile(0.90),
        result.staleness_seconds.Quantile(0.99),
        static_cast<unsigned long long>(result.stale));

    std::printf("      slo alerts=%llu (clean-phase %llu)  scrape %zu hosts "
                "%llu bytes\n",
                static_cast<unsigned long long>(result.slo_alerts),
                static_cast<unsigned long long>(result.clean_phase_alerts),
                result.scrape_hosts_ok,
                static_cast<unsigned long long>(result.scrape_bytes));

    // Acceptance gates: zero wrong answers at EVERY N; with replication
    // (N >= 2) the regional outage must not dent availability or blow the
    // latency tail. SLO gates at every N: the burn-rate engine must stay
    // silent through the clean phase (no false positives) and, once the
    // storm can actually be survived-but-felt (N >= 2), must page during
    // it; the end-of-run scrape must reach every replica.
    bool gates = result.wrong == 0;
    gates = gates && result.clean_phase_alerts == 0;
    gates = gates && result.scrape_hosts_ok == n;
    if (n >= 2) {
      gates = gates && availability >= 0.999;
      gates = gates && (clean_p99 <= 0 || storm_p99 < 10 * clean_p99);
      gates = gates && result.failovers > 0;
      gates = gates && result.slo_alerts > 0;
    }
    std::printf("%s fleet N=%zu wrong_answers=%llu availability=%.4f "
                "p99_ratio=%.2f slo_alerts=%llu\n\n",
                gates ? "OK" : "FAIL", n,
                static_cast<unsigned long long>(result.wrong), availability,
                p99_ratio,
                static_cast<unsigned long long>(result.slo_alerts));
    all_gates_passed = all_gates_passed && gates;
    if (n >= slo_block_n) {
      slo_block_n = n;
      slo_block_json = result.slo_json;
      slo_block_alerts = result.slo_alerts;
      slo_block_clean = result.clean_phase_alerts;
    }

    char entry[1024];
    std::snprintf(
        entry, sizeof entry,
        "%s\n      {\"replicas\": %zu, \"queries\": %llu, \"answered\": "
        "%llu,\n       \"availability\": %.6f, \"wrong_answers\": %llu, "
        "\"stale_answers\": %llu,\n       \"failovers\": %llu, \"hedges\": "
        "%llu, \"hedge_wins\": %llu,\n       \"shed_rate\": %.6f, "
        "\"exhausted\": %llu,\n       \"max_lag_epochs\": %llu, "
        "\"max_lag_seconds\": %.1f,\n       \"latency_clean_p50_s\": %.6f, "
        "\"latency_clean_p99_s\": %.6f,\n       \"latency_storm_p50_s\": "
        "%.6f, \"latency_storm_p99_s\": %.6f,\n       \"staleness_p50_s\": "
        "%.1f, \"staleness_p90_s\": %.1f, \"staleness_p99_s\": %.1f}",
        i == 0 ? "" : ",", n, static_cast<unsigned long long>(result.queries),
        static_cast<unsigned long long>(result.answered), availability,
        static_cast<unsigned long long>(result.wrong),
        static_cast<unsigned long long>(result.stale),
        static_cast<unsigned long long>(result.failovers),
        static_cast<unsigned long long>(result.hedges),
        static_cast<unsigned long long>(result.hedge_wins), shed_rate,
        static_cast<unsigned long long>(result.exhausted),
        static_cast<unsigned long long>(result.max_lag_epochs),
        result.max_lag_seconds, result.clean_latency.Quantile(0.50), clean_p99,
        result.storm_latency.Quantile(0.50), storm_p99,
        result.staleness_seconds.Quantile(0.50),
        result.staleness_seconds.Quantile(0.90),
        result.staleness_seconds.Quantile(0.99));
    results_json += entry;
  }
  results_json += "\n    ],\n";

  // SLO burn-rate block (largest swept N). `clean_phase_alerts` MUST be 0
  // — scripts/ci.sh greps for exactly that.
  {
    char slo_head[256];
    std::snprintf(slo_head, sizeof slo_head,
                  "    \"slo\": {\"replicas\": %zu, \"alerts\": %llu, "
                  "\"storm_phase_alerts\": %llu, \"clean_phase_alerts\": "
                  "%llu,\n      \"timeline\": ",
                  slo_block_n,
                  static_cast<unsigned long long>(slo_block_alerts),
                  static_cast<unsigned long long>(slo_block_alerts -
                                                  slo_block_clean),
                  static_cast<unsigned long long>(slo_block_clean));
    results_json += slo_head;
    results_json += slo_block_json.empty() ? "{}" : slo_block_json;
    results_json += "},\n";
  }

  // Showcase: a small soak re-run with the distributed-trace collector
  // enabled. Stitch the first hedged + failed-over query's cross-node
  // trace, extract its critical path, and require the tiles to sum to the
  // client-measured latency within 1%; require a trace-id exemplar on the
  // fleet-merged serve.latency_ns p99 bucket.
  bool showcase_ok = true;
  {
    bench::BenchRun::Phase phase("fleet.showcase");
    obs::DistTraceCollector& collector = obs::DistTraceCollector::Global();
    collector.Clear();
    collector.Enable();
    RunConfig config;
    config.replicas = 3;
    config.certs = std::min<std::size_t>(certs, 1000);
    config.clients = num_clients;
    config.ticks = std::min<std::size_t>(ticks, 12);
    config.queries_per_tick = qpt;
    config.seed = seed;
    config.threads = 1;
    const RunResult traced = RunSoak(config);

    std::vector<obs::DistSpan> spans;
    std::vector<obs::PathSegment> path;
    std::uint64_t path_sum_ns = 0;
    double measured_ns = 0;
    bool within_1pct = false, crosses_nodes = false, has_hedge_leg = false;
    std::set<std::string> nodes;
    if (traced.has_showcase) {
      spans = collector.SnapshotTrace(traced.showcase_trace);
      path = obs::CriticalPath(spans);
      for (const auto& segment : path) path_sum_ns += segment.dur_ns();
      for (const auto& span : spans) {
        nodes.insert(span.node);
        if (std::strcmp(span.name, "fleet.hedge") == 0) has_hedge_leg = true;
      }
      crosses_nodes = nodes.size() >= 2;
      measured_ns = traced.showcase_elapsed_seconds * 1e9;
      within_1pct = measured_ns > 0 &&
                    std::fabs(static_cast<double>(path_sum_ns) - measured_ns) <=
                        0.01 * measured_ns;
    }

    // Exemplar gate: the p99 bucket of the merged serve.latency_ns must
    // carry the trace id of the last traced request that landed in it.
    bool exemplar_ok = false;
    std::string exemplar_hex;
    for (const auto& histogram : traced.fleet_metrics.histograms) {
      if (histogram.name != "serve.latency_ns") continue;
      const obs::HistogramSnapshot& snapshot = histogram.snapshot;
      if (snapshot.count == 0) break;
      const std::uint64_t target = (snapshot.count * 99 + 99) / 100;
      std::uint64_t cumulative = 0;
      std::size_t p99_bucket = 0;
      for (std::size_t b = 0; b < snapshot.buckets.size(); ++b) {
        cumulative += snapshot.buckets[b];
        if (cumulative >= target) {
          p99_bucket = b;
          break;
        }
      }
      exemplar_ok = snapshot.exemplars[p99_bucket].valid();
      exemplar_hex = snapshot.exemplars[p99_bucket].Hex();
      break;
    }

    showcase_ok = traced.has_showcase && within_1pct && crosses_nodes &&
                  has_hedge_leg && exemplar_ok;
    std::printf(
        "%s showcase trace=%s spans=%zu nodes=%zu hops=%zu\n"
        "      critical path %.0fns vs measured %.0fns (%s1%%)  hedge "
        "leg=%d  p99 exemplar=%s\n\n",
        showcase_ok ? "OK" : "FAIL",
        traced.has_showcase ? traced.showcase_trace.Hex().c_str() : "(none)",
        spans.size(), nodes.size(), path.size(),
        static_cast<double>(path_sum_ns), measured_ns,
        within_1pct ? "within " : "OUTSIDE ", has_hedge_leg ? 1 : 0,
        exemplar_ok ? exemplar_hex.c_str() : "(missing)");
    all_gates_passed = all_gates_passed && showcase_ok;

    // Per-hop critical path for the BENCH json (and the tier-1 smoke).
    results_json += "    \"showcase_trace\": {";
    char head[512];
    std::snprintf(
        head, sizeof head,
        "\"trace\": \"%s\", \"spans\": %zu, \"nodes\": %zu,\n      "
        "\"measured_ns\": %.0f, \"critical_path_ns\": %llu, "
        "\"within_1pct\": %s, \"hedged\": true, \"failed_over\": true,\n"
        "      \"p99_exemplar\": \"%s\",\n      \"critical_path\": [",
        traced.has_showcase ? traced.showcase_trace.Hex().c_str() : "",
        spans.size(), nodes.size(), measured_ns,
        static_cast<unsigned long long>(path_sum_ns),
        within_1pct ? "true" : "false", exemplar_hex.c_str());
    results_json += head;
    for (std::size_t s = 0; s < path.size(); ++s) {
      char hop[256];
      std::snprintf(hop, sizeof hop,
                    "%s\n        {\"name\": \"%s\", \"node\": \"%s\", "
                    "\"start_ns\": %llu, \"dur_ns\": %llu}",
                    s == 0 ? "" : ",", path[s].name, path[s].node,
                    static_cast<unsigned long long>(path[s].start_ns),
                    static_cast<unsigned long long>(path[s].dur_ns()));
      results_json += hop;
    }
    results_json += "]},\n";

    char fleet_metrics_entry[256];
    std::snprintf(fleet_metrics_entry, sizeof fleet_metrics_entry,
                  "    \"fleet_metrics\": {\"hosts_ok\": %zu, "
                  "\"scrape_bytes\": %llu, \"counters\": %zu, "
                  "\"histograms\": %zu},\n",
                  traced.scrape_hosts_ok,
                  static_cast<unsigned long long>(traced.scrape_bytes),
                  traced.fleet_metrics.counters.size(),
                  traced.fleet_metrics.histograms.size());
    results_json += fleet_metrics_entry;

    // REV_DIST_TRACE=<path> exports the raw showcase spans for
    // tools/trace2txt -d (the tier-1 stitched-trace smoke drives this).
    collector.ExportFromEnv();
    collector.Disable();
  }

  // Determinism gate: the same soak at 1 thread and at the sweep's thread
  // count must produce identical per-client outcomes and counters.
  bool deterministic = true;
  std::uint64_t checksum_serial = 0, checksum_threaded = 0;
  {
    bench::BenchRun::Phase phase("fleet.determinism");
    RunConfig config;
    config.replicas = 3;
    config.certs = std::min<std::size_t>(certs, 1000);
    config.clients = num_clients;
    config.ticks = std::min<std::size_t>(ticks, 12);
    config.queries_per_tick = qpt;
    config.seed = seed;
    config.threads = 1;
    const RunResult serial_run = RunSoak(config);
    config.threads = std::max(2u, threads);
    const RunResult threaded_run = RunSoak(config);
    checksum_serial = serial_run.outcome_checksum;
    checksum_threaded = threaded_run.outcome_checksum;
    deterministic = serial_run.outcome_checksum ==
                        threaded_run.outcome_checksum &&
                    serial_run.answered == threaded_run.answered &&
                    serial_run.failovers == threaded_run.failovers &&
                    serial_run.hedges == threaded_run.hedges &&
                    serial_run.wrong == threaded_run.wrong &&
                    serial_run.stale == threaded_run.stale &&
                    // The serialized SLO timeline is part of the contract:
                    // byte-identical alerts at any thread count.
                    serial_run.slo_json == threaded_run.slo_json;
  }
  std::printf("%s determinism threads 1 vs %u: checksum %016llX vs %016llX "
              "(slo timeline byte-compared)\n",
              deterministic ? "OK" : "FAIL", std::max(2u, threads),
              static_cast<unsigned long long>(checksum_serial),
              static_cast<unsigned long long>(checksum_threaded));
  all_gates_passed = all_gates_passed && deterministic;

  char tail[512];
  std::snprintf(tail, sizeof tail,
                "    \"seed\": %llu,\n    \"threads\": %u,\n"
                "    \"deterministic\": %s,\n    \"outcome_checksum\": "
                "\"%016llX\",\n    \"total_wrong_answers\": %s\n  }",
                static_cast<unsigned long long>(seed), threads,
                deterministic ? "true" : "false",
                static_cast<unsigned long long>(checksum_serial),
                all_gates_passed ? "0" : "-1");
  results_json += tail;
  run.SetResults(results_json);

  std::printf("%s bench_fleet overall\n",
              all_gates_passed ? "OK" : "FAIL");
  if (strict && !all_gates_passed) return 1;
  return 0;
}
