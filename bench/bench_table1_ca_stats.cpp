// Table 1: per-CA CRL counts, certificate totals, revocations, and the
// certificate-weighted average CRL size.
#include "bench_common.h"

using namespace rev;

int main() {
  bench::BenchRun run("table1_ca_stats");
  bench::PrintHeader(
      "Table 1 — CRLs, certificates, and average CRL size per CA",
      "GoDaddy 322 CRLs / 1.05M certs / 277.5k revoked / 1,184 KB avg; "
      "RapidSSL 5 / 626.8k / 2.2k / 34.5 KB; ... ; StartCom 17 / 236.8k / "
      "1.8k / 240.5 KB (one 22 MB CRL)");

  bench::World world = bench::World::Build(bench::ScaleFromEnv());
  bench::BenchRun::Phase analysis_phase("analysis");
  const auto samples =
      core::CollectCrlSizes(*world.crawler, *world.pipeline, *world.eco);
  const auto rows =
      core::ComputeTable1(samples, *world.pipeline, *world.crawler, *world.eco);

  core::TextTable table(
      {"CA", "CRLs", "certs", "revoked", "avg CRL size (KB)"});
  for (const core::CaStatsRow& row : rows) {
    if (row.total_certs < 10) continue;  // skip tiny tail CAs for readability
    table.AddRow({row.name, std::to_string(row.num_crls),
                  std::to_string(row.total_certs),
                  std::to_string(row.revoked_certs),
                  core::FormatDouble(row.avg_crl_size_kb, 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "shape checks vs paper Table 1:\n"
      "  - GoDaddy leads in certificates, revocations, and CRL count;\n"
      "  - RapidSSL has few CRLs and a tiny revoked fraction;\n"
      "  - GoDaddy / GlobalSign / StartCom carry outsized per-cert CRL\n"
      "    sizes relative to their revocation counts (skewed sharding /\n"
      "    hidden CRL populations).\n"
      "CRL counts are population-scaled (see DESIGN.md): at scale 1 they\n"
      "equal the paper's 322/5/30/3/27/37/32/26/17.\n");
  return 0;
}
