// Ablation (paper §7 + §9): how effective are pushed revocation lists in
// practice? Visits a population of revoked sites — some issued by a
// Google-crawled CA, some not — through Chrome with its CRLSet, with the
// network available and under the §2.3 blocking attacker, and compares
// against online-checking browsers.
#include "bench_common.h"
#include "browser/client.h"
#include "browser/profiles.h"
#include "crlset/generator.h"

using namespace rev;
using namespace rev::browser;

int main() {
  bench::PrintHeader(
      "Ablation — pushed revocation lists (CRLSet) vs online checking",
      "CRLSets cost nothing at page load and survive blocking attackers, "
      "but cover only a sliver of revocations; online checks cover all but "
      "soft-fail away under attack");

  constexpr std::int64_t kDay = util::kSecondsPerDay;
  const util::Timestamp now = util::MakeDate(2015, 3, 31);
  util::Rng rng(909);

  // Two issuing CAs: one followed by Google's crawler, one not.
  net::SimNet net;
  x509::CertPool roots;
  ca::CertificateAuthority::Options root_options;
  root_options.name = "PushedRoot";
  root_options.domain = "pushedroot.sim";
  auto root =
      ca::CertificateAuthority::CreateRoot(root_options, rng, now - 3000 * kDay);
  roots.Add(root->cert());
  root->RegisterEndpoints(&net);

  auto make_ca = [&](const char* name) {
    ca::CertificateAuthority::Options options;
    options.name = name;
    options.domain = std::string(name) + ".sim";
    for (char& ch : options.domain)
      if (ch >= 'A' && ch <= 'Z') ch = static_cast<char>(ch - 'A' + 'a');
    auto ca = root->CreateIntermediate(options, rng, now - 1200 * kDay);
    ca->RegisterEndpoints(&net);
    return ca;
  };
  auto crawled_ca = make_ca("CrawledCA");
  auto uncrawled_ca = make_ca("UncrawledCA");

  // 200 revoked sites, half per CA.
  struct Site {
    x509::CertPtr leaf;
    ca::CertificateAuthority* issuer;
  };
  std::vector<Site> sites;
  for (int i = 0; i < 200; ++i) {
    ca::CertificateAuthority* issuer =
        (i % 2 == 0) ? crawled_ca.get() : uncrawled_ca.get();
    ca::CertificateAuthority::IssueOptions issue;
    issue.common_name = "revoked" + std::to_string(i) + ".sim";
    issue.not_before = now - 100 * kDay;
    const x509::CertPtr leaf = issuer->Issue(issue, rng);
    issuer->Revoke(leaf->tbs.serial, now - 20 * kDay,
                   x509::ReasonCode::kKeyCompromise);
    sites.push_back({leaf, issuer});
  }

  // Google's CRLSet: only the crawled CA contributes.
  std::vector<crlset::CrlSource> sources;
  const crl::Crl& crawled_crl = crawled_ca->GetCrl(0, now);
  sources.push_back({crawled_ca->cert()->SubjectSpkiSha256(), &crawled_crl, true});
  const crlset::CrlSet crlset =
      crlset::GenerateCrlSet(sources, crlset::GeneratorConfig{}, 1);
  std::printf("CRLSet: %zu entries covering the crawled CA only\n\n",
              crlset.NumEntries());

  struct Config {
    const char* label;
    const char* browser;
    const char* os;
    bool with_crlset;
    bool attacker;
  };
  const Config kConfigs[] = {
      {"Chrome 44 (non-EV), CRLSet", "Chrome 44", "Windows", true, false},
      {"Chrome 44 (non-EV), CRLSet, attacker", "Chrome 44", "Windows", true, true},
      {"Firefox 40 (OCSP)", "Firefox 40", "Windows", false, false},
      {"Firefox 40 (OCSP), attacker", "Firefox 40", "Windows", false, true},
      {"IE 11 (full checks)", "IE 11", "Windows 10", false, false},
      {"IE 11 (full checks), attacker", "IE 11", "Windows 10", false, true},
  };

  core::TextTable table({"client", "revoked sites rejected", "net fetches"});
  for (const Config& config : kConfigs) {
    if (config.attacker) {
      for (auto* ca : {crawled_ca.get(), uncrawled_ca.get()}) {
        net.SetUnresponsive(ca->CrlHost(), true);
        net.SetUnresponsive(ca->OcspHost(), true);
      }
    }
    int rejected = 0;
    std::uint64_t fetches = 0;
    for (const Site& site : sites) {
      tls::TlsServer::Config server_config;
      server_config.chain_der = {site.leaf->der, site.issuer->cert()->der};
      tls::TlsServer server(server_config);
      Client client(FindProfile(config.browser, config.os)->policy, &net, roots);
      if (config.with_crlset) client.SetCrlSet(&crlset);
      const VisitOutcome outcome = client.Visit(server, now);
      if (outcome.rejected()) ++rejected;
      fetches += static_cast<std::uint64_t>(outcome.crl_fetches + outcome.ocsp_fetches);
    }
    if (config.attacker) {
      for (auto* ca : {crawled_ca.get(), uncrawled_ca.get()}) {
        net.SetUnresponsive(ca->CrlHost(), false);
        net.SetUnresponsive(ca->OcspHost(), false);
      }
    }
    table.AddRow({config.label,
                  std::to_string(rejected) + "/" + std::to_string(sites.size()),
                  std::to_string(fetches)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "reading: the CRLSet catches exactly the crawled half, free and\n"
      "attacker-proof; online checkers catch everything until the attacker\n"
      "shows up, then soft-failers catch nothing. The paper's conclusion —\n"
      "pushed lists are sound but need far better coverage (§7.4) — falls\n"
      "out directly.\n");
  return 0;
}
