// Fig. 3 + §4.3: OCSP Stapling support — the repeat-connection curve and
// the server/certificate adoption statistics.
#include "bench_common.h"

using namespace rev;

int main() {
  bench::BenchRun run("fig3_stapling_repeats");
  bench::PrintHeader(
      "Fig. 3 / §4.3 — OCSP Stapling adoption",
      "2.60% of servers staple; 5.19% of certs served by >=1 stapling "
      "server, 3.09% by all; EV: 3.15% / 1.95%; a single connection "
      "underestimates stapling support by ~18% (Fig. 3)");

  bench::World world = bench::World::Build(bench::ScaleFromEnv(),
                                           /*run_scans=*/false,
                                           /*run_crawl=*/false);
  bench::BenchRun::Phase analysis_phase("analysis");
  const util::Timestamp scan_time = util::MakeDate(2015, 3, 28);

  // §4.3 statistics from one handshake scan.
  const scan::HandshakeScanSnapshot snap =
      scan::RunHandshakeScan(world.eco->internet(), scan_time);
  const core::StaplingStats stats = core::ComputeStaplingStats(snap);
  auto pct = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0 : 100.0 * static_cast<double>(num) / static_cast<double>(den);
  };

  core::TextTable table({"metric", "measured", "paper"});
  table.AddRow({"servers with fresh certs", std::to_string(stats.servers_total),
                "12,978,883"});
  table.AddRow({"servers sending staples",
                std::to_string(stats.servers_stapled) + " (" +
                    core::FormatDouble(stats.ServerFraction() * 100, 2) + "%)",
                "337,856 (2.60%)"});
  table.AddRow({"fresh certs advertised", std::to_string(stats.fresh_certs),
                "2,298,778"});
  table.AddRow({"certs, >=1 stapling server",
                core::FormatDouble(pct(stats.certs_any_staple, stats.fresh_certs), 2) + "%",
                "5.19%"});
  table.AddRow({"certs, all servers staple",
                core::FormatDouble(pct(stats.certs_all_staple, stats.fresh_certs), 2) + "%",
                "3.09%"});
  table.AddRow({"EV certs, >=1 stapling server",
                core::FormatDouble(pct(stats.ev_certs_any_staple, stats.ev_fresh_certs), 2) + "%",
                "3.15%"});
  table.AddRow({"EV certs, all servers staple",
                core::FormatDouble(pct(stats.ev_certs_all_staple, stats.ev_fresh_certs), 2) + "%",
                "1.95%"});
  std::printf("%s\n", table.Render().c_str());

  // Fig. 3: repeat-connection curve over 20,000 random servers, run after
  // the scan-warmed staple caches have expired (OCSP validity is 4 days).
  const std::vector<double> curve = core::StaplingRepeatCurve(
      world.eco->internet(), scan_time + 5 * util::kSecondsPerDay, 10, 20'000,
      4242);
  core::TextTable fig({"requests", "fraction observed to staple"});
  for (std::size_t i = 0; i < curve.size(); ++i)
    fig.AddRow({std::to_string(i + 1), core::FormatDouble(curve[i], 4)});
  std::printf("%s\n", fig.Render().c_str());
  std::printf("shape check: single connection observes %.1f%% of eventual\n"
              "staplers (paper: ~82%%, i.e. an ~18%% underestimate).\n",
              100 * curve.front());
  return 0;
}
