// Ablation (paper §8, [46] Topalovic et al.): short-lived certificates —
// revocation-by-nonrenewal. Compares a conventional 1-year certificate
// with CRL/OCSP checking against 4-day certificates with no revocation
// checking at all: client-side cost per connection and the window of
// vulnerability after a key compromise.
#include "bench_common.h"
#include "crl/crl.h"
#include "ocsp/ocsp.h"

using namespace rev;

int main() {
  bench::PrintHeader(
      "Ablation — short-lived certificates vs revocation checking",
      "short-lived certs make revoking 'as easy as not renewing', trading "
      "revocation infrastructure for reissuance churn (related work [46])");

  constexpr std::int64_t kDay = util::kSecondsPerDay;
  const util::Timestamp now = util::MakeDate(2015, 1, 15);
  util::Rng rng(808);

  ca::CertificateAuthority::Options options;
  options.name = "ShortCA";
  options.domain = "shortca.sim";
  auto ca = ca::CertificateAuthority::CreateRoot(options, rng, now - 1000 * kDay);
  ca->AddSyntheticRevocations(20'000, rng, now - 200 * kDay, now - kDay,
                              now + 30 * kDay, now + 400 * kDay,
                              x509::ReasonCode::kNoReasonCode);
  net::SimNet net;
  ca->RegisterEndpoints(&net);

  // Conventional cert + CRL check.
  ca::CertificateAuthority::IssueOptions issue;
  issue.common_name = "conventional.sim";
  issue.not_before = now - 100 * kDay;
  issue.lifetime_seconds = 365 * kDay;
  const x509::CertPtr conventional = ca->Issue(issue, rng);
  const net::FetchResult crl_fetch = net.Get(conventional->tbs.crl_urls[0], now);

  // Conventional cert + OCSP check.
  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(*ca->cert(), conventional->tbs.serial)};
  const net::FetchResult ocsp_fetch =
      net.Post(conventional->tbs.ocsp_urls[0], ocsp::EncodeOcspRequest(request), now);

  // Short-lived cert: no revocation pointers, nothing to fetch.
  ca::CertificateAuthority::IssueOptions short_issue;
  short_issue.common_name = "shortlived.sim";
  short_issue.not_before = now - kDay;
  short_issue.lifetime_seconds = 4 * kDay;
  short_issue.include_crl_url = false;
  short_issue.include_ocsp_url = false;
  const x509::CertPtr shortlived = ca->Issue(short_issue, rng);

  core::TextTable table({"scheme", "client fetch", "client latency (ms)",
                         "reissues/yr", "vuln. window after compromise"});
  table.AddRow({"1y cert + CRL",
                util::HumanBytes(static_cast<double>(crl_fetch.response.body.size())),
                core::FormatDouble(crl_fetch.elapsed_seconds * 1000, 1), "1",
                "<= CRL validity (1 day)"});
  table.AddRow({"1y cert + OCSP",
                util::HumanBytes(static_cast<double>(ocsp_fetch.response.body.size())),
                core::FormatDouble(ocsp_fetch.elapsed_seconds * 1000, 1), "1",
                "<= OCSP validity (4 days)"});
  table.AddRow({"1y cert, soft-fail blocked", "0 B", "0.0", "1",
                "until expiry (up to 365 days)"});
  table.AddRow({"4-day cert, no checking", "0 B", "0.0", "~91",
                "<= 4 days, unconditionally"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("certificate sizes: conventional %zu B vs short-lived %zu B\n",
              conventional->der.size(), shortlived->der.size());
  std::printf(
      "\nreading: short-lived certs cap the compromise window at the cert\n"
      "lifetime with zero client cost — equivalent to OCSP's freshness\n"
      "without the fetch — but multiply CA issuance ~91x, and a soft-fail\n"
      "client with blocked revocation endpoints is strictly worse than\n"
      "either (§2.3).\n");
  return 0;
}
