// Ablation (paper §2.3): soft-fail vs hard-fail under an attacker who can
// block the victim's access to revocation endpoints. Soft-failing browsers
// can have their revocation checking "turned off" entirely; hard-failing
// costs availability when endpoints are merely flaky.
#include "bench_common.h"
#include "browser/profiles.h"
#include "browser/testsuite.h"

using namespace rev;
using namespace rev::browser;

namespace {

// Visits a revoked site through a policy, with and without the attacker.
struct AttackResult {
  bool caught_without_attacker = false;
  bool caught_with_attacker = false;
  bool benign_unavailable_accepted = false;
};

AttackResult Evaluate(const Policy& policy, bool ev, util::Timestamp now) {
  AttackResult result;
  TestCase revoked;
  revoked.id = 700;
  revoked.num_intermediates = 1;
  revoked.revoked_element = 0;
  revoked.protocol = RevProtocol::kBoth;
  revoked.ev = ev;
  result.caught_without_attacker = RunCase(revoked, policy, 55, now).rejected();

  // Attacker blocks the victim's path to all revocation endpoints:
  // identical to the suite's unavailable-everything configuration.
  TestCase attacked = revoked;
  attacked.id = 701;
  attacked.failure = FailureMode::kTimeout;
  attacked.failure_element = 0;
  result.caught_with_attacker = RunCase(attacked, policy, 55, now).rejected();

  // Benign flakiness: same network state, but nothing is revoked.
  TestCase flaky;
  flaky.id = 702;
  flaky.num_intermediates = 1;
  flaky.protocol = RevProtocol::kBoth;
  flaky.ev = ev;
  flaky.failure = FailureMode::kTimeout;
  flaky.failure_element = 0;
  result.benign_unavailable_accepted = RunCase(flaky, policy, 55, now).accepted();
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — soft-fail vs hard-fail under a blocking attacker (§2.3)",
      "any attacker who can block revocation endpoints effectively turns "
      "off revocation checking for soft-failing browsers");

  const util::Timestamp now = util::MakeDate(2015, 3, 31);

  core::TextTable table({"policy", "EV", "catches revoked", "catches under attack",
                         "usable when flaky"});
  const struct {
    const char* browser;
    const char* os;
  } kProfiles[] = {{"Chrome 44", "Windows"}, {"Firefox 40", "Windows"},
                   {"Opera 31.0", "Linux"},  {"Safari 8", "OS X"},
                   {"IE 9", "Windows 7"},    {"IE 11", "Windows 10"},
                   {"Mobile Safari", "iOS 8"}};
  for (const auto& p : kProfiles) {
    const Policy& policy = FindProfile(p.browser, p.os)->policy;
    for (bool ev : {false, true}) {
      const AttackResult r = Evaluate(policy, ev, now);
      table.AddRow({policy.DisplayName(), ev ? "yes" : "no",
                    r.caught_without_attacker ? "yes" : "NO",
                    r.caught_with_attacker ? "yes" : "NO",
                    r.benign_unavailable_accepted ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "reading: every browser that catches the revocation in peacetime and\n"
      "soft-fails loses it under attack — the security/availability trade\n"
      "the paper describes. Only hard-failing rows (e.g. IE 11 at the leaf)\n"
      "keep 'catches under attack' = yes, at the price of rejecting flaky\n"
      "but benign sites.\n");
  return 0;
}
