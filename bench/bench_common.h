// Shared scaffolding for the figure/table benches: builds the calibrated
// ecosystem, runs the scan and crawl phases, and provides uniform report
// headers. Every bench accepts the REV_SCALE environment variable
// (default 0.002) to trade fidelity for runtime; structural results are
// stable across scales, absolute counts shrink linearly.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ca_audit.h"
#include "core/crawler.h"
#include "core/crlset_audit.h"
#include "core/ecosystem.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "core/stapling_audit.h"
#include "core/timeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scan/scanner.h"

namespace rev::bench {

inline double ScaleFromEnv() {
  const char* env = std::getenv("REV_SCALE");
  if (env != nullptr) {
    const double scale = std::atof(env);
    if (scale > 0) return scale;
  }
  return 0.002;
}

// REV_THREADS sizes the Finalize()/CrawlAll() fan-out: 0 (default) uses
// hardware concurrency, 1 forces the exact serial path (docs/parallelism.md).
inline unsigned ThreadsFromEnv() {
  const char* env = std::getenv("REV_THREADS");
  if (env != nullptr) {
    const int threads = std::atoi(env);
    if (threads > 0) return static_cast<unsigned>(threads);
  }
  return 0;
}

inline void PrintHeader(const char* experiment, const char* paper_result) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_result);
  std::printf("==============================================================\n\n");
}

// Uniform bench reporting (docs/observability.md): declare one BenchRun at
// the top of main and every bench emits the same BENCH_<name>.json shape —
// wall-time phases, the bench's own results payload, and a snapshot of the
// global metrics registry — and honors REV_TRACE=<file> by exporting the
// Chrome trace at exit. Phases are recorded by the RAII Phase below (World::
// Build opens its own), so a bench only adds phases for its analysis steps.
class BenchRun {
 public:
  explicit BenchRun(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    current_ = this;
  }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  ~BenchRun() {
    if (current_ == this) current_ = nullptr;
    WriteJson();
    obs::TraceCollector::Global().ExportFromEnv();
  }

  static BenchRun* Current() { return current_; }

  // Bench-specific payload, inserted verbatim as the "results" value. Must
  // already be valid JSON (object or array).
  void SetResults(std::string json) { results_ = std::move(json); }

  void RecordPhase(const char* name, double seconds) {
    phases_.emplace_back(name, seconds);
  }

  const std::string& json_path() const { return json_path_; }

  // RAII phase: wall time into the enclosing BenchRun (if any) plus an
  // obs::Span so the phase shows up on the REV_TRACE timeline. `name` must
  // be a string literal.
  class Phase {
   public:
    explicit Phase(const char* name)
        : name_(name), span_(name), start_(std::chrono::steady_clock::now()) {}

    Phase(const Phase&) = delete;
    Phase& operator=(const Phase&) = delete;

    ~Phase() {
      if (BenchRun* run = BenchRun::Current()) {
        run->RecordPhase(
            name_, std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
      }
    }

   private:
    const char* name_;
    obs::Span span_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  void WriteJson() {
    json_path_ = "BENCH_" + name_ + ".json";
    FILE* json = std::fopen(json_path_.c_str(), "w");
    if (json == nullptr) return;
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    std::fprintf(json, "{\n  \"bench\": \"%s\",\n", name_.c_str());
    std::fprintf(json, "  \"wall_seconds\": %.6f,\n", wall);
    std::fprintf(json, "  \"phases\": [");
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      std::fprintf(json, "%s\n    {\"name\": \"%s\", \"seconds\": %.6f}",
                   i == 0 ? "" : ",", phases_[i].first,
                   phases_[i].second);
    }
    std::fprintf(json, "%s],\n", phases_.empty() ? "" : "\n  ");
    std::fprintf(json, "  \"results\": %s,\n",
                 results_.empty() ? "null" : results_.c_str());
    std::fprintf(json, "  \"metrics\": %s\n}\n",
                 obs::MetricsRegistry::Global().DumpJson().c_str());
    std::fclose(json);
    std::printf("wrote %s\n", json_path_.c_str());
  }

  inline static BenchRun* current_ = nullptr;

  std::string name_;
  std::string json_path_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<const char*, double>> phases_;
  std::string results_;
};

// The full measurement world: ecosystem + weekly scans + daily CRL crawl.
struct World {
  core::EcosystemConfig config;
  std::unique_ptr<core::Ecosystem> eco;
  std::unique_ptr<core::Pipeline> pipeline;
  std::unique_ptr<core::RevocationCrawler> crawler;
  int num_scans = 0;
  int num_crawl_days = 0;

  // `crawl_step_days` > 1 trades Fig. 9/10 granularity for speed in benches
  // that only need final state.
  static World Build(double scale, bool run_scans = true,
                     bool run_crawl = true, int crawl_step_days = 1) {
    World world;
    world.config.scale = scale;
    {
      BenchRun::Phase phase("world.build_ecosystem");
      std::fprintf(stderr, "[world] building ecosystem at scale %.4f ...\n",
                   scale);
      world.eco = core::Ecosystem::Build(world.config);
    }
    const core::EcosystemConfig& c = world.eco->config();
    std::fprintf(stderr, "[world] %zu certs, %zu servers, %zu CAs\n",
                 world.eco->total_issued(), world.eco->internet().size(),
                 world.eco->cas().size());

    const unsigned threads = ThreadsFromEnv();
    world.pipeline =
        std::make_unique<core::Pipeline>(world.eco->roots(), threads);
    if (run_scans) {
      BenchRun::Phase phase("world.scans");
      for (util::Timestamp t = c.study_start; t <= c.study_end;
           t += 7 * util::kSecondsPerDay) {
        // Streaming ingest: observations flow straight into the columnar
        // corpus; the snapshot is never resident.
        world.pipeline->BeginScan(t);
        scan::StreamCertScan(world.eco->internet(), t,
                             [&](const scan::CertObservation& obs) {
                               world.pipeline->Observe(obs.chain);
                             });
        world.pipeline->EndScan();
        ++world.num_scans;
      }
      world.pipeline->Finalize();
      std::fprintf(stderr,
                   "[world] %d scans -> Leaf Set %zu (finalize %.3fs: "
                   "intermediates %.3fs + verify %.3fs)\n",
                   world.num_scans, world.pipeline->LeafSet().size(),
                   world.pipeline->finalize_wall_seconds(),
                   world.pipeline->intermediate_wall_seconds(),
                   world.pipeline->verify_wall_seconds());
    }

    world.crawler =
        std::make_unique<core::RevocationCrawler>(&world.eco->net(), threads);
    if (run_crawl) {
      BenchRun::Phase phase("world.crawl");
      world.crawler->CollectUrls(*world.pipeline);
      for (util::Timestamp t = c.crawl_start; t <= c.study_end;
           t += crawl_step_days * util::kSecondsPerDay) {
        world.crawler->CrawlAll(t);
        ++world.num_crawl_days;
      }
      std::fprintf(stderr,
                   "[world] crawled %zu CRLs over %d visits, %zu revocations "
                   "(wall %.3fs)\n",
                   world.crawler->crawled().size(), world.num_crawl_days,
                   world.crawler->total_revocations(),
                   world.crawler->crawl_wall_seconds());
    }
    return world;
  }
};

// CRLSet generator configuration matched to the documented pipeline, with
// the per-CRL entry cap following the hidden-population scaling (DESIGN.md).
inline crlset::GeneratorConfig ScaledCrlsetConfig(double scale) {
  crlset::GeneratorConfig config;
  config.max_bytes = 250 * 1024;
  const double hidden_scale = std::min(1.0, scale * 10);
  config.max_entries_per_crl = static_cast<std::size_t>(10'000 * hidden_scale);
  if (config.max_entries_per_crl < 50) config.max_entries_per_crl = 50;
  config.filter_reason_codes = true;
  return config;
}

}  // namespace rev::bench
