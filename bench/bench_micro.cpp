// Microbenchmarks for the library's hot kernels (google-benchmark): hashing,
// signing, DER encode/parse for certificates and CRLs, revocation lookups,
// and the full browser-visit loop.
#include <benchmark/benchmark.h>

#include "browser/profiles.h"
#include "browser/testsuite.h"
#include "ca/ca.h"
#include "crl/crl.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "ocsp/ocsp.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "x509/certificate.h"

using namespace rev;

namespace {

constexpr util::Timestamp kNow = 1'427'760'000;
constexpr std::int64_t kDay = util::kSecondsPerDay;

void BM_Sha256_1KB(benchmark::State& state) {
  Bytes data(1024, 0xAB);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

void BM_SimSign(benchmark::State& state) {
  const crypto::KeyPair key = crypto::SimKeyFromLabel("bench");
  Bytes message(256, 0x42);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::Sign(key, message));
}
BENCHMARK(BM_SimSign);

void BM_RsaSign512(benchmark::State& state) {
  util::Rng rng(1);
  const crypto::RsaPrivateKey key = crypto::RsaGenerateKey(rng, 512);
  Bytes message(256, 0x42);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::RsaSign(key, message));
}
BENCHMARK(BM_RsaSign512);

void BM_RsaVerify512(benchmark::State& state) {
  util::Rng rng(2);
  const crypto::RsaPrivateKey key = crypto::RsaGenerateKey(rng, 512);
  Bytes message(256, 0x42);
  const Bytes signature = crypto::RsaSign(key, message);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::RsaVerify(key.pub, message, signature));
}
BENCHMARK(BM_RsaVerify512);

x509::Certificate BenchCert() {
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial(16, 0x5A);
  tbs.issuer = x509::Name::Make("Bench CA", "Bench");
  tbs.subject = x509::Name::FromCommonName("www.bench.sim");
  tbs.not_before = kNow - 30 * kDay;
  tbs.not_after = kNow + 335 * kDay;
  tbs.public_key = crypto::SimKeyFromLabel("leaf").Public();
  tbs.crl_urls = {"http://crl.bench.sim/crl0.crl"};
  tbs.ocsp_urls = {"http://ocsp.bench.sim/"};
  tbs.dns_names = {"www.bench.sim"};
  tbs.key_usage = x509::kKeyUsageDigitalSignature;
  return x509::SignCertificate(tbs, crypto::SimKeyFromLabel("ca"));
}

void BM_CertificateSign(benchmark::State& state) {
  const crypto::KeyPair key = crypto::SimKeyFromLabel("ca");
  x509::TbsCertificate tbs = BenchCert().tbs;
  for (auto _ : state)
    benchmark::DoNotOptimize(x509::SignCertificate(tbs, key));
}
BENCHMARK(BM_CertificateSign);

void BM_CertificateParse(benchmark::State& state) {
  const Bytes der = BenchCert().der;
  for (auto _ : state)
    benchmark::DoNotOptimize(x509::ParseCertificate(der));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(der.size()));
}
BENCHMARK(BM_CertificateParse);

crl::Crl BenchCrl(std::size_t entries) {
  util::Rng rng(3);
  crl::TbsCrl tbs;
  tbs.issuer = x509::Name::Make("Bench CA", "Bench");
  tbs.this_update = kNow;
  tbs.next_update = kNow + kDay;
  for (std::size_t i = 0; i < entries; ++i) {
    x509::Serial serial(16);
    rng.Fill(serial.data(), serial.size());
    tbs.entries.push_back(crl::CrlEntry{std::move(serial), kNow - 1000,
                                        x509::ReasonCode::kNoReasonCode});
  }
  return crl::SignCrl(tbs, crypto::SimKeyFromLabel("ca"));
}

void BM_CrlEncode(benchmark::State& state) {
  const crl::Crl crl = BenchCrl(static_cast<std::size_t>(state.range(0)));
  const crypto::KeyPair key = crypto::SimKeyFromLabel("ca");
  for (auto _ : state)
    benchmark::DoNotOptimize(crl::SignCrl(crl.tbs, key));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CrlEncode)->Arg(100)->Arg(10'000);

void BM_CrlParse(benchmark::State& state) {
  const Bytes der = BenchCrl(static_cast<std::size_t>(state.range(0))).der;
  for (auto _ : state)
    benchmark::DoNotOptimize(crl::ParseCrl(der));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CrlParse)->Arg(100)->Arg(10'000);

void BM_CrlIndexLookup(benchmark::State& state) {
  const crl::Crl crl = BenchCrl(10'000);
  const crl::CrlIndex index(crl);
  const x509::Serial& present = crl.tbs.entries[5'000].serial;
  for (auto _ : state)
    benchmark::DoNotOptimize(index.IsRevoked(present));
}
BENCHMARK(BM_CrlIndexLookup);

void BM_OcspRoundTrip(benchmark::State& state) {
  const x509::Certificate issuer = BenchCert();
  ocsp::SingleResponse single;
  single.cert_id = ocsp::MakeCertId(issuer, x509::Serial{0x42});
  single.status = ocsp::CertStatus::kGood;
  single.this_update = kNow;
  single.next_update = kNow + 4 * kDay;
  const crypto::KeyPair key = crypto::SimKeyFromLabel("ca");
  for (auto _ : state) {
    const ocsp::OcspResponse response = ocsp::SignOcspResponse(single, kNow, key);
    benchmark::DoNotOptimize(ocsp::ParseOcspResponse(response.der));
  }
}
BENCHMARK(BM_OcspRoundTrip);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
  // The unit of Finalize()/CrawlAll() fan-out: dispatch 4096 CRL-parse-sized
  // work items through a pool of `range(0)` workers. Compare against the
  // /1 row (inline serial path) for dispatch overhead and speedup.
  util::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  const Bytes der = BenchCrl(100).der;
  for (auto _ : state) {
    pool.ParallelFor(4096, [&](std::size_t) {
      benchmark::DoNotOptimize(crl::ParseCrl(der));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(4)->Arg(8);

void BM_BrowserVisit(benchmark::State& state) {
  // Full provision + visit of one test case (the unit of the 244-case
  // suite); dominated by the per-test PKI setup.
  browser::TestCase test;
  test.num_intermediates = 1;
  test.protocol = browser::RevProtocol::kBoth;
  const browser::Policy& policy =
      browser::FindProfile("IE 11", "Windows 10")->policy;
  for (auto _ : state)
    benchmark::DoNotOptimize(browser::RunCase(test, policy, 9, kNow));
}
BENCHMARK(BM_BrowserVisit);

}  // namespace

BENCHMARK_MAIN();
