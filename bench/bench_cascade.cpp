// End-to-end cascade distribution bench (ROADMAP item 3): builds the
// measurement world, replays its crawler revocation DB into daily
// Publisher builds served through a serve::Frontend route table, and runs
// a Fleet of >=10k simulated clients on heterogeneous cadences pulling
// deltas over SimNet while a FaultPlan storm batters the distribution
// host. Reports aggregate bandwidth (delta channel vs naive
// snapshot-every-poll), client staleness CDFs, vulnerability-window
// distributions, and the effective-window shrinkage against the CRLSet
// baseline of Fig. 7/10 — with every applied update sample-verified
// against publisher ground truth (wrong answers must be zero).
//
// Knobs: REV_SCALE (world size), REV_CASCADE_CLIENTS (default 12000),
// REV_CASCADE_DAYS (default 12), REV_SEED.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cascade/cascade.h"
#include "cascade/fleet.h"
#include "cascade/publisher.h"
#include "net/fault.h"
#include "net/retry.h"
#include "net/simnet.h"
#include "obs/distrace.h"
#include "obs/slo.h"
#include "serve/frontend.h"
#include "util/stats.h"
#include "util/time.h"

namespace rev {
namespace {

std::size_t SizeFromEnv(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

std::uint64_t SeedFromEnv() {
  const char* env = std::getenv("REV_SEED");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 42;
}

// One crawler revocation mapped into cascade-key space.
struct Replayed {
  util::Timestamp first_seen = 0;
  util::Timestamp expiry = 0;  // not_after of the revoked cert
  Bytes key;
};

double Days(double seconds) { return seconds / util::kSecondsPerDay; }

std::string CdfJson(const util::Distribution& d, std::size_t points) {
  std::string out = "[";
  for (const auto& [value, fraction] : d.CdfSeries(points)) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%s[%.1f, %.4f]",
                  out.size() > 1 ? ", " : "", value, fraction);
    out += buffer;
  }
  out += "]";
  return out;
}

}  // namespace

int Main() {
  bench::BenchRun run("cascade");
  const double scale = bench::ScaleFromEnv();
  const std::uint64_t seed = SeedFromEnv();
  const std::size_t num_clients = SizeFromEnv("REV_CASCADE_CLIENTS", 12'000);
  const std::size_t num_days = SizeFromEnv("REV_CASCADE_DAYS", 12);

  bench::PrintHeader(
      "cascade distribution: publisher + >=10k-client fleet under a storm",
      "CRLite-style cascades cover 100% of known revocations in ~10x less "
      "space than CRLs; deltas make daily updates cheap (Fig. 11 context)");

  bench::World world = bench::World::Build(scale);
  const core::EcosystemConfig& config = world.eco->config();

  // ---- universe + revocation replay from the crawler DB ----------------
  // Universe = every certificate the measurement pipeline ever observed;
  // the cascade is exact against exactly this set. Crawler revocations
  // outside it (the hidden population: CRL entries for certs no scan ever
  // saw) cannot be cascade members by construction and are excluded.
  auto universe = std::make_shared<std::vector<Bytes>>();
  std::map<Bytes, util::Timestamp> expiry_by_key;
  const core::CertCorpus& corpus = world.pipeline->corpus();
  for (core::CertCorpus::Row row = 0; row < corpus.size(); ++row) {
    Bytes key = cascade::CertKey(corpus.name_der(corpus.issuer_id(row)),
                                 corpus.serial(row));
    expiry_by_key.emplace(key, corpus.not_after(row));
    universe->push_back(std::move(key));
  }
  std::sort(universe->begin(), universe->end());
  universe->erase(std::unique(universe->begin(), universe->end()),
                  universe->end());
  const auto shared_universe =
      std::shared_ptr<const std::vector<Bytes>>(universe);

  std::vector<Replayed> replay;
  std::size_t hidden_revocations = 0;
  for (const auto& [id, info] : world.crawler->revocations()) {
    if (info.first_seen_in_crl == 0) continue;
    Bytes key = cascade::CertKey(id.first, id.second);
    const auto expiry = expiry_by_key.find(key);
    if (expiry == expiry_by_key.end()) {
      ++hidden_revocations;  // revoked but never scanned: outside the universe
      continue;
    }
    replay.push_back(Replayed{info.first_seen_in_crl, expiry->second,
                              std::move(key)});
  }
  std::sort(replay.begin(), replay.end(),
            [](const Replayed& a, const Replayed& b) {
              return std::tie(a.first_seen, a.key) <
                     std::tie(b.first_seen, b.key);
            });
  std::printf("universe: %zu certs; crawler revocations in-universe %zu, "
              "hidden %zu\n\n",
              shared_universe->size(), replay.size(), hidden_revocations);

  // ---- publisher behind a serve::Frontend on a stormy SimNet -----------
  cascade::PublisherOptions publisher_options;
  publisher_options.max_delta_history = num_days + 2;
  // Deltas serve while not larger than the snapshot itself. At paper scale
  // snapshots are hundreds of KB and the default 0.5 fraction is already
  // generous; at bench scale the snapshot is a few KB, so 1.0 keeps the
  // delta channel exercised without ever costing more than a snapshot.
  publisher_options.snapshot_fallback_fraction = 1.0;
  publisher_options.cascade.threads = bench::ThreadsFromEnv();
  cascade::Publisher publisher(publisher_options);

  serve::FrontendOptions frontend_options;
  frontend_options.num_shards = 4;
  serve::Frontend frontend(frontend_options);
  publisher.ServeThrough(frontend);

  net::SimNet dist_net;
  dist_net.AddHost("cascade.dist.sim",
                   [&frontend](const net::HttpRequest& request,
                               util::Timestamp now) {
                     return frontend.HandleHttp(request, now);
                   });

  const util::Timestamp day0 =
      config.study_end -
      static_cast<util::Timestamp>(num_days - 1) * util::kSecondsPerDay;

  net::FaultPlan storm(seed);
  {
    // Background flakiness for the whole run...
    net::FaultRule rule;
    rule.target = "cascade.dist.sim";
    rule.kind = net::FaultKind::kCorrupt;
    rule.probability = 0.08;
    storm.AddRule(rule);
    rule.kind = net::FaultKind::kHttpError;
    rule.http_status = 503;
    rule.retry_after = 30;
    rule.probability = 0.05;
    storm.AddRule(rule);
    // ...plus a day-long timeout storm mid-run.
    rule.kind = net::FaultKind::kTimeout;
    rule.probability = 0.5;
    rule.start = day0 + static_cast<util::Timestamp>(num_days / 2) *
                            util::kSecondsPerDay;
    rule.end = rule.start + util::kSecondsPerDay;
    storm.AddRule(rule);
  }
  dist_net.SetFaultPlan(&storm);

  cascade::FleetOptions fleet_options;
  fleet_options.num_clients = num_clients;
  fleet_options.seed = seed;
  cascade::Fleet fleet(&dist_net, &publisher, fleet_options);

  // ---- replay: one publish per day, fleet polls in between -------------
  // Per-day poll outcomes feed the burn-rate engine: one SLO window per
  // simulated day, so the mid-run timeout storm must page and the
  // background-flakiness days must stay quiet.
  obs::SloMonitor slo;
  slo.AddObjective({.name = "poll_success",
                    .objective = 0.99,
                    .window_seconds = util::kSecondsPerDay,
                    .short_windows = 1,
                    .long_windows = 2,
                    .burn_threshold = 4.0});
  const util::Timestamp storm_day_start =
      day0 +
      static_cast<util::Timestamp>(num_days / 2) * util::kSecondsPerDay;
  std::size_t snapshot_bytes_last = 0;
  std::size_t levels_last = 0;
  std::uint64_t delta_bytes_total = 0;
  std::size_t revoked_final = 0;
  {
    bench::BenchRun::Phase phase("cascade.replay");
    fleet.StepTo(day0);  // primes per-client poll phases
    std::size_t next_replay = 0;
    std::vector<Bytes> revoked;
    for (std::size_t day = 0; day < num_days; ++day) {
      const util::Timestamp at =
          day0 + static_cast<util::Timestamp>(day) * util::kSecondsPerDay;
      while (next_replay < replay.size() &&
             replay[next_replay].first_seen <= at)
        revoked.push_back(replay[next_replay++].key);
      const cascade::PublishStats stats =
          publisher.Publish(shared_universe, revoked, at);
      snapshot_bytes_last = stats.snapshot_bytes;
      levels_last = stats.levels;
      delta_bytes_total += stats.delta_bytes;
      revoked_final = stats.revoked;
      std::printf("day %2zu: revoked %6zu (+%zu/-%zu)  levels %zu  "
                  "snapshot %s  delta %s\n",
                  day, stats.revoked, stats.added, stats.removed, stats.levels,
                  util::HumanBytes(static_cast<double>(stats.snapshot_bytes))
                      .c_str(),
                  util::HumanBytes(static_cast<double>(stats.delta_bytes))
                      .c_str());
      const cascade::Fleet::Totals before = fleet.totals();
      fleet.StepTo(at + util::kSecondsPerDay);
      const cascade::Fleet::Totals& after = fleet.totals();
      const std::uint64_t day_polls = after.polls - before.polls;
      const std::uint64_t day_failed =
          after.failed_polls - before.failed_polls;
      slo.Record("poll_success", at, day_polls - day_failed, day_polls);
    }
  }

  const cascade::Fleet::Totals& totals = fleet.totals();
  const cascade::Publisher::Counters& served = publisher.counters();
  const util::Distribution& staleness = fleet.staleness();
  const util::Distribution& windows = fleet.vulnerability_windows();
  const util::Distribution end_staleness = fleet.EndStaleness();

  const double sim_days = static_cast<double>(num_days);
  const double bytes_per_client_day =
      static_cast<double>(totals.bytes_downloaded) /
      (static_cast<double>(num_clients) * sim_days);
  // The counterfactual a cascade-without-deltas publisher would pay: every
  // poll that moved a client forward ships the full snapshot.
  const double naive_bytes =
      static_cast<double>(totals.delta_updates + totals.snapshot_updates) *
      static_cast<double>(snapshot_bytes_last);
  const double delta_savings =
      totals.bytes_downloaded > 0
          ? naive_bytes / static_cast<double>(totals.bytes_downloaded)
          : 0;

  std::printf("\nfleet (%zu clients, %zu days, seed %" PRIu64 "):\n",
              num_clients, num_days, seed);
  std::printf("  polls %" PRIu64 " (failed %" PRIu64 ", retries %" PRIu64
              ", up-to-date %" PRIu64 ")\n",
              totals.polls, totals.failed_polls, totals.retries,
              totals.up_to_date_polls);
  std::printf("  updates: %" PRIu64 " delta, %" PRIu64 " snapshot "
              "(publisher served %" PRIu64 "/%" PRIu64 "/%" PRIu64
              " delta/snapshot/up-to-date)\n",
              totals.delta_updates, totals.snapshot_updates,
              served.delta_serves, served.snapshot_serves,
              served.up_to_date_serves);
  std::printf("  bandwidth: %s total, %s/client/day, %.2fx cheaper than "
              "snapshot-every-update\n",
              util::HumanBytes(static_cast<double>(totals.bytes_downloaded))
                  .c_str(),
              util::HumanBytes(bytes_per_client_day).c_str(), delta_savings);
  std::printf("  storm: %" PRIu64 " faults injected\n",
              storm.total_injected());
  std::printf("  ground truth: %" PRIu64 " lookups verified, %" PRIu64
              " wrong answers\n",
              totals.verified_lookups, totals.wrong_answers);
  std::printf("  staleness at poll: p50 %.2fh  p90 %.2fh  p99 %.2fh\n",
              staleness.Quantile(0.5) / 3600, staleness.Quantile(0.9) / 3600,
              staleness.Quantile(0.99) / 3600);
  std::printf("  staleness at end:  p50 %.2fh  p90 %.2fh  p99 %.2fh\n",
              end_staleness.Quantile(0.5) / 3600,
              end_staleness.Quantile(0.9) / 3600,
              end_staleness.Quantile(0.99) / 3600);
  std::printf("  vulnerability window: mean %.2fd  p50 %.2fd  p90 %.2fd\n",
              Days(windows.Mean()), Days(windows.Quantile(0.5)),
              Days(windows.Quantile(0.9)));

  // ---- CRLSet baseline: coverage-weighted effective window -------------
  double crlset_coverage = 0;
  std::size_t crlset_entries = 0, crlset_bytes = 0;
  std::size_t crlset_total_revocations = 0;
  double uncovered_window_days = 0;
  double crlset_effective_days = 0, cascade_effective_days = 0;
  {
    bench::BenchRun::Phase phase("cascade.crlset_baseline");
    core::CrlsetAuditor auditor(world.eco.get(),
                                bench::ScaledCrlsetConfig(scale));
    auditor.RunDaily(config.crawl_start, config.study_end);
    const core::CrlsetAuditor::CoverageStats coverage = auditor.ComputeCoverage(
        config.study_end, *world.pipeline, *world.crawler);
    crlset_entries = coverage.crlset_entries;
    crlset_total_revocations = coverage.total_revocations;
    crlset_bytes = auditor.latest().SerializedSize();
    crlset_coverage =
        coverage.total_revocations > 0
            ? static_cast<double>(coverage.crlset_entries) /
                  static_cast<double>(coverage.total_revocations)
            : 0;

    // A revocation missing from the client-side set stays exploitable
    // until the certificate expires: mean remaining lifetime at
    // revocation, over the replayed population.
    util::Distribution uncovered;
    for (const Replayed& r : replay) {
      uncovered.Add(static_cast<double>(
          std::max<util::Timestamp>(0, r.expiry - r.first_seen)));
    }
    uncovered_window_days = Days(uncovered.Mean());

    // Both channels ride the same update pipeline, so covered revocations
    // see the fleet's measured update lag; the channels differ in how much
    // of the revocation population is covered at all. The cascade covers
    // the full known universe by construction.
    const double update_lag_days = Days(windows.Mean());
    cascade_effective_days = update_lag_days;
    crlset_effective_days = crlset_coverage * update_lag_days +
                            (1 - crlset_coverage) * uncovered_window_days;
  }
  const double shrinkage =
      cascade_effective_days > 0 ? crlset_effective_days / cascade_effective_days
                                 : 0;

  std::printf("\ncrlset baseline:\n");
  std::printf("  covers %zu of %zu crawler revocations (%.1f%%), %s\n",
              crlset_entries, crlset_total_revocations, 100 * crlset_coverage,
              util::HumanBytes(static_cast<double>(crlset_bytes)).c_str());
  std::printf("  cascade covers %zu of %zu in-universe revocations (100%%), "
              "%s snapshot, %zu levels\n",
              revoked_final, revoked_final,
              util::HumanBytes(static_cast<double>(snapshot_bytes_last))
                  .c_str(),
              levels_last);
  std::printf("  effective vulnerability window: crlset %.1fd vs cascade "
              "%.2fd -> %.0fx shrinkage\n",
              crlset_effective_days, cascade_effective_days, shrinkage);

  const bool exact = totals.wrong_answers == 0 && totals.verified_lookups > 0;
  std::printf("\nexactness under storm: %s\n", exact ? "OK" : "FAILED");

  // ---- SLO burn-rate timeline + traced storm probe ---------------------
  std::uint64_t slo_alerts = 0, slo_storm_alerts = 0;
  for (const auto& alert : slo.AlertTimeline()) {
    ++slo_alerts;
    if (alert.window_start >= storm_day_start &&
        alert.window_start < storm_day_start + util::kSecondsPerDay)
      ++slo_storm_alerts;
  }
  const bool slo_ok = slo_storm_alerts > 0 && slo_alerts == slo_storm_alerts;
  std::printf("slo: %" PRIu64 " alert windows, %" PRIu64
              " in the storm day: %s\n",
              slo_alerts, slo_storm_alerts, slo_ok ? "OK" : "FAIL");

  // One distribution poll, traced end to end through the storm: the
  // stitched trace's critical path must tile the measured retry-ladder
  // latency (same 1% gate as bench_fleet's showcase trace).
  auto& collector = obs::DistTraceCollector::Global();
  collector.Clear();
  collector.Enable();
  bool probe_ok = false;
  std::uint64_t probe_attempts = 0;
  double probe_elapsed = 0;
  std::string probe_trace_hex;
  std::string probe_hops_json;
  {
    net::RetryPolicy probe_policy;
    probe_policy.max_attempts = 4;
    probe_policy.initial_backoff_seconds = 30;
    probe_policy.jitter = 0.5;
    probe_policy.seed = seed;
    for (std::uint64_t i = 0; i < 50 && !probe_ok; ++i) {
      collector.Clear();
      const util::Timestamp at_probe =
          storm_day_start + static_cast<util::Timestamp>(7 * i + 1);
      const obs::TraceId trace = obs::MakeTraceId(seed, 3'000 + i);
      const obs::SpanContext root{trace, obs::RootSpanId(trace)};
      net::HttpRequest request;
      request.method = "GET";
      request.host = "cascade.dist.sim";
      request.path = cascade::Publisher::kSnapshotPath;
      request.headers[obs::kTraceparentHeader] = obs::FormatTraceparent(root);
      const auto result =
          net::FetchWithRetry(dist_net, request, at_probe, probe_policy, 600.0);
      if (!result.ok() || result.attempts < 2) continue;
      obs::DistSpan root_span;
      root_span.trace = trace;
      root_span.span = root.span;
      root_span.parent = 0;
      root_span.name = "cascade.poll";
      root_span.node = "probe";
      root_span.kind = obs::SpanKind::kInternal;
      root_span.status = result.fetch.response.status;
      root_span.start_ns = obs::VirtualNs(at_probe, 0);
      root_span.end_ns = obs::VirtualNs(at_probe, result.total_elapsed_seconds);
      collector.Record(root_span);
      const auto spans = collector.SnapshotTrace(trace);
      const auto path = obs::CriticalPath(spans);
      std::uint64_t path_ns = 0;
      for (const auto& segment : path) path_ns += segment.dur_ns();
      const double measured_ns = result.total_elapsed_seconds * 1e9;
      if (measured_ns <= 0 ||
          std::fabs(static_cast<double>(path_ns) - measured_ns) >
              0.01 * measured_ns)
        continue;
      probe_ok = true;
      probe_attempts = result.attempts;
      probe_elapsed = result.total_elapsed_seconds;
      probe_trace_hex = trace.Hex();
      for (const auto& segment : path) {
        char hop[256];
        std::snprintf(hop, sizeof hop,
                      "%s{\"name\": \"%s\", \"node\": \"%s\", "
                      "\"start_ns\": %" PRIu64 ", \"dur_ns\": %" PRIu64 "}",
                      probe_hops_json.empty() ? "" : ", ", segment.name,
                      segment.node, segment.start_ns, segment.dur_ns());
        probe_hops_json += hop;
      }
    }
  }
  collector.ExportFromEnv();
  collector.Disable();
  std::printf("traced probe: %s (attempts %" PRIu64 ", %.1fs, trace %s)\n",
              probe_ok ? "OK" : "FAIL", probe_attempts, probe_elapsed,
              probe_trace_hex.empty() ? "-" : probe_trace_hex.c_str());

  char buffer[2048];
  std::snprintf(
      buffer, sizeof buffer,
      "{\"scale\": %.4f, \"seed\": %" PRIu64 ", \"clients\": %zu, "
      "\"days\": %zu, \"universe\": %zu, \"revoked\": %zu, "
      "\"hidden_revocations\": %zu, "
      "\"publisher\": {\"levels\": %zu, \"snapshot_bytes\": %zu, "
      "\"delta_bytes_total\": %" PRIu64 "}, "
      "\"fleet\": {\"polls\": %" PRIu64 ", \"failed_polls\": %" PRIu64 ", "
      "\"retries\": %" PRIu64 ", \"delta_updates\": %" PRIu64 ", "
      "\"snapshot_updates\": %" PRIu64 ", \"up_to_date_polls\": %" PRIu64 ", "
      "\"bytes_downloaded\": %" PRIu64 ", \"bytes_per_client_day\": %.1f, "
      "\"snapshot_every_update_ratio\": %.3f, "
      "\"faults_injected\": %" PRIu64 ", "
      "\"verified_lookups\": %" PRIu64 ", \"wrong_answers\": %" PRIu64 "}, "
      "\"staleness_seconds\": {\"p50\": %.0f, \"p90\": %.0f, \"p99\": %.0f, "
      "\"mean\": %.0f, \"end_p50\": %.0f, \"end_p99\": %.0f}, "
      "\"vuln_window_days\": {\"mean\": %.3f, \"p50\": %.3f, \"p90\": %.3f}, "
      "\"crlset\": {\"entries\": %zu, \"total_revocations\": %zu, "
      "\"coverage\": %.4f, \"bytes\": %zu, "
      "\"uncovered_window_days\": %.1f, \"effective_window_days\": %.2f}, "
      "\"cascade_effective_window_days\": %.3f, "
      "\"window_shrinkage\": %.1f, \"exact\": %s",
      scale, seed, num_clients, num_days, shared_universe->size(),
      revoked_final, hidden_revocations, levels_last, snapshot_bytes_last,
      delta_bytes_total, totals.polls, totals.failed_polls, totals.retries,
      totals.delta_updates, totals.snapshot_updates, totals.up_to_date_polls,
      totals.bytes_downloaded, bytes_per_client_day, delta_savings,
      storm.total_injected(), totals.verified_lookups, totals.wrong_answers,
      staleness.Quantile(0.5), staleness.Quantile(0.9),
      staleness.Quantile(0.99), staleness.Mean(), end_staleness.Quantile(0.5),
      end_staleness.Quantile(0.99), Days(windows.Mean()),
      Days(windows.Quantile(0.5)), Days(windows.Quantile(0.9)),
      crlset_entries, crlset_total_revocations, crlset_coverage, crlset_bytes,
      uncovered_window_days, crlset_effective_days, cascade_effective_days,
      shrinkage, exact ? "true" : "false");
  std::string results = buffer;
  results += ", \"staleness_cdf_seconds\": " + CdfJson(staleness, 20);
  results += ", \"vuln_window_cdf_seconds\": " + CdfJson(windows, 20);
  std::snprintf(buffer, sizeof buffer,
                ", \"slo\": {\"alerts\": %" PRIu64
                ", \"storm_day_alerts\": %" PRIu64
                ", \"clean_phase_alerts\": %" PRIu64 ", \"timeline\": ",
                slo_alerts, slo_storm_alerts, slo_alerts - slo_storm_alerts);
  results += buffer;
  results += slo.TimelineJson();
  std::snprintf(buffer, sizeof buffer,
                "}, \"traced_probe\": {\"ok\": %s, \"trace\": \"%s\", "
                "\"attempts\": %" PRIu64 ", \"elapsed_seconds\": %.3f, "
                "\"critical_path\": [",
                probe_ok ? "true" : "false", probe_trace_hex.c_str(),
                probe_attempts, probe_elapsed);
  results += buffer;
  results += probe_hops_json;
  results += "]}}";
  run.SetResults(std::move(results));

  if (!slo_ok || !probe_ok)
    std::printf("observability gates: FAILED\n");
  return exact && slo_ok && probe_ok ? 0 : 1;
}

}  // namespace rev

int main() { return rev::Main(); }
