// Ablation (paper §9): the Multiple OCSP Staple Extension (RFC 6961).
// Compares a hard-fail client's revocation fetches and latency per visit
// with (a) no stapling, (b) leaf-only stapling (RFC 6066), and (c)
// multi-stapling, across chain lengths — showing why leaf-only stapling
// "does not entirely remove the latency penalty" (§2.2).
#include "bench_common.h"
#include "browser/profiles.h"
#include "browser/testsuite.h"

using namespace rev;
using namespace rev::browser;

int main() {
  bench::PrintHeader(
      "Ablation — OCSP Stapling variants (none / leaf-only / RFC 6961)",
      "stapling removes the leaf's fetch; only the multi-staple extension "
      "removes the intermediates' fetches too");

  const util::Timestamp now = util::MakeDate(2015, 3, 31);
  Policy client = FindProfile("IE 11", "Windows 10")->policy;  // checks all

  core::TextTable table({"chain (ints)", "stapling", "OCSP fetches",
                         "revocation latency (ms)", "staple used"});

  for (int ints : {1, 2, 3}) {
    for (int mode = 0; mode < 3; ++mode) {
      TestCase test;
      test.id = 600 + ints * 10 + mode;
      test.num_intermediates = ints;
      test.protocol = RevProtocol::kOcspOnly;
      Policy policy = client;
      const char* label = "none";
      if (mode >= 1) {
        test.stapling = true;
        label = "leaf-only";
      }
      if (mode == 2) {
        test.multi_staple = true;
        policy.request_multi_staple = true;
        label = "multi (RFC 6961)";
      }
      // Unlike the 244-case suite's stapling tests, the responder stays
      // reachable here — we are measuring cost, not reachability.
      test.staple_responder_reachable = true;
      TestEnvironment env(test, /*seed=*/321, now);
      const VisitOutcome outcome = env.Run(policy);
      table.AddRow({std::to_string(ints), label,
                    std::to_string(outcome.ocsp_fetches),
                    core::FormatDouble(outcome.revocation_seconds * 1000, 1),
                    outcome.used_staple ? "yes" : "no"});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "shape check: leaf-only stapling saves exactly one fetch; the fetch\n"
      "count for intermediates grows with chain length and only RFC 6961\n"
      "drives it to zero — the paper's argument for adopting the multiple\n"
      "staple extension.\n");
  return 0;
}
