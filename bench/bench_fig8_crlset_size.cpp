// Fig. 8: number of entries in the CRLSet over time — Heartbleed peak, the
// VeriSign-parent removal, and the slow decline as revoked certs expire.
#include "bench_common.h"

using namespace rev;

int main() {
  bench::BenchRun run("fig8_crlset_size");
  bench::PrintHeader(
      "Fig. 8 — CRLSet entry count over time",
      "15,922–24,904 entries; peak at Heartbleed (Apr 2014); sharp drop "
      "May–June 2014 when the 'VeriSign Class 3 EV' parent (5,774 entries) "
      "was removed; downward trend as revoked certs expire");

  bench::World world = bench::World::Build(bench::ScaleFromEnv(),
                                           /*run_scans=*/false,
                                           /*run_crawl=*/false);
  bench::BenchRun::Phase analysis_phase("analysis");
  const core::EcosystemConfig& c = world.eco->config();

  core::CrlsetAuditor auditor(world.eco.get(),
                              bench::ScaledCrlsetConfig(world.config.scale));
  core::CrlsetAuditor::Options options;
  options.parent_removal_date = util::MakeDate(2014, 5, 20);
  options.parent_removal_ca = "Verisign";
  auditor.RunDaily(util::MakeDate(2013, 7, 18), c.study_end, options);

  core::TextTable table({"date", "CRLSet entries"});
  const auto& days = auditor.days();
  for (std::size_t i = 0; i < days.size(); i += 14)
    table.AddRow({util::FormatDate(days[i].day),
                  std::to_string(days[i].crlset_entries)});
  std::printf("%s\n", table.Render().c_str());

  // Shape checks: peak near Heartbleed, drop after the parent removal.
  std::size_t peak = 0;
  util::Timestamp peak_day = 0;
  for (const auto& day : days) {
    if (day.crlset_entries > peak) {
      peak = day.crlset_entries;
      peak_day = day.day;
    }
  }
  std::size_t before_removal = 0, after_removal = 0;
  for (const auto& day : days) {
    if (day.day == *options.parent_removal_date - util::kSecondsPerDay)
      before_removal = day.crlset_entries;
    if (day.day == *options.parent_removal_date + 2 * util::kSecondsPerDay)
      after_removal = day.crlset_entries;
  }
  std::printf("peak: %zu entries on %s (Heartbleed: %s)\n", peak,
              util::FormatDate(peak_day).c_str(),
              util::FormatDate(c.heartbleed).c_str());
  std::printf("VeriSign parent removal: %zu -> %zu entries\n", before_removal,
              after_removal);
  std::printf("final: %zu entries (%.0f%% below peak; paper: >1/3 decline)\n",
              days.back().crlset_entries,
              peak ? 100.0 * (1.0 - static_cast<double>(days.back().crlset_entries) /
                                        static_cast<double>(peak))
                   : 0.0);
  return 0;
}
