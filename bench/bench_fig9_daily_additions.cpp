// Fig. 9: daily new revocations in CRLs vs new entries in the CRLSet,
// including the weekly CRL pattern and the Nov–Dec 2014 CRLSet outage.
#include "bench_common.h"

using namespace rev;

int main() {
  bench::BenchRun run("fig9_daily_additions");
  bench::PrintHeader(
      "Fig. 9 — daily additions to CRLs vs CRLSets",
      "CRL additions show weekly patterns and dwarf CRLSet additions; a "
      "two-week gap with no CRLSet additions in Nov–Dec 2014");

  bench::World world = bench::World::Build(bench::ScaleFromEnv(),
                                           /*run_scans=*/false,
                                           /*run_crawl=*/false);
  bench::BenchRun::Phase analysis_phase("analysis");
  const core::EcosystemConfig& c = world.eco->config();

  core::CrlsetAuditor auditor(world.eco.get(),
                              bench::ScaledCrlsetConfig(world.config.scale));
  core::CrlsetAuditor::Options options;
  options.outage_start = util::MakeDate(2014, 11, 20);
  options.outage_end = util::MakeDate(2014, 12, 4);
  auditor.RunDaily(c.crawl_start, c.study_end, options);

  const auto& days = auditor.days();
  core::TextTable table({"date", "new CRL entries", "new CRLSet entries"});
  // Skip day 0 (the initial flood when tracking starts).
  for (std::size_t i = 1; i < days.size(); i += 4) {
    table.AddRow({util::FormatDate(days[i].day),
                  std::to_string(days[i].crl_new_entries),
                  std::to_string(days[i].crlset_new_entries)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::uint64_t crl_total = 0, crlset_total = 0, outage_additions = 0;
  for (std::size_t i = 1; i < days.size(); ++i) {
    crl_total += days[i].crl_new_entries;
    crlset_total += days[i].crlset_new_entries;
    if (days[i].day >= *options.outage_start && days[i].day < *options.outage_end)
      outage_additions += days[i].crlset_new_entries;
  }
  std::printf("totals after day 0: %llu CRL entries vs %llu CRLSet entries "
              "(%.1fx more in CRLs; paper: orders of magnitude)\n",
              static_cast<unsigned long long>(crl_total),
              static_cast<unsigned long long>(crlset_total),
              crlset_total ? static_cast<double>(crl_total) /
                                 static_cast<double>(crlset_total)
                           : 0.0);
  std::printf("CRLSet additions during the %s..%s outage: %llu (paper: none)\n",
              util::FormatDate(*options.outage_start).c_str(),
              util::FormatDate(*options.outage_end).c_str(),
              static_cast<unsigned long long>(outage_additions));
  return 0;
}
