// Scale-sensitivity sweep: re-derives the headline shapes at several
// REV_SCALE values to show which conclusions are scale-stable (fractions,
// orderings, crossovers) and which quantities scale linearly (counts,
// absolute CRL sizes). This is the repo's answer to "did the downscaling
// manufacture the results?"
#include "bench_common.h"

using namespace rev;

namespace {

struct Row {
  double scale;
  std::size_t leaf_set;
  double fresh_revoked_end;
  double alive_revoked_end;
  double stapling_servers;
  double crl_weighted_over_raw;
  double crlset_coverage;
};

Row Measure(double scale) {
  Row row;
  row.scale = scale;
  bench::World world =
      bench::World::Build(scale, true, true, /*crawl_step_days=*/3);
  const core::EcosystemConfig& c = world.eco->config();
  row.leaf_set = world.pipeline->LeafSet().size();

  // Sample exactly at the last scan, where the alive set is well-defined.
  const util::Timestamp sample = world.pipeline->latest_scan_time();
  const auto timeline = core::ComputeRevocationTimeline(
      *world.pipeline, *world.crawler, sample, sample,
      7 * util::kSecondsPerDay);
  row.fresh_revoked_end = timeline.back().FreshRevokedFraction();
  row.alive_revoked_end = timeline.back().AliveRevokedFraction();

  const core::StaplingStats stapling = core::ComputeStaplingStats(
      scan::RunHandshakeScan(world.eco->internet(), c.study_end - util::kSecondsPerDay));
  row.stapling_servers = stapling.ServerFraction();

  const auto samples =
      core::CollectCrlSizes(*world.crawler, *world.pipeline, *world.eco);
  const core::CrlSizeDistributions dist = core::BuildCrlSizeDistributions(samples);
  row.crl_weighted_over_raw =
      dist.raw.Median() > 0 ? dist.weighted.Median() / dist.raw.Median() : 0;

  core::CrlsetAuditor auditor(world.eco.get(), bench::ScaledCrlsetConfig(scale));
  auditor.RunDaily(c.crawl_start, c.crawl_start + 10 * util::kSecondsPerDay);
  const auto coverage = auditor.ComputeCoverage(
      c.crawl_start + 10 * util::kSecondsPerDay, *world.pipeline, *world.crawler);
  row.crlset_coverage =
      coverage.total_revocations
          ? static_cast<double>(coverage.crlset_entries) /
                static_cast<double>(coverage.total_revocations)
          : 0;
  return row;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Scale sensitivity — headline shapes across REV_SCALE",
      "fractions and orderings should be stable while counts scale linearly");

  core::TextTable table({"scale", "Leaf Set", "fresh revoked", "alive revoked",
                         "servers stapling", "CRL weighted/raw",
                         "CRLSet coverage"});
  for (double scale : {0.001, 0.002, 0.004}) {
    const Row row = Measure(scale);
    table.AddRow({core::FormatDouble(row.scale, 4),
                  std::to_string(row.leaf_set),
                  core::FormatDouble(row.fresh_revoked_end, 4),
                  core::FormatDouble(row.alive_revoked_end, 4),
                  core::FormatDouble(row.stapling_servers, 4),
                  core::FormatDouble(row.crl_weighted_over_raw, 1) + "x",
                  core::FormatDouble(row.crlset_coverage, 4)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "reading: the Leaf Set scales ~linearly; the revoked fractions,\n"
      "stapling share, and CRLSet coverage hold steady; the weighted/raw\n"
      "CRL-size ratio *grows* with scale (toward the paper's ~57x) because\n"
      "per-CRL entry counts grow while small CRLs stay header-bound.\n");
  return 0;
}
