// Fig. 6: cumulative distribution of CRL sizes — raw (per CRL) vs weighted
// (per certificate, each cert charged its smallest CRL).
#include "bench_common.h"

using namespace rev;

int main() {
  bench::BenchRun run("fig6_crl_size_cdf");
  bench::PrintHeader(
      "Fig. 6 — CDF of CRL sizes, raw vs certificate-weighted",
      "raw median <1 KB (most CRLs are tiny), but the median *certificate* "
      "has a 51 KB CRL; sizes range up to 76 MB (Apple WWDR)");

  bench::World world = bench::World::Build(bench::ScaleFromEnv());
  bench::BenchRun::Phase analysis_phase("analysis");
  const auto samples =
      core::CollectCrlSizes(*world.crawler, *world.pipeline, *world.eco);
  const core::CrlSizeDistributions dist = core::BuildCrlSizeDistributions(samples);

  core::TextTable table({"percentile", "raw CRL size", "weighted (per cert)"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}) {
    table.AddRow({core::FormatDouble(q, 2),
                  util::HumanBytes(dist.raw.Quantile(q)),
                  util::HumanBytes(dist.weighted.Quantile(q))});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("raw median      : %s   (paper: <900 B)\n",
              util::HumanBytes(dist.raw.Median()).c_str());
  std::printf("weighted median : %s   (paper: 51 KB)\n",
              util::HumanBytes(dist.weighted.Median()).c_str());
  std::printf("maximum         : %s   (paper: 76 MB)\n",
              util::HumanBytes(dist.raw.Max()).c_str());
  std::printf("weighted/raw median ratio: %.1fx   (paper: ~57x)\n",
              dist.raw.Median() > 0 ? dist.weighted.Median() / dist.raw.Median()
                                    : 0.0);
  std::printf(
      "\nshape check: the weighted distribution is shifted far right of the\n"
      "raw one — most CRLs are small, but most *certificates* point at large\n"
      "CRLs. Absolute sizes scale with REV_SCALE (entry counts shrink);\n"
      "the raw median does not, because tiny CRLs are header-dominated.\n");
  return 0;
}
