// Fig. 5: scatter of CRL entry count vs CRL file size, with the linear fit
// (paper: ~38 bytes per entry on average, variance from serial lengths).
#include <algorithm>

#include "bench_common.h"

using namespace rev;

int main() {
  bench::BenchRun run("fig5_crl_size_scatter");
  bench::PrintHeader(
      "Fig. 5 — CRL size vs number of entries",
      "strong linear correlation, ~38 bytes/entry on average; variance from "
      "per-CA serial-number length policies (up to 49 decimal digits)");

  bench::World world = bench::World::Build(bench::ScaleFromEnv());
  bench::BenchRun::Phase analysis_phase("analysis");
  const auto samples =
      core::CollectCrlSizes(*world.crawler, *world.pipeline, *world.eco);

  // Scatter points, ordered by entries; print a representative subsample.
  std::vector<core::CrlSizeSample> ordered = samples;
  std::sort(ordered.begin(), ordered.end(),
            [](const core::CrlSizeSample& a, const core::CrlSizeSample& b) {
              return a.entries < b.entries;
            });
  core::TextTable table({"entries", "size", "bytes/entry", "CA"});
  const std::size_t step = std::max<std::size_t>(1, ordered.size() / 30);
  for (std::size_t i = 0; i < ordered.size(); i += step) {
    const core::CrlSizeSample& s = ordered[i];
    table.AddRow({std::to_string(s.entries),
                  util::HumanBytes(static_cast<double>(s.bytes)),
                  s.entries ? core::FormatDouble(
                                  static_cast<double>(s.bytes) /
                                      static_cast<double>(s.entries), 1)
                            : "-",
                  s.ca_name});
  }
  if (!ordered.empty()) {
    const core::CrlSizeSample& s = ordered.back();
    table.AddRow({std::to_string(s.entries),
                  util::HumanBytes(static_cast<double>(s.bytes)), "", s.ca_name});
  }
  std::printf("%s\n", table.Render().c_str());

  std::vector<double> xs, ys;
  for (const core::CrlSizeSample& s : samples) {
    if (s.entries == 0) continue;
    xs.push_back(static_cast<double>(s.entries));
    ys.push_back(static_cast<double>(s.bytes));
  }
  const util::LinearFit fit = util::FitLine(xs, ys);
  std::printf("linear fit over %zu CRLs: %.1f bytes/entry, r = %.4f\n",
              xs.size(), fit.slope, fit.r);
  std::printf("shape check: paper reports ~38 B/entry with a strong linear\n"
              "correlation; our serials span 10-21 bytes, so the slope lands\n"
              "in the same few-tens-of-bytes regime.\n");
  return 0;
}
