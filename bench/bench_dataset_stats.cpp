// §3 dataset statistics: scan corpus, Intermediate/Leaf Set construction,
// and availability of revocation information.
#include "bench_common.h"

#include "util/thread_pool.h"

using namespace rev;

int main() {
  bench::BenchRun run("dataset_stats");
  bench::PrintHeader(
      "Dataset statistics (paper §3.1/§3.2)",
      "38.5M certs -> 1,946 intermediates, 5.07M leaves (45.2% still "
      "advertised); leaves: 99.9% CRL, 95.0% OCSP, 0.09% unrevocable; "
      "intermediates: 98.9% CRL, 48.5% OCSP");

  bench::World world = bench::World::Build(bench::ScaleFromEnv(),
                                           /*run_scans=*/true,
                                           /*run_crawl=*/false);
  bench::BenchRun::Phase analysis_phase("analysis");

  const core::DatasetStats stats = core::ComputeDatasetStats(*world.pipeline);
  auto pct = [](std::size_t num, std::size_t den) {
    return den == 0 ? 0.0 : 100.0 * static_cast<double>(num) / static_cast<double>(den);
  };

  core::TextTable table({"metric", "measured", "paper"});
  table.AddRow({"weekly scans", std::to_string(world.num_scans), "74"});
  table.AddRow({"unique certificates", std::to_string(stats.unique_certs),
                "38,514,130 (incl. invalid)"});
  table.AddRow({"Intermediate Set", std::to_string(stats.intermediate_set), "1,946"});
  table.AddRow({"Leaf Set", std::to_string(stats.leaf_set), "5,067,476"});
  table.AddRow({"still advertised (last scan)",
                core::FormatDouble(pct(stats.leaf_still_advertised, stats.leaf_set), 1) + "%",
                "45.2%"});
  table.AddRow({"leaves with reachable CRL",
                core::FormatDouble(pct(stats.leaf_with_crl, stats.leaf_set), 2) + "%",
                "99.9%"});
  table.AddRow({"leaves with reachable OCSP",
                core::FormatDouble(pct(stats.leaf_with_ocsp, stats.leaf_set), 2) + "%",
                "95.0%"});
  table.AddRow({"unrevocable leaves",
                std::to_string(stats.leaf_unrevocable) + " (" +
                    core::FormatDouble(pct(stats.leaf_unrevocable, stats.leaf_set), 3) + "%)",
                "4,384 (0.09%)"});
  table.AddRow({"intermediates with CRL",
                core::FormatDouble(pct(stats.intermediate_with_crl, stats.intermediate_set), 1) + "%",
                "98.9%"});
  table.AddRow({"intermediates with OCSP",
                core::FormatDouble(pct(stats.intermediate_with_ocsp, stats.intermediate_set), 1) + "%",
                "48.5%"});
  std::printf("%s\n", table.Render().c_str());

  // §3.2: certificates with only an OCSP responder (no CRL) — the paper
  // found 642 and queried each responder directly.
  core::RevocationCrawler crawler(&world.eco->net());
  std::size_t ocsp_only = 0, answered = 0, revoked = 0;
  const core::CertCorpus& corpus = world.pipeline->corpus();
  for (const core::CertCorpus::Row row : world.pipeline->LeafSet()) {
    if (!corpus.crl_url_ids(row).empty() || corpus.ocsp_url_ids(row).empty())
      continue;
    ++ocsp_only;
    // Cold path: the handful of OCSP-only certs are materialized on demand.
    const x509::CertPtr cert = corpus.cert(row);
    for (const core::Ecosystem::CaEntry& entry : world.eco->cas()) {
      if (!(entry.ca->cert()->tbs.subject == cert->tbs.issuer)) continue;
      auto status = crawler.QueryOcsp(*cert, *entry.ca->cert(),
                                      world.eco->config().study_end);
      if (status) {
        ++answered;
        if (*status == ocsp::CertStatus::kRevoked) ++revoked;
      }
      break;
    }
  }
  std::printf("OCSP-only certificates (paper: 642): %zu; responders answered "
              "%zu, %zu revoked\n\n",
              ocsp_only, answered, revoked);

  // Parallelism cost accounting (docs/parallelism.md): wall time of the
  // ThreadPool-backed stages at the configured REV_THREADS. Compare a
  // REV_THREADS=1 run against the default to measure the speedup.
  std::printf(
      "pipeline wall time (REV_THREADS=%u -> %u worker(s)):\n"
      "  Finalize           %8.3f s  (intermediates %.3f s + verify %.3f s)\n",
      bench::ThreadsFromEnv(),
      bench::ThreadsFromEnv() == 0 ? util::ThreadPool::DefaultThreads()
                                   : bench::ThreadsFromEnv(),
      world.pipeline->finalize_wall_seconds(),
      world.pipeline->intermediate_wall_seconds(),
      world.pipeline->verify_wall_seconds());

  std::printf(
      "note: counts scale with REV_SCALE=%.4f; invalid/self-signed junk is\n"
      "not modeled, so unique == leaf+intermediates here. Intermediates all\n"
      "carry CRL+OCSP by construction (the paper's 48.5%% OCSP reflects\n"
      "legacy CA certs the generator does not reproduce).\n",
      world.config.scale);
  return 0;
}
