// Fig. 11: the Bloom-filter alternative to CRLSets — false-positive rate vs
// number of revocations for filter sizes 256 KB – 16 MB, validated against
// a real filter, plus the Golomb Compressed Set refinement and the
// CRLite-style filter cascade (src/cascade) at equal coverage.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.h"
#include "cascade/cascade.h"
#include "crlset/bloom.h"
#include "crlset/gcs.h"

using namespace rev;

namespace {

// Microbenchmarks for the filter hot paths (run with --benchmark_filter).
void BM_BloomInsert(benchmark::State& state) {
  crlset::BloomFilter filter(256 * 1024 * 8, 7);
  Bytes key(48, 0x42);
  std::uint64_t i = 0;
  for (auto _ : state) {
    key[0] = static_cast<std::uint8_t>(i++);
    filter.Insert(key);
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  crlset::BloomFilter filter(256 * 1024 * 8, 7);
  Bytes key(48, 0x42);
  for (int i = 0; i < 10'000; ++i) {
    key[1] = static_cast<std::uint8_t>(i);
    filter.Insert(key);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    key[0] = static_cast<std::uint8_t>(i++);
    benchmark::DoNotOptimize(filter.MayContain(key));
  }
}
BENCHMARK(BM_BloomQuery);

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run("fig11_bloom_tradeoff");
  bench::PrintHeader(
      "Fig. 11 — Bloom filter capacity/false-positive trade-off vs CRLSet",
      "a 256 KB filter holds an order of magnitude more revocations than "
      "the ~16-25k-entry CRLSet at 1% FPR; 2 MB covers 1.7M revocations "
      "(15% of all CRL entries)");

  // Analytic curves: p = (1 - e^{-kn/m})^k with optimal k per point.
  const struct {
    const char* label;
    std::size_t bytes;
  } kSizes[] = {{"256KB", 256 * 1024},
                {"512KB", 512 * 1024},
                {"1MB", 1024 * 1024},
                {"2MB", 2 * 1024 * 1024},
                {"16MB", 16 * 1024 * 1024}};

  core::TextTable table({"revocations n", "m=256KB", "m=512KB", "m=1MB",
                         "m=2MB", "m=16MB"});
  for (std::size_t n : {10'000u, 30'000u, 100'000u, 218'000u, 300'000u,
                        1'000'000u, 1'700'000u, 3'000'000u, 10'000'000u}) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto& size : kSizes) {
      const std::size_t m_bits = size.bytes * 8;
      const int k = std::max(
          1, static_cast<int>(std::floor(0.6931 * static_cast<double>(m_bits) /
                                         static_cast<double>(n))));
      const double p = crlset::BloomFilter::ExpectedFpr(m_bits, std::min(k, 30), n);
      row.push_back(core::FormatDouble(p, 6));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());

  // Validate the analytic point the paper highlights: 256 KB, ~1% FPR.
  const std::size_t capacity = 218'000;
  crlset::BloomFilter filter = crlset::BloomFilter::ForCapacity(capacity, 0.01);
  util::Rng rng(11);
  for (std::size_t i = 0; i < capacity; ++i) {
    Bytes key(40);
    rng.Fill(key.data(), key.size());
    filter.Insert(key);
  }
  std::printf("validation: filter of %s holds %zu revocations, measured FPR "
              "%.3f%% (target 1%%)\n",
              util::HumanBytes(static_cast<double>(filter.SizeBytes())).c_str(),
              capacity, 100 * filter.MeasureFpr(200'000, 77));
  std::printf("  -> %.0fx the CRLSet's ~24.9k peak entries at the same "
              "250 KB budget (paper: an order of magnitude)\n",
              static_cast<double>(capacity) / 24'904.0);

  // Golomb Compressed Set comparison (§7.4's closing suggestion).
  std::vector<Bytes> keys;
  keys.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) {
    Bytes key(40);
    rng.Fill(key.data(), key.size());
    keys.push_back(std::move(key));
  }
  const crlset::GolombCompressedSet gcs = crlset::GolombCompressedSet::Build(keys, 7);
  crlset::BloomFilter same_fpr = crlset::BloomFilter::ForCapacity(keys.size(), 1.0 / 128);
  for (const Bytes& key : keys) same_fpr.Insert(key);
  std::printf("\nGolomb Compressed Set over %zu keys @ FPR 2^-7: %s vs Bloom "
              "%s (%.0f%% smaller; Langley's suggested refinement)\n\n",
              keys.size(),
              util::HumanBytes(static_cast<double>(gcs.SizeBytes())).c_str(),
              util::HumanBytes(static_cast<double>(same_fpr.SizeBytes())).c_str(),
              100.0 * (1.0 - static_cast<double>(gcs.SizeBytes()) /
                                 static_cast<double>(same_fpr.SizeBytes())));

  // Three-way comparison at equal coverage: the same revoked population
  // encoded as a plain Bloom filter, a GCS (both probabilistic — a
  // residual FPR survives no matter the budget), and a filter cascade,
  // which spends a little more than level 0 alone to be EXACT against the
  // known-certificate universe it was built from.
  const std::size_t num_revoked = 20'000;
  const std::size_t num_ok = 230'000;
  std::vector<Bytes> revoked, ok;
  revoked.reserve(num_revoked);
  ok.reserve(num_ok);
  for (std::size_t i = 0; i < num_revoked + num_ok; ++i) {
    Bytes key(32);
    rng.Fill(key.data(), key.size());
    (i < num_revoked ? revoked : ok).push_back(std::move(key));
  }

  crlset::BloomFilter bloom =
      crlset::BloomFilter::ForCapacity(num_revoked, 1.0 / 128);
  for (const Bytes& key : revoked) bloom.Insert(key);
  const crlset::GolombCompressedSet gcs7 =
      crlset::GolombCompressedSet::Build(revoked, 7);
  const cascade::FilterCascade casc =
      cascade::FilterCascade::Build(revoked, ok);

  std::size_t bloom_fp = 0, gcs_fp = 0, cascade_fp = 0, cascade_fn = 0;
  for (const Bytes& key : ok) {
    if (bloom.MayContain(key)) ++bloom_fp;
    if (gcs7.MayContain(key)) ++gcs_fp;
    if (casc.IsRevoked(key)) ++cascade_fp;
  }
  for (const Bytes& key : revoked)
    if (!casc.IsRevoked(key)) ++cascade_fn;

  const auto bits_per_rev = [num_revoked](std::size_t bytes) {
    return 8.0 * static_cast<double>(bytes) / static_cast<double>(num_revoked);
  };
  core::TextTable threeway(
      {"scheme", "bytes", "bits/revocation", "FP vs known universe"});
  threeway.AddRow({"Bloom @ 2^-7",
                   std::to_string(bloom.SizeBytes()),
                   core::FormatDouble(bits_per_rev(bloom.SizeBytes()), 2),
                   std::to_string(bloom_fp)});
  threeway.AddRow({"GCS @ 2^-7",
                   std::to_string(gcs7.SizeBytes()),
                   core::FormatDouble(bits_per_rev(gcs7.SizeBytes()), 2),
                   std::to_string(gcs_fp)});
  threeway.AddRow({"cascade (exact)",
                   std::to_string(casc.FilterBytes()),
                   core::FormatDouble(bits_per_rev(casc.FilterBytes()), 2),
                   std::to_string(cascade_fp)});
  std::printf("three-way at equal coverage: %zu revoked among %zu known "
              "certificates\n%s",
              num_revoked, num_revoked + num_ok, threeway.Render().c_str());
  std::printf("  cascade: %zu levels, %zu false negatives (must be 0); "
              "exactness holds only against the build universe\n\n",
              casc.NumLevels(), cascade_fn);

  char results[512];
  std::snprintf(
      results, sizeof results,
      "{\"threeway\": {\"revoked\": %zu, \"universe\": %zu, "
      "\"bloom_bytes\": %zu, \"gcs_bytes\": %zu, \"cascade_bytes\": %zu, "
      "\"bloom_fp\": %zu, \"gcs_fp\": %zu, \"cascade_fp\": %zu, "
      "\"cascade_fn\": %zu, \"cascade_levels\": %zu}}",
      num_revoked, num_revoked + num_ok, bloom.SizeBytes(), gcs7.SizeBytes(),
      casc.FilterBytes(), bloom_fp, gcs_fp, cascade_fp, cascade_fn,
      casc.NumLevels());
  run.SetResults(results);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
