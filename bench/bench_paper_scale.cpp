// Paper-scale end-to-end benchmark (ROADMAP item 2 acceptance): pushes the
// paper's full 38.5M-unique-certificate population through the columnar
// CertCorpus on one machine and runs the headline analyses against it.
//
// Unlike the other benches this one does not build an Ecosystem/SimNet
// world — issuing 38.5M certificates through CertificateAuthority::Issue
// would spend most of its memory on CA-side bookkeeping the measurement
// never reads. Instead it keeps the calibrated CA layer (DefaultCaSpecs
// shard counts, serial-length policies, real CrlUrl/OcspUrl strings) and
// synthesizes the leaf population directly with x509::SignCertificate,
// streaming every observation into the pipeline scan by scan:
//
//   scan s: re-observe alive rows (Pipeline::ObserveRows replay fast path),
//           then synthesize + Observe the certs first advertised in scan s.
//
// Revocations are written straight into a RevocationDb during synthesis and
// per-shard CRL tallies become the CrlSizeSample set, so ComputeTable1,
// ComputeRevocationTimeline (Fig. 1/2), ComputeRevinfoAdoption (Fig. 4),
// and ComputeDatasetStats (§3) all run end-to-end on the corpus.
//
// Knobs (defaults reproduce the paper's scale):
//   REV_PAPER_CERTS    unique certificates to synthesize (38'500'000)
//   REV_PAPER_SCANS    number of scans spanning the study window (6)
//   REV_PAPER_VALID    fraction chaining to the trusted roots (0.132,
//                      matching the paper's 5.07M Leaf Set / 38.5M uniques)
//   REV_PAPER_FLOOR    minimum ingest certs/sec; 0 disables the gate
//   REV_PAPER_RSS_MB   maximum peak RSS in MB; 0 disables the gate
//   REV_THREADS        Finalize() fan-out (bench_common.h)
//
// Gate violations exit non-zero after writing BENCH_paper_scale.json, so
// scripts/tier1.sh can enforce a throughput floor and memory ceiling on a
// reduced REV_PAPER_CERTS smoke run.
#include "bench_common.h"

#include <sys/resource.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstring>
#include <map>

#include "asn1/oid.h"
#include "obs/slo.h"
#include "util/rng.h"
#include "x509/certificate.h"

using namespace rev;

namespace {

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const std::uint64_t v = std::strtoull(env, nullptr, 10);
  return v > 0 ? v : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const double v = std::atof(env);
  return v > 0 ? v : fallback;
}

std::size_t PeakRssMb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  // ru_maxrss is KB on Linux.
  return static_cast<std::size_t>(ru.ru_maxrss) / 1024;
}

std::vector<double> ZipfWeights(int n, double s) {
  std::vector<double> weights(static_cast<std::size_t>(n));
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    weights[static_cast<std::size_t>(i)] = 1.0 / std::pow(i + 1, s);
    sum += weights[static_cast<std::size_t>(i)];
  }
  for (double& w : weights) w /= sum;
  return weights;
}

// One issuing CA: the calibrated spec, the real CA object (for its
// certificate, key, and service URLs), and the synthesis-side tallies that
// become CRL size samples.
struct SynthCa {
  core::CaSpec spec;
  ca::CertificateAuthority* ca = nullptr;
  x509::CertPtr cert;                   // issuing certificate (in chains)
  Bytes issuer_name_der;                // cached subject-name DER
  core::CertCorpus::Row row = core::CertCorpus::kNoRow;
  std::vector<std::size_t> shard_revoked;  // db entries per CRL shard
  std::vector<std::size_t> shard_weight;   // leaf certs pointing per shard
  std::uint64_t serial_counter = 0;
  std::size_t leaves = 0;               // leaves to synthesize in total
};

// A certificate that stays advertised across scans: its corpus row, its
// issuer's row (the replay chain), the scan after which it disappears, and
// the flags the per-scan SLO tallies need.
struct AliveEntry {
  core::CertCorpus::Row row = core::CertCorpus::kNoRow;
  core::CertCorpus::Row ca_row = core::CertCorpus::kNoRow;
  std::uint8_t death_scan = 0;
  std::uint8_t has_revinfo = 0;
  std::uint8_t chains_to_root = 0;
};

x509::Serial MakeSerial(int serial_bytes, std::uint8_t ca_tag,
                        std::uint64_t counter) {
  x509::Serial serial(static_cast<std::size_t>(serial_bytes));
  serial[0] = 0x41;  // nonzero leading byte: canonical positive magnitude
  serial[1] = ca_tag;
  // Cheap per-cert entropy in the middle bytes; the tail counter already
  // guarantees global uniqueness within a CA.
  std::uint64_t mix = (counter + 1) * 0x9E3779B97F4A7C15ull;
  for (std::size_t i = 2; i + 8 < serial.size(); ++i) {
    serial[i] = static_cast<std::uint8_t>(mix);
    mix >>= 8;
  }
  for (int i = 0; i < 8; ++i)
    serial[serial.size() - 1 - static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(counter >> (8 * i));
  return serial;
}

}  // namespace

int main() {
  bench::BenchRun run("paper_scale");
  bench::PrintHeader(
      "Paper-scale corpus ingest + Fig. 1 / Table 1 analyses",
      "38.5M unique certs over 74 scans -> 5.07M Leaf Set; 8% of fresh "
      "certs revoked; Table 1 per-CA CRL statistics");

  const auto total_certs =
      static_cast<std::size_t>(EnvU64("REV_PAPER_CERTS", 38'500'000));
  const int num_scans =
      std::max(2, static_cast<int>(EnvU64("REV_PAPER_SCANS", 6)));
  const double valid_fraction =
      std::clamp(EnvDouble("REV_PAPER_VALID", 0.132), 0.01, 1.0);
  const double floor_cps = EnvDouble("REV_PAPER_FLOOR", 0);
  const double rss_ceiling_mb = EnvDouble("REV_PAPER_RSS_MB", 0);

  core::EcosystemConfig times;  // only for the calibrated dates
  times.ApplyDefaults();
  const util::Timestamp study_start = times.study_start;
  const util::Timestamp study_end = times.study_end;
  const util::Timestamp crawl_start = times.crawl_start;
  const util::Timestamp heartbleed = times.heartbleed;
  const std::int64_t scan_step = (study_end - study_start) / (num_scans - 1);
  std::vector<util::Timestamp> scan_times;
  for (int s = 0; s < num_scans; ++s)
    scan_times.push_back(study_start + s * scan_step);

  util::Rng rng(20151028);

  // --- CA layer: calibrated roots + intermediates (real URLs/keys) --------
  x509::CertPool roots;
  std::vector<std::unique_ptr<ca::CertificateAuthority>> owned_cas;
  std::vector<SynthCa> cas;
  std::map<std::string, std::string> url_to_ca_name;
  {
    bench::BenchRun::Phase phase("build_cas");
    std::vector<ca::CertificateAuthority*> root_cas;
    for (int i = 0; i < 3; ++i) {
      ca::CertificateAuthority::Options options;
      options.name = "SimRoot " + std::to_string(i + 1);
      options.domain = "root" + std::to_string(i + 1) + ".sim";
      auto root = ca::CertificateAuthority::CreateRoot(
          options, rng, util::MakeDate(2006, 1, 1),
          25 * 365 * util::kSecondsPerDay);
      roots.Add(root->cert());
      root_cas.push_back(root.get());
      owned_cas.push_back(std::move(root));
    }

    std::vector<core::CaSpec> specs = core::DefaultCaSpecs();
    for (int i = 0; i < 40; ++i) {  // ecosystem's small-CA tail
      core::CaSpec spec;
      spec.name = "SmallCA" + std::to_string(i + 1);
      spec.num_crls = 1;
      spec.paper_certs = 8'000 + (static_cast<std::size_t>(i) % 7) * 3'000;
      spec.steady_revoke_per_year = 0.004 + 0.001 * (i % 5);
      spec.heartbleed_revoke_prob = 0.03;
      spec.serial_bytes = 10 + (i % 3) * 4;
      spec.ocsp_adoption = util::MakeDate(2009 + (i % 4), 1 + (i % 12), 1);
      specs.push_back(spec);
    }

    for (std::size_t i = 0; i < specs.size(); ++i) {
      const core::CaSpec& spec = specs[i];
      ca::CertificateAuthority::Options options;
      options.name = spec.name;
      std::string domain = spec.name;
      for (char& c : domain) c = static_cast<char>(std::tolower(c));
      options.domain = domain + ".sim";
      options.num_crl_shards = spec.num_crls;
      options.serial_bytes = spec.serial_bytes;
      auto ca = root_cas[i % root_cas.size()]->CreateIntermediate(
          options, rng, util::MakeDate(2010, 1, 1),
          12 * 365 * util::kSecondsPerDay);
      if (spec.shard_skew > 0)
        ca->SetShardWeights(ZipfWeights(spec.num_crls, spec.shard_skew));

      SynthCa synth;
      synth.spec = spec;
      synth.ca = ca.get();
      synth.cert = ca->cert();
      synth.issuer_name_der = ca->cert()->tbs.subject.Encode();
      synth.shard_revoked.assign(static_cast<std::size_t>(spec.num_crls), 0);
      synth.shard_weight.assign(static_cast<std::size_t>(spec.num_crls), 0);
      for (int shard = 0; shard < spec.num_crls; ++shard)
        url_to_ca_name[ca->CrlUrl(shard)] = spec.name;
      url_to_ca_name[ca->OcspUrl()] = spec.name;
      cas.push_back(std::move(synth));
      owned_cas.push_back(std::move(ca));
    }
  }

  // Untrusted issuers for the non-validating bulk of the corpus (the
  // paper's 38.5M uniques vs 5.07M Leaf Set: most scanned certs are
  // self-signed devices or chain to nothing in the root store).
  struct UntrustedIssuer {
    crypto::KeyPair key;
    x509::Name name;
    x509::CertPtr cert;
    core::CertCorpus::Row row = core::CertCorpus::kNoRow;
    std::uint64_t serial_counter = 0;
  };
  std::vector<UntrustedIssuer> untrusted(16);
  for (std::size_t i = 0; i < untrusted.size(); ++i) {
    UntrustedIssuer& u = untrusted[i];
    u.key = crypto::SimKeyFromLabel("untrusted-issuer:" + std::to_string(i));
    u.name = x509::Name::Make("Untrusted Issuer " + std::to_string(i + 1),
                              "SelfSigned Devices Inc");
    x509::TbsCertificate tbs;
    tbs.serial = MakeSerial(12, static_cast<std::uint8_t>(0xC0 + i), 1);
    tbs.issuer = u.name;
    tbs.subject = u.name;
    tbs.not_before = util::MakeDate(2009, 1, 1);
    tbs.not_after = tbs.not_before + 15 * 365 * util::kSecondsPerDay;
    tbs.public_key = u.key.Public();
    tbs.basic_constraints.is_ca = true;
    u.cert = std::make_shared<const x509::Certificate>(
        x509::SignCertificate(tbs, u.key));
  }

  // --- Apportion the population ------------------------------------------
  const auto valid_total = static_cast<std::size_t>(
      std::llround(static_cast<double>(total_certs) * valid_fraction));
  const std::size_t invalid_total = total_certs - valid_total;
  {
    double weight_sum = 0;
    for (const SynthCa& ca : cas)
      weight_sum += static_cast<double>(ca.spec.paper_certs);
    std::size_t assigned = 0;
    for (SynthCa& ca : cas) {
      ca.leaves = static_cast<std::size_t>(
          std::floor(static_cast<double>(valid_total) *
                     static_cast<double>(ca.spec.paper_certs) / weight_sum));
      assigned += ca.leaves;
    }
    cas.front().leaves += valid_total - assigned;  // remainder to largest CA
  }

  // Births per scan: 55% of each population is already advertised at the
  // first scan (the pre-study backlog); the rest arrives evenly.
  auto births_for = [&](std::size_t total) {
    std::vector<std::size_t> births(static_cast<std::size_t>(num_scans), 0);
    births[0] = static_cast<std::size_t>(
        std::llround(static_cast<double>(total) * 0.55));
    std::size_t assigned = births[0];
    for (int s = 1; s < num_scans; ++s) {
      births[static_cast<std::size_t>(s)] =
          (total - births[0]) / static_cast<std::size_t>(num_scans - 1);
      assigned += births[static_cast<std::size_t>(s)];
    }
    births[static_cast<std::size_t>(num_scans - 1)] += total - assigned;
    return births;
  };
  std::vector<std::vector<std::size_t>> valid_births;
  valid_births.reserve(cas.size());
  for (const SynthCa& ca : cas) valid_births.push_back(births_for(ca.leaves));
  const std::vector<std::size_t> invalid_births = births_for(invalid_total);

  // All leaves share one public key: leaf keys never sign anything here, and
  // one shared SPKI keeps synthesis off the per-cert key-derivation path.
  const crypto::PublicKey leaf_key =
      crypto::SimKeyFromLabel("paper-scale-leaf").Public();

  auto scan_of = [&](util::Timestamp t) {
    if (t <= study_start) return 0;
    const auto s = static_cast<int>((t - study_start) / scan_step);
    return std::min(s, num_scans - 1);
  };

  obs::SloMonitor slo;
  slo.AddObjective({.name = "revinfo_coverage",
                    .objective = 0.995,
                    .window_seconds = scan_step,
                    .short_windows = 1,
                    .long_windows = 2,
                    .burn_threshold = 2.0});
  slo.AddObjective({.name = "chain_validity",
                    .objective = 0.10,
                    .window_seconds = scan_step,
                    .short_windows = 1,
                    .long_windows = 2,
                    .burn_threshold = 2.0});

  core::Pipeline pipeline(roots, bench::ThreadsFromEnv());
  core::RevocationDb db;
  std::vector<AliveEntry> alive;
  alive.reserve(total_certs / 2);

  const auto ingest_start = std::chrono::steady_clock::now();
  std::uint64_t total_observations = 0;
  {
    bench::BenchRun::Phase phase("ingest_scans");
    std::array<x509::CertPtr, 2> chain;
    x509::TbsCertificate tbs;
    tbs.public_key = leaf_key;
    for (int s = 0; s < num_scans; ++s) {
      const util::Timestamp now = scan_times[static_cast<std::size_t>(s)];
      pipeline.BeginScan(now);
      std::uint64_t observed = 0, with_revinfo = 0, chained = 0;

      // Replay fast path: certs advertised in earlier scans and still alive.
      std::size_t kept = 0;
      for (const AliveEntry& entry : alive) {
        if (entry.death_scan < s) continue;
        const core::CertCorpus::Row rows[2] = {entry.row, entry.ca_row};
        pipeline.ObserveRows(rows);
        ++observed;
        with_revinfo += entry.has_revinfo;
        chained += entry.chains_to_root;
        alive[kept++] = entry;
      }
      alive.resize(kept);

      // Births: leaves first advertised in this scan, synthesized in full.
      for (std::size_t i = 0; i < cas.size(); ++i) {
        SynthCa& ca = cas[i];
        const std::size_t births =
            valid_births[i][static_cast<std::size_t>(s)];
        for (std::size_t c = 0; c < births; ++c) {
          const std::uint64_t n = ++ca.serial_counter;
          tbs.serial = MakeSerial(ca.spec.serial_bytes,
                                  static_cast<std::uint8_t>(i + 1), n);
          tbs.issuer = ca.cert->tbs.subject;
          tbs.subject = x509::Name::FromCommonName(
              "w" + std::to_string(n) + "." + ca.ca->options().domain);
          // Lifetime mix: mostly 1 year, some 90-day / 2-year / 3-year.
          const double lu = rng.UniformDouble();
          const std::int64_t lifetime =
              (lu < 0.08   ? 90
               : lu < 0.75 ? 365
               : lu < 0.93 ? 730
                           : 1095) *
              util::kSecondsPerDay;
          if (s == 0) {
            const util::Timestamp earliest = std::max(
                times.issuance_start,
                study_start - lifetime + util::kSecondsPerDay);
            tbs.not_before = rng.UniformInt(earliest, study_start);
          } else {
            tbs.not_before = rng.UniformInt(
                scan_times[static_cast<std::size_t>(s - 1)] + 1, now);
          }
          tbs.not_after = tbs.not_before + lifetime;

          const int shard = ca.ca->ShardForSerial(tbs.serial);
          ++ca.shard_weight[static_cast<std::size_t>(shard)];
          const bool unrevocable = rng.Chance(0.0009);
          tbs.crl_urls.clear();
          tbs.ocsp_urls.clear();
          if (!unrevocable) {
            tbs.crl_urls.push_back(ca.ca->CrlUrl(shard));
            if (tbs.not_before >= ca.spec.ocsp_adoption)
              tbs.ocsp_urls.push_back(ca.ca->OcspUrl());
          }
          tbs.policies.clear();
          if (rng.Chance(0.04))
            tbs.policies = {asn1::oids::VerisignEvPolicy()};

          // Revocation draw: Heartbleed mass event for certs fresh at the
          // event, steady-state hazard otherwise.
          util::Timestamp revoked_at = 0;
          x509::ReasonCode reason = x509::ReasonCode::kNoReasonCode;
          if (tbs.not_before <= heartbleed && heartbleed <= tbs.not_after &&
              rng.Chance(ca.spec.heartbleed_revoke_prob)) {
            revoked_at =
                heartbleed + rng.UniformInt(0, 45 * util::kSecondsPerDay);
            reason = x509::ReasonCode::kKeyCompromise;
          } else {
            const double hazard = std::min(
                0.9, ca.spec.steady_revoke_per_year *
                         (static_cast<double>(lifetime) / (365.0 * 86'400)));
            if (rng.Chance(hazard)) {
              revoked_at = rng.UniformInt(
                  tbs.not_before + util::kSecondsPerDay, tbs.not_after);
              reason = rng.Chance(ca.spec.crlset_reason_fraction)
                           ? (rng.Chance(0.5)
                                  ? x509::ReasonCode::kNoReasonCode
                                  : x509::ReasonCode::kKeyCompromise)
                           : x509::ReasonCode::kSuperseded;
            }
          }
          revoked_at = std::min(revoked_at, tbs.not_after);

          chain[0] = std::make_shared<const x509::Certificate>(
              x509::SignCertificate(tbs, ca.ca->key()));
          chain[1] = ca.cert;
          const core::CertCorpus::Row row = pipeline.Observe(chain);
          if (ca.row == core::CertCorpus::kNoRow)
            ca.row = pipeline.corpus().Find(ca.cert->Fingerprint());

          if (revoked_at != 0) {
            core::RevocationInfo info;
            info.revoked_at = revoked_at;
            info.reason = reason;
            info.first_seen_in_crl =
                std::max(crawl_start, revoked_at) +
                rng.UniformInt(0, util::kSecondsPerDay);
            if (db.Insert(ca.issuer_name_der, tbs.serial, info))
              ++ca.shard_revoked[static_cast<std::size_t>(shard)];
          }

          // Death: expiry, cut short by revocation unless the server keeps
          // advertising (4%, the paper's alive-and-revoked population).
          int death = std::max(s, scan_of(tbs.not_after));
          if (revoked_at != 0 && !rng.Chance(0.04))
            death = std::min(death, scan_of(revoked_at));
          death = std::max(death, s);

          ++observed;
          const bool has_revinfo = !unrevocable;
          with_revinfo += has_revinfo;
          ++chained;
          if (death > s)
            alive.push_back({row, ca.row, static_cast<std::uint8_t>(death),
                             has_revinfo, 1});
        }
      }

      // Births of the non-validating population.
      {
        const std::size_t births = invalid_births[static_cast<std::size_t>(s)];
        for (std::size_t c = 0; c < births; ++c) {
          UntrustedIssuer& u = untrusted[c % untrusted.size()];
          const std::uint64_t n = ++u.serial_counter;
          tbs.serial =
              MakeSerial(12,
                         static_cast<std::uint8_t>(
                             0xC0 + (c % untrusted.size())),
                         n + 1);
          tbs.issuer = u.name;
          // Device certs reuse a bounded name pool (routers, appliances).
          tbs.subject = x509::Name::FromCommonName(
              "device" + std::to_string(n % 100'000) + ".local");
          const std::int64_t lifetime =
              (rng.Chance(0.5) ? 365 : 3'650) * util::kSecondsPerDay;
          if (s == 0) {
            const util::Timestamp earliest = std::max(
                times.issuance_start,
                study_start - lifetime + util::kSecondsPerDay);
            tbs.not_before = rng.UniformInt(earliest, study_start);
          } else {
            tbs.not_before = rng.UniformInt(
                scan_times[static_cast<std::size_t>(s - 1)] + 1, now);
          }
          tbs.not_after = tbs.not_before + lifetime;
          tbs.crl_urls.clear();
          tbs.ocsp_urls.clear();
          tbs.policies.clear();

          chain[0] = std::make_shared<const x509::Certificate>(
              x509::SignCertificate(tbs, u.key));
          chain[1] = u.cert;
          const core::CertCorpus::Row row = pipeline.Observe(chain);
          if (u.row == core::CertCorpus::kNoRow)
            u.row = pipeline.corpus().Find(u.cert->Fingerprint());

          const int death = std::max(s, scan_of(tbs.not_after));
          ++observed;
          if (death > s)
            alive.push_back({row, u.row, static_cast<std::uint8_t>(death),
                             0, 0});
        }
      }

      pipeline.EndScan();
      total_observations += observed;
      slo.Record("revinfo_coverage", now, with_revinfo, observed);
      slo.Record("chain_validity", now, chained, observed);
      std::fprintf(stderr,
                   "[scan %d/%d] t=%lld observed=%llu corpus=%zu alive=%zu "
                   "rss=%zuMB\n",
                   s + 1, num_scans, static_cast<long long>(now),
                   static_cast<unsigned long long>(observed),
                   pipeline.corpus().size(), alive.size(), PeakRssMb());
    }
  }
  const double ingest_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ingest_start)
          .count();
  alive.clear();
  alive.shrink_to_fit();

  {
    bench::BenchRun::Phase phase("finalize");
    pipeline.Finalize();
  }

  const core::CertCorpus& corpus = pipeline.corpus();
  const double ingest_cps =
      static_cast<double>(corpus.size()) / std::max(1e-9, ingest_wall);
  const double verify_cps =
      static_cast<double>(corpus.size()) /
      std::max(1e-9, pipeline.finalize_wall_seconds());

  // --- Synthesize the crawled-CRL view ------------------------------------
  std::vector<core::CrlSizeSample> samples;
  for (const SynthCa& ca : cas) {
    const std::size_t hidden = ca.spec.paper_hidden_revocations +
                               ca.spec.paper_offweb_revocations;
    const std::vector<double> weights = ZipfWeights(
        ca.spec.num_crls, ca.spec.shard_skew > 0 ? ca.spec.shard_skew : 0.0);
    for (int shard = 0; shard < ca.spec.num_crls; ++shard) {
      core::CrlSizeSample sample;
      sample.url = ca.ca->CrlUrl(shard);
      sample.ca_name = ca.spec.name;
      sample.entries =
          ca.shard_revoked[static_cast<std::size_t>(shard)] +
          static_cast<std::size_t>(
              std::llround(static_cast<double>(hidden) *
                           weights[static_cast<std::size_t>(shard)]));
      sample.bytes =
          160 + sample.entries *
                    (22 + static_cast<std::size_t>(ca.spec.serial_bytes));
      sample.cert_weight = static_cast<double>(
          ca.shard_weight[static_cast<std::size_t>(shard)]);
      samples.push_back(std::move(sample));
    }
  }

  // --- Analyses ------------------------------------------------------------
  core::DatasetStats stats;
  {
    bench::BenchRun::Phase phase("analysis_dataset_stats");
    stats = core::ComputeDatasetStats(pipeline);
  }
  std::vector<core::RevocationTimelinePoint> timeline;
  {
    bench::BenchRun::Phase phase("analysis_timeline");
    timeline = core::ComputeRevocationTimeline(
        pipeline, db, study_start, study_end, 14 * util::kSecondsPerDay);
  }
  std::vector<core::AdoptionPoint> adoption;
  {
    bench::BenchRun::Phase phase("analysis_adoption");
    adoption = core::ComputeRevinfoAdoption(pipeline);
  }
  std::vector<core::CaStatsRow> table1;
  {
    bench::BenchRun::Phase phase("analysis_table1");
    const core::CaNameResolver resolver =
        [&url_to_ca_name](const std::string& url) {
          auto it = url_to_ca_name.find(url);
          return it == url_to_ca_name.end() ? std::string() : it->second;
        };
    table1 = core::ComputeTable1(samples, pipeline, db, resolver);
  }

  const std::size_t peak_rss_mb = PeakRssMb();
  const core::RevocationTimelinePoint& last_point = timeline.back();

  core::TextTable table({"metric", "measured", "paper"});
  table.AddRow({"unique certificates", std::to_string(stats.unique_certs),
                "38,514,130"});
  table.AddRow({"Leaf Set", std::to_string(stats.leaf_set), "5,067,476"});
  table.AddRow({"Intermediate Set", std::to_string(stats.intermediate_set),
                "1,946"});
  table.AddRow({"revocation db entries", std::to_string(db.size()), "-"});
  table.AddRow({"fresh certs revoked (end of study)",
                core::FormatDouble(100 * last_point.FreshRevokedFraction(), 2) +
                    "%",
                "~8%"});
  table.AddRow({"ingest certs/sec",
                core::FormatDouble(ingest_cps, 0), "-"});
  table.AddRow({"verify certs/sec",
                core::FormatDouble(verify_cps, 0), "-"});
  table.AddRow({"peak RSS", std::to_string(peak_rss_mb) + " MB", "-"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Table 1 (top CAs by certificate count):\n");
  core::TextTable t1({"CA", "CRLs", "certs", "revoked", "avg CRL (KB)"});
  for (std::size_t i = 0; i < table1.size() && i < 12; ++i) {
    const core::CaStatsRow& row = table1[i];
    t1.AddRow({row.name, std::to_string(row.num_crls),
               std::to_string(row.total_certs),
               std::to_string(row.revoked_certs),
               core::FormatDouble(row.avg_crl_size_kb, 1)});
  }
  std::printf("%s\n", t1.Render().c_str());

  // --- JSON results --------------------------------------------------------
  std::string json = "{";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\"total_certs\": %zu, \"scans\": %d, \"observations\": %llu, "
      "\"leaf_set\": %zu, \"intermediate_set\": %zu, "
      "\"still_advertised\": %zu, \"revocations\": %zu, ",
      stats.unique_certs, num_scans,
      static_cast<unsigned long long>(total_observations), stats.leaf_set,
      stats.intermediate_set, stats.leaf_still_advertised, db.size());
  json += buf;
  std::snprintf(
      buf, sizeof(buf),
      "\"ingest_certs_per_sec\": %.1f, \"verify_certs_per_sec\": %.1f, "
      "\"ingest_wall_seconds\": %.3f, \"finalize_wall_seconds\": %.3f, "
      "\"peak_rss_mb\": %zu, ",
      ingest_cps, verify_cps, ingest_wall,
      pipeline.finalize_wall_seconds(), peak_rss_mb);
  json += buf;
  std::snprintf(
      buf, sizeof(buf),
      "\"arena_mb\": %zu, \"column_mb\": %zu, \"index_mb\": %zu, "
      "\"interner_mb\": %zu, ",
      corpus.arena_bytes() >> 20, corpus.column_bytes() >> 20,
      corpus.index_bytes() >> 20, corpus.interner_bytes() >> 20);
  json += buf;
  std::snprintf(
      buf, sizeof(buf),
      "\"fresh_revoked_fraction\": %.5f, \"alive_revoked_fraction\": %.5f, "
      "\"timeline_points\": %zu, \"adoption_points\": %zu, ",
      last_point.FreshRevokedFraction(), last_point.AliveRevokedFraction(),
      timeline.size(), adoption.size());
  json += buf;
  json += "\"table1\": [";
  for (std::size_t i = 0; i < table1.size() && i < 12; ++i) {
    const core::CaStatsRow& row = table1[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ca\": \"%s\", \"crls\": %zu, \"certs\": %zu, "
                  "\"revoked\": %zu, \"avg_crl_kb\": %.1f}",
                  i == 0 ? "" : ", ", row.name.c_str(), row.num_crls,
                  row.total_certs, row.revoked_certs, row.avg_crl_size_kb);
    json += buf;
  }
  json += "], \"slo\": ";
  json += slo.TimelineJson();
  json += "}";
  run.SetResults(json);

  // --- Gates ---------------------------------------------------------------
  int exit_code = 0;
  if (floor_cps > 0 && ingest_cps < floor_cps) {
    std::fprintf(stderr,
                 "GATE FAILURE: ingest %.1f certs/sec below REV_PAPER_FLOOR "
                 "%.1f\n",
                 ingest_cps, floor_cps);
    exit_code = 1;
  }
  if (rss_ceiling_mb > 0 &&
      static_cast<double>(peak_rss_mb) > rss_ceiling_mb) {
    std::fprintf(stderr,
                 "GATE FAILURE: peak RSS %zu MB above REV_PAPER_RSS_MB %.0f\n",
                 peak_rss_mb, rss_ceiling_mb);
    exit_code = 1;
  }
  if (exit_code == 0)
    std::printf("gates OK (floor %.0f certs/sec, ceiling %.0f MB)\n",
                floor_cps, rss_ceiling_mb);
  return exit_code;
}
