// Load bench for the serving frontend, three modes in one binary:
//
//   1. Per-request closed loop (legacy sweep): N client threads call
//      Serve() back-to-back — measures the synchronous path.
//   2. Batched closed loop (headline): the same mix submitted through
//      ServeBatch() in batches, sweeping the thread count. Latency is the
//      amortized per-request cost (batch wall / batch size) — the quantity
//      the batch path exists to optimize.
//   3. Open loop: one paced submitter offers batches at a target rate and
//      the achieved rate is recorded against it (offered above capacity
//      degenerates to closed-loop and reports the capacity ceiling).
//
// Reports QPS, latency quantiles (p50/p95/p99), and the cache hit-rate,
// and writes every sweep plus the pre-refactor baseline trajectory to
// BENCH_serve.json (scripts/ci.sh greps that file for the QPS-regression
// smoke).
//
// Environment knobs:
//   REV_SERVE_CERTS    population size per run        (default 20000)
//   REV_SERVE_OPS      requests per client thread     (default 50000)
//   REV_SERVE_THREADS  comma list for the sweep       (default "1,2,4,8")
//   REV_SERVE_SHED     per-shard admission budget     (default 128)
//   REV_SERVE_BATCH    ServeBatch submission size     (default 256)
//   REV_SERVE_RATES    open-loop offered QPS list     (default
//                      "1000000,2000000,4000000,8000000")
//   REV_SERVE_FLOOR    QPS floor for the exit code    (default 100000;
//                      0 disables — for sanitizer builds)
//   REV_SERVE_FAULTS   faults mode: 0 disables        (default 1)
//   REV_SERVE_FAULT_OPS   ops/client in faults mode   (default 2000)
//   REV_SERVE_FAULT_SEED  FaultPlan seed              (default 0xBEEF)
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "net/fault.h"
#include "net/retry.h"
#include "net/simnet.h"
#include "obs/distrace.h"
#include "obs/slo.h"
#include "ocsp/ocsp.h"
#include "ocsp/responder.h"
#include "serve/frontend.h"
#include "util/stats.h"
#include "x509/name.h"

using namespace rev;

namespace {

constexpr util::Timestamp kNow = 1'427'760'000;  // 2015-03-31

std::size_t SizeFromEnv(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

std::vector<unsigned> ThreadSweepFromEnv() {
  const char* env = std::getenv("REV_SERVE_THREADS");
  const std::string spec = env != nullptr ? env : "1,2,4,8";
  std::vector<unsigned> sweep;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const int v = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (v > 0) sweep.push_back(static_cast<unsigned>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (sweep.empty()) sweep = {1};
  return sweep;
}

x509::Certificate MakeIssuerCert() {
  x509::TbsCertificate tbs;
  tbs.serial = x509::Serial{0x77};
  tbs.issuer = tbs.subject = x509::Name::Make("Serve Bench CA", "Bench");
  tbs.not_before = 0;
  tbs.not_after = kNow + 400 * util::kSecondsPerDay;
  tbs.public_key = crypto::SimKeyFromLabel("serve-bench").Public();
  tbs.basic_constraints = {true, -1};
  return x509::SignCertificate(tbs, crypto::SimKeyFromLabel("serve-bench"));
}

x509::Serial SerialOf(std::size_t i) {
  // Leading byte is fixed, nonzero, and < 0x80 so the serial survives DER
  // INTEGER round-trips unchanged (leading zeros would be normalized away
  // and the parsed request would never match the index key).
  x509::Serial serial(8);
  serial[0] = 0x4D;
  for (int b = 1; b < 8; ++b)
    serial[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>((i >> (8 * (7 - b))) & 0xFF);
  return serial;
}

struct SweepPoint {
  unsigned clients = 0;
  double wall_seconds = 0;
  double qps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double hit_rate = 0;
  std::uint64_t requests = 0;
  std::uint64_t shed = 0;
};

// The request mix, mirroring what a responder for a mature CA sees: almost
// all traffic re-asks about known-good certs (cache hits), a sliver asks
// about revoked or never-issued serials.
struct Mix {
  double revoked = 0.08;   // revoked population share, also queried
  double unknown = 0.02;   // serials the CA never issued
};

SweepPoint RunOnce(unsigned clients, std::size_t num_certs,
                   std::size_t ops_per_client, std::size_t shed_budget) {
  const x509::Certificate issuer = MakeIssuerCert();
  ocsp::Responder responder(issuer, crypto::SimKeyFromLabel("serve-bench"));

  const Mix mix;
  const auto num_revoked =
      static_cast<std::size_t>(static_cast<double>(num_certs) * mix.revoked);
  for (std::size_t i = 0; i < num_certs; ++i) {
    responder.AddCertificate(SerialOf(i));
    if (i < num_revoked)
      responder.Revoke(SerialOf(i), kNow - 1000,
                       x509::ReasonCode::kKeyCompromise);
  }

  serve::FrontendOptions options;
  options.per_shard_queue = shed_budget;
  options.threads = clients;
  // Server-side accounting stays on: since the lock-free histogram replaced
  // the mutex-guarded accumulator it no longer serializes the hot path, and
  // the bench doubles as its overhead regression check.
  options.record_latency = true;
  serve::Frontend frontend(options);
  frontend.AttachResponder(&responder);
  frontend.RebuildAll(kNow);  // precompute: steady-state responder

  // Pre-encode the request population so the closed loop measures the
  // server, not the client's encoder. Unknown serials sit past num_certs.
  const std::size_t population =
      num_certs + static_cast<std::size_t>(
                      static_cast<double>(num_certs) * mix.unknown);
  std::vector<Bytes> requests(population);
  for (std::size_t i = 0; i < population; ++i) {
    ocsp::OcspRequest request;
    request.cert_ids = {ocsp::MakeCertId(issuer, SerialOf(i))};
    requests[i] = ocsp::EncodeOcspRequest(request);
  }

  std::vector<std::vector<double>> latencies(clients);
  for (auto& samples : latencies) samples.reserve(ops_per_client);
  std::vector<std::thread> threads;
  const auto wall_start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      // Deterministic per-thread walk with a large co-prime stride, so
      // every client touches the whole population in a different order.
      std::size_t at = (t * 7919) % population;
      for (std::size_t op = 0; op < ops_per_client; ++op) {
        // Conditional subtract, not `%`: a 64-bit divide per op is
        // measurable against a sub-microsecond server.
        at += 7919;
        while (at >= population) at -= population;
        const auto start = std::chrono::steady_clock::now();
        const auto result = frontend.Serve(requests[at], kNow);
        const double micros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count();
        latencies[t].push_back(micros);
        if (result.http_status == 200 && !result.body) std::abort();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();

  util::Distribution merged;
  for (const std::vector<double>& samples : latencies)
    for (double micros : samples) merged.Add(micros);

  const serve::Frontend::Counters counters = frontend.counters();
  SweepPoint point;
  point.clients = clients;
  point.wall_seconds = wall;
  point.requests = counters.requests;
  point.shed = counters.shed;
  point.qps = wall > 0 ? static_cast<double>(counters.requests) / wall : 0;
  point.p50_us = merged.Quantile(0.50);
  point.p95_us = merged.Quantile(0.95);
  point.p99_us = merged.Quantile(0.99);
  const std::uint64_t lookups = counters.cache_hits + counters.cache_misses +
                                counters.cache_expired;
  point.hit_rate = lookups > 0 ? static_cast<double>(counters.cache_hits) /
                                     static_cast<double>(lookups)
                               : 0;
  return point;
}

// Two pre-refactor reference points, both recorded in BENCH_serve.json so
// the before/after trajectory survives the refactor:
//
//   - The PR 2 *instrumented* sweep (ROADMAP item 1's referent): ~47k QPS
//     with p99 two orders above p50 — the mutex-guarded latency
//     accumulator serialized the hot path. The acceptance bar is >= 5x
//     this at equal-or-better p50 with p99/p50 < 10.
//   - The synchronous per-request peak re-measured on this box at the
//     commit immediately before the event-driven core landed (peak of
//     the 1/2/4/8-client direct closed loop, accounting already
//     lock-free) — the harsher apples-to-apples comparison.
//
// ci.sh greps the summary line below and enforces no regression beneath
// the committed trajectory.
constexpr double kInstrumentedBaselineQps = 47000;
constexpr double kPreRefactorPeakQps = 504126;
constexpr double kPreRefactorP50Us = 1.33;
constexpr double kPreRefactorP99Us = 13.81;

// Shared bench world: seeded responder + frontend + pre-encoded request
// population, so every mode measures the server rather than its own setup.
struct BenchWorld {
  x509::Certificate issuer;
  std::unique_ptr<ocsp::Responder> responder;
  std::unique_ptr<serve::Frontend> frontend;
  std::vector<Bytes> requests;

  BenchWorld(std::size_t num_certs, serve::FrontendOptions options)
      : issuer(MakeIssuerCert()) {
    responder = std::make_unique<ocsp::Responder>(
        issuer, crypto::SimKeyFromLabel("serve-bench"));
    const Mix mix;
    const auto num_revoked =
        static_cast<std::size_t>(static_cast<double>(num_certs) * mix.revoked);
    for (std::size_t i = 0; i < num_certs; ++i) {
      responder->AddCertificate(SerialOf(i));
      if (i < num_revoked)
        responder->Revoke(SerialOf(i), kNow - 1000,
                          x509::ReasonCode::kKeyCompromise);
    }
    frontend = std::make_unique<serve::Frontend>(options);
    frontend->AttachResponder(responder.get());
    frontend->RebuildAll(kNow);  // precompute: steady-state responder

    const std::size_t population =
        num_certs + static_cast<std::size_t>(
                        static_cast<double>(num_certs) * mix.unknown);
    requests.resize(population);
    for (std::size_t i = 0; i < population; ++i) {
      ocsp::OcspRequest request;
      request.cert_ids = {ocsp::MakeCertId(issuer, SerialOf(i))};
      requests[i] = ocsp::EncodeOcspRequest(request);
    }
  }
};

SweepPoint PointFromCounters(const serve::Frontend& frontend, unsigned clients,
                             double wall, const util::Distribution& merged) {
  const serve::Frontend::Counters counters = frontend.counters();
  SweepPoint point;
  point.clients = clients;
  point.wall_seconds = wall;
  point.requests = counters.requests;
  point.shed = counters.shed;
  point.qps = wall > 0 ? static_cast<double>(counters.requests) / wall : 0;
  point.p50_us = merged.Quantile(0.50);
  point.p95_us = merged.Quantile(0.95);
  point.p99_us = merged.Quantile(0.99);
  const std::uint64_t lookups = counters.cache_hits + counters.cache_misses +
                                counters.cache_expired;
  point.hit_rate = lookups > 0 ? static_cast<double>(counters.cache_hits) /
                                     static_cast<double>(lookups)
                               : 0;
  return point;
}

// Batched closed loop: each client thread submits its walk through the
// population as ServeBatch calls of `batch_size`. The latency samples are
// amortized per-request costs, weighted by batch size in the merged
// distribution.
SweepPoint RunBatchOnce(unsigned clients, std::size_t num_certs,
                        std::size_t ops_per_client, std::size_t shed_budget,
                        std::size_t batch_size) {
  serve::FrontendOptions options;
  // Few shards = large per-shard sub-batches = better amortization of the
  // snapshot copy and cache lock; the watermark is sized so a full burst
  // of every client's in-flight batch never sheds (throughput bench, not
  // an overload test).
  options.num_shards = 4;
  options.per_shard_queue =
      std::max<std::size_t>(shed_budget, clients * batch_size);
  options.max_batch = 256;
  options.threads = clients;
  options.record_latency = true;
  BenchWorld world(num_certs, options);
  const std::size_t population = world.requests.size();
  const std::size_t batches_per_client =
      std::max<std::size_t>(1, ops_per_client / batch_size);

  // Per-thread (amortized-latency, batch-weight) samples, merged after the
  // run.
  std::vector<std::vector<std::pair<double, double>>> latencies(clients);
  for (auto& samples : latencies) samples.reserve(batches_per_client);
  std::vector<std::thread> threads;
  const auto wall_start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      std::size_t at = (t * 7919) % population;
      std::vector<BytesView> batch(batch_size);
      for (std::size_t b = 0; b < batches_per_client; ++b) {
        for (std::size_t i = 0; i < batch_size; ++i) {
          at += 7919;
          while (at >= population) at -= population;
          batch[i] = BytesView(world.requests[at]);
        }
        const auto start = std::chrono::steady_clock::now();
        const auto results = world.frontend->ServeBatch(batch, kNow);
        const double micros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count();
        latencies[t].emplace_back(micros / static_cast<double>(batch_size),
                                  static_cast<double>(batch_size));
        for (const auto& result : results)
          if (result.http_status == 200 && !result.body) std::abort();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();

  util::Distribution merged;
  for (const auto& samples : latencies)
    for (const auto& [micros, weight] : samples) merged.Add(micros, weight);
  return PointFromCounters(*world.frontend, clients, wall, merged);
}

// Open loop: batches are offered at `offered_qps` by one paced submitter.
// When the target inter-batch gap exceeds the service time the submitter
// waits out the difference (achieved ~= offered); past the capacity knee
// the pacing deadline is always in the past and the run reports the
// capacity ceiling instead.
struct OpenLoopPoint {
  double offered_qps = 0;
  double achieved_qps = 0;
  double p50_us = 0, p99_us = 0;
  std::uint64_t requests = 0;
  std::uint64_t shed = 0;
};

OpenLoopPoint RunOpenLoopOnce(double offered_qps, std::size_t num_certs,
                              std::size_t total_ops, std::size_t shed_budget,
                              std::size_t batch_size) {
  serve::FrontendOptions options;
  options.num_shards = 4;
  options.per_shard_queue = std::max<std::size_t>(shed_budget, batch_size);
  options.max_batch = 256;
  options.record_latency = true;
  BenchWorld world(num_certs, options);
  const std::size_t population = world.requests.size();
  const std::size_t batches = std::max<std::size_t>(1, total_ops / batch_size);

  util::Distribution merged;
  std::size_t at = 0;
  std::vector<BytesView> batch(batch_size);
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < batches; ++b) {
    // Pace: batch b is due at b * batch / offered; never submit early.
    const auto due =
        wall_start + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(
                             static_cast<double>(b * batch_size) /
                             offered_qps));
    while (std::chrono::steady_clock::now() < due) {
    }
    for (std::size_t i = 0; i < batch_size; ++i) {
      at += 7919;
      while (at >= population) at -= population;
      batch[i] = BytesView(world.requests[at]);
    }
    const auto start = std::chrono::steady_clock::now();
    world.frontend->ServeBatch(batch, kNow);
    const double micros = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    merged.Add(micros / static_cast<double>(batch_size),
               static_cast<double>(batch_size));
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();

  const serve::Frontend::Counters counters = world.frontend->counters();
  OpenLoopPoint point;
  point.offered_qps = offered_qps;
  point.requests = counters.requests;
  point.shed = counters.shed;
  point.achieved_qps =
      wall > 0 ? static_cast<double>(counters.requests) / wall : 0;
  point.p50_us = merged.Quantile(0.50);
  point.p99_us = merged.Quantile(0.99);
  return point;
}

std::vector<double> RatesFromEnv() {
  const char* env = std::getenv("REV_SERVE_RATES");
  const std::string spec =
      env != nullptr ? env : "1000000,2000000,4000000,8000000";
  std::vector<double> rates;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const double v = std::atof(spec.substr(pos, comma - pos).c_str());
    if (v > 0) rates.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (rates.empty()) rates = {1'000'000};
  return rates;
}

// -------------------------------------------------------- faults mode ----

// Faults mode (docs/fault-injection.md): the same closed loop, but routed
// through a SimNet host so a seeded FaultPlan can batter the wire — 503
// bursts, hung requests, corrupted response bodies — while the clients use
// FetchWithRetry. Run once clean and once under the storm; the delta is
// the cost of resilience: QPS/p99 degradation and the retry amplification
// (wire requests per logical request) the storm induces.
struct FaultsPoint {
  double wall_seconds = 0;
  double qps = 0;
  double p50_us = 0, p99_us = 0;
  std::uint64_t logical = 0;   // PostWithRetry calls
  std::uint64_t wire = 0;      // attempts that hit the (virtual) wire
  std::uint64_t gave_up = 0;   // logical requests that exhausted retries
  std::uint64_t injected = 0;  // faults the plan fired
  std::uint64_t shed = 0;
  double amplification = 1.0;  // wire / logical
};

// SLO windows in faults mode: the closed loop runs at one fixed virtual
// instant, so windows are synthesized from op progress instead — each
// client's op stream is cut into kSloWindows equal slices, slice w of
// every client mapping to virtual window `window_base + w`. The tallies
// are merged in client order, so the timeline is thread-count-invariant.
constexpr std::size_t kSloWindows = 8;

// When non-null, per-window (requests, answered, fast) tallies are
// recorded into `slo` — "fast" meaning the whole retry ladder resolved
// within 2 virtual seconds.
FaultsPoint RunFaultsOnce(unsigned clients, std::size_t num_certs,
                          std::size_t ops_per_client, net::FaultPlan* plan,
                          obs::SloMonitor* slo = nullptr,
                          std::int64_t window_base = 0) {
  const x509::Certificate issuer = MakeIssuerCert();
  ocsp::Responder responder(issuer, crypto::SimKeyFromLabel("serve-bench"));
  for (std::size_t i = 0; i < num_certs; ++i)
    responder.AddCertificate(SerialOf(i));

  serve::Frontend frontend;
  frontend.AttachResponder(&responder);
  frontend.RebuildAll(kNow);

  net::SimNet net;
  net.AddHost("ocsp.bench",
              [&](const net::HttpRequest& request, util::Timestamp now) {
                return frontend.HandleHttp(request, now);
              });
  if (plan != nullptr) net.SetFaultPlan(plan);

  std::vector<Bytes> requests(num_certs);
  for (std::size_t i = 0; i < num_certs; ++i) {
    ocsp::OcspRequest request;
    request.cert_ids = {ocsp::MakeCertId(issuer, SerialOf(i))};
    requests[i] = ocsp::EncodeOcspRequest(request);
  }

  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 1;  // virtual seconds: no wall sleeping
  policy.jitter = 0.5;
  policy.seed = 42;
  const auto validate = [](const net::HttpResponse& response) {
    return ocsp::ParseOcspResponse(response.body).has_value();
  };

  struct WindowTally {
    std::uint64_t n = 0, ok = 0, fast = 0;
  };
  const std::size_t ops_per_window =
      std::max<std::size_t>(1, ops_per_client / kSloWindows);

  std::atomic<std::uint64_t> gave_up{0};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::vector<WindowTally>> tallies(
      clients, std::vector<WindowTally>(kSloWindows));
  for (auto& samples : latencies) samples.reserve(ops_per_client);
  std::vector<std::thread> threads;
  const auto wall_start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      std::size_t at = t * 7919;
      for (std::size_t op = 0; op < ops_per_client; ++op) {
        at = (at + 7919) % num_certs;
        // Unique path per logical request so the plan's per-exchange coin
        // flips are independent (and reproducible: they only depend on the
        // URL, the virtual time, and the plan seed).
        const std::string url = "http://ocsp.bench/q/" + std::to_string(t) +
                                "/" + std::to_string(op);
        const auto start = std::chrono::steady_clock::now();
        const net::RetryResult result = net::PostWithRetry(
            net, url, requests[at], kNow, policy, 10.0, validate);
        latencies[t].push_back(std::chrono::duration<double, std::micro>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
        if (result.gave_up) gave_up.fetch_add(1, std::memory_order_relaxed);
        WindowTally& window =
            tallies[t][std::min(op / ops_per_window, kSloWindows - 1)];
        ++window.n;
        if (!result.gave_up) ++window.ok;
        if (!result.gave_up && result.total_elapsed_seconds <= 2.0)
          ++window.fast;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();

  util::Distribution merged;
  for (const std::vector<double>& samples : latencies)
    for (double micros : samples) merged.Add(micros);

  if (slo != nullptr) {
    // Client-order merge, one Record per synthesized window.
    for (std::size_t w = 0; w < kSloWindows; ++w) {
      WindowTally total;
      for (unsigned t = 0; t < clients; ++t) {
        total.n += tallies[t][w].n;
        total.ok += tallies[t][w].ok;
        total.fast += tallies[t][w].fast;
      }
      const auto when = static_cast<util::Timestamp>(
          (window_base + static_cast<std::int64_t>(w)) * 60);
      slo->Record("availability", when, total.ok, total.n);
      slo->Record("latency_fast", when, total.fast, total.n);
    }
  }

  FaultsPoint point;
  point.wall_seconds = wall;
  point.logical = static_cast<std::uint64_t>(clients) * ops_per_client;
  point.wire = net.total_requests();
  point.gave_up = gave_up.load();
  point.injected = plan != nullptr ? plan->total_injected() : 0;
  point.shed = frontend.counters().shed;
  point.qps =
      wall > 0 ? static_cast<double>(point.logical) / wall : 0;
  point.p50_us = merged.Quantile(0.50);
  point.p99_us = merged.Quantile(0.99);
  point.amplification =
      point.logical > 0 ? static_cast<double>(point.wire) /
                              static_cast<double>(point.logical)
                        : 1.0;
  return point;
}

// Smoke-check the observability exposition end to end: a frontend behind a
// SimNet host must answer `GET /metrics` with a text dump that contains its
// own labelled request counter. Returns true on success and prints the line
// scripts/ci.sh greps for.
bool MetricsEndpointSmoke() {
  const x509::Certificate issuer = MakeIssuerCert();
  ocsp::Responder responder(issuer, crypto::SimKeyFromLabel("serve-bench"));
  responder.AddCertificate(SerialOf(0));

  serve::Frontend frontend;
  frontend.AttachResponder(&responder);

  net::SimNet net;
  net.AddHost("metrics.bench", [&](const net::HttpRequest& request,
                                   util::Timestamp now) {
    return frontend.HandleHttp(request, now);
  });

  // One real OCSP request through the host first, so the counter the
  // exposition must carry is nonzero.
  ocsp::OcspRequest request;
  request.cert_ids = {ocsp::MakeCertId(issuer, SerialOf(0))};
  const net::FetchResult served = net.Post(
      "http://metrics.bench/", ocsp::EncodeOcspRequest(request), kNow);
  if (!served.ok()) return false;

  const net::FetchResult fetched =
      net.Get("http://metrics.bench/metrics", kNow);
  if (!fetched.ok()) return false;
  const std::string text(fetched.response.body.begin(),
                         fetched.response.body.end());
  const std::string want =
      "serve.requests{" + frontend.metrics_label() + "} 1";
  if (text.find(want) == std::string::npos) return false;
  std::printf("metrics endpoint: ok (%zu bytes, has \"%s\")\n", text.size(),
              want.c_str());
  return true;
}

}  // namespace

int main() {
  const std::size_t num_certs = SizeFromEnv("REV_SERVE_CERTS", 20'000);
  const std::size_t ops = SizeFromEnv("REV_SERVE_OPS", 50'000);
  const std::size_t shed_budget = SizeFromEnv("REV_SERVE_SHED", 128);
  const std::vector<unsigned> sweep = ThreadSweepFromEnv();

  bench::BenchRun run("serve");

  std::printf("==============================================================\n");
  std::printf("bench_serve — closed-loop load on the serving frontend\n");
  std::printf("certs=%zu ops/client=%zu shed-budget=%zu\n", num_certs, ops,
              shed_budget);
  std::printf("==============================================================\n\n");

  std::printf("%8s %12s %10s %10s %10s %10s %9s %8s\n", "clients", "QPS",
              "p50(us)", "p95(us)", "p99(us)", "hit-rate", "requests", "shed");
  std::vector<SweepPoint> points;
  {
    bench::BenchRun::Phase phase("serve.sweep");
    for (unsigned clients : sweep) {
      const SweepPoint point = RunOnce(clients, num_certs, ops, shed_budget);
      points.push_back(point);
      std::printf("%8u %12.0f %10.2f %10.2f %10.2f %9.1f%% %9llu %8llu\n",
                  point.clients, point.qps, point.p50_us, point.p95_us,
                  point.p99_us, point.hit_rate * 100,
                  static_cast<unsigned long long>(point.requests),
                  static_cast<unsigned long long>(point.shed));
    }
  }

  // Batched closed loop — the headline sweep for the event-driven core.
  const std::size_t batch_size = SizeFromEnv("REV_SERVE_BATCH", 256);
  std::printf("\nbatched closed loop (ServeBatch, batch=%zu, amortized "
              "per-request latency):\n",
              batch_size);
  std::printf("%8s %12s %10s %10s %10s %10s %9s %8s\n", "clients", "QPS",
              "p50(us)", "p95(us)", "p99(us)", "hit-rate", "requests", "shed");
  std::vector<SweepPoint> batch_points;
  {
    bench::BenchRun::Phase phase("serve.batch_sweep");
    for (unsigned clients : sweep) {
      const SweepPoint point =
          RunBatchOnce(clients, num_certs, ops, shed_budget, batch_size);
      batch_points.push_back(point);
      std::printf("%8u %12.0f %10.2f %10.2f %10.2f %9.1f%% %9llu %8llu\n",
                  point.clients, point.qps, point.p50_us, point.p95_us,
                  point.p99_us, point.hit_rate * 100,
                  static_cast<unsigned long long>(point.requests),
                  static_cast<unsigned long long>(point.shed));
    }
  }

  // Open loop: offered vs achieved, past and below the capacity knee.
  std::printf("\nopen loop (batch=%zu, single paced submitter):\n", batch_size);
  std::printf("%14s %14s %10s %10s %9s %8s\n", "offered", "achieved",
              "p50(us)", "p99(us)", "requests", "shed");
  std::vector<OpenLoopPoint> open_points;
  {
    bench::BenchRun::Phase phase("serve.open_loop");
    for (double rate : RatesFromEnv()) {
      const OpenLoopPoint point =
          RunOpenLoopOnce(rate, num_certs, ops, shed_budget, batch_size);
      open_points.push_back(point);
      std::printf("%14.0f %14.0f %10.2f %10.2f %9llu %8llu\n",
                  point.offered_qps, point.achieved_qps, point.p50_us,
                  point.p99_us,
                  static_cast<unsigned long long>(point.requests),
                  static_cast<unsigned long long>(point.shed));
    }
  }

  std::string results = "{\"certs\": " + std::to_string(num_certs) +
                        ", \"ops_per_client\": " + std::to_string(ops) +
                        ", \"sweep\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    char buffer[256];
    std::snprintf(buffer, sizeof buffer,
                  "%s{\"clients\": %u, \"qps\": %.0f, \"p50_us\": %.2f, "
                  "\"p95_us\": %.2f, \"p99_us\": %.2f, \"hit_rate\": %.4f, "
                  "\"requests\": %llu, \"shed\": %llu}",
                  i == 0 ? "" : ", ", p.clients, p.qps, p.p50_us, p.p95_us,
                  p.p99_us, p.hit_rate,
                  static_cast<unsigned long long>(p.requests),
                  static_cast<unsigned long long>(p.shed));
    results += buffer;
  }
  results += "], \"batch_sweep\": [";
  for (std::size_t i = 0; i < batch_points.size(); ++i) {
    const SweepPoint& p = batch_points[i];
    char buffer[256];
    std::snprintf(buffer, sizeof buffer,
                  "%s{\"clients\": %u, \"qps\": %.0f, \"p50_us\": %.2f, "
                  "\"p95_us\": %.2f, \"p99_us\": %.2f, \"hit_rate\": %.4f, "
                  "\"requests\": %llu, \"shed\": %llu}",
                  i == 0 ? "" : ", ", p.clients, p.qps, p.p50_us, p.p95_us,
                  p.p99_us, p.hit_rate,
                  static_cast<unsigned long long>(p.requests),
                  static_cast<unsigned long long>(p.shed));
    results += buffer;
  }
  results += "], \"open_loop\": [";
  for (std::size_t i = 0; i < open_points.size(); ++i) {
    const OpenLoopPoint& p = open_points[i];
    char buffer[256];
    std::snprintf(buffer, sizeof buffer,
                  "%s{\"offered_qps\": %.0f, \"achieved_qps\": %.0f, "
                  "\"p50_us\": %.2f, \"p99_us\": %.2f, \"requests\": %llu, "
                  "\"shed\": %llu}",
                  i == 0 ? "" : ", ", p.offered_qps, p.achieved_qps, p.p50_us,
                  p.p99_us, static_cast<unsigned long long>(p.requests),
                  static_cast<unsigned long long>(p.shed));
    results += buffer;
  }

  // The before/after trajectory: the committed pre-refactor peaks against
  // this run's best batched point. "Best" is throughput at the tail SLO —
  // the highest-QPS point whose p99/p50 stays under 10 — because a
  // closed-loop point that wins on raw QPS while context-switch noise
  // blows out its tail (routine with more clients than cores) is not an
  // operating point anyone would pick. Raw max is the fallback if no
  // point meets the SLO; every point is in the JSON either way.
  double batch_peak_qps = 0;
  double batch_peak_p50 = 0, batch_peak_p99 = 0;
  bool peak_meets_slo = false;
  for (const SweepPoint& p : batch_points) {
    const bool meets_slo = p.p50_us > 0 && p.p99_us / p.p50_us < 10;
    const bool better = peak_meets_slo == meets_slo ? p.qps > batch_peak_qps
                                                    : meets_slo;
    if (better) {
      batch_peak_qps = p.qps;
      batch_peak_p50 = p.p50_us;
      batch_peak_p99 = p.p99_us;
      peak_meets_slo = meets_slo;
    }
  }
  const double speedup_instrumented =
      batch_peak_qps / kInstrumentedBaselineQps;
  const double speedup_peak = batch_peak_qps / kPreRefactorPeakQps;
  {
    char buffer[768];
    std::snprintf(
        buffer, sizeof buffer,
        "], \"batch_size\": %zu, "
        "\"baseline_instrumented_pr2\": {\"qps\": %.0f}, "
        "\"baseline_pre_refactor_peak\": {\"qps\": %.0f, \"p50_us\": %.2f, "
        "\"p99_us\": %.2f, \"clients\": 8}, "
        "\"batch_peak\": {\"qps\": %.0f, \"p50_us\": %.2f, \"p99_us\": %.2f}, "
        "\"speedup_vs_instrumented_baseline\": %.2f, "
        "\"speedup_vs_pre_refactor_peak\": %.2f",
        batch_size, kInstrumentedBaselineQps, kPreRefactorPeakQps,
        kPreRefactorP50Us, kPreRefactorP99Us, batch_peak_qps, batch_peak_p50,
        batch_peak_p99, speedup_instrumented, speedup_peak);
    results += buffer;
  }

  // Faults mode: clean vs storm through the same SimNet path.
  bool faults_ok = true;
  bool faults_on = true;
  if (const char* env = std::getenv("REV_SERVE_FAULTS"))
    faults_on = std::atoi(env) != 0;
  if (faults_on) {
    const std::size_t fault_ops = SizeFromEnv("REV_SERVE_FAULT_OPS", 2'000);
    const std::size_t fault_certs = std::min<std::size_t>(num_certs, 2'000);
    const auto seed =
        static_cast<std::uint64_t>(SizeFromEnv("REV_SERVE_FAULT_SEED", 0xBEEF));
    net::FaultPlan plan(seed);
    net::FaultRule burst;
    burst.kind = net::FaultKind::kHttpError;
    burst.http_status = 503;
    burst.retry_after = 1;
    burst.probability = 0.08;
    plan.AddRule(burst);
    net::FaultRule hang;
    hang.kind = net::FaultKind::kTimeout;
    hang.probability = 0.05;
    plan.AddRule(hang);
    net::FaultRule corrupt;
    corrupt.kind = net::FaultKind::kCorrupt;
    corrupt.probability = 0.05;
    corrupt.corrupt_bytes = 2;
    plan.AddRule(corrupt);

    bench::BenchRun::Phase phase("serve.faults");
    const unsigned fault_clients = 4;
    // Both runs feed one SLO monitor: clean windows at virtual offset 0,
    // storm windows far later — the burn-rate engine must page only in
    // the storm range.
    obs::SloMonitor slo;
    slo.AddObjective({.name = "availability",
                      .objective = 0.999,
                      .window_seconds = 60,
                      .short_windows = 1,
                      .long_windows = 3,
                      .burn_threshold = 4.0});
    slo.AddObjective({.name = "latency_fast",
                      .objective = 0.99,
                      .window_seconds = 60,
                      .short_windows = 1,
                      .long_windows = 3,
                      .burn_threshold = 4.0});
    constexpr std::int64_t kStormWindowBase = 10'000;
    const FaultsPoint clean = RunFaultsOnce(fault_clients, fault_certs,
                                            fault_ops, nullptr, &slo, 0);
    const FaultsPoint storm = RunFaultsOnce(
        fault_clients, fault_certs, fault_ops, &plan, &slo, kStormWindowBase);
    const double qps_ratio = clean.qps > 0 ? storm.qps / clean.qps : 0;
    const double p99_ratio = clean.p99_us > 0 ? storm.p99_us / clean.p99_us : 0;

    std::uint64_t slo_alerts = 0, slo_clean_alerts = 0;
    for (const auto& alert : slo.AlertTimeline()) {
      ++slo_alerts;
      if (alert.window_start < kStormWindowBase * 60) ++slo_clean_alerts;
    }
    const bool slo_ok = slo_clean_alerts == 0 && slo_alerts > 0;

    std::printf("\nfaults mode (seed %llu, %u clients x %zu ops):\n",
                static_cast<unsigned long long>(seed), fault_clients,
                fault_ops);
    std::printf("  %-8s %12s %10s %10s %8s %8s %8s\n", "", "QPS", "p50(us)",
                "p99(us)", "amplif", "gave-up", "injected");
    std::printf("  %-8s %12.0f %10.2f %10.2f %8.3f %8llu %8llu\n", "clean",
                clean.qps, clean.p50_us, clean.p99_us, clean.amplification,
                static_cast<unsigned long long>(clean.gave_up),
                static_cast<unsigned long long>(clean.injected));
    std::printf("  %-8s %12.0f %10.2f %10.2f %8.3f %8llu %8llu\n", "storm",
                storm.qps, storm.p50_us, storm.p99_us, storm.amplification,
                static_cast<unsigned long long>(storm.gave_up),
                static_cast<unsigned long long>(storm.injected));
    std::printf("  degradation: QPS x%.3f, p99 x%.3f\n", qps_ratio, p99_ratio);
    std::printf("  slo: %llu alert windows (clean-phase %llu): %s\n",
                static_cast<unsigned long long>(slo_alerts),
                static_cast<unsigned long long>(slo_clean_alerts),
                slo_ok ? "OK" : "FAIL");

    // Traced retry probe: one storm-phase request rendered as a stitched
    // trace whose critical path must tile the measured end-to-end latency.
    auto& collector = obs::DistTraceCollector::Global();
    collector.Clear();
    collector.Enable();
    bool probe_ok = false;
    std::uint64_t probe_attempts = 0;
    double probe_elapsed = 0;
    std::size_t probe_hops = 0;
    std::string probe_trace_hex;
    std::string probe_hops_json;
    {
      const x509::Certificate issuer = MakeIssuerCert();
      ocsp::Responder responder(issuer, crypto::SimKeyFromLabel("serve-bench"));
      responder.AddCertificate(SerialOf(0));
      serve::Frontend frontend;
      frontend.AttachResponder(&responder);
      frontend.RebuildAll(kNow);
      net::SimNet probe_net;
      probe_net.AddHost("ocsp.bench",
                        [&](const net::HttpRequest& request,
                            util::Timestamp now) {
                          return frontend.HandleHttp(request, now);
                        });
      net::FaultPlan probe_plan(seed ^ 0x9E3779B97F4A7C15ull);
      net::FaultRule probe_burst;
      probe_burst.kind = net::FaultKind::kHttpError;
      probe_burst.http_status = 503;
      probe_burst.retry_after = 1;
      probe_burst.probability = 0.45;
      probe_plan.AddRule(probe_burst);
      probe_net.SetFaultPlan(&probe_plan);

      ocsp::OcspRequest ocsp_request;
      ocsp_request.cert_ids = {ocsp::MakeCertId(issuer, SerialOf(0))};
      const Bytes probe_body = ocsp::EncodeOcspRequest(ocsp_request);

      net::RetryPolicy probe_policy;
      probe_policy.max_attempts = 5;
      probe_policy.initial_backoff_seconds = 1;
      probe_policy.jitter = 0.5;
      probe_policy.seed = 42;
      for (std::uint64_t i = 0; i < 50 && !probe_ok; ++i) {
        collector.Clear();
        const obs::TraceId trace = obs::MakeTraceId(seed, 2'000 + i);
        const obs::SpanContext root{trace, obs::RootSpanId(trace)};
        net::HttpRequest request;
        request.method = "POST";
        request.host = "ocsp.bench";
        request.path = "/probe/" + std::to_string(i);
        request.body = probe_body;
        request.headers[obs::kTraceparentHeader] = obs::FormatTraceparent(root);
        const auto result =
            net::FetchWithRetry(probe_net, request, kNow, probe_policy, 30.0);
        if (!result.ok() || result.attempts < 2) continue;
        obs::DistSpan root_span;
        root_span.trace = root.trace;
        root_span.span = root.span;
        root_span.parent = 0;
        root_span.name = "probe.check";
        root_span.node = "probe";
        root_span.kind = obs::SpanKind::kInternal;
        root_span.status = result.fetch.response.status;
        root_span.start_ns = obs::VirtualNs(kNow, 0);
        root_span.end_ns = obs::VirtualNs(kNow, result.total_elapsed_seconds);
        collector.Record(root_span);
        const auto spans = collector.SnapshotTrace(root.trace);
        const auto path = obs::CriticalPath(spans);
        std::uint64_t path_ns = 0;
        for (const auto& segment : path) path_ns += segment.dur_ns();
        const double measured_ns = result.total_elapsed_seconds * 1e9;
        if (measured_ns <= 0 ||
            std::fabs(static_cast<double>(path_ns) - measured_ns) >
                0.01 * measured_ns)
          continue;
        probe_ok = true;
        probe_attempts = result.attempts;
        probe_elapsed = result.total_elapsed_seconds;
        probe_hops = path.size();
        probe_trace_hex = root.trace.Hex();
        for (const auto& segment : path) {
          char hop[256];
          std::snprintf(hop, sizeof hop,
                        "%s{\"name\": \"%s\", \"node\": \"%s\", "
                        "\"start_ns\": %llu, \"dur_ns\": %llu}",
                        probe_hops_json.empty() ? "" : ", ", segment.name,
                        segment.node,
                        static_cast<unsigned long long>(segment.start_ns),
                        static_cast<unsigned long long>(segment.dur_ns()));
          probe_hops_json += hop;
        }
      }
      probe_net.SetFaultPlan(nullptr);
    }
    collector.ExportFromEnv();
    collector.Disable();
    std::printf("  traced probe: %s (attempts %llu, %.3fs, critical path %zu "
                "hop%s, trace %s)\n",
                probe_ok ? "OK" : "FAIL",
                static_cast<unsigned long long>(probe_attempts), probe_elapsed,
                probe_hops, probe_hops == 1 ? "" : "s",
                probe_trace_hex.empty() ? "-" : probe_trace_hex.c_str());
    faults_ok = slo_ok && probe_ok;

    char buffer[512];
    std::snprintf(
        buffer, sizeof buffer,
        ", \"faults\": {\"seed\": %llu, \"clients\": %u, "
        "\"ops_per_client\": %zu, "
        "\"clean\": {\"qps\": %.0f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
        "\"amplification\": %.4f}, "
        "\"storm\": {\"qps\": %.0f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
        "\"amplification\": %.4f, \"gave_up\": %llu, \"injected\": %llu}, "
        "\"qps_degradation\": %.4f, \"p99_inflation\": %.4f, ",
        static_cast<unsigned long long>(seed), fault_clients, fault_ops,
        clean.qps, clean.p50_us, clean.p99_us, clean.amplification, storm.qps,
        storm.p50_us, storm.p99_us, storm.amplification,
        static_cast<unsigned long long>(storm.gave_up),
        static_cast<unsigned long long>(storm.injected), qps_ratio, p99_ratio);
    results += buffer;
    std::snprintf(
        buffer, sizeof buffer,
        "\"slo\": {\"alerts\": %llu, \"storm_phase_alerts\": %llu, "
        "\"clean_phase_alerts\": %llu, \"timeline\": ",
        static_cast<unsigned long long>(slo_alerts),
        static_cast<unsigned long long>(slo_alerts - slo_clean_alerts),
        static_cast<unsigned long long>(slo_clean_alerts));
    results += buffer;
    results += slo.TimelineJson();
    std::snprintf(
        buffer, sizeof buffer,
        "}, \"traced_probe\": {\"ok\": %s, \"trace\": \"%s\", "
        "\"attempts\": %llu, \"elapsed_seconds\": %.6f, "
        "\"critical_path\": [",
        probe_ok ? "true" : "false", probe_trace_hex.c_str(),
        static_cast<unsigned long long>(probe_attempts), probe_elapsed);
    results += buffer;
    results += probe_hops_json;
    results += "]}}";
  }

  results += "}";
  run.SetResults(std::move(results));

  std::printf("\n");
  const bool metrics_ok = MetricsEndpointSmoke();
  if (!metrics_ok) std::printf("metrics endpoint: FAILED\n");

  // The acceptance floor for the precomputed hot path: >=100k lookups/sec
  // at some point of any sweep (sanitizer builds disable it).
  double floor = 100'000;
  if (const char* env = std::getenv("REV_SERVE_FLOOR")) floor = std::atof(env);
  double best = 0;
  for (const SweepPoint& p : points) best = std::max(best, p.qps);
  for (const SweepPoint& p : batch_points) best = std::max(best, p.qps);
  const double p99_p50 =
      batch_peak_p50 > 0 ? batch_peak_p99 / batch_peak_p50 : 0;
  std::printf(
      "batch peak QPS %.0f (%.1fx PR 2 instrumented baseline %.0f, %.2fx "
      "pre-refactor peak %.0f; p50 %.2fus, p99/p50 %.2f)\n",
      batch_peak_qps, speedup_instrumented, kInstrumentedBaselineQps,
      speedup_peak, kPreRefactorPeakQps, batch_peak_p50, p99_p50);
  std::printf("peak QPS %.0f (floor %.0f/s: %s)\n", best, floor,
              best >= floor ? "meets" : "BELOW");
  if (!faults_ok) std::printf("faults-mode observability gates: FAILED\n");
  return best >= floor && metrics_ok && faults_ok ? 0 : 1;
}
