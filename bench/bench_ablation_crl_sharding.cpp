// Ablation (paper §9): "CAs can simply maintain more, smaller CRLs (in the
// extreme, each certificate could be assigned a unique CRL, resulting in an
// approximation of OCSP)". Sweeps the shard count of a fixed CA and
// measures the client-side cost of one revocation check.
#include "bench_common.h"
#include "crl/crl.h"

using namespace rev;

int main() {
  bench::PrintHeader(
      "Ablation — CRL sharding: client cost vs number of CRLs per CA",
      "few CAs shard aggressively (Table 1: 3–322 CRLs); more, smaller CRLs "
      "approach OCSP's per-check cost");

  constexpr std::int64_t kDay = util::kSecondsPerDay;
  const util::Timestamp now = util::MakeDate(2015, 3, 31);
  constexpr std::size_t kRevocations = 50'000;
  constexpr std::size_t kProbes = 200;

  core::TextTable table({"CRL shards", "avg CRL size", "avg fetch bytes",
                         "avg check latency (ms)", "vs 1 shard"});
  double baseline_bytes = 0;

  for (int shards : {1, 4, 16, 64, 256, 1024}) {
    util::Rng rng(500 + static_cast<std::uint64_t>(shards));
    ca::CertificateAuthority::Options options;
    options.name = "ShardCA" + std::to_string(shards);
    options.domain = "shardca" + std::to_string(shards) + ".sim";
    options.num_crl_shards = shards;
    auto ca = ca::CertificateAuthority::CreateRoot(options, rng,
                                                   now - 1000 * kDay);
    ca->AddSyntheticRevocations(kRevocations, rng, now - 300 * kDay, now - kDay,
                                now + 30 * kDay, now + 700 * kDay,
                                x509::ReasonCode::kNoReasonCode);
    net::SimNet net;
    ca->RegisterEndpoints(&net);

    // Issue probe certificates and check each one's CRL like a browser.
    ca::CertificateAuthority::IssueOptions issue;
    issue.not_before = now - 30 * kDay;
    double total_bytes = 0, total_seconds = 0, total_size = 0;
    for (std::size_t i = 0; i < kProbes; ++i) {
      issue.common_name = "probe" + std::to_string(i) + ".sim";
      const x509::CertPtr leaf = ca->Issue(issue, rng);
      const net::FetchResult fetch = net.Get(leaf->tbs.crl_urls[0], now);
      total_bytes += static_cast<double>(fetch.response.body.size());
      total_seconds += fetch.elapsed_seconds;
      total_size += static_cast<double>(fetch.response.body.size());
    }
    const double avg_bytes = total_bytes / kProbes;
    if (shards == 1) baseline_bytes = avg_bytes;
    table.AddRow({std::to_string(shards),
                  util::HumanBytes(total_size / kProbes),
                  util::HumanBytes(avg_bytes),
                  core::FormatDouble(total_seconds / kProbes * 1000, 1),
                  core::FormatDouble(baseline_bytes / avg_bytes, 1) + "x less"});
  }
  std::printf("%s\n", table.Render().c_str());

  // Reference: the OCSP cost for the same check.
  std::printf("reference: an OCSP exchange for the same check costs <1 KB\n"
              "(§5.2) — the 1024-shard column approaches it, confirming the\n"
              "paper's 'more, smaller CRLs' recommendation.\n");
  return 0;
}
