// Fig. 4: fraction of newly issued certificates carrying CRL / OCSP
// revocation pointers, by issuance month.
#include "bench_common.h"

using namespace rev;

int main() {
  bench::BenchRun run("fig4_revinfo_adoption");
  bench::PrintHeader(
      "Fig. 4 — revocation information in new certificates over time",
      "CRLs near-universal since 2011; OCSP lower early, jumping to ~100% "
      "with RapidSSL's adoption in July 2012");

  bench::World world = bench::World::Build(bench::ScaleFromEnv(),
                                           /*run_scans=*/true,
                                           /*run_crawl=*/false);
  bench::BenchRun::Phase analysis_phase("analysis");

  const auto points = core::ComputeRevinfoAdoption(*world.pipeline);
  core::TextTable table({"month", "issued", "with CRL", "with OCSP"});
  for (const core::AdoptionPoint& point : points) {
    if (point.issued < 10) continue;
    table.AddRow({util::FormatDate(point.month_start).substr(0, 7),
                  std::to_string(point.issued),
                  core::FormatDouble(point.CrlFraction(), 3),
                  core::FormatDouble(point.OcspFraction(), 3)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Shape check: OCSP fraction before vs after July 2012.
  double before = 0, after = 0;
  std::size_t before_n = 0, after_n = 0;
  for (const core::AdoptionPoint& point : points) {
    if (point.issued < 10) continue;
    if (point.month_start < util::MakeDate(2012, 7, 1)) {
      before += point.OcspFraction();
      ++before_n;
    } else {
      after += point.OcspFraction();
      ++after_n;
    }
  }
  std::printf("shape check: mean OCSP inclusion %.3f before July 2012 vs %.3f"
              " after\n(paper: visible jump when RapidSSL adopts OCSP).\n",
              before_n ? before / static_cast<double>(before_n) : 0,
              after_n ? after / static_cast<double>(after_n) : 0);
  return 0;
}
