#include "cascade/fleet.h"

#include <algorithm>

#include "obs/metrics.h"

namespace rev::cascade {

struct Fleet::Instruments {
  explicit Instruments(const std::string& label)
      : polls(Get("client.polls", label)),
        poll_failures(Get("client.poll_failures", label)),
        retries(Get("client.retries", label)),
        bytes_downloaded(Get("client.bytes_downloaded", label)),
        delta_updates(Get("client.delta_updates", label)),
        snapshot_updates(Get("client.snapshot_updates", label)),
        wrong_answers(Get("client.wrong_answers", label)),
        staleness_seconds(obs::MetricsRegistry::Global().GetHistogram(
            "client.staleness_seconds{" + label + "}")),
        window_seconds(obs::MetricsRegistry::Global().GetHistogram(
            "client.vuln_window_seconds{" + label + "}")) {}

  static obs::Counter& Get(const char* name, const std::string& label) {
    return obs::MetricsRegistry::Global().GetCounter(std::string(name) + "{" +
                                                     label + "}");
  }

  obs::Counter& polls;
  obs::Counter& poll_failures;
  obs::Counter& retries;
  obs::Counter& bytes_downloaded;
  obs::Counter& delta_updates;
  obs::Counter& snapshot_updates;
  obs::Counter& wrong_answers;
  obs::Histogram& staleness_seconds;
  obs::Histogram& window_seconds;
};

Fleet::Fleet(net::SimNet* net, Publisher* publisher, FleetOptions options)
    : net_(net),
      publisher_(publisher),
      options_(std::move(options)),
      metrics_label_("fleet=" + std::to_string(obs::NextInstanceId())),
      metrics_(std::make_unique<Instruments>(metrics_label_)) {
  std::vector<double> weights;
  weights.reserve(options_.cadences.size());
  for (const FleetOptions::Cadence& cadence : options_.cadences)
    weights.push_back(cadence.weight);

  util::Rng root(options_.seed);
  clients_.resize(options_.num_clients);
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    Client& client = clients_[i];
    client.rng = root.Fork(i);
    const std::size_t pick = weights.empty() ? 0 : client.rng.WeightedIndex(weights);
    client.interval = options_.cadences.empty()
                          ? util::kSecondsPerDay
                          : options_.cadences[pick].interval_seconds;
    if (client.interval <= 0) client.interval = util::kSecondsPerDay;
  }
}

Fleet::~Fleet() = default;

void Fleet::StepTo(util::Timestamp now) {
  if (!started_) {
    // First call primes the fleet: every client's first poll lands at a
    // per-client deterministic phase inside its own interval, so 10k
    // clients never stampede one instant.
    started_ = true;
    current_time_ = now;
    for (Client& client : clients_) {
      client.next_poll =
          now + static_cast<std::int64_t>(client.rng.NextBelow(
                    static_cast<std::uint64_t>(client.interval)));
    }
    return;
  }
  for (Client& client : clients_) {
    while (client.next_poll <= now) {
      Poll(client, client.next_poll);
      client.next_poll += client.interval;
    }
  }
  current_time_ = now;
}

void Fleet::Poll(Client& client, util::Timestamp now) {
  totals_.polls++;
  metrics_->polls.Increment();

  // Per-client jitter stream: decorrelates backoff across the fleet.
  net::RetryPolicy policy = options_.retry;
  policy.seed = options_.seed ^ (client.rng.Next() | 1);

  const std::string url =
      options_.delta_url + std::to_string(client.state.sequence());
  const net::RetryResult result = net::GetWithRetry(
      *net_, url, now, policy, options_.timeout_seconds,
      [](const net::HttpResponse& response) {
        return UpdateResponse::Deserialize(response.body).has_value();
      });

  totals_.retries += static_cast<std::uint64_t>(result.attempts - 1);
  metrics_->retries.Add(static_cast<std::uint64_t>(result.attempts - 1));
  totals_.bytes_downloaded += result.total_bytes;
  metrics_->bytes_downloaded.Add(result.total_bytes);

  if (!result.ok()) {
    totals_.failed_polls++;
    metrics_->poll_failures.Increment();
    return;  // client rides on its stale state until the next cadence tick
  }

  const util::Timestamp applied_at = result.finished_at;
  auto update = UpdateResponse::Deserialize(result.fetch.response.body);
  if (!update) {  // validator admitted it; cannot happen, but fail closed
    totals_.failed_polls++;
    metrics_->poll_failures.Increment();
    return;
  }

  const std::uint64_t old_sequence = client.state.sequence();
  switch (update->kind) {
    case UpdateResponse::Kind::kUpToDate:
      totals_.up_to_date_polls++;
      break;
    case UpdateResponse::Kind::kDeltas: {
      bool applied = true;
      for (const CascadeDelta& delta : update->deltas) {
        if (!client.state.ApplyDelta(delta)) {
          applied = false;
          break;
        }
      }
      if (!applied) {
        totals_.failed_polls++;
        metrics_->poll_failures.Increment();
        return;
      }
      totals_.delta_updates++;
      metrics_->delta_updates.Increment();
      break;
    }
    case UpdateResponse::Kind::kSnapshot: {
      auto cascade = FilterCascade::Deserialize(update->snapshot);
      if (!cascade) {
        totals_.failed_polls++;
        metrics_->poll_failures.Increment();
        return;
      }
      // Share one decoded cascade across the fleet when consecutive
      // clients download the same sequence (the wire bytes above are
      // still accounted per client).
      if (cached_snapshot_ == nullptr ||
          cached_snapshot_sequence_ != cascade->sequence ||
          !(*cached_snapshot_ == *cascade)) {
        cached_snapshot_ = std::make_shared<const FilterCascade>(
            std::move(*cascade));
        cached_snapshot_sequence_ = cached_snapshot_->sequence;
      }
      client.state.ResetTo(cached_snapshot_);
      totals_.snapshot_updates++;
      metrics_->snapshot_updates.Increment();
      break;
    }
  }

  // Vulnerability windows: revocations published in (old, new] were
  // exposed from their publish time until this client applied them.
  for (std::uint64_t seq = old_sequence + 1; seq <= client.state.sequence();
       ++seq) {
    const std::size_t added = publisher_->AddedAt(seq);
    const util::Timestamp published = publisher_->PublishTimeAt(seq);
    if (added == 0 || published == 0) continue;  // evicted or empty epoch
    const double window = static_cast<double>(
        std::max<util::Timestamp>(0, applied_at - published));
    windows_.Add(window, static_cast<double>(added));
    metrics_->window_seconds.RecordMany(
        static_cast<std::uint64_t>(window), added);
  }

  if (client.state.synced()) {
    const util::Timestamp published =
        publisher_->PublishTimeAt(client.state.sequence());
    if (published != 0) {
      const double stale =
          static_cast<double>(std::max<util::Timestamp>(0, applied_at - published));
      staleness_.Add(stale);
      metrics_->staleness_seconds.Record(static_cast<std::uint64_t>(stale));
    }
    Verify(client, applied_at);
  }
}

void Fleet::Verify(const Client& client, util::Timestamp /*now*/) {
  if (options_.verify_samples == 0) return;
  const std::uint64_t seq = client.state.sequence();
  const auto revoked = publisher_->RevokedAt(seq);
  const auto revoked_list = publisher_->RevokedListAt(seq);
  const auto universe = publisher_->UniverseAt(seq);
  if (revoked == nullptr || revoked_list == nullptr || universe == nullptr ||
      universe->empty())
    return;

  // Verification keys come from a deterministic side stream so the check
  // itself never perturbs the client's cadence/jitter randomness.
  util::Rng rng(options_.seed ^ (seq * 0x9E3779B97F4A7C15ull) ^
                client.state.overlay_size());
  // Universe side: catches false "revoked" (the exactness claim).
  for (std::size_t i = 0; i < options_.verify_samples; ++i) {
    const Bytes& key = (*universe)[rng.NextBelow(universe->size())];
    const bool truth = revoked->contains(key);
    const bool answer = client.state.IsRevoked(key);
    totals_.verified_lookups++;
    if (answer != truth) {
      totals_.wrong_answers++;
      metrics_->wrong_answers.Increment();
    }
  }
  // Revoked side: catches missed revocations (no false negatives).
  if (!revoked_list->empty()) {
    for (std::size_t i = 0; i < options_.verify_samples; ++i) {
      const Bytes& key = (*revoked_list)[rng.NextBelow(revoked_list->size())];
      totals_.verified_lookups++;
      if (!client.state.IsRevoked(key)) {
        totals_.wrong_answers++;
        metrics_->wrong_answers.Increment();
      }
    }
  }
}

util::Distribution Fleet::EndStaleness() const {
  util::Distribution distribution;
  for (const Client& client : clients_) {
    if (!client.state.synced()) continue;
    const util::Timestamp published =
        publisher_->PublishTimeAt(client.state.sequence());
    if (published == 0) continue;
    distribution.Add(static_cast<double>(
        std::max<util::Timestamp>(0, current_time_ - published)));
  }
  return distribution;
}

}  // namespace rev::cascade
