// The delta-update channel for the filter cascade.
//
// A cascade cannot be patched in place (every level's bit array depends on
// the whole key population), so the daily publisher ships the *key-set
// difference* between consecutive sequences instead: the keys newly
// revoked and the keys dropped. A client holds its last full snapshot plus
// an overlay of applied deltas; queries consult the overlay first (exact —
// the keys are explicit) and fall through to the cascade. Query answers
// after applying deltas N→M are therefore identical to a fresh snapshot at
// M for every key of the universe (tests/cascade_test.cpp pins this), at a
// tiny fraction of the bytes. When the overlay grows past the point where
// deltas stop paying, or a client is too stale for the publisher's
// retained history, the channel falls back to a full snapshot
// (publisher.h).
//
// Wire shapes (all FNV-1a sealed, versioned like the cascade format):
//   CascadeDelta      one sequence step: add/remove key sets
//   UpdateResponse    what `GET /cascade/delta?from=N` returns — up-to-date,
//                     a run of deltas, or a full-snapshot fallback
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cascade/cascade.h"
#include "util/bytes.h"

namespace rev::cascade {

struct CascadeDelta {
  std::uint64_t from_sequence = 0;
  std::uint64_t to_sequence = 0;
  std::vector<Bytes> added;    // newly revoked keys
  std::vector<Bytes> removed;  // keys no longer revoked (or retired)

  Bytes Serialize() const;
  static std::optional<CascadeDelta> Deserialize(BytesView data);

  friend bool operator==(const CascadeDelta&, const CascadeDelta&) = default;
};

// The publisher's answer to a delta poll.
struct UpdateResponse {
  enum class Kind : std::uint8_t {
    kUpToDate = 0,  // client already at the current sequence
    kDeltas = 1,    // contiguous run of deltas from the client's sequence
    kSnapshot = 2,  // full-snapshot fallback
  };
  Kind kind = Kind::kUpToDate;
  std::vector<CascadeDelta> deltas;  // kDeltas
  Bytes snapshot;                    // kSnapshot: a FilterCascade blob

  Bytes Serialize() const;
  static std::optional<UpdateResponse> Deserialize(BytesView data);
};

// Client-side revocation state: an immutable shared snapshot plus the
// overlay of applied deltas. Copy-cheap across a simulated fleet — tens of
// thousands of clients on the same sequence share one decoded cascade.
class ClientCascade {
 public:
  // Replaces everything with a full snapshot (overlay cleared).
  void ResetTo(std::shared_ptr<const FilterCascade> snapshot);

  // Applies one delta; rejects (returns false) unless
  // `delta.from_sequence == sequence()`. A rejected delta changes nothing.
  bool ApplyDelta(const CascadeDelta& delta);

  // Overlay-first exact lookup.
  bool IsRevoked(BytesView key) const;

  // Current sequence: snapshot sequence plus applied deltas; 0 = never
  // synced (answers "not revoked" for everything, like a fresh browser).
  std::uint64_t sequence() const { return sequence_; }
  bool synced() const { return base_ != nullptr; }
  std::size_t overlay_size() const { return overlay_.size(); }
  const std::shared_ptr<const FilterCascade>& base() const { return base_; }

 private:
  std::shared_ptr<const FilterCascade> base_;
  // key -> latest status (true = revoked), overriding the snapshot.
  std::map<Bytes, bool> overlay_;
  std::uint64_t sequence_ = 0;
};

}  // namespace rev::cascade
