#include "cascade/publisher.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <string_view>

#include "obs/metrics.h"

namespace rev::cascade {

struct Publisher::Instruments {
  explicit Instruments(const std::string& label)
      : builds(Get("cascade.builds", label)),
        snapshot_serves(Get("cascade.snapshot_serves", label)),
        delta_serves(Get("cascade.delta_serves", label)),
        up_to_date_serves(Get("cascade.up_to_date_serves", label)),
        bytes_served(Get("cascade.bytes_served", label)),
        delta_bytes(Get("cascade.delta_bytes", label)),
        levels(obs::MetricsRegistry::Global().GetGauge("cascade.levels{" +
                                                       label + "}")),
        bytes(obs::MetricsRegistry::Global().GetGauge("cascade.bytes{" + label +
                                                      "}")) {}

  static obs::Counter& Get(const char* name, const std::string& label) {
    return obs::MetricsRegistry::Global().GetCounter(std::string(name) + "{" +
                                                     label + "}");
  }

  obs::Counter& builds;
  obs::Counter& snapshot_serves;
  obs::Counter& delta_serves;
  obs::Counter& up_to_date_serves;
  obs::Counter& bytes_served;
  obs::Counter& delta_bytes;  // cumulative delta payload published
  obs::Gauge& levels;         // levels in the current cascade
  obs::Gauge& bytes;          // current snapshot blob size
};

Publisher::Publisher(PublisherOptions options)
    : options_(options),
      metrics_label_("publisher=" + std::to_string(obs::NextInstanceId())),
      metrics_(std::make_unique<Instruments>(metrics_label_)) {}

Publisher::~Publisher() = default;

PublishStats Publisher::Publish(
    std::shared_ptr<const std::vector<Bytes>> universe,
    std::vector<Bytes> revoked, util::Timestamp now) {
  if (universe == nullptr)
    throw std::invalid_argument("Publisher::Publish: null universe");

  auto revoked_set = std::make_shared<std::set<Bytes>>(revoked.begin(),
                                                       revoked.end());
  // Canonical build inputs: the revoked side sorted+deduped, the
  // non-revoked side in universe order — Serialize() is then a pure
  // function of the key *sets*, independent of caller ordering.
  auto revoked_list = std::make_shared<const std::vector<Bytes>>(
      revoked_set->begin(), revoked_set->end());
  const std::vector<Bytes>& revoked_sorted = *revoked_list;
  std::vector<Bytes> not_revoked;
  not_revoked.reserve(universe->size() - std::min(universe->size(),
                                                  revoked_set->size()));
  for (const Bytes& key : *universe) {
    if (!revoked_set->contains(key)) not_revoked.push_back(key);
  }

  FilterCascade cascade =
      FilterCascade::Build(revoked_sorted, not_revoked, options_.cascade);
  cascade.sequence = ++sequence_;

  Epoch epoch;
  epoch.sequence = sequence_;
  epoch.published_at = now;
  epoch.universe = universe;

  // Delta against the previous epoch's revoked set (sorted — std::set
  // iteration — so the blob is deterministic).
  if (!history_.empty()) {
    const std::set<Bytes>& previous = *history_.back().revoked;
    CascadeDelta delta;
    delta.from_sequence = sequence_ - 1;
    delta.to_sequence = sequence_;
    std::set_difference(revoked_set->begin(), revoked_set->end(),
                        previous.begin(), previous.end(),
                        std::back_inserter(delta.added));
    std::set_difference(previous.begin(), previous.end(), revoked_set->begin(),
                        revoked_set->end(), std::back_inserter(delta.removed));
    epoch.added = delta.added.size();
    epoch.removed = delta.removed.size();
    epoch.delta_blob = delta.Serialize();
  }

  epoch.revoked = std::move(revoked_set);
  epoch.revoked_list = std::move(revoked_list);

  current_ = std::make_shared<const FilterCascade>(std::move(cascade));
  snapshot_blob_ = std::make_shared<const Bytes>(current_->Serialize());

  PublishStats stats;
  stats.sequence = sequence_;
  stats.levels = current_->NumLevels();
  stats.snapshot_bytes = snapshot_blob_->size();
  stats.filter_bytes = current_->FilterBytes();
  stats.delta_bytes = epoch.delta_blob.size();
  stats.added = epoch.added;
  stats.removed = epoch.removed;
  stats.revoked = epoch.revoked->size();

  counters_.builds++;
  metrics_->builds.Increment();
  metrics_->delta_bytes.Add(epoch.delta_blob.size());
  metrics_->levels.Set(static_cast<std::int64_t>(stats.levels));
  metrics_->bytes.Set(static_cast<std::int64_t>(stats.snapshot_bytes));

  history_.push_back(std::move(epoch));
  while (history_.size() > options_.max_delta_history) history_.pop_front();
  return stats;
}

const Publisher::Epoch* Publisher::FindEpoch(std::uint64_t seq) const {
  if (history_.empty() || seq < history_.front().sequence ||
      seq > history_.back().sequence)
    return nullptr;
  return &history_[seq - history_.front().sequence];
}

std::shared_ptr<const std::set<Bytes>> Publisher::RevokedAt(
    std::uint64_t seq) const {
  const Epoch* epoch = FindEpoch(seq);
  return epoch == nullptr ? nullptr : epoch->revoked;
}

std::shared_ptr<const std::vector<Bytes>> Publisher::RevokedListAt(
    std::uint64_t seq) const {
  const Epoch* epoch = FindEpoch(seq);
  return epoch == nullptr ? nullptr : epoch->revoked_list;
}

util::Timestamp Publisher::PublishTimeAt(std::uint64_t seq) const {
  const Epoch* epoch = FindEpoch(seq);
  return epoch == nullptr ? 0 : epoch->published_at;
}

std::size_t Publisher::AddedAt(std::uint64_t seq) const {
  const Epoch* epoch = FindEpoch(seq);
  return epoch == nullptr ? 0 : epoch->added;
}

std::shared_ptr<const std::vector<Bytes>> Publisher::UniverseAt(
    std::uint64_t seq) const {
  const Epoch* epoch = FindEpoch(seq);
  return epoch == nullptr ? nullptr : epoch->universe;
}

net::HttpResponse Publisher::Respond(const UpdateResponse& response) {
  net::HttpResponse http;
  http.status = 200;
  http.body = response.Serialize();
  counters_.bytes_served += http.body.size();
  metrics_->bytes_served.Add(http.body.size());
  return http;
}

net::HttpResponse Publisher::HandleHttp(const net::HttpRequest& request,
                                        util::Timestamp /*now*/) {
  if (current_ == nullptr) {
    net::HttpResponse http;
    http.status = 503;  // nothing published yet
    http.retry_after = 60;
    return http;
  }
  if (request.path == kSnapshotPath) {
    UpdateResponse response;
    response.kind = UpdateResponse::Kind::kSnapshot;
    response.snapshot = *snapshot_blob_;
    counters_.snapshot_serves++;
    metrics_->snapshot_serves.Increment();
    return Respond(response);
  }
  const std::string_view prefix = kDeltaPathPrefix;
  if (request.path.size() > prefix.size() &&
      std::string_view(request.path).substr(0, prefix.size()) == prefix) {
    const std::string_view from_str =
        std::string_view(request.path).substr(prefix.size());
    std::uint64_t from = 0;
    const auto [ptr, ec] =
        std::from_chars(from_str.data(), from_str.data() + from_str.size(), from);
    const bool parsed = ec == std::errc() && ptr == from_str.data() + from_str.size();

    if (parsed && from == sequence_) {
      UpdateResponse response;  // kUpToDate
      counters_.up_to_date_serves++;
      metrics_->up_to_date_serves.Increment();
      return Respond(response);
    }
    // Deltas apply when the client's *successor* epoch is still retained
    // and the run is cheaper than the snapshot-fallback bound.
    if (parsed && from < sequence_ && FindEpoch(from + 1) != nullptr &&
        !FindEpoch(from + 1)->delta_blob.empty()) {
      UpdateResponse response;
      response.kind = UpdateResponse::Kind::kDeltas;
      std::size_t total = 0;
      bool usable = true;
      for (std::uint64_t seq = from + 1; seq <= sequence_; ++seq) {
        const Epoch* epoch = FindEpoch(seq);
        if (epoch == nullptr || epoch->delta_blob.empty()) {
          usable = false;
          break;
        }
        total += epoch->delta_blob.size();
        auto delta = CascadeDelta::Deserialize(epoch->delta_blob);
        response.deltas.push_back(std::move(*delta));
      }
      if (usable && static_cast<double>(total) <=
                        options_.snapshot_fallback_fraction *
                            static_cast<double>(snapshot_blob_->size())) {
        counters_.delta_serves++;
        metrics_->delta_serves.Increment();
        return Respond(response);
      }
    }
    // Too stale, unparseable, or deltas not worth it: full snapshot.
    UpdateResponse response;
    response.kind = UpdateResponse::Kind::kSnapshot;
    response.snapshot = *snapshot_blob_;
    counters_.snapshot_serves++;
    metrics_->snapshot_serves.Increment();
    return Respond(response);
  }
  net::HttpResponse http;
  http.status = 404;
  return http;
}

void Publisher::ServeThrough(serve::Frontend& frontend) {
  frontend.AddRoute("/cascade/",
                    [this](const net::HttpRequest& request, util::Timestamp now) {
                      return HandleHttp(request, now);
                    });
}

}  // namespace rev::cascade
