#include "cascade/delta.h"

#include "util/wire.h"

namespace rev::cascade {

namespace wire = util::wire;

namespace {

constexpr std::uint32_t kDeltaMagic = 0x52434431;     // "RCD1"
constexpr std::uint32_t kResponseMagic = 0x52435531;  // "RCU1"
constexpr std::uint16_t kVersion = 1;
// A key list longer than the blob itself is structurally impossible; the
// cap keeps a fuzzed count from reserving gigabytes.
constexpr std::uint32_t kMaxDeltasPerResponse = 1 << 16;

bool GetKeyList(BytesView payload, std::size_t& pos, std::vector<Bytes>* out) {
  std::uint32_t count;
  if (!wire::GetU32(payload, pos, &count)) return false;
  if (count > payload.size() - pos) return false;  // ≥1 byte per key
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Bytes key;
    if (!wire::GetBlob(payload, pos, &key)) return false;
    out->push_back(std::move(key));
  }
  return true;
}

void PutKeyList(Bytes& out, const std::vector<Bytes>& keys) {
  wire::PutU32(out, static_cast<std::uint32_t>(keys.size()));
  for (const Bytes& key : keys) wire::PutBlob(out, key);
}

}  // namespace

Bytes CascadeDelta::Serialize() const {
  Bytes out;
  wire::PutU32(out, kDeltaMagic);
  wire::PutU16(out, kVersion);
  wire::PutU64(out, from_sequence);
  wire::PutU64(out, to_sequence);
  PutKeyList(out, added);
  PutKeyList(out, removed);
  wire::SealChecksum(out);
  return out;
}

std::optional<CascadeDelta> CascadeDelta::Deserialize(BytesView data) {
  BytesView payload;
  if (!wire::CheckChecksum(data, &payload)) return std::nullopt;
  std::size_t pos = 0;
  std::uint32_t magic;
  std::uint16_t version;
  CascadeDelta delta;
  if (!wire::GetU32(payload, pos, &magic) || magic != kDeltaMagic)
    return std::nullopt;
  if (!wire::GetU16(payload, pos, &version) || version != kVersion)
    return std::nullopt;
  if (!wire::GetU64(payload, pos, &delta.from_sequence)) return std::nullopt;
  if (!wire::GetU64(payload, pos, &delta.to_sequence)) return std::nullopt;
  if (delta.to_sequence <= delta.from_sequence) return std::nullopt;
  if (!GetKeyList(payload, pos, &delta.added)) return std::nullopt;
  if (!GetKeyList(payload, pos, &delta.removed)) return std::nullopt;
  if (pos != payload.size()) return std::nullopt;
  return delta;
}

Bytes UpdateResponse::Serialize() const {
  Bytes out;
  wire::PutU32(out, kResponseMagic);
  wire::PutU16(out, kVersion);
  out.push_back(static_cast<std::uint8_t>(kind));
  switch (kind) {
    case Kind::kUpToDate:
      break;
    case Kind::kDeltas:
      wire::PutU32(out, static_cast<std::uint32_t>(deltas.size()));
      for (const CascadeDelta& delta : deltas) wire::PutBlob(out, delta.Serialize());
      break;
    case Kind::kSnapshot:
      wire::PutBlob(out, snapshot);
      break;
  }
  wire::SealChecksum(out);
  return out;
}

std::optional<UpdateResponse> UpdateResponse::Deserialize(BytesView data) {
  BytesView payload;
  if (!wire::CheckChecksum(data, &payload)) return std::nullopt;
  std::size_t pos = 0;
  std::uint32_t magic;
  std::uint16_t version;
  if (!wire::GetU32(payload, pos, &magic) || magic != kResponseMagic)
    return std::nullopt;
  if (!wire::GetU16(payload, pos, &version) || version != kVersion)
    return std::nullopt;
  if (pos >= payload.size()) return std::nullopt;
  UpdateResponse response;
  const std::uint8_t kind = payload[pos++];
  switch (kind) {
    case 0:
      response.kind = Kind::kUpToDate;
      break;
    case 1: {
      response.kind = Kind::kDeltas;
      std::uint32_t count;
      if (!wire::GetU32(payload, pos, &count) || count > kMaxDeltasPerResponse)
        return std::nullopt;
      response.deltas.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        Bytes blob;
        if (!wire::GetBlob(payload, pos, &blob)) return std::nullopt;
        auto delta = CascadeDelta::Deserialize(blob);
        if (!delta) return std::nullopt;
        response.deltas.push_back(std::move(*delta));
      }
      // Deltas must chain contiguously — a response that skips a sequence
      // would desynchronize the client's overlay.
      for (std::size_t i = 1; i < response.deltas.size(); ++i) {
        if (response.deltas[i].from_sequence != response.deltas[i - 1].to_sequence)
          return std::nullopt;
      }
      break;
    }
    case 2: {
      response.kind = Kind::kSnapshot;
      if (!wire::GetBlob(payload, pos, &response.snapshot)) return std::nullopt;
      break;
    }
    default:
      return std::nullopt;
  }
  if (pos != payload.size()) return std::nullopt;
  return response;
}

void ClientCascade::ResetTo(std::shared_ptr<const FilterCascade> snapshot) {
  sequence_ = snapshot ? snapshot->sequence : 0;
  base_ = std::move(snapshot);
  overlay_.clear();
}

bool ClientCascade::ApplyDelta(const CascadeDelta& delta) {
  if (base_ == nullptr || delta.from_sequence != sequence_) return false;
  for (const Bytes& key : delta.added) overlay_[key] = true;
  for (const Bytes& key : delta.removed) overlay_[key] = false;
  sequence_ = delta.to_sequence;
  return true;
}

bool ClientCascade::IsRevoked(BytesView key) const {
  if (base_ == nullptr) return false;
  const auto it = overlay_.find(Bytes(key.begin(), key.end()));
  if (it != overlay_.end()) return it->second;
  return base_->IsRevoked(key);
}

}  // namespace rev::cascade
