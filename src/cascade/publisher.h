// The cascade distribution publisher: builds one FilterCascade per
// (simulated) day from the crawler's revocation DB, derives the delta
// against the previous build, retains a bounded delta history, and serves
// both over HTTP — either standalone through SimNet or riding a
// serve::Frontend via its route table (GET /cascade/snapshot and
// GET /cascade/delta?from=N beside /metrics and the OCSP paths).
//
// Snapshot-fallback policy: a poll gets deltas only when the client's
// sequence is inside the retained history AND the concatenated deltas are
// actually cheaper than `snapshot_fallback_fraction` of the full snapshot;
// otherwise the full snapshot ships. Everything is instrumented through
// src/obs (`cascade.*{publisher=N}`), see docs/distribution.md.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cascade/cascade.h"
#include "cascade/delta.h"
#include "net/simnet.h"
#include "serve/frontend.h"
#include "util/time.h"

namespace rev::cascade {

struct PublisherOptions {
  CascadeOptions cascade;
  // Deltas retained; a client whose sequence predates the window gets the
  // full snapshot.
  std::size_t max_delta_history = 30;
  // Serve deltas only while their total bytes stay below this fraction of
  // the current snapshot blob.
  double snapshot_fallback_fraction = 0.5;
};

// What one Publish() produced (also mirrored into the metrics registry).
struct PublishStats {
  std::uint64_t sequence = 0;
  std::size_t levels = 0;
  std::size_t snapshot_bytes = 0;
  std::size_t filter_bytes = 0;
  std::size_t delta_bytes = 0;  // 0 for the first build
  std::size_t added = 0;
  std::size_t removed = 0;
  std::size_t revoked = 0;
};

class Publisher {
 public:
  static constexpr const char* kSnapshotPath = "/cascade/snapshot";
  static constexpr const char* kDeltaPathPrefix = "/cascade/delta?from=";

  explicit Publisher(PublisherOptions options = {});
  ~Publisher();  // out of line: Instruments is incomplete here

  // Builds and publishes the next sequence. `universe` is every key the
  // crawler DB knows (shared, typically one allocation for the whole run);
  // `revoked` must be a subset of it. The non-revoked side is derived here.
  PublishStats Publish(std::shared_ptr<const std::vector<Bytes>> universe,
                       std::vector<Bytes> revoked, util::Timestamp now);

  std::uint64_t sequence() const { return sequence_; }
  std::shared_ptr<const FilterCascade> Current() const { return current_; }
  std::shared_ptr<const Bytes> SnapshotBlob() const { return snapshot_blob_; }

  // Ground truth for fleet verification: the revoked-key set and publish
  // time at `seq` (nullptr / 0 when evicted or never published). History
  // eviction follows max_delta_history.
  std::shared_ptr<const std::set<Bytes>> RevokedAt(std::uint64_t seq) const;
  // Same keys as RevokedAt, sorted, for O(1) sampling by index.
  std::shared_ptr<const std::vector<Bytes>> RevokedListAt(
      std::uint64_t seq) const;
  util::Timestamp PublishTimeAt(std::uint64_t seq) const;
  std::size_t AddedAt(std::uint64_t seq) const;
  std::shared_ptr<const std::vector<Bytes>> UniverseAt(std::uint64_t seq) const;

  // HTTP surface. Unknown paths 404; malformed `from` values get the full
  // snapshot (the channel always converges).
  net::HttpResponse HandleHttp(const net::HttpRequest& request,
                               util::Timestamp now);

  // Registers the /cascade/* routes on `frontend` (call before the
  // frontend starts serving; the publisher must outlive it).
  void ServeThrough(serve::Frontend& frontend);

  struct Counters {
    std::uint64_t builds = 0;
    std::uint64_t snapshot_serves = 0;
    std::uint64_t delta_serves = 0;
    std::uint64_t up_to_date_serves = 0;
    std::uint64_t bytes_served = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  struct Epoch {
    std::uint64_t sequence = 0;
    util::Timestamp published_at = 0;
    Bytes delta_blob;  // delta (sequence-1 → sequence); empty for the first
    std::size_t added = 0;
    std::size_t removed = 0;
    std::shared_ptr<const std::set<Bytes>> revoked;
    std::shared_ptr<const std::vector<Bytes>> revoked_list;  // sorted
    std::shared_ptr<const std::vector<Bytes>> universe;
  };

  const Epoch* FindEpoch(std::uint64_t seq) const;
  net::HttpResponse Respond(const UpdateResponse& response);

  PublisherOptions options_;
  std::uint64_t sequence_ = 0;
  std::shared_ptr<const FilterCascade> current_;
  std::shared_ptr<const Bytes> snapshot_blob_;
  std::deque<Epoch> history_;  // ascending sequence, bounded
  Counters counters_;

  struct Instruments;
  std::string metrics_label_;
  std::unique_ptr<Instruments> metrics_;
};

}  // namespace rev::cascade
