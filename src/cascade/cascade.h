// CRLite-style multi-level filter cascade (ROADMAP item 3): an exactly
// queryable encoding of "which known certificates are revoked".
//
// Level 0 is a Bloom filter over the revoked keys. Probing every
// *non-revoked* key of the known-certificate universe against it yields the
// level-0 false positives; level 1 is a Bloom filter over those, probed
// with the revoked keys to find ITS false positives, and so on — each
// level's filter is built from the previous level's false positives, with
// the sides alternating, until a level produces none. A query then walks
// the levels: the first filter that does NOT contain the key decides
// (miss at an even level = not revoked, at an odd level = revoked), and a
// key contained through the last level belongs to that level's build set.
// Against the universe the cascade was built from, answers are exact: no
// false positives and no false negatives, proven per-key in
// tests/cascade_test.cpp. Keys outside that universe get Bloom-grade
// answers — the browser never asks about a certificate it has not seen.
//
// Construction is deterministic at any thread count: the expensive probe
// step fans out across a util::ThreadPool in fixed chunks whose hit lists
// are merged in chunk order, and filter insertion is order-independent
// (bit OR), so Serialize() is bit-identical at threads=1 and threads=8.
// The wire format is versioned and carries an FNV-1a trailer so truncated
// or bit-flipped blobs fail Deserialize() instead of mis-answering.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.h"

namespace rev::cascade {

// Derives the fixed 32-byte cascade key for a certificate: SHA-256 over
// the length-prefixed issuer name DER and serial (matching the crawler
// DB's (issuer, serial) identity without ambiguity at the boundary).
Bytes CertKey(BytesView issuer_name_der, BytesView serial);

struct CascadeOptions {
  // Level-0 false-positive target; 0 picks the CRLite rule
  // p0 = r / (sqrt(2) * s) for r revoked among s non-revoked keys (deeper
  // levels always use 0.5, halving the carried set per level).
  double level0_fpr = 0;
  // Defense against a pathological non-converging build; never reached in
  // practice (the carried set halves per level).
  std::size_t max_levels = 64;
  // Probe-step fan-out: 0 = hardware concurrency, 1 = exact serial path.
  unsigned threads = 1;
};

// One level: a Bloom filter with a per-level salt folded into the hash so
// a key's bit pattern is independent across levels.
struct CascadeLevel {
  std::uint64_t salt = 0;
  std::uint64_t m_bits = 0;
  std::uint32_t k = 1;
  std::uint64_t num_keys = 0;  // size of the build set (diagnostics)
  Bytes bits;

  bool MayContain(BytesView key) const;
};

class FilterCascade {
 public:
  // Monotonic publisher sequence this build corresponds to.
  std::uint64_t sequence = 0;

  // Builds from `revoked` against the disjoint `not_revoked` remainder of
  // the known-cert universe. Either side may be empty. Duplicate keys are
  // harmless. Deterministic for fixed inputs at any `options.threads`.
  static FilterCascade Build(const std::vector<Bytes>& revoked,
                             const std::vector<Bytes>& not_revoked,
                             const CascadeOptions& options = {});

  // Exact for keys in the build universe; Bloom-grade for strangers.
  bool IsRevoked(BytesView key) const;

  std::size_t NumLevels() const { return levels_.size(); }
  std::uint64_t NumRevoked() const { return num_revoked_; }
  const std::vector<CascadeLevel>& levels() const { return levels_; }

  // Total filter payload (sum of level bit arrays), the number the paper's
  // Fig. 11 size comparison cares about.
  std::size_t FilterBytes() const;

  // Versioned binary wire format with an integrity trailer.
  Bytes Serialize() const;
  static std::optional<FilterCascade> Deserialize(BytesView data);

  friend bool operator==(const FilterCascade&, const FilterCascade&);

 private:
  std::vector<CascadeLevel> levels_;
  std::uint64_t num_revoked_ = 0;
};

bool operator==(const CascadeLevel&, const CascadeLevel&);

}  // namespace rev::cascade
