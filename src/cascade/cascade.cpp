#include "cascade/cascade.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "crypto/sha256.h"
#include "util/thread_pool.h"
#include "util/wire.h"

namespace rev::cascade {

namespace wire = util::wire;

namespace {

constexpr std::uint32_t kMagic = 0x52434631;  // "RCF1"
constexpr std::uint16_t kVersion = 1;
// Deserialize sanity caps: far above anything a real build produces, low
// enough that a fuzzed header can never trigger a giant allocation beyond
// what the blob itself already pays for.
constexpr std::uint64_t kMaxLevels = 4096;
constexpr std::uint32_t kMaxHashes = 64;

std::uint64_t Splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct HashPair {
  std::uint64_t h1;
  std::uint64_t h2;
};

// Keys are already cryptographic digests (CertKey is a SHA-256), so a fast
// word-wise mix keyed by the level salt gives independent, well-distributed
// bit positions per level — g_i = h1 + i*h2 (Kirsch–Mitzenmacher).
HashPair LevelHash(std::uint64_t salt, BytesView key) {
  std::uint64_t a = Splitmix(salt ^ 0x243F6A8885A308D3ull);
  std::uint64_t b = Splitmix(~salt ^ 0x13198A2E03707344ull);
  std::size_t i = 0;
  while (i + 8 <= key.size()) {
    std::uint64_t word = 0;
    for (int j = 0; j < 8; ++j) word = (word << 8) | key[i + static_cast<std::size_t>(j)];
    a = Splitmix(a ^ word);
    b = Splitmix(b + word);
    i += 8;
  }
  std::uint64_t tail = key.size();  // fold the length so prefixes differ
  for (; i < key.size(); ++i) tail = (tail << 8) | key[i];
  a = Splitmix(a ^ tail);
  b = Splitmix(b + tail);
  if (b == 0) b = 0x9E3779B97F4A7C15ull;
  return {a, b};
}

void InsertKey(CascadeLevel& level, BytesView key) {
  const HashPair h = LevelHash(level.salt, key);
  for (std::uint32_t i = 0; i < level.k; ++i) {
    const std::uint64_t bit = (h.h1 + i * h.h2) % level.m_bits;
    level.bits[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

// Bloom sizing for `n` keys at false-positive rate `p`.
CascadeLevel SizeLevel(std::size_t n, double p, std::uint64_t salt) {
  CascadeLevel level;
  level.salt = salt;
  level.num_keys = n;
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(n == 0 ? 1 : n) * std::log(p) / (ln2 * ln2);
  level.m_bits = std::max<std::uint64_t>(64, static_cast<std::uint64_t>(std::ceil(m)));
  const double k = std::round(static_cast<double>(level.m_bits) /
                              static_cast<double>(n == 0 ? 1 : n) * ln2);
  level.k = static_cast<std::uint32_t>(std::clamp(k, 1.0, 30.0));
  level.bits.assign((level.m_bits + 7) / 8, 0);
  return level;
}

}  // namespace

Bytes CertKey(BytesView issuer_name_der, BytesView serial) {
  Bytes buffer;
  buffer.reserve(8 + issuer_name_der.size() + serial.size());
  wire::PutU32(buffer, static_cast<std::uint32_t>(issuer_name_der.size()));
  Append(buffer, issuer_name_der);
  wire::PutU32(buffer, static_cast<std::uint32_t>(serial.size()));
  Append(buffer, serial);
  const crypto::Sha256Digest d = crypto::Sha256::Hash(buffer);
  return Bytes(d.begin(), d.end());
}

bool CascadeLevel::MayContain(BytesView key) const {
  if (m_bits == 0) return false;
  const HashPair h = LevelHash(salt, key);
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::uint64_t bit = (h.h1 + i * h.h2) % m_bits;
    if ((bits[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

FilterCascade FilterCascade::Build(const std::vector<Bytes>& revoked,
                                   const std::vector<Bytes>& not_revoked,
                                   const CascadeOptions& options) {
  FilterCascade cascade;
  cascade.num_revoked_ = revoked.size();
  if (revoked.empty()) return cascade;  // zero levels: everything answers no

  const double r = static_cast<double>(revoked.size());
  const double s = static_cast<double>(std::max<std::size_t>(1, not_revoked.size()));
  double p0 = options.level0_fpr;
  if (p0 <= 0) p0 = r / (std::sqrt(2.0) * s);
  p0 = std::clamp(p0, 1e-9, 0.5);

  util::ThreadPool pool(options.threads);

  // `include` is inserted into the level's filter; `exclude` is probed
  // against it and its hits become the next level's include. The sides swap
  // each level. Pointers avoid copying the big input vectors for level 0.
  const std::vector<Bytes>* include = &revoked;
  const std::vector<Bytes>* exclude = &not_revoked;
  std::vector<Bytes> carried_include, carried_exclude;

  while (!include->empty()) {
    if (cascade.levels_.size() >= options.max_levels)
      throw std::runtime_error("FilterCascade::Build: cascade did not converge");
    const std::size_t index = cascade.levels_.size();
    const double p = index == 0 ? p0 : 0.5;
    // Salt is a pure function of the level index so rebuilds of the same
    // inputs serialize identically.
    CascadeLevel level = SizeLevel(include->size(), p, Splitmix(0xCA5CADEull + index));
    for (const Bytes& key : *include) InsertKey(level, key);

    // Probe the exclude side in fixed chunks; per-chunk hit lists merged in
    // chunk order keep the next level's build set identical at any thread
    // count (the filter itself is read-only here).
    constexpr std::size_t kChunk = 4096;
    const std::size_t num_chunks = (exclude->size() + kChunk - 1) / kChunk;
    std::vector<std::vector<Bytes>> hits(num_chunks);
    pool.ParallelFor(num_chunks, [&](std::size_t c) {
      const std::size_t begin = c * kChunk;
      const std::size_t end = std::min(begin + kChunk, exclude->size());
      for (std::size_t i = begin; i < end; ++i) {
        if (level.MayContain((*exclude)[i])) hits[c].push_back((*exclude)[i]);
      }
    });
    std::vector<Bytes> next_include;
    for (std::vector<Bytes>& chunk : hits)
      for (Bytes& key : chunk) next_include.push_back(std::move(key));

    // The side we just inserted becomes the next exclude set; its false
    // positives become the next include set.
    carried_exclude = (index == 0) ? revoked : std::move(carried_include);
    carried_include = std::move(next_include);
    include = &carried_include;
    exclude = &carried_exclude;
    cascade.levels_.push_back(std::move(level));
  }
  return cascade;
}

bool FilterCascade::IsRevoked(BytesView key) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (!levels_[i].MayContain(key)) {
      // The key sits on level i's exclude side: not-revoked for even i,
      // revoked for odd i.
      return (i % 2) == 1;
    }
  }
  // Contained through the last level: it belongs to that level's build
  // set — revoked iff the last level holds revoked keys (even index).
  return !levels_.empty() && (levels_.size() - 1) % 2 == 0;
}

std::size_t FilterCascade::FilterBytes() const {
  std::size_t total = 0;
  for (const CascadeLevel& level : levels_) total += level.bits.size();
  return total;
}

Bytes FilterCascade::Serialize() const {
  Bytes out;
  wire::PutU32(out, kMagic);
  wire::PutU16(out, kVersion);
  wire::PutU64(out, sequence);
  wire::PutU64(out, num_revoked_);
  wire::PutU32(out, static_cast<std::uint32_t>(levels_.size()));
  for (const CascadeLevel& level : levels_) {
    wire::PutU64(out, level.salt);
    wire::PutU64(out, level.m_bits);
    wire::PutU32(out, level.k);
    wire::PutU64(out, level.num_keys);
    Append(out, level.bits);
  }
  wire::SealChecksum(out);
  return out;
}

std::optional<FilterCascade> FilterCascade::Deserialize(BytesView data) {
  BytesView payload;
  if (!wire::CheckChecksum(data, &payload)) return std::nullopt;
  std::size_t pos = 0;
  std::uint32_t magic, num_levels;
  std::uint16_t version;
  FilterCascade cascade;
  if (!wire::GetU32(payload, pos, &magic) || magic != kMagic) return std::nullopt;
  if (!wire::GetU16(payload, pos, &version) || version != kVersion)
    return std::nullopt;
  if (!wire::GetU64(payload, pos, &cascade.sequence)) return std::nullopt;
  if (!wire::GetU64(payload, pos, &cascade.num_revoked_)) return std::nullopt;
  if (!wire::GetU32(payload, pos, &num_levels) || num_levels > kMaxLevels)
    return std::nullopt;
  cascade.levels_.reserve(num_levels);
  for (std::uint32_t i = 0; i < num_levels; ++i) {
    CascadeLevel level;
    if (!wire::GetU64(payload, pos, &level.salt)) return std::nullopt;
    if (!wire::GetU64(payload, pos, &level.m_bits)) return std::nullopt;
    if (!wire::GetU32(payload, pos, &level.k) || level.k == 0 ||
        level.k > kMaxHashes)
      return std::nullopt;
    if (!wire::GetU64(payload, pos, &level.num_keys)) return std::nullopt;
    // The bit array must actually be present: bound m_bits by the bytes
    // remaining before allocating anything.
    if (level.m_bits == 0) return std::nullopt;
    const std::uint64_t num_bytes = level.m_bits / 8 + (level.m_bits % 8 != 0);
    if (num_bytes > payload.size() - pos) return std::nullopt;
    level.bits.assign(payload.begin() + static_cast<std::ptrdiff_t>(pos),
                      payload.begin() + static_cast<std::ptrdiff_t>(pos + num_bytes));
    pos += num_bytes;
    cascade.levels_.push_back(std::move(level));
  }
  if (pos != payload.size()) return std::nullopt;
  return cascade;
}

bool operator==(const CascadeLevel& a, const CascadeLevel& b) {
  return a.salt == b.salt && a.m_bits == b.m_bits && a.k == b.k &&
         a.num_keys == b.num_keys && a.bits == b.bits;
}

bool operator==(const FilterCascade& a, const FilterCascade& b) {
  return a.sequence == b.sequence && a.num_revoked_ == b.num_revoked_ &&
         a.levels_ == b.levels_;
}

}  // namespace rev::cascade
