// A simulated browser fleet pulling cascade updates (ROADMAP item 3's
// client side): tens of thousands of clients on heterogeneous update
// cadences, each polling the publisher's delta endpoint over SimNet with
// FetchWithRetry — so a FaultPlan storm on the distribution host exercises
// the same retry/degradation stack as the crawler and the OCSP clients.
//
// Determinism: client cadences and poll phases derive from per-client
// forked Rngs; polls replay in (client, time) order; fault decisions are
// pure functions of (url, now). Two runs with the same seed — at any
// REV_THREADS, since the fleet itself is single-threaded over a serialized
// SimNet — produce identical aggregate counters and staleness series.
//
// Every applied update is sample-verified against the publisher's retained
// ground truth (no false "revoked", no missed revocation at the client's
// sequence); wrong_answers() must stay zero through any storm. Staleness
// and vulnerability-window samples land in `client.*` obs instruments and
// in Distributions for the bench's CDFs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cascade/delta.h"
#include "cascade/publisher.h"
#include "net/retry.h"
#include "net/simnet.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace rev::cascade {

struct FleetOptions {
  std::size_t num_clients = 10'000;
  std::uint64_t seed = 1;
  // Base URL of the publisher's delta endpoint; the client's sequence is
  // appended (Publisher::kDeltaPathPrefix semantics).
  std::string delta_url = "http://cascade.dist.sim/cascade/delta?from=";
  // Update-cadence mixture (weights need not sum to 1): a client draws its
  // interval once at construction. Defaults model a browser population:
  // some aggressive hourly updaters, a mainstream daily cohort, and a
  // long tail that updates weekly.
  struct Cadence {
    std::int64_t interval_seconds = util::kSecondsPerDay;
    double weight = 1.0;
  };
  std::vector<Cadence> cadences = {
      {3600, 0.10}, {6 * 3600, 0.25}, {util::kSecondsPerDay, 0.45},
      {7 * util::kSecondsPerDay, 0.20}};
  net::RetryPolicy retry{.max_attempts = 3,
                         .initial_backoff_seconds = 5.0,
                         .max_backoff_seconds = 120.0,
                         .jitter = 0.5};
  double timeout_seconds = 10.0;
  // Ground-truth samples checked per applied update (0 disables).
  std::size_t verify_samples = 8;
};

class Fleet {
 public:
  // `net` and `publisher` must outlive the fleet. The publisher reference
  // is only used for ground truth (publish times, revoked sets) — the
  // update bytes themselves travel through `net`.
  Fleet(net::SimNet* net, Publisher* publisher, FleetOptions options = {});
  ~Fleet();  // out of line: Instruments is incomplete here

  // Advances simulated time to `now`, executing every poll due in
  // [current_time, now) in deterministic order. Call with increasing
  // timestamps, interleaved with Publisher::Publish for the daily builds.
  void StepTo(util::Timestamp now);

  struct Totals {
    std::uint64_t polls = 0;
    std::uint64_t failed_polls = 0;   // retries exhausted; client stays stale
    std::uint64_t retries = 0;        // extra attempts beyond the first
    std::uint64_t delta_updates = 0;
    std::uint64_t snapshot_updates = 0;
    std::uint64_t up_to_date_polls = 0;
    std::uint64_t bytes_downloaded = 0;  // wire bytes, failed attempts included
    std::uint64_t wrong_answers = 0;     // ground-truth mismatches (must be 0)
    std::uint64_t verified_lookups = 0;
  };
  const Totals& totals() const { return totals_; }

  // Staleness (now - publish time of the client's sequence) sampled at
  // every completed poll, seconds.
  const util::Distribution& staleness() const { return staleness_; }
  // Vulnerability windows: for every revocation, per client, the time from
  // its publication to the client applying it (weighted by revocations).
  const util::Distribution& vulnerability_windows() const { return windows_; }
  // Per-client staleness at the instant of the last StepTo, seconds.
  util::Distribution EndStaleness() const;

  std::size_t num_clients() const { return clients_.size(); }
  util::Timestamp current_time() const { return current_time_; }

 private:
  struct Client {
    std::int64_t interval = util::kSecondsPerDay;
    util::Timestamp next_poll = 0;
    ClientCascade state;
    util::Rng rng{0};
  };

  void Poll(Client& client, util::Timestamp now);
  void Verify(const Client& client, util::Timestamp now);

  net::SimNet* net_;
  Publisher* publisher_;
  FleetOptions options_;
  std::vector<Client> clients_;
  util::Timestamp current_time_ = 0;
  bool started_ = false;

  // Decoded-snapshot cache: clients that download the same snapshot blob
  // share one decoded FilterCascade (the wire bytes are still paid per
  // client — this only models a client library decoding what it received).
  std::uint64_t cached_snapshot_sequence_ = 0;
  std::shared_ptr<const FilterCascade> cached_snapshot_;

  Totals totals_;
  util::Distribution staleness_;
  util::Distribution windows_;

  struct Instruments;
  std::string metrics_label_;
  std::unique_ptr<Instruments> metrics_;
};

}  // namespace rev::cascade
