#include "crl/crl.h"

#include <algorithm>
#include <sstream>

#include "asn1/reader.h"
#include "asn1/writer.h"
#include "util/stats.h"
#include "x509/spki.h"

namespace rev::crl {

namespace {

Bytes EncodeEntry(const CrlEntry& entry) {
  std::vector<Bytes> parts;
  parts.push_back(asn1::EncodeIntegerUnsigned(entry.serial));
  parts.push_back(asn1::EncodeTime(entry.revocation_date));
  if (entry.reason != x509::ReasonCode::kNoReasonCode) {
    parts.push_back(x509::EncodeExtensionList({x509::MakeCrlReason(entry.reason)}));
  }
  return asn1::EncodeSequence(parts);
}

}  // namespace

Bytes EncodeTbsCrl(const TbsCrl& tbs, crypto::KeyType sig_type) {
  std::vector<Bytes> parts;
  parts.push_back(asn1::EncodeInteger(1));  // v2
  parts.push_back(x509::EncodeSignatureAlgorithm(sig_type));
  parts.push_back(tbs.issuer.Encode());
  parts.push_back(asn1::EncodeTime(tbs.this_update));
  if (tbs.next_update != 0) parts.push_back(asn1::EncodeTime(tbs.next_update));
  if (!tbs.entries.empty()) {
    std::vector<Bytes> entries;
    entries.reserve(tbs.entries.size());
    for (const CrlEntry& e : tbs.entries) entries.push_back(EncodeEntry(e));
    parts.push_back(asn1::EncodeSequence(entries));
  }
  if (tbs.crl_number >= 0) {
    parts.push_back(asn1::EncodeContextExplicit(
        0, x509::EncodeExtensionList({x509::MakeCrlNumber(tbs.crl_number)})));
  }
  return asn1::EncodeSequence(parts);
}

Crl SignCrl(const TbsCrl& tbs, const crypto::KeyPair& issuer_key) {
  Crl crl;
  crl.tbs = tbs;
  crl.sig_type = issuer_key.type;
  crl.tbs_der = EncodeTbsCrl(tbs, issuer_key.type);
  crl.signature = crypto::Sign(issuer_key, crl.tbs_der);
  crl.der = asn1::EncodeSequence(
      {crl.tbs_der, x509::EncodeSignatureAlgorithm(issuer_key.type),
       asn1::EncodeBitString(crl.signature)});
  return crl;
}

std::optional<Crl> ParseCrl(BytesView der) {
  asn1::Reader top(der);
  asn1::Reader crl_seq;
  if (!top.ReadSequence(&crl_seq) || !top.Empty()) return std::nullopt;

  Crl crl;
  crl.der.assign(der.begin(), der.end());

  BytesView tbs_raw;
  {
    asn1::Reader probe = crl_seq;
    if (!probe.ReadRawTlv(&tbs_raw)) return std::nullopt;
    crl_seq = probe;
  }
  crl.tbs_der.assign(tbs_raw.begin(), tbs_raw.end());

  asn1::Reader tbs(tbs_raw);
  asn1::Reader tbs_seq;
  if (!tbs.ReadSequence(&tbs_seq)) return std::nullopt;

  std::int64_t version;
  if (!tbs_seq.ReadInteger(&version) || version != 1) return std::nullopt;

  auto inner_sig_type = x509::DecodeSignatureAlgorithm(tbs_seq);
  if (!inner_sig_type) return std::nullopt;

  auto issuer = x509::Name::Decode(tbs_seq);
  if (!issuer) return std::nullopt;
  crl.tbs.issuer = *std::move(issuer);

  if (!tbs_seq.ReadTime(&crl.tbs.this_update)) return std::nullopt;

  // nextUpdate is OPTIONAL: present iff next TLV is a time type.
  if (tbs_seq.NextIs(asn1::kTagUtcTime) ||
      tbs_seq.NextIs(asn1::kTagGeneralizedTime)) {
    if (!tbs_seq.ReadTime(&crl.tbs.next_update)) return std::nullopt;
  }

  if (tbs_seq.NextIs(asn1::kTagSequence)) {
    asn1::Reader entries;
    if (!tbs_seq.ReadSequence(&entries)) return std::nullopt;
    while (!entries.Empty()) {
      asn1::Reader entry_seq;
      if (!entries.ReadSequence(&entry_seq)) return std::nullopt;
      CrlEntry entry;
      if (!entry_seq.ReadIntegerUnsigned(&entry.serial) ||
          !entry_seq.ReadTime(&entry.revocation_date))
        return std::nullopt;
      if (entry_seq.NextIs(asn1::kTagSequence)) {
        auto exts = x509::DecodeExtensionList(entry_seq);
        if (!exts) return std::nullopt;
        for (const x509::Extension& ext : *exts) {
          if (ext.oid == asn1::oids::CrlReason()) {
            auto reason = x509::ParseCrlReason(ext.value);
            if (!reason) return std::nullopt;
            entry.reason = *reason;
          }
        }
      }
      crl.tbs.entries.push_back(std::move(entry));
    }
  }

  if (tbs_seq.NextIsContext(0)) {
    asn1::Reader ext_wrapper;
    if (!tbs_seq.ReadContextExplicit(0, &ext_wrapper)) return std::nullopt;
    auto exts = x509::DecodeExtensionList(ext_wrapper);
    if (!exts) return std::nullopt;
    for (const x509::Extension& ext : *exts) {
      if (ext.oid == asn1::oids::CrlNumber()) {
        auto number = x509::ParseCrlNumber(ext.value);
        if (!number) return std::nullopt;
        crl.tbs.crl_number = *number;
      }
    }
  }

  auto outer_sig_type = x509::DecodeSignatureAlgorithm(crl_seq);
  if (!outer_sig_type || *outer_sig_type != *inner_sig_type)
    return std::nullopt;
  crl.sig_type = *outer_sig_type;

  BytesView sig_bits;
  unsigned unused = 0;
  if (!crl_seq.ReadBitString(&sig_bits, &unused) || unused != 0)
    return std::nullopt;
  crl.signature.assign(sig_bits.begin(), sig_bits.end());
  if (!crl_seq.Empty()) return std::nullopt;
  return crl;
}

bool VerifyCrlSignature(const Crl& crl, const crypto::PublicKey& issuer_key) {
  if (issuer_key.type != crl.sig_type) return false;
  return crypto::Verify(issuer_key, crl.tbs_der, crl.signature);
}

CrlIndex::CrlIndex(const Crl& crl) : entries_(crl.tbs.entries) {
  std::sort(entries_.begin(), entries_.end(),
            [](const CrlEntry& a, const CrlEntry& b) {
              return a.serial < b.serial;
            });
}

const CrlEntry* CrlIndex::Lookup(const x509::Serial& serial) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), serial,
                             [](const CrlEntry& e, const x509::Serial& s) {
                               return e.serial < s;
                             });
  if (it == entries_.end() || it->serial != serial) return nullptr;
  return &*it;
}

std::string DescribeCrl(const Crl& crl, std::size_t max_entries) {
  std::ostringstream out;
  out << "CRL:\n";
  out << "  issuer      : " << crl.tbs.issuer.ToString() << "\n";
  out << "  this update : " << util::FormatDateTime(crl.tbs.this_update) << "\n";
  if (crl.tbs.next_update != 0)
    out << "  next update : " << util::FormatDateTime(crl.tbs.next_update)
        << "\n";
  if (crl.tbs.crl_number >= 0)
    out << "  CRL number  : " << crl.tbs.crl_number << "\n";
  out << "  entries     : " << crl.tbs.entries.size() << "\n";
  out << "  size        : "
      << util::HumanBytes(static_cast<double>(crl.SizeBytes())) << "\n";
  std::size_t shown = 0;
  for (const CrlEntry& entry : crl.tbs.entries) {
    if (shown++ >= max_entries) {
      out << "    ... " << (crl.tbs.entries.size() - max_entries) << " more\n";
      break;
    }
    out << "    " << x509::SerialToString(entry.serial) << "  revoked "
        << util::FormatDate(entry.revocation_date) << "  "
        << x509::ReasonCodeName(entry.reason) << "\n";
  }
  return out.str();
}

}  // namespace rev::crl
