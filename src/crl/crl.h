// Certificate Revocation Lists (RFC 5280 §5): construction, DER
// encode/decode, signature verification, and an indexed lookup view.
//
// CRL byte sizes in this library are *measured from real DER encodings*,
// which is what makes the Fig. 5 / Fig. 6 size reproductions meaningful.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "crypto/signer.h"
#include "util/bytes.h"
#include "util/time.h"
#include "x509/certificate.h"
#include "x509/extensions.h"
#include "x509/name.h"

namespace rev::crl {

struct CrlEntry {
  x509::Serial serial;
  util::Timestamp revocation_date = 0;
  // kNoReasonCode encodes "no crlEntryExtensions at all" — the common case
  // the paper observes (§4.2: the vast majority of revocations carry no
  // reason code).
  x509::ReasonCode reason = x509::ReasonCode::kNoReasonCode;
};

// The to-be-signed fields of a CRL.
struct TbsCrl {
  x509::Name issuer;
  util::Timestamp this_update = 0;
  util::Timestamp next_update = 0;  // 0 = omit
  std::vector<CrlEntry> entries;
  std::int64_t crl_number = -1;  // -1 = omit
};

class Crl {
 public:
  TbsCrl tbs;
  crypto::KeyType sig_type = crypto::KeyType::kSimSha256;
  Bytes tbs_der;
  Bytes signature;
  Bytes der;

  std::size_t SizeBytes() const { return der.size(); }

  // True once `t` passes nextUpdate (clients must re-fetch; §2.2).
  bool IsExpired(util::Timestamp t) const {
    return tbs.next_update != 0 && t > tbs.next_update;
  }
};

Crl SignCrl(const TbsCrl& tbs, const crypto::KeyPair& issuer_key);
std::optional<Crl> ParseCrl(BytesView der);
bool VerifyCrlSignature(const Crl& crl, const crypto::PublicKey& issuer_key);

// Sorted lookup index over a CRL's entries (CRLs can hold millions of
// serials; linear scans are unacceptable in the crawler hot path).
class CrlIndex {
 public:
  CrlIndex() = default;
  explicit CrlIndex(const Crl& crl);

  // Returns the matching entry, or nullptr.
  const CrlEntry* Lookup(const x509::Serial& serial) const;
  bool IsRevoked(const x509::Serial& serial) const {
    return Lookup(serial) != nullptr;
  }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<CrlEntry> entries_;  // sorted by serial
};

// Human-readable rendering: header plus the first `max_entries` entries.
std::string DescribeCrl(const Crl& crl, std::size_t max_entries = 10);

}  // namespace rev::crl
