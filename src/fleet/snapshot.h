// Replication wire format for the serving fleet (docs/fleet.md).
//
// The publisher ships two blob kinds per replication epoch: a
// StatusSnapshot — the authoritative StatusIndex's full (key, record)
// state — and a ResponseBatch — the pre-signed DER responses backing the
// same epoch, so a replica admits to the ring already warm. Both blobs are
// sorted by key (byte-identical no matter which thread exported them) and
// carry the shared FNV-1a trailer from util/wire.h: a truncated or
// bit-flipped push must fail Deserialize() and leave the replica's state
// untouched rather than silently answer "good" for a revoked certificate
// (tests/fleet_test.cpp pins the fail-closed property).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "serve/response_cache.h"
#include "serve/status_index.h"
#include "util/bytes.h"
#include "util/time.h"

namespace rev::fleet {

// Format tags: the first u16 of every blob names its kind AND version, so
// a ResponseBatch posted to the snapshot route (or vice versa) is rejected
// as firmly as a corrupt one.
inline constexpr std::uint16_t kStatusSnapshotFormat = 0xA101;
inline constexpr std::uint16_t kResponseBatchFormat = 0xB101;

// Full status state at one replication epoch.
//
// Wire layout (big-endian, util::wire):
//   u16 format (kStatusSnapshotFormat)
//   u64 epoch
//   u64 published_at
//   u32 count
//   count * { blob key | u8 status | u64 revocation_time | u8 reason }
//   u64 FNV-1a over everything above
// Records are strictly increasing by key; Deserialize rejects unsorted or
// duplicate keys, unknown status/reason bytes, and trailing garbage.
struct StatusSnapshot {
  std::uint64_t epoch = 0;
  util::Timestamp published_at = 0;
  std::vector<std::pair<serve::StatusKey, serve::StatusIndex::Record>> records;

  Bytes Serialize() const;
  static std::optional<StatusSnapshot> Deserialize(BytesView blob);
};

// Pre-signed responses for the same epoch.
//
// Wire layout:
//   u16 format (kResponseBatchFormat)
//   u64 epoch
//   u64 published_at
//   u32 count
//   count * { blob key | blob der | u64 signed_at | u64 serve_until }
//   u64 FNV-1a trailer
// Entries keep their own serve_until expiry, so a replayed batch can never
// out-serve a scheduled revocation the publisher already clamped for.
struct ResponseBatch {
  std::uint64_t epoch = 0;
  util::Timestamp published_at = 0;
  std::vector<std::pair<serve::StatusKey, serve::ResponseCache::Entry>>
      entries;

  Bytes Serialize() const;
  static std::optional<ResponseBatch> Deserialize(BytesView blob);
};

}  // namespace rev::fleet
