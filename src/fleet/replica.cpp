#include "fleet/replica.h"

#include <utility>

#include "fleet/snapshot.h"
#include "obs/distrace.h"
#include "obs/metrics.h"

namespace rev::fleet {

namespace {

// Span-id salt for the replica-side apply spans (server markers parented
// under the publisher's push attempt).
constexpr std::uint64_t kApplySalt = 0xAB71C5EEull;

// Records the zero-duration server span marking that this replica handled
// a replication POST carrying a traceparent. Instantaneous on the virtual
// clock, so it is a causality marker — never a critical-path tile.
void RecordApplySpan(const net::HttpRequest& request, const std::string& node,
                     const char* name, int http_status, util::Timestamp now) {
  obs::DistTraceCollector& collector = obs::DistTraceCollector::Global();
  if (!collector.enabled()) return;
  const auto it = request.headers.find(obs::kTraceparentHeader);
  obs::SpanContext parent;
  if (it == request.headers.end() ||
      !obs::ParseTraceparent(it->second, &parent)) {
    return;
  }
  obs::DistSpan span;
  span.trace = parent.trace;
  span.span = obs::DeriveSpanId(parent, kApplySalt);
  span.parent = parent.span;
  span.name = name;
  span.node = obs::InternName(node);
  span.kind = obs::SpanKind::kServer;
  span.status = http_status;
  span.start_ns = obs::VirtualNs(now, 0);
  span.end_ns = span.start_ns;
  collector.Record(span);
}

obs::Counter& ReplicaCounter(const char* metric, const std::string& label) {
  return obs::MetricsRegistry::Global().GetCounter(
      std::string("fleet.replica.") + metric + "{replica=" + label + "}");
}

net::HttpResponse TextResponse(int status, std::string body) {
  net::HttpResponse response;
  response.status = status;
  response.body.assign(body.begin(), body.end());
  return response;
}

std::string AckBody(std::uint64_t epoch) {
  return "ok epoch=" + std::to_string(epoch);
}

}  // namespace

Replica::Replica(std::string name, const x509::Certificate& issuer,
                 crypto::KeyPair key, ReplicaOptions options)
    : name_(std::move(name)),
      responder_(issuer, std::move(key)),
      frontend_(options.frontend),
      metrics_label_(name_ + "#" + std::to_string(obs::NextInstanceId())),
      snapshots_applied_(ReplicaCounter("snapshots_applied", metrics_label_)),
      snapshots_rejected_(ReplicaCounter("snapshots_rejected", metrics_label_)),
      snapshots_stale_(ReplicaCounter("snapshots_stale", metrics_label_)),
      batches_applied_(ReplicaCounter("batches_applied", metrics_label_)),
      batches_rejected_(ReplicaCounter("batches_rejected", metrics_label_)) {
  frontend_.AttachResponder(&responder_);
  frontend_.AddRoute(kSnapshotPath,
                     [this](const net::HttpRequest& request,
                            util::Timestamp now) {
                       return HandleSnapshot(request, now);
                     });
  frontend_.AddRoute(kResponsesPath,
                     [this](const net::HttpRequest& request,
                            util::Timestamp now) {
                       return HandleResponses(request, now);
                     });
  frontend_.AddRoute(kHealthPath,
                     [this](const net::HttpRequest&, util::Timestamp now) {
                       return HandleHealth(now);
                     });
}

void Replica::Install(net::SimNet& net, net::HostProfile profile) {
  net.AddHost(
      name_,
      [this](const net::HttpRequest& request, util::Timestamp now) {
        return frontend_.HandleHttp(request, now);
      },
      profile);
}

net::HttpResponse Replica::HandleSnapshot(const net::HttpRequest& request,
                                          util::Timestamp now) {
  net::HttpResponse response = [&]() -> net::HttpResponse {
    auto snapshot = StatusSnapshot::Deserialize(request.body);
    if (!snapshot) {
      // Fail closed: the previous state keeps serving, the publisher
      // retries.
      snapshots_rejected_.Increment();
      return TextResponse(400, "bad snapshot blob");
    }
    std::lock_guard lock(import_mu_);
    const std::uint64_t applied =
        applied_epoch_.load(std::memory_order_acquire);
    if (snapshot->epoch <= applied) {
      // Replayed push of an epoch we already hold — idempotent ack so a
      // retried POST whose first ack was lost still converges.
      snapshots_stale_.Increment();
      return TextResponse(200, AckBody(applied));
    }
    frontend_.ImportStatusRecords(snapshot->records);
    applied_published_at_.store(snapshot->published_at,
                                std::memory_order_release);
    applied_epoch_.store(snapshot->epoch, std::memory_order_release);
    snapshots_applied_.Increment();
    return TextResponse(200, AckBody(snapshot->epoch));
  }();
  RecordApplySpan(request, name_, "fleet.apply_snapshot", response.status,
                  now);
  return response;
}

net::HttpResponse Replica::HandleResponses(const net::HttpRequest& request,
                                           util::Timestamp now) {
  net::HttpResponse response = [&]() -> net::HttpResponse {
    auto batch = ResponseBatch::Deserialize(request.body);
    if (!batch) {
      batches_rejected_.Increment();
      return TextResponse(400, "bad response batch blob");
    }
    std::lock_guard lock(import_mu_);
    const std::uint64_t applied =
        applied_epoch_.load(std::memory_order_acquire);
    if (batch->epoch != applied) {
      // Pre-signed responses are only valid against the index they were
      // signed with; a batch for any other epoch is refused outright.
      batches_rejected_.Increment();
      return TextResponse(409, "epoch mismatch: batch " +
                                   std::to_string(batch->epoch) +
                                   ", applied " + std::to_string(applied));
    }
    frontend_.ImportResponseEntries(std::move(batch->entries));
    batches_applied_.Increment();
    return TextResponse(200, AckBody(applied));
  }();
  RecordApplySpan(request, name_, "fleet.apply_responses", response.status,
                  now);
  return response;
}

net::HttpResponse Replica::HandleHealth(util::Timestamp) const {
  const std::uint64_t epoch = applied_epoch();
  return TextResponse(200, AckBody(epoch) +
                               " warmed=" + (epoch != 0 ? "1" : "0"));
}

Replica::Counters Replica::counters() const {
  Counters counters;
  counters.snapshots_applied = snapshots_applied_.Value();
  counters.snapshots_rejected = snapshots_rejected_.Value();
  counters.snapshots_stale = snapshots_stale_.Value();
  counters.batches_applied = batches_applied_.Value();
  counters.batches_rejected = batches_rejected_.Value();
  return counters;
}

}  // namespace rev::fleet
