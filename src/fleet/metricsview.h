// Fleet-wide metrics aggregation: scrape every frontend's GET
// /metrics.json over SimNet, parse each snapshot, strip the per-instance
// labels, and merge into one fleet view (docs/observability.md).
//
// Each frontend exposes only its own instance-labeled instruments on
// /metrics.json (serve.latency_ns{frontend=N}, fleet.replica.*{replica=X}
// ...), so merging scrapes from several simulated nodes inside one process
// never double-counts process-global counters like net.fetch. Label
// stripping happens here, after the per-host parse: stripped names from
// different hosts collide on purpose — that collision IS the aggregation
// (counters sum, histogram buckets sum, min/max widen).
//
// This lives in fleet/, not obs/, because scraping needs net::SimNet and
// the obs layer must stay network-free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/simnet.h"
#include "obs/metrics.h"
#include "util/time.h"

namespace rev::fleet {

struct FleetMetricsView {
  // Label-stripped union of every successfully scraped host's snapshot.
  obs::MetricsSnapshot merged;
  std::size_t hosts_ok = 0;      // scrapes that returned parseable JSON
  std::size_t hosts_failed = 0;  // fetch errors, non-200s, parse failures
  std::uint64_t scrape_bytes = 0;  // wire bytes moved by the scrapes
};

// Scrapes GET http://<host>/metrics.json from each host at virtual time
// `now` (hosts in the given order; deterministic). A host that fails to
// answer or to parse is counted in hosts_failed and skipped — aggregation
// is best-effort, like any scrape-based pipeline.
FleetMetricsView ScrapeFleetMetrics(net::SimNet& net,
                                    const std::vector<std::string>& hosts,
                                    util::Timestamp now,
                                    double timeout_seconds = 5.0);

}  // namespace rev::fleet
