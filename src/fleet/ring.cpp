#include "fleet/ring.h"

#include <algorithm>

#include "serve/status_index.h"
#include "util/wire.h"

namespace rev::fleet {

namespace {

// splitmix64 finalizer: turns (name hash, vnode) into a ring point.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t NameHash(const std::string& name) {
  return util::wire::Fnv1a(
      BytesView(reinterpret_cast<const std::uint8_t*>(name.data()),
                name.size()));
}

}  // namespace

HashRing::HashRing(RingOptions options) : options_(options) {
  if (options_.vnodes == 0) options_.vnodes = 1;
}

void HashRing::AddNode(const std::string& name, bool enabled) {
  if (FindNode(name) != nullptr) return;
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.name = name;
  node.enabled.store(enabled, std::memory_order_release);
  const auto index = static_cast<std::uint32_t>(nodes_.size() - 1);
  const std::uint64_t base = NameHash(name);
  for (std::size_t v = 0; v < options_.vnodes; ++v)
    points_.push_back({Mix64(base ^ Mix64(v)), index});
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.where < b.where ||
                     (a.where == b.where && a.node < b.node);
            });
}

void HashRing::SetEnabled(const std::string& name, bool enabled) {
  for (Node& node : nodes_)
    if (node.name == name) {
      node.enabled.store(enabled, std::memory_order_release);
      return;
    }
}

bool HashRing::IsEnabled(const std::string& name) const {
  const Node* node = FindNode(name);
  return node != nullptr && node->enabled.load(std::memory_order_acquire);
}

const HashRing::Node* HashRing::FindNode(const std::string& name) const {
  for (const Node& node : nodes_)
    if (node.name == name) return &node;
  return nullptr;
}

std::vector<const std::string*> HashRing::PreferenceList(
    BytesView key, std::size_t count, bool include_disabled) const {
  std::vector<const std::string*> out;
  if (points_.empty() || count == 0) return out;
  // Same word-wise mix the serve layer keys its shards with.
  const std::uint64_t h = serve::StatusKeyHash{}(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, std::uint64_t value) {
                               return p.where < value;
                             });
  std::vector<bool> taken(nodes_.size(), false);
  for (std::size_t walked = 0; walked < points_.size() && out.size() < count;
       ++walked, ++it) {
    if (it == points_.end()) it = points_.begin();
    const std::uint32_t index = it->node;
    if (taken[index]) continue;
    taken[index] = true;  // distinct nodes, enabled or not, count once
    if (include_disabled ||
        nodes_[index].enabled.load(std::memory_order_acquire))
      out.push_back(&nodes_[index].name);
  }
  return out;
}

const std::string* HashRing::PrimaryFor(BytesView key) const {
  const auto list = PreferenceList(key, 1);
  return list.empty() ? nullptr : list.front();
}

std::size_t HashRing::enabled_count() const {
  std::size_t count = 0;
  for (const Node& node : nodes_)
    if (node.enabled.load(std::memory_order_acquire)) ++count;
  return count;
}

std::vector<std::string> HashRing::node_names() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const Node& node : nodes_) names.push_back(node.name);
  return names;
}

}  // namespace rev::fleet
