#include "fleet/snapshot.h"

#include <memory>

#include "util/wire.h"

namespace rev::fleet {

namespace wire = util::wire;

namespace {

bool ValidStatusByte(std::uint8_t b) { return b <= 2; }

// ReasonCode rides as the two's-complement byte of its int8 value; 0xFF is
// kNoReasonCode (-1), 7 is the RFC 5280 hole.
bool ValidReasonByte(std::uint8_t b) {
  return b == 0xFF || b <= 6 || b == 8 || b == 9 || b == 10;
}

}  // namespace

Bytes StatusSnapshot::Serialize() const {
  Bytes out;
  wire::PutU16(out, kStatusSnapshotFormat);
  wire::PutU64(out, epoch);
  wire::PutU64(out, static_cast<std::uint64_t>(published_at));
  wire::PutU32(out, static_cast<std::uint32_t>(records.size()));
  for (const auto& [key, record] : records) {
    wire::PutBlob(out, key);
    out.push_back(static_cast<std::uint8_t>(record.status));
    wire::PutU64(out, static_cast<std::uint64_t>(record.revocation_time));
    out.push_back(static_cast<std::uint8_t>(record.reason));
  }
  wire::SealChecksum(out);
  return out;
}

std::optional<StatusSnapshot> StatusSnapshot::Deserialize(BytesView blob) {
  BytesView payload;
  if (!wire::CheckChecksum(blob, &payload)) return std::nullopt;
  std::size_t pos = 0;
  std::uint16_t format;
  if (!wire::GetU16(payload, pos, &format) || format != kStatusSnapshotFormat)
    return std::nullopt;
  StatusSnapshot snapshot;
  std::uint64_t published_at;
  std::uint32_t count;
  if (!wire::GetU64(payload, pos, &snapshot.epoch) ||
      !wire::GetU64(payload, pos, &published_at) ||
      !wire::GetU32(payload, pos, &count))
    return std::nullopt;
  snapshot.published_at = static_cast<util::Timestamp>(published_at);
  snapshot.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    serve::StatusKey key;
    if (!wire::GetBlob(payload, pos, &key)) return std::nullopt;
    // Strictly increasing keys: sorted, no duplicates.
    if (!snapshot.records.empty() && !(snapshot.records.back().first < key))
      return std::nullopt;
    if (pos + 1 + 8 + 1 > payload.size()) return std::nullopt;
    const std::uint8_t status_byte = payload[pos++];
    std::uint64_t revocation_time;
    if (!wire::GetU64(payload, pos, &revocation_time)) return std::nullopt;
    const std::uint8_t reason_byte = payload[pos++];
    if (!ValidStatusByte(status_byte) || !ValidReasonByte(reason_byte))
      return std::nullopt;
    serve::StatusIndex::Record record;
    record.status = static_cast<ocsp::CertStatus>(status_byte);
    record.revocation_time = static_cast<util::Timestamp>(revocation_time);
    record.reason =
        static_cast<x509::ReasonCode>(static_cast<std::int8_t>(reason_byte));
    snapshot.records.emplace_back(std::move(key), record);
  }
  if (pos != payload.size()) return std::nullopt;
  return snapshot;
}

Bytes ResponseBatch::Serialize() const {
  Bytes out;
  wire::PutU16(out, kResponseBatchFormat);
  wire::PutU64(out, epoch);
  wire::PutU64(out, static_cast<std::uint64_t>(published_at));
  wire::PutU32(out, static_cast<std::uint32_t>(entries.size()));
  for (const auto& [key, entry] : entries) {
    wire::PutBlob(out, key);
    wire::PutBlob(out, entry.der ? BytesView(*entry.der) : BytesView());
    wire::PutU64(out, static_cast<std::uint64_t>(entry.signed_at));
    wire::PutU64(out, static_cast<std::uint64_t>(entry.serve_until));
  }
  wire::SealChecksum(out);
  return out;
}

std::optional<ResponseBatch> ResponseBatch::Deserialize(BytesView blob) {
  BytesView payload;
  if (!wire::CheckChecksum(blob, &payload)) return std::nullopt;
  std::size_t pos = 0;
  std::uint16_t format;
  if (!wire::GetU16(payload, pos, &format) || format != kResponseBatchFormat)
    return std::nullopt;
  ResponseBatch batch;
  std::uint64_t published_at;
  std::uint32_t count;
  if (!wire::GetU64(payload, pos, &batch.epoch) ||
      !wire::GetU64(payload, pos, &published_at) ||
      !wire::GetU32(payload, pos, &count))
    return std::nullopt;
  batch.published_at = static_cast<util::Timestamp>(published_at);
  batch.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    serve::StatusKey key;
    Bytes der;
    if (!wire::GetBlob(payload, pos, &key)) return std::nullopt;
    if (!batch.entries.empty() && !(batch.entries.back().first < key))
      return std::nullopt;
    if (!wire::GetBlob(payload, pos, &der) || der.empty()) return std::nullopt;
    std::uint64_t signed_at, serve_until;
    if (!wire::GetU64(payload, pos, &signed_at) ||
        !wire::GetU64(payload, pos, &serve_until))
      return std::nullopt;
    serve::ResponseCache::Entry entry;
    entry.der = std::make_shared<const Bytes>(std::move(der));
    entry.signed_at = static_cast<util::Timestamp>(signed_at);
    entry.serve_until = static_cast<util::Timestamp>(serve_until);
    batch.entries.emplace_back(std::move(key), std::move(entry));
  }
  if (pos != payload.size()) return std::nullopt;
  return batch;
}

}  // namespace rev::fleet
