// Deterministic consistent-hash ring over replica hosts (docs/fleet.md).
//
// Each node contributes `vnodes` points on a 64-bit ring; a key routes to
// the first enabled node clockwise from its hash, and its preference list
// is the next distinct enabled nodes after that. Placement is a pure
// function of (node name, vnode index) — no RNG, no insertion-order
// dependence — so every client computes the same routing table, and
// removing one node only reassigns the keys that node owned (minimal
// disruption, pinned in tests/fleet_test.cpp).
//
// Thread-safety: topology (AddNode) is fixed before serving starts;
// SetEnabled flips a per-node atomic, so the health monitor can mark nodes
// down while clients walk preference lists concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace rev::fleet {

struct RingOptions {
  // Points per node. More vnodes = smoother balance; 64 keeps the spread
  // within ~2x at 5 nodes (balance test) while PreferenceList stays a
  // short binary search + walk.
  std::size_t vnodes = 64;
};

class HashRing {
 public:
  explicit HashRing(RingOptions options = {});

  // Registers a node. Call before serving starts (not thread-safe against
  // readers). `enabled = false` keeps the node out of routing until the
  // health monitor admits it (warm-up gating).
  void AddNode(const std::string& name, bool enabled = true);

  // Atomically admits or evicts a node from routing. Unknown names are
  // ignored. Safe concurrent with PreferenceList/PrimaryFor.
  void SetEnabled(const std::string& name, bool enabled);
  bool IsEnabled(const std::string& name) const;

  // The first `count` distinct enabled nodes clockwise from `key`'s hash —
  // primary first, then failover targets. Shorter than `count` when fewer
  // nodes are enabled; empty when none are. With `include_disabled` the
  // walk ignores health marks and returns distinct nodes regardless —
  // FleetClient's last-resort (panic) routing, for the window where the
  // health monitor's hysteresis lags a storm and the "healthy" view is
  // empty or entirely dead.
  std::vector<const std::string*> PreferenceList(
      BytesView key, std::size_t count, bool include_disabled = false) const;

  // PreferenceList(key, 1), or nullptr when no node is enabled.
  const std::string* PrimaryFor(BytesView key) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t enabled_count() const;
  // Node names in registration order.
  std::vector<std::string> node_names() const;

 private:
  struct Node {
    std::string name;
    std::atomic<bool> enabled{true};
  };
  struct Point {
    std::uint64_t where;
    std::uint32_t node;
  };

  const Node* FindNode(const std::string& name) const;

  RingOptions options_;
  std::deque<Node> nodes_;       // stable addresses (atomics never move)
  std::vector<Point> points_;    // sorted by `where`
};

}  // namespace rev::fleet
