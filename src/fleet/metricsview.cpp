#include "fleet/metricsview.h"

namespace rev::fleet {

FleetMetricsView ScrapeFleetMetrics(net::SimNet& net,
                                    const std::vector<std::string>& hosts,
                                    util::Timestamp now,
                                    double timeout_seconds) {
  FleetMetricsView view;
  for (const std::string& host : hosts) {
    net::HttpRequest request;
    request.method = "GET";
    request.host = host;
    request.path = "/metrics.json";
    const net::FetchResult result = net.Fetch(request, now, timeout_seconds);
    view.scrape_bytes += result.bytes_transferred;
    if (result.error != net::FetchError::kOk ||
        result.response.status != 200) {
      ++view.hosts_failed;
      continue;
    }
    const std::string body(result.response.body.begin(),
                           result.response.body.end());
    obs::MetricsSnapshot snapshot;
    if (!obs::ParseMetricsJson(body, &snapshot)) {
      ++view.hosts_failed;
      continue;
    }
    ++view.hosts_ok;
    obs::MergeSnapshot(&view.merged, obs::StripLabels(snapshot));
  }
  return view;
}

}  // namespace rev::fleet
