#include "fleet/publisher.h"

#include <algorithm>
#include <utility>

#include "fleet/replica.h"
#include "fleet/snapshot.h"
#include "obs/distrace.h"

namespace rev::fleet {

namespace {

std::string PublisherMetric(const char* metric, const std::string& label) {
  return std::string("fleet.publisher.") + metric + "{publisher=" + label +
         "}";
}

// Span-id salt for per-replica push legs; combined with a per-publish leg
// counter so the snapshot and response pushes to every replica get
// distinct span ids under one "fleet.publish" root.
constexpr std::uint64_t kPushSalt = 0x9B1D5EEDull;

}  // namespace

Publisher::Publisher(serve::Frontend* authority, PublisherOptions options)
    : authority_(authority),
      options_(options),
      metrics_label_(std::to_string(obs::NextInstanceId())),
      pushes_ok_(obs::MetricsRegistry::Global().GetCounter(
          PublisherMetric("pushes_ok", metrics_label_))),
      pushes_failed_(obs::MetricsRegistry::Global().GetCounter(
          PublisherMetric("pushes_failed", metrics_label_))),
      bytes_pushed_(obs::MetricsRegistry::Global().GetCounter(
          PublisherMetric("bytes_pushed", metrics_label_))),
      max_lag_(obs::MetricsRegistry::Global().GetGauge(
          PublisherMetric("max_lag_epochs", metrics_label_))) {}

Publisher::~Publisher() = default;

void Publisher::AddReplica(std::string host) {
  if (std::find(replicas_.begin(), replicas_.end(), host) != replicas_.end())
    return;
  acked_.emplace(host, 0);
  replicas_.push_back(std::move(host));
}

Publisher::PushStats Publisher::Publish(net::SimNet& net,
                                        util::Timestamp now) {
  PushStats stats;
  stats.epoch = ++epoch_;
  publish_times_[stats.epoch] = now;

  // Export once; the same serialized blobs go to every replica, so the
  // bytes any two replicas applied for one epoch are identical.
  authority_->Flush();
  StatusSnapshot snapshot;
  snapshot.epoch = stats.epoch;
  snapshot.published_at = now;
  snapshot.records = authority_->index().ExportRecords();
  const Bytes snapshot_blob = snapshot.Serialize();
  stats.snapshot_bytes = snapshot_blob.size();

  Bytes batch_blob;
  if (options_.push_responses) {
    ResponseBatch batch;
    batch.epoch = stats.epoch;
    batch.published_at = now;
    batch.entries = authority_->cache().ExportEntries(now);
    batch_blob = batch.Serialize();
    stats.response_bytes = batch_blob.size();
  }

  const std::uint64_t epoch = stats.epoch;
  const auto ack_validator = [epoch](const net::HttpResponse& response) {
    const std::string body(response.body.begin(), response.body.end());
    return body.rfind("ok epoch=", 0) == 0 &&
           body.find("epoch=" + std::to_string(epoch)) != std::string::npos;
  };

  obs::DistTraceCollector& collector = obs::DistTraceCollector::Global();
  const bool traced = collector.enabled();
  obs::SpanContext root_ctx;
  std::uint64_t leg_counter = 0;
  if (traced) {
    // One trace per epoch push, minted from the epoch number alone, so the
    // fan-out tree is bit-identical run to run.
    const obs::TraceId trace = obs::MakeTraceId(0xF1EE7ull, stats.epoch);
    root_ctx = obs::SpanContext{trace, obs::RootSpanId(trace)};
  }
  // One leg = one POST (snapshot or response batch) to one replica, routed
  // through FetchWithRetry so the leg's retry attempts and exchanges
  // stitch underneath it.
  const auto push = [&](const std::string& host, const std::string& path,
                        const Bytes& blob, util::Timestamp at) {
    net::HttpRequest request;
    request.method = "POST";
    request.host = host;
    request.path = path;
    request.body = blob;
    if (!traced) {
      return net::FetchWithRetry(net, request, at, options_.retry,
                                 options_.timeout_seconds, ack_validator);
    }
    const obs::SpanContext leg{
        root_ctx.trace, obs::DeriveSpanId(root_ctx, kPushSalt + leg_counter++)};
    request.headers[obs::kTraceparentHeader] = obs::FormatTraceparent(leg);
    net::RetryResult result =
        net::FetchWithRetry(net, request, at, options_.retry,
                            options_.timeout_seconds, ack_validator);
    obs::DistSpan span;
    span.trace = root_ctx.trace;
    span.span = leg.span;
    span.parent = root_ctx.span;
    span.name = "fleet.push";
    span.node = obs::InternName(host);
    span.kind = obs::SpanKind::kInternal;
    span.status = result.ok() ? result.fetch.response.status : 0;
    span.start_ns = obs::VirtualNs(at, 0);
    span.end_ns = obs::VirtualNs(at, result.total_elapsed_seconds);
    collector.Record(span);
    return result;
  };

  for (const std::string& host : replicas_) {
    net::RetryResult pushed =
        push(host, Replica::kSnapshotPath, snapshot_blob, now);
    stats.elapsed_seconds += pushed.total_elapsed_seconds;
    bytes_pushed_.Add(pushed.total_bytes);
    bool ok = pushed.ok();
    if (ok && options_.push_responses) {
      net::RetryResult responses =
          push(host, Replica::kResponsesPath, batch_blob, pushed.finished_at);
      stats.elapsed_seconds += responses.total_elapsed_seconds;
      bytes_pushed_.Add(responses.total_bytes);
      // The snapshot landed either way; a failed response push only costs
      // the replica cache warmth, not correctness.
    }
    if (ok) {
      acked_[host] = epoch;
      ++stats.replicas_ok;
      pushes_ok_.Increment();
    } else {
      ++stats.replicas_failed;
      pushes_failed_.Increment();
    }
  }
  if (traced) {
    obs::DistSpan span;
    span.trace = root_ctx.trace;
    span.span = root_ctx.span;
    span.parent = 0;
    span.name = "fleet.publish";
    span.node = "publisher";
    span.kind = obs::SpanKind::kInternal;
    span.status = stats.replicas_failed == 0 ? 200 : 0;
    span.start_ns = obs::VirtualNs(now, 0);
    span.end_ns = obs::VirtualNs(now, stats.elapsed_seconds);
    collector.Record(span);
  }
  max_lag_.Set(static_cast<std::int64_t>(MaxLagEpochs()));
  return stats;
}

std::uint64_t Publisher::AckedEpoch(const std::string& host) const {
  const auto it = acked_.find(host);
  return it == acked_.end() ? 0 : it->second;
}

std::uint64_t Publisher::MaxLagEpochs() const {
  std::uint64_t min_acked = epoch_;
  for (const auto& [host, acked] : acked_)
    min_acked = std::min(min_acked, acked);
  return epoch_ - min_acked;
}

util::Timestamp Publisher::PublishTimeOf(std::uint64_t epoch) const {
  const auto it = publish_times_.find(epoch);
  return it == publish_times_.end() ? 0 : it->second;
}

}  // namespace rev::fleet
