#include "fleet/publisher.h"

#include <algorithm>
#include <utility>

#include "fleet/replica.h"
#include "fleet/snapshot.h"

namespace rev::fleet {

namespace {

std::string PublisherMetric(const char* metric, const std::string& label) {
  return std::string("fleet.publisher.") + metric + "{publisher=" + label +
         "}";
}

}  // namespace

Publisher::Publisher(serve::Frontend* authority, PublisherOptions options)
    : authority_(authority),
      options_(options),
      metrics_label_(std::to_string(obs::NextInstanceId())),
      pushes_ok_(obs::MetricsRegistry::Global().GetCounter(
          PublisherMetric("pushes_ok", metrics_label_))),
      pushes_failed_(obs::MetricsRegistry::Global().GetCounter(
          PublisherMetric("pushes_failed", metrics_label_))),
      bytes_pushed_(obs::MetricsRegistry::Global().GetCounter(
          PublisherMetric("bytes_pushed", metrics_label_))),
      max_lag_(obs::MetricsRegistry::Global().GetGauge(
          PublisherMetric("max_lag_epochs", metrics_label_))) {}

Publisher::~Publisher() = default;

void Publisher::AddReplica(std::string host) {
  if (std::find(replicas_.begin(), replicas_.end(), host) != replicas_.end())
    return;
  acked_.emplace(host, 0);
  replicas_.push_back(std::move(host));
}

Publisher::PushStats Publisher::Publish(net::SimNet& net,
                                        util::Timestamp now) {
  PushStats stats;
  stats.epoch = ++epoch_;
  publish_times_[stats.epoch] = now;

  // Export once; the same serialized blobs go to every replica, so the
  // bytes any two replicas applied for one epoch are identical.
  authority_->Flush();
  StatusSnapshot snapshot;
  snapshot.epoch = stats.epoch;
  snapshot.published_at = now;
  snapshot.records = authority_->index().ExportRecords();
  const Bytes snapshot_blob = snapshot.Serialize();
  stats.snapshot_bytes = snapshot_blob.size();

  Bytes batch_blob;
  if (options_.push_responses) {
    ResponseBatch batch;
    batch.epoch = stats.epoch;
    batch.published_at = now;
    batch.entries = authority_->cache().ExportEntries(now);
    batch_blob = batch.Serialize();
    stats.response_bytes = batch_blob.size();
  }

  const std::uint64_t epoch = stats.epoch;
  const auto ack_validator = [epoch](const net::HttpResponse& response) {
    const std::string body(response.body.begin(), response.body.end());
    return body.rfind("ok epoch=", 0) == 0 &&
           body.find("epoch=" + std::to_string(epoch)) != std::string::npos;
  };

  for (const std::string& host : replicas_) {
    const std::string base = "http://" + host;
    net::RetryResult pushed = net::PostWithRetry(
        net, base + Replica::kSnapshotPath, snapshot_blob, now,
        options_.retry, options_.timeout_seconds, ack_validator);
    stats.elapsed_seconds += pushed.total_elapsed_seconds;
    bytes_pushed_.Add(pushed.total_bytes);
    bool ok = pushed.ok();
    if (ok && options_.push_responses) {
      net::RetryResult responses = net::PostWithRetry(
          net, base + Replica::kResponsesPath, batch_blob, pushed.finished_at,
          options_.retry, options_.timeout_seconds, ack_validator);
      stats.elapsed_seconds += responses.total_elapsed_seconds;
      bytes_pushed_.Add(responses.total_bytes);
      // The snapshot landed either way; a failed response push only costs
      // the replica cache warmth, not correctness.
    }
    if (ok) {
      acked_[host] = epoch;
      ++stats.replicas_ok;
      pushes_ok_.Increment();
    } else {
      ++stats.replicas_failed;
      pushes_failed_.Increment();
    }
  }
  max_lag_.Set(static_cast<std::int64_t>(MaxLagEpochs()));
  return stats;
}

std::uint64_t Publisher::AckedEpoch(const std::string& host) const {
  const auto it = acked_.find(host);
  return it == acked_.end() ? 0 : it->second;
}

std::uint64_t Publisher::MaxLagEpochs() const {
  std::uint64_t min_acked = epoch_;
  for (const auto& [host, acked] : acked_)
    min_acked = std::min(min_acked, acked);
  return epoch_ - min_acked;
}

util::Timestamp Publisher::PublishTimeOf(std::uint64_t epoch) const {
  const auto it = publish_times_.find(epoch);
  return it == publish_times_.end() ? 0 : it->second;
}

}  // namespace rev::fleet
