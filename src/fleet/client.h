// The fleet-aware OCSP client: consistent-hash routing, sequential
// failover, and hedged second requests (docs/fleet.md).
//
// A query walks the key's ring preference list. Fast failures — refused
// connection, 503 shed, a body that fails OCSP parse or signature
// verification — fail over to the next replica immediately, paying only
// the failed attempt's cost. Slow failures are hedged: when an attempt's
// exchange runs past `hedge_budget_seconds` (latency storm, timeout), the
// client models having fired a second request to the next replica at the
// budget mark, and the observed latency is whichever answer would have
// arrived first — min(primary, budget + secondary). That keeps storm p99
// near (budget + clean latency) instead of the 10s timeout cliff.
//
// A 503's Retry-After marks the replica down client-side until the hint
// expires; marked replicas are skipped in later preference walks.
//
// When every admitted candidate has failed, the client enters last-resort
// (panic) routing: it re-walks the ring IGNORING health marks and tries
// the replicas it has not touched yet. The health monitor's hysteresis
// necessarily lags a storm — a latency burst can get the healthy replica
// marked down in the same tick an outage kills the marked-up one — and a
// replica the monitor distrusts can still hold a valid (possibly stale)
// signed answer, which beats no answer. Validation still applies, so
// panic routing can serve stale, never wrong.
//
// Answers are validated before acceptance: OCSP parse, responseStatus
// successful, serial match, and (when `responder_key` is set) signature
// verification — a bit-flipped body that still parses must fail over, not
// return a wrong status. One FleetClient is one simulated client: NOT
// thread-safe; benches run one per thread and merge counters in client
// order so totals are bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "crypto/signer.h"
#include "fleet/ring.h"
#include "net/simnet.h"
#include "obs/distrace.h"
#include "ocsp/ocsp.h"
#include "util/time.h"

namespace rev::fleet {

struct FleetClientOptions {
  // Replicas tried per query (preference-list length).
  std::size_t max_replicas = 3;
  // Hedge trigger: an attempt slower than this gets a modeled second
  // request to the next replica.
  double hedge_budget_seconds = 0.25;
  // Per-attempt exchange timeout.
  double timeout_seconds = 2.0;
  // Floor on the client-side mark-down a 503 Retry-After causes.
  std::int64_t markdown_floor_seconds = 1;
  // When set, every accepted answer must verify against this key; corrupt
  // bodies then fail over instead of being believed.
  std::optional<crypto::PublicKey> responder_key;
  // Seed for distributed-trace ids (used only while the collector is
  // enabled). Queries mint TraceId(trace_seed, query#) — benches derive
  // this from (run seed, client index) so traces are bit-identical at any
  // thread count.
  std::uint64_t trace_seed = 0;
};

class FleetClient {
 public:
  // `net` and `ring` are borrowed; the ring is shared with the health
  // monitor, which flips membership concurrently.
  FleetClient(net::SimNet* net, const HashRing* ring,
              FleetClientOptions options = {});

  struct QueryResult {
    bool ok = false;  // a validated answer was obtained
    ocsp::CertStatus status = ocsp::CertStatus::kUnknown;
    // Client-observed latency, hedge-aware (seconds of simulated time).
    double elapsed_seconds = 0;
    int replicas_tried = 0;
    bool hedged = false;
    bool failed_over = false;     // answer came from a non-primary replica
    std::string served_by;        // replica that produced the answer
    util::Timestamp produced_at = 0;  // the response's producedAt
    // Distributed-trace id of this query (zero unless the collector was
    // enabled): failover and hedge legs all share it, distinct spans each.
    obs::TraceId trace_id;
  };

  // `request_der` must be a single-cert OCSP request for the certificate
  // `key` (issuer-key-hash || serial) identifies; the key drives ring
  // placement and the serial-match check.
  QueryResult Query(BytesView request_der, BytesView key,
                    util::Timestamp now);

  struct Counters {
    std::uint64_t queries = 0;
    std::uint64_t answered = 0;
    std::uint64_t failovers = 0;      // attempts beyond the first replica
    std::uint64_t hedges = 0;         // hedged second requests fired
    std::uint64_t hedge_wins = 0;     // hedge answered first
    std::uint64_t shed_503 = 0;       // 503s observed
    std::uint64_t invalid_bodies = 0; // parse/signature rejections
    std::uint64_t markdown_skips = 0; // replicas skipped while marked down
    std::uint64_t last_resort = 0;    // panic attempts at disabled replicas
    std::uint64_t exhausted = 0;      // no replica yielded a valid answer
  };
  const Counters& counters() const { return counters_; }

 private:
  struct Attempt {
    bool valid = false;
    ocsp::CertStatus status = ocsp::CertStatus::kUnknown;
    util::Timestamp produced_at = 0;
    double elapsed_seconds = 0;
    bool slow = false;  // ran past the hedge budget (or timed out)
  };

  // `ctx` (may be null) is this attempt's span context; it rides the
  // traceparent header so the exchange and the replica's server span
  // stitch under it.
  Attempt TryReplica(const std::string& host, BytesView request_der,
                     BytesView key, util::Timestamp now,
                     const obs::SpanContext* ctx);

  net::SimNet* net_;
  const HashRing* ring_;
  FleetClientOptions options_;
  // Client-side 503 mark-downs: host -> virtual time the mark expires.
  std::map<std::string, util::Timestamp> marked_down_until_;
  Counters counters_;
  std::uint64_t trace_counter_ = 0;  // queries minted (trace-id sequence)
};

}  // namespace rev::fleet
