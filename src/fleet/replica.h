// One member of the serving fleet: a serve::Frontend fed by the
// replication channel instead of by local responder mutations.
//
// The replica constructs its own ocsp::Responder over the SAME issuer
// certificate and sim key as the authority. Signing is a pure function of
// (record, now) under the deterministic sim scheme, so a response the
// replica signs on a cache miss is byte-identical to the authority's —
// clients cannot tell replicas apart by signature, only by freshness.
//
// State arrives via two POST routes the publisher pushes to:
//   POST /fleet/snapshot   — StatusSnapshot blob; full-state import,
//                            diffed into the index (fail-closed: a blob
//                            that fails Deserialize is rejected with 400
//                            and the previous state keeps serving)
//   POST /fleet/responses  — ResponseBatch blob for the SAME epoch; 409 on
//                            mismatch (responses must never outrun the
//                            index they were signed against)
// plus GET /fleet/health — "ok epoch=N warmed=0|1" — which the health
// monitor polls for ring admission. See docs/fleet.md.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "crypto/signer.h"
#include "net/simnet.h"
#include "ocsp/responder.h"
#include "serve/frontend.h"
#include "util/time.h"
#include "x509/certificate.h"

namespace rev::fleet {

struct ReplicaOptions {
  serve::FrontendOptions frontend;
};

class Replica {
 public:
  static constexpr const char* kSnapshotPath = "/fleet/snapshot";
  static constexpr const char* kResponsesPath = "/fleet/responses";
  static constexpr const char* kHealthPath = "/fleet/health";

  // `name` is the SimNet hostname; `issuer`/`key` must match the
  // authority's so replica-signed responses verify under the same public
  // key.
  Replica(std::string name, const x509::Certificate& issuer,
          crypto::KeyPair key, ReplicaOptions options = {});

  // Registers this replica's HTTP surface (OCSP + /fleet/*) on `net`.
  void Install(net::SimNet& net, net::HostProfile profile = {});

  const std::string& name() const { return name_; }
  serve::Frontend& frontend() { return frontend_; }
  const serve::Frontend& frontend() const { return frontend_; }

  // Replication epoch of the last applied snapshot (0 = never warmed).
  std::uint64_t applied_epoch() const {
    return applied_epoch_.load(std::memory_order_acquire);
  }
  // Publisher timestamp of the applied snapshot, for staleness accounting.
  util::Timestamp applied_published_at() const {
    return applied_published_at_.load(std::memory_order_acquire);
  }
  bool warmed() const { return applied_epoch() != 0; }

  struct Counters {
    std::uint64_t snapshots_applied = 0;
    std::uint64_t snapshots_rejected = 0;  // corrupt/malformed pushes
    std::uint64_t snapshots_stale = 0;     // epoch <= applied (replay)
    std::uint64_t batches_applied = 0;
    std::uint64_t batches_rejected = 0;    // corrupt or epoch mismatch
  };
  Counters counters() const;

 private:
  net::HttpResponse HandleSnapshot(const net::HttpRequest& request,
                                   util::Timestamp now);
  net::HttpResponse HandleResponses(const net::HttpRequest& request,
                                    util::Timestamp now);
  net::HttpResponse HandleHealth(util::Timestamp now) const;

  std::string name_;
  ocsp::Responder responder_;
  serve::Frontend frontend_;

  // Serializes importers. SimNet's exchange mutex already guarantees this
  // for pushes arriving over the wire; the lock keeps direct handler calls
  // (tests) equally safe.
  std::mutex import_mu_;
  std::atomic<std::uint64_t> applied_epoch_{0};
  std::atomic<util::Timestamp> applied_published_at_{0};

  // Registry label "name#instance" — the instance suffix keeps tallies
  // exact when tests re-create a replica under the same hostname.
  std::string metrics_label_;
  obs::Counter& snapshots_applied_;
  obs::Counter& snapshots_rejected_;
  obs::Counter& snapshots_stale_;
  obs::Counter& batches_applied_;
  obs::Counter& batches_rejected_;
};

}  // namespace rev::fleet
