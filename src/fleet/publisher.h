// The replication publisher: exports the authoritative frontend's full
// state as one epoch (StatusSnapshot + pre-signed ResponseBatch), pushes
// it to every replica over SimNet through the retrying fetch stack, and
// tracks each replica's acknowledged epoch so lag is observable.
//
// Push, not pull: the authority knows when state changed (a revocation
// batch landed), so it drives the fan-out; a replica that misses a push
// (outage mid-storm) simply stays at its old epoch — still serving, merely
// stale — until the next push lands, and the acked-epoch table makes that
// lag visible to the bench's freshness accounting. Acks are validated
// ("ok epoch=N" with the pushed epoch) so a corrupted or substituted ack
// body re-enters the retry loop instead of silently marking the replica
// current. See docs/fleet.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/retry.h"
#include "net/simnet.h"
#include "obs/metrics.h"
#include "serve/frontend.h"
#include "util/time.h"

namespace rev::fleet {

struct PublisherOptions {
  // Per-replica push policy. Tighter than the fetch-stack default: a
  // replica that stays down for a whole storm should fail fast and catch
  // up on the next epoch, not stall the fan-out for a minute.
  net::RetryPolicy retry{.max_attempts = 3,
                         .initial_backoff_seconds = 0.2,
                         .max_backoff_seconds = 5.0,
                         .jitter = 0.5,
                         .seed = 0xF1EE7};
  double timeout_seconds = 5.0;
  // Also push the pre-signed response batch (cache warm-up). Off = replicas
  // sign on demand from the replicated index.
  bool push_responses = true;
};

class Publisher {
 public:
  // `authority` is the frontend whose index/cache are the source of truth;
  // it must outlive the publisher.
  explicit Publisher(serve::Frontend* authority, PublisherOptions options = {});
  ~Publisher();

  // Registers a replica hostname (its /fleet routes must be installed on
  // the SimNet used for Publish).
  void AddReplica(std::string host);

  struct PushStats {
    std::uint64_t epoch = 0;
    std::size_t replicas_ok = 0;
    std::size_t replicas_failed = 0;
    std::size_t snapshot_bytes = 0;   // serialized blob size
    std::size_t response_bytes = 0;   // 0 when push_responses is off
    double elapsed_seconds = 0;       // summed simulated push cost
  };

  // Exports the authority's state as epoch `epoch() + 1` and pushes it to
  // every replica. A replica that exhausts retries is left at its old
  // acked epoch (lag); the epoch advances regardless — replication is
  // eventually consistent, not a commit protocol.
  PushStats Publish(net::SimNet& net, util::Timestamp now);

  std::uint64_t epoch() const { return epoch_; }
  // Last epoch `host` acknowledged (0 = never reached).
  std::uint64_t AckedEpoch(const std::string& host) const;
  // epoch() minus the smallest acked epoch — the worst replica's lag.
  std::uint64_t MaxLagEpochs() const;
  // Publish time of `epoch`, 0 if unknown (for staleness accounting).
  util::Timestamp PublishTimeOf(std::uint64_t epoch) const;

  std::vector<std::string> replicas() const { return replicas_; }

 private:
  serve::Frontend* authority_;
  PublisherOptions options_;
  std::uint64_t epoch_ = 0;
  std::vector<std::string> replicas_;        // registration order
  std::map<std::string, std::uint64_t> acked_;
  std::map<std::uint64_t, util::Timestamp> publish_times_;

  std::string metrics_label_;
  obs::Counter& pushes_ok_;
  obs::Counter& pushes_failed_;
  obs::Counter& bytes_pushed_;
  obs::Gauge& max_lag_;
};

}  // namespace rev::fleet
