// Health probing and ring admission for the serving fleet.
//
// The monitor probes each replica's GET /fleet/health on a caller-driven
// (virtual-time) cadence and flips the node's ring membership with
// hysteresis: `down_after` consecutive failures evict, `up_after`
// consecutive successes readmit — a flapping host must string together a
// full run of good probes before taking traffic again, so the square-wave
// storms of tests/chaos_test.cpp do not thrash the ring every period.
//
// Warm-up gating: a probe only counts as a success when the replica
// reports `warmed=1` (it has applied at least one replication epoch), so
// a freshly started replica cannot be admitted while its index is empty —
// it would answer `unknown` for everything.
//
// Determinism: probes are plain single-attempt fetches in registration
// order, and each target gets a fixed per-target offset in [0,
// probe_spread_seconds] derived from `seed` — fault decisions are a pure
// function of (plan seed, url, time), so spreading probe times
// decorrelates per-target fault draws while keeping every run of the same
// seed bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/ring.h"
#include "net/simnet.h"
#include "obs/metrics.h"
#include "util/time.h"

namespace rev::fleet {

struct HealthOptions {
  int down_after = 2;  // consecutive failed probes to evict
  int up_after = 2;    // consecutive good probes to (re)admit
  double probe_timeout_seconds = 1.0;
  // Deterministic per-target probe-time offset range, seconds.
  std::int64_t probe_spread_seconds = 0;
  std::uint64_t seed = 0;
};

class HealthMonitor {
 public:
  // `ring` is flipped on transitions; not owned, must outlive the monitor.
  HealthMonitor(HashRing* ring, HealthOptions options = {});

  // Registers a probe target; `host` must be a ring node name. Targets
  // start not-admitted (ring node disabled) until `up_after` good probes —
  // call ring->AddNode(host, /*enabled=*/false) for monitored nodes.
  void AddTarget(std::string host);

  // One probe round at virtual time `now`; returns the number of ring
  // transitions (mark-down + mark-up) it caused.
  std::size_t ProbeAll(net::SimNet& net, util::Timestamp now);

  bool IsUp(const std::string& host) const;

  struct Counters {
    std::uint64_t probes = 0;
    std::uint64_t probe_failures = 0;
    std::uint64_t marked_down = 0;
    std::uint64_t marked_up = 0;
  };
  Counters counters() const;

 private:
  struct Target {
    std::string host;
    std::int64_t probe_offset = 0;  // deterministic, in [0, spread]
    int consecutive_ok = 0;
    int consecutive_bad = 0;
    bool admitted = false;
  };

  HashRing* ring_;
  HealthOptions options_;
  std::vector<Target> targets_;

  std::string metrics_label_;
  obs::Counter& probes_;
  obs::Counter& probe_failures_;
  obs::Counter& marked_down_;
  obs::Counter& marked_up_;
};

}  // namespace rev::fleet
