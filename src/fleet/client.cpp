#include "fleet/client.h"

#include <algorithm>
#include <vector>

#include "serve/status_index.h"

namespace rev::fleet {

namespace {

// Span-id salt for per-replica legs (failover attempts, hedges, panic
// re-walks); combined with a per-query leg counter so no two legs of one
// query collide.
constexpr std::uint64_t kLegSalt = 0xF1EE7A77ull;

}  // namespace

FleetClient::FleetClient(net::SimNet* net, const HashRing* ring,
                         FleetClientOptions options)
    : net_(net), ring_(ring), options_(options) {
  if (options_.max_replicas == 0) options_.max_replicas = 1;
}

FleetClient::Attempt FleetClient::TryReplica(const std::string& host,
                                             BytesView request_der,
                                             BytesView key, util::Timestamp now,
                                             const obs::SpanContext* ctx) {
  net::HttpRequest request;
  request.method = "POST";
  request.host = host;
  request.path = "/";
  request.body.assign(request_der.begin(), request_der.end());
  if (ctx != nullptr) {
    request.headers[obs::kTraceparentHeader] = obs::FormatTraceparent(*ctx);
  }
  const net::FetchResult result =
      net_->Fetch(request, now, options_.timeout_seconds);

  Attempt attempt;
  attempt.elapsed_seconds = result.elapsed_seconds;
  attempt.slow = result.elapsed_seconds > options_.hedge_budget_seconds;
  if (result.error == net::FetchError::kOk && result.response.status == 503) {
    // Honor the shed hint: skip this replica until the hint expires.
    counters_.shed_503++;
    const std::int64_t wait = std::max(result.response.retry_after,
                                       options_.markdown_floor_seconds);
    marked_down_until_[host] = now + wait;
    return attempt;
  }
  if (result.error != net::FetchError::kOk || result.response.status != 200)
    return attempt;

  const auto parsed = ocsp::ParseOcspResponse(result.response.body);
  if (!parsed || parsed->status != ocsp::ResponseStatus::kSuccessful) {
    counters_.invalid_bodies++;
    return attempt;
  }
  // The answer must be about the certificate we asked about, and (when the
  // responder key is pinned) carry a verifying signature — a storm-corrupted
  // body that happens to parse is rejected here, never believed.
  if (parsed->single.cert_id.serial != serve::SerialOfKey(key)) {
    counters_.invalid_bodies++;
    return attempt;
  }
  if (options_.responder_key &&
      !ocsp::VerifyOcspSignature(*parsed, *options_.responder_key)) {
    counters_.invalid_bodies++;
    return attempt;
  }
  attempt.valid = true;
  attempt.status = parsed->single.status;
  attempt.produced_at = parsed->produced_at;
  return attempt;
}

FleetClient::QueryResult FleetClient::Query(BytesView request_der,
                                            BytesView key,
                                            util::Timestamp now) {
  counters_.queries++;
  QueryResult qr;

  obs::DistTraceCollector& collector = obs::DistTraceCollector::Global();
  const bool traced = collector.enabled();
  obs::SpanContext root_ctx;
  std::uint64_t leg_counter = 0;
  if (traced) {
    // One trace per query, seeded deterministically; every failover and
    // hedge leg below shares it.
    qr.trace_id = obs::MakeTraceId(options_.trace_seed, ++trace_counter_);
    root_ctx = obs::SpanContext{qr.trace_id, obs::RootSpanId(qr.trace_id)};
  }
  // Emits the root "fleet.query" span on every exit path, once
  // qr.elapsed_seconds holds the client-observed latency — the span the
  // critical-path extractor tiles against that latency.
  struct RootSpanGuard {
    bool traced;
    obs::DistTraceCollector& collector;
    const obs::SpanContext& ctx;
    util::Timestamp now;
    const QueryResult& qr;
    ~RootSpanGuard() {
      if (!traced) return;
      obs::DistSpan span;
      span.trace = ctx.trace;
      span.span = ctx.span;
      span.parent = 0;
      span.name = "fleet.query";
      span.node = "client";
      span.kind = obs::SpanKind::kInternal;
      span.status = qr.ok ? 200 : 0;
      span.start_ns = obs::VirtualNs(now, 0);
      span.end_ns = obs::VirtualNs(now, qr.elapsed_seconds);
      collector.Record(span);
    }
  } root_guard{traced, collector, root_ctx, now, qr};
  // One leg = one replica attempt. The leg span covers the attempt on the
  // continuous virtual clock (`offset` = elapsed seconds since the query
  // started), and its context rides the wire so the exchange and server
  // spans stitch under it.
  const auto try_leg = [&](const std::string& host, util::Timestamp at,
                           double offset, const char* name) {
    if (!traced) return TryReplica(host, request_der, key, at, nullptr);
    const obs::SpanContext leg{
        root_ctx.trace, obs::DeriveSpanId(root_ctx, kLegSalt + leg_counter++)};
    const Attempt attempt = TryReplica(host, request_der, key, at, &leg);
    obs::DistSpan span;
    span.trace = root_ctx.trace;
    span.span = leg.span;
    span.parent = root_ctx.span;
    span.name = name;
    span.node = obs::InternName(host);
    span.kind = obs::SpanKind::kInternal;
    span.status = attempt.valid ? 200 : 0;
    span.start_ns = obs::VirtualNs(now, offset);
    span.end_ns = obs::VirtualNs(now, offset + attempt.elapsed_seconds);
    collector.Record(span);
    return attempt;
  };

  auto prefs = ring_->PreferenceList(key, options_.max_replicas);
  // The ring can offer nothing (health marked everything down); fall
  // straight through to last-resort routing below with an empty walk.
  // Skip client-marked-down replicas — unless that would leave nothing to
  // try, in which case desperation overrides the marks.
  std::vector<const std::string*> candidates;
  candidates.reserve(prefs.size());
  for (const std::string* host : prefs) {
    const auto it = marked_down_until_.find(*host);
    if (it != marked_down_until_.end() && now < it->second) {
      counters_.markdown_skips++;
      continue;
    }
    candidates.push_back(host);
  }
  if (candidates.empty()) candidates = prefs;

  const std::string* primary = prefs.empty() ? nullptr : prefs.front();
  double elapsed = 0;
  std::vector<const std::string*> tried;
  const auto accept = [&](const std::string& host, const Attempt& attempt,
                          double total_elapsed) {
    qr.ok = true;
    qr.status = attempt.status;
    qr.produced_at = attempt.produced_at;
    qr.elapsed_seconds = total_elapsed;
    qr.served_by = host;
    qr.failed_over = (primary == nullptr || host != *primary);
    counters_.answered++;
  };

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::string& host = *candidates[i];
    const auto at = now + static_cast<util::Timestamp>(elapsed);
    if (i > 0) counters_.failovers++;
    tried.push_back(candidates[i]);
    const Attempt first = try_leg(host, at, elapsed, "fleet.attempt");
    qr.replicas_tried++;

    if (first.valid && !first.slow) {
      accept(host, first, elapsed + first.elapsed_seconds);
      return qr;
    }
    if (!first.valid && !first.slow) {
      // Fast failure (refused / 503 / bad body): plain failover.
      elapsed += first.elapsed_seconds;
      continue;
    }

    // Slow attempt (timeout or latency storm): hedge to the next replica
    // at the budget mark, take whichever answer lands first.
    if (i + 1 < candidates.size()) {
      const std::string& hedge_host = *candidates[i + 1];
      counters_.hedges++;
      qr.hedged = true;
      tried.push_back(candidates[i + 1]);
      const auto hedge_at =
          now + static_cast<util::Timestamp>(
                    elapsed + options_.hedge_budget_seconds);
      const Attempt second =
          try_leg(hedge_host, hedge_at, elapsed + options_.hedge_budget_seconds,
                  "fleet.hedge");
      qr.replicas_tried++;
      const double first_done = first.elapsed_seconds;
      const double second_done =
          options_.hedge_budget_seconds + second.elapsed_seconds;
      if (second.valid && (!first.valid || second_done < first_done)) {
        counters_.hedge_wins++;
        accept(hedge_host, second, elapsed + second_done);
        return qr;
      }
      if (first.valid) {
        accept(host, first, elapsed + first_done);
        return qr;
      }
      // Both lost: both ran concurrently, so the client waited for the
      // later of the two before moving on past both replicas.
      elapsed += std::max(first_done, second_done);
      ++i;
      continue;
    }
    if (first.valid) {
      accept(host, first, elapsed + first.elapsed_seconds);
      return qr;
    }
    elapsed += first.elapsed_seconds;
  }

  // Last-resort (panic) routing: every admitted candidate failed, so walk
  // the ring again with health marks ignored and try the replicas not yet
  // touched. A health-evicted replica may still hold a valid signed answer
  // — stale at worst, and validation above rejects anything worse.
  const auto everyone =
      ring_->PreferenceList(key, ring_->node_count(), /*include_disabled=*/true);
  for (const std::string* host : everyone) {
    bool already = false;
    for (const std::string* seen : tried)
      if (*seen == *host) { already = true; break; }
    if (already) continue;
    counters_.last_resort++;
    counters_.failovers++;
    const auto at = now + static_cast<util::Timestamp>(elapsed);
    const Attempt attempt = try_leg(*host, at, elapsed, "fleet.attempt");
    qr.replicas_tried++;
    if (attempt.valid) {
      accept(*host, attempt, elapsed + attempt.elapsed_seconds);
      return qr;
    }
    elapsed += attempt.elapsed_seconds;
  }

  counters_.exhausted++;
  qr.elapsed_seconds = elapsed;
  return qr;
}

}  // namespace rev::fleet
