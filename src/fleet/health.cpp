#include "fleet/health.h"

#include <utility>

#include "fleet/replica.h"
#include "util/rng.h"
#include "util/wire.h"

namespace rev::fleet {

namespace {

obs::Counter& MonitorCounter(const char* metric, const std::string& label) {
  return obs::MetricsRegistry::Global().GetCounter(
      std::string("fleet.health.") + metric + "{monitor=" + label + "}");
}

}  // namespace

HealthMonitor::HealthMonitor(HashRing* ring, HealthOptions options)
    : ring_(ring),
      options_(options),
      metrics_label_(std::to_string(obs::NextInstanceId())),
      probes_(MonitorCounter("probes", metrics_label_)),
      probe_failures_(MonitorCounter("probe_failures", metrics_label_)),
      marked_down_(MonitorCounter("marked_down", metrics_label_)),
      marked_up_(MonitorCounter("marked_up", metrics_label_)) {
  if (options_.down_after < 1) options_.down_after = 1;
  if (options_.up_after < 1) options_.up_after = 1;
}

void HealthMonitor::AddTarget(std::string host) {
  Target target;
  target.host = std::move(host);
  if (options_.probe_spread_seconds > 0) {
    // Per-target stream forked off the seed: stable across rounds, distinct
    // across targets.
    util::Rng rng(options_.seed ^ util::wire::Fnv1a(BytesView(
                      reinterpret_cast<const std::uint8_t*>(
                          target.host.data()),
                      target.host.size())));
    target.probe_offset = static_cast<std::int64_t>(
        rng.NextBelow(static_cast<std::uint64_t>(
            options_.probe_spread_seconds + 1)));
  }
  targets_.push_back(std::move(target));
}

std::size_t HealthMonitor::ProbeAll(net::SimNet& net, util::Timestamp now) {
  std::size_t transitions = 0;
  for (Target& target : targets_) {
    probes_.Increment();
    const net::FetchResult result =
        net.Get("http://" + target.host + Replica::kHealthPath,
                now + target.probe_offset, options_.probe_timeout_seconds);
    const std::string body(result.response.body.begin(),
                           result.response.body.end());
    const bool healthy = result.ok() && body.rfind("ok epoch=", 0) == 0 &&
                         body.find("warmed=1") != std::string::npos;
    if (healthy) {
      target.consecutive_bad = 0;
      if (target.consecutive_ok < options_.up_after) ++target.consecutive_ok;
      if (!target.admitted && target.consecutive_ok >= options_.up_after) {
        target.admitted = true;
        ring_->SetEnabled(target.host, true);
        marked_up_.Increment();
        ++transitions;
      }
    } else {
      probe_failures_.Increment();
      target.consecutive_ok = 0;
      if (target.consecutive_bad < options_.down_after)
        ++target.consecutive_bad;
      if (target.admitted && target.consecutive_bad >= options_.down_after) {
        target.admitted = false;
        ring_->SetEnabled(target.host, false);
        marked_down_.Increment();
        ++transitions;
      }
    }
  }
  return transitions;
}

bool HealthMonitor::IsUp(const std::string& host) const {
  for (const Target& target : targets_)
    if (target.host == host) return target.admitted;
  return false;
}

HealthMonitor::Counters HealthMonitor::counters() const {
  Counters counters;
  counters.probes = probes_.Value();
  counters.probe_failures = probe_failures_.Value();
  counters.marked_down = marked_down_.Value();
  counters.marked_up = marked_up_.Value();
  return counters;
}

}  // namespace rev::fleet
