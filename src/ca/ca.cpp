#include "ca/ca.h"

#include <cassert>

#include "asn1/oid.h"

namespace rev::ca {

namespace {

x509::Name CaName(const CertificateAuthority::Options& options) {
  // Subjects read "<Name> CA" unless the display name already says so.
  std::string cn = options.name;
  if (cn.size() < 2 || cn.compare(cn.size() - 2, 2, "CA") != 0) cn += " CA";
  return x509::Name::Make(cn, options.name);
}

}  // namespace

CertificateAuthority::CertificateAuthority(Options options, crypto::KeyPair key)
    : options_(std::move(options)), key_(std::move(key)) {
  assert(options_.num_crl_shards >= 1);
  shards_.resize(static_cast<std::size_t>(options_.num_crl_shards));
  shard_revoked_.resize(static_cast<std::size_t>(options_.num_crl_shards));
}

std::unique_ptr<CertificateAuthority> CertificateAuthority::CreateRoot(
    const Options& options, util::Rng& rng, util::Timestamp now,
    std::int64_t ca_lifetime_seconds) {
  auto ca = std::unique_ptr<CertificateAuthority>(new CertificateAuthority(
      options, crypto::GenerateKeyPair(rng, options.key_type, options.rsa_bits)));

  x509::TbsCertificate tbs;
  tbs.serial = ca->NextSerial(rng);
  tbs.issuer = CaName(options);
  tbs.subject = tbs.issuer;
  tbs.not_before = now;
  tbs.not_after = now + ca_lifetime_seconds;
  tbs.public_key = ca->key_.Public();
  tbs.basic_constraints = {.is_ca = true, .path_len = -1};
  tbs.key_usage = x509::kKeyUsageKeyCertSign | x509::kKeyUsageCrlSign;
  // Root certificates carry no revocation pointers by design (§3.2 note 9).
  ca->cert_ = std::make_shared<const x509::Certificate>(
      x509::SignCertificate(tbs, ca->key_));
  ca->responder_ = std::make_unique<ocsp::Responder>(
      *ca->cert_, ca->key_, options.ocsp_validity_seconds);
  ca->InitServing();
  return ca;
}

std::unique_ptr<CertificateAuthority> CertificateAuthority::CreateIntermediate(
    const Options& options, util::Rng& rng, util::Timestamp now,
    std::int64_t ca_lifetime_seconds, bool include_crl_url,
    bool include_ocsp_url) {
  auto child = std::unique_ptr<CertificateAuthority>(new CertificateAuthority(
      options, crypto::GenerateKeyPair(rng, options.key_type, options.rsa_bits)));

  x509::TbsCertificate tbs;
  tbs.serial = NextSerial(rng);
  tbs.issuer = cert_->tbs.subject;
  tbs.subject = CaName(options);
  tbs.not_before = now;
  tbs.not_after = now + ca_lifetime_seconds;
  tbs.public_key = child->key_.Public();
  tbs.basic_constraints = {.is_ca = true, .path_len = -1};
  tbs.key_usage = x509::kKeyUsageKeyCertSign | x509::kKeyUsageCrlSign;
  if (include_crl_url) tbs.crl_urls = {CrlUrl(ShardForSerial(tbs.serial))};
  if (include_ocsp_url) tbs.ocsp_urls = {OcspUrl()};

  child->cert_ = std::make_shared<const x509::Certificate>(
      x509::SignCertificate(tbs, key_));
  child->responder_ = std::make_unique<ocsp::Responder>(
      *child->cert_, child->key_, options.ocsp_validity_seconds);
  child->InitServing();

  // The parent tracks the intermediate like any issued certificate so it
  // can be revoked via the parent's CRL/OCSP.
  issued_[tbs.serial] = IssuedRecord{.not_after = tbs.not_after};
  responder_->AddCertificate(tbs.serial);
  return child;
}

void CertificateAuthority::InitServing() {
  frontend_ = std::make_unique<serve::Frontend>();
  frontend_->AttachResponder(responder_.get());
}

Bytes CertificateAuthority::StapleFor(const x509::Serial& serial,
                                      util::Timestamp now) {
  const std::shared_ptr<const Bytes> der =
      frontend_->Staple(responder_->issuer_key_hash(), serial, now);
  return der ? *der : Bytes{};
}

x509::Serial CertificateAuthority::NextSerial(util::Rng& rng) {
  // A unique counter in the low 8 bytes plus random high bytes up to the
  // CA's serial-length policy (real CAs range from short sequential serials
  // to 49-decimal-digit monsters, which is what spreads CRL entry sizes).
  const int total = std::max(options_.serial_bytes, 9);
  x509::Serial serial(static_cast<std::size_t>(total));
  rng.Fill(serial.data(), serial.size() - 8);
  ++serial_counter_;
  for (int i = 0; i < 8; ++i) {
    serial[serial.size() - 1 - static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(serial_counter_ >> (8 * i));
  }
  // Avoid a leading zero byte so encoded length is stable.
  if (serial[0] == 0) serial[0] = 1;
  return serial;
}

x509::CertPtr CertificateAuthority::Issue(const IssueOptions& issue,
                                          util::Rng& rng) {
  x509::TbsCertificate tbs;
  tbs.serial = NextSerial(rng);
  tbs.issuer = cert_->tbs.subject;
  tbs.subject = x509::Name::FromCommonName(issue.common_name);
  tbs.not_before = issue.not_before;
  const std::int64_t lifetime = issue.lifetime_seconds > 0
                                    ? issue.lifetime_seconds
                                    : options_.default_cert_lifetime_seconds;
  tbs.not_after = issue.not_before + lifetime;

  // Leaf keys never sign anything in the simulation; derive a cheap sim key
  // deterministically from the serial.
  tbs.public_key =
      crypto::SimKeyFromLabel("leaf:" + x509::SerialToString(tbs.serial))
          .Public();
  tbs.key_usage =
      x509::kKeyUsageDigitalSignature | x509::kKeyUsageKeyEncipherment;
  tbs.dns_names = {issue.common_name};
  if (issue.include_crl_url) tbs.crl_urls = {CrlUrl(ShardForSerial(tbs.serial))};
  if (issue.include_ocsp_url) tbs.ocsp_urls = {OcspUrl()};
  if (issue.ev) tbs.policies = {asn1::oids::VerisignEvPolicy()};

  auto cert = std::make_shared<const x509::Certificate>(
      x509::SignCertificate(tbs, key_));
  issued_[tbs.serial] = IssuedRecord{.not_after = tbs.not_after};
  responder_->AddCertificate(tbs.serial);
  return cert;
}

bool CertificateAuthority::Revoke(const x509::Serial& serial,
                                  util::Timestamp when,
                                  x509::ReasonCode reason) {
  auto it = issued_.find(serial);
  if (it == issued_.end()) return false;
  if (it->second.revoked) return true;  // idempotent
  it->second.revoked = true;
  it->second.revoked_at = when;
  it->second.reason = reason;
  ++revoked_count_;
  responder_->Revoke(serial, when, reason);
  const auto shard = static_cast<std::size_t>(ShardForSerial(serial));
  shard_revoked_[shard].push_back(serial);
  shards_[shard].dirty = true;
  return true;
}

bool CertificateAuthority::IsRevoked(const x509::Serial& serial) const {
  auto it = issued_.find(serial);
  return it != issued_.end() && it->second.revoked;
}

void CertificateAuthority::SetShardWeights(std::vector<double> weights) {
  shard_cumulative_.clear();
  if (weights.size() != static_cast<std::size_t>(options_.num_crl_shards))
    return;
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return;
  double cumulative = 0;
  for (double w : weights) {
    cumulative += w / total;
    shard_cumulative_.push_back(cumulative);
  }
  shard_cumulative_.back() = 1.0;
  // Shard assignment changed: re-bucket revocations and rebuild all CRLs.
  std::vector<x509::Serial> all_revoked;
  for (auto& bucket : shard_revoked_) {
    all_revoked.insert(all_revoked.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  for (x509::Serial& serial : all_revoked) {
    const auto shard = static_cast<std::size_t>(ShardForSerial(serial));
    shard_revoked_[shard].push_back(std::move(serial));
  }
  for (ShardState& shard : shards_) shard.dirty = true;
}

util::Timestamp CertificateAuthority::ExpiryOf(
    const x509::Serial& serial) const {
  auto it = issued_.find(serial);
  return it == issued_.end() ? 0 : it->second.not_after;
}

int CertificateAuthority::ShardForSerial(const x509::Serial& serial) const {
  if (options_.num_crl_shards <= 1) return 0;
  // Stable hash over the serial bytes.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : serial) h = (h ^ b) * 1099511628211ull;
  if (shard_cumulative_.empty())
    return static_cast<int>(h % static_cast<std::uint64_t>(options_.num_crl_shards));
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
  for (std::size_t i = 0; i < shard_cumulative_.size(); ++i) {
    if (u < shard_cumulative_[i]) return static_cast<int>(i);
  }
  return options_.num_crl_shards - 1;
}

void CertificateAuthority::AddSyntheticRevocations(
    std::size_t count, util::Rng& rng, util::Timestamp revoked_between_start,
    util::Timestamp revoked_between_end, util::Timestamp expiry_min,
    util::Timestamp expiry_max, x509::ReasonCode reason) {
  for (std::size_t i = 0; i < count; ++i) {
    const x509::Serial serial = NextSerial(rng);
    IssuedRecord record;
    record.not_after = rng.UniformInt(expiry_min, expiry_max);
    record.revoked = true;
    record.revoked_at =
        rng.UniformInt(revoked_between_start, revoked_between_end);
    record.reason = reason;
    issued_.emplace(serial, record);
    shard_revoked_[static_cast<std::size_t>(ShardForSerial(serial))].push_back(serial);
    ++revoked_count_;
  }
  for (ShardState& shard : shards_) shard.dirty = true;
}

std::string CertificateAuthority::CrlUrl(int shard) const {
  return "http://" + CrlHost() + "/crl" + std::to_string(shard) + ".crl";
}

std::string CertificateAuthority::OcspUrl() const {
  return "http://" + OcspHost() + "/";
}

void CertificateAuthority::RebuildCrl(int shard, util::Timestamp now) {
  ShardState& state = shards_[static_cast<std::size_t>(shard)];
  crl::TbsCrl tbs;
  tbs.issuer = cert_->tbs.subject;
  tbs.this_update = now;
  tbs.next_update = now + options_.crl_validity_seconds;
  tbs.crl_number = ++state.crl_number;
  for (const x509::Serial& serial : shard_revoked_[static_cast<std::size_t>(shard)]) {
    const IssuedRecord& record = issued_.at(serial);
    // Revocations scheduled for the future (the ecosystem generator plans
    // whole timelines up front) have not happened yet.
    if (record.revoked_at > now) continue;
    // Entries for expired certificates are dropped (RFC 5280 permits this
    // and real CAs do it; it drives the CRLSet shrinkage in Fig. 8).
    if (record.not_after < now) continue;
    tbs.entries.push_back(
        crl::CrlEntry{serial, record.revoked_at, record.reason});
  }
  state.crl = crl::SignCrl(tbs, key_);
  state.dirty = false;
}

const crl::Crl& CertificateAuthority::GetCrl(int shard, util::Timestamp now) {
  ShardState& state = shards_[static_cast<std::size_t>(shard)];
  if (state.dirty || state.crl.der.empty() || state.crl.IsExpired(now))
    RebuildCrl(shard, now);
  return state.crl;
}

void CertificateAuthority::RegisterEndpoints(net::SimNet* net) {
  net->AddHost(CrlHost(), [this](const net::HttpRequest& request,
                                 util::Timestamp now) {
    for (int shard = 0; shard < options_.num_crl_shards; ++shard) {
      if (request.path == "/crl" + std::to_string(shard) + ".crl") {
        const crl::Crl& crl = GetCrl(shard, now);
        net::HttpResponse response;
        response.body = crl.der;
        response.max_age = crl.tbs.next_update - now;
        return response;
      }
    }
    return net::HttpResponse{.status = 404, .body = {}, .max_age = 0};
  });

  net->AddHost(OcspHost(), [this](const net::HttpRequest& request,
                                  util::Timestamp now) {
    // GET (RFC 6960 Appendix A, the form browsers favor; §6.2) and POST
    // both flow through the serving frontend: precomputed responses,
    // admission control, 503 + Retry-After under overload.
    net::HttpResponse response = frontend_->HandleHttp(request, now);
    response.max_age = options_.ocsp_validity_seconds;
    return response;
  });
}

std::vector<CertificateAuthority::RevocationRecord>
CertificateAuthority::CurrentRevocations(util::Timestamp now) const {
  std::vector<RevocationRecord> out;
  for (const auto& [serial, record] : issued_) {
    if (!record.revoked || record.not_after < now) continue;
    out.push_back(RevocationRecord{serial, record.revoked_at, record.not_after,
                                   record.reason});
  }
  return out;
}

}  // namespace rev::ca
