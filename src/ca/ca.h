// The Certificate Authority model: issuance, revocation intake, CRL
// maintenance (with sharding), and OCSP responder service.
//
// Each CA owns one issuing certificate (root or intermediate), a set of
// issued-certificate records, `num_crl_shards` CRLs (the paper's Table 1
// shows real CAs shard between 3 and 322 CRLs), and one OCSP responder.
// CRLs are re-issued on demand when fetched past their nextUpdate, and
// revoked entries are dropped once the underlying certificate expires —
// the behavior behind the CRLSet shrinkage of Fig. 8.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crl/crl.h"
#include "crypto/signer.h"
#include "net/simnet.h"
#include "ocsp/responder.h"
#include "serve/frontend.h"
#include "util/rng.h"
#include "x509/certificate.h"
#include "x509/verify.h"

namespace rev::ca {

class CertificateAuthority {
 public:
  struct Options {
    std::string name;    // display name, e.g. "GoDaddy"
    std::string domain;  // DNS base for service URLs, e.g. "godaddy.sim"
    crypto::KeyType key_type = crypto::KeyType::kSimSha256;
    int rsa_bits = 1024;           // iff key_type == kRsaSha256
    int num_crl_shards = 1;        // CRL sharding policy
    int serial_bytes = 16;         // serial-number length policy
    std::int64_t crl_validity_seconds = util::kSecondsPerDay;      // §5.2: 95% < 24h
    std::int64_t ocsp_validity_seconds = 4 * util::kSecondsPerDay; // §2.2: days
    std::int64_t default_cert_lifetime_seconds = 365 * util::kSecondsPerDay;
  };

  // Creates a self-signed root CA.
  static std::unique_ptr<CertificateAuthority> CreateRoot(
      const Options& options, util::Rng& rng, util::Timestamp now,
      std::int64_t ca_lifetime_seconds = 10 * 365 * util::kSecondsPerDay);

  // Creates an intermediate CA whose certificate this CA signs.
  std::unique_ptr<CertificateAuthority> CreateIntermediate(
      const Options& options, util::Rng& rng, util::Timestamp now,
      std::int64_t ca_lifetime_seconds = 5 * 365 * util::kSecondsPerDay,
      bool include_crl_url = true, bool include_ocsp_url = true);

  struct IssueOptions {
    std::string common_name;
    bool ev = false;
    bool include_crl_url = true;
    bool include_ocsp_url = true;
    util::Timestamp not_before = 0;
    std::int64_t lifetime_seconds = 0;  // 0 = CA default
  };

  // Issues a leaf certificate.
  x509::CertPtr Issue(const IssueOptions& issue, util::Rng& rng);

  // Records a revocation. Returns false for serials this CA never issued.
  bool Revoke(const x509::Serial& serial, util::Timestamp when,
              x509::ReasonCode reason);

  bool IsRevoked(const x509::Serial& serial) const;

  // notAfter of an issued certificate, or 0 if this CA never issued it.
  util::Timestamp ExpiryOf(const x509::Serial& serial) const;

  // CRL service -------------------------------------------------------------

  int ShardForSerial(const x509::Serial& serial) const;

  // Sets non-uniform shard assignment weights (one per shard). Real CAs
  // concentrate most certificates on a few large CRLs (that is what makes
  // GoDaddy's certificate-weighted average CRL size exceed 1 MB in Table 1
  // despite having 322 CRLs); the weights reproduce that skew.
  void SetShardWeights(std::vector<double> weights);
  std::string CrlUrl(int shard) const;
  std::string OcspUrl() const;
  std::string CrlHost() const { return "crl." + options_.domain; }
  std::string OcspHost() const { return "ocsp." + options_.domain; }

  // Returns the signed CRL for a shard, re-issuing if stale at `now`.
  const crl::Crl& GetCrl(int shard, util::Timestamp now);

  // OCSP service --------------------------------------------------------------

  ocsp::Responder& responder() { return *responder_; }
  const ocsp::Responder& responder() const { return *responder_; }

  // The serving frontend in front of this CA's responder: precomputed
  // responses, admission control, load shedding (docs/serving.md). All OCSP
  // traffic registered via RegisterEndpoints flows through it.
  serve::Frontend& frontend() { return *frontend_; }
  const serve::Frontend& frontend() const { return *frontend_; }

  // The response DER a server staples for one of this CA's serials —
  // served from the frontend's precomputed cache when fresh.
  Bytes StapleFor(const x509::Serial& serial, util::Timestamp now);

  // Installs HTTP handlers for the CRL shards and the OCSP responder on the
  // simulated network. The CA must outlive `net`.
  void RegisterEndpoints(net::SimNet* net);

  // Accessors -----------------------------------------------------------------

  const x509::CertPtr& cert() const { return cert_; }
  const crypto::KeyPair& key() const { return key_; }
  const Options& options() const { return options_; }
  std::size_t issued_count() const { return issued_.size(); }
  std::size_t revoked_count() const { return revoked_count_; }

  // All revocation records currently present across shards at `now`
  // (after expiry-based dropping), for analysis code.
  struct RevocationRecord {
    x509::Serial serial;
    util::Timestamp revoked_at;
    util::Timestamp cert_expiry;
    x509::ReasonCode reason;
  };
  std::vector<RevocationRecord> CurrentRevocations(util::Timestamp now) const;

 private:
  CertificateAuthority(Options options, crypto::KeyPair key);

  struct IssuedRecord {
    util::Timestamp not_after = 0;
    bool revoked = false;
    util::Timestamp revoked_at = 0;
    x509::ReasonCode reason = x509::ReasonCode::kNoReasonCode;
  };

  x509::Serial NextSerial(util::Rng& rng);
  void RebuildCrl(int shard, util::Timestamp now);

  void InitServing();

  Options options_;
  crypto::KeyPair key_;
  x509::CertPtr cert_;
  std::unique_ptr<ocsp::Responder> responder_;
  // Declared after responder_: the frontend detaches its observer on
  // destruction, so it must be destroyed first.
  std::unique_ptr<serve::Frontend> frontend_;

  // Adds `count` synthetic revoked-certificate records (serials only, no
  // real certificates issued). Models CRL populations that are not part of
  // the web Leaf Set — e.g. the 2.6M-entry Apple WWDR CRL behind the
  // paper's 76 MB maximum (§5.2) and the 11.46M total revocations (§7.2).
 public:
  void AddSyntheticRevocations(std::size_t count, util::Rng& rng,
                               util::Timestamp revoked_between_start,
                               util::Timestamp revoked_between_end,
                               util::Timestamp expiry_min,
                               util::Timestamp expiry_max,
                               x509::ReasonCode reason);

 private:
  std::vector<double> shard_cumulative_;  // empty = uniform hashing
  std::map<x509::Serial, IssuedRecord> issued_;
  // Revoked serials bucketed by shard, so CRL rebuilds touch only their own
  // shard's entries instead of every issued certificate.
  std::vector<std::vector<x509::Serial>> shard_revoked_;
  std::size_t revoked_count_ = 0;
  std::uint64_t serial_counter_ = 0;

  struct ShardState {
    crl::Crl crl;
    bool dirty = true;
    std::int64_t crl_number = 0;
  };
  std::vector<ShardState> shards_;
};

}  // namespace rev::ca
