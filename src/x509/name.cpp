#include "x509/name.h"

#include "asn1/writer.h"

namespace rev::x509 {

Name Name::FromCommonName(std::string_view cn) {
  Name n;
  n.Add(asn1::oids::CommonName(), cn);
  return n;
}

Name Name::Make(std::string_view cn, std::string_view org,
                std::string_view country) {
  Name n;
  n.Add(asn1::oids::CountryName(), country);
  n.Add(asn1::oids::OrganizationName(), org);
  n.Add(asn1::oids::CommonName(), cn);
  return n;
}

void Name::Add(asn1::Oid type, std::string_view value) {
  attributes_.push_back({std::move(type), std::string(value)});
}

std::string Name::CommonName() const {
  for (const auto& attr : attributes_)
    if (attr.type == asn1::oids::CommonName()) return attr.value;
  return {};
}

std::string Name::Organization() const {
  for (const auto& attr : attributes_)
    if (attr.type == asn1::oids::OrganizationName()) return attr.value;
  return {};
}

std::string Name::ToString() const {
  std::string out;
  // Render in reverse encoding order so CN comes first, matching the
  // conventional display form.
  for (auto it = attributes_.rbegin(); it != attributes_.rend(); ++it) {
    if (!out.empty()) out += ", ";
    if (it->type == asn1::oids::CommonName()) {
      out += "CN=";
    } else if (it->type == asn1::oids::OrganizationName()) {
      out += "O=";
    } else if (it->type == asn1::oids::CountryName()) {
      out += "C=";
    } else {
      out += it->type.ToString() + "=";
    }
    out += it->value;
  }
  return out;
}

Bytes Name::Encode() const {
  std::vector<Bytes> rdns;
  rdns.reserve(attributes_.size());
  for (const auto& attr : attributes_) {
    const Bytes atv = asn1::EncodeSequence(
        {asn1::EncodeOid(attr.type), asn1::EncodeUtf8String(attr.value)});
    rdns.push_back(asn1::EncodeSet({atv}));
  }
  return asn1::EncodeSequence(rdns);
}

std::optional<Name> Name::Decode(asn1::Reader& r) {
  asn1::Reader rdn_sequence;
  if (!r.ReadSequence(&rdn_sequence)) return std::nullopt;
  Name name;
  while (!rdn_sequence.Empty()) {
    asn1::Reader rdn_set;
    if (!rdn_sequence.ReadSet(&rdn_set)) return std::nullopt;
    while (!rdn_set.Empty()) {
      asn1::Reader atv;
      if (!rdn_set.ReadSequence(&atv)) return std::nullopt;
      NameAttribute attr;
      std::string value;
      if (!atv.ReadOid(&attr.type) || !atv.ReadAnyString(&value))
        return std::nullopt;
      attr.value = std::move(value);
      name.attributes_.push_back(std::move(attr));
    }
  }
  return name;
}

}  // namespace rev::x509
