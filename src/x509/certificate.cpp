#include "x509/certificate.h"

#include "asn1/writer.h"
#include "crypto/sha256.h"
#include "util/hex.h"
#include "x509/spki.h"

namespace rev::x509 {

const Bytes& Certificate::Fingerprint() const {
  if (fingerprint_.empty() && !der.empty())
    fingerprint_ = crypto::Sha256Bytes(der);
  return fingerprint_;
}

Bytes Certificate::SubjectSpkiSha256() const {
  return SpkiSha256(tbs.public_key);
}

bool Certificate::IsEv() const {
  for (const asn1::Oid& policy : tbs.policies)
    if (policy == asn1::oids::VerisignEvPolicy()) return true;
  return false;
}

namespace {

std::vector<Extension> BuildExtensions(const TbsCertificate& tbs) {
  std::vector<Extension> exts;
  // Always encode BasicConstraints for CA certs; include an empty one for
  // leaves as real CAs commonly do.
  exts.push_back(MakeBasicConstraints(tbs.basic_constraints));
  if (!tbs.name_constraints.Empty())
    exts.push_back(MakeNameConstraints(tbs.name_constraints));
  if (tbs.key_usage != 0) exts.push_back(MakeKeyUsage(tbs.key_usage));
  if (!tbs.crl_urls.empty())
    exts.push_back(MakeCrlDistributionPoints(tbs.crl_urls));
  if (!tbs.ocsp_urls.empty()) {
    AuthorityInfoAccess aia;
    aia.ocsp_urls = tbs.ocsp_urls;
    exts.push_back(MakeAuthorityInfoAccess(aia));
  }
  if (!tbs.policies.empty())
    exts.push_back(MakeCertificatePolicies(tbs.policies));
  if (!tbs.dns_names.empty()) exts.push_back(MakeSubjectAltName(tbs.dns_names));
  if (!tbs.subject_key_id.empty())
    exts.push_back(MakeSubjectKeyIdentifier(tbs.subject_key_id));
  if (!tbs.authority_key_id.empty())
    exts.push_back(MakeAuthorityKeyIdentifier(tbs.authority_key_id));
  return exts;
}

}  // namespace

Bytes EncodeTbs(const TbsCertificate& tbs, crypto::KeyType sig_type) {
  std::vector<Bytes> parts;
  // version [0] EXPLICIT INTEGER { v3(2) }
  parts.push_back(asn1::EncodeContextExplicit(0, asn1::EncodeInteger(2)));
  parts.push_back(asn1::EncodeIntegerUnsigned(tbs.serial));
  parts.push_back(EncodeSignatureAlgorithm(sig_type));
  parts.push_back(tbs.issuer.Encode());
  parts.push_back(asn1::EncodeSequence(
      {asn1::EncodeTime(tbs.not_before), asn1::EncodeTime(tbs.not_after)}));
  parts.push_back(tbs.subject.Encode());
  parts.push_back(EncodeSpki(tbs.public_key));
  parts.push_back(
      asn1::EncodeContextExplicit(3, EncodeExtensionList(BuildExtensions(tbs))));
  return asn1::EncodeSequence(parts);
}

Certificate SignCertificate(const TbsCertificate& tbs,
                            const crypto::KeyPair& issuer_key) {
  Certificate cert;
  cert.tbs = tbs;
  cert.sig_type = issuer_key.type;
  cert.tbs_der = EncodeTbs(tbs, issuer_key.type);
  cert.signature = crypto::Sign(issuer_key, cert.tbs_der);
  cert.der = asn1::EncodeSequence({cert.tbs_der,
                                   EncodeSignatureAlgorithm(issuer_key.type),
                                   asn1::EncodeBitString(cert.signature)});
  return cert;
}

std::optional<Certificate> ParseCertificate(BytesView der) {
  asn1::Reader top(der);
  asn1::Reader cert_seq;
  if (!top.ReadSequence(&cert_seq) || !top.Empty()) return std::nullopt;

  Certificate cert;
  cert.der.assign(der.begin(), der.end());

  BytesView tbs_raw;
  {
    // Capture the raw TBS bytes, then parse them.
    asn1::Reader probe = cert_seq;
    if (!probe.ReadRawTlv(&tbs_raw)) return std::nullopt;
    cert_seq = probe;
  }
  cert.tbs_der.assign(tbs_raw.begin(), tbs_raw.end());

  asn1::Reader tbs(tbs_raw);
  asn1::Reader tbs_seq;
  if (!tbs.ReadSequence(&tbs_seq)) return std::nullopt;

  // version
  asn1::Reader version_reader;
  if (!tbs_seq.ReadContextExplicit(0, &version_reader)) return std::nullopt;
  std::int64_t version;
  if (!version_reader.ReadInteger(&version) || version != 2)
    return std::nullopt;

  if (!tbs_seq.ReadIntegerUnsigned(&cert.tbs.serial)) return std::nullopt;

  auto inner_sig_type = DecodeSignatureAlgorithm(tbs_seq);
  if (!inner_sig_type) return std::nullopt;

  auto issuer = Name::Decode(tbs_seq);
  if (!issuer) return std::nullopt;
  cert.tbs.issuer = *std::move(issuer);

  asn1::Reader validity;
  if (!tbs_seq.ReadSequence(&validity) ||
      !validity.ReadTime(&cert.tbs.not_before) ||
      !validity.ReadTime(&cert.tbs.not_after))
    return std::nullopt;

  auto subject = Name::Decode(tbs_seq);
  if (!subject) return std::nullopt;
  cert.tbs.subject = *std::move(subject);

  auto key = DecodeSpki(tbs_seq);
  if (!key) return std::nullopt;
  cert.tbs.public_key = *std::move(key);

  if (tbs_seq.NextIsContext(3)) {
    asn1::Reader ext_wrapper;
    if (!tbs_seq.ReadContextExplicit(3, &ext_wrapper)) return std::nullopt;
    auto exts = DecodeExtensionList(ext_wrapper);
    if (!exts) return std::nullopt;
    for (const Extension& ext : *exts) {
      if (ext.oid == asn1::oids::BasicConstraints()) {
        auto bc = ParseBasicConstraints(ext.value);
        if (!bc) return std::nullopt;
        cert.tbs.basic_constraints = *bc;
      } else if (ext.oid == asn1::oids::NameConstraints()) {
        auto nc = ParseNameConstraints(ext.value);
        if (!nc) return std::nullopt;
        cert.tbs.name_constraints = *std::move(nc);
      } else if (ext.oid == asn1::oids::KeyUsage()) {
        auto ku = ParseKeyUsage(ext.value);
        if (!ku) return std::nullopt;
        cert.tbs.key_usage = *ku;
      } else if (ext.oid == asn1::oids::CrlDistributionPoints()) {
        auto urls = ParseCrlDistributionPoints(ext.value);
        if (!urls) return std::nullopt;
        cert.tbs.crl_urls = *std::move(urls);
      } else if (ext.oid == asn1::oids::AuthorityInfoAccess()) {
        auto aia = ParseAuthorityInfoAccess(ext.value);
        if (!aia) return std::nullopt;
        cert.tbs.ocsp_urls = std::move(aia->ocsp_urls);
      } else if (ext.oid == asn1::oids::CertificatePolicies()) {
        auto policies = ParseCertificatePolicies(ext.value);
        if (!policies) return std::nullopt;
        cert.tbs.policies = *std::move(policies);
      } else if (ext.oid == asn1::oids::SubjectAltName()) {
        auto sans = ParseSubjectAltName(ext.value);
        if (!sans) return std::nullopt;
        cert.tbs.dns_names = *std::move(sans);
      } else if (ext.oid == asn1::oids::SubjectKeyIdentifier()) {
        auto ski = ParseSubjectKeyIdentifier(ext.value);
        if (!ski) return std::nullopt;
        cert.tbs.subject_key_id = *std::move(ski);
      } else if (ext.oid == asn1::oids::AuthorityKeyIdentifier()) {
        auto aki = ParseAuthorityKeyIdentifier(ext.value);
        if (!aki) return std::nullopt;
        cert.tbs.authority_key_id = *std::move(aki);
      } else if (ext.critical) {
        return std::nullopt;  // unknown critical extension
      }
    }
  }

  auto outer_sig_type = DecodeSignatureAlgorithm(cert_seq);
  if (!outer_sig_type || *outer_sig_type != *inner_sig_type)
    return std::nullopt;
  cert.sig_type = *outer_sig_type;

  BytesView sig_bits;
  unsigned unused = 0;
  if (!cert_seq.ReadBitString(&sig_bits, &unused) || unused != 0)
    return std::nullopt;
  cert.signature.assign(sig_bits.begin(), sig_bits.end());
  if (!cert_seq.Empty()) return std::nullopt;
  return cert;
}

bool VerifyCertificateSignature(const Certificate& cert,
                                const crypto::PublicKey& issuer_key) {
  if (issuer_key.type != cert.sig_type) return false;
  return crypto::Verify(issuer_key, cert.tbs_der, cert.signature);
}

std::string SerialToString(const Serial& serial) {
  return util::HexEncode(serial);
}

}  // namespace rev::x509
