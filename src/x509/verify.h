// Certificate chain building and verification.
//
// Mirrors the paper's §3.1 methodology: chains are built from a trusted root
// store plus a pool of candidate intermediates; the Intermediate Set is the
// iterative closure of CA certificates verifiable from the roots; leaves are
// validated with an option to ignore date errors (the scans span 1.5 years).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "util/bytes.h"
#include "util/time.h"
#include "x509/certificate.h"

namespace rev::x509 {

using CertPtr = std::shared_ptr<const Certificate>;

enum class VerifyStatus {
  kOk,
  kNoPath,          // no chain to a trusted root
  kBadSignature,
  kExpired,
  kNotYetValid,
  kIssuerNotCa,     // chain element lacks basicConstraints CA
  kDepthExceeded,
  kNameConstraintViolation,  // leaf name outside a CA's NameConstraints
};

const char* VerifyStatusName(VerifyStatus s);

struct VerifyOptions {
  util::Timestamp at = 0;
  // The paper configures OpenSSL to ignore certificate date errors when
  // building the Leaf Set (certs need only have been valid at some time).
  bool ignore_dates = false;
  // Enforce the NameConstraints extension on CA certificates. Off by
  // default — §2.1 footnote 2: "it is rarely used and few clients support
  // it".
  bool enforce_name_constraints = false;
  std::size_t max_depth = 8;
};

struct VerifyResult {
  VerifyStatus status = VerifyStatus::kNoPath;
  // Leaf first, root last; populated only on kOk.
  std::vector<CertPtr> chain;

  bool ok() const { return status == VerifyStatus::kOk; }
};

// An indexed set of certificates, searchable by subject name. Used both as a
// root store and as the candidate-intermediate pool.
class CertPool {
 public:
  // Adds a certificate; duplicate fingerprints are ignored.
  void Add(CertPtr cert);

  std::vector<CertPtr> FindBySubject(const Name& subject) const;
  bool Contains(const Certificate& cert) const;
  std::size_t size() const { return all_.size(); }
  const std::vector<CertPtr>& all() const { return all_; }

 private:
  std::map<Bytes, std::vector<CertPtr>> by_subject_;
  std::map<Bytes, CertPtr> by_fingerprint_;
  std::vector<CertPtr> all_;
};

// Builds and verifies a chain from `leaf` to a root in `roots`, drawing
// intermediates from `intermediates`. Depth-first over issuer candidates
// (handles cross-signed CAs by trying every candidate path).
VerifyResult VerifyChain(const CertPtr& leaf, const CertPool& intermediates,
                         const CertPool& roots, const VerifyOptions& options);

// Iteratively verifies candidate CA certificates against the roots, adding
// newly verified intermediates to the pool until a fixpoint — the paper's
// Intermediate Set construction (§3.1). Returns the verified intermediates.
std::vector<CertPtr> BuildIntermediateSet(const std::vector<CertPtr>& candidates,
                                          const CertPool& roots);

}  // namespace rev::x509
