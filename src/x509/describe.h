// Human-readable rendering of certificates (the `openssl x509 -text`
// equivalent), used by the CLI tool and handy in test failure output.
// CRL and OCSP describers live in their own modules (crl/crl.h, ocsp/ocsp.h).
#pragma once

#include <string>

#include "x509/certificate.h"

namespace rev::x509 {

// Multi-line description of a certificate: subject/issuer, validity,
// extensions, key type, fingerprint.
std::string DescribeCertificate(const Certificate& cert);

}  // namespace rev::x509
