// SubjectPublicKeyInfo encoding/decoding for the two key types.
//
// RSA keys use the standard rsaEncryption AlgorithmIdentifier with an
// RSAPublicKey SEQUENCE in the BIT STRING; sim keys use a private-arc OID
// with the 32-byte identifier as the BIT STRING payload.
#pragma once

#include <optional>

#include "asn1/reader.h"
#include "crypto/signer.h"
#include "util/bytes.h"

namespace rev::x509 {

// DER SubjectPublicKeyInfo for a public key.
Bytes EncodeSpki(const crypto::PublicKey& key);

// Parses a SubjectPublicKeyInfo from the reader.
std::optional<crypto::PublicKey> DecodeSpki(asn1::Reader& r);

// SHA-256 of the DER SubjectPublicKeyInfo. This is the "parent" identifier
// CRLSets key their entries by (§7.1 of the paper).
Bytes SpkiSha256(const crypto::PublicKey& key);

// AlgorithmIdentifier for the *signature* made by a key of this type.
Bytes EncodeSignatureAlgorithm(crypto::KeyType type);

// Reads an AlgorithmIdentifier and maps it back to a key type.
std::optional<crypto::KeyType> DecodeSignatureAlgorithm(asn1::Reader& r);

}  // namespace rev::x509
