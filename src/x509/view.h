// Borrowed (zero-copy) certificate parsing.
//
// ParseCertView walks the same DER structure as ParseCertificate but
// materializes nothing: every field is a view aliasing the input buffer
// (issuer/subject as raw Name TLV bytes, URLs as string_views into the
// IA5String contents). The corpus layer (core::CertCorpus) runs it over
// arena-resident DER to populate its columns without ever building a
// Certificate object; the full parse stays available for the cold path
// (CertCorpus::cert()).
//
// Validation is strict enough to guarantee every view is in-bounds and the
// fast columns (dates, CA bit, EV bit, URLs, serial) agree with a full
// ParseCertificate of the same bytes; name internals are checked
// structurally (RDN nesting) without decoding attribute strings.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "crypto/signer.h"
#include "util/bytes.h"
#include "util/time.h"

namespace rev::x509 {

struct CertView {
  BytesView der;         // the whole certificate
  BytesView tbs_der;     // raw TBSCertificate TLV (the signed bytes)
  BytesView signature;   // BIT STRING payload
  BytesView serial;      // unsigned big-endian magnitude
  BytesView issuer_der;  // raw Name TLV (== Name::DerKey() of the full parse)
  BytesView subject_der;
  util::Timestamp not_before = 0;
  util::Timestamp not_after = 0;
  crypto::KeyType sig_type = crypto::KeyType::kSimSha256;
  bool is_ca = false;
  bool is_ev = false;  // asserts the Verisign EV policy
  std::vector<std::string_view> crl_urls;
  std::vector<std::string_view> ocsp_urls;
};

// Parses `der` into borrowed views. Returns nullopt on malformed input
// (including unknown critical extensions, mirroring ParseCertificate).
// The views alias `der`: they are valid only while that buffer lives.
std::optional<CertView> ParseCertView(BytesView der);

}  // namespace rev::x509
