// X.509v3 extensions: the generic wrapper plus typed codecs for every
// extension this library reads or writes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asn1/oid.h"
#include "asn1/reader.h"
#include "util/bytes.h"

namespace rev::x509 {

// Generic extension: `value` holds the DER inside the extnValue OCTET STRING.
struct Extension {
  asn1::Oid oid;
  bool critical = false;
  Bytes value;
};

Bytes EncodeExtension(const Extension& ext);
std::optional<Extension> DecodeExtension(asn1::Reader& r);

// SEQUENCE OF Extension (caller wraps in the [3] EXPLICIT of TBSCertificate).
Bytes EncodeExtensionList(const std::vector<Extension>& exts);
std::optional<std::vector<Extension>> DecodeExtensionList(asn1::Reader& r);

// BasicConstraints ----------------------------------------------------------

struct BasicConstraints {
  bool is_ca = false;
  int path_len = -1;  // -1 = absent
};
Extension MakeBasicConstraints(const BasicConstraints& bc);
std::optional<BasicConstraints> ParseBasicConstraints(BytesView value);

// KeyUsage ------------------------------------------------------------------

// Named bits per RFC 5280 §4.2.1.3 (bit 0 = digitalSignature ... ).
enum KeyUsageBits : std::uint16_t {
  kKeyUsageDigitalSignature = 1u << 0,
  kKeyUsageKeyEncipherment = 1u << 2,
  kKeyUsageKeyCertSign = 1u << 5,
  kKeyUsageCrlSign = 1u << 6,
};
Extension MakeKeyUsage(std::uint16_t bits);
std::optional<std::uint16_t> ParseKeyUsage(BytesView value);

// CRLDistributionPoints -----------------------------------------------------

Extension MakeCrlDistributionPoints(const std::vector<std::string>& urls);
std::optional<std::vector<std::string>> ParseCrlDistributionPoints(
    BytesView value);

// AuthorityInfoAccess -------------------------------------------------------

struct AuthorityInfoAccess {
  std::vector<std::string> ocsp_urls;
  std::vector<std::string> ca_issuer_urls;
};
Extension MakeAuthorityInfoAccess(const AuthorityInfoAccess& aia);
std::optional<AuthorityInfoAccess> ParseAuthorityInfoAccess(BytesView value);

// CertificatePolicies -------------------------------------------------------

Extension MakeCertificatePolicies(const std::vector<asn1::Oid>& policies);
std::optional<std::vector<asn1::Oid>> ParseCertificatePolicies(BytesView value);

// SubjectAltName (dNSName entries only) --------------------------------------

Extension MakeSubjectAltName(const std::vector<std::string>& dns_names);
std::optional<std::vector<std::string>> ParseSubjectAltName(BytesView value);

// NameConstraints (dNSName subtrees only) -------------------------------------
//
// The paper (§2.1 footnote 2) notes this extension exists precisely to
// scope a CA's issuing authority "but it is rarely used and few clients
// support it"; chain verification enforces it only when asked.

struct NameConstraints {
  // DNS suffixes; an empty permitted list means "no restriction".
  std::vector<std::string> permitted_dns;
  std::vector<std::string> excluded_dns;

  bool Empty() const { return permitted_dns.empty() && excluded_dns.empty(); }
};

Extension MakeNameConstraints(const NameConstraints& nc);
std::optional<NameConstraints> ParseNameConstraints(BytesView value);

// True if `dns_name` falls within the subtree `suffix` ("example.com"
// matches itself and any subdomain).
bool DnsNameInSubtree(std::string_view dns_name, std::string_view suffix);

// Checks a DNS name against the constraints.
bool NameConstraintsAllow(const NameConstraints& nc, std::string_view dns_name);

// Subject/Authority key identifiers ------------------------------------------

Extension MakeSubjectKeyIdentifier(BytesView key_id);
std::optional<Bytes> ParseSubjectKeyIdentifier(BytesView value);

Extension MakeAuthorityKeyIdentifier(BytesView key_id);
std::optional<Bytes> ParseAuthorityKeyIdentifier(BytesView value);

// CRL entry/respective extensions ---------------------------------------------

// RFC 5280 CRLReason codes. kUnspecified is also what a revocation without
// the extension maps to; kNoReasonCode marks "extension absent" when the
// distinction matters (CRLSet inclusion rules, §7.1).
enum class ReasonCode : std::int8_t {
  kNoReasonCode = -1,  // extension absent
  kUnspecified = 0,
  kKeyCompromise = 1,
  kCaCompromise = 2,
  kAffiliationChanged = 3,
  kSuperseded = 4,
  kCessationOfOperation = 5,
  kCertificateHold = 6,
  kRemoveFromCrl = 8,
  kPrivilegeWithdrawn = 9,
  kAaCompromise = 10,
};

const char* ReasonCodeName(ReasonCode rc);

Extension MakeCrlReason(ReasonCode rc);
std::optional<ReasonCode> ParseCrlReason(BytesView value);

Extension MakeCrlNumber(std::int64_t number);
std::optional<std::int64_t> ParseCrlNumber(BytesView value);

}  // namespace rev::x509
