#include "x509/verify.h"

#include <algorithm>

namespace rev::x509 {

const char* VerifyStatusName(VerifyStatus s) {
  switch (s) {
    case VerifyStatus::kOk: return "ok";
    case VerifyStatus::kNoPath: return "no-path";
    case VerifyStatus::kBadSignature: return "bad-signature";
    case VerifyStatus::kExpired: return "expired";
    case VerifyStatus::kNotYetValid: return "not-yet-valid";
    case VerifyStatus::kIssuerNotCa: return "issuer-not-ca";
    case VerifyStatus::kDepthExceeded: return "depth-exceeded";
    case VerifyStatus::kNameConstraintViolation: return "name-constraint";
  }
  return "unknown";
}

void CertPool::Add(CertPtr cert) {
  if (!cert) return;
  const Bytes& fp = cert->Fingerprint();
  if (by_fingerprint_.contains(fp)) return;
  by_fingerprint_.emplace(fp, cert);
  by_subject_[cert->tbs.subject.DerKey()].push_back(cert);
  all_.push_back(std::move(cert));
}

std::vector<CertPtr> CertPool::FindBySubject(const Name& subject) const {
  auto it = by_subject_.find(subject.DerKey());
  if (it == by_subject_.end()) return {};
  return it->second;
}

bool CertPool::Contains(const Certificate& cert) const {
  return by_fingerprint_.contains(cert.Fingerprint());
}

namespace {

// Checks date validity; returns kOk when acceptable under the options.
VerifyStatus CheckDates(const Certificate& cert, const VerifyOptions& options) {
  if (options.ignore_dates) return VerifyStatus::kOk;
  if (options.at < cert.tbs.not_before) return VerifyStatus::kNotYetValid;
  if (options.at > cert.tbs.not_after) return VerifyStatus::kExpired;
  return VerifyStatus::kOk;
}

// Recursive DFS over issuer candidates. `chain` holds the path so far (leaf
// first). Returns true when a full path to a root was found. `worst` tracks
// the most informative failure seen, so callers get e.g. kBadSignature
// rather than a generic kNoPath when a signature was the blocker.
bool Extend(const CertPtr& current, std::vector<CertPtr>& chain,
            const CertPool& intermediates, const CertPool& roots,
            const VerifyOptions& options, VerifyStatus& worst) {
  if (chain.size() > options.max_depth) {
    worst = VerifyStatus::kDepthExceeded;
    return false;
  }

  // Roots first: a certificate directly signed by a root terminates.
  for (const CertPtr& root : roots.FindBySubject(current->tbs.issuer)) {
    if (!VerifyCertificateSignature(*current, root->tbs.public_key)) continue;
    const VerifyStatus date_status = CheckDates(*root, options);
    if (date_status != VerifyStatus::kOk) {
      worst = date_status;
      continue;
    }
    chain.push_back(root);
    return true;
  }

  for (const CertPtr& issuer : intermediates.FindBySubject(current->tbs.issuer)) {
    // Self-signed non-roots and cycles are skipped.
    if (std::any_of(chain.begin(), chain.end(), [&](const CertPtr& c) {
          return c->Fingerprint() == issuer->Fingerprint();
        }))
      continue;
    if (!issuer->IsCa()) {
      worst = VerifyStatus::kIssuerNotCa;
      continue;
    }
    if (!VerifyCertificateSignature(*current, issuer->tbs.public_key)) {
      if (worst == VerifyStatus::kNoPath) worst = VerifyStatus::kBadSignature;
      continue;
    }
    const VerifyStatus date_status = CheckDates(*issuer, options);
    if (date_status != VerifyStatus::kOk) {
      worst = date_status;
      continue;
    }
    chain.push_back(issuer);
    if (Extend(issuer, chain, intermediates, roots, options, worst))
      return true;
    chain.pop_back();
  }
  return false;
}

}  // namespace

VerifyResult VerifyChain(const CertPtr& leaf, const CertPool& intermediates,
                         const CertPool& roots, const VerifyOptions& options) {
  VerifyResult result;
  if (!leaf) return result;

  const VerifyStatus leaf_dates = CheckDates(*leaf, options);
  if (leaf_dates != VerifyStatus::kOk) {
    result.status = leaf_dates;
    return result;
  }

  // A leaf that *is* a trusted root verifies trivially.
  if (roots.Contains(*leaf)) {
    result.status = VerifyStatus::kOk;
    result.chain = {leaf};
    return result;
  }

  std::vector<CertPtr> chain = {leaf};
  VerifyStatus worst = VerifyStatus::kNoPath;
  if (Extend(leaf, chain, intermediates, roots, options, worst)) {
    // NameConstraints (optional enforcement, §2.1 footnote 2): every name
    // the leaf asserts must satisfy every CA's constraints.
    if (options.enforce_name_constraints) {
      std::vector<std::string> names = leaf->tbs.dns_names;
      if (names.empty()) names.push_back(leaf->tbs.subject.CommonName());
      for (std::size_t i = 1; i < chain.size(); ++i) {
        const NameConstraints& nc = chain[i]->tbs.name_constraints;
        if (nc.Empty()) continue;
        for (const std::string& name : names) {
          if (!NameConstraintsAllow(nc, name)) {
            result.status = VerifyStatus::kNameConstraintViolation;
            return result;
          }
        }
      }
    }
    result.status = VerifyStatus::kOk;
    result.chain = std::move(chain);
  } else {
    result.status = worst;
  }
  return result;
}

std::vector<CertPtr> BuildIntermediateSet(const std::vector<CertPtr>& candidates,
                                          const CertPool& roots) {
  CertPool verified;
  std::vector<CertPtr> pending;
  for (const CertPtr& c : candidates) {
    if (c && c->IsCa() && !roots.Contains(*c)) pending.push_back(c);
  }

  VerifyOptions options;
  options.ignore_dates = true;  // scans span years; match §3.1 methodology

  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<CertPtr> still_pending;
    for (const CertPtr& candidate : pending) {
      const VerifyResult r = VerifyChain(candidate, verified, roots, options);
      if (r.ok()) {
        verified.Add(candidate);
        progress = true;
      } else {
        still_pending.push_back(candidate);
      }
    }
    pending = std::move(still_pending);
  }
  return verified.all();
}

}  // namespace rev::x509
