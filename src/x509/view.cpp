#include "x509/view.h"

#include <algorithm>

#include "asn1/oid.h"
#include "asn1/reader.h"
#include "asn1/writer.h"
#include "x509/spki.h"

namespace rev::x509 {

namespace {

constexpr unsigned kGeneralNameUri = 6;

bool OidContentIs(BytesView content, const asn1::Oid& oid) {
  const Bytes encoded = oid.EncodeContent();
  return content.size() == encoded.size() &&
         std::equal(content.begin(), content.end(), encoded.begin());
}

// Structural Name check: SEQUENCE of SET of AttributeTypeAndValue. Attribute
// values are not string-decoded (the full parse does that); this only
// guarantees the TLV nesting is sound so the raw bytes are a usable DerKey.
bool ValidateNameTlv(asn1::Reader& r, BytesView* name_der) {
  {
    asn1::Reader probe = r;
    if (!probe.ReadRawTlv(name_der)) return false;
  }
  asn1::Reader rdns;
  if (!r.ReadSequence(&rdns)) return false;
  while (!rdns.Empty()) {
    asn1::Reader rdn;
    if (!rdns.ReadSet(&rdn)) return false;
    if (rdn.Empty()) return false;
    while (!rdn.Empty()) {
      asn1::Reader attr;
      if (!rdn.ReadSequence(&attr)) return false;
      BytesView oid_content;
      if (!attr.ReadTagged(asn1::kTagOid, &oid_content)) return false;
      BytesView value_tlv;
      if (!attr.ReadRawTlv(&value_tlv) || !attr.Empty()) return false;
    }
  }
  return true;
}

// The CHOICE { fullName [0] GeneralNames } walk of ParseCrlDistributionPoints,
// collecting URI views instead of strings.
bool ParseCrlUrls(BytesView value, std::vector<std::string_view>* urls) {
  asn1::Reader r(value);
  asn1::Reader points;
  if (!r.ReadSequence(&points)) return false;
  while (!points.Empty()) {
    asn1::Reader point;
    if (!points.ReadSequence(&point)) return false;
    asn1::Reader dp_name;
    if (!point.ReadContextConstructed(0, &dp_name)) continue;
    asn1::Reader full_name;
    if (!dp_name.ReadContextConstructed(0, &full_name)) continue;
    while (!full_name.Empty()) {
      BytesView uri;
      if (full_name.ReadContextPrimitive(kGeneralNameUri, &uri)) {
        urls->emplace_back(reinterpret_cast<const char*>(uri.data()),
                           uri.size());
      } else {
        std::uint8_t tag;
        BytesView skipped;
        if (!full_name.ReadTlv(&tag, &skipped)) return false;
      }
    }
  }
  return true;
}

bool ParseOcspUrls(BytesView value, std::vector<std::string_view>* urls) {
  asn1::Reader r(value);
  asn1::Reader descriptions;
  if (!r.ReadSequence(&descriptions)) return false;
  while (!descriptions.Empty()) {
    asn1::Reader desc;
    if (!descriptions.ReadSequence(&desc)) return false;
    BytesView method;
    if (!desc.ReadTagged(asn1::kTagOid, &method)) return false;
    BytesView uri;
    if (!desc.ReadContextPrimitive(kGeneralNameUri, &uri)) continue;
    if (OidContentIs(method, asn1::oids::AdOcsp()))
      urls->emplace_back(reinterpret_cast<const char*>(uri.data()),
                         uri.size());
  }
  return true;
}

bool ParseEvBit(BytesView value, bool* is_ev) {
  asn1::Reader r(value);
  asn1::Reader infos;
  if (!r.ReadSequence(&infos)) return false;
  while (!infos.Empty()) {
    asn1::Reader info;
    if (!infos.ReadSequence(&info)) return false;
    BytesView policy;
    if (!info.ReadTagged(asn1::kTagOid, &policy)) return false;
    if (OidContentIs(policy, asn1::oids::VerisignEvPolicy())) *is_ev = true;
  }
  return true;
}

bool ParseCaBit(BytesView value, bool* is_ca) {
  asn1::Reader r(value);
  asn1::Reader seq;
  if (!r.ReadSequence(&seq)) return false;
  if (seq.NextIs(asn1::kTagBoolean)) {
    if (!seq.ReadBoolean(is_ca)) return false;
  }
  return true;
}

// True if `oid_content` names an extension the full parser knows. Critical
// extensions outside this set fail the parse, like ParseCertificate.
bool IsKnownExtension(BytesView oid_content) {
  namespace oids = asn1::oids;
  static const std::vector<Bytes>* known = [] {
    auto* v = new std::vector<Bytes>;
    for (const asn1::Oid* oid :
         {&oids::BasicConstraints(), &oids::NameConstraints(),
          &oids::KeyUsage(), &oids::CrlDistributionPoints(),
          &oids::AuthorityInfoAccess(), &oids::CertificatePolicies(),
          &oids::SubjectAltName(), &oids::SubjectKeyIdentifier(),
          &oids::AuthorityKeyIdentifier()})
      v->push_back(oid->EncodeContent());
    return v;
  }();
  for (const Bytes& k : *known) {
    if (oid_content.size() == k.size() &&
        std::equal(oid_content.begin(), oid_content.end(), k.begin()))
      return true;
  }
  return false;
}

}  // namespace

std::optional<CertView> ParseCertView(BytesView der) {
  CertView view;
  view.der = der;

  asn1::Reader top(der);
  asn1::Reader cert_seq;
  if (!top.ReadSequence(&cert_seq) || !top.Empty()) return std::nullopt;

  {
    asn1::Reader probe = cert_seq;
    if (!probe.ReadRawTlv(&view.tbs_der)) return std::nullopt;
    cert_seq = probe;
  }

  asn1::Reader tbs(view.tbs_der);
  asn1::Reader tbs_seq;
  if (!tbs.ReadSequence(&tbs_seq)) return std::nullopt;

  asn1::Reader version_reader;
  if (!tbs_seq.ReadContextExplicit(0, &version_reader)) return std::nullopt;
  std::int64_t version;
  if (!version_reader.ReadInteger(&version) || version != 2)
    return std::nullopt;

  if (!tbs_seq.ReadIntegerUnsignedView(&view.serial)) return std::nullopt;

  auto inner_sig_type = DecodeSignatureAlgorithm(tbs_seq);
  if (!inner_sig_type) return std::nullopt;

  if (!ValidateNameTlv(tbs_seq, &view.issuer_der)) return std::nullopt;

  asn1::Reader validity;
  if (!tbs_seq.ReadSequence(&validity) ||
      !validity.ReadTime(&view.not_before) ||
      !validity.ReadTime(&view.not_after))
    return std::nullopt;

  if (!ValidateNameTlv(tbs_seq, &view.subject_der)) return std::nullopt;

  // SPKI: skipped structurally — verification uses the *issuer's* key, so
  // corpus columns never need the subject key. cert() re-parses on demand.
  {
    BytesView spki_tlv;
    if (!tbs_seq.ReadRawTlv(&spki_tlv)) return std::nullopt;
  }

  if (tbs_seq.NextIsContext(3)) {
    asn1::Reader ext_wrapper;
    if (!tbs_seq.ReadContextExplicit(3, &ext_wrapper)) return std::nullopt;
    asn1::Reader ext_list;
    if (!ext_wrapper.ReadSequence(&ext_list)) return std::nullopt;
    while (!ext_list.Empty()) {
      asn1::Reader ext;
      if (!ext_list.ReadSequence(&ext)) return std::nullopt;
      BytesView oid_content;
      if (!ext.ReadTagged(asn1::kTagOid, &oid_content)) return std::nullopt;
      bool critical = false;
      if (ext.NextIs(asn1::kTagBoolean)) {
        if (!ext.ReadBoolean(&critical)) return std::nullopt;
      }
      BytesView value;
      if (!ext.ReadOctetString(&value)) return std::nullopt;

      if (OidContentIs(oid_content, asn1::oids::BasicConstraints())) {
        if (!ParseCaBit(value, &view.is_ca)) return std::nullopt;
      } else if (OidContentIs(oid_content,
                              asn1::oids::CrlDistributionPoints())) {
        if (!ParseCrlUrls(value, &view.crl_urls)) return std::nullopt;
      } else if (OidContentIs(oid_content,
                              asn1::oids::AuthorityInfoAccess())) {
        if (!ParseOcspUrls(value, &view.ocsp_urls)) return std::nullopt;
      } else if (OidContentIs(oid_content,
                              asn1::oids::CertificatePolicies())) {
        if (!ParseEvBit(value, &view.is_ev)) return std::nullopt;
      } else if (critical && !IsKnownExtension(oid_content)) {
        return std::nullopt;  // unknown critical extension
      }
    }
  }

  auto outer_sig_type = DecodeSignatureAlgorithm(cert_seq);
  if (!outer_sig_type || *outer_sig_type != *inner_sig_type)
    return std::nullopt;
  view.sig_type = *outer_sig_type;

  unsigned unused = 0;
  if (!cert_seq.ReadBitString(&view.signature, &unused) || unused != 0)
    return std::nullopt;
  if (!cert_seq.Empty()) return std::nullopt;
  return view;
}

}  // namespace rev::x509
