#include "x509/describe.h"

#include <sstream>

#include "util/hex.h"
#include "util/time.h"

namespace rev::x509 {

std::string DescribeCertificate(const Certificate& cert) {
  std::ostringstream out;
  out << "Certificate:\n";
  out << "  subject     : " << cert.tbs.subject.ToString() << "\n";
  out << "  issuer      : " << cert.tbs.issuer.ToString() << "\n";
  out << "  serial      : " << SerialToString(cert.tbs.serial) << "\n";
  out << "  not before  : " << util::FormatDateTime(cert.tbs.not_before) << "\n";
  out << "  not after   : " << util::FormatDateTime(cert.tbs.not_after) << "\n";
  out << "  key type    : "
      << (cert.tbs.public_key.type == crypto::KeyType::kRsaSha256
              ? "RSA (sha256WithRSAEncryption)"
              : "sim (HMAC-SHA256 simulation scheme)")
      << "\n";
  out << "  CA          : " << (cert.IsCa() ? "yes" : "no");
  if (cert.IsCa() && cert.tbs.basic_constraints.path_len >= 0)
    out << " (pathlen " << cert.tbs.basic_constraints.path_len << ")";
  out << "\n";
  if (cert.IsEv()) out << "  EV policy   : yes\n";
  for (const std::string& url : cert.tbs.crl_urls)
    out << "  CRL         : " << url << "\n";
  for (const std::string& url : cert.tbs.ocsp_urls)
    out << "  OCSP        : " << url << "\n";
  for (const std::string& dns : cert.tbs.dns_names)
    out << "  SAN         : " << dns << "\n";
  if (!cert.tbs.name_constraints.Empty()) {
    for (const std::string& p : cert.tbs.name_constraints.permitted_dns)
      out << "  permitted   : " << p << "\n";
    for (const std::string& e : cert.tbs.name_constraints.excluded_dns)
      out << "  excluded    : " << e << "\n";
  }
  if (cert.Unrevocable())
    out << "  WARNING     : no revocation pointers — unrevocable\n";
  out << "  DER size    : " << cert.der.size() << " bytes\n";
  out << "  fingerprint : " << util::HexEncode(cert.Fingerprint()) << "\n";
  return out.str();
}

}  // namespace rev::x509
