#include "x509/extensions.h"

#include "asn1/writer.h"

namespace rev::x509 {

namespace {
// GeneralName uniformResourceIdentifier is IMPLICIT [6] IA5String.
constexpr unsigned kGeneralNameUri = 6;
// GeneralName dNSName is IMPLICIT [2] IA5String.
constexpr unsigned kGeneralNameDns = 2;

Bytes EncodeGeneralNameUri(const std::string& uri) {
  return asn1::EncodeContextPrimitive(kGeneralNameUri, ToBytes(uri));
}
}  // namespace

Bytes EncodeExtension(const Extension& ext) {
  std::vector<Bytes> parts;
  parts.push_back(asn1::EncodeOid(ext.oid));
  if (ext.critical) parts.push_back(asn1::EncodeBoolean(true));
  parts.push_back(asn1::EncodeOctetString(ext.value));
  return asn1::EncodeSequence(parts);
}

std::optional<Extension> DecodeExtension(asn1::Reader& r) {
  asn1::Reader seq;
  if (!r.ReadSequence(&seq)) return std::nullopt;
  Extension ext;
  if (!seq.ReadOid(&ext.oid)) return std::nullopt;
  if (seq.NextIs(asn1::kTagBoolean)) {
    if (!seq.ReadBoolean(&ext.critical)) return std::nullopt;
  }
  BytesView value;
  if (!seq.ReadOctetString(&value)) return std::nullopt;
  ext.value.assign(value.begin(), value.end());
  return ext;
}

Bytes EncodeExtensionList(const std::vector<Extension>& exts) {
  std::vector<Bytes> parts;
  parts.reserve(exts.size());
  for (const Extension& e : exts) parts.push_back(EncodeExtension(e));
  return asn1::EncodeSequence(parts);
}

std::optional<std::vector<Extension>> DecodeExtensionList(asn1::Reader& r) {
  asn1::Reader list;
  if (!r.ReadSequence(&list)) return std::nullopt;
  std::vector<Extension> out;
  while (!list.Empty()) {
    auto ext = DecodeExtension(list);
    if (!ext) return std::nullopt;
    out.push_back(*std::move(ext));
  }
  return out;
}

// BasicConstraints ----------------------------------------------------------

Extension MakeBasicConstraints(const BasicConstraints& bc) {
  std::vector<Bytes> parts;
  if (bc.is_ca) parts.push_back(asn1::EncodeBoolean(true));
  if (bc.path_len >= 0) parts.push_back(asn1::EncodeInteger(bc.path_len));
  Extension ext;
  ext.oid = asn1::oids::BasicConstraints();
  ext.critical = true;
  ext.value = asn1::EncodeSequence(parts);
  return ext;
}

std::optional<BasicConstraints> ParseBasicConstraints(BytesView value) {
  asn1::Reader r(value);
  asn1::Reader seq;
  if (!r.ReadSequence(&seq)) return std::nullopt;
  BasicConstraints bc;
  if (seq.NextIs(asn1::kTagBoolean)) {
    if (!seq.ReadBoolean(&bc.is_ca)) return std::nullopt;
  }
  if (seq.NextIs(asn1::kTagInteger)) {
    std::int64_t v;
    if (!seq.ReadInteger(&v) || v < 0) return std::nullopt;
    bc.path_len = static_cast<int>(v);
  }
  return bc;
}

// KeyUsage ------------------------------------------------------------------

Extension MakeKeyUsage(std::uint16_t bits) {
  // Named-bit BIT STRING: bit 0 is the MSB of the first octet; DER strips
  // trailing zero bits.
  int highest = -1;
  for (int i = 15; i >= 0; --i) {
    if (bits & (1u << i)) {
      highest = i;
      break;
    }
  }
  Bytes content;
  unsigned unused = 0;
  if (highest >= 0) {
    const int num_bits = highest + 1;
    const int num_bytes = (num_bits + 7) / 8;
    content.assign(static_cast<std::size_t>(num_bytes), 0);
    for (int i = 0; i <= highest; ++i) {
      if (bits & (1u << i))
        content[static_cast<std::size_t>(i / 8)] |= static_cast<std::uint8_t>(0x80 >> (i % 8));
    }
    unused = static_cast<unsigned>(num_bytes * 8 - num_bits);
  }
  Extension ext;
  ext.oid = asn1::oids::KeyUsage();
  ext.critical = true;
  ext.value = asn1::EncodeBitString(content, unused);
  return ext;
}

std::optional<std::uint16_t> ParseKeyUsage(BytesView value) {
  asn1::Reader r(value);
  BytesView content;
  unsigned unused;
  if (!r.ReadBitString(&content, &unused)) return std::nullopt;
  std::uint16_t bits = 0;
  for (std::size_t byte = 0; byte < content.size() && byte < 2; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      if (content[byte] & (0x80 >> bit))
        bits |= static_cast<std::uint16_t>(1u << (byte * 8 + static_cast<std::size_t>(bit)));
    }
  }
  return bits;
}

// CRLDistributionPoints -----------------------------------------------------

Extension MakeCrlDistributionPoints(const std::vector<std::string>& urls) {
  std::vector<Bytes> points;
  points.reserve(urls.size());
  for (const std::string& url : urls) {
    // DistributionPoint ::= SEQUENCE { distributionPoint [0] EXPLICIT
    //   DistributionPointName OPTIONAL, ... }
    // DistributionPointName ::= CHOICE { fullName [0] IMPLICIT GeneralNames }
    const Bytes general_name = EncodeGeneralNameUri(url);
    const Bytes full_name = asn1::EncodeContextConstructed(0, general_name);
    const Bytes dp_name = asn1::EncodeContextConstructed(0, full_name);
    points.push_back(asn1::EncodeSequence({dp_name}));
  }
  Extension ext;
  ext.oid = asn1::oids::CrlDistributionPoints();
  ext.critical = false;
  ext.value = asn1::EncodeSequence(points);
  return ext;
}

std::optional<std::vector<std::string>> ParseCrlDistributionPoints(
    BytesView value) {
  asn1::Reader r(value);
  asn1::Reader points;
  if (!r.ReadSequence(&points)) return std::nullopt;
  std::vector<std::string> urls;
  while (!points.Empty()) {
    asn1::Reader point;
    if (!points.ReadSequence(&point)) return std::nullopt;
    asn1::Reader dp_name;
    if (!point.ReadContextConstructed(0, &dp_name)) continue;
    asn1::Reader full_name;
    if (!dp_name.ReadContextConstructed(0, &full_name)) continue;
    while (!full_name.Empty()) {
      BytesView uri;
      if (full_name.ReadContextPrimitive(kGeneralNameUri, &uri)) {
        urls.emplace_back(uri.begin(), uri.end());
      } else {
        // Skip non-URI general names.
        std::uint8_t tag;
        BytesView skipped;
        if (!full_name.ReadTlv(&tag, &skipped)) return std::nullopt;
      }
    }
  }
  return urls;
}

// AuthorityInfoAccess -------------------------------------------------------

Extension MakeAuthorityInfoAccess(const AuthorityInfoAccess& aia) {
  std::vector<Bytes> descriptions;
  for (const std::string& url : aia.ocsp_urls) {
    descriptions.push_back(asn1::EncodeSequence(
        {asn1::EncodeOid(asn1::oids::AdOcsp()), EncodeGeneralNameUri(url)}));
  }
  for (const std::string& url : aia.ca_issuer_urls) {
    descriptions.push_back(
        asn1::EncodeSequence({asn1::EncodeOid(asn1::oids::AdCaIssuers()),
                              EncodeGeneralNameUri(url)}));
  }
  Extension ext;
  ext.oid = asn1::oids::AuthorityInfoAccess();
  ext.critical = false;
  ext.value = asn1::EncodeSequence(descriptions);
  return ext;
}

std::optional<AuthorityInfoAccess> ParseAuthorityInfoAccess(BytesView value) {
  asn1::Reader r(value);
  asn1::Reader descriptions;
  if (!r.ReadSequence(&descriptions)) return std::nullopt;
  AuthorityInfoAccess aia;
  while (!descriptions.Empty()) {
    asn1::Reader desc;
    if (!descriptions.ReadSequence(&desc)) return std::nullopt;
    asn1::Oid method;
    BytesView uri;
    if (!desc.ReadOid(&method)) return std::nullopt;
    if (!desc.ReadContextPrimitive(kGeneralNameUri, &uri)) continue;
    if (method == asn1::oids::AdOcsp()) {
      aia.ocsp_urls.emplace_back(uri.begin(), uri.end());
    } else if (method == asn1::oids::AdCaIssuers()) {
      aia.ca_issuer_urls.emplace_back(uri.begin(), uri.end());
    }
  }
  return aia;
}

// CertificatePolicies -------------------------------------------------------

Extension MakeCertificatePolicies(const std::vector<asn1::Oid>& policies) {
  std::vector<Bytes> infos;
  infos.reserve(policies.size());
  for (const asn1::Oid& policy : policies)
    infos.push_back(asn1::EncodeSequence({asn1::EncodeOid(policy)}));
  Extension ext;
  ext.oid = asn1::oids::CertificatePolicies();
  ext.critical = false;
  ext.value = asn1::EncodeSequence(infos);
  return ext;
}

std::optional<std::vector<asn1::Oid>> ParseCertificatePolicies(
    BytesView value) {
  asn1::Reader r(value);
  asn1::Reader infos;
  if (!r.ReadSequence(&infos)) return std::nullopt;
  std::vector<asn1::Oid> out;
  while (!infos.Empty()) {
    asn1::Reader info;
    if (!infos.ReadSequence(&info)) return std::nullopt;
    asn1::Oid policy;
    if (!info.ReadOid(&policy)) return std::nullopt;
    out.push_back(std::move(policy));
  }
  return out;
}

// SubjectAltName ------------------------------------------------------------

Extension MakeSubjectAltName(const std::vector<std::string>& dns_names) {
  std::vector<Bytes> names;
  names.reserve(dns_names.size());
  for (const std::string& dns : dns_names)
    names.push_back(asn1::EncodeContextPrimitive(kGeneralNameDns, ToBytes(dns)));
  Extension ext;
  ext.oid = asn1::oids::SubjectAltName();
  ext.critical = false;
  ext.value = asn1::EncodeSequence(names);
  return ext;
}

std::optional<std::vector<std::string>> ParseSubjectAltName(BytesView value) {
  asn1::Reader r(value);
  asn1::Reader names;
  if (!r.ReadSequence(&names)) return std::nullopt;
  std::vector<std::string> out;
  while (!names.Empty()) {
    BytesView dns;
    if (names.ReadContextPrimitive(kGeneralNameDns, &dns)) {
      out.emplace_back(dns.begin(), dns.end());
    } else {
      std::uint8_t tag;
      BytesView skipped;
      if (!names.ReadTlv(&tag, &skipped)) return std::nullopt;
    }
  }
  return out;
}

// NameConstraints -------------------------------------------------------------

namespace {

// GeneralSubtrees ::= SEQUENCE OF GeneralSubtree;
// GeneralSubtree ::= SEQUENCE { base GeneralName } (min/max omitted = DER
// defaults). We only emit dNSName bases.
Bytes EncodeSubtrees(const std::vector<std::string>& dns_suffixes) {
  std::vector<Bytes> subtrees;
  subtrees.reserve(dns_suffixes.size());
  for (const std::string& suffix : dns_suffixes) {
    subtrees.push_back(asn1::EncodeSequence(
        {asn1::EncodeContextPrimitive(kGeneralNameDns, ToBytes(suffix))}));
  }
  return asn1::Concat(subtrees);
}

bool DecodeSubtrees(asn1::Reader& r, std::vector<std::string>* out) {
  while (!r.Empty()) {
    asn1::Reader subtree;
    if (!r.ReadSequence(&subtree)) return false;
    BytesView dns;
    if (subtree.ReadContextPrimitive(kGeneralNameDns, &dns)) {
      out->emplace_back(dns.begin(), dns.end());
    } else {
      std::uint8_t tag;
      BytesView skipped;
      if (!subtree.ReadTlv(&tag, &skipped)) return false;  // skip other bases
    }
  }
  return true;
}

}  // namespace

Extension MakeNameConstraints(const NameConstraints& nc) {
  std::vector<Bytes> parts;
  if (!nc.permitted_dns.empty())
    parts.push_back(
        asn1::EncodeContextConstructed(0, EncodeSubtrees(nc.permitted_dns)));
  if (!nc.excluded_dns.empty())
    parts.push_back(
        asn1::EncodeContextConstructed(1, EncodeSubtrees(nc.excluded_dns)));
  Extension ext;
  ext.oid = asn1::oids::NameConstraints();
  ext.critical = true;
  ext.value = asn1::EncodeSequence(parts);
  return ext;
}

std::optional<NameConstraints> ParseNameConstraints(BytesView value) {
  asn1::Reader r(value);
  asn1::Reader seq;
  if (!r.ReadSequence(&seq)) return std::nullopt;
  NameConstraints nc;
  if (seq.NextIsContext(0)) {
    asn1::Reader permitted;
    if (!seq.ReadContextConstructed(0, &permitted) ||
        !DecodeSubtrees(permitted, &nc.permitted_dns))
      return std::nullopt;
  }
  if (seq.NextIsContext(1)) {
    asn1::Reader excluded;
    if (!seq.ReadContextConstructed(1, &excluded) ||
        !DecodeSubtrees(excluded, &nc.excluded_dns))
      return std::nullopt;
  }
  return nc;
}

bool DnsNameInSubtree(std::string_view dns_name, std::string_view suffix) {
  if (suffix.empty()) return true;
  if (dns_name.size() < suffix.size()) return false;
  if (dns_name.size() == suffix.size()) return dns_name == suffix;
  // Must match on a label boundary: "notexample.com" !< "example.com".
  return dns_name.substr(dns_name.size() - suffix.size()) == suffix &&
         dns_name[dns_name.size() - suffix.size() - 1] == '.';
}

bool NameConstraintsAllow(const NameConstraints& nc,
                          std::string_view dns_name) {
  for (const std::string& excluded : nc.excluded_dns)
    if (DnsNameInSubtree(dns_name, excluded)) return false;
  if (nc.permitted_dns.empty()) return true;
  for (const std::string& permitted : nc.permitted_dns)
    if (DnsNameInSubtree(dns_name, permitted)) return true;
  return false;
}

// Key identifiers -----------------------------------------------------------

Extension MakeSubjectKeyIdentifier(BytesView key_id) {
  Extension ext;
  ext.oid = asn1::oids::SubjectKeyIdentifier();
  ext.critical = false;
  ext.value = asn1::EncodeOctetString(key_id);
  return ext;
}

std::optional<Bytes> ParseSubjectKeyIdentifier(BytesView value) {
  asn1::Reader r(value);
  BytesView id;
  if (!r.ReadOctetString(&id)) return std::nullopt;
  return Bytes(id.begin(), id.end());
}

Extension MakeAuthorityKeyIdentifier(BytesView key_id) {
  // AuthorityKeyIdentifier ::= SEQUENCE { keyIdentifier [0] IMPLICIT ... }
  Extension ext;
  ext.oid = asn1::oids::AuthorityKeyIdentifier();
  ext.critical = false;
  ext.value =
      asn1::EncodeSequence({asn1::EncodeContextPrimitive(0, key_id)});
  return ext;
}

std::optional<Bytes> ParseAuthorityKeyIdentifier(BytesView value) {
  asn1::Reader r(value);
  asn1::Reader seq;
  if (!r.ReadSequence(&seq)) return std::nullopt;
  BytesView id;
  if (!seq.ReadContextPrimitive(0, &id)) return std::nullopt;
  return Bytes(id.begin(), id.end());
}

// CRL extensions ------------------------------------------------------------

const char* ReasonCodeName(ReasonCode rc) {
  switch (rc) {
    case ReasonCode::kNoReasonCode: return "noReasonCode";
    case ReasonCode::kUnspecified: return "unspecified";
    case ReasonCode::kKeyCompromise: return "keyCompromise";
    case ReasonCode::kCaCompromise: return "cACompromise";
    case ReasonCode::kAffiliationChanged: return "affiliationChanged";
    case ReasonCode::kSuperseded: return "superseded";
    case ReasonCode::kCessationOfOperation: return "cessationOfOperation";
    case ReasonCode::kCertificateHold: return "certificateHold";
    case ReasonCode::kRemoveFromCrl: return "removeFromCRL";
    case ReasonCode::kPrivilegeWithdrawn: return "privilegeWithdrawn";
    case ReasonCode::kAaCompromise: return "aACompromise";
  }
  return "unknown";
}

Extension MakeCrlReason(ReasonCode rc) {
  Extension ext;
  ext.oid = asn1::oids::CrlReason();
  ext.critical = false;
  ext.value = asn1::EncodeEnumerated(static_cast<std::int64_t>(rc));
  return ext;
}

std::optional<ReasonCode> ParseCrlReason(BytesView value) {
  asn1::Reader r(value);
  std::int64_t v;
  if (!r.ReadEnumerated(&v) || v < 0 || v > 10 || v == 7) return std::nullopt;
  return static_cast<ReasonCode>(v);
}

Extension MakeCrlNumber(std::int64_t number) {
  Extension ext;
  ext.oid = asn1::oids::CrlNumber();
  ext.critical = false;
  ext.value = asn1::EncodeInteger(number);
  return ext;
}

std::optional<std::int64_t> ParseCrlNumber(BytesView value) {
  asn1::Reader r(value);
  std::int64_t v;
  if (!r.ReadInteger(&v) || v < 0) return std::nullopt;
  return v;
}

}  // namespace rev::x509
