// X.509v3 certificates: construction, DER encode/decode, fingerprints.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "crypto/signer.h"
#include "util/bytes.h"
#include "util/time.h"
#include "x509/extensions.h"
#include "x509/name.h"

namespace rev::x509 {

// Serial numbers are unsigned big-endian magnitudes without leading zeros.
// CAs differ wildly in serial length (the paper observes serials up to 49
// decimal digits, which inflates CRL sizes), so we keep them as raw bytes.
using Serial = Bytes;

// The to-be-signed fields of a certificate, in builder-friendly form.
struct TbsCertificate {
  Serial serial;
  Name issuer;
  Name subject;
  util::Timestamp not_before = 0;
  util::Timestamp not_after = 0;
  crypto::PublicKey public_key;

  BasicConstraints basic_constraints;  // default: not a CA
  NameConstraints name_constraints;    // empty = omit the extension
  std::uint16_t key_usage = 0;         // 0 = omit the extension
  std::vector<std::string> crl_urls;
  std::vector<std::string> ocsp_urls;
  std::vector<asn1::Oid> policies;
  std::vector<std::string> dns_names;
  Bytes subject_key_id;    // empty = omit
  Bytes authority_key_id;  // empty = omit
};

// A parsed (or freshly signed) certificate. `tbs_der` is the exact signed
// byte range, so signatures verify against re-serialization drift.
class Certificate {
 public:
  TbsCertificate tbs;
  crypto::KeyType sig_type = crypto::KeyType::kSimSha256;
  Bytes tbs_der;
  Bytes signature;
  Bytes der;

  // SHA-256 of the full DER encoding; the library-wide identity of a cert.
  const Bytes& Fingerprint() const;

  // SHA-256 of the subject's SPKI (the CRLSet "parent" key when this is an
  // issuer certificate).
  Bytes SubjectSpkiSha256() const;

  bool IsCa() const { return tbs.basic_constraints.is_ca; }
  bool IsSelfIssued() const { return tbs.issuer == tbs.subject; }

  // True if the certificate asserts an Extended Validation policy.
  bool IsEv() const;

  // True at `t` within [not_before, not_after] — the paper's "fresh" notion.
  bool IsFresh(util::Timestamp t) const {
    return t >= tbs.not_before && t <= tbs.not_after;
  }

  // True if the certificate carries neither a CRL distribution point nor an
  // OCSP responder: it can never be revoked (§3.2).
  bool Unrevocable() const {
    return tbs.crl_urls.empty() && tbs.ocsp_urls.empty();
  }

 private:
  mutable Bytes fingerprint_;  // lazy cache
};

// Builds the DER TBSCertificate for the given fields and signature scheme.
Bytes EncodeTbs(const TbsCertificate& tbs, crypto::KeyType sig_type);

// Signs `tbs` with the issuer key, producing a complete certificate.
Certificate SignCertificate(const TbsCertificate& tbs,
                            const crypto::KeyPair& issuer_key);

// Parses a DER certificate. Unknown non-critical extensions are ignored;
// unknown critical extensions fail the parse.
std::optional<Certificate> ParseCertificate(BytesView der);

// Verifies the certificate's signature with the purported issuer key.
bool VerifyCertificateSignature(const Certificate& cert,
                                const crypto::PublicKey& issuer_key);

// Renders a serial as lower-case hex (for reports and map keys).
std::string SerialToString(const Serial& serial);

}  // namespace rev::x509
