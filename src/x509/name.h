// X.501 distinguished names (the subject/issuer fields of certificates).
//
// Modeled as an ordered list of single-attribute RDNs, which covers every
// name this library produces and the overwhelming majority seen in the wild.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asn1/oid.h"
#include "asn1/reader.h"
#include "util/bytes.h"

namespace rev::x509 {

struct NameAttribute {
  asn1::Oid type;
  std::string value;

  friend bool operator==(const NameAttribute&, const NameAttribute&) = default;
};

class Name {
 public:
  Name() = default;

  // Convenience constructors for the common shapes.
  static Name FromCommonName(std::string_view cn);
  static Name Make(std::string_view cn, std::string_view org,
                   std::string_view country = "US");

  void Add(asn1::Oid type, std::string_view value);

  // First CommonName attribute, or empty string.
  std::string CommonName() const;
  std::string Organization() const;

  const std::vector<NameAttribute>& attributes() const { return attributes_; }
  bool Empty() const { return attributes_.empty(); }

  // "CN=example.com, O=Example Org, C=US".
  std::string ToString() const;

  Bytes Encode() const;
  static std::optional<Name> Decode(asn1::Reader& r);

  // DER bytes, usable as a map key for issuer lookups.
  Bytes DerKey() const { return Encode(); }

  friend bool operator==(const Name&, const Name&) = default;

 private:
  std::vector<NameAttribute> attributes_;
};

}  // namespace rev::x509
