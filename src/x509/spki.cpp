#include "x509/spki.h"

#include "asn1/writer.h"
#include "crypto/sha256.h"

namespace rev::x509 {

Bytes EncodeSpki(const crypto::PublicKey& key) {
  Bytes alg;
  Bytes key_bits;
  if (key.type == crypto::KeyType::kRsaSha256) {
    alg = asn1::EncodeSequence(
        {asn1::EncodeOid(asn1::oids::RsaEncryption()), asn1::EncodeNull()});
    const Bytes rsa_pub = asn1::EncodeSequence(
        {asn1::EncodeIntegerUnsigned(key.rsa.n.ToBytes()),
         asn1::EncodeIntegerUnsigned(key.rsa.e.ToBytes())});
    key_bits = rsa_pub;
  } else {
    alg = asn1::EncodeSequence({asn1::EncodeOid(asn1::oids::SimSha256())});
    key_bits = key.sim_id;
  }
  return asn1::EncodeSequence({alg, asn1::EncodeBitString(key_bits)});
}

std::optional<crypto::PublicKey> DecodeSpki(asn1::Reader& r) {
  asn1::Reader spki;
  if (!r.ReadSequence(&spki)) return std::nullopt;
  asn1::Reader alg;
  if (!spki.ReadSequence(&alg)) return std::nullopt;
  asn1::Oid alg_oid;
  if (!alg.ReadOid(&alg_oid)) return std::nullopt;

  BytesView key_bits;
  unsigned unused = 0;
  if (!spki.ReadBitString(&key_bits, &unused) || unused != 0)
    return std::nullopt;

  crypto::PublicKey key;
  if (alg_oid == asn1::oids::RsaEncryption()) {
    if (!alg.ReadNull()) return std::nullopt;
    key.type = crypto::KeyType::kRsaSha256;
    asn1::Reader rsa(key_bits);
    asn1::Reader rsa_seq;
    Bytes n_be, e_be;
    if (!rsa.ReadSequence(&rsa_seq) || !rsa_seq.ReadIntegerUnsigned(&n_be) ||
        !rsa_seq.ReadIntegerUnsigned(&e_be))
      return std::nullopt;
    key.rsa.n = crypto::BigInt::FromBytes(n_be);
    key.rsa.e = crypto::BigInt::FromBytes(e_be);
  } else if (alg_oid == asn1::oids::SimSha256()) {
    key.type = crypto::KeyType::kSimSha256;
    key.sim_id.assign(key_bits.begin(), key_bits.end());
    if (key.sim_id.size() != crypto::kSha256DigestSize) return std::nullopt;
  } else {
    return std::nullopt;
  }
  return key;
}

Bytes SpkiSha256(const crypto::PublicKey& key) {
  return crypto::Sha256Bytes(EncodeSpki(key));
}

Bytes EncodeSignatureAlgorithm(crypto::KeyType type) {
  if (type == crypto::KeyType::kRsaSha256) {
    return asn1::EncodeSequence(
        {asn1::EncodeOid(asn1::oids::Sha256WithRsa()), asn1::EncodeNull()});
  }
  return asn1::EncodeSequence({asn1::EncodeOid(asn1::oids::SimSha256())});
}

std::optional<crypto::KeyType> DecodeSignatureAlgorithm(asn1::Reader& r) {
  asn1::Reader alg;
  if (!r.ReadSequence(&alg)) return std::nullopt;
  asn1::Oid oid;
  if (!alg.ReadOid(&oid)) return std::nullopt;
  if (oid == asn1::oids::Sha256WithRsa()) {
    if (!alg.ReadNull()) return std::nullopt;
    return crypto::KeyType::kRsaSha256;
  }
  if (oid == asn1::oids::SimSha256()) return crypto::KeyType::kSimSha256;
  return std::nullopt;
}

}  // namespace rev::x509
