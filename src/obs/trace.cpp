#include "obs/trace.h"

#include "obs/distrace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace rev::obs {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread span-stack depth (Span ctor/dtor keep it balanced).
thread_local std::uint16_t tl_depth = 0;

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof(buf) - 1));
}

}  // namespace

TraceCollector::TraceCollector() {
  // REV_TRACE in the environment arms tracing for the whole process before
  // any subsystem records its first span.
  const char* env = std::getenv("REV_TRACE");
  if (env != nullptr && env[0] != '\0') Enable();
}

TraceCollector& TraceCollector::Global() {
  // Leaked on purpose: spans may fire from static destructors.
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Enable(std::size_t events_per_thread) {
  {
    std::lock_guard lock(mu_);
    capacity_ = events_per_thread == 0 ? 1 : events_per_thread;
    for (auto& buffer : buffers_) {
      std::lock_guard ring_lock(buffer->mu);
      buffer->capacity = capacity_;
      if (buffer->ring.size() > capacity_) {
        // Keep the newest events: they sit just before the write cursor.
        std::vector<TraceEvent> kept;
        kept.reserve(capacity_);
        const std::size_t start = buffer->total % buffer->ring.size();
        for (std::size_t i = 0; i < capacity_; ++i) {
          const std::size_t at = (start + buffer->ring.size() - capacity_ + i) %
                                 buffer->ring.size();
          kept.push_back(buffer->ring[at]);
        }
        buffer->ring = std::move(kept);
      }
    }
  }
  base_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceCollector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceCollector::Clear() {
  std::lock_guard lock(mu_);
  for (auto& buffer : buffers_) {
    std::lock_guard ring_lock(buffer->mu);
    buffer->ring.clear();
    buffer->total = 0;
  }
}

std::uint64_t TraceCollector::NowNs() const {
  const std::uint64_t base = base_ns_.load(std::memory_order_relaxed);
  const std::uint64_t now = SteadyNowNs();
  return now > base ? now - base : 0;
}

TraceCollector::ThreadBuffer& TraceCollector::BufferForThisThread() {
  // One buffer per (collector, thread); buffers are never destroyed, so the
  // cached raw pointer stays valid for the thread's lifetime.
  thread_local ThreadBuffer* tl_buffer = nullptr;
  if (tl_buffer == nullptr) {
    std::lock_guard lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    tl_buffer = buffers_.back().get();
    tl_buffer->capacity = capacity_;
    tl_buffer->tid = next_tid_++;
  }
  return *tl_buffer;
}

void TraceCollector::Record(const char* name, std::uint64_t start_ns,
                            std::uint64_t dur_ns, std::uint16_t depth) {
  ThreadBuffer& buffer = BufferForThisThread();
  std::lock_guard lock(buffer.mu);
  TraceEvent event{name, start_ns, dur_ns, buffer.tid, depth};
  if (buffer.ring.size() < buffer.capacity) {
    buffer.ring.push_back(event);
  } else {
    // Overwrite the oldest event; `total` keeps advancing so dropped() and
    // the chronological unwrap in Enable()/Snapshot() stay exact.
    buffer.ring[buffer.total % buffer.ring.size()] = event;
  }
  ++buffer.total;
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::vector<TraceEvent> events;
  std::lock_guard lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard ring_lock(buffer->mu);
    events.insert(events.end(), buffer->ring.begin(), buffer->ring.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return events;
}

std::uint64_t TraceCollector::dropped() const {
  std::uint64_t dropped = 0;
  std::lock_guard lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard ring_lock(buffer->mu);
    dropped += buffer->total - buffer->ring.size();
  }
  return dropped;
}

std::string TraceCollector::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    AppendF(out,
            "{\"name\":\"%s\",\"cat\":\"rev\",\"ph\":\"X\",\"ts\":%.3f,"
            "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%u}}%s\n",
            e.name, static_cast<double>(e.start_ns) / 1e3,
            static_cast<double>(e.dur_ns) / 1e3, e.tid, e.depth,
            i + 1 < events.size() ? "," : "");
  }
  AppendF(out, "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":%" PRIu64
               "}}\n",
          dropped());
  return out;
}

bool TraceCollector::WriteChromeTrace(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

std::string TraceCollector::TextProfile() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : Snapshot()) {
    Agg& agg = by_name[e.name];
    ++agg.count;
    agg.total_ns += e.dur_ns;
    agg.max_ns = std::max(agg.max_ns, e.dur_ns);
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });

  std::string out;
  AppendF(out, "%-36s %10s %12s %12s %12s\n", "span", "count", "total(ms)",
          "mean(us)", "max(us)");
  for (const auto& [name, agg] : rows) {
    AppendF(out, "%-36s %10" PRIu64 " %12.3f %12.2f %12.2f\n", name.c_str(),
            agg.count, static_cast<double>(agg.total_ns) / 1e6,
            agg.count == 0 ? 0.0
                           : static_cast<double>(agg.total_ns) /
                                 static_cast<double>(agg.count) / 1e3,
            static_cast<double>(agg.max_ns) / 1e3);
  }
  const std::uint64_t lost = dropped();
  if (lost > 0) AppendF(out, "(dropped %" PRIu64 " events)\n", lost);
  return out;
}

bool TraceCollector::ExportFromEnv() const {
  const char* path = std::getenv("REV_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  return WriteChromeTrace(path);
}

Span::Span(const char* name) : name_(nullptr) {
  TraceCollector& collector = TraceCollector::Global();
  if (!collector.enabled()) return;  // one relaxed load on the fast path
  name_ = name;
  depth_ = tl_depth++;
  start_ns_ = collector.NowNs();
}

Span::Span(std::string_view dynamic_name) : name_(nullptr) {
  TraceCollector& collector = TraceCollector::Global();
  if (!collector.enabled()) return;
  // Interning only when tracing is on: a disabled dynamic span costs the
  // same relaxed load as a literal one.
  name_ = InternName(dynamic_name);
  depth_ = tl_depth++;
  start_ns_ = collector.NowNs();
}

Span::~Span() {
  if (name_ == nullptr) return;
  TraceCollector& collector = TraceCollector::Global();
  --tl_depth;
  // Tracing may have been disabled mid-span; still record so the span
  // stack stays balanced in the output.
  const std::uint64_t end_ns = collector.NowNs();
  collector.Record(name_, start_ns_,
                   end_ns > start_ns_ ? end_ns - start_ns_ : 0, depth_);
}

}  // namespace rev::obs
