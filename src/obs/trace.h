// Trace spans: where the time goes inside a run, across subsystems.
//
//   { obs::Span span("pipeline.verify"); … }   // RAII: timed on destruct
//
// When tracing is disabled (the default) a Span costs one relaxed atomic
// load — cheap enough to leave on the serving hot path permanently. When
// enabled (REV_TRACE=<path> in the environment, or Enable() in code),
// completed spans are pushed into a bounded per-thread ring buffer; when
// a ring fills, the *oldest* events are overwritten so a long run keeps
// its most recent window and counts what it dropped.
//
// Export: Chrome trace-event JSON (open chrome://tracing or
// https://ui.perfetto.dev and load the file) and a flat text profile
// aggregated by span name (tools/trace2txt renders the JSON for
// terminals). See docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rev::obs {

struct TraceEvent {
  // Static-lifetime string: a literal, or an InternName() pointer
  // (distrace.h) for dynamic labels like "fleet.replica{3}".
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  // relative to the collector's time base
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;   // collector-assigned thread number
  std::uint16_t depth = 0;  // span-stack depth at entry (0 = top level)
};

// Process-wide collector. Thread-safe: each thread owns a ring buffer it
// alone writes (under that ring's private mutex, uncontended except while
// a snapshot is being taken).
class TraceCollector {
 public:
  static TraceCollector& Global();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // Starts collecting; rings hold `events_per_thread` completed spans.
  // Re-enabling resets the time base but keeps prior events (Clear() to
  // drop them).
  void Enable(std::size_t events_per_thread = 1 << 15);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Clear();

  // All buffered events, merged across threads, sorted by start time.
  std::vector<TraceEvent> Snapshot() const;

  // Events overwritten because a ring was full.
  std::uint64_t dropped() const;

  // Chrome trace-event JSON ("X" complete events, microsecond units).
  std::string ChromeTraceJson() const;
  bool WriteChromeTrace(const std::string& path) const;

  // Flat profile: per span name — count, total wall, mean, max — sorted by
  // total descending.
  std::string TextProfile() const;

  // If REV_TRACE names a path, writes the Chrome trace there and returns
  // true. Benches call this on exit so `REV_TRACE=trace.json bench_x`
  // yields a full cross-subsystem timeline.
  bool ExportFromEnv() const;

  // Called by Span; records one completed span for the calling thread.
  void Record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint16_t depth);

  // Monotonic nanoseconds since the collector's time base.
  std::uint64_t NowNs() const;

 private:
  struct ThreadBuffer {
    std::mutex mu;  // writer is the owning thread; readers are snapshots
    std::vector<TraceEvent> ring;
    std::size_t capacity = 0;
    std::uint64_t total = 0;  // events ever recorded (total - size = dropped)
    std::uint32_t tid = 0;
  };

  TraceCollector();
  ThreadBuffer& BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> base_ns_{0};  // steady_clock epoch of Enable()

  mutable std::mutex mu_;  // guards buffers_ (the list, not ring contents)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::size_t capacity_ = 1 << 15;
  std::uint32_t next_tid_ = 1;
};

// RAII span. `name` must be a static-lifetime string (stored by pointer):
// pass a literal, or use the string_view overload, which interns dynamic
// names (one hash lookup at construction — fine off the hot path; cache
// the InternName() result and use the const char* form in loops).
// Nesting is tracked per thread; the span stack depth is recorded with
// each event.
class Span {
 public:
  explicit Span(const char* name);
  explicit Span(std::string_view dynamic_name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;        // nullptr when tracing was off at entry
  std::uint64_t start_ns_ = 0;
  std::uint16_t depth_ = 0;
};

}  // namespace rev::obs
